# Tier-1 gate: everything a PR must keep green.
.PHONY: ci fmt vet build test race short cover crashhunt-smoke

ci: fmt vet build race crashhunt-smoke

# Fail when any file is not gofmt-clean (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Fast local loop: skips the slow full-matrix experiments.
short:
	go test -short ./...

# Per-package statement coverage.
cover:
	go test -cover ./...

# Fast crash-consistency sweep: the quick benchmarks across every
# technique, hard-capped at a minute. Nonzero exit on any violation.
crashhunt-smoke:
	go run ./cmd/crashhunt -benches crc,randmath -budget 60s
