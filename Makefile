# Tier-1 gate: everything a PR must keep green.
.PHONY: ci fmt vet build test race short cover

ci: fmt vet build race

# Fail when any file is not gofmt-clean (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Fast local loop: skips the slow full-matrix experiments.
short:
	go test -short ./...

# Per-package statement coverage.
cover:
	go test -cover ./...
