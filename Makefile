# Tier-1 gate: everything a PR must keep green.
.PHONY: ci vet build test race short

ci: vet build race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Fast local loop: skips the slow full-matrix experiments.
short:
	go test -short ./...
