# Tier-1 gate: everything a PR must keep green.
.PHONY: ci fmt vet build test race short cover crashhunt-smoke verify-smoke harvest-smoke fuzz-smoke transval-smoke serve-smoke store-smoke loadtest-smoke bench bench-smoke

ci: fmt vet build race fuzz-smoke transval-smoke crashhunt-smoke verify-smoke harvest-smoke serve-smoke store-smoke loadtest-smoke bench-smoke

# Fail when any file is not gofmt-clean (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Fast local loop: skips the slow full-matrix experiments.
short:
	go test -short ./...

# Per-package statement coverage.
cover:
	go test -cover ./...

# Fast crash-consistency sweep: the quick benchmarks across every
# technique, hard-capped at a minute. Nonzero exit on any violation.
crashhunt-smoke:
	go run ./cmd/crashhunt -benches crc,randmath -budget 60s

# Exhaustive crash verification: model-check the small benchmarks to a
# Verified verdict, then require a sabotaged placement to produce a
# replayable counterexample. See scripts/verify-smoke.sh.
verify-smoke:
	sh scripts/verify-smoke.sh

# Harvested-energy environments end to end: record a solar run into an
# NDJSON trace, replay it byte-identically, then sweep the quick
# benchmarks under three harvested environments against their
# continuous-power oracles. See scripts/harvest-smoke.sh.
harvest-smoke:
	sh scripts/harvest-smoke.sh

# Short native-fuzzing burst over every fuzz target (~10s each): the
# front end, the IR text format, the optimizer, and the placement
# guarantees. Corpora live under each package's testdata/fuzz.
fuzz-smoke:
	go test ./internal/minic -run '^$$' -fuzz '^FuzzMiniCCompile$$' -fuzztime 10s
	go test ./internal/ir -run '^$$' -fuzz '^FuzzIRParseRoundtrip$$' -fuzztime 10s
	go test ./internal/opt -run '^$$' -fuzz '^FuzzOptimizer$$' -fuzztime 10s
	go test ./internal/core -run '^$$' -fuzz '^FuzzSchematicGuarantees$$' -fuzztime 10s

# Quick translation validation: every benchmark plus a small fuzz
# stream through every pipeline stage. Nonzero exit on any mismatch.
transval-smoke:
	go run ./cmd/transval -fuzz 25

# Full performance report: grid throughput (compiled vs interpreted),
# schematicd emulate latency, grid-service cold/warm/store-warm,
# loadtest mixed workload, crashtest cases/sec, verifier states/sec,
# harvested-schedule overhead. Rewrites the committed BENCH_010.json;
# run on an idle machine.
bench:
	sh scripts/bench.sh

# CI performance gate: a tiny grid, a well-formed report, and no >20%
# compiled-throughput regression against the committed BENCH_010.json.
bench-smoke:
	go run ./cmd/schemabench -smoke -o /tmp/bench-smoke.json -check BENCH_010.json

# Daemon round trip: start schematicd on an ephemeral port, drive a
# compile + emulate through schemactl, check cache dedup on /metrics,
# and verify a clean SIGTERM drain. See scripts/serve-smoke.sh.
serve-smoke:
	sh scripts/serve-smoke.sh

# Disk-store restart survival across real processes: two schematicd
# runs on one -store directory; the second must answer everything —
# including a whole grid — from disk. See scripts/store-smoke.sh.
store-smoke:
	sh scripts/store-smoke.sh

# Load generator against a real daemon: a closed-loop mixed workload
# with zero tolerated failures. See scripts/loadtest.sh.
loadtest-smoke:
	sh scripts/loadtest.sh
