// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (Section IV),
// plus micro-benchmarks of the toolchain itself. Run with
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark regenerates its table/figure once per
// iteration and reports headline values as custom metrics, so `go test
// -bench` doubles as the reproduction harness (cmd/paper renders the same
// data as text).
package repro_test

import (
	"context"
	"math/rand"
	"testing"

	"schematic/internal/baselines"
	"schematic/internal/bench"
	schematic "schematic/internal/core"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/opt"
	"schematic/internal/trace"
)

func newHarness() *bench.Harness {
	h := bench.NewHarness()
	h.ProfileRuns = 5 // keep bench iterations fast; cmd/paper uses more
	return h
}

// BenchmarkTable1 regenerates Table I (ability to support limited VM).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		t1, err := h.Table1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		supported := 0
		for _, row := range t1 {
			for _, ok := range row {
				if ok {
					supported++
				}
			}
		}
		b.ReportMetric(float64(supported), "cells-supported")
	}
}

// BenchmarkTable2 regenerates Table II (execution time and minimal power
// failures).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		rows, err := h.Table2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		for _, r := range rows {
			total += r.Cycles
		}
		b.ReportMetric(float64(total), "suite-cycles")
	}
}

// BenchmarkTable3 regenerates Table III (forward progress for TBPF ∈
// {1k, 10k, 100k}).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		t3, err := h.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		completed := 0
		for _, byTBPF := range t3 {
			for _, cells := range byTBPF {
				for _, tr := range cells {
					if tr.Completed() {
						completed++
					}
				}
			}
		}
		b.ReportMetric(float64(completed), "cells-completed")
	}
}

// BenchmarkFigure6 regenerates Fig. 6 (energy breakdown at TBPF=10k).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		fig, err := h.Figure6(context.Background(), bench.Fig6TBPF)
		if err != nil {
			b.Fatal(err)
		}
		hd := bench.ComputeHeadline(fig)
		b.ReportMetric(hd.OverallEnergy*100, "energy-reduction-%")
		b.ReportMetric(hd.OverallTime*100, "time-reduction-%")
	}
}

// BenchmarkFigure7 regenerates Fig. 7 (SCHEMATIC vs All-NVM).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		fig, err := h.Figure7(context.Background(), bench.Fig6TBPF)
		if err != nil {
			b.Fatal(err)
		}
		// Average computation-energy reduction of VM allocation.
		var sum, n float64
		for _, cells := range fig {
			s, o := cells["Schematic"], cells["All-NVM"]
			if s.Completed() && o.Completed() {
				sum += 1 - s.Res.Energy.Computation/o.Res.Energy.Computation
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/n*100, "compute-reduction-%")
		}
	}
}

// BenchmarkAblations runs the design-choice ablation study: the full pass
// against variants with conditional checkpointing, liveness refinement, or
// VM allocation disabled, and with the §VII register-liveness extension
// enabled. Reported metrics are the suite-average energy overheads (or
// saving, for refined registers) relative to the full pass.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		abl, err := h.Ablations(context.Background(), bench.Fig6TBPF)
		if err != nil {
			b.Fatal(err)
		}
		rel := func(label string) float64 {
			var sum, n float64
			for _, cells := range abl {
				base, v := cells["Schematic"], cells[label]
				if base != nil && base.Completed() && v != nil && v.Completed() {
					sum += v.Res.Energy.Total() / base.Res.Energy.Total()
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / n
		}
		b.ReportMetric((rel("NoCondCk")-1)*100, "no-condck-overhead-%")
		b.ReportMetric((rel("NoLiveness")-1)*100, "no-liveness-overhead-%")
		b.ReportMetric((rel("NoVM")-1)*100, "no-vm-overhead-%")
		b.ReportMetric((1-rel("RefinedRegs"))*100, "refined-regs-saving-%")
	}
}

// BenchmarkFigure8 regenerates Fig. 8 (capacitor-size sweep on crc).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		fig, err := h.Figure8(context.Background(), "crc")
		if err != nil {
			b.Fatal(err)
		}
		small := fig["Schematic"][1_000]
		big := fig["Schematic"][100_000]
		if small.Completed() && big.Completed() {
			b.ReportMetric(small.Res.Energy.Intermittency()/1000, "overhead-1k-uJ")
			b.ReportMetric(big.Res.Energy.Intermittency()/1000, "overhead-100k-uJ")
		}
	}
}

// BenchmarkAnalysis measures the SCHEMATIC pass itself across the suite
// (the paper reports ~71 s per benchmark on the authors' setup, §III-C).
func BenchmarkAnalysis(b *testing.B) {
	bms, err := bench.All()
	if err != nil {
		b.Fatal(err)
	}
	model := energy.MSP430FR5969()
	type prepared struct {
		name string
		mod  *ir.Module
		prof *trace.Profile
		eb   float64
	}
	var preps []prepared
	for _, bm := range bms {
		m, err := bm.Module()
		if err != nil {
			b.Fatal(err)
		}
		prof, err := trace.Collect(m, trace.Options{Runs: 3, Seed: 1, Model: model})
		if err != nil {
			b.Fatal(err)
		}
		preps = append(preps, prepared{bm.Name, m, prof, prof.EBForTBPF(10_000)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range preps {
			clone := ir.Clone(p.mod)
			if _, err := schematic.Apply(clone, schematic.Config{
				Model: model, Budget: p.eb, VMSize: 2048, Profile: p.prof,
			}); err != nil {
				b.Fatalf("%s: %v", p.name, err)
			}
		}
	}
}

// BenchmarkEmulator measures raw interpretation speed on the aes benchmark.
func BenchmarkEmulator(b *testing.B) {
	bm, err := bench.ByName("aes")
	if err != nil {
		b.Fatal(err)
	}
	m, err := bm.Module()
	if err != nil {
		b.Fatal(err)
	}
	inputs, err := bm.Inputs(1)
	if err != nil {
		b.Fatal(err)
	}
	model := energy.MSP430FR5969()
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		res, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkCompile measures the MiniC front end on the largest benchmark.
func BenchmarkCompile(b *testing.B) {
	bm, err := bench.ByName("aes")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := minic.Compile("aes", bm.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselinePasses measures each baseline's instrumentation pass.
func BenchmarkBaselinePasses(b *testing.B) {
	bm, err := bench.ByName("bitcount")
	if err != nil {
		b.Fatal(err)
	}
	m, err := bm.Module()
	if err != nil {
		b.Fatal(err)
	}
	model := energy.MSP430FR5969()
	for _, tech := range bench.Techniques() {
		if tech.Name() == "Schematic" {
			continue // measured by BenchmarkAnalysis
		}
		tech := tech
		b.Run(tech.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clone := ir.Clone(m)
				if err := tech.Apply(clone, baselines.Params{
					Model: model, Budget: 10_000, VMSize: 2048,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimize measures the optimizer across the suite and reports
// how much it shrinks the hand-written benchmarks (fuzz-generated code
// shrinks far more; these sources are already tight).
func BenchmarkOptimize(b *testing.B) {
	bms, err := bench.All()
	if err != nil {
		b.Fatal(err)
	}
	mods := make([]*ir.Module, len(bms))
	for i, bm := range bms {
		m, err := bm.Module()
		if err != nil {
			b.Fatal(err)
		}
		mods[i] = m
	}
	count := func(m *ir.Module) int {
		n := 0
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				n += len(blk.Instrs)
			}
		}
		return n
	}
	b.ResetTimer()
	var before, after int
	for i := 0; i < b.N; i++ {
		before, after = 0, 0
		for _, m := range mods {
			c := ir.Clone(m)
			before += count(c)
			if _, err := opt.Optimize(c); err != nil {
				b.Fatal(err)
			}
			after += count(c)
		}
	}
	b.ReportMetric(float64(before-after)/float64(before)*100, "shrink-%")
}

// BenchmarkProfile measures trace collection (the paper's 1000-run
// instrumentation, III-A3) on crc, per run.
func BenchmarkProfile(b *testing.B) {
	bm, err := bench.ByName("crc")
	if err != nil {
		b.Fatal(err)
	}
	m, err := bm.Module()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := trace.Collect(m, trace.Options{Runs: 1, Seed: rand.Int63()}); err != nil {
			b.Fatal(err)
		}
	}
}
