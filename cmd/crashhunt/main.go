// Command crashhunt hunts crash-consistency violations in checkpoint
// placements by differential fault injection: every (program, technique)
// case is validated against its continuous-power oracle under adversarial
// power schedules — failures immediately before/mid/after checkpoint
// saves, at instruction boundaries, and at seeded-random points.
//
//	crashhunt                              # all bundled benchmarks × all techniques
//	crashhunt -benches crc,fft -techs Ratchet,Schematic
//	crashhunt -fuzz 16 -fuzz-seed 42       # add 16 fuzz-generated programs
//	crashhunt -sabotage 1 -techs Ratchet   # delete the 1st checkpoint (expect findings)
//	crashhunt -budget 60s -jobs 4 -o repro.ndjson
//	crashhunt -replay repro.ndjson         # re-execute serialized counterexamples
//
// -power switches from injection hunting to a harvested-environment
// sweep: every case runs once under each given power spec (shared
// grammar with iemu and schematicd; see "Power environments" in
// EXPERIMENTS.md), classified against its continuous-power oracle. The
// flag repeats, one environment per use:
//
//	crashhunt -power solar -power rf:seed=7 -power duty:duty=0.2
//	crashhunt -benches crc -power solar:cloud=0.9,cap=1800
//
// -exhaustive upgrades the sweep from sampling to bounded model
// checking (internal/verify): every reachable persistent state is
// explored, so a clean case comes back VERIFIED with full state/edge
// counts instead of merely unfalsified:
//
//	crashhunt -exhaustive -benches crc,randmath
//	crashhunt -exhaustive -benches crc -max-states 50000 -max-depth 32
//
// Exit status: 0 = no violations, 1 = confirmed violations (or, with
// -replay, a repro that no longer reproduces), 2 = infrastructure errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"schematic/internal/cli"
	"schematic/internal/crashtest"
	"schematic/internal/verify"
)

func main() {
	var (
		replay   = flag.String("replay", "", "replay a findings NDJSON file instead of hunting")
		benches  = flag.String("benches", "all", "comma-separated benchmark names, or 'all', or 'none'")
		techs    = flag.String("techs", "all", "comma-separated technique names, or 'all'")
		fuzzN    = flag.Int("fuzz", 0, "also hunt this many fuzz-generated programs")
		fuzzSeed = flag.Int64("fuzz-seed", 1, "base seed for the fuzz-generated corpus")
		seed     = flag.Int64("seed", 1, "workload input seed")
		tbpf     = flag.Int64("tbpf", 0, "target time between power failures in cycles (0 = 10000)")
		sabotage = flag.Int("sabotage", 0, "delete the Nth checkpoint (1-based) from every placement before hunting")
		jobs     = flag.Int("jobs", 0, "worker pool size (0 = NumCPU)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-case hunt timeout (0 = none)")
		budget   = flag.Duration("budget", 0, "overall wall-clock budget; cases beyond it are skipped (0 = none)")
		out      = flag.String("o", "", "write confirmed findings as NDJSON repros to this file")
		verbose  = flag.Bool("v", false, "log one line per finished case")
		anytime  = flag.Bool("anytime", false, "inject into wait-style placements too, ignoring their failures-only-at-checkpoints contract")

		exhaustive = flag.Bool("exhaustive", false, "bounded model checking instead of sampling: explore every reachable persistent state")
		maxStates  = flag.Int("max-states", 0, "with -exhaustive: bound on distinct persistent states (0 = 200000)")
		maxDepth   = flag.Int("max-depth", 0, "with -exhaustive: bound on chained injections (0 = 64)")
	)
	var powers []string
	flag.Func("power", "power-environment spec (repeatable): sweep cases under this schedule instead of injection hunting (e.g. solar, rf:seed=7)", func(s string) error {
		powers = append(powers, s)
		return nil
	})
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: crashhunt [flags]")
		flag.Usage()
		os.Exit(2)
	}

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}

	techList, err := parseTechs(*techs)
	fail(err)
	cases, err := buildCases(*benches, techList, *fuzzN, *fuzzSeed, *seed)
	fail(err)
	for i := range cases {
		cases[i].TBPF = *tbpf
		cases[i].Sabotage = *sabotage
	}
	if len(cases) == 0 {
		fmt.Fprintln(os.Stderr, "crashhunt: no cases selected")
		os.Exit(2)
	}

	// ^C / SIGTERM cancels the sweep: in-flight cases wind down and the
	// rest are reported as skipped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if len(powers) > 0 {
		os.Exit(runPowerSweep(ctx, cases, powers, crashtest.Options{AssumeAnytime: *anytime}, *verbose))
	}

	if *exhaustive {
		os.Exit(runExhaustive(ctx, cases, verify.Options{
			MaxStates:     *maxStates,
			MaxDepth:      *maxDepth,
			AssumeAnytime: *anytime,
		}, *jobs, *timeout, *budget, *out, *verbose))
	}

	h := &crashtest.Hunter{
		Opts:        crashtest.Options{AssumeAnytime: *anytime},
		Jobs:        *jobs,
		CaseTimeout: *timeout,
		Budget:      *budget,
	}
	if *verbose {
		h.Log = os.Stderr
	}

	start := time.Now()
	results := h.Run(ctx, cases)
	summary := crashtest.Summarize(results)

	findings := crashtest.Findings(results)
	// Fuzz-generated counterexamples also get their program shrunk.
	for i := range findings {
		if findings[i].Case.Fuzz != nil {
			findings[i] = *crashtest.ShrinkProgram(ctx, &findings[i], h.Opts)
		}
	}

	for i := range results {
		r := &results[i]
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "crashhunt: ERROR %s/%s: %v\n", r.Case.Name, r.Case.Technique, r.Err)
		}
	}
	for i := range findings {
		f := &findings[i]
		fmt.Printf("VIOLATION %s/%s: %s via %s (found by %s)\n",
			f.Case.Name, f.Case.Technique, f.Class, f.Schedule, f.FoundBy)
		if f.Detail != "" {
			fmt.Printf("  %s\n", f.Detail)
		}
	}
	fmt.Printf("crashhunt: %s in %v\n", summary, time.Since(start).Round(time.Millisecond))

	if *out != "" && len(findings) > 0 {
		fail(cli.WriteTo(*out, func(w io.Writer) error { return crashtest.WriteFindings(w, findings) }))
		fmt.Printf("crashhunt: wrote %d repro(s) to %s\n", len(findings), *out)
	}

	switch {
	case summary.Errors > 0:
		os.Exit(2)
	case summary.Violations > 0:
		os.Exit(1)
	}
}

// runPowerSweep validates every case against its oracle under each
// harvested power environment — the physics analogue of the injection
// hunt.
func runPowerSweep(ctx context.Context, cases []crashtest.Case, specs []string, opts crashtest.Options, verbose bool) int {
	var scheds []crashtest.NamedSchedule
	for _, raw := range specs {
		ps, err := cli.ParsePower(raw)
		fail(err)
		if ps.Empty() {
			fail(fmt.Errorf("empty -power spec"))
		}
		scheds = append(scheds, crashtest.NamedSchedule{Name: ps.String(), Make: ps.Build})
	}
	var logf func(format string, args ...any)
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crashhunt: "+format+"\n", args...)
		}
	}
	start := time.Now()
	results, err := crashtest.Sweep(ctx, cases, scheds, opts, logf)
	fail(err)
	violations := 0
	for i := range results {
		r := &results[i]
		if r.Violation() {
			violations++
			fmt.Printf("VIOLATION %s/%s under %s: %s\n", r.Case.Name, r.Case.Technique, r.Schedule, r.Outcome.Class)
			if r.Outcome.Detail != "" {
				fmt.Printf("  %s\n", r.Outcome.Detail)
			}
		} else if verbose {
			fmt.Printf("ok        %s/%s under %s (%d power failures)\n",
				r.Case.Name, r.Case.Technique, r.Schedule, r.Outcome.Res.PowerFailures)
		}
	}
	fmt.Printf("crashhunt: power sweep: %d cells across %d environment(s), %d violation(s) in %v\n",
		len(results), len(scheds), violations, time.Since(start).Round(time.Millisecond))
	if violations > 0 {
		return 1
	}
	return 0
}

// runExhaustive sweeps the cases through the bounded model checker and
// reports VERIFIED / BOUNDED / VIOLATION per case with full state-space
// statistics.
func runExhaustive(ctx context.Context, cases []crashtest.Case, opts verify.Options, jobs int, timeout, budget time.Duration, outPath string, verbose bool) int {
	s := &verify.Sweeper{Opts: opts, Jobs: jobs, CaseTimeout: timeout, Budget: budget}
	if verbose {
		s.Log = os.Stderr
	}
	start := time.Now()
	results := s.Run(ctx, cases)
	summary := verify.Summarize(results)

	for i := range results {
		r := &results[i]
		id := fmt.Sprintf("%s/%s", r.Case.Name, r.Case.Technique)
		switch {
		case r.Err != nil:
			fmt.Fprintf(os.Stderr, "crashhunt: ERROR %s: %v\n", id, r.Err)
		case r.Skipped != "":
			if verbose {
				fmt.Printf("SKIPPED   %s: %s\n", id, r.Skipped)
			}
		case r.Report.Verdict == verify.Counterexample:
			f := r.Report.Finding
			fmt.Printf("VIOLATION %s: %s via %s (found by %s, %d states / %d edges explored)\n",
				id, f.Class, f.Schedule, f.FoundBy, r.Report.States, r.Report.Edges)
			if f.Detail != "" {
				fmt.Printf("  %s\n", f.Detail)
			}
		case r.Report.Verdict == verify.Bounded:
			fmt.Printf("BOUNDED   %s: no violation within %s bound (%d states, %d edges, depth %d)\n",
				id, r.Report.Bound, r.Report.States, r.Report.Edges, r.Report.MaxDepth)
		case r.Report.WaitContract:
			fmt.Printf("VERIFIED  %s: wait contract holds (completes correctly, zero failures)\n", id)
		default:
			fmt.Printf("VERIFIED  %s: %d states, %d edges, %.1f%% dedup, depth %d in %v\n",
				id, r.Report.States, r.Report.Edges,
				100*float64(r.Report.DedupHits)/float64(max64(r.Report.Edges, 1)),
				r.Report.MaxDepth, r.Elapsed.Round(time.Millisecond))
		}
	}
	fmt.Printf("crashhunt: %s in %v\n", summary, time.Since(start).Round(time.Millisecond))

	findings := verify.Findings(results)
	if outPath != "" && len(findings) > 0 {
		fail(cli.WriteTo(outPath, func(w io.Writer) error { return crashtest.WriteFindings(w, findings) }))
		fmt.Printf("crashhunt: wrote %d repro(s) to %s\n", len(findings), outPath)
	}

	switch {
	case summary.Errors > 0:
		return 2
	case summary.Counterexamples > 0:
		return 1
	}
	return 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// runReplay re-executes every serialized counterexample and checks it
// still reproduces its recorded violation class.
func runReplay(path string) int {
	f, err := os.Open(path)
	fail(err)
	findings, err := crashtest.ReadFindings(f)
	f.Close()
	fail(err)
	if len(findings) == 0 {
		fmt.Fprintln(os.Stderr, "crashhunt: no findings in", path)
		return 2
	}
	mismatches, errors := 0, 0
	for i := range findings {
		fd := &findings[i]
		out, err := crashtest.Replay(*fd, crashtest.Options{})
		id := fmt.Sprintf("%s/%s", fd.Case.Name, fd.Case.Technique)
		switch {
		case err != nil:
			errors++
			fmt.Printf("ERROR      %s: %v\n", id, err)
		case out.Class != fd.Class:
			mismatches++
			fmt.Printf("MISMATCH   %s: recorded %s, replayed %q\n", id, fd.Class, out.Class)
		default:
			fmt.Printf("reproduced %s: %s via %s\n", id, fd.Class, fd.Schedule)
		}
	}
	switch {
	case errors > 0:
		return 2
	case mismatches > 0:
		return 1
	}
	return 0
}

// buildCases assembles the hunt list from the benchmark and fuzz selections.
func buildCases(benchSpec string, techs []string, fuzzN int, fuzzSeed, inputSeed int64) ([]crashtest.Case, error) {
	names, err := cli.BenchNames(benchSpec)
	if err != nil {
		return nil, err
	}
	cases, err := crashtest.BenchCases(names, techs, inputSeed)
	if err != nil {
		return nil, err
	}
	if fuzzN > 0 {
		cases = append(cases, crashtest.FuzzCases(fuzzSeed, fuzzN, techs, inputSeed)...)
	}
	return cases, nil
}

func parseTechs(spec string) ([]string, error) {
	if spec == "all" || spec == "" {
		return crashtest.TechniqueNames(), nil
	}
	names := cli.SplitList(spec)
	for _, n := range names {
		if _, err := crashtest.TechniqueByName(n); err != nil {
			return nil, err
		}
	}
	return names, nil
}

var fail = cli.Fail("crashhunt", 2)
