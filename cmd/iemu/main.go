// Command iemu executes a program (MiniC source or textual IR) under the
// intermittent-computing emulator and reports the outcome and the energy
// ledger.
//
//	iemu prog.mc                       # continuous power
//	iemu -eb 3000 prog.ir              # intermittent, capacitor = 3000 nJ
//	iemu -eb 3000 -vmsize 2048 prog.ir
//	iemu -seed 7 prog.mc               # workload inputs from another seed
//
// Power environments (see "Power environments" in EXPERIMENTS.md):
//
//	iemu -eb 3000 -power solar prog.mc               # harvested solar diurnal profile
//	iemu -eb 3000 -power rf:seed=7,gap=90000 prog.mc # bursty RF
//	iemu -power duty:cap=2500 prog.mc                # capacitor sized by the spec
//	iemu -eb 3000 -power trace:run.ndjson prog.mc    # replay a recorded trace
//	iemu -eb 3000 -power solar -record run.ndjson prog.mc  # record this run
//
// Observability exports (see "Observing a run" in the README):
//
//	iemu -eb 3000 -timeline t.json prog.mc   # Chrome trace (Perfetto)
//	iemu -eb 3000 -folded f.txt prog.mc      # energy flamegraph stacks
//	iemu -eb 3000 -events e.ndjson prog.mc   # raw event stream
//	iemu -eb 3000 -sites prog.mc             # per-checkpoint-site table
//
// Fault injection (see "Hunting crash-consistency bugs" in the README):
//
//	iemu -eb 3000 -inject step@120 prog.mc            # fail at the 120th instruction
//	iemu -eb 3000 -inject mid-save@2,step@500 prog.mc # torn 2nd save, then a step failure
//
// The exit status is 0 only when the run completes; other verdicts
// (stuck, poisoned, budget exceeded) exit 1 so scripts can rely on it.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"schematic/internal/cli"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/harvest"
	"schematic/internal/obs"
	"schematic/internal/trace"
)

func main() {
	var (
		eb       = flag.Float64("eb", 0, "capacitor energy in nJ (0 = continuous power)")
		period   = flag.Int64("tbpf", 0, "also fail every this many active cycles (periodic TBPF mode)")
		vmSize   = flag.Int("vmsize", 2048, "SVM in bytes")
		seed     = flag.Int64("seed", 1, "input seed")
		quiet    = flag.Bool("q", false, "print only the program output")
		timeline = flag.String("timeline", "", "write a Chrome trace-event timeline (Perfetto) to this file")
		folded   = flag.String("folded", "", "write folded energy stacks (flamegraph input) to this file")
		events   = flag.String("events", "", "write the raw NDJSON event stream to this file")
		sites    = flag.Bool("sites", false, "print the per-checkpoint-site energy table")
		inject   = flag.String("inject", "", "comma-separated failure points (kind@n, e.g. step@120,mid-save@2) injected on top of exhaustion")
		power    = flag.String("power", "", "power-environment spec (e.g. solar, rf:seed=7, duty:duty=0.2, trace:run.ndjson)")
		record   = flag.String("record", "", "record this run's power history as a replayable NDJSON trace file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iemu [flags] <prog.mc|prog.ir>")
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	m, _, _, err := cli.LoadProgram(path)
	fail(err)

	cfg, err := buildConfig(*eb, *period, *inject, *power, *vmSize)
	fail(err)
	cfg.Inputs = trace.RandomInputs(m, rand.New(rand.NewSource(*seed)))

	var rec *harvest.Recorder
	if *record != "" {
		if !cfg.Intermittent {
			fail(fmt.Errorf("-record needs a power-constrained run: give -eb or -power"))
		}
		rec = harvest.NewRecorder(cfg.Schedule, cfg.EB)
		rec.SampleEvery = 5_000
		cfg.Schedule = rec
	}

	var (
		observers []emulator.Observer
		tl        *obs.Timeline
		fl        *obs.Flame
		sw        *obs.StreamWriter
		col       *obs.Collector
		eventsF   *os.File
	)
	if *timeline != "" {
		tl = obs.NewTimeline(cfg.Model.EnergyPerCycle)
		observers = append(observers, tl)
	}
	if *folded != "" {
		fl = obs.NewFlame()
		observers = append(observers, fl)
	}
	if *events != "" {
		eventsF, err = os.Create(*events)
		fail(err)
		sw = obs.NewStreamWriter(eventsF)
		observers = append(observers, sw)
	}
	if *sites {
		col = obs.NewCollector()
		observers = append(observers, col)
	}
	cfg.Observer = emulator.MultiObserver(observers...)

	res, err := emulator.Run(m, cfg)
	fail(err)

	if tl != nil {
		fail(cli.WriteTo(*timeline, tl.WriteChromeTrace))
	}
	if fl != nil {
		fail(cli.WriteTo(*folded, fl.WriteFolded))
	}
	if sw != nil {
		fail(sw.Flush())
		fail(eventsF.Close())
	}
	if rec != nil {
		fail(cli.WriteTo(*record, rec.Trace().Write))
	}

	for _, v := range res.Output {
		fmt.Println(v)
	}
	if !*quiet {
		l := res.Energy
		fmt.Fprintf(os.Stderr, "verdict:        %v\n", res.Verdict)
		fmt.Fprintf(os.Stderr, "cycles:         %d (total incl. re-exec: %d)\n", res.Cycles, res.TotalCycles)
		fmt.Fprintf(os.Stderr, "energy:         %.1f µJ  (compute %.1f, save %.1f, restore %.1f, re-exec %.1f)\n",
			l.Total()/1000, l.Computation/1000, l.Save/1000, l.Restore/1000, l.Reexecution/1000)
		fmt.Fprintf(os.Stderr, "power failures: %d   saves: %d   restores: %d   sleeps: %d\n",
			res.PowerFailures, res.Saves, res.Restores, res.Sleeps)
		if res.InjectedFailures > 0 || res.SaveAttempts != int64(res.Saves) {
			fmt.Fprintf(os.Stderr, "injected:       %d   save attempts: %d (torn/failed: %d)\n",
				res.InjectedFailures, res.SaveAttempts, res.SaveAttempts-int64(res.Saves))
		}
		fmt.Fprintf(os.Stderr, "VM high water:  %d B\n", res.MaxVMBytes)
	}
	if col != nil {
		if err := col.Reconcile(res); err != nil {
			fail(err)
		}
		col.RenderSites(os.Stderr)
	}
	if res.Verdict != emulator.Completed {
		os.Exit(1)
	}
}

// buildConfig assembles the emulator configuration from the power-model
// flags, all routed through the shared cli.PowerSpec grammar: the
// -power spec supplies the base physics (harvested capacitor, replayed
// trace, or synthetic members over exhaustion), while -tbpf and -inject
// compose periodic and trace members on top. Any power flag implies
// intermittent mode; without -eb, a harvested spec must pin its own
// capacitor (cap=) and synthetic schedules run energy-unconstrained.
// The config is validated here so flag mistakes surface before the
// program loads and runs, not as a mid-pipeline failure.
func buildConfig(eb float64, period int64, inject, power string, vmSize int) (emulator.Config, error) {
	spec, err := cli.ParsePower(power)
	if err != nil {
		return emulator.Config{}, err
	}
	var points []emulator.FailPoint
	if inject != "" {
		if points, err = parseInject(inject); err != nil {
			return emulator.Config{}, err
		}
	}

	cfg := emulator.Config{Model: energy.MSP430FR5969(), VMSize: vmSize}
	if eb <= 0 && spec.Empty() && period <= 0 && len(points) == 0 {
		return cfg, cfg.Validate() // continuous power
	}
	cfg.Intermittent = true
	cfg.EB = eb
	if cfg.EB == 0 {
		switch {
		case spec.Capacity() > 0:
			cfg.EB = spec.Capacity()
		case spec.Harvested():
			return emulator.Config{}, fmt.Errorf("harvested -power needs a capacitor size: give -eb or cap=<nJ>")
		default:
			cfg.EB = 1e12 // energy unconstrained: failures come from the schedule
		}
	}

	base, err := spec.Build(cfg.EB)
	if err != nil {
		return emulator.Config{}, err
	}
	var scheds []emulator.PowerSchedule
	if base != nil {
		scheds = append(scheds, base)
	}
	if period > 0 {
		scheds = append(scheds, emulator.Periodic(period))
	}
	if len(points) > 0 {
		scheds = append(scheds, emulator.TraceSchedule(points...))
	}
	if base == nil && len(scheds) > 0 {
		// Synthetic-only members ride on the built-in exhaustion physics.
		scheds = append([]emulator.PowerSchedule{emulator.Exhaustion()}, scheds...)
	}
	if len(scheds) > 0 {
		cfg.Schedule = emulator.Schedules(scheds...)
	}
	if err := cfg.Validate(); err != nil {
		return emulator.Config{}, err
	}
	return cfg, nil
}

// parseInject parses a comma-separated failure-point list (kind@n).
func parseInject(s string) ([]emulator.FailPoint, error) {
	var out []emulator.FailPoint
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, nStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad failure point %q (want kind@n)", part)
		}
		kind, err := emulator.ParsePointKind(kindStr)
		if err != nil {
			return nil, err
		}
		var n int64
		if _, err := fmt.Sscanf(nStr, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bad failure point %q: n must be a positive integer", part)
		}
		out = append(out, emulator.FailPoint{Kind: kind, N: n})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -inject spec")
	}
	return out, nil
}

var fail = cli.Fail("iemu", 1)
