// Command iemu executes a program (MiniC source or textual IR) under the
// intermittent-computing emulator and reports the outcome and the energy
// ledger.
//
//	iemu prog.mc                       # continuous power
//	iemu -eb 3000 prog.ir              # intermittent, capacitor = 3000 nJ
//	iemu -eb 3000 -vmsize 2048 prog.ir
//	iemu -seed 7 prog.mc               # workload inputs from another seed
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

func main() {
	var (
		eb     = flag.Float64("eb", 0, "capacitor energy in nJ (0 = continuous power)")
		period = flag.Int64("tbpf", 0, "also fail every this many active cycles (periodic TBPF mode)")
		vmSize = flag.Int("vmsize", 2048, "SVM in bytes")
		seed   = flag.Int64("seed", 1, "input seed")
		quiet  = flag.Bool("q", false, "print only the program output")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iemu [flags] <prog.mc|prog.ir>")
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	srcBytes, err := os.ReadFile(path)
	fail(err)
	src := string(srcBytes)

	var m *ir.Module
	if strings.HasSuffix(path, ".ir") || strings.HasPrefix(strings.TrimSpace(src), "module ") {
		m, err = ir.Parse(src)
		fail(err)
		fail(ir.Verify(m))
	} else {
		name := strings.TrimSuffix(path[strings.LastIndex(path, "/")+1:], ".mc")
		m, err = minic.Compile(name, src)
		fail(err)
	}

	cfg := emulator.Config{
		Model:  energy.MSP430FR5969(),
		VMSize: *vmSize,
		Inputs: trace.RandomInputs(m, rand.New(rand.NewSource(*seed))),
	}
	if *eb > 0 {
		cfg.Intermittent = true
		cfg.EB = *eb
	}
	if *period > 0 {
		cfg.Intermittent = true
		cfg.FailEveryCycles = *period
		if cfg.EB == 0 {
			cfg.EB = 1e12 // energy unconstrained: failures come from the period
		}
	}
	res, err := emulator.Run(m, cfg)
	fail(err)

	for _, v := range res.Output {
		fmt.Println(v)
	}
	if *quiet {
		return
	}
	l := res.Energy
	fmt.Fprintf(os.Stderr, "verdict:        %v\n", res.Verdict)
	fmt.Fprintf(os.Stderr, "cycles:         %d (total incl. re-exec: %d)\n", res.Cycles, res.TotalCycles)
	fmt.Fprintf(os.Stderr, "energy:         %.1f µJ  (compute %.1f, save %.1f, restore %.1f, re-exec %.1f)\n",
		l.Total()/1000, l.Computation/1000, l.Save/1000, l.Restore/1000, l.Reexecution/1000)
	fmt.Fprintf(os.Stderr, "power failures: %d   saves: %d   sleeps: %d\n",
		res.PowerFailures, res.Saves, res.Sleeps)
	fmt.Fprintf(os.Stderr, "VM high water:  %d B\n", res.MaxVMBytes)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "iemu: %v\n", err)
		os.Exit(1)
	}
}
