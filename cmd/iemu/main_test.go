package main

import (
	"errors"
	"strings"
	"testing"

	"schematic/internal/emulator"
)

// TestBuildConfigTBPFWithInject: -tbpf and -inject used together must
// produce a valid composed schedule, not trip Config's
// FailEveryCycles/Schedule exclusivity check at Run time.
func TestBuildConfigTBPFWithInject(t *testing.T) {
	cfg, err := buildConfig(0, 50_000, "step@120,mid-save@2", "", 2048)
	if err != nil {
		t.Fatalf("buildConfig(-tbpf -inject): %v", err)
	}
	if cfg.FailEveryCycles != 0 {
		t.Errorf("FailEveryCycles = %d, want 0 (folded into the schedule)", cfg.FailEveryCycles)
	}
	if cfg.Schedule == nil {
		t.Error("Schedule is nil, want composed exhaustion+periodic+trace")
	}
	if !cfg.Intermittent || cfg.EB <= 0 {
		t.Errorf("Intermittent=%v EB=%g, want intermittent with positive EB", cfg.Intermittent, cfg.EB)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("composed config fails Validate: %v", err)
	}
}

// TestBuildConfigValidates: flag mistakes surface as ConfigError from
// buildConfig itself, before any program is loaded or run.
func TestBuildConfigValidates(t *testing.T) {
	if _, err := buildConfig(0, 0, "", "", -1); !errors.Is(err, emulator.ErrInvalidConfig) {
		t.Errorf("negative vmsize: got %v, want ErrInvalidConfig", err)
	}
	if _, err := buildConfig(3000, 0, "step@zero", "", 2048); err == nil {
		t.Error("malformed -inject spec: got nil error")
	}
	for _, tc := range []struct {
		eb     float64
		period int64
		inject string
		power  string
	}{
		{3000, 0, "", ""},
		{0, 100, "", ""},
		{0, 0, "step@7", ""},
		{3000, 100, "step@7", ""},
		{3000, 0, "", "solar:seed=7"},
		{3000, 100, "step@7", "rf"},
		{0, 0, "", "duty:cap=2500"},
		{0, 0, "", "periodic:cycles=9000"},
	} {
		cfg, err := buildConfig(tc.eb, tc.period, tc.inject, tc.power, 2048)
		if err != nil {
			t.Errorf("buildConfig(%g,%d,%q,%q): %v", tc.eb, tc.period, tc.inject, tc.power, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("buildConfig(%g,%d,%q,%q) returned invalid config: %v", tc.eb, tc.period, tc.inject, tc.power, err)
		}
	}
}

// TestBuildConfigPower: -power routes through the shared spec grammar.
func TestBuildConfigPower(t *testing.T) {
	// A harvested spec without -eb or cap= has no capacitor size.
	if _, err := buildConfig(0, 0, "", "solar", 2048); err == nil || !strings.Contains(err.Error(), "capacitor size") {
		t.Errorf("harvested spec without sizing: got %v", err)
	}
	// cap= pins the budget.
	cfg, err := buildConfig(0, 0, "", "duty:cap=2500", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.EB != 2500 || !cfg.Intermittent || cfg.Schedule == nil {
		t.Errorf("cap= spec: EB=%g intermittent=%v schedule=%v", cfg.EB, cfg.Intermittent, cfg.Schedule)
	}
	if !strings.Contains(cfg.Schedule.Name(), "harvest(duty") {
		t.Errorf("schedule name %q", cfg.Schedule.Name())
	}
	// Malformed specs fail before anything runs.
	if _, err := buildConfig(3000, 0, "", "warp:speed=9", 2048); err == nil {
		t.Error("bad -power spec: got nil error")
	}
	// -power with -tbpf and -inject composes all three.
	cfg, err = buildConfig(3000, 20_000, "step@9", "rf:seed=2", 2048)
	if err != nil {
		t.Fatal(err)
	}
	name := cfg.Schedule.Name()
	for _, want := range []string{"harvest(rf", "periodic", "trace"} {
		if !strings.Contains(name, want) {
			t.Errorf("composed schedule %q lacks %s member", name, want)
		}
	}
}
