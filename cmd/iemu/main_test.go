package main

import (
	"errors"
	"testing"

	"schematic/internal/emulator"
)

// TestBuildConfigTBPFWithInject: -tbpf and -inject used together must
// produce a valid composed schedule, not trip Config's
// FailEveryCycles/Schedule exclusivity check at Run time.
func TestBuildConfigTBPFWithInject(t *testing.T) {
	cfg, err := buildConfig(0, 50_000, "step@120,mid-save@2", 2048)
	if err != nil {
		t.Fatalf("buildConfig(-tbpf -inject): %v", err)
	}
	if cfg.FailEveryCycles != 0 {
		t.Errorf("FailEveryCycles = %d, want 0 (folded into the schedule)", cfg.FailEveryCycles)
	}
	if cfg.Schedule == nil {
		t.Error("Schedule is nil, want composed exhaustion+periodic+trace")
	}
	if !cfg.Intermittent || cfg.EB <= 0 {
		t.Errorf("Intermittent=%v EB=%g, want intermittent with positive EB", cfg.Intermittent, cfg.EB)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("composed config fails Validate: %v", err)
	}
}

// TestBuildConfigValidates: flag mistakes surface as ConfigError from
// buildConfig itself, before any program is loaded or run.
func TestBuildConfigValidates(t *testing.T) {
	if _, err := buildConfig(0, 0, "", -1); !errors.Is(err, emulator.ErrInvalidConfig) {
		t.Errorf("negative vmsize: got %v, want ErrInvalidConfig", err)
	}
	if _, err := buildConfig(3000, 0, "step@zero", 2048); err == nil {
		t.Error("malformed -inject spec: got nil error")
	}
	for _, tc := range []struct {
		eb     float64
		period int64
		inject string
	}{
		{3000, 0, ""},
		{0, 100, ""},
		{0, 0, "step@7"},
		{3000, 100, "step@7"},
	} {
		cfg, err := buildConfig(tc.eb, tc.period, tc.inject, 2048)
		if err != nil {
			t.Errorf("buildConfig(%g,%d,%q): %v", tc.eb, tc.period, tc.inject, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("buildConfig(%g,%d,%q) returned invalid config: %v", tc.eb, tc.period, tc.inject, err)
		}
	}
}
