// Command loadtest fires a configurable mix of concurrent requests at
// a running schematicd and reports latency percentiles, throughput,
// and cache/store hit-rate deltas as JSON.
//
//	loadtest -n 2000 -c 32                        # closed loop
//	loadtest -rate 500 -duration 30s              # open loop
//	loadtest -n 500 -mix emulate=1 -seeds 1       # cache-saturating
//	loadtest -n 200 -max-p99 500                  # gate: fail if p99 > 500ms
//
// The daemon address comes from -addr or $SCHEMATICD_ADDR. Exit
// status: 0 on success, 1 when the run errored or a gate tripped, 2 on
// usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"schematic/internal/cli"
	"schematic/internal/loadtest"
)

var fail = cli.Fail("loadtest", 2)

func main() {
	var (
		addr     = flag.String("addr", envOr("SCHEMATICD_ADDR", "127.0.0.1:8472"), "schematicd address (host:port)")
		n        = flag.Int("n", 0, "total requests (closed loop unless -rate is set; 0 = run for -duration)")
		c        = flag.Int("c", 8, "concurrent client workers")
		rate     = flag.Float64("rate", 0, "open-loop aggregate request rate per second (0 = closed loop)")
		duration = flag.Duration("duration", 0, "time bound (required when -n is 0)")
		seeds    = flag.Int("seeds", 3, "distinct workload seeds per kind (small = cache-heavy)")
		mixFlag  = flag.String("mix", "", "request mix weights, e.g. compile=2,emulate=12,validate=1,grid=1")
		maxP99   = flag.Float64("max-p99", 0, "gate: exit 1 if overall p99 exceeds this many milliseconds")
		maxErr   = flag.Int("max-errors", 0, "gate: exit 1 if more than this many requests fail")
		out      = flag.String("o", "", "write the JSON report to this file instead of stdout")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fail(fmt.Errorf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fail(err)
	}

	rep, err := loadtest.Run(context.Background(), loadtest.Options{
		BaseURL:     "http://" + *addr,
		Requests:    *n,
		Concurrency: *c,
		RatePerSec:  *rate,
		Duration:    *duration,
		Seeds:       *seeds,
		Mix:         mix,
	})
	if err != nil {
		fail(err)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fail(err)
	}

	code := 0
	if rep.Errors > *maxErr {
		fmt.Fprintf(os.Stderr, "loadtest: %d errors exceed -max-errors %d\n", rep.Errors, *maxErr)
		code = 1
	}
	if *maxP99 > 0 && rep.P99MS > *maxP99 {
		fmt.Fprintf(os.Stderr, "loadtest: p99 %.1fms exceeds -max-p99 %.1fms\n", rep.P99MS, *maxP99)
		code = 1
	}
	os.Exit(code)
}

// parseMix reads "kind=weight,..." into a Mix; empty means defaults.
func parseMix(s string) (loadtest.Mix, error) {
	var m loadtest.Mix
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(kv[1]))
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad -mix weight in %q", part)
		}
		switch strings.TrimSpace(kv[0]) {
		case "compile":
			m.Compile = w
		case "emulate":
			m.Emulate = w
		case "validate":
			m.Validate = w
		case "grid":
			m.Grid = w
		default:
			return m, fmt.Errorf("unknown -mix kind %q", kv[0])
		}
	}
	if m.Compile+m.Emulate+m.Validate+m.Grid == 0 {
		return m, fmt.Errorf("-mix %q has zero total weight", s)
	}
	return m, nil
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}
