// Command paper regenerates every table and figure of the paper's
// evaluation (Section IV) on the bundled MiBench2-style benchmark suite:
//
//	paper -all                # everything
//	paper -table 1            # Table I   (VM-size support matrix)
//	paper -table 2            # Table II  (execution time, minimal failures)
//	paper -table 3            # Table III (forward progress)
//	paper -figure 6           # Fig. 6    (energy breakdown, TBPF=10k)
//	paper -figure 7           # Fig. 7    (SCHEMATIC vs All-NVM)
//	paper -figure 8           # Fig. 8    (capacitor-size sweep on crc)
//	paper -headline           # §IV-D averages
//	paper -ablations          # design-choice ablation study (beyond paper)
//
// The experiment grid fans out across -jobs worker goroutines (default:
// all CPUs; -jobs 1 runs sequentially). Tables and figures go to stdout
// and are byte-identical regardless of -jobs; timings and the run-report
// summary go to stderr. -stats FILE dumps one NDJSON record per grid
// cell (wall/apply/emulate timings, steps, power failures, energy
// breakdown) for offline analysis.
//
// Absolute numbers come from this reproduction's energy model, not the
// authors' testbed; the shapes are the object of comparison (see
// EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"schematic/internal/bench"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate Table 1, 2 or 3")
		figure      = flag.Int("figure", 0, "regenerate Figure 6, 7 or 8")
		headline    = flag.Bool("headline", false, "print the §IV-D headline averages")
		ablations   = flag.Bool("ablations", false, "run the design-choice ablation study")
		all         = flag.Bool("all", false, "regenerate everything")
		profileRuns = flag.Int("profile-runs", 50, "profiling executions per benchmark")
		vmSize      = flag.Int("vmsize", 2048, "SVM in bytes")
		seed        = flag.Int64("seed", 1, "input-generation seed")
		fig8Bench   = flag.String("fig8-bench", "crc", "benchmark for the Figure 8 sweep")
		jobs        = flag.Int("jobs", runtime.NumCPU(), "experiment-grid workers (1 = sequential)")
		statsOut    = flag.String("stats", "", "dump per-cell NDJSON records to this file")
	)
	flag.Parse()

	// ^C / SIGTERM cancels the in-flight experiment grid promptly instead
	// of letting it run to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	h := bench.NewHarness()
	h.ProfileRuns = *profileRuns
	h.VMSize = *vmSize
	h.Seed = *seed
	h.Jobs = *jobs
	// -stats turns on per-site attribution: every cell's energy is
	// reconciled against the observer ledgers and the hottest checkpoint
	// sites are embedded in each NDJSON record.
	h.CollectSites = *statsOut != ""
	report := h.StartReport()

	if !*all && *table == 0 && *figure == 0 && !*headline && !*ablations {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "paper: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "(%s regenerated in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *all || *table == 1 {
		run("Table I", func() error {
			t1, err := h.Table1(ctx)
			if err != nil {
				return err
			}
			bench.RenderTable1(os.Stdout, t1)
			fmt.Println()
			return nil
		})
	}
	if *all || *table == 2 {
		run("Table II", func() error {
			rows, err := h.Table2(ctx)
			if err != nil {
				return err
			}
			bench.RenderTable2(os.Stdout, rows)
			fmt.Println()
			return nil
		})
	}
	if *all || *table == 3 {
		run("Table III", func() error {
			t3, err := h.Table3(ctx)
			if err != nil {
				return err
			}
			bench.RenderTable3(os.Stdout, t3)
			fmt.Println()
			return nil
		})
	}
	var fig6 map[string]map[string]*bench.TechRun
	if *all || *figure == 6 || *headline {
		run("Figure 6", func() error {
			var err error
			fig6, err = h.Figure6(ctx, bench.Fig6TBPF)
			if err != nil {
				return err
			}
			if *all || *figure == 6 {
				bench.RenderFigure6(os.Stdout, fig6, bench.Fig6TBPF)
				fmt.Println()
			}
			return nil
		})
	}
	if *all || *figure == 7 {
		run("Figure 7", func() error {
			fig7, err := h.Figure7(ctx, bench.Fig6TBPF)
			if err != nil {
				return err
			}
			bench.RenderFigure7(os.Stdout, fig7, bench.Fig6TBPF)
			fmt.Println()
			return nil
		})
	}
	if *all || *figure == 8 {
		run("Figure 8", func() error {
			fig8, err := h.Figure8(ctx, *fig8Bench)
			if err != nil {
				return err
			}
			bench.RenderFigure8(os.Stdout, fig8, *fig8Bench)
			fmt.Println()
			return nil
		})
	}
	if *all || *headline {
		run("Headline", func() error {
			bench.RenderHeadline(os.Stdout, bench.ComputeHeadline(fig6))
			fmt.Println()
			return nil
		})
	}
	if *all || *ablations {
		run("Ablations", func() error {
			abl, err := h.Ablations(ctx, bench.Fig6TBPF)
			if err != nil {
				return err
			}
			bench.RenderAblations(os.Stdout, abl, bench.Fig6TBPF)
			fmt.Println()
			return nil
		})
	}

	report.Summary(os.Stderr, h)
	if *statsOut != "" {
		f, err := os.Create(*statsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper: -stats: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteNDJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "paper: -stats: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "paper: -stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d cell records to %s\n", len(report.Records()), *statsOut)
	}
}
