// Command schemabench measures the toolchain's end-to-end performance
// and writes a machine-readable BENCH_*.json report:
//
//   - grid: emulation throughput (Minstr/s) over the benchmark x
//     technique evaluation grid under intermittent power, for both the
//     compiled-dispatch engine and the per-instruction interpreter,
//     with speedups against the interpreter and against the recorded
//     pre-compiled-dispatch baseline.
//
//   - emulate: end-to-end service latency (p50/p99) of POST /v1/emulate
//     against an in-process schematicd, with per-request seeds so the
//     content-addressed cache cannot short-circuit the pipeline.
//
//   - grid_service: POST /v1/grid wall-clock for a small matrix, cold
//     vs warm (in-memory cache) vs store-warm (fresh daemon on the same
//     -store directory) — the restart-survival dividend. The harness
//     fails outright if a warm or store-warm grid recomputes any cell.
//
//   - loadtest: the internal/loadtest generator's closed-loop mixed
//     workload against an in-process daemon with a disk store:
//     p50/p99/throughput and the run's cache hit rate.
//
//   - crashtest: crash-consistency hunter throughput in cases/second.
//
//   - harvest: what a harvested-energy schedule (internal/harvest
//     capacitor over solar/RF/duty waveforms) costs the emulator
//     relative to the built-in exhaustion physics on the same placed
//     cells — the price of the stepped schedule path plus the
//     capacitor integration — with a record-to-replay integrity check
//     on the NDJSON power trace.
//
//   - verify: bounded model checker (internal/verify) throughput over
//     the exhaustively-checkable subset (crc, randmath): persistent
//     states and edges per second, the hash-dedup hit rate, and the
//     exhaustive-vs-sampling wall-clock ratio against the hunter on the
//     same cases — the price of a proof relative to a probe.
//
//   - sse: live-console overhead. Two views, because they answer
//     different questions. The publish_ns_* figures are the emulator
//     hot path's per-event cost of hub fan-out with 0/1/16 actively
//     draining subscribers — the "can a slow reader stall the
//     emulator" metric, and the basis of one_sub_hotpath_overhead_pct
//     (publisher-side overhead relative to the per-event emulate
//     budget). The observed_p50_ms_* figures are end-to-end POST
//     latencies with live SSE subscribers attached; on few-CPU hosts
//     (see cpus) these also charge the subscribers' own JSON-render
//     time against the run, which is core sharing, not fan-out stall.
//     Replay throughput of a retained stream rounds out the cell. The
//     unobserved no-subscriber baseline is the emulate section above.
//
//     schemabench                      # full run, report to stdout
//     schemabench -o BENCH_010.json    # write the report to a file
//     schemabench -smoke               # small grid, seconds not minutes
//     schemabench -smoke -check BENCH_010.json  # regression gate for CI
//
// -check compares the measured grid throughput against the committed
// report and exits nonzero on a >20% regression of the compiled engine.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"schematic/internal/baselines"
	"schematic/internal/bench"
	"schematic/internal/crashtest"
	"schematic/internal/emulator"
	"schematic/internal/harvest"
	"schematic/internal/ir"
	"schematic/internal/loadtest"
	"schematic/internal/obs"
	"schematic/internal/server"
	"schematic/internal/store"
	"schematic/internal/verify"
)

// prechangeGridMinstrPerSec is the full-grid throughput of the emulator
// immediately before compiled block dispatch landed, measured with this
// harness's exact grid methodology (the full embedded benchmark suite x
// supported techniques at TBPF=100000 — 42 cells, 7343068 steps/iter —
// 2 timed iterations after warmup) on the machine that produced the
// committed BENCH_*.json; the best of three repeats is recorded so the
// speedup claim is conservative. The pre-change engine no longer exists
// in the tree; see EXPERIMENTS.md ("Compiled dispatch") for the
// measurement protocol.
const prechangeGridMinstrPerSec = 9.22

type gridReport struct {
	Cells        int     `json:"cells"`
	TBPF         int64   `json:"tbpf"`
	Iters        int     `json:"iters"`
	StepsPerIter int64   `json:"steps_per_iter"`
	CompiledMips float64 `json:"compiled_minstr_per_sec"`
	InterpMips   float64 `json:"interpreted_minstr_per_sec"`
	SpeedupVsInt float64 `json:"speedup_vs_interpreter"`

	// Full grid only: comparison against the recorded pre-change engine.
	PrechangeMips      float64 `json:"prechange_minstr_per_sec,omitempty"`
	SpeedupVsPrechange float64 `json:"speedup_vs_prechange,omitempty"`
}

type emulateReport struct {
	Requests int     `json:"requests"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// gridServiceReport measures POST /v1/grid end to end: one cold
// submission that computes every cell, a warm repeat answered from the
// in-memory cache, and a store-warm repeat on a fresh server sharing
// the cold run's store directory — a daemon restart in miniature.
type gridServiceReport struct {
	Cells            int     `json:"cells"`
	ColdMS           float64 `json:"cold_ms"`
	WarmMS           float64 `json:"warm_ms"`
	StoreWarmMS      float64 `json:"store_warm_ms"`
	WarmSpeedup      float64 `json:"warm_speedup"`
	StoreWarmSpeedup float64 `json:"store_warm_speedup"`
}

// loadtestReport is the generator's closed-loop mixed workload against
// an in-process daemon backed by a disk store.
type loadtestReport struct {
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	StorePuts     int64   `json:"store_puts"`
}

type crashReport struct {
	Cases       int     `json:"cases"`
	Seconds     float64 `json:"seconds"`
	CasesPerSec float64 `json:"cases_per_sec"`
}

// harvestReport compares emulation throughput under harvested-energy
// schedules against the built-in exhaustion physics on identical
// placed cells. Capacity = EB and Restart = 1 make every environment
// no harsher than exhaustion, so each harvested run must complete with
// output identical to its exhaustion twin — the cell doubles as a
// correctness check. OverheadPct is the per-instruction price of the
// stepped schedule path plus the capacitor integration.
type harvestReport struct {
	Environments    int     `json:"environments"`
	Cells           int     `json:"cells"`
	ExhaustionSteps int64   `json:"exhaustion_steps"`
	HarvestedSteps  int64   `json:"harvested_steps"`
	ExhaustionMips  float64 `json:"exhaustion_minstr_per_sec"`
	HarvestedMips   float64 `json:"harvested_minstr_per_sec"`
	OverheadPct     float64 `json:"schedule_overhead_pct"`
	TraceBytes      int     `json:"trace_bytes"`
	ReplayIdentical bool    `json:"replay_identical"`
}

type verifyReport struct {
	Cases    int `json:"cases"`
	Explored int `json:"explored"` // anytime cells actually model-checked
	// Totals across the explored cells.
	States int64 `json:"states"`
	Edges  int64 `json:"edges"`

	StatesPerSec float64 `json:"states_per_sec"`
	EdgesPerSec  float64 `json:"edges_per_sec"`
	// DedupHitRate is dedup hits / edges across the explored cells —
	// the fraction of injection points whose target state was already
	// visited (the acceptance bar is > 0.5).
	DedupHitRate float64 `json:"dedup_hit_rate"`

	// Wall-clock comparison on the identical case list: exhaustive
	// verification vs the sampling hunter. VsSampling > 1 is the price
	// of exhausting the state space instead of probing it.
	VerifySeconds   float64 `json:"verify_seconds"`
	SamplingSeconds float64 `json:"sampling_seconds"`
	VsSampling      float64 `json:"wallclock_vs_sampling"`
}

type sseReport struct {
	RequestsPerCell int `json:"requests_per_cell"`
	CPUs            int `json:"cpus"`

	// Publisher-side hub cost per event with K actively draining
	// subscribers — what fan-out adds to the emulator hot path. The
	// overhead percentage scales the 1-sub increment by the run's
	// per-event emulate budget (p50_0sub / events-per-run): the
	// emulate-throughput regression a subscriber can inflict by
	// existing, as opposed to by burning CPU rendering.
	PublishNS0Sub        float64 `json:"publish_ns_0sub"`
	PublishNS1Sub        float64 `json:"publish_ns_1sub"`
	PublishNS16Sub       float64 `json:"publish_ns_16sub"`
	OneSubHotpathPct     float64 `json:"one_sub_hotpath_overhead_pct"`
	SixteenSubHotpathPct float64 `json:"sixteen_sub_hotpath_overhead_pct"`

	// End-to-end p50 POST /v1/emulate latency of observed runs with K
	// live SSE readers. On few-CPU hosts this includes the readers'
	// own render time (core sharing), so it bounds the user-visible
	// cost, not the hot-path stall.
	P50MS0Sub          float64 `json:"observed_p50_ms_0sub"`
	P50MS1Sub          float64 `json:"observed_p50_ms_1sub"`
	P50MS16Sub         float64 `json:"observed_p50_ms_16sub"`
	OneSubDeltaPct     float64 `json:"one_sub_delta_pct"`
	SixteenSubDeltaPct float64 `json:"sixteen_sub_delta_pct"`

	// SSE replay of a retained run's ring, counted in event frames.
	ReplayEvents       int64   `json:"replay_events"`
	ReplayEventsPerSec float64 `json:"replay_events_per_sec"`
}

// hubPublishNS measures the emulator-side cost of one hub.Event with
// subs actively draining subscribers attached, in ns/event.
func hubPublishNS(subs, events int) float64 {
	h := obs.NewHub(0, nil)
	var wg sync.WaitGroup
	for k := 0; k < subs; k++ {
		sub := h.Subscribe(-1, 1024)
		wg.Add(1)
		go func(sub *obs.Sub) {
			defer wg.Done()
			buf := make([]obs.SeqEvent, 512)
			for {
				n, open := sub.Next(buf)
				if n == 0 {
					if !open {
						return
					}
					<-sub.Ready()
				}
			}
		}(sub)
	}
	ev := emulator.Event{Kind: emulator.EvCharge, Class: emulator.ChargeCompute, Energy: 1}
	start := time.Now()
	for i := 0; i < events; i++ {
		h.Event(ev)
	}
	elapsed := time.Since(start)
	h.Close()
	wg.Wait()
	return float64(elapsed.Nanoseconds()) / float64(events)
}

type report struct {
	Version     int                `json:"version"`
	GeneratedBy string             `json:"generated_by"`
	Smoke       bool               `json:"smoke,omitempty"`
	Grid        *gridReport        `json:"grid,omitempty"`
	SmokeGrid   *gridReport        `json:"smoke_grid,omitempty"`
	Emulate     *emulateReport     `json:"emulate"`
	GridService *gridServiceReport `json:"grid_service"`
	Loadtest    *loadtestReport    `json:"loadtest"`
	Crashtest   *crashReport       `json:"crashtest"`
	Verify      *verifyReport      `json:"verify"`
	Harvest     *harvestReport     `json:"harvest"`
	SSE         *sseReport         `json:"sse"`
}

func main() {
	var (
		out   = flag.String("o", "", "write the JSON report to this file (default stdout)")
		smoke = flag.Bool("smoke", false, "small grid and request counts: seconds, not minutes")
		check = flag.String("check", "", "compare against this committed BENCH_*.json and fail on >20% grid regression")
	)
	flag.Parse()

	rep := &report{Version: 10, GeneratedBy: "cmd/schemabench", Smoke: *smoke}
	grid, err := measureGrid(*smoke)
	fail(err)
	if *smoke {
		rep.SmokeGrid = grid
	} else {
		rep.Grid = grid
		grid.PrechangeMips = prechangeGridMinstrPerSec
		grid.SpeedupVsPrechange = round2(grid.CompiledMips / prechangeGridMinstrPerSec)
		// Also record the smoke-sized grid so `schemabench -smoke -check`
		// has a like-for-like reference in the committed report.
		rep.SmokeGrid, err = measureGrid(true)
		fail(err)
	}
	rep.Emulate, err = measureEmulate(*smoke)
	fail(err)
	rep.GridService, err = measureGridService(*smoke)
	fail(err)
	rep.Loadtest, err = measureLoadtest(*smoke)
	fail(err)
	rep.Crashtest, err = measureCrashtest(*smoke)
	fail(err)
	rep.Verify, err = measureVerify(*smoke)
	fail(err)
	rep.Harvest, err = measureHarvest(*smoke)
	fail(err)
	rep.SSE, err = measureSSE(*smoke)
	fail(err)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	fail(enc.Encode(rep))
	if *out != "" {
		fail(os.WriteFile(*out, buf.Bytes(), 0o644))
		fmt.Fprintf(os.Stderr, "schemabench: wrote %s\n", *out)
	} else {
		os.Stdout.Write(buf.Bytes())
	}

	if *check != "" {
		err := checkRegression(*check, grid)
		// The smoke grid times ~1 ms of emulation; on a busy CI host a
		// single scheduling blip can halve the figure. A real regression
		// survives re-measurement, noise does not: re-measure up to
		// twice before failing the gate.
		for retries := 0; err != nil && retries < 2; retries++ {
			fmt.Fprintf(os.Stderr, "schemabench: %v — re-measuring\n", err)
			g, gerr := measureGrid(*smoke)
			fail(gerr)
			err = checkRegression(*check, g)
		}
		fail(err)
	}
}

// gridCells builds the evaluation grid: every benchmark under every
// technique that supports it at the given SVM, transformed for the EB
// derived from the TBPF.
type cell struct {
	mod    *ir.Module
	inputs map[string][]int64
	eb     float64
}

func gridCells(benches []*bench.Benchmark, tbpf int64, profileRuns int) ([]cell, error) {
	h := bench.NewHarness()
	h.ProfileRuns = profileRuns
	var cells []cell
	for _, b := range benches {
		m, err := b.Module()
		if err != nil {
			return nil, err
		}
		prof, err := h.Profile(context.Background(), b)
		if err != nil {
			return nil, err
		}
		eb := prof.EBForTBPF(tbpf)
		inputs, err := b.Inputs(h.Seed)
		if err != nil {
			return nil, err
		}
		for _, tech := range bench.Techniques() {
			if !tech.SupportsVM(m, h.VMSize) {
				continue
			}
			clone := ir.Clone(m)
			if err := tech.Apply(clone, baselines.Params{
				Model: h.Model, Budget: eb, VMSize: h.VMSize, Profile: prof,
			}); err != nil {
				continue // technique declines this program/budget
			}
			cells = append(cells, cell{mod: clone, inputs: inputs, eb: eb})
		}
	}
	return cells, nil
}

// measureGrid times both engines over the grid. Iteration 0 is a warmup
// (it populates the compiled-program cache and the allocator pools);
// only later iterations are timed. Both engines must execute the same
// step count — a divergence is a correctness bug, not a perf number.
func measureGrid(smoke bool) (*gridReport, error) {
	const tbpf = 100_000
	benches, err := bench.All() // full embedded suite, paper order plus extras
	if err != nil {
		return nil, err
	}
	iters, profileRuns := 2, 50
	if smoke {
		benches = nil
		for _, name := range []string{"crc", "randmath"} {
			b, err := bench.ByName(name)
			if err != nil {
				return nil, err
			}
			benches = append(benches, b)
		}
		iters, profileRuns = 1, 3
	}
	cells, err := gridCells(benches, tbpf, profileRuns)
	if err != nil {
		return nil, err
	}
	h := bench.NewHarness()

	run := func(interpret bool) (steps int64, emu time.Duration, err error) {
		for iter := 0; iter <= iters; iter++ {
			var iterSteps int64
			for i := range cells {
				c := &cells[i]
				start := time.Now()
				res, err := emulator.Run(c.mod, emulator.Config{
					Model: h.Model, VMSize: h.VMSize, Intermittent: true,
					EB: c.eb, Inputs: c.inputs, Interpret: interpret,
				})
				if err != nil {
					return 0, 0, err
				}
				if iter > 0 {
					iterSteps += res.Steps
					emu += time.Since(start)
				}
			}
			steps += iterSteps
		}
		return steps, emu, nil
	}

	compiledSteps, compiledDur, err := run(false)
	if err != nil {
		return nil, err
	}
	interpSteps, interpDur, err := run(true)
	if err != nil {
		return nil, err
	}
	if compiledSteps != interpSteps {
		return nil, fmt.Errorf("schemabench: engines disagree on grid step count: compiled %d, interpreted %d",
			compiledSteps, interpSteps)
	}
	g := &gridReport{
		Cells:        len(cells),
		TBPF:         tbpf,
		Iters:        iters,
		StepsPerIter: compiledSteps / int64(iters),
		CompiledMips: round2(float64(compiledSteps) / compiledDur.Seconds() / 1e6),
		InterpMips:   round2(float64(interpSteps) / interpDur.Seconds() / 1e6),
	}
	g.SpeedupVsInt = round2(g.CompiledMips / g.InterpMips)
	return g, nil
}

// measureEmulate drives POST /v1/emulate on an in-process schematicd and
// reports request-latency percentiles. Every request uses a distinct
// input seed, so each one is a cache miss that runs the full
// compile-profile-place-emulate pipeline.
func measureEmulate(smoke bool) (*emulateReport, error) {
	n := 40
	if smoke {
		n = 10
	}
	s := server.New(server.Config{Workers: 1, Logf: nil})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
		s.Close()
	}()

	lat := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		body, err := json.Marshal(server.Request{
			Bench: "crc",
			Options: server.Options{
				Technique:   "schematic",
				ProfileRuns: 5,
				Seed:        int64(1000 + i), // distinct digest per request
			},
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		resp, err := ts.Client().Post(ts.URL+"/v1/emulate", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("schemabench: emulate request %d: status %d", i, resp.StatusCode)
		}
		lat = append(lat, float64(time.Since(start))/float64(time.Millisecond))
	}
	sort.Float64s(lat)
	return &emulateReport{
		Requests: n,
		P50MS:    round2(lat[len(lat)/2]),
		P99MS:    round2(lat[min(len(lat)-1, len(lat)*99/100)]),
	}, nil
}

// postGrid submits one grid and returns the assembled table plus the
// request's wall time.
func postGrid(ts *httptest.Server, greq server.GridRequest) (*server.GridResponse, float64, error) {
	body, err := json.Marshal(greq)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/v1/grid", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, fmt.Errorf("schemabench: grid: status %d: %s", resp.StatusCode, raw)
	}
	var gresp server.GridResponse
	if err := json.NewDecoder(resp.Body).Decode(&gresp); err != nil {
		return nil, 0, err
	}
	return &gresp, ms, nil
}

// measureGridService times POST /v1/grid cold, warm, and store-warm.
// The store-warm leg stands up a brand-new Server on the cold run's
// store directory — the restart-survival contract — and the harness
// refuses to report if either repeat recomputes a single cell.
func measureGridService(smoke bool) (*gridServiceReport, error) {
	dir, err := os.MkdirTemp("", "schemabench-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	greq := server.GridRequest{
		Benches:    []string{"crc", "randmath", "bitcount"},
		Techniques: []string{"schematic", "ratchet", "mementos"},
		TBPFs:      []int64{2_000, 10_000},
		Options:    server.Options{ProfileRuns: 10},
	}
	if smoke {
		greq.Benches = []string{"crc"}
		greq.Techniques = []string{"schematic", "ratchet"}
		greq.TBPFs = []int64{500}
		greq.Options.ProfileRuns = 2
	}

	newDaemon := func() (*server.Server, *httptest.Server, error) {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return nil, nil, err
		}
		s := server.New(server.Config{Store: st})
		return s, httptest.NewServer(s.Handler()), nil
	}
	shutdown := func(s *server.Server, ts *httptest.Server) {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
		s.Close()
	}

	s1, ts1, err := newDaemon()
	if err != nil {
		return nil, err
	}
	cold, coldMS, err := postGrid(ts1, greq)
	if err != nil {
		shutdown(s1, ts1)
		return nil, err
	}
	if cold.CellErrors > 0 || cold.CellsComputed != cold.CellsTotal {
		shutdown(s1, ts1)
		return nil, fmt.Errorf("schemabench: cold grid computed %d/%d cells with %d errors — fix it before benchmarking",
			cold.CellsComputed, cold.CellsTotal, cold.CellErrors)
	}
	warm, warmMS, err := postGrid(ts1, greq)
	shutdown(s1, ts1)
	if err != nil {
		return nil, err
	}
	if warm.CellsComputed != 0 || warm.CellErrors > 0 {
		return nil, fmt.Errorf("schemabench: warm grid recomputed %d cells — the cache tier is broken", warm.CellsComputed)
	}

	// The restart: a fresh Server and store handle over the same files.
	s2, ts2, err := newDaemon()
	if err != nil {
		return nil, err
	}
	stored, storeMS, err := postGrid(ts2, greq)
	shutdown(s2, ts2)
	if err != nil {
		return nil, err
	}
	if stored.CellsComputed != 0 || stored.CellsFromStore != stored.CellsTotal {
		return nil, fmt.Errorf("schemabench: store-warm grid resolved %d/%d cells from disk (computed %d) — the store tier is broken",
			stored.CellsFromStore, stored.CellsTotal, stored.CellsComputed)
	}

	return &gridServiceReport{
		Cells:            cold.CellsTotal,
		ColdMS:           round2(coldMS),
		WarmMS:           round2(warmMS),
		StoreWarmMS:      round2(storeMS),
		WarmSpeedup:      round2(coldMS / warmMS),
		StoreWarmSpeedup: round2(coldMS / storeMS),
	}, nil
}

// measureLoadtest runs the generator's default closed-loop mix against
// an in-process daemon with a disk store. Any failed request fails the
// benchmark: this cell doubles as a smoke test of the service under
// concurrency.
func measureLoadtest(smoke bool) (*loadtestReport, error) {
	dir, err := os.MkdirTemp("", "schemabench-load-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	s := server.New(server.Config{Store: st})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
		s.Close()
	}()

	n, c := 2000, 32
	if smoke {
		n, c = 120, 8
	}
	rep, err := loadtest.Run(context.Background(), loadtest.Options{
		BaseURL:     ts.URL,
		Requests:    n,
		Concurrency: c,
		Seeds:       3,
		Client:      ts.Client(),
	})
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("schemabench: loadtest saw %d errors in %d requests — fix them before benchmarking",
			rep.Errors, rep.Requests)
	}
	return &loadtestReport{
		Requests:      rep.Requests,
		Concurrency:   c,
		Errors:        rep.Errors,
		ThroughputRPS: round2(rep.ThroughputRPS),
		P50MS:         round2(rep.P50MS),
		P99MS:         round2(rep.P99MS),
		CacheHitRate:  round4(rep.CacheHitRate),
		StorePuts:     rep.StorePutsDelta,
	}, nil
}

// measureSSE drives observed emulations (options.observe: hub, ring and
// attribution collector attached) against an in-process schematicd with
// 0, 1, and 16 concurrent SSE subscribers per run, and times a full SSE
// replay of a retained stream. Subscribers poll until the run registers,
// then read their stream to the terminal record; request latency is the
// POST wall time, so the subscriber deltas measure exactly what fan-out
// adds to the emulator's critical path.
func measureSSE(smoke bool) (*sseReport, error) {
	n := 30
	if smoke {
		n = 6
	}
	s := server.New(server.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
		s.Close()
	}()

	seed := int64(5000)
	var lastDigest string
	p50 := map[int]float64{}
	for _, subs := range []int{0, 1, 16} {
		lat := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			seed++ // distinct digest per request: no cache hits
			req := server.Request{
				Bench: "crc",
				Options: server.Options{
					Technique: "schematic", ProfileRuns: 5, Seed: seed, Observe: true,
				},
			}
			digest, err := server.DigestOf("emulate", req)
			if err != nil {
				return nil, err
			}
			lastDigest = digest
			body, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			var wg sync.WaitGroup
			for k := 0; k < subs; k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					deadline := time.Now().Add(30 * time.Second)
					for time.Now().Before(deadline) {
						resp, err := ts.Client().Get(ts.URL + "/v1/runs/" + digest + "/events")
						if err != nil {
							return
						}
						if resp.StatusCode == http.StatusOK {
							_, _ = io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							return
						}
						resp.Body.Close()
						time.Sleep(time.Millisecond) // run not registered yet
					}
				}()
			}
			start := time.Now()
			resp, err := ts.Client().Post(ts.URL+"/v1/emulate", "application/json", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("schemabench: observed emulate (%d subs) request %d: status %d", subs, i, resp.StatusCode)
			}
			lat = append(lat, float64(time.Since(start))/float64(time.Millisecond))
			wg.Wait()
		}
		sort.Float64s(lat)
		p50[subs] = round2(lat[len(lat)/2])
	}

	// Replay throughput: stream the last retained run's ring end to end.
	start := time.Now()
	resp, err := ts.Client().Get(ts.URL + "/v1/runs/" + lastDigest + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("schemabench: replay: status %d", resp.StatusCode)
	}
	var events int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			events++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	replaySec := time.Since(start).Seconds()

	// The run's true emitted-event count (the ring may have evicted a
	// prefix), for scaling publish overhead to a per-run budget.
	var sum struct {
		Events int64 `json:"events"`
	}
	dresp, err := ts.Client().Get(ts.URL + "/v1/runs/" + lastDigest)
	if err != nil {
		return nil, err
	}
	err = json.NewDecoder(dresp.Body).Decode(&sum)
	dresp.Body.Close()
	if err != nil {
		return nil, err
	}
	if sum.Events == 0 {
		return nil, fmt.Errorf("schemabench: run %s reports zero events", lastDigest)
	}

	// Publisher-side hub fan-out cost, isolated from HTTP and JSON.
	pubEvents := 500000
	if smoke {
		pubEvents = 100000
	}
	pub := map[int]float64{}
	for _, subs := range []int{0, 1, 16} {
		pub[subs] = hubPublishNS(subs, pubEvents)
	}
	budgetNS := p50[0] * 1e6 / float64(sum.Events) // emulate time per event, 0-sub

	return &sseReport{
		RequestsPerCell:      n,
		CPUs:                 runtime.NumCPU(),
		PublishNS0Sub:        round2(pub[0]),
		PublishNS1Sub:        round2(pub[1]),
		PublishNS16Sub:       round2(pub[16]),
		OneSubHotpathPct:     round2(100 * (pub[1] - pub[0]) / budgetNS),
		SixteenSubHotpathPct: round2(100 * (pub[16] - pub[0]) / budgetNS),
		P50MS0Sub:            p50[0],
		P50MS1Sub:            p50[1],
		P50MS16Sub:           p50[16],
		OneSubDeltaPct:       round2(100 * (p50[1] - p50[0]) / p50[0]),
		SixteenSubDeltaPct:   round2(100 * (p50[16] - p50[0]) / p50[0]),
		ReplayEvents:         events,
		ReplayEventsPerSec:   round2(float64(events) / replaySec),
	}, nil
}

// measureCrashtest times the crash-consistency hunter over the quick
// benchmarks under every technique.
func measureCrashtest(smoke bool) (*crashReport, error) {
	benches := []string{"crc", "randmath"}
	opts := crashtest.Options{}
	if smoke {
		benches = []string{"randmath"}
		opts = crashtest.Options{ExhaustiveStepLimit: 400, SampledSteps: 10, SampledSaves: 3, RandomSchedules: 2}
	}
	var techs []string
	for _, t := range bench.Techniques() {
		techs = append(techs, t.Name())
	}
	cases, err := crashtest.BenchCases(benches, techs, 1)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, cs := range cases {
		f, err := crashtest.Hunt(context.Background(), cs, opts)
		if err != nil && !crashtest.IsSkip(err) {
			return nil, fmt.Errorf("schemabench: hunt %s/%s: %w", cs.Name, cs.Technique, err)
		}
		if f != nil {
			return nil, fmt.Errorf("schemabench: hunt %s/%s found a real violation: %s — fix it before benchmarking",
				cs.Name, cs.Technique, f.Class)
		}
	}
	sec := time.Since(start).Seconds()
	return &crashReport{
		Cases:       len(cases),
		Seconds:     round2(sec),
		CasesPerSec: round2(float64(len(cases)) / sec),
	}, nil
}

// measureVerify times the bounded model checker over the exhaustively
// checkable subset and races the sampling hunter over the identical case
// list for the wall-clock comparison. Wait-style cells (contract checks,
// no exploration) count toward both wall clocks but not the state/edge
// totals.
func measureVerify(smoke bool) (*verifyReport, error) {
	benches := []string{"crc", "randmath"}
	huntOpts := crashtest.Options{}
	if smoke {
		benches = []string{"randmath"}
		huntOpts = crashtest.Options{ExhaustiveStepLimit: 400, SampledSteps: 10, SampledSaves: 3, RandomSchedules: 2}
	}
	var techs []string
	for _, t := range bench.Techniques() {
		techs = append(techs, t.Name())
	}
	cases, err := crashtest.BenchCases(benches, techs, 1)
	if err != nil {
		return nil, err
	}

	rep := &verifyReport{Cases: len(cases)}
	var dedup int64
	start := time.Now()
	for _, cs := range cases {
		r, err := verify.Run(context.Background(), cs, verify.Options{})
		if err != nil && !crashtest.IsSkip(err) {
			return nil, fmt.Errorf("schemabench: verify %s/%s: %w", cs.Name, cs.Technique, err)
		}
		if err != nil {
			continue
		}
		if r.Verdict != verify.Verified {
			return nil, fmt.Errorf("schemabench: verify %s/%s: verdict %s — fix it before benchmarking",
				cs.Name, cs.Technique, r.Verdict)
		}
		if !r.WaitContract {
			rep.Explored++
			rep.States += int64(r.States)
			rep.Edges += r.Edges
			dedup += r.DedupHits
		}
	}
	verifySec := time.Since(start).Seconds()

	start = time.Now()
	for _, cs := range cases {
		f, err := crashtest.Hunt(context.Background(), cs, huntOpts)
		if err != nil && !crashtest.IsSkip(err) {
			return nil, fmt.Errorf("schemabench: hunt %s/%s: %w", cs.Name, cs.Technique, err)
		}
		if f != nil {
			return nil, fmt.Errorf("schemabench: hunt %s/%s found a real violation: %s — fix it before benchmarking",
				cs.Name, cs.Technique, f.Class)
		}
	}
	samplingSec := time.Since(start).Seconds()

	if rep.Edges > 0 {
		rep.DedupHitRate = round4(float64(dedup) / float64(rep.Edges))
	}
	rep.StatesPerSec = round2(float64(rep.States) / verifySec)
	rep.EdgesPerSec = round2(float64(rep.Edges) / verifySec)
	rep.VerifySeconds = round2(verifySec)
	rep.SamplingSeconds = round2(samplingSec)
	if samplingSec > 0 {
		rep.VsSampling = round2(verifySec / samplingSec)
	}
	return rep, nil
}

// measureHarvest times the emulator under harvested-energy schedules
// (internal/harvest capacitor over solar, RF, and duty-cycled
// waveforms) against the built-in exhaustion physics on identical
// placed cells: the quick benchmarks under every supporting technique.
// Iteration 0 warms the compiled-program cache; only later iterations
// are timed. The cell refuses to report if any harvested run fails to
// complete, diverges from its exhaustion twin's output, or if the
// recorded solar trace does not replay to a bit-identical Result.
func measureHarvest(smoke bool) (*harvestReport, error) {
	const tbpf = 100_000
	benchNames := []string{"crc", "randmath"}
	iters, profileRuns := 2, 50
	if smoke {
		benchNames = []string{"crc"}
		iters, profileRuns = 1, 3
	}
	var benches []*bench.Benchmark
	for _, name := range benchNames {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		benches = append(benches, b)
	}
	cells, err := gridCells(benches, tbpf, profileRuns)
	if err != nil {
		return nil, err
	}
	h := bench.NewHarness()

	// Schedules are stateful and single-run; each entry is a factory.
	envs := []func(eb float64) emulator.PowerSchedule{
		func(eb float64) emulator.PowerSchedule {
			return harvest.Capacitor{Env: harvest.Solar{Seed: 7}, Capacity: eb}.Schedule()
		},
		func(eb float64) emulator.PowerSchedule {
			return harvest.Capacitor{Env: harvest.RF{Seed: 3}, Capacity: eb}.Schedule()
		},
		func(eb float64) emulator.PowerSchedule {
			return harvest.Capacitor{Env: harvest.Duty{}, Capacity: eb}.Schedule()
		},
	}

	run := func(c *cell, sched emulator.PowerSchedule) (*emulator.Result, time.Duration, error) {
		start := time.Now()
		res, err := emulator.Run(c.mod, emulator.Config{
			Model: h.Model, VMSize: h.VMSize, Intermittent: true,
			EB: c.eb, Inputs: c.inputs, Schedule: sched,
		})
		return res, time.Since(start), err
	}

	rep := &harvestReport{Environments: len(envs), Cells: len(cells)}
	var exDur, hDur time.Duration
	for iter := 0; iter <= iters; iter++ {
		for i := range cells {
			c := &cells[i]
			ex, d, err := run(c, nil) // built-in exhaustion physics
			if err != nil {
				return nil, err
			}
			if iter > 0 {
				rep.ExhaustionSteps += ex.Steps
				exDur += d
			}
			for _, mk := range envs {
				hv, d, err := run(c, mk(c.eb))
				if err != nil {
					return nil, err
				}
				if hv.Verdict != emulator.Completed || !reflect.DeepEqual(hv.Output, ex.Output) {
					return nil, fmt.Errorf("schemabench: harvest: cell %d diverged from its exhaustion twin (verdict %v) — fix it before benchmarking",
						i, hv.Verdict)
				}
				if iter > 0 {
					rep.HarvestedSteps += hv.Steps
					hDur += d
				}
			}
		}
	}
	rep.ExhaustionMips = round2(float64(rep.ExhaustionSteps) / exDur.Seconds() / 1e6)
	rep.HarvestedMips = round2(float64(rep.HarvestedSteps) / hDur.Seconds() / 1e6)
	rep.OverheadPct = round2(100 * (rep.ExhaustionMips/rep.HarvestedMips - 1))

	// Record one solar run into the versioned NDJSON trace and replay
	// it; record and replay must produce bit-identical Results.
	c := &cells[0]
	rec := harvest.NewRecorder(envs[0](c.eb), c.eb)
	rec.SampleEvery = 10_000
	recorded, _, err := run(c, rec)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := rec.Trace().Write(&buf); err != nil {
		return nil, err
	}
	tr, err := harvest.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	replayed, _, err := run(c, tr.Schedule())
	if err != nil {
		return nil, err
	}
	rep.TraceBytes = buf.Len()
	rep.ReplayIdentical = reflect.DeepEqual(recorded, replayed)
	if !rep.ReplayIdentical {
		return nil, fmt.Errorf("schemabench: harvest: trace replay diverged from the recorded run — fix it before benchmarking")
	}
	return rep, nil
}

// checkRegression gates CI: the measured compiled grid throughput must
// be at least 80% of the committed report's figure for the same grid
// kind (smoke vs full).
func checkRegression(path string, got *gridReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want report
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("schemabench: %s: %w", path, err)
	}
	ref := want.Grid
	if want.SmokeGrid != nil && got.Iters == want.SmokeGrid.Iters && got.Cells == want.SmokeGrid.Cells {
		ref = want.SmokeGrid
	}
	if ref == nil {
		return fmt.Errorf("schemabench: %s has no comparable grid section", path)
	}
	if got.CompiledMips < 0.8*ref.CompiledMips {
		return fmt.Errorf("schemabench: grid throughput regressed >20%%: %.2f Minstr/s now vs %.2f committed (%s)",
			got.CompiledMips, ref.CompiledMips, path)
	}
	fmt.Fprintf(os.Stderr, "schemabench: check ok: %.2f Minstr/s vs %.2f committed\n", got.CompiledMips, ref.CompiledMips)
	return nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func round4(v float64) float64 {
	return float64(int64(v*10000+0.5)) / 10000
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "schemabench:", err)
		os.Exit(1)
	}
}
