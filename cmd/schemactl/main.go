// Command schemactl is the CLI client for schematicd.
//
//	schemactl health
//	schemactl metrics
//	schemactl compile -f prog.mc -tech schematic -tbpf 500
//	schemactl emulate -bench crc -tech schematic
//	schemactl emulate -f prog.mc -stream          # NDJSON event stream
//	schemactl validate -f prog.mc
//	schemactl hunt -bench crc -tech mementos
//
// The daemon address comes from -addr or $SCHEMATICD_ADDR
// (default 127.0.0.1:8472). Exit status: 0 on success, 1 when the
// daemon reports an error, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"schematic/internal/cli"
	"schematic/internal/server"
)

var fail = cli.Fail("schemactl", 1)

func main() {
	addr := flag.String("addr", envOr("SCHEMATICD_ADDR", "127.0.0.1:8472"), "schematicd address (host:port)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	base := "http://" + *addr
	switch cmd := args[0]; cmd {
	case "health":
		get(base + "/healthz")
	case "metrics":
		get(base + "/metrics")
	case "compile", "emulate", "validate", "hunt":
		job(base, cmd, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "schemactl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: schemactl [-addr host:port] <command> [flags]

commands:
  compile | emulate | validate | hunt   submit a job (see -h of each)
  health                                print the daemon health report
  metrics                               print the Prometheus metrics page`)
	flag.PrintDefaults()
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// job parses the per-command flags, posts the request, and prints the
// response.
func job(base, kind string, args []string) {
	fs := flag.NewFlagSet("schemactl "+kind, flag.ExitOnError)
	var (
		file        = fs.String("f", "", "MiniC source file to submit")
		benchName   = fs.String("bench", "", "submit a bundled benchmark by name instead of a file")
		name        = fs.String("name", "", "program name for reports (default: file basename)")
		tech        = fs.String("tech", "", "technique: schematic|ratchet|mementos|rockclimb|alfred|allnvm|none (default schematic)")
		tbpf        = fs.Int64("tbpf", 0, "derive the capacitor budget from this TBPF (cycles)")
		eb          = fs.Float64("eb", 0, "capacitor budget in nJ (overrides -tbpf)")
		vmSize      = fs.Int("vmsize", 0, "SVM in bytes (default 2048)")
		seed        = fs.Int64("seed", 0, "workload input seed (default 1)")
		profileRuns = fs.Int("profile-runs", 0, "profiling executions (default 50)")
		optimize    = fs.Bool("opt", false, "run the optimizer before placement")
		stream      = fs.Bool("stream", false, "emulate only: stream NDJSON events")
		timeoutMS   = fs.Int64("timeout-ms", 0, "per-job deadline in milliseconds")
		out         = fs.String("o", "", "write the response to this file instead of stdout")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		fail(fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " ")))
	}
	req := server.Request{
		Name:  *name,
		Bench: *benchName,
		Options: server.Options{
			Technique:   *tech,
			TBPF:        *tbpf,
			EB:          *eb,
			VMSize:      *vmSize,
			Seed:        *seed,
			ProfileRuns: *profileRuns,
			Optimize:    *optimize,
			Stream:      *stream,
			TimeoutMS:   *timeoutMS,
		},
	}
	switch {
	case *file != "" && *benchName != "":
		fail(fmt.Errorf("-f and -bench are mutually exclusive"))
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		req.Source = string(src)
		if req.Name == "" {
			req.Name = cli.ProgramName(*file)
		}
	case *benchName == "":
		fail(fmt.Errorf("one of -f or -bench is required"))
	}

	body, err := json.Marshal(req)
	if err != nil {
		fail(err)
	}
	resp, err := http.Post(base+"/v1/"+kind, "application/json", bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()

	if *stream {
		// Pass the NDJSON through untouched; it is already line-oriented.
		if err := writeOut(*out, resp.Body); err != nil {
			fail(err)
		}
		if resp.StatusCode != http.StatusOK {
			os.Exit(1)
		}
		return
	}

	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") != nil {
		pretty.Write(raw) // not JSON? print as-is
	}
	pretty.WriteByte('\n')
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "schemactl: %s returned %s\n", kind, resp.Status)
		os.Stderr.Write(pretty.Bytes())
		os.Exit(1)
	}
	if err := writeOut(*out, &pretty); err != nil {
		fail(err)
	}
}

// get prints a GET endpoint's body and mirrors the HTTP status in the
// exit code.
func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

// writeOut copies r to path, or stdout when path is empty.
func writeOut(path string, r io.Reader) error {
	if path == "" {
		_, err := io.Copy(os.Stdout, r)
		return err
	}
	return cli.WriteTo(path, func(w io.Writer) error {
		_, err := io.Copy(w, r)
		return err
	})
}
