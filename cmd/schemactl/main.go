// Command schemactl is the CLI client for schematicd.
//
//	schemactl health
//	schemactl metrics
//	schemactl compile -f prog.mc -tech schematic -tbpf 500
//	schemactl emulate -bench crc -tech schematic
//	schemactl emulate -f prog.mc -stream          # NDJSON event stream
//	schemactl emulate -bench crc -observe         # retained + tailable
//	schemactl emulate -bench crc -power solar     # harvested-energy environment
//	schemactl validate -f prog.mc
//	schemactl hunt -bench crc -tech mementos
//	schemactl grid -benches crc,fft -techniques schematic,ratchet
//	schemactl grid -benches crc -powers solar,rf  # power-environment axis
//	schemactl runs                                # retained-run registry
//	schemactl tail <digest>                       # follow a run's SSE feed
//
// The daemon address comes from -addr or $SCHEMATICD_ADDR
// (default 127.0.0.1:8472). Exit status: 0 on success, 1 when the
// daemon reports an error, 2 on usage errors.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"schematic/internal/cli"
	"schematic/internal/server"
)

var fail = cli.Fail("schemactl", 1)

func main() {
	addr := flag.String("addr", envOr("SCHEMATICD_ADDR", "127.0.0.1:8472"), "schematicd address (host:port)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	base := "http://" + *addr
	switch cmd := args[0]; cmd {
	case "health":
		get(base + "/healthz")
	case "metrics":
		get(base + "/metrics")
	case "compile", "emulate", "validate", "hunt":
		job(base, cmd, args[1:])
	case "grid":
		grid(base, args[1:])
	case "runs":
		get(base + "/v1/runs")
	case "tail":
		tail(base, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "schemactl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: schemactl [-addr host:port] <command> [flags]

commands:
  compile | emulate | validate | hunt   submit a job (see -h of each)
  grid                                  run a bench x technique x TBPF matrix server-side
  runs                                  list the retained runs (JSON)
  tail <digest>                         follow a run's event stream as NDJSON
  health                                print the daemon health report
  metrics                               print the Prometheus metrics page`)
	flag.PrintDefaults()
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// job parses the per-command flags, posts the request, and prints the
// response.
func job(base, kind string, args []string) {
	fs := flag.NewFlagSet("schemactl "+kind, flag.ExitOnError)
	var (
		file        = fs.String("f", "", "MiniC source file to submit")
		benchName   = fs.String("bench", "", "submit a bundled benchmark by name instead of a file")
		name        = fs.String("name", "", "program name for reports (default: file basename)")
		tech        = fs.String("tech", "", "technique: schematic|ratchet|mementos|rockclimb|alfred|allnvm|none (default schematic)")
		tbpf        = fs.Int64("tbpf", 0, "derive the capacitor budget from this TBPF (cycles)")
		eb          = fs.Float64("eb", 0, "capacitor budget in nJ (overrides -tbpf)")
		vmSize      = fs.Int("vmsize", 0, "SVM in bytes (default 2048)")
		seed        = fs.Int64("seed", 0, "workload input seed (default 1)")
		profileRuns = fs.Int("profile-runs", 0, "profiling executions (default 50)")
		optimize    = fs.Bool("opt", false, "run the optimizer before placement")
		stream      = fs.Bool("stream", false, "emulate only: stream NDJSON events")
		observe     = fs.Bool("observe", false, "emulate only: retain the run for schemactl runs/tail and the dashboard")
		power       = fs.String("power", "", "emulate only: power-environment spec (e.g. solar, rf:seed=7, duty)")
		timeoutMS   = fs.Int64("timeout-ms", 0, "per-job deadline in milliseconds")
		out         = fs.String("o", "", "write the response to this file instead of stdout")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		fail(fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " ")))
	}
	req := server.Request{
		Name:  *name,
		Bench: *benchName,
		Options: server.Options{
			Technique:   *tech,
			TBPF:        *tbpf,
			EB:          *eb,
			VMSize:      *vmSize,
			Seed:        *seed,
			ProfileRuns: *profileRuns,
			Optimize:    *optimize,
			Stream:      *stream,
			Observe:     *observe,
			Power:       *power,
			TimeoutMS:   *timeoutMS,
		},
	}
	switch {
	case *file != "" && *benchName != "":
		fail(fmt.Errorf("-f and -bench are mutually exclusive"))
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		req.Source = string(src)
		if req.Name == "" {
			req.Name = cli.ProgramName(*file)
		}
	case *benchName == "":
		fail(fmt.Errorf("one of -f or -bench is required"))
	}

	body, err := json.Marshal(req)
	if err != nil {
		fail(err)
	}
	resp, err := http.Post(base+"/v1/"+kind, "application/json", bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()

	if *stream {
		// Pass the NDJSON through untouched; it is already line-oriented.
		if err := writeOut(*out, resp.Body); err != nil {
			fail(err)
		}
		if resp.StatusCode != http.StatusOK {
			os.Exit(1)
		}
		return
	}

	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") != nil {
		pretty.Write(raw) // not JSON? print as-is
	}
	pretty.WriteByte('\n')
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "schemactl: %s returned %s\n", kind, resp.Status)
		os.Stderr.Write(pretty.Bytes())
		os.Exit(1)
	}
	if err := writeOut(*out, &pretty); err != nil {
		fail(err)
	}
}

// grid submits a benchmark x technique x TBPF matrix to POST /v1/grid.
// Empty axis flags fall back to the server's defaults (every bundled
// benchmark, every technique, TBPF 10000 — the paper grid).
func grid(base string, args []string) {
	fs := flag.NewFlagSet("schemactl grid", flag.ExitOnError)
	var (
		benches     = fs.String("benches", "", "comma-separated benchmark axis (default: all bundled benchmarks)")
		techs       = fs.String("techniques", "", "comma-separated technique axis (default: all placement techniques)")
		tbpfs       = fs.String("tbpfs", "", "comma-separated TBPF axis in cycles (default: 10000)")
		powers      = fs.String("powers", "", "comma-separated power-spec axis (default: built-in exhaustion physics)")
		vmSize      = fs.Int("vmsize", 0, "SVM in bytes for every cell (default 2048)")
		seed        = fs.Int64("seed", 0, "workload input seed for every cell (default 1)")
		profileRuns = fs.Int("profile-runs", 0, "profiling executions per cell (default 50)")
		optimize    = fs.Bool("opt", false, "run the optimizer before placement in every cell")
		timeoutMS   = fs.Int64("timeout-ms", 0, "per-cell deadline in milliseconds")
		out         = fs.String("o", "", "write the grid table to this file instead of stdout")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		fail(fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " ")))
	}
	req := server.GridRequest{
		Benches:    splitList(*benches),
		Techniques: splitList(*techs),
		Powers:     splitList(*powers),
		Options: server.Options{
			VMSize:      *vmSize,
			Seed:        *seed,
			ProfileRuns: *profileRuns,
			Optimize:    *optimize,
			TimeoutMS:   *timeoutMS,
		},
	}
	for _, f := range splitList(*tbpfs) {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			fail(fmt.Errorf("bad -tbpfs entry %q: %v", f, err))
		}
		req.TBPFs = append(req.TBPFs, n)
	}

	body, err := json.Marshal(req)
	if err != nil {
		fail(err)
	}
	resp, err := http.Post(base+"/v1/grid", "application/json", bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") != nil {
		pretty.Write(raw)
	}
	pretty.WriteByte('\n')
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "schemactl: grid returned %s\n", resp.Status)
		os.Stderr.Write(pretty.Bytes())
		os.Exit(1)
	}
	if err := writeOut(*out, &pretty); err != nil {
		fail(err)
	}
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// errRunFailed marks a run whose terminal record was an error: the
// stream itself worked, so the record is printed and the exit code is 1
// without an extra client-side message.
var errRunFailed = errors.New("run finished with an error")

// tail follows GET /v1/runs/{digest}/events and prints each event's
// data payload as one NDJSON line (ending with the terminal result or
// error record). A dropped connection resumes from the last delivered
// event id via the SSE Last-Event-ID contract, so the output never
// duplicates or silently skips events.
func tail(base string, args []string) {
	fs := flag.NewFlagSet("schemactl tail", flag.ExitOnError)
	var (
		from    = fs.Int64("from", -1, "resume after this event id (-1 = from the start)")
		retries = fs.Int("retries", 5, "reconnect attempts after an unexpected disconnect")
		out     = fs.String("o", "", "write the NDJSON to this file instead of stdout")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: schemactl tail [flags] <digest>")
		os.Exit(2)
	}
	digest := fs.Arg(0)
	run := func(w io.Writer) error { return tailRun(base, digest, *from, *retries, w) }
	var err error
	if *out == "" {
		err = run(os.Stdout)
	} else {
		err = cli.WriteTo(*out, run)
	}
	switch {
	case errors.Is(err, errRunFailed):
		os.Exit(1)
	case err != nil:
		fail(err)
	}
}

func tailRun(base, digest string, from int64, retries int, w io.Writer) error {
	last := from
	for attempt := 0; ; attempt++ {
		done, err := tailOnce(base, digest, &last, w)
		if done || err != nil {
			return err
		}
		if attempt >= retries {
			return fmt.Errorf("stream ended %d times without a terminal record", attempt+1)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// tailOnce streams one SSE connection, advancing *last as event ids
// arrive. It reports done once the terminal record has been printed.
func tailOnce(base, digest string, last *int64, w io.Writer) (done bool, err error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/runs/"+digest+"/events", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *last >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(*last, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	var id, event string
	var data []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // frame boundary: dispatch
			for _, d := range data {
				fmt.Fprintln(w, d)
			}
			if n, perr := strconv.ParseInt(id, 10, 64); perr == nil {
				*last = n
			}
			switch event {
			case "result":
				return true, nil
			case "error":
				return true, errRunFailed
			}
			id, event, data = "", "", nil
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(line[len("data:"):]))
		}
	}
	// Stream ended without a terminal record (disconnect or server
	// drain): the caller reconnects from *last.
	return false, nil
}

// get prints a GET endpoint's body and mirrors the HTTP status in the
// exit code.
func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

// writeOut copies r to path, or stdout when path is empty.
func writeOut(path string, r io.Reader) error {
	if path == "" {
		_, err := io.Copy(os.Stdout, r)
		return err
	}
	return cli.WriteTo(path, func(w io.Writer) error {
		_, err := io.Copy(w, r)
		return err
	})
}
