// Command schematicc is the compiler driver: it compiles a MiniC source
// file, optionally profiles it, applies a checkpoint-placement technique,
// and prints the transformed IR.
//
//	schematicc -budget 3000 prog.mc             # SCHEMATIC, EB in nJ
//	schematicc -tbpf 10000 prog.mc              # EB derived from a TBPF
//	schematicc -technique rockclimb prog.mc     # one of the baselines
//	schematicc -technique none prog.mc          # front end only
//	schematicc -O prog.mc                       # optimize before placement
//	schematicc -report prog.mc                  # static WCEC report
//	schematicc -stats -o out.ir prog.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"schematic/internal/baselines"
	"schematic/internal/baselines/alfred"
	"schematic/internal/baselines/allnvm"
	"schematic/internal/baselines/mementos"
	"schematic/internal/baselines/ratchet"
	"schematic/internal/baselines/rockclimb"
	"schematic/internal/bench"
	"schematic/internal/cli"
	schematic "schematic/internal/core"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/opt"
	"schematic/internal/trace"
	"schematic/internal/transval"
)

func main() {
	var (
		technique   = flag.String("technique", "schematic", "schematic | allnvm | ratchet | mementos | rockclimb | alfred | none")
		budget      = flag.Float64("budget", 0, "energy budget EB in nJ")
		tbpf        = flag.Int64("tbpf", 0, "derive EB from this time between power failures (cycles)")
		vmSize      = flag.Int("vmsize", 2048, "SVM in bytes")
		profileRuns = flag.Int("profile-runs", 50, "profiling executions (schematic/allnvm)")
		seed        = flag.Int64("seed", 1, "profiling input seed")
		out         = flag.String("o", "", "write the transformed IR to this file (default stdout)")
		dot         = flag.String("dot", "", "also write a Graphviz CFG of this function (e.g. -dot main=main.dot)")
		optimize    = flag.Bool("O", false, "run the optimizer before checkpoint placement")
		stats       = flag.Bool("stats", false, "print pass statistics to stderr")
		validate    = flag.Bool("validate", true, "validate the compilation: static checks (schematic only) plus translation validation of every pipeline stage")
		report      = flag.Bool("report", false, "print the static WCEC report to stderr (schematic only)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: schematicc [flags] <prog.mc>")
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	fail(err)
	name := cli.ProgramName(path)
	m, err := minic.Compile(name, string(src))
	fail(err)
	if *optimize {
		ost, err := opt.Optimize(m)
		fail(err)
		if *stats {
			fmt.Fprintf(os.Stderr, "schematicc: optimizer: %v\n", ost)
		}
	}

	model := energy.MSP430FR5969()
	var prof *trace.Profile
	needsProfile := *technique == "schematic" || *technique == "allnvm" || *tbpf > 0
	if needsProfile && *technique != "none" {
		prof, err = trace.Collect(m, trace.Options{Runs: *profileRuns, Seed: *seed, Model: model})
		fail(err)
	}
	eb := *budget
	if *tbpf > 0 {
		eb = prof.EBForTBPF(*tbpf)
		fmt.Fprintf(os.Stderr, "schematicc: EB = %.1f nJ (TBPF = %d cycles)\n", eb, *tbpf)
	}

	switch *technique {
	case "none":
	case "schematic":
		st, err := schematic.Apply(m, schematic.Config{
			Model: model, Budget: eb, VMSize: *vmSize, Profile: prof,
		})
		fail(err)
		if *stats {
			fmt.Fprintf(os.Stderr, "schematicc: %d checkpoints (%d conditional), %d paths, %d VM vars, analysis %v\n",
				st.Checkpoints, st.CondCheckpoints, st.PathsAnalyzed, st.VMVars, st.AnalysisTime)
		}
		if *validate {
			fail(schematic.Validate(m, schematic.Config{
				Model: model, Budget: eb, VMSize: *vmSize, Profile: prof,
			}))
			fmt.Fprintln(os.Stderr, "schematicc: static validation passed (budget safety, coherence, atomicity)")
		}
		if *report {
			rep, err := schematic.Report(m, schematic.Config{
				Model: model, Budget: eb, VMSize: *vmSize, Profile: prof,
			})
			fail(err)
			rep.Render(os.Stderr)
		}
	default:
		var tech baselines.Technique
		switch *technique {
		case "allnvm":
			tech = allnvm.AllNVM{}
		case "ratchet":
			tech = ratchet.Ratchet{}
		case "mementos":
			tech = mementos.Mementos{}
		case "rockclimb":
			tech = rockclimb.Rockclimb{}
		case "alfred":
			tech = alfred.Alfred{}
		default:
			fail(fmt.Errorf("unknown technique %q", *technique))
		}
		fail(tech.Apply(m, baselines.Params{
			Model: model, Budget: eb, VMSize: *vmSize, Profile: prof,
		}))
	}

	if *validate {
		runTransval(name, string(src), *technique, *tbpf, *vmSize, *seed, *stats)
	}

	if *dot != "" {
		name, path, ok := strings.Cut(*dot, "=")
		if !ok {
			fail(fmt.Errorf("-dot wants <func>=<file>, got %q", *dot))
		}
		fn := m.FuncByName(name)
		if fn == nil {
			fail(fmt.Errorf("-dot: no function %q", name))
		}
		df, err := os.Create(path)
		fail(err)
		fail(ir.WriteDot(df, fn))
		fail(df.Close())
	}

	text := m.String()
	if *out == "" {
		fmt.Print(text)
		return
	}
	fail(os.WriteFile(*out, []byte(text), 0o644))
}

// runTransval differentially validates the whole pipeline for this
// program: the AST reference interpreter against the emulator after
// lowering, after each optimizer pass, and after the selected placement
// technique. Independent of the compilation above — it recompiles from
// source — so a divergence here indicts the pipeline, not this driver.
func runTransval(name, src, technique string, tbpf int64, vmSize int, seed int64, stats bool) {
	opts := transval.Options{
		TBPF:     tbpf,
		VMSize:   vmSize,
		Coverage: transval.NewCoverage(),
	}
	opts.SkipPlacement = true
	for _, t := range bench.Techniques() {
		if strings.EqualFold(t.Name(), technique) {
			opts.Techniques = []string{t.Name()}
			opts.SkipPlacement = false
		}
	}
	f, err := transval.Validate(transval.Case{Name: name, Source: src, InputSeed: seed}, opts)
	if _, skip := err.(*transval.SkipError); skip {
		fmt.Fprintf(os.Stderr, "schematicc: translation validation skipped: %v\n", err)
		return
	}
	fail(err)
	if f != nil {
		fail(fmt.Errorf("translation validation failed at stage %s: want %s, got %s", f.Stage, f.Want, f.Got))
	}
	scope := "lowering + optimizer"
	if !opts.SkipPlacement {
		scope += " + " + opts.Techniques[0] + " placement"
	}
	fmt.Fprintf(os.Stderr, "schematicc: translation validation passed (%s vs the AST interpreter)\n", scope)
	if stats {
		opts.Coverage.WriteReport(os.Stderr)
	}
}

var fail = cli.Fail("schematicc", 1)
