// Command schematicd is the long-running SCHEMATIC service: an HTTP
// JSON API over the compiler, the intermittent emulator, the
// translation validator, and the crash-consistency hunter, with
// content-addressed single-flight caching, bounded-queue admission
// control, Prometheus metrics, graceful drain, and a live console —
// a retained run registry, per-run SSE event streams with
// Last-Event-ID resume, and an embedded dashboard at GET /.
//
//	schematicd                          # listen on 127.0.0.1:8472
//	schematicd -addr :0 -addr-file a    # ephemeral port, written to file a
//	schematicd -workers 4 -queue 32     # sizing
//	schematicd -store /var/lib/schematic  # disk-backed result store
//
// On SIGINT/SIGTERM the daemon stops accepting work, finishes every
// in-flight job, writes a final metrics snapshot to stderr, and exits 0.
// See SERVICE.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"schematic/internal/server"
	"schematic/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8472", "listen address (host:port; port 0 picks an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
		workers  = flag.Int("workers", 0, "job-pool size (0 = NumCPU)")
		queue    = flag.Int("queue", 0, "admission-queue capacity (0 = 64)")
		cache    = flag.Int("cache", 0, "result-cache capacity in entries (0 = 1024)")
		timeout  = flag.Duration("timeout", 0, "per-job deadline (0 = 60s)")
		runsCap  = flag.Int("runs", 0, "retained-run registry capacity (0 = 128)")
		runEv    = flag.Int("run-events", 0, "per-run event ring for observed runs (0 = 8192)")
		subQueue = flag.Int("sub-queue", 0, "per-SSE-subscriber event queue (0 = 1024)")
		hb       = flag.Duration("heartbeat", 0, "SSE idle keep-alive interval (0 = 15s)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		quiet    = flag.Bool("q", false, "log only startup and shutdown, not per-job lines")
		storeDir = flag.String("store", "", "directory for the disk-backed result store; results survive restarts, and replicas sharing the directory share results")
		storeCap = flag.Int("store-cap", 0, "disk-store capacity in entries before oldest-first GC (0 = unbounded)")
		storeFS  = flag.Bool("store-fsync", false, "fsync each disk-store write (durability across power loss, at a throughput cost)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "schematicd: ", log.LstdFlags)

	cfg := server.Config{
		Workers:      *workers,
		QueueCap:     *queue,
		CacheCap:     *cache,
		JobTimeout:   *timeout,
		RunsCap:      *runsCap,
		RunEvents:    *runEv,
		SubQueue:     *subQueue,
		SSEHeartbeat: *hb,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{Cap: *storeCap, Fsync: *storeFS})
		if err != nil {
			logger.Fatalf("store: %v", err)
		}
		cfg.Store = st
		logger.Printf("store: %s (cap %d, fsync %v)", st.Dir(), *storeCap, *storeFS)
	}
	s := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatalf("write -addr-file: %v", err)
		}
	}
	logger.Printf("listening on %s", bound)

	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Printf("signal received, draining (up to %v)", *drainFor)
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	}

	// Refuse new work first so requests arriving during shutdown get a
	// clean 503 instead of a connection error, then stop the listener and
	// wait for everything admitted.
	s.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	code := 0
	if err := s.Drain(dctx); err != nil {
		logger.Printf("drain: %v", err)
		s.Close() // hard-cancel whatever is left
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}

	// Final metrics snapshot: scrape our own handler so the flushed
	// ledger is byte-identical to what a monitoring system would see.
	var sb strings.Builder
	req, _ := http.NewRequest("GET", "/metrics", nil)
	rec := newRecorder(&sb)
	s.Handler().ServeHTTP(rec, req)
	fmt.Fprintf(os.Stderr, "--- final metrics ---\n%s", sb.String())
	logger.Printf("drained, exiting")
	os.Exit(code)
}

// recorder is a minimal ResponseWriter capturing the body into a builder.
type recorder struct {
	h  http.Header
	sb *strings.Builder
}

func newRecorder(sb *strings.Builder) *recorder {
	return &recorder{h: make(http.Header), sb: sb}
}

func (r *recorder) Header() http.Header         { return r.h }
func (r *recorder) WriteHeader(int)             {}
func (r *recorder) Write(p []byte) (int, error) { return r.sb.Write(p) }
