// Command transval runs translation validation over a program corpus:
// every case is executed by the AST reference interpreter and by the
// continuous-power emulator after lowering, after each individual
// optimizer pass, and after each checkpoint-placement technique, and any
// observable divergence is bisected to the first offending stage, shrunk,
// and serialized as a replayable NDJSON repro.
//
//	transval                                # all bundled benchmarks
//	transval -fuzz 200 -fuzz-seed 1         # add 200 fuzz-generated programs
//	transval -techs Ratchet,Schematic -benches crc,fft
//	transval -skip-placement -fuzz 50       # lowering + optimizer only
//	transval -o repro.ndjson                # serialize counterexamples
//	transval -replay repro.ndjson           # re-execute serialized repros
//
// Exit status: 0 = the whole corpus validates, 1 = mismatches found (or,
// with -replay, a repro that no longer reproduces), 2 = infrastructure
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"schematic/internal/bench"
	"schematic/internal/cli"
	"schematic/internal/transval"
)

func main() {
	var (
		replay   = flag.String("replay", "", "replay a findings NDJSON file instead of validating")
		benches  = flag.String("benches", "all", "comma-separated benchmark names, or 'all', or 'none'")
		fuzzN    = flag.Int("fuzz", 0, "also validate this many fuzz-generated programs")
		fuzzSeed = flag.Int64("fuzz-seed", 1, "base seed for the fuzz-generated corpus")
		seed     = flag.Int64("seed", 1, "workload input seed")
		tbpf     = flag.Int64("tbpf", 0, "time between power failures deriving the placement budget (0 = 10000)")
		probes   = flag.Bool("probes", true, "include the directed probe cases that cover fuzzgen's blind spots")
		techs    = flag.String("techs", "all", "comma-separated technique names, or 'all'")
		skip     = flag.Bool("skip-placement", false, "validate only lowering and the optimizer")
		out      = flag.String("o", "", "write findings as NDJSON repros to this file")
		report   = flag.Bool("coverage", true, "print the coverage report to stderr")
		verbose  = flag.Bool("v", false, "log one line per validated case")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: transval [flags]")
		flag.Usage()
		os.Exit(2)
	}

	opts := transval.Options{
		TBPF:          *tbpf,
		SkipPlacement: *skip,
		Coverage:      transval.NewCoverage(),
	}
	if *techs != "all" && *techs != "" {
		opts.Techniques = cli.SplitList(*techs)
	}

	if *replay != "" {
		os.Exit(runReplay(*replay, opts))
	}

	cases, err := buildCases(*benches, *fuzzN, *fuzzSeed, *seed)
	fail(err)
	if *probes {
		cases = append(cases, transval.ProbeCases(*seed)...)
	}
	if len(cases) == 0 {
		fmt.Fprintln(os.Stderr, "transval: no cases selected")
		os.Exit(2)
	}

	var findings []transval.Finding
	validated, skipped := 0, 0
	for _, cs := range cases {
		f, err := transval.Validate(cs, opts)
		switch {
		case err != nil:
			if _, ok := err.(*transval.SkipError); ok {
				skipped++
				if *verbose {
					fmt.Fprintf(os.Stderr, "transval: skip %s: %v\n", cs.Name, err)
				}
				continue
			}
			fail(err)
		case f != nil:
			findings = append(findings, *f)
			fmt.Printf("MISMATCH %s at %s: want %s, got %s\n", f.Case.Name, f.Stage, f.Want, f.Got)
		default:
			validated++
			if *verbose {
				fmt.Fprintf(os.Stderr, "transval: ok %s\n", cs.Name)
			}
		}
	}

	fmt.Printf("transval: %d validated, %d mismatches, %d skipped (of %d cases)\n",
		validated, len(findings), skipped, len(cases))
	if *report {
		opts.Coverage.WriteReport(os.Stderr)
	}

	if *out != "" && len(findings) > 0 {
		fail(cli.WriteTo(*out, func(w io.Writer) error { return transval.WriteFindings(w, findings) }))
		fmt.Printf("transval: wrote %d repro(s) to %s\n", len(findings), *out)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// runReplay re-executes every serialized counterexample and checks it
// still diverges at its recorded stage.
func runReplay(path string, opts transval.Options) int {
	f, err := os.Open(path)
	fail(err)
	findings, err := transval.ReadFindings(f)
	f.Close()
	fail(err)
	if len(findings) == 0 {
		fmt.Fprintln(os.Stderr, "transval: no findings in", path)
		return 2
	}
	mismatches := 0
	for i := range findings {
		fd := &findings[i]
		got, err := transval.Replay(*fd, opts)
		switch {
		case err != nil:
			mismatches++
			fmt.Printf("MISMATCH   %s: %v\n", fd.Case.Name, err)
		default:
			fmt.Printf("reproduced %s: %s diverges (want %s, got %s)\n", fd.Case.Name, got.Stage, got.Want, got.Got)
		}
	}
	if mismatches > 0 {
		return 1
	}
	return 0
}

// buildCases assembles the validation list from the benchmark and fuzz
// selections.
func buildCases(benchSpec string, fuzzN int, fuzzSeed, inputSeed int64) ([]transval.Case, error) {
	var cases []transval.Case
	names, err := cli.BenchNames(benchSpec)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		b, err := bench.ByName(n)
		if err != nil {
			return nil, err
		}
		cases = append(cases, transval.Case{Name: b.Name, Source: b.Source, InputSeed: inputSeed})
	}
	if fuzzN > 0 {
		cases = append(cases, transval.FuzzCases(fuzzSeed, fuzzN, inputSeed+1000)...)
	}
	return cases, nil
}

var fail = cli.Fail("transval", 2)
