// Capacitor: sweep the energy-buffer size for one application and show how
// SCHEMATIC's checkpoint placement adapts — fewer checkpoints and lower
// intermittency overhead as the capacitor grows (the paper's Fig. 8
// analysis, §IV-F).
//
//	go run ./examples/capacitor
package main

import (
	"fmt"
	"log"

	schematic "schematic/internal/core"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

const app = `
input int data[200];
int hist[16];
int total;

func void main() {
  int i;
  int bucket;
  for (i = 0; i < 16; i = i + 1) @max(16) {
    hist[i] = 0;
  }
  for (i = 0; i < 200; i = i + 1) @max(200) {
    bucket = (data[i] >> 11) & 15;
    hist[bucket] = hist[bucket] + 1;
  }
  total = 0;
  for (i = 0; i < 16; i = i + 1) @max(16) {
    total = total + hist[i] * i;
  }
  print(total);
}
`

func main() {
	model := energy.MSP430FR5969()
	m, err := minic.Compile("capacitor", app)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := trace.Collect(m, trace.Options{Runs: 50, Seed: 11, Model: model})
	if err != nil {
		log.Fatal(err)
	}
	inputs := map[string][]int64{"data": make([]int64, 200)}
	for i := range inputs["data"] {
		inputs["data"][i] = int64((i*2654435761 + 17) % 32768)
	}

	fmt.Println("capacitor-size sweep (SCHEMATIC), histogram app")
	fmt.Printf("%-10s %10s %12s %8s %8s %12s %12s\n",
		"TBPF", "EB (nJ)", "checkpoints", "saves", "sleeps", "overhead µJ", "total µJ")
	for _, tbpf := range []int64{1_000, 3_000, 10_000, 30_000, 100_000} {
		eb := prof.EBForTBPF(tbpf)
		clone := ir.Clone(m)
		stats, err := schematic.Apply(clone, schematic.Config{
			Model: model, Budget: eb, VMSize: 2048, Profile: prof,
		})
		if err != nil {
			fmt.Printf("%-10d %10.0f  %v\n", tbpf, eb, err)
			continue
		}
		res, err := emulator.Run(clone, emulator.Config{
			Model: model, VMSize: 2048, Intermittent: true, EB: eb, Inputs: inputs,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Verdict != emulator.Completed {
			log.Fatalf("TBPF %d: %v", tbpf, res.Verdict)
		}
		l := res.Energy
		fmt.Printf("%-10d %10.0f %12d %8d %8d %12.2f %12.2f\n",
			tbpf, eb, stats.Checkpoints, res.Saves, res.Sleeps,
			l.Intermittency()/1000, l.Total()/1000)
	}
	fmt.Println("\nBoth the static placement (checkpoints) and the dynamic cost")
	fmt.Println("(saves, sleeps, overhead energy) shrink as the capacitor grows —")
	fmt.Println("the adaptation the paper highlights in Fig. 8.")
}
