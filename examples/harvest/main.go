// Harvest: run one SCHEMATIC-placed application under four
// harvested-energy environments (internal/harvest) and compare the
// failure counts and energy ledgers against the built-in exhaustion
// physics, then record the solar run into an NDJSON trace and replay
// it byte-identically.
//
//	go run ./examples/harvest
package main

import (
	"bytes"
	"fmt"
	"log"
	"reflect"

	schematic "schematic/internal/core"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/harvest"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

const app = `
input int data[128];
int acc;
int peak;

func void main() {
  int pass;
  int i;
  int v;
  acc = 0;
  peak = 0;
  for (pass = 0; pass < 24; pass = pass + 1) @max(24) {
    for (i = 0; i < 128; i = i + 1) @max(128) {
      v = ((data[i] + pass) * data[i]) & 0x3FFF;
      acc = (acc + v) & 0xFFFF;
      if (v > peak) {
        peak = v;
      }
    }
  }
  print(acc);
  print(peak);
}
`

func main() {
	model := energy.MSP430FR5969()
	m, err := minic.Compile("harvest", app)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := trace.Collect(m, trace.Options{Runs: 50, Seed: 3, Model: model})
	if err != nil {
		log.Fatal(err)
	}
	eb := prof.EBForTBPF(10_000)
	placed := ir.Clone(m)
	if _, err := schematic.Apply(placed, schematic.Config{
		Model: model, Budget: eb, VMSize: 2048, Profile: prof,
	}); err != nil {
		log.Fatal(err)
	}
	inputs := map[string][]int64{"data": make([]int64, 128)}
	for i := range inputs["data"] {
		inputs["data"][i] = int64((i*31 + 7) % 128)
	}
	run := func(sched emulator.PowerSchedule) *emulator.Result {
		res, err := emulator.Run(placed, emulator.Config{
			Model: model, VMSize: 2048, Intermittent: true, EB: eb,
			Inputs: inputs, Schedule: sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Each environment is a deterministic nJ/cycle waveform; the
	// capacitor integrates it against the per-instruction discharge.
	// Capacity = EB and Restart = 1 make every environment no harsher
	// than the built-in exhaustion model — undersize either to stress a
	// placement harder.
	envs := []struct {
		name  string
		sched emulator.PowerSchedule
	}{
		{"exhaustion", emulator.Exhaustion()},
		{"solar", harvest.Capacitor{Env: harvest.Solar{Seed: 9}, Capacity: eb}.Schedule()},
		{"rf", harvest.Capacitor{Env: harvest.RF{Seed: 2}, Capacity: eb}.Schedule()},
		{"piezo", harvest.Capacitor{Env: harvest.Piezo{}, Capacity: eb}.Schedule()},
		// Piezo's rectified-sine average (~0.38 nJ/cycle) is just below
		// the model's 0.40 nJ/cycle draw, so an undersized capacitor
		// slowly loses ground mid-segment and real failures appear.
		{"piezo (undersized)", harvest.Capacitor{
			Env: harvest.Piezo{}, Capacity: eb * 0.4, Restart: 0.5,
		}.Schedule()},
	}
	fmt.Printf("harvested-environment sweep (SCHEMATIC, EB = %.0f nJ)\n", eb)
	fmt.Printf("%-18s %8s %8s %8s %12s  %s\n",
		"environment", "verdict", "fails", "sleeps", "total µJ", "output")
	for _, e := range envs {
		res := run(e.sched)
		fmt.Printf("%-18s %8v %8d %8d %12.2f  %v\n",
			e.name, res.Verdict, res.PowerFailures, res.Sleeps,
			res.Energy.Total()/1000, res.Output)
	}

	// Record the solar run: the Recorder wraps any schedule, captures
	// every refusal decision plus periodic capacitor telemetry, and
	// serializes a versioned NDJSON trace.
	rec := harvest.NewRecorder(
		harvest.Capacitor{Env: harvest.Solar{Seed: 9}, Capacity: eb}.Schedule(), eb)
	rec.SampleEvery = 10_000
	recorded := run(rec)

	var buf bytes.Buffer
	if err := rec.Trace().Write(&buf); err != nil {
		log.Fatal(err)
	}
	tr, err := harvest.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	replayed := run(tr.Schedule())
	fmt.Println("\nRight-sized environments match exhaustion exactly; the undersized")
	fmt.Println("one pays real power failures and re-execution energy, yet the")
	fmt.Println("output stays oracle-equal — the crash-consistency contract holds.")

	fmt.Printf("\nrecord -> replay: %d bytes of trace, results identical: %v\n",
		buf.Len(), reflect.DeepEqual(recorded, replayed))
	fmt.Println("(the same trace replays from the CLI: iemu -power trace:run.ndjson)")
	if !reflect.DeepEqual(recorded, replayed) {
		log.Fatal("replay diverged from the recorded run")
	}
}
