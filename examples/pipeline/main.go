// Pipeline: the full production toolchain on one program — compile,
// optimize, profile, place checkpoints with the register-liveness
// extension, statically validate, and compare the run against the
// unoptimized full-register-file build.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	schematic "schematic/internal/core"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/opt"
	"schematic/internal/trace"
)

const program = `
// Moving-average filter with a threshold detector: the kind of sensing
// kernel the paper's intro motivates, written naively so the optimizer
// has work to do.
input int raw[96];
int filtered[96];
int events;

func int clamp(int v) {
  int lo;
  int hi;
  lo = 0 - 32768;
  hi = 32767;
  if (v < lo) {
    return lo;
  }
  if (v > hi) {
    return hi;
  }
  return v * 1 + 0;
}

func void main() {
  int i;
  int acc;
  int w;
  w = 4;
  events = 0;
  acc = 0;
  for (i = 0; i < 96; i = i + 1) @max(96) {
    acc = acc + raw[i];
    if (i >= w) {
      acc = acc - raw[i - w];
    }
    filtered[i] = clamp(acc / w);
    if (filtered[i] > 6000) {
      events = events + 1;
    }
  }
  print(events);
  print(filtered[95]);
}
`

func main() {
	model := energy.MSP430FR5969()

	// 1. Front end.
	m, err := minic.Compile("pipeline", program)
	if err != nil {
		log.Fatal(err)
	}
	count := func(mod *ir.Module) int {
		n := 0
		for _, f := range mod.Funcs {
			for _, b := range f.Blocks {
				n += len(b.Instrs)
			}
		}
		return n
	}
	before := count(m)

	// 2. Optimizer (the paper's toolchain consumes optimized LLVM IR;
	// this is the equivalent stage).
	ost, err := opt.Optimize(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: %v\n", ost)
	fmt.Printf("instructions: %d -> %d\n\n", before, count(m))

	// 3. Profile on representative inputs, derive EB from a target TBPF.
	prof, err := trace.Collect(m, trace.Options{Runs: 50, Seed: 7, Model: model})
	if err != nil {
		log.Fatal(err)
	}
	eb := prof.EBForTBPF(10_000)
	fmt.Printf("EB = %.1f nJ for TBPF = 10k cycles\n\n", eb)

	inputs := map[string][]int64{"raw": make([]int64, 96)}
	rng := rand.New(rand.NewSource(7))
	for i := range inputs["raw"] {
		inputs["raw"][i] = int64(rng.Intn(30000) - 2000)
	}

	// 4. Place checkpoints twice: the plain pass and the §VII
	// register-liveness extension.
	run := func(label string, refine bool) *emulator.Result {
		tr := ir.Clone(m)
		conf := schematic.Config{
			Model: model, Budget: eb, VMSize: 2048, Profile: prof,
			RefineRegisterLiveness: refine,
		}
		st, err := schematic.Apply(tr, conf)
		if err != nil {
			log.Fatal(err)
		}
		if err := schematic.Validate(tr, conf); err != nil {
			log.Fatal(err)
		}
		res, err := emulator.Run(tr, emulator.Config{
			Model: model, VMSize: 2048, Intermittent: true, EB: eb, Inputs: inputs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %d checkpoints, %d saves, ckpt energy %.0f nJ, total %.0f nJ, verdict %v\n",
			label, st.Checkpoints, res.Saves,
			res.Energy.Save+res.Energy.Restore, res.Energy.Total(), res.Verdict)
		return res
	}
	full := run("full register file:", false)
	refined := run("live registers only:", true)

	fmt.Printf("\nregister-liveness saving: %.1f%% of checkpoint energy\n",
		(1-(refined.Energy.Save+refined.Energy.Restore)/(full.Energy.Save+full.Energy.Restore))*100)
	fmt.Printf("output (events, last filtered sample): %v\n", refined.Output)
}
