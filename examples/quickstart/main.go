// Quickstart: compile a MiniC program, let SCHEMATIC place checkpoints and
// allocate memory for a 2 KB-SRAM platform, and watch it run to completion
// under intermittent power.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	schematic "schematic/internal/core"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

const program = `
// Sum and classify a sensor buffer.
input int samples[64];
int sum;
int peaks;

func int isPeak(int v) {
  if (v > 24000) {
    return 1;
  }
  return 0;
}

func void main() {
  int i;
  sum = 0;
  peaks = 0;
  for (i = 0; i < 64; i = i + 1) @max(64) {
    sum = sum + samples[i];
    peaks = peaks + isPeak(samples[i]);
  }
  print(sum);
  print(peaks);
}
`

func main() {
	model := energy.MSP430FR5969()

	// 1. Compile MiniC to IR.
	m, err := minic.Compile("quickstart", program)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Profile with random inputs (the paper uses 1000 runs; III-A3).
	prof, err := trace.Collect(m, trace.Options{Runs: 100, Seed: 7, Model: model})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Derive the energy budget from a time-between-power-failures of
	// 10k cycles (IV-C) and run the SCHEMATIC pass.
	eb := prof.EBForTBPF(10_000)
	transformed := ir.Clone(m)
	stats, err := schematic.Apply(transformed, schematic.Config{
		Model:   model,
		Budget:  eb,
		VMSize:  2048,
		Profile: prof,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SCHEMATIC: EB=%.0f nJ, %d checkpoints (%d conditional), %d variables in VM, analysis %v\n",
		eb, stats.Checkpoints, stats.CondCheckpoints, stats.VMVars, stats.AnalysisTime)

	// 4. Execute under intermittent power and compare against stable power.
	inputs := map[string][]int64{"samples": make([]int64, 64)}
	for i := range inputs["samples"] {
		inputs["samples"][i] = int64((i * 997) % 32768)
	}
	ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		log.Fatal(err)
	}
	res, err := emulator.Run(transformed, emulator.Config{
		Model:        model,
		VMSize:       2048,
		Intermittent: true,
		EB:           eb,
		Inputs:       inputs,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stable power:       output=%v, %.1f µJ\n", ref.Output, ref.Energy.Total()/1000)
	fmt.Printf("intermittent power: output=%v, %.1f µJ, verdict=%v\n",
		res.Output, res.Energy.Total()/1000, res.Verdict)
	fmt.Printf("  %d capacitor recharges, %d checkpoint saves, zero re-execution energy: %.1f nJ\n",
		res.Sleeps, res.Saves, res.Energy.Reexecution)
	if fmt.Sprint(ref.Output) == fmt.Sprint(res.Output) {
		fmt.Println("  outputs match — forward progress with intact semantics ✓")
	}
}
