// Sensing: a battery-free sensing pipeline (moving average + event
// detection + CRC-protected log), in the spirit of the paper's motivating
// scenario (Section I: battery-free devices sensing in hard-to-access
// locations). The example runs the same application under all five
// techniques and prints an energy comparison.
//
//	go run ./examples/sensing
package main

import (
	"fmt"
	"log"

	"schematic/internal/baselines"
	"schematic/internal/bench"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

const app = `
// A battery-free sensor node: smooth the raw readings, detect threshold
// crossings, and append a checksummed event log.
input int raw[96];
int smooth[96];
int events;
int logsum;

func int movavg(int idx) {
  int acc;
  int k;
  int from;
  acc = 0;
  from = idx - 3;
  if (from < 0) {
    from = 0;
  }
  for (k = from; k <= idx; k = k + 1) @max(4) {
    acc = acc + raw[k];
  }
  return acc / (idx - from + 1);
}

func int crcStep(int acc, int v) {
  int j;
  acc = acc ^ (v & 0xFF);
  for (j = 0; j < 8; j = j + 1) @max(8) {
    if ((acc & 1) != 0) {
      acc = (acc >> 1) ^ 0xA001;
    } else {
      acc = acc >> 1;
    }
  }
  return acc & 0xFFFF;
}

func void main() {
  int i;
  int v;
  events = 0;
  logsum = 0xFFFF;
  for (i = 0; i < 96; i = i + 1) @max(96) {
    v = movavg(i);
    smooth[i] = v;
    if (v > 20000) {
      events = events + 1;
      logsum = crcStep(logsum, v);
      logsum = crcStep(logsum, i);
    }
  }
  print(events);
  print(logsum);
}
`

func main() {
	model := energy.MSP430FR5969()
	m, err := minic.Compile("sensing", app)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := trace.Collect(m, trace.Options{Runs: 100, Seed: 3, Model: model})
	if err != nil {
		log.Fatal(err)
	}
	const tbpf = 10_000
	eb := prof.EBForTBPF(tbpf)
	inputs := map[string][]int64{"raw": make([]int64, 96)}
	for i := range inputs["raw"] {
		inputs["raw"][i] = int64((i*i*31 + 500) % 32768)
	}
	ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensing app: EB=%.0f nJ (TBPF=%d cycles), reference output %v\n\n", eb, tbpf, ref.Output)
	fmt.Printf("%-12s %10s %10s %10s %10s %10s  %s\n",
		"technique", "total µJ", "compute", "save", "restore", "re-exec", "outcome")

	for _, tech := range bench.Techniques() {
		clone := ir.Clone(m)
		if err := tech.Apply(clone, baselines.Params{
			Model: model, Budget: eb, VMSize: 2048, Profile: prof,
		}); err != nil {
			fmt.Printf("%-12s %10s  (%v)\n", tech.Name(), "-", err)
			continue
		}
		res, err := emulator.Run(clone, emulator.Config{
			Model: model, VMSize: 2048, Intermittent: true, EB: eb, Inputs: inputs,
		})
		if err != nil {
			log.Fatal(err)
		}
		outcome := "✗ " + res.Verdict.String()
		if res.Verdict == emulator.Completed {
			outcome = "✓"
			if fmt.Sprint(res.Output) != fmt.Sprint(ref.Output) {
				outcome = "✗ wrong output"
			}
		}
		l := res.Energy
		fmt.Printf("%-12s %10.1f %10.1f %10.1f %10.1f %10.1f  %s\n",
			tech.Name(), l.Total()/1000, l.Computation/1000, l.Save/1000,
			l.Restore/1000, l.Reexecution/1000, outcome)
	}
}
