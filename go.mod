module schematic

go 1.22
