// Package alfred reimplements ALFRED (Maioli & Mottola, SenSys'21) on the
// shared IR substrate — the only baseline that, like SCHEMATIC, uses both
// VM and NVM as working memory (IV-A-b).
//
// ALFRED uses the energy-efficient VM as much as possible and reduces
// checkpoint overhead through *deferred restoration* (a variable is
// reloaded from NVM on its first read after a reboot) and *anticipated
// saving* (only variables actually written since the previous save reach
// NVM). It does not define its own placement strategy; following the
// paper's setup, checkpoints sit on loop latches like MEMENTOS's.
//
// ALFRED addresses VM and NVM with the same offsets, so it needs a VM as
// large as the data set even when only a few bytes are hot — which is why
// it cannot run dijkstra, fft, or rc4 on a 2 KB SRAM (Table I), and why
// SCHEMATIC's capacity-aware allocation is the paper's key advantage over
// it.
package alfred

import (
	"fmt"

	"schematic/internal/baselines"
	"schematic/internal/ir"
)

// Alfred is the technique instance.
type Alfred struct{}

// Name implements baselines.Technique.
func (Alfred) Name() string { return "Alfred" }

// SupportsVM implements baselines.Technique: the same-offset addressing
// scheme requires VM to span the whole data set.
func (Alfred) SupportsVM(m *ir.Module, vmSize int) bool {
	return baselines.DataBytes(m) <= vmSize
}

// Apply instruments the module: all data in VM, lazy rollback checkpoints
// on loop latches, and a lazy boot checkpoint (the initial data copy is
// also deferred to first use).
func (Alfred) Apply(m *ir.Module, p baselines.Params) error {
	if p.Model == nil {
		return fmt.Errorf("alfred: Params.Model is required")
	}
	if p.VMSize > 0 && baselines.DataBytes(m) > p.VMSize {
		return fmt.Errorf("alfred: data footprint %d B exceeds SVM %d B (same-offset scheme)",
			baselines.DataBytes(m), p.VMSize)
	}
	baselines.AllocAllVM(m)
	id := 0
	for _, f := range m.Funcs {
		for _, latch := range baselines.LatchBlocks(f) {
			ck := &ir.Checkpoint{ID: id, Kind: ir.CkRollback, SaveAll: true, Lazy: true}
			id++
			baselines.InsertBeforeTerminator(latch, ck)
		}
	}
	baselines.BootCheckpoint(m, ir.CkRollback, id, true)
	return ir.Verify(m)
}
