package alfred

import (
	"testing"

	"schematic/internal/baselines"
	"schematic/internal/baselines/techtest"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

func TestSemanticsUnderIntermittency(t *testing.T) {
	for _, budget := range []float64{1500, 4000, 20000} {
		techtest.Check(t, Alfred{}, techtest.LoopSrc, budget, 2048)
	}
}

func TestLazyCheckpoints(t *testing.T) {
	m := minic.MustCompile("t", techtest.LoopSrc)
	if err := (Alfred{}).Apply(m, baselines.Params{Model: energy.MSP430FR5969(), VMSize: 2048}); err != nil {
		t.Fatal(err)
	}
	lazy := 0
	for _, ck := range ir.Checkpoints(m) {
		if ck.Lazy {
			lazy++
		}
	}
	if lazy == 0 {
		t.Errorf("ALFRED checkpoints must use deferred restoration / anticipated saving")
	}
}

func TestSameOffsetVMRequirement(t *testing.T) {
	big := `
input int huge[2000];
func void main() {
  int s;
  s = huge[0] + huge[1999];
  print(s);
}
`
	m := minic.MustCompile("t", big)
	// ALFRED needs VM as large as the data even though only two elements
	// are accessed (Table I).
	if (Alfred{}).SupportsVM(m, 2048) {
		t.Errorf("SupportsVM should reject: same-offset scheme needs 4+ KB VM")
	}
	if err := (Alfred{}).Apply(m, baselines.Params{Model: energy.MSP430FR5969(), VMSize: 2048}); err == nil {
		t.Errorf("Apply should fail on insufficient VM")
	}
}

func TestAnticipatedSavingSavesLessThanMementosStyle(t *testing.T) {
	// ALFRED's dirty-only saves must move less data than a full-VM save.
	// Compare the Save energy of one forced checkpoint pass indirectly:
	// with a modest budget both techniques checkpoint, but ALFRED's save
	// cost is bounded by the written set.
	resA := techtest.Check(t, Alfred{}, techtest.LoopSrc, 2000, 2048)
	if resA.Int.Saves == 0 {
		t.Skip("no saves at this budget")
	}
	perSaveA := resA.Int.Energy.Save / float64(resA.Int.Saves)
	model := energy.MSP430FR5969()
	m := minic.MustCompile("t", techtest.LoopSrc)
	fullCost := model.SaveCost(baselines.AllVars(m))
	if perSaveA >= fullCost {
		t.Errorf("ALFRED per-save %.1f nJ not below full-VM save %.1f nJ", perSaveA, fullCost)
	}
}
