// Package allnvm is the All-NVM ablation of the paper's Fig. 7: SCHEMATIC
// with memory allocation disabled, so checkpoint placement still adapts to
// the platform but every variable stays in NVM. Comparing it against full
// SCHEMATIC isolates the contribution of the joint memory allocation.
package allnvm

import (
	"schematic/internal/baselines"
	schematic "schematic/internal/core"
	"schematic/internal/ir"
)

// AllNVM is the technique instance.
type AllNVM struct{}

// Name implements baselines.Technique.
func (AllNVM) Name() string { return "All-NVM" }

// SupportsVM implements baselines.Technique.
func (AllNVM) SupportsVM(*ir.Module, int) bool { return true }

// Apply runs SCHEMATIC with VM allocation disabled.
func (AllNVM) Apply(m *ir.Module, p baselines.Params) error {
	_, err := schematic.Apply(m, schematic.Config{
		Model:     p.Model,
		Budget:    p.Budget,
		VMSize:    p.VMSize,
		Profile:   p.Profile,
		DisableVM: true,
	})
	return err
}
