// Package baselines holds the common interface and shared transformation
// helpers of the four reference techniques the paper compares SCHEMATIC
// against (IV-A-b): RATCHET, MEMENTOS, ROCKCLIMB, and ALFRED, plus the
// All-NVM ablation of Fig. 7. Each technique lives in its own subpackage
// and transforms a module on the same IR and emulator substrate, mirroring
// how the paper re-implemented every baseline inside ScEpTIC for a fair
// comparison.
package baselines

import (
	"sort"

	"schematic/internal/cfg"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/trace"
)

// Params carries the platform description every technique receives.
type Params struct {
	Model  *energy.Model
	Budget float64 // EB in nJ
	VMSize int     // SVM in bytes
	// Profile is optional; techniques that need loop bounds use it as a
	// fallback for missing @max annotations.
	Profile *trace.Profile
}

// Technique is a checkpoint-placement/memory-allocation scheme.
type Technique interface {
	// Name returns the display name used in tables.
	Name() string
	// SupportsVM reports whether the technique can run the program within
	// the given VM size at all (Table I).
	SupportsVM(m *ir.Module, vmSize int) bool
	// Apply transforms the module in place.
	Apply(m *ir.Module, p Params) error
}

// AllVars lists every variable of the module (globals and all locals),
// sorted by name.
func AllVars(m *ir.Module) []*ir.Var {
	var vs []*ir.Var
	vs = append(vs, m.Globals...)
	for _, f := range m.Funcs {
		vs = append(vs, f.Locals...)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Name < vs[j].Name })
	return vs
}

// AllocAllVM places every variable of the module in VM in every block —
// the working-memory model of MEMENTOS and ALFRED. Each function's blocks
// share one map holding the globals plus that function's own locals.
func AllocAllVM(m *ir.Module) {
	for _, f := range m.Funcs {
		alloc := map[*ir.Var]bool{}
		for _, v := range m.Globals {
			if !v.AddrUsed {
				alloc[v] = true
			}
		}
		for _, v := range f.Locals {
			if !v.AddrUsed {
				alloc[v] = true
			}
		}
		for _, b := range f.Blocks {
			b.Alloc = alloc
		}
	}
}

// LatchBlocks returns the loop latch blocks of a function — the checkpoint
// locations of the MEMENTOS placement the paper reuses for MEMENTOS and
// ALFRED ("we placed checkpoints on loop latches", IV-A-b).
func LatchBlocks(f *ir.Func) []*ir.Block {
	dom := cfg.Dominators(f)
	lf := cfg.Loops(f, dom)
	var out []*ir.Block
	seen := map[*ir.Block]bool{}
	for _, l := range lf.All {
		for _, latch := range l.Latches {
			if !seen[latch] {
				seen[latch] = true
				out = append(out, latch)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// InsertBeforeTerminator places an instruction at the end of a block, just
// before its terminator.
func InsertBeforeTerminator(b *ir.Block, in ir.Instr) {
	t := b.Instrs[len(b.Instrs)-1]
	b.Instrs = append(append(b.Instrs[:len(b.Instrs)-1:len(b.Instrs)-1], in), t)
}

// InsertAtTop places an instruction at the start of a block, after any
// LoopBound metadata.
func InsertAtTop(b *ir.Block, in ir.Instr) {
	i := 0
	for i < len(b.Instrs) {
		if _, ok := b.Instrs[i].(*ir.LoopBound); ok {
			i++
			continue
		}
		break
	}
	rest := append([]ir.Instr{in}, b.Instrs[i:]...)
	b.Instrs = append(b.Instrs[:i:i], rest...)
}

// BootCheckpoint inserts the initial checkpoint at main's entry: the first
// recovery point, whose Restore list models the boot-time copy of
// initialized data into VM (crt0-style) for VM-resident variables.
func BootCheckpoint(m *ir.Module, kind ir.CheckpointKind, id int, lazy bool) *ir.Checkpoint {
	mainF := m.FuncByName("main")
	entry := mainF.Entry()
	var restore []*ir.Var
	for _, v := range AllVars(m) {
		if entry.InVM(v) {
			restore = append(restore, v)
		}
	}
	ck := &ir.Checkpoint{ID: id, Kind: kind, Restore: restore, SaveAll: true, Lazy: lazy}
	if len(restore) == 0 {
		ck.RegsOnly = true
	}
	InsertAtTop(entry, ck)
	return ck
}

// DataBytes re-exports ir.DataBytes for convenience in Table I checks.
func DataBytes(m *ir.Module) int { return ir.DataBytes(m) }

// WorstIterationEnergy estimates the worst-case energy of one iteration of
// a natural loop under an all-NVM allocation: the longest path from header
// to latch plus the back-edge, with callee costs folded in via summary.
func WorstIterationEnergy(model *energy.Model, l *cfg.Loop, calleeCost func(*ir.Func) float64) float64 {
	// Longest path over the loop's DAG (back-edges removed): simple
	// memoized DFS from the header.
	memo := map[*ir.Block]float64{}
	var worst func(b *ir.Block) float64
	worst = func(b *ir.Block) float64 {
		if v, ok := memo[b]; ok {
			return v
		}
		memo[b] = 0 // cycle guard (inner back-edges)
		cost := BlockEnergyNVM(model, b, calleeCost)
		best := 0.0
		for _, s := range b.Succs() {
			if !l.Contains(s) || s == l.Header {
				continue
			}
			if c := worst(s); c > best {
				best = c
			}
		}
		memo[b] = cost + best
		return memo[b]
	}
	return worst(l.Header)
}

// BlockEnergyNVM is the energy of one execution of b with all data in NVM,
// with callee costs added via the supplied summary function.
func BlockEnergyNVM(model *energy.Model, b *ir.Block, calleeCost func(*ir.Func) float64) float64 {
	e := 0.0
	for _, in := range b.Instrs {
		e += model.InstrEnergy(in, ir.NVM)
		if call, ok := in.(*ir.Call); ok && calleeCost != nil {
			e += calleeCost(call.Callee)
		}
	}
	return e
}
