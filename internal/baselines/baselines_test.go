package baselines

import (
	"testing"

	"schematic/internal/cfg"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

const loopSrc = `
int acc;
func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 20; i = i + 1) @max(20) {
    acc = acc + i;
  }
  print(acc);
}
`

func TestAllocAllVM(t *testing.T) {
	m := minic.MustCompile("t", loopSrc)
	AllocAllVM(m)
	acc := m.GlobalByName("acc")
	mainF := m.FuncByName("main")
	i := mainF.LocalByName("i")
	for _, b := range mainF.Blocks {
		if !b.InVM(acc) || !b.InVM(i) {
			t.Errorf("block %s missing VM allocation", b.Name)
		}
	}
}

func TestAllVarsSorted(t *testing.T) {
	m := minic.MustCompile("t", loopSrc)
	vs := AllVars(m)
	if len(vs) != 2 {
		t.Fatalf("vars = %d, want 2", len(vs))
	}
	for k := 1; k < len(vs); k++ {
		if vs[k-1].Name >= vs[k].Name {
			t.Errorf("AllVars not sorted")
		}
	}
}

func TestLatchBlocks(t *testing.T) {
	m := minic.MustCompile("t", loopSrc)
	latches := LatchBlocks(m.FuncByName("main"))
	if len(latches) != 1 || latches[0].Name != "for.latch" {
		t.Errorf("latches = %v", latches)
	}
}

func TestInsertHelpers(t *testing.T) {
	m := minic.MustCompile("t", loopSrc)
	f := m.FuncByName("main")
	head := f.BlockByName("for.head")
	ck := &ir.Checkpoint{ID: 1, Kind: ir.CkWait}
	InsertAtTop(head, ck)
	// The LoopBound metadata must stay first.
	if _, ok := head.Instrs[0].(*ir.LoopBound); !ok {
		t.Errorf("LoopBound displaced: %v", head.Instrs[0])
	}
	if head.Instrs[1] != ck {
		t.Errorf("checkpoint not after LoopBound")
	}
	latch := f.BlockByName("for.latch")
	ck2 := &ir.Checkpoint{ID: 2, Kind: ir.CkWait}
	InsertBeforeTerminator(latch, ck2)
	if latch.Instrs[len(latch.Instrs)-2] != ck2 {
		t.Errorf("checkpoint not before terminator")
	}
	if latch.Terminator() == nil {
		t.Errorf("terminator lost")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestBootCheckpoint(t *testing.T) {
	m := minic.MustCompile("t", loopSrc)
	AllocAllVM(m)
	ck := BootCheckpoint(m, ir.CkRollback, 7, false)
	if len(ck.Restore) != 2 {
		t.Errorf("boot restore = %v, want both variables", ck.Restore)
	}
	entry := m.FuncByName("main").Entry()
	if entry.Instrs[0] != ir.Instr(ck) {
		t.Errorf("boot checkpoint not at entry top")
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	ref, err := emulator.Run(minic.MustCompile("t", loopSrc),
		emulator.Config{Model: energy.MSP430FR5969()})
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []int{2, 3, 7, 10} {
		m := minic.MustCompile("t", loopSrc)
		f := m.FuncByName("main")
		lf := cfg.Loops(f, cfg.Dominators(f))
		if len(lf.All) != 1 {
			t.Fatalf("loops = %d", len(lf.All))
		}
		if err := UnrollLoop(f, lf.All[0], factor); err != nil {
			t.Fatalf("unroll %d: %v", factor, err)
		}
		if err := ir.Verify(m); err != nil {
			t.Fatalf("verify after unroll %d: %v", factor, err)
		}
		res, err := emulator.Run(m, emulator.Config{Model: energy.MSP430FR5969()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Output[0] != ref.Output[0] {
			t.Errorf("factor %d: output %v, want %v", factor, res.Output, ref.Output)
		}
		// The unrolled loop must have a single back-edge to the original
		// header.
		lf2 := cfg.Loops(f, cfg.Dominators(f))
		if len(lf2.All) != 1 || lf2.All[0].Header.Name != "for.head" {
			t.Errorf("factor %d: loop structure broken: %v", factor, lf2.All)
		}
		if l := lf2.All[0]; l.Latch() == nil {
			t.Errorf("factor %d: multiple latches after unroll", factor)
		}
	}
}

func TestUnrollWithBreak(t *testing.T) {
	src := `
int acc;
func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 100; i = i + 1) @max(100) {
    acc = acc + i;
    if (acc > 50) {
      break;
    }
  }
  print(acc);
  print(i);
}
`
	ref, err := emulator.Run(minic.MustCompile("t", src),
		emulator.Config{Model: energy.MSP430FR5969()})
	if err != nil {
		t.Fatal(err)
	}
	m := minic.MustCompile("t", src)
	f := m.FuncByName("main")
	lf := cfg.Loops(f, cfg.Dominators(f))
	if err := UnrollLoop(f, lf.All[0], 4); err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	res, err := emulator.Run(m, emulator.Config{Model: energy.MSP430FR5969()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 2 || res.Output[0] != ref.Output[0] || res.Output[1] != ref.Output[1] {
		t.Errorf("output = %v, want %v", res.Output, ref.Output)
	}
}

func TestWorstIterationEnergy(t *testing.T) {
	m := minic.MustCompile("t", loopSrc)
	f := m.FuncByName("main")
	lf := cfg.Loops(f, cfg.Dominators(f))
	model := energy.MSP430FR5969()
	e := WorstIterationEnergy(model, lf.All[0], nil)
	if e <= 0 || e > 200 {
		t.Errorf("iteration energy = %v, want a small positive value", e)
	}
}

func TestDataBytes(t *testing.T) {
	m := minic.MustCompile("t", loopSrc)
	// acc + i = 2 words.
	if got := DataBytes(m); got != 2*ir.WordBytes {
		t.Errorf("DataBytes = %d", got)
	}
}
