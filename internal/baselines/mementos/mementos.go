// Package mementos reimplements MEMENTOS (Ransford, Sorber & Fu,
// ASPLOS'11) on the shared IR substrate, as the paper's All-VM baseline
// (IV-A-b).
//
// MEMENTOS keeps all working data in VM and uses NVM only for checkpoints.
// The compiler inserts *trigger points*; at run time each trigger point
// measures the voltage across the capacitor and saves a full checkpoint
// (all of VM plus the registers) only when the remaining energy is below a
// threshold. Following the paper's setup, trigger points are placed on
// loop latches ("we placed checkpoints on loop latches, as described in
// the MEMENTOS publication").
//
// Because the entire data set must fit in VM, MEMENTOS cannot run programs
// whose footprint exceeds SVM (Table I), and because placement ignores the
// platform's energy characteristics it cannot guarantee forward progress
// for small TBPF (Table III).
package mementos

import (
	"fmt"

	"schematic/internal/baselines"
	"schematic/internal/ir"
)

// Mementos is the technique instance.
type Mementos struct{}

// Name implements baselines.Technique.
func (Mementos) Name() string { return "Mementos" }

// SupportsVM implements baselines.Technique: the whole data set lives in
// VM.
func (Mementos) SupportsVM(m *ir.Module, vmSize int) bool {
	return baselines.DataBytes(m) <= vmSize
}

// Apply instruments the module with trigger points on loop latches and an
// initial boot checkpoint that models loading the data section into VM.
func (Mementos) Apply(m *ir.Module, p baselines.Params) error {
	if p.Model == nil {
		return fmt.Errorf("mementos: Params.Model is required")
	}
	if p.VMSize > 0 && baselines.DataBytes(m) > p.VMSize {
		return fmt.Errorf("mementos: data footprint %d B exceeds SVM %d B",
			baselines.DataBytes(m), p.VMSize)
	}
	baselines.AllocAllVM(m)
	id := 0
	for _, f := range m.Funcs {
		for _, latch := range baselines.LatchBlocks(f) {
			ck := &ir.Checkpoint{ID: id, Kind: ir.CkTrigger, SaveAll: true}
			id++
			baselines.InsertBeforeTerminator(latch, ck)
		}
	}
	baselines.BootCheckpoint(m, ir.CkRollback, id, false)
	return ir.Verify(m)
}
