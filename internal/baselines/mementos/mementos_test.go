package mementos

import (
	"strings"
	"testing"

	"schematic/internal/baselines"
	"schematic/internal/baselines/techtest"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

func TestSemanticsUnderIntermittency(t *testing.T) {
	for _, budget := range []float64{1500, 4000, 20000} {
		res := techtest.Check(t, Mementos{}, techtest.LoopSrc, budget, 2048)
		if res.Int.Energy.NVMAccesses != 0 {
			t.Errorf("budget %v: MEMENTOS working memory is VM only, got %d NVM accesses",
				budget, res.Int.Energy.NVMAccesses)
		}
	}
}

func TestTriggerPointsOnLatches(t *testing.T) {
	m := minic.MustCompile("t", techtest.LoopSrc)
	if err := (Mementos{}).Apply(m, baselines.Params{Model: energy.MSP430FR5969(), VMSize: 2048}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range m.FuncByName("main").Blocks {
		if !strings.HasPrefix(b.Name, "for.latch") {
			continue
		}
		for _, in := range b.Instrs {
			if ck, ok := in.(*ir.Checkpoint); ok && ck.Kind == ir.CkTrigger {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no trigger point on the loop latch")
	}
}

func TestVMFootprintLimit(t *testing.T) {
	big := `
input int huge[2000];
func void main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 2000; i = i + 1) @max(2000) {
    s = s + huge[i];
  }
  print(s);
}
`
	m := minic.MustCompile("t", big)
	// 2000 words = 4000 B > 2048 B.
	if (Mementos{}).SupportsVM(m, 2048) {
		t.Errorf("SupportsVM should reject a 4000 B footprint on 2 KB VM")
	}
	err := (Mementos{}).Apply(m, baselines.Params{Model: energy.MSP430FR5969(), VMSize: 2048})
	if err == nil {
		t.Errorf("Apply should fail when the data does not fit in VM")
	}
	small := minic.MustCompile("t", techtest.LoopSrc)
	if !(Mementos{}).SupportsVM(small, 2048) {
		t.Errorf("SupportsVM should accept a small footprint")
	}
}

func TestSavesAreConditional(t *testing.T) {
	// With ample energy, trigger points rarely fire: saves should be far
	// fewer than loop iterations.
	res := techtest.Check(t, Mementos{}, techtest.LoopSrc, 20000, 2048)
	if res.Int.Saves > 5 {
		t.Errorf("saves = %d with a huge budget, trigger threshold is broken", res.Int.Saves)
	}
}
