// Package ratchet reimplements RATCHET (Van Der Woude & Hicks, OSDI'16) on
// the shared IR substrate, as the paper's All-NVM baseline (IV-A-b).
//
// RATCHET keeps all data in NVM, so the CPU registers are the only
// volatile state. Re-execution after a power failure is then safe exactly
// when no write-after-read (WAR) dependency on NVM spans a checkpoint-free
// region: re-executed stores would otherwise observe their own results
// (the "nonvolatile memory is a broken time machine" anomaly). RATCHET
// therefore places register-only rollback checkpoints so that every WAR
// pair is separated by a checkpoint. Placement is static and independent
// of the platform's energy budget — which is why RATCHET cannot guarantee
// forward progress for very small TBPF (Table III).
package ratchet

import (
	"fmt"

	"schematic/internal/baselines"
	"schematic/internal/ir"
)

// Ratchet is the technique instance.
type Ratchet struct{}

// Name implements baselines.Technique.
func (Ratchet) Name() string { return "Ratchet" }

// SupportsVM implements baselines.Technique: NVM-only techniques need no
// VM at all (Table I).
func (Ratchet) SupportsVM(*ir.Module, int) bool { return true }

// Apply instruments the module: every NVM WAR dependency is broken by a
// register-only rollback checkpoint, and main gets a boot checkpoint.
func (Ratchet) Apply(m *ir.Module, p baselines.Params) error {
	if p.Model == nil {
		return fmt.Errorf("ratchet: Params.Model is required")
	}
	id := 0
	for _, f := range m.Funcs {
		id = breakWARs(f, id)
	}
	baselines.BootCheckpoint(m, ir.CkRollback, id, false)
	return ir.Verify(m)
}

// breakWARs inserts checkpoints in f so no WAR dependency spans a
// checkpoint-free region. The analysis tracks, per block, the set of
// variables read since the last checkpoint; a write to a read variable
// forces a checkpoint immediately before the writing instruction.
// Cross-block tracking iterates to a fixed point over the CFG.
func breakWARs(f *ir.Func, nextID int) int {
	// readIn[b] = variables possibly read since the last checkpoint at
	// entry of b.
	readIn := map[*ir.Block]map[*ir.Var]bool{}
	for _, b := range f.Blocks {
		readIn[b] = map[*ir.Var]bool{}
	}

	// Process one block: walk instructions, inserting checkpoints where a
	// tracked WAR would otherwise occur, and return the read-set at exit.
	process := func(b *ir.Block, insert bool) map[*ir.Var]bool {
		reads := map[*ir.Var]bool{}
		for v := range readIn[b] {
			reads[v] = true
		}
		for i := 0; i < len(b.Instrs); i++ {
			switch x := b.Instrs[i].(type) {
			case *ir.Checkpoint:
				reads = map[*ir.Var]bool{}
			case *ir.Load:
				reads[x.Var] = true
			case *ir.Store:
				if reads[x.Var] {
					if insert {
						ck := &ir.Checkpoint{ID: -1, Kind: ir.CkRollback, RegsOnly: true}
						rest := append([]ir.Instr{ck}, b.Instrs[i:]...)
						b.Instrs = append(b.Instrs[:i:i], rest...)
						i++ // skip the checkpoint we just inserted
					}
					reads = map[*ir.Var]bool{}
				}
				if x.HasIndex {
					// A partial array write leaves other elements' earlier
					// reads intact — keep tracking the array as read.
					reads[x.Var] = true
				}
			case *ir.Call:
				// The callee is instrumented independently; its own WARs
				// are broken inside it. Its reads/writes of globals reset
				// nothing here, so stay conservative: globals read by the
				// callee join the read set. Over-approximate with all
				// globals, which at worst adds checkpoints.
				for _, g := range b.Func.Module.Globals {
					reads[g] = true
				}
			}
		}
		return reads
	}

	// Fixed point on the read-in sets, without inserting.
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			out := process(b, false)
			for _, s := range b.Succs() {
				for v := range out {
					if !readIn[s][v] {
						readIn[s][v] = true
						changed = true
					}
				}
			}
		}
	}
	// Insertion pass.
	for _, b := range f.Blocks {
		process(b, true)
	}
	// Number the checkpoints deterministically.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if ck, ok := in.(*ir.Checkpoint); ok && ck.ID == -1 {
				ck.ID = nextID
				nextID++
			}
		}
	}
	return nextID
}
