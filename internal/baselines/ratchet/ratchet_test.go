package ratchet

import (
	"testing"

	"schematic/internal/baselines"
	"schematic/internal/baselines/techtest"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

func TestSemanticsUnderIntermittency(t *testing.T) {
	for _, budget := range []float64{800, 2000, 10000} {
		res := techtest.Check(t, Ratchet{}, techtest.LoopSrc, budget, 2048)
		if res.Int.Energy.VMAccesses != 0 {
			t.Errorf("budget %v: RATCHET must not use VM", budget)
		}
	}
}

func TestReexecutionHappens(t *testing.T) {
	res := techtest.Check(t, Ratchet{}, techtest.LoopSrc, 900, 2048)
	if res.Int.PowerFailures == 0 {
		t.Skip("budget large enough to avoid failures on this machine model")
	}
	if res.Int.Energy.Reexecution == 0 {
		t.Errorf("rollback runtime should pay re-execution energy after %d failures",
			res.Int.PowerFailures)
	}
}

func TestWARsAreBroken(t *testing.T) {
	m := minic.MustCompile("t", techtest.LoopSrc)
	if err := (Ratchet{}).Apply(m, baselines.Params{Model: energy.MSP430FR5969()}); err != nil {
		t.Fatal(err)
	}
	// Walk every block: between checkpoints within a block, no variable
	// may be read and then written.
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			reads := map[*ir.Var]bool{}
			for _, in := range b.Instrs {
				switch x := in.(type) {
				case *ir.Checkpoint:
					reads = map[*ir.Var]bool{}
				case *ir.Load:
					reads[x.Var] = true
				case *ir.Store:
					if reads[x.Var] && !x.HasIndex {
						t.Errorf("%s.%s: WAR on %s not broken", f.Name, b.Name, x.Var.Name)
					}
				}
			}
		}
	}
}

func TestStuckWhenSegmentTooBig(t *testing.T) {
	// A long WAR-free stretch: RATCHET places no checkpoint inside it, so
	// a tiny budget traps the execution (Table III, aes at TBPF=1k).
	src := `
int out1;
func void main() {
  int a;
  int b;
  int c;
  a = 1;
  b = 2;
  c = 3;
  a = a + 1; b = b + 2; c = c + 3;
  a = a * 2; b = b * 2; c = c * 2;
  a = a + b; b = b + c; c = c + a;
  a = a * 3; b = b * 3; c = c * 3;
  a = a + b; b = b + c; c = c + a;
  out1 = a + b + c;
  print(out1);
}
`
	m := minic.MustCompile("t", src)
	if err := (Ratchet{}).Apply(m, baselines.Params{Model: energy.MSP430FR5969()}); err != nil {
		t.Fatal(err)
	}
	res, err := emulator.Run(m, emulator.Config{
		Model:        energy.MSP430FR5969(),
		Intermittent: true,
		EB:           60, // far below any checkpoint-free stretch
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != emulator.Stuck {
		t.Errorf("verdict = %v, want stuck", res.Verdict)
	}
}

func TestSupportsVM(t *testing.T) {
	m := minic.MustCompile("t", techtest.LoopSrc)
	if !(Ratchet{}).SupportsVM(m, 0) {
		t.Errorf("NVM-only technique must always support any VM size")
	}
}
