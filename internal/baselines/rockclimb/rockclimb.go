// Package rockclimb reimplements ROCKCLIMB (Choi, Kittinger, Liu & Jung,
// RTAS'22) on the shared IR substrate (IV-A-b).
//
// ROCKCLIMB works on NVM only and, like SCHEMATIC, guarantees that no
// power failure can occur during execution: checkpoints are placed at
// compile time so that the energy between any two successive checkpoints
// fits in a full capacitor, and at run time the platform shuts down at
// each checkpoint until the capacitor is replenished. Its first pass
// systematically places checkpoints at loop headers and before function
// calls; its second pass walks the CFG and adds checkpoints wherever the
// worst-case energy between checkpoints would exceed EB. The loop
// unrolling optimization (factor capped at 10) avoids checkpointing every
// iteration of cheap loops.
package rockclimb

import (
	"fmt"

	"schematic/internal/baselines"
	"schematic/internal/cfg"
	"schematic/internal/energy"
	"schematic/internal/ir"
)

// MaxUnroll caps the unrolling factor (paper, IV-A-b).
const MaxUnroll = 10

// Rockclimb is the technique instance.
type Rockclimb struct{}

// Name implements baselines.Technique.
func (Rockclimb) Name() string { return "Rockclimb" }

// SupportsVM implements baselines.Technique: NVM-only, so always.
func (Rockclimb) SupportsVM(*ir.Module, int) bool { return true }

// summary is the residual-energy contract of an instrumented callee.
type summary struct {
	hasCk        bool
	total        float64 // checkpoint-free callees: worst-case energy
	entryDemand  float64 // energy from entry to the first checkpoint's save
	exitResidual float64 // worst energy drawn since the last replenish at exit
}

type pass struct {
	model     *energy.Model
	budget    float64
	summaries map[*ir.Func]*summary
	nextID    int
}

// Apply instruments the module.
func (Rockclimb) Apply(m *ir.Module, p baselines.Params) error {
	if p.Model == nil {
		return fmt.Errorf("rockclimb: Params.Model is required")
	}
	if p.Budget <= 0 {
		return fmt.Errorf("rockclimb: Params.Budget must be positive")
	}
	ps := &pass{
		model:     p.Model,
		budget:    p.Budget,
		summaries: map[*ir.Func]*summary{},
	}
	cg := cfg.BuildCallGraph(m)
	order, err := cg.ReverseTopo(m)
	if err != nil {
		return err
	}
	for _, f := range order {
		if err := ps.instrument(f); err != nil {
			return err
		}
	}
	baselines.BootCheckpoint(m, ir.CkWait, ps.nextID, false)
	return ir.Verify(m)
}

func (ps *pass) newCk() *ir.Checkpoint {
	ck := &ir.Checkpoint{ID: ps.nextID, Kind: ir.CkWait, RegsOnly: true}
	ps.nextID++
	return ck
}

func (ps *pass) calleeCost(f *ir.Func) float64 {
	if s := ps.summaries[f]; s != nil && !s.hasCk {
		return s.total
	}
	return 0 // checkpointed callees handled explicitly in the scan
}

// instrument applies pass 1 (unroll, loop-header and call-site
// checkpoints) and pass 2 (forward-progress insertion) to one function.
func (ps *pass) instrument(f *ir.Func) error {
	// Unroll innermost loops so cheap iterations share one checkpoint.
	dom := cfg.Dominators(f)
	lf := cfg.Loops(f, dom)
	usable := ps.budget - ps.model.SaveRegsCost() - ps.model.RestoreRegsCost()
	for _, l := range lf.BottomUp() {
		if len(l.Children) > 0 || l.Latch() == nil {
			continue
		}
		iter := baselines.WorstIterationEnergy(ps.model, l, ps.calleeCost)
		if iter <= 0 {
			continue
		}
		k := int(usable / iter)
		if k > MaxUnroll {
			k = MaxUnroll
		}
		if k >= 2 {
			if err := baselines.UnrollLoop(f, l, k); err != nil {
				return err
			}
		}
	}

	// Pass 1: checkpoints at loop headers and before calls.
	dom = cfg.Dominators(f)
	lf = cfg.Loops(f, dom)
	for _, l := range lf.All {
		baselines.InsertAtTop(l.Header, ps.newCk())
	}
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			if _, ok := b.Instrs[i].(*ir.Call); ok {
				if i > 0 {
					if _, already := b.Instrs[i-1].(*ir.Checkpoint); already {
						continue
					}
				}
				ck := ps.newCk()
				rest := append([]ir.Instr{ck}, b.Instrs[i:]...)
				b.Instrs = append(b.Instrs[:i:i], rest...)
				i++
			}
		}
	}

	// Pass 2: traverse and add checkpoints wherever the energy between
	// successive checkpoints would exceed the budget.
	if err := ps.ensureProgress(f); err != nil {
		return err
	}
	ps.summaries[f] = ps.summarize(f)
	return nil
}

// ensureProgress iterates a worst-case energy propagation over the CFG,
// inserting a checkpoint right before the instruction at which the drawn
// energy (since the last replenishment, including the upcoming save) would
// exceed EB.
func (ps *pass) ensureProgress(f *ir.Func) error {
	limit := ps.budget - ps.model.SaveRegsCost()
	if limit <= 0 {
		return fmt.Errorf("rockclimb: budget %.1f nJ cannot even cover a checkpoint", ps.budget)
	}
	for round := 0; ; round++ {
		if round > 10000 {
			return fmt.Errorf("rockclimb: func %s: forward-progress insertion did not converge", f.Name)
		}
		ein := ps.propagate(f)
		b, idx, ok := ps.findOverflow(f, ein, limit)
		if !ok {
			return nil
		}
		if idx == 0 {
			// The block is entered already too depleted; after the
			// preceding fixes this means a single instruction (plus
			// restore) exceeds the budget.
			return fmt.Errorf("rockclimb: func %s: block %s cannot fit in EB=%.1f nJ",
				f.Name, b.Name, ps.budget)
		}
		ck := ps.newCk()
		rest := append([]ir.Instr{ck}, b.Instrs[idx:]...)
		b.Instrs = append(b.Instrs[:idx:idx], rest...)
	}
}

// propagate computes, per block, the worst-case energy drawn since the
// last replenishment at block entry.
func (ps *pass) propagate(f *ir.Func) map[*ir.Block]float64 {
	ein := map[*ir.Block]float64{}
	for _, b := range f.Blocks {
		ein[b] = -1
	}
	ein[f.Entry()] = ps.model.RestoreRegsCost() // resume after the boot checkpoint
	for changed, rounds := true, 0; changed && rounds < 10000; rounds++ {
		changed = false
		for _, b := range ir.ReversePostorder(f) {
			if ein[b] < 0 {
				continue
			}
			out := ps.scanBlock(b, ein[b], nil)
			for _, s := range b.Succs() {
				if out > ein[s] {
					ein[s] = out
					changed = true
				}
			}
		}
	}
	return ein
}

// scanBlock walks a block from the given entry energy and returns the
// worst-case energy at exit. When overflow is non-nil it is called with
// the index of the first instruction whose execution (plus a final save)
// would exceed the limit.
func (ps *pass) scanBlock(b *ir.Block, e float64, overflow func(int) bool) float64 {
	for i, in := range b.Instrs {
		switch x := in.(type) {
		case *ir.Checkpoint:
			e = ps.model.RestoreRegsCost()
			continue
		case *ir.Call:
			if s := ps.summaries[x.Callee]; s != nil && s.hasCk {
				cost := ps.model.InstrEnergy(in, ir.NVM)
				if overflow != nil && e+cost+s.entryDemand > ps.budget {
					if overflow(i) {
						return e
					}
				}
				e = s.exitResidual
				continue
			}
		}
		cost := ps.model.InstrEnergy(in, ir.NVM)
		if call, ok := in.(*ir.Call); ok {
			cost += ps.calleeCost(call.Callee)
		}
		if overflow != nil && e+cost+ps.model.SaveRegsCost() > ps.budget {
			if overflow(i) {
				return e
			}
		}
		e += cost
	}
	return e
}

// findOverflow locates the first instruction at which the budget would be
// exceeded.
func (ps *pass) findOverflow(f *ir.Func, ein map[*ir.Block]float64, limit float64) (*ir.Block, int, bool) {
	for _, b := range ir.ReversePostorder(f) {
		if ein[b] < 0 {
			continue
		}
		found := -1
		ps.scanBlock(b, ein[b], func(i int) bool {
			found = i
			return true
		})
		if found >= 0 {
			return b, found, true
		}
	}
	return nil, 0, false
}

// summarize derives the caller-facing contract after instrumentation.
func (ps *pass) summarize(f *ir.Func) *summary {
	s := &summary{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(*ir.Checkpoint); ok {
				s.hasCk = true
			}
			if call, ok := in.(*ir.Call); ok {
				if cs := ps.summaries[call.Callee]; cs != nil && cs.hasCk {
					s.hasCk = true
				}
			}
		}
	}
	ein := ps.propagate(f)
	worstExit := 0.0
	for _, b := range f.Blocks {
		if ein[b] < 0 {
			continue
		}
		out := ps.scanBlock(b, ein[b], nil)
		if _, isRet := b.Terminator().(*ir.Ret); isRet && out > worstExit {
			worstExit = out
		}
	}
	if !s.hasCk {
		// Total cost relative to a zero entry (propagate seeded the entry
		// with the restore cost; remove it).
		s.total = worstExit - ps.model.RestoreRegsCost()
		if s.total < 0 {
			s.total = 0
		}
		return s
	}
	s.exitResidual = worstExit
	// Entry demand: worst energy from entry to the first checkpoint's
	// completed save.
	s.entryDemand = ps.entryDemand(f)
	return s
}

// entryDemand computes the worst-case energy from function entry to the
// completion of the first checkpoint save (or function exit, whichever is
// worse for the caller's budget check).
func (ps *pass) entryDemand(f *ir.Func) float64 {
	demand := 0.0
	seen := map[*ir.Block]bool{}
	var walk func(b *ir.Block, e float64)
	walk = func(b *ir.Block, e float64) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, in := range b.Instrs {
			if _, ok := in.(*ir.Checkpoint); ok {
				if w := e + ps.model.SaveRegsCost(); w > demand {
					demand = w
				}
				return
			}
			e += ps.model.InstrEnergy(in, ir.NVM)
			if call, ok := in.(*ir.Call); ok {
				if cs := ps.summaries[call.Callee]; cs != nil {
					if cs.hasCk {
						if w := e + cs.entryDemand; w > demand {
							demand = w
						}
						return
					}
					e += cs.total
				}
			}
		}
		if w := e; w > demand {
			demand = w
		}
		for _, s := range b.Succs() {
			walk(s, e)
		}
	}
	walk(f.Entry(), 0)
	return demand
}
