package rockclimb

import (
	"strings"
	"testing"

	"schematic/internal/baselines"
	"schematic/internal/baselines/techtest"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

func TestSemanticsUnderIntermittency(t *testing.T) {
	for _, budget := range []float64{800, 2000, 10000} {
		res := techtest.Check(t, Rockclimb{}, techtest.LoopSrc, budget, 2048)
		if res.Int.Energy.Reexecution != 0 {
			t.Errorf("budget %v: ROCKCLIMB never re-executes, got %.1f nJ",
				budget, res.Int.Energy.Reexecution)
		}
		if res.Int.PowerFailures != 0 {
			t.Errorf("budget %v: wait discipline should avoid failures, got %d",
				budget, res.Int.PowerFailures)
		}
		if res.Int.Energy.VMAccesses != 0 {
			t.Errorf("budget %v: NVM-only technique used VM", budget)
		}
	}
}

func TestCheckpointAtLoopHeaderAndCalls(t *testing.T) {
	m := minic.MustCompile("t", techtest.LoopSrc)
	err := (Rockclimb{}).Apply(m, baselines.Params{Model: energy.MSP430FR5969(), Budget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	mainF := m.FuncByName("main")
	headerCk := false
	callCk := false
	for _, b := range mainF.Blocks {
		for i, in := range b.Instrs {
			if _, ok := in.(*ir.Checkpoint); ok && strings.HasPrefix(b.Name, "for.head") {
				headerCk = true
			}
			if _, ok := in.(*ir.Call); ok && i > 0 {
				if _, ck := b.Instrs[i-1].(*ir.Checkpoint); ck {
					callCk = true
				}
			}
		}
	}
	if !headerCk {
		t.Errorf("no checkpoint at the loop header")
	}
	if !callCk {
		t.Errorf("no checkpoint before the call")
	}
}

func TestUnrollingReducesSaves(t *testing.T) {
	// A cheap long loop: unrolling (≤10) shares one header checkpoint
	// among several iterations, so saves < iterations.
	src := `
int acc;
func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 100; i = i + 1) @max(100) {
    acc = acc + i;
  }
  print(acc);
}
`
	res := techtest.Check(t, Rockclimb{}, src, 5000, 2048)
	if res.Int.Saves >= 100 {
		t.Errorf("saves = %d, unrolling should cut per-iteration checkpoints", res.Int.Saves)
	}
	if res.Int.Saves < 100/MaxUnroll {
		t.Errorf("saves = %d, too few for the x%d unroll cap", res.Int.Saves, MaxUnroll)
	}
}

func TestForwardProgressInsertion(t *testing.T) {
	// A long straight-line stretch must receive pass-2 checkpoints when
	// the budget is small.
	src := `
int r;
func void main() {
  int a;
  a = 1;
  a = a * 3 + 1; a = a * 3 + 1; a = a * 3 + 1; a = a * 3 + 1;
  a = a * 3 + 1; a = a * 3 + 1; a = a * 3 + 1; a = a * 3 + 1;
  a = a % 1000;
  a = a * 3 + 1; a = a * 3 + 1; a = a * 3 + 1; a = a * 3 + 1;
  a = a % 1000;
  r = a;
  print(r);
}
`
	// A checkpoint cycle costs ≈104 nJ (register save+restore), so a
	// 160 nJ budget leaves ≈56 nJ of work per segment: several pass-2
	// checkpoints are necessary.
	res := techtest.Check(t, Rockclimb{}, src, 160, 2048)
	if res.Int.Saves < 3 {
		t.Errorf("saves = %d, expected pass-2 checkpoints in the straight-line stretch",
			res.Int.Saves)
	}
}

func TestBudgetTooSmall(t *testing.T) {
	m := minic.MustCompile("t", techtest.LoopSrc)
	err := (Rockclimb{}).Apply(m, baselines.Params{Model: energy.MSP430FR5969(), Budget: 10})
	if err == nil {
		t.Errorf("Apply should reject a budget below one checkpoint's cost")
	}
}
