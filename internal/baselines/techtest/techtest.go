// Package techtest provides shared test scaffolding for the baseline
// technique packages: transform a program, run it on continuous and
// intermittent power, and check semantic preservation.
package techtest

import (
	"testing"

	"schematic/internal/baselines"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

// LoopSrc is a small standard workload: an accumulation loop plus a
// function call, touching both a scalar-heavy and an array access pattern.
const LoopSrc = `
input int data[16];
int acc;

func int scale(int x) {
  return x * 3;
}

func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 16; i = i + 1) @max(16) {
    acc = acc + scale(data[i]);
  }
  print(acc);
}
`

// Inputs is the fixed workload used by Check.
func Inputs(m *ir.Module) map[string][]int64 {
	inputs := map[string][]int64{}
	for _, v := range m.InputVars() {
		data := make([]int64, v.Elems)
		for i := range data {
			data[i] = int64((i*13 + 5) % 50)
		}
		inputs[v.Name] = data
	}
	return inputs
}

// Result bundles what Check observed.
type Result struct {
	Ref *emulator.Result
	Int *emulator.Result
}

// Check transforms src with the technique and verifies that the program
// completes under intermittent power with the reference output. vmSize and
// budget configure the platform.
func Check(t *testing.T, tech baselines.Technique, src string, budget float64, vmSize int) Result {
	t.Helper()
	model := energy.MSP430FR5969()
	orig, err := minic.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inputs := Inputs(orig)
	ref, err := emulator.Run(orig, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	tr := ir.Clone(orig)
	if err := tech.Apply(tr, baselines.Params{Model: model, Budget: budget, VMSize: vmSize}); err != nil {
		t.Fatalf("%s.Apply: %v", tech.Name(), err)
	}
	res, err := emulator.Run(tr, emulator.Config{
		Model:        model,
		VMSize:       vmSize,
		Intermittent: true,
		EB:           budget,
		Inputs:       inputs,
	})
	if err != nil {
		t.Fatalf("%s run: %v", tech.Name(), err)
	}
	if res.Verdict != emulator.Completed {
		t.Fatalf("%s: verdict=%v failures=%d saves=%d\n%s",
			tech.Name(), res.Verdict, res.PowerFailures, res.Saves, tr.String())
	}
	if len(res.Output) != len(ref.Output) {
		t.Fatalf("%s: output=%v want=%v", tech.Name(), res.Output, ref.Output)
	}
	for i := range ref.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("%s: output[%d]=%d want=%d\n%s",
				tech.Name(), i, res.Output[i], ref.Output[i], tr.String())
		}
	}
	if res.UnsyncedReads != 0 {
		t.Fatalf("%s: %d unsynced VM reads", tech.Name(), res.UnsyncedReads)
	}
	return Result{Ref: ref, Int: res}
}
