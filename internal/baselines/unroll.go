package baselines

import (
	"fmt"

	"schematic/internal/cfg"
	"schematic/internal/ir"
)

// UnrollLoop replicates the body of a natural loop so that the rolled loop
// executes factor iterations per trip around the (single remaining)
// back-edge. ROCKCLIMB uses this to avoid checkpointing at every iteration
// (IV-A-b: "we nonetheless limit the unrolling factor to 10 to keep code
// size limited").
//
// The loop must have a single latch. Every copy keeps the loop's exit
// tests, so the transformation is semantics-preserving for any trip count:
// exit edges of the copies lead to the original exit blocks.
func UnrollLoop(f *ir.Func, l *cfg.Loop, factor int) error {
	if factor < 2 {
		return nil
	}
	latch := l.Latch()
	if latch == nil {
		return fmt.Errorf("baselines: unroll: loop at %s has %d latches, want 1",
			l.Header.Name, len(l.Latches))
	}

	// Stable ordering of the loop's blocks, with their instruction lists
	// snapshotted before any redirection (later copies must clone the
	// pristine body, not the rewired one).
	var body []*ir.Block
	for _, b := range f.Blocks {
		if l.Contains(b) {
			body = append(body, b)
		}
	}
	// Deep copies: redirect() mutates terminators in place, so sharing the
	// instruction pointers would corrupt the snapshot.
	pristine := map[*ir.Block][]ir.Instr{}
	for _, b := range body {
		for _, in := range b.Instrs {
			pristine[b] = append(pristine[b], ir.CloneInstr(in, nil))
		}
	}

	prevLatch := latch // block whose back-edge is redirected into the next copy
	for copyIdx := 1; copyIdx < factor; copyIdx++ {
		bmap := map[*ir.Block]*ir.Block{}
		for _, b := range body {
			nb := f.NewBlock(fmt.Sprintf("%s.u%d", b.Name, copyIdx))
			bmap[b] = nb
		}
		for _, b := range body {
			nb := bmap[b]
			for _, in := range pristine[b] {
				nb.Instrs = append(nb.Instrs, ir.CloneInstr(in, bmap))
			}
			if b.Alloc != nil {
				nb.Alloc = b.Alloc
			}
		}
		// Redirect the previous latch's back-edge into this copy's header.
		redirect(prevLatch, l.Header, bmap[l.Header])
		// This copy's latch currently targets the copy's header (bmap
		// remapped it); point it back at the original header — the next
		// iteration of this loop will redirect it again if more copies
		// follow.
		redirect(bmap[latch], bmap[l.Header], l.Header)
		prevLatch = bmap[latch]
	}
	f.Renumber()
	return nil
}

func redirect(b *ir.Block, from, to *ir.Block) {
	switch t := b.Terminator().(type) {
	case *ir.Br:
		if t.Then == from {
			t.Then = to
		}
		if t.Else == from {
			t.Else = to
		}
	case *ir.Jmp:
		if t.Target == from {
			t.Target = to
		}
	}
}
