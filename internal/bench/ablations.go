package bench

import (
	"context"
	"fmt"
	"io"
	"sort"

	"schematic/internal/baselines"
	schematic "schematic/internal/core"
	"schematic/internal/ir"
)

// Variant is a configuration variant of the SCHEMATIC pass used by the
// ablation study: the full pass, each design choice disabled in turn, and
// the §VII register-liveness extension.
type Variant struct {
	Label  string
	Adjust func(*schematic.Config)
}

// Name implements baselines.Technique.
func (v Variant) Name() string { return v.Label }

// SupportsVM implements baselines.Technique.
func (Variant) SupportsVM(*ir.Module, int) bool { return true }

// Apply implements baselines.Technique.
func (v Variant) Apply(m *ir.Module, p baselines.Params) error {
	conf := schematic.Config{
		Model:   p.Model,
		Budget:  p.Budget,
		VMSize:  p.VMSize,
		Profile: p.Profile,
	}
	if v.Adjust != nil {
		v.Adjust(&conf)
	}
	_, err := schematic.Apply(m, conf)
	return err
}

// Variants returns the ablation variants in presentation order.
func Variants() []Variant {
	return []Variant{
		{Label: "Schematic", Adjust: nil},
		{Label: "NoCondCk", Adjust: func(c *schematic.Config) {
			c.DisableCondCheckpoints = true
		}},
		{Label: "NoLiveness", Adjust: func(c *schematic.Config) {
			c.DisableLivenessRefinement = true
		}},
		{Label: "NoVM", Adjust: func(c *schematic.Config) {
			c.DisableVM = true
		}},
		{Label: "RefinedRegs", Adjust: func(c *schematic.Config) {
			c.RefineRegisterLiveness = true
		}},
	}
}

// Ablations runs every variant on every benchmark at one TBPF, indexed
// [bench][variant]. This is the design-choice study DESIGN.md calls out:
// each row quantifies what one mechanism of the paper contributes. Cells
// run on the harness worker pool.
func (h *Harness) Ablations(ctx context.Context, tbpf int64) (map[string]map[string]*TechRun, error) {
	bms, err := All()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, b := range bms {
		for _, v := range Variants() {
			cells = append(cells, Cell{Bench: b, Tech: v, TBPF: tbpf})
		}
	}
	results, err := h.RunGrid(ctx, "ablations", cells)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]*TechRun{}
	for _, b := range bms {
		out[b.Name] = map[string]*TechRun{}
	}
	for i, cell := range cells {
		out[cell.Bench.Name][cell.Tech.Name()] = results[i]
	}
	return out, nil
}

// RenderAblations prints the ablation study: per benchmark and variant,
// the total consumed energy normalized to the full pass, plus the number
// of checkpoint saves.
func RenderAblations(w io.Writer, abl map[string]map[string]*TechRun, tbpf int64) {
	fmt.Fprintf(w, "Ablation study — energy relative to full SCHEMATIC (TBPF=%d)\n", tbpf)
	vs := Variants()
	fmt.Fprintf(w, "%-14s", "bench")
	for _, v := range vs {
		fmt.Fprintf(w, "%14s", v.Label)
	}
	fmt.Fprintln(w)

	var names []string
	for n := range abl {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base := abl[n]["Schematic"]
		if base == nil || !base.Completed() {
			fmt.Fprintf(w, "%-14s  (baseline did not complete)\n", n)
			continue
		}
		fmt.Fprintf(w, "%-14s", n)
		for _, v := range vs {
			tr := abl[n][v.Label]
			if tr == nil || !tr.Completed() {
				fmt.Fprintf(w, "%14s", "✗")
				continue
			}
			rel := tr.Res.Energy.Total() / base.Res.Energy.Total()
			fmt.Fprintf(w, "  %5.2fx %5dsv", rel, tr.Res.Saves)
		}
		fmt.Fprintln(w)
	}
}
