package bench

import (
	"context"
	"strings"
	"testing"
)

// TestAblationVariants runs every ablation variant on two small benchmarks
// and checks the expected energy ordering: each disabled mechanism may only
// cost energy, and the register-liveness extension may only save it.
func TestAblationVariants(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 3
	for _, name := range []string{"randmath", "crc"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		runs := map[string]*TechRun{}
		for _, v := range Variants() {
			tr, err := h.Run(context.Background(), b, v, 10000)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, v.Label, err)
			}
			if !tr.Completed() {
				t.Fatalf("%s/%s did not complete: %+v", name, v.Label, tr.ApplyErr)
			}
			if !tr.Correct() {
				t.Fatalf("%s/%s produced wrong output", name, v.Label)
			}
			runs[v.Label] = tr
		}
		base := runs["Schematic"].Res.Energy.Total()
		if e := runs["NoVM"].Res.Energy.Total(); e < base-1e-6 {
			t.Errorf("%s: NoVM total %.1f < full %.1f", name, e, base)
		}
		if e := runs["NoLiveness"].Res.Energy.Total(); e < base-1e-6 {
			t.Errorf("%s: NoLiveness total %.1f < full %.1f", name, e, base)
		}
		if e := runs["RefinedRegs"].Res.Energy.Total(); e > base+1e-6 {
			t.Errorf("%s: RefinedRegs total %.1f > full %.1f", name, e, base)
		}
		// Disabling the conditional scheme forces a save on every back edge.
		if runs["NoCondCk"].Res.Saves < runs["Schematic"].Res.Saves {
			t.Errorf("%s: NoCondCk saves %d < full %d",
				name, runs["NoCondCk"].Res.Saves, runs["Schematic"].Res.Saves)
		}
	}
}

func TestRenderAblations(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 3
	b, err := ByName("randmath")
	if err != nil {
		t.Fatal(err)
	}
	abl := map[string]map[string]*TechRun{"randmath": {}}
	for _, v := range Variants() {
		tr, err := h.Run(context.Background(), b, v, 10000)
		if err != nil {
			t.Fatal(err)
		}
		abl["randmath"][v.Label] = tr
	}
	var sb strings.Builder
	RenderAblations(&sb, abl, 10000)
	out := sb.String()
	for _, want := range []string{"randmath", "NoCondCk", "NoLiveness", "RefinedRegs", "1.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered ablation table missing %q:\n%s", want, out)
		}
	}
}
