// Package bench bundles the benchmark suite of the evaluation (IV-A-d):
// MiniC ports of the eight MiBench2 programs the paper uses — aes,
// basicmath, bitcount, crc, dijkstra, fft, randmath, rc4 — with data
// footprints matched to the paper's Table I (dijkstra, fft and rc4 exceed
// the 2 KB SRAM of the MSP430FR5969; the others fit). The experiment
// harness that regenerates every table and figure lives in this package
// too.
package bench

import (
	"embed"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"schematic/internal/ir"
	"schematic/internal/minic"
)

//go:embed programs/*.mc
var programsFS embed.FS

// Benchmark is one program of the suite.
type Benchmark struct {
	Name   string
	Source string

	once sync.Once
	mod  *ir.Module
	err  error
}

// Module compiles the benchmark (cached). The returned module is shared:
// clone it before transforming.
func (b *Benchmark) Module() (*ir.Module, error) {
	b.once.Do(func() {
		b.mod, b.err = minic.Compile(b.Name, b.Source)
	})
	return b.mod, b.err
}

// Inputs produces the deterministic workload for the given seed: every
// input variable is filled from a seeded PRNG (the paper profiles with
// 1000 random inputs; experiments fix one seed for reproducibility).
func (b *Benchmark) Inputs(seed int64) (map[string][]int64, error) {
	m, err := b.Module()
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	inputs := map[string][]int64{}
	for _, v := range m.InputVars() {
		data := make([]int64, v.Elems)
		for i := range data {
			data[i] = int64(r.Intn(1 << 15))
		}
		inputs[v.Name] = data
	}
	return inputs, nil
}

// DataBytes returns the benchmark's data footprint.
func (b *Benchmark) DataBytes() (int, error) {
	m, err := b.Module()
	if err != nil {
		return 0, err
	}
	return ir.DataBytes(m), nil
}

var (
	loadOnce sync.Once
	all      []*Benchmark
	loadErr  error
)

// Order is the canonical benchmark order of the paper's tables.
var Order = []string{"aes", "basicmath", "bitcount", "crc", "dijkstra", "fft", "randmath", "rc4"}

// All returns the suite in the paper's table order.
func All() ([]*Benchmark, error) {
	loadOnce.Do(func() {
		entries, err := programsFS.ReadDir("programs")
		if err != nil {
			loadErr = err
			return
		}
		byName := map[string]*Benchmark{}
		for _, e := range entries {
			name := strings.TrimSuffix(e.Name(), ".mc")
			src, err := programsFS.ReadFile("programs/" + e.Name())
			if err != nil {
				loadErr = err
				return
			}
			byName[name] = &Benchmark{Name: name, Source: string(src)}
		}
		for _, name := range Order {
			bm, ok := byName[name]
			if !ok {
				loadErr = fmt.Errorf("bench: missing embedded program %q", name)
				return
			}
			all = append(all, bm)
			delete(byName, name)
		}
		// Any extra programs are appended alphabetically.
		var extra []string
		for name := range byName {
			extra = append(extra, name)
		}
		sort.Strings(extra)
		for _, name := range extra {
			all = append(all, byName[name])
		}
	})
	return all, loadErr
}

// ByName returns one benchmark.
func ByName(name string) (*Benchmark, error) {
	bms, err := All()
	if err != nil {
		return nil, err
	}
	for _, b := range bms {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}
