package bench

import (
	"context"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
)

func TestSuiteLoads(t *testing.T) {
	bms, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(bms) != len(Order)+2 { // the paper's eight plus the sha/stringsearch extras
		t.Fatalf("suite = %d benchmarks, want %d", len(bms), len(Order)+2)
	}
	for i, name := range Order {
		if bms[i].Name != name {
			t.Errorf("suite[%d] = %s, want %s", i, bms[i].Name, name)
		}
	}
}

func TestFootprintsMatchTable1(t *testing.T) {
	// The paper's Table I: dijkstra (≈30 KB), fft (≈16.7 KB) and rc4
	// (≈6.5 KB) exceed the MSP430FR5969's 2 KB SRAM; the rest fit.
	const svm = 2048
	over := map[string]bool{"dijkstra": true, "fft": true, "rc4": true, "stringsearch": true}
	bms, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bms {
		n, err := b.DataBytes()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if over[b.Name] && n <= svm {
			t.Errorf("%s: footprint %d B should exceed %d B", b.Name, n, svm)
		}
		if !over[b.Name] && n > svm {
			t.Errorf("%s: footprint %d B should fit in %d B", b.Name, n, svm)
		}
		// Everything must fit in the 64 KB FRAM.
		if n > 64*1024 {
			t.Errorf("%s: footprint %d B exceeds the 64 KB NVM", b.Name, n)
		}
	}
}

func TestAllBenchmarksRunContinuously(t *testing.T) {
	bms, err := All()
	if err != nil {
		t.Fatal(err)
	}
	model := energy.MSP430FR5969()
	for _, b := range bms {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m, err := b.Module()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			inputs, err := b.Inputs(1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Verdict != emulator.Completed {
				t.Fatalf("verdict = %v", res.Verdict)
			}
			if len(res.Output) == 0 {
				t.Errorf("no output")
			}
			t.Logf("%s: %d cycles, %.1f µJ, output %v",
				b.Name, res.Cycles, res.Energy.Total()/1000, res.Output)
		})
	}
}

func TestInputsDeterministic(t *testing.T) {
	b, err := ByName("crc")
	if err != nil {
		t.Fatal(err)
	}
	in1, _ := b.Inputs(42)
	in2, _ := b.Inputs(42)
	in3, _ := b.Inputs(43)
	if len(in1["msg"]) != 256 {
		t.Fatalf("msg len = %d", len(in1["msg"]))
	}
	same, diff := true, false
	for i := range in1["msg"] {
		if in1["msg"][i] != in2["msg"][i] {
			same = false
		}
		if in1["msg"][i] != in3["msg"][i] {
			diff = true
		}
	}
	if !same || !diff {
		t.Errorf("seeding broken: same=%v diff=%v", same, diff)
	}
}

// The extras are benchmarks the paper's infrastructure could not run
// (stringsearch) or did not include (sha); they must also complete under
// SCHEMATIC on the standard platform.
func TestExtraBenchmarks(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 3
	for _, name := range []string{"sha", "stringsearch"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatalf("%s missing from the suite: %v", name, err)
		}
		tr, err := h.Run(context.Background(), b, Schematic{}, 10_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tr.Completed() || !tr.Correct() {
			status := "incomplete"
			if tr.ApplyErr != nil {
				status = tr.ApplyErr.Error()
			} else if tr.Res != nil {
				status = tr.Res.Verdict.String()
			}
			t.Errorf("%s under SCHEMATIC: %s", name, status)
		}
	}
	// In the paper's table order the extras come after the original eight.
	bms, _ := All()
	if len(bms) != len(Order)+2 {
		t.Errorf("suite = %d entries, want %d + 2 extras", len(bms), len(Order))
	}
}

// The sha benchmark's core rounds must compute real SHA-1: cross-check the
// internal state against crypto/sha1 on the same 512-byte message (our
// port hashes raw blocks without padding, so compare via Sum on exactly
// 8 full blocks using the same defined initial state — i.e., recompute the
// expected compression manually with the stdlib on a padded-equal basis is
// not possible; instead verify against an independent Go reimplementation
// of the compression function).
func TestShaMatchesReferenceCompression(t *testing.T) {
	b, err := ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.Module()
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]int64, 512)
	for i := range msg {
		msg[i] = int64((i*31 + 7) % 256)
	}
	res, err := emulator.Run(m, emulator.Config{
		Model:  energy.MSP430FR5969(),
		Inputs: map[string][]int64{"msg": msg},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Independent Go implementation of the SHA-1 compression rounds.
	h := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	rotl := func(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }
	for blk := 0; blk < 8; blk++ {
		var w [80]uint32
		for i := 0; i < 16; i++ {
			o := blk*64 + i*4
			w[i] = uint32(msg[o])<<24 | uint32(msg[o+1])<<16 | uint32(msg[o+2])<<8 | uint32(msg[o+3])
		}
		for i := 16; i < 80; i++ {
			w[i] = rotl(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
		}
		a, bb, c, d, e := h[0], h[1], h[2], h[3], h[4]
		for i := 0; i < 80; i++ {
			var f, k uint32
			switch {
			case i < 20:
				f, k = bb&c|^bb&d, 0x5A827999
			case i < 40:
				f, k = bb^c^d, 0x6ED9EBA1
			case i < 60:
				f, k = bb&c|bb&d|c&d, 0x8F1BBCDC
			default:
				f, k = bb^c^d, 0xCA62C1D6
			}
			tmp := rotl(a, 5) + f + e + k + w[i]
			e, d, c, bb, a = d, c, rotl(bb, 30), a, tmp
		}
		h[0] += a
		h[1] += bb
		h[2] += c
		h[3] += d
		h[4] += e
	}
	want := []int64{int64(h[0] & 0xFFFF), int64(h[1] & 0xFFFF), int64(h[2] & 0xFFFF),
		int64(h[3] & 0xFFFF), int64(h[4] & 0xFFFF)}
	if len(res.Output) != 5 {
		t.Fatalf("output = %v", res.Output)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("sha state %d = %d, want %d (full out %v)", i, res.Output[i], want[i], res.Output)
		}
	}
}
