package bench

import (
	"context"
	"testing"
)

// TestCacheCapEviction bounds the harness caches to one entry and checks
// LRU eviction is observable through the CacheStats eviction counters —
// the property a long-lived daemon relies on to stay bounded.
func TestCacheCapEviction(t *testing.T) {
	ctx := context.Background()
	h := NewHarness()
	h.ProfileRuns = 2
	h.CacheCap = 1

	b1, err := ByName("randmath")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ByName("crc")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := h.Profile(ctx, b1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Profile(ctx, b1); err != nil {
		t.Fatal(err)
	}
	cs := h.CacheStats()
	if cs.ProfileHits != 1 || cs.ProfileMisses != 1 || cs.ProfileEvictions != 0 {
		t.Fatalf("warm cache within cap: %+v", cs)
	}

	// A second benchmark overflows the one-entry cache and evicts b1.
	if _, err := h.Profile(ctx, b2); err != nil {
		t.Fatal(err)
	}
	cs = h.CacheStats()
	if cs.ProfileEvictions != 1 {
		t.Fatalf("expected 1 profile eviction, got %+v", cs)
	}

	// b1 was evicted: asking again is a miss (recomputed), evicting b2.
	if _, err := h.Profile(ctx, b1); err != nil {
		t.Fatal(err)
	}
	cs = h.CacheStats()
	if cs.ProfileMisses != 3 || cs.ProfileEvictions != 2 {
		t.Fatalf("expected re-miss after eviction, got %+v", cs)
	}
	if got := cs.Evictions(); got != 2 {
		t.Fatalf("Evictions(): got %d, want 2", got)
	}

	// The reference caches are bounded the same way.
	if _, err := h.ReferenceAllVM(ctx, b1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReferenceAllVM(ctx, b2); err != nil {
		t.Fatal(err)
	}
	cs = h.CacheStats()
	if cs.RefEvictions != 1 {
		t.Fatalf("expected 1 reference eviction, got %+v", cs)
	}
}

// TestCacheCapZeroUnbounded: the CLI default (CacheCap 0) never evicts.
func TestCacheCapZeroUnbounded(t *testing.T) {
	ctx := context.Background()
	h := NewHarness()
	h.ProfileRuns = 2
	for _, name := range []string{"randmath", "crc"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Profile(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	if cs := h.CacheStats(); cs.Evictions() != 0 {
		t.Fatalf("unbounded cache evicted: %+v", cs)
	}
}
