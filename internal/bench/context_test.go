package bench

import (
	"context"
	"errors"
	"testing"
	"time"

	"schematic/internal/emulator"
)

// TestRunGridCancellation: a cancelled context makes a grid run return
// promptly with ctx.Err() instead of running every cell to completion.
func TestRunGridCancellation(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	h.Jobs = 2

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the grid even starts

	start := time.Now()
	_, err := h.RunGrid(ctx, "cancelled", cheapGrid(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunGrid: got %v, want context.Canceled", err)
	}
	// A full cheapGrid run takes seconds; a cancelled one must not.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancelled RunGrid took %v, want prompt return", el)
	}
	cs := h.CacheStats()
	if cs.ProfileMisses != 0 {
		t.Fatalf("cancelled RunGrid still profiled: %+v", cs)
	}
}

// TestRunGridCancelMidFlight cancels while the grid is running and
// requires ctx.Err() back, with at most the in-flight cells finishing.
func TestRunGridCancelMidFlight(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	h.Jobs = 1

	ctx, cancel := context.WithCancel(context.Background())
	// Cancel synchronously from the first cell's observer hook: the hook
	// fires before that cell's emulate phase, so the cancellation is
	// already visible at the next phase-boundary check and the rest of
	// the grid stays undispatched. (An asynchronous cancel races the
	// remaining cells — the emulator is fast enough to finish a cheap
	// grid before a goroutine gets scheduled.)
	var once bool
	h.CellObserver = func(bench, technique string, tbpf int64) emulator.Observer {
		if !once {
			once = true
			cancel()
		}
		return nil
	}

	_, err := h.RunGrid(ctx, "mid-cancel", cheapGrid(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: got %v, want context.Canceled", err)
	}
}

// TestProfileRespectsContext: a done context is rejected before the
// profile computation is admitted.
func TestProfileRespectsContext(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	b, err := ByName("randmath")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Profile(ctx, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("Profile with done ctx: got %v, want context.Canceled", err)
	}
	if _, err := h.ReferenceAllVM(ctx, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReferenceAllVM with done ctx: got %v, want context.Canceled", err)
	}
	if cs := h.CacheStats(); cs.ProfileMisses+cs.RefMisses != 0 {
		t.Fatalf("done ctx still touched the caches: %+v", cs)
	}
}
