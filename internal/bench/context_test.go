package bench

import (
	"context"
	"errors"
	"testing"
	"time"

	"schematic/internal/emulator"
)

// TestRunGridCancellation: a cancelled context makes a grid run return
// promptly with ctx.Err() instead of running every cell to completion.
func TestRunGridCancellation(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	h.Jobs = 2

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the grid even starts

	start := time.Now()
	_, err := h.RunGrid(ctx, "cancelled", cheapGrid(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunGrid: got %v, want context.Canceled", err)
	}
	// A full cheapGrid run takes seconds; a cancelled one must not.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancelled RunGrid took %v, want prompt return", el)
	}
	cs := h.CacheStats()
	if cs.ProfileMisses != 0 {
		t.Fatalf("cancelled RunGrid still profiled: %+v", cs)
	}
}

// TestRunGridCancelMidFlight cancels while the grid is running and
// requires ctx.Err() back, with at most the in-flight cells finishing.
func TestRunGridCancelMidFlight(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	h.Jobs = 1

	ctx, cancel := context.WithCancel(context.Background())
	// Cancel as soon as the first cell completes: the observer hook fires
	// per cell, so cancelling here leaves most of the grid undispatched.
	done := make(chan struct{})
	var once bool
	h.CellObserver = func(bench, technique string, tbpf int64) emulator.Observer {
		if !once {
			once = true
			close(done)
		}
		return nil
	}
	go func() {
		<-done
		cancel()
	}()

	_, err := h.RunGrid(ctx, "mid-cancel", cheapGrid(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: got %v, want context.Canceled", err)
	}
}

// TestProfileRespectsContext: a done context is rejected before the
// profile computation is admitted.
func TestProfileRespectsContext(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	b, err := ByName("randmath")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Profile(ctx, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("Profile with done ctx: got %v, want context.Canceled", err)
	}
	if _, err := h.ReferenceAllVM(ctx, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReferenceAllVM with done ctx: got %v, want context.Canceled", err)
	}
	if cs := h.CacheStats(); cs.ProfileMisses+cs.RefMisses != 0 {
		t.Fatalf("done ctx still touched the caches: %+v", cs)
	}
}
