package bench

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"schematic/internal/baselines"
	"schematic/internal/emulator"
	"schematic/internal/fuzzgen"
	"schematic/internal/harvest"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// The dispatch-equivalence suite: the compiled engine must produce a
// Result bit-identical to the interpreted engine — same verdict, same
// output, same step/cycle/failure counters, and the same energy ledger
// down to the last float bit — across every benchmark, technique, and
// power schedule shape. Any divergence means the compiled fast path
// changed observable semantics, which is never acceptable.

// equivSchedule configures one power-schedule shape onto a base config.
// The closure constructs any PowerSchedule fresh on every call:
// schedules are stateful, so engines must never share an instance.
type equivSchedule struct {
	name  string
	apply func(cfg *emulator.Config)
}

func equivSchedules() []equivSchedule {
	return []equivSchedule{
		{"continuous", func(cfg *emulator.Config) {
			cfg.Intermittent = false
			cfg.EB = 0
		}},
		{"exhaustion", func(cfg *emulator.Config) {}},
		{"periodic", func(cfg *emulator.Config) {
			cfg.FailEveryCycles = 40_000
		}},
		{"trace-torn-save", func(cfg *emulator.Config) {
			cfg.Schedule = emulator.Schedules(emulator.Exhaustion(), emulator.TraceSchedule(
				emulator.FailPoint{Kind: emulator.PointMidSave, N: 2},
				emulator.FailPoint{Kind: emulator.PointStep, N: 50_000},
			))
		}},
		// Harvested-capacitor schedules (internal/harvest): stateful
		// physics whose Fail decisions integrate the waveform over every
		// probe. Their presence must force the compiled engine off the
		// batched fast path and stay bit-identical to the interpreter.
		{"harvest-solar", func(cfg *emulator.Config) {
			cfg.Schedule = harvest.Capacitor{
				Env: harvest.Solar{Seed: 7, Period: 300_000}, Capacity: cfg.EB,
			}.Schedule()
		}},
		{"harvest-rf-undersized", func(cfg *emulator.Config) {
			// An undersized capacitor with a partial restart level
			// exercises the off-period recharge paths too.
			cfg.Schedule = harvest.Capacitor{
				Env: harvest.RF{Seed: 3}, Capacity: cfg.EB * 0.9, Restart: 0.8,
			}.Schedule()
		}},
		{"harvest-duty-composed", func(cfg *emulator.Config) {
			cfg.Schedule = emulator.Schedules(
				harvest.Capacitor{Env: harvest.Duty{}, Capacity: cfg.EB}.Schedule(),
				emulator.TraceSchedule(emulator.FailPoint{Kind: emulator.PointStep, N: 20_000}),
			)
		}},
	}
}

// runEngines executes the module under both engines with identically
// shaped configs and fails the test on any Result difference. base must
// not carry a Schedule; sc installs one per engine run.
func runEngines(t *testing.T, label string, m *ir.Module, base emulator.Config, sc equivSchedule) {
	t.Helper()
	compiled, interpreted := base, base
	sc.apply(&compiled)
	sc.apply(&interpreted)
	interpreted.Interpret = true

	resC, errC := emulator.Run(m, compiled)
	resI, errI := emulator.Run(m, interpreted)
	if (errC == nil) != (errI == nil) {
		t.Fatalf("%s: engine error mismatch: compiled %v, interpreted %v", label, errC, errI)
	}
	if errC != nil {
		if errC.Error() != errI.Error() {
			t.Fatalf("%s: error text mismatch:\ncompiled:    %v\ninterpreted: %v", label, errC, errI)
		}
		return
	}
	if !reflect.DeepEqual(resC, resI) {
		t.Fatalf("%s: results diverge:\ncompiled:    %+v\ninterpreted: %+v", label, resC, resI)
	}
}

// TestDispatchEquivalenceGrid covers the full evaluation surface: every
// benchmark x technique cell under all four schedule shapes. Short mode
// keeps two benchmarks so the suite still exercises every technique and
// schedule on each run.
func TestDispatchEquivalenceGrid(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 3
	bms, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		short := bms[:0]
		for _, bm := range bms {
			if bm.Name == "crc" || bm.Name == "randmath" {
				short = append(short, bm)
			}
		}
		bms = short
	}
	scheds := equivSchedules()
	for _, bm := range bms {
		m, err := bm.Module()
		if err != nil {
			t.Fatal(err)
		}
		prof, err := h.Profile(context.Background(), bm)
		if err != nil {
			t.Fatal(err)
		}
		eb := prof.EBForTBPF(10_000)
		inputs, err := bm.Inputs(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range Techniques() {
			if !tech.SupportsVM(m, h.VMSize) {
				continue
			}
			clone := ir.Clone(m)
			if err := tech.Apply(clone, baselines.Params{
				Model: h.Model, Budget: eb, VMSize: h.VMSize, Profile: prof,
			}); err != nil {
				continue
			}
			for _, sc := range scheds {
				label := fmt.Sprintf("%s/%s/%s", bm.Name, tech.Name(), sc.name)
				base := emulator.Config{
					Model: h.Model, VMSize: h.VMSize,
					Intermittent: true, EB: eb, Inputs: inputs,
				}
				runEngines(t, label, clone, base, sc)
			}
		}
	}
}

// TestDispatchEquivalenceFuzz runs generated programs through both
// engines. The corpus has no checkpoints, so intermittent runs restart
// from boot on every failure and typically end Stuck — which is exactly
// the point: the engines must agree on abnormal verdicts and their
// ledgers too, not just on completions.
func TestDispatchEquivalenceFuzz(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 6
	}
	scheds := equivSchedules()[:2] // continuous, exhaustion
	for i, prog := range fuzzgen.Corpus(42, n, fuzzgen.DefaultOptions()) {
		m, err := minic.Compile(fmt.Sprintf("fuzz%03d", i), prog.Source)
		if err != nil {
			continue // generator occasionally emits programs the frontend rejects
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(int64(i))))
		for _, sc := range scheds {
			base := emulator.Config{
				Model: NewHarness().Model, VMSize: 2048,
				Intermittent: true, EB: 2_000, Inputs: inputs,
				MaxSteps: 2_000_000, MaxFailures: 50,
			}
			runEngines(t, fmt.Sprintf("fuzz%03d/%s", i, sc.name), m, base, sc)
		}
	}
}
