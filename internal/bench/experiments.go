package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
)

// Fig6TBPF is the TBPF the paper uses for the energy-breakdown figures
// ("a good trade-off between extreme-intermittency and no-intermittency",
// IV-C).
const Fig6TBPF = 10_000

// Table1 computes the "ability to support limited VM space" matrix: for
// each technique, whether each benchmark can execute with the platform's
// VM size at all.
func (h *Harness) Table1(ctx context.Context) (map[string]map[string]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bms, err := All()
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]bool{}
	for _, tech := range Techniques() {
		row := map[string]bool{}
		for _, b := range bms {
			m, err := b.Module()
			if err != nil {
				return nil, err
			}
			row[b.Name] = tech.SupportsVM(m, h.VMSize)
		}
		out[tech.Name()] = row
	}
	return out, nil
}

// Table2Row is one benchmark's execution-time row of Table II.
type Table2Row struct {
	Bench  string
	Cycles int64
	// MinFailures[tbpf] is the unavoidable number of power failures for a
	// run of that length: ⌊cycles / TBPF⌋.
	MinFailures map[int64]int64
}

// Table2 measures each benchmark's execution time (continuous power, all
// data in VM) and the minimal number of power failures per TBPF. The
// per-benchmark reference runs are independent, so they fan out across
// the harness worker pool; rows come back in benchmark order regardless.
func (h *Harness) Table2(ctx context.Context) ([]Table2Row, error) {
	bms, err := All()
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(bms))
	err = h.parallelFor(ctx, len(bms), func(i int) error {
		ref, err := h.ReferenceAllVM(ctx, bms[i])
		if err != nil {
			return err
		}
		row := Table2Row{Bench: bms[i].Name, Cycles: ref.Cycles, MinFailures: map[int64]int64{}}
		for _, tbpf := range TBPFs {
			row.MinFailures[tbpf] = ref.Cycles / tbpf
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table3 runs every technique on every benchmark for every TBPF and
// reports which combinations terminate (forward progress, Table III).
// The result is indexed [technique][tbpf][bench]. Cells are independent
// (each transforms its own clone), so they fan out across the harness
// worker pool; the shared profiles and references are single-flight
// cached, so each is computed exactly once.
func (h *Harness) Table3(ctx context.Context) (map[string]map[int64]map[string]*TechRun, error) {
	bms, err := All()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, tech := range Techniques() {
		for _, tbpf := range TBPFs {
			for _, b := range bms {
				cells = append(cells, Cell{Bench: b, Tech: tech, TBPF: tbpf})
			}
		}
	}
	results, err := h.RunGrid(ctx, "table3", cells)
	if err != nil {
		return nil, err
	}
	out := map[string]map[int64]map[string]*TechRun{}
	for _, tech := range Techniques() {
		out[tech.Name()] = map[int64]map[string]*TechRun{}
		for _, tbpf := range TBPFs {
			out[tech.Name()][tbpf] = map[string]*TechRun{}
		}
	}
	for i, cell := range cells {
		out[cell.Tech.Name()][cell.TBPF][cell.Bench.Name] = results[i]
	}
	return out, nil
}

// Figure6 returns the energy breakdown of every benchmark × technique at
// the given TBPF, indexed [bench][technique]. Cells run on the harness
// worker pool.
func (h *Harness) Figure6(ctx context.Context, tbpf int64) (map[string]map[string]*TechRun, error) {
	bms, err := All()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, b := range bms {
		for _, tech := range Techniques() {
			cells = append(cells, Cell{Bench: b, Tech: tech, TBPF: tbpf})
		}
	}
	results, err := h.RunGrid(ctx, "figure6", cells)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]*TechRun{}
	for _, b := range bms {
		out[b.Name] = map[string]*TechRun{}
	}
	for i, cell := range cells {
		out[cell.Bench.Name][cell.Tech.Name()] = results[i]
	}
	return out, nil
}

// Figure7 compares SCHEMATIC against the All-NVM ablation, indexed
// [bench][variant] with variants "Schematic" and "All-NVM". Cells run on
// the harness worker pool.
func (h *Harness) Figure7(ctx context.Context, tbpf int64) (map[string]map[string]*TechRun, error) {
	bms, err := All()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, b := range bms {
		cells = append(cells,
			Cell{Bench: b, Tech: Schematic{}, TBPF: tbpf},
			Cell{Bench: b, Tech: AllNVMTechnique(), TBPF: tbpf})
	}
	results, err := h.RunGrid(ctx, "figure7", cells)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]*TechRun{}
	for i, b := range bms {
		out[b.Name] = map[string]*TechRun{
			"Schematic": results[2*i],
			"All-NVM":   results[2*i+1],
		}
	}
	return out, nil
}

// Figure8 sweeps the capacitor size (via TBPF, as the paper does for
// implementation simplicity on the emulator) for one benchmark, indexed
// [technique][tbpf]. Cells run on the harness worker pool.
func (h *Harness) Figure8(ctx context.Context, benchName string) (map[string]map[int64]*TechRun, error) {
	b, err := ByName(benchName)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, tech := range Techniques() {
		for _, tbpf := range TBPFs {
			cells = append(cells, Cell{Bench: b, Tech: tech, TBPF: tbpf})
		}
	}
	results, err := h.RunGrid(ctx, "figure8", cells)
	if err != nil {
		return nil, err
	}
	out := map[string]map[int64]*TechRun{}
	for _, tech := range Techniques() {
		out[tech.Name()] = map[int64]*TechRun{}
	}
	for i, cell := range cells {
		out[cell.Tech.Name()][cell.TBPF] = results[i]
	}
	return out, nil
}

// Headline aggregates the §IV-D headline numbers from Figure 6 data: the
// average energy and execution-time reduction of SCHEMATIC versus each
// baseline, over the benchmarks both completed (the paper compares "on
// the benchmarks that completed only").
type Headline struct {
	// EnergyReduction[baseline] = mean of (1 − E_schematic/E_baseline).
	EnergyReduction map[string]float64
	// TimeReduction is the analogous cycle-count reduction.
	TimeReduction map[string]float64
	// OverallEnergy / OverallTime average across all baselines.
	OverallEnergy float64
	OverallTime   float64
}

// ComputeHeadline derives the headline aggregate from Figure6 results.
func ComputeHeadline(fig6 map[string]map[string]*TechRun) *Headline {
	hd := &Headline{
		EnergyReduction: map[string]float64{},
		TimeReduction:   map[string]float64{},
	}
	var allE, allT []float64
	for _, tech := range Techniques() {
		name := tech.Name()
		if name == "Schematic" {
			continue
		}
		var es, ts []float64
		for bench, cells := range fig6 {
			s := cells["Schematic"]
			o := cells[name]
			if s == nil || o == nil || !s.Completed() || !o.Completed() {
				continue
			}
			_ = bench
			es = append(es, 1-s.Res.Energy.Total()/o.Res.Energy.Total())
			ts = append(ts, 1-float64(s.Res.TotalCycles)/float64(o.Res.TotalCycles))
		}
		hd.EnergyReduction[name] = mean(es)
		hd.TimeReduction[name] = mean(ts)
		allE = append(allE, es...)
		allT = append(allT, ts...)
	}
	hd.OverallEnergy = mean(allE)
	hd.OverallTime = mean(allT)
	return hd
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ---- text rendering ----

func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

// RenderTable1 prints the Table I matrix.
func RenderTable1(w io.Writer, t1 map[string]map[string]bool) {
	fmt.Fprintf(w, "Table I — ability to support limited VM space (SVM = 2 KB)\n")
	fmt.Fprintf(w, "%-12s", "technique")
	for _, b := range Order {
		fmt.Fprintf(w, " %-9s", b)
	}
	fmt.Fprintln(w)
	for _, tech := range Techniques() {
		fmt.Fprintf(w, "%-12s", tech.Name())
		for _, b := range Order {
			fmt.Fprintf(w, " %-9s", mark(t1[tech.Name()][b]))
		}
		fmt.Fprintln(w)
	}
}

// RenderTable2 prints the Table II rows.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table II — execution time and minimal number of power failures\n")
	fmt.Fprintf(w, "%-12s %12s", "benchmark", "cycles")
	for _, tbpf := range TBPFs {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("TBPF=%dk", tbpf/1000))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12d", r.Bench, r.Cycles)
		for _, tbpf := range TBPFs {
			fmt.Fprintf(w, " %10d", r.MinFailures[tbpf])
		}
		fmt.Fprintln(w)
	}
}

// RenderTable3 prints the Table III forward-progress matrix.
func RenderTable3(w io.Writer, t3 map[string]map[int64]map[string]*TechRun) {
	fmt.Fprintf(w, "Table III — ability to enforce forward progress\n")
	fmt.Fprintf(w, "(per cell: %s in benchmark order)\n", strings.Join(Order, ", "))
	fmt.Fprintf(w, "%-12s", "technique")
	for _, tbpf := range TBPFs {
		fmt.Fprintf(w, " %-10s", fmt.Sprintf("TBPF=%dk", tbpf/1000))
	}
	fmt.Fprintln(w)
	for _, tech := range Techniques() {
		fmt.Fprintf(w, "%-12s", tech.Name())
		for _, tbpf := range TBPFs {
			var cell strings.Builder
			for _, b := range Order {
				cell.WriteString(mark(t3[tech.Name()][tbpf][b].Completed()))
			}
			fmt.Fprintf(w, " %-10s", cell.String())
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure6 prints the energy breakdown bars as a table (µJ).
func RenderFigure6(w io.Writer, fig map[string]map[string]*TechRun, tbpf int64) {
	fmt.Fprintf(w, "Figure 6 — energy consumption breakdown (TBPF = %d cycles), µJ\n", tbpf)
	fmt.Fprintf(w, "%-12s %-12s %10s %10s %10s %10s %10s\n",
		"benchmark", "technique", "compute", "save", "restore", "re-exec", "total")
	for _, b := range Order {
		for _, tech := range Techniques() {
			tr := fig[b][tech.Name()]
			if !tr.Completed() {
				fmt.Fprintf(w, "%-12s %-12s %10s\n", b, tech.Name(), "✗")
				continue
			}
			l := tr.Res.Energy
			fmt.Fprintf(w, "%-12s %-12s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
				b, tech.Name(),
				l.Computation/1000, l.Save/1000, l.Restore/1000, l.Reexecution/1000,
				l.Total()/1000)
		}
	}
}

// RenderFigure7 prints the SCHEMATIC vs All-NVM computation-energy split.
func RenderFigure7(w io.Writer, fig map[string]map[string]*TechRun, tbpf int64) {
	fmt.Fprintf(w, "Figure 7 — SCHEMATIC vs All-NVM (TBPF = %d cycles), µJ\n", tbpf)
	fmt.Fprintf(w, "%-12s %-10s %10s %10s %10s %10s %10s %11s\n",
		"benchmark", "variant", "no-mem", "vm-acc", "nvm-acc", "save", "restore", "vm-share")
	for _, b := range Order {
		for _, variant := range []string{"All-NVM", "Schematic"} {
			tr := fig[b][variant]
			if !tr.Completed() {
				fmt.Fprintf(w, "%-12s %-10s %10s\n", b, variant, "✗")
				continue
			}
			l := tr.Res.Energy
			share := 0.0
			if n := l.VMAccesses + l.NVMAccesses; n > 0 {
				share = float64(l.VMAccesses) / float64(n)
			}
			fmt.Fprintf(w, "%-12s %-10s %10.1f %10.1f %10.1f %10.1f %10.1f %10.0f%%\n",
				b, variant,
				l.NoMemEnergy/1000, l.VMAccessEnergy/1000, l.NVMAccessEnergy/1000,
				l.Save/1000, l.Restore/1000, share*100)
		}
	}
}

// RenderFigure8 prints the capacitor-size sweep for one benchmark.
func RenderFigure8(w io.Writer, fig map[string]map[int64]*TechRun, benchName string) {
	fmt.Fprintf(w, "Figure 8 — impact of capacitor size, benchmark %s, µJ\n", benchName)
	fmt.Fprintf(w, "%-12s %-8s %10s %10s %10s %10s %10s\n",
		"technique", "TBPF", "compute", "save", "restore", "re-exec", "total")
	for _, tech := range Techniques() {
		for _, tbpf := range TBPFs {
			tr := fig[tech.Name()][tbpf]
			if !tr.Completed() {
				fmt.Fprintf(w, "%-12s %-8s %10s\n", tech.Name(), fmt.Sprintf("%dk", tbpf/1000), "✗")
				continue
			}
			l := tr.Res.Energy
			fmt.Fprintf(w, "%-12s %-8s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
				tech.Name(), fmt.Sprintf("%dk", tbpf/1000),
				l.Computation/1000, l.Save/1000, l.Restore/1000, l.Reexecution/1000,
				l.Total()/1000)
		}
	}
}

// RenderHeadline prints the §IV-D aggregates.
func RenderHeadline(w io.Writer, hd *Headline) {
	fmt.Fprintf(w, "Headline (§IV-D) — SCHEMATIC vs baselines, completed benchmarks only\n")
	for _, tech := range Techniques() {
		name := tech.Name()
		if name == "Schematic" {
			continue
		}
		fmt.Fprintf(w, "  vs %-10s energy −%4.1f%%   time −%4.1f%%\n",
			name, hd.EnergyReduction[name]*100, hd.TimeReduction[name]*100)
	}
	fmt.Fprintf(w, "  average       energy −%4.1f%%   time −%4.1f%%  (paper: 51%% / 54%%)\n",
		hd.OverallEnergy*100, hd.OverallTime*100)
}
