package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestExperimentsEndToEnd drives the table/figure generators the way
// cmd/paper does and checks the paper-shape invariants on the results.
func TestExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	h := NewHarness()
	h.ProfileRuns = 3

	// Table I must reproduce the paper's matrix exactly.
	t1, err := h.Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantUnsupported := map[string][]string{
		"Mementos": {"dijkstra", "fft", "rc4"},
		"Alfred":   {"dijkstra", "fft", "rc4"},
	}
	for _, tech := range Techniques() {
		for _, b := range Order {
			want := true
			for _, u := range wantUnsupported[tech.Name()] {
				if u == b {
					want = false
				}
			}
			if t1[tech.Name()][b] != want {
				t.Errorf("Table I %s/%s = %v, want %v", tech.Name(), b, t1[tech.Name()][b], want)
			}
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, t1)
	if !strings.Contains(buf.String(), "Schematic") {
		t.Errorf("Table I render incomplete")
	}

	// Table II: cycle counts positive and ordered plausibly; minimal
	// failures consistent with ⌊cycles/TBPF⌋.
	rows, err := h.Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Bench] = r
		if r.Cycles <= 0 {
			t.Errorf("Table II %s: cycles = %d", r.Bench, r.Cycles)
		}
		for _, tbpf := range TBPFs {
			if r.MinFailures[tbpf] != r.Cycles/tbpf {
				t.Errorf("Table II %s: failures mismatch", r.Bench)
			}
		}
	}
	if byName["randmath"].Cycles >= byName["aes"].Cycles {
		t.Errorf("randmath should be far cheaper than aes")
	}
	buf.Reset()
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "randmath") {
		t.Errorf("Table II render incomplete")
	}

	// Figure 8 on the cheapest benchmark: SCHEMATIC's intermittency
	// overhead must shrink with the budget and stay below RATCHET's.
	fig8, err := h.Figure8(context.Background(), "randmath")
	if err != nil {
		t.Fatal(err)
	}
	s1k := fig8["Schematic"][1_000]
	s100k := fig8["Schematic"][100_000]
	r100k := fig8["Ratchet"][100_000]
	if !s1k.Completed() || !s100k.Completed() || !r100k.Completed() {
		t.Fatalf("figure 8 cells incomplete")
	}
	if s100k.Res.Energy.Intermittency() > s1k.Res.Energy.Intermittency()+1e-9 {
		t.Errorf("SCHEMATIC overhead should not grow with the budget: %v -> %v",
			s1k.Res.Energy.Intermittency(), s100k.Res.Energy.Intermittency())
	}
	if s100k.Res.Energy.Total() >= r100k.Res.Energy.Total() {
		t.Errorf("SCHEMATIC total %v should beat RATCHET %v",
			s100k.Res.Energy.Total(), r100k.Res.Energy.Total())
	}
	buf.Reset()
	RenderFigure8(&buf, fig8, "randmath")
	if !strings.Contains(buf.String(), "Schematic") {
		t.Errorf("Figure 8 render incomplete")
	}

	// Figure 7 on one benchmark pair: the ablation shows VM value.
	fig7, err := h.Figure7(context.Background(), Fig6TBPF)
	if err != nil {
		t.Fatal(err)
	}
	crc := fig7["crc"]
	if !crc["Schematic"].Completed() || !crc["All-NVM"].Completed() {
		t.Fatalf("figure 7 crc cells incomplete")
	}
	if crc["Schematic"].Res.Energy.Computation >= crc["All-NVM"].Res.Energy.Computation {
		t.Errorf("VM allocation should cut crc computation energy")
	}
	if crc["All-NVM"].Res.Energy.VMAccesses != 0 {
		t.Errorf("All-NVM ablation used VM")
	}
	buf.Reset()
	RenderFigure7(&buf, fig7, Fig6TBPF)
	if !strings.Contains(buf.String(), "All-NVM") {
		t.Errorf("Figure 7 render incomplete")
	}

	// Figure 6 + headline: SCHEMATIC wins on average.
	fig6, err := h.Figure6(context.Background(), Fig6TBPF)
	if err != nil {
		t.Fatal(err)
	}
	hd := ComputeHeadline(fig6)
	if hd.OverallEnergy <= 0.2 {
		t.Errorf("headline energy reduction = %.1f%%, expected a solid win", hd.OverallEnergy*100)
	}
	if hd.OverallTime <= 0.2 {
		t.Errorf("headline time reduction = %.1f%%", hd.OverallTime*100)
	}
	buf.Reset()
	RenderFigure6(&buf, fig6, Fig6TBPF)
	RenderHeadline(&buf, hd)
	if !strings.Contains(buf.String(), "average") {
		t.Errorf("headline render incomplete")
	}

	// Table III: the guarantees column — SCHEMATIC and ROCKCLIMB all ✓.
	t3, err := h.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []string{"Schematic", "Rockclimb"} {
		for _, tbpf := range TBPFs {
			for _, b := range Order {
				cell := t3[tech][tbpf][b]
				if !cell.Completed() {
					t.Errorf("Table III %s/%s@%d should be ✓", tech, b, tbpf)
				}
				if cell.Completed() && !cell.Correct() {
					t.Errorf("Table III %s/%s@%d wrong output", tech, b, tbpf)
				}
			}
		}
	}
	// The non-adaptive techniques must fail somewhere at TBPF=1k.
	failures := 0
	for _, tech := range []string{"Mementos", "Alfred"} {
		for _, b := range Order {
			if !t3[tech][1000][b].Completed() {
				failures++
			}
		}
	}
	if failures == 0 {
		t.Errorf("expected forward-progress failures at TBPF=1k for the non-adaptive baselines")
	}
	buf.Reset()
	RenderTable3(&buf, t3)
	if !strings.Contains(buf.String(), "forward progress") {
		t.Errorf("Table III render incomplete")
	}
}
