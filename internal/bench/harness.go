package bench

import (
	"fmt"

	"schematic/internal/baselines"
	"schematic/internal/baselines/alfred"
	"schematic/internal/baselines/allnvm"
	"schematic/internal/baselines/mementos"
	"schematic/internal/baselines/ratchet"
	"schematic/internal/baselines/rockclimb"
	schematic "schematic/internal/core"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/trace"
)

// Schematic wraps the core pass as a baselines.Technique so the harness
// can iterate over all five techniques uniformly.
type Schematic struct{}

// Name implements baselines.Technique.
func (Schematic) Name() string { return "Schematic" }

// SupportsVM implements baselines.Technique: SCHEMATIC adapts to any SVM
// (Table I's headline property).
func (Schematic) SupportsVM(*ir.Module, int) bool { return true }

// Apply implements baselines.Technique.
func (Schematic) Apply(m *ir.Module, p baselines.Params) error {
	_, err := schematic.Apply(m, schematic.Config{
		Model:   p.Model,
		Budget:  p.Budget,
		VMSize:  p.VMSize,
		Profile: p.Profile,
	})
	return err
}

// Techniques returns the five techniques in the paper's column order.
func Techniques() []baselines.Technique {
	return []baselines.Technique{
		ratchet.Ratchet{},
		mementos.Mementos{},
		rockclimb.Rockclimb{},
		alfred.Alfred{},
		Schematic{},
	}
}

// AllNVMTechnique returns the Fig. 7 ablation.
func AllNVMTechnique() baselines.Technique { return allnvm.AllNVM{} }

// TBPFs are the time-between-power-failures values of the evaluation
// (IV-C), in cycles.
var TBPFs = []int64{1_000, 10_000, 100_000}

// Harness runs the paper's experiments on the benchmark suite.
type Harness struct {
	Model       *energy.Model
	VMSize      int // SVM: 2 KB on the MSP430FR5969
	ProfileRuns int // profiling executions per benchmark (the paper: 1000)
	Seed        int64

	profiles map[string]*trace.Profile
	refs     map[string]*emulator.Result
}

// NewHarness builds a harness with the paper's platform defaults.
func NewHarness() *Harness {
	return &Harness{
		Model:       energy.MSP430FR5969(),
		VMSize:      2048,
		ProfileRuns: 50,
		Seed:        1,
		profiles:    map[string]*trace.Profile{},
		refs:        map[string]*emulator.Result{},
	}
}

// Profile returns the benchmark's execution profile (cached).
func (h *Harness) Profile(b *Benchmark) (*trace.Profile, error) {
	if p, ok := h.profiles[b.Name]; ok {
		return p, nil
	}
	m, err := b.Module()
	if err != nil {
		return nil, err
	}
	p, err := trace.Collect(m, trace.Options{Runs: h.ProfileRuns, Seed: h.Seed, Model: h.Model})
	if err != nil {
		return nil, fmt.Errorf("profile %s: %w", b.Name, err)
	}
	h.profiles[b.Name] = p
	return p, nil
}

// ReferenceAllVM runs the untransformed benchmark on continuous power with
// all data in VM — the execution-time reference of Table II ("in clock
// cycles, with all data in VM").
func (h *Harness) ReferenceAllVM(b *Benchmark) (*emulator.Result, error) {
	if r, ok := h.refs[b.Name]; ok {
		return r, nil
	}
	m, err := b.Module()
	if err != nil {
		return nil, err
	}
	clone := ir.Clone(m)
	baselines.AllocAllVM(clone)
	inputs, err := b.Inputs(h.Seed)
	if err != nil {
		return nil, err
	}
	res, err := emulator.Run(clone, emulator.Config{Model: h.Model, Inputs: inputs})
	if err != nil {
		return nil, err
	}
	if res.Verdict != emulator.Completed {
		return nil, fmt.Errorf("reference %s: %v", b.Name, res.Verdict)
	}
	h.refs[b.Name] = res
	return res, nil
}

// TechRun is the outcome of one (benchmark, technique, TBPF) cell.
type TechRun struct {
	Bench     string
	Technique string
	TBPF      int64
	EB        float64

	// Supported is the static Table I verdict; when false the run was not
	// attempted.
	Supported bool
	// ApplyErr reports a transformation failure (treated as ✗).
	ApplyErr error
	// Res is the intermittent execution result when the run happened.
	Res *emulator.Result
	// RefOutput is the continuous-power output for correctness checking.
	RefOutput []int64
}

// Completed reports whether the cell counts as ✓.
func (tr *TechRun) Completed() bool {
	return tr.Supported && tr.ApplyErr == nil &&
		tr.Res != nil && tr.Res.Verdict == emulator.Completed
}

// Correct reports whether the run produced the reference output.
func (tr *TechRun) Correct() bool {
	if !tr.Completed() || len(tr.Res.Output) != len(tr.RefOutput) {
		return false
	}
	for i := range tr.RefOutput {
		if tr.Res.Output[i] != tr.RefOutput[i] {
			return false
		}
	}
	return true
}

// Run executes one cell: transform with the technique for the EB derived
// from the TBPF, then emulate under intermittent power.
func (h *Harness) Run(b *Benchmark, tech baselines.Technique, tbpf int64) (*TechRun, error) {
	m, err := b.Module()
	if err != nil {
		return nil, err
	}
	prof, err := h.Profile(b)
	if err != nil {
		return nil, err
	}
	tr := &TechRun{
		Bench:     b.Name,
		Technique: tech.Name(),
		TBPF:      tbpf,
		EB:        prof.EBForTBPF(tbpf),
		Supported: tech.SupportsVM(m, h.VMSize),
	}
	if !tr.Supported {
		return tr, nil
	}
	inputs, err := b.Inputs(h.Seed)
	if err != nil {
		return nil, err
	}
	ref, err := emulator.Run(m, emulator.Config{Model: h.Model, Inputs: inputs})
	if err != nil {
		return nil, err
	}
	tr.RefOutput = ref.Output

	clone := ir.Clone(m)
	if err := tech.Apply(clone, baselines.Params{
		Model:   h.Model,
		Budget:  tr.EB,
		VMSize:  h.VMSize,
		Profile: prof,
	}); err != nil {
		tr.ApplyErr = err
		return tr, nil
	}
	res, err := emulator.Run(clone, emulator.Config{
		Model:        h.Model,
		VMSize:       h.VMSize,
		Intermittent: true,
		EB:           tr.EB,
		Inputs:       inputs,
	})
	if err != nil {
		return nil, fmt.Errorf("%s/%s/TBPF=%d: %w", b.Name, tech.Name(), tbpf, err)
	}
	tr.Res = res
	return tr, nil
}
