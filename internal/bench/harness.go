package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"schematic/internal/baselines"
	"schematic/internal/baselines/alfred"
	"schematic/internal/baselines/allnvm"
	"schematic/internal/baselines/mementos"
	"schematic/internal/baselines/ratchet"
	"schematic/internal/baselines/rockclimb"
	schematic "schematic/internal/core"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/obs"
	"schematic/internal/trace"
)

// Schematic wraps the core pass as a baselines.Technique so the harness
// can iterate over all five techniques uniformly.
type Schematic struct{}

// Name implements baselines.Technique.
func (Schematic) Name() string { return "Schematic" }

// SupportsVM implements baselines.Technique: SCHEMATIC adapts to any SVM
// (Table I's headline property).
func (Schematic) SupportsVM(*ir.Module, int) bool { return true }

// Apply implements baselines.Technique.
func (Schematic) Apply(m *ir.Module, p baselines.Params) error {
	_, err := schematic.Apply(m, schematic.Config{
		Model:   p.Model,
		Budget:  p.Budget,
		VMSize:  p.VMSize,
		Profile: p.Profile,
	})
	return err
}

// Techniques returns the five techniques in the paper's column order.
func Techniques() []baselines.Technique {
	return []baselines.Technique{
		ratchet.Ratchet{},
		mementos.Mementos{},
		rockclimb.Rockclimb{},
		alfred.Alfred{},
		Schematic{},
	}
}

// AllNVMTechnique returns the Fig. 7 ablation.
func AllNVMTechnique() baselines.Technique { return allnvm.AllNVM{} }

// TBPFs are the time-between-power-failures values of the evaluation
// (IV-C), in cycles.
var TBPFs = []int64{1_000, 10_000, 100_000}

// profileKey identifies a cached profile. Every parameter that influences
// trace.Collect participates, so changing ProfileRuns, Seed or Model on
// the harness transparently recomputes instead of returning stale data.
type profileKey struct {
	bench string
	runs  int
	seed  int64
	model *energy.Model
}

// refKey identifies a cached continuous-power reference run. The
// reference depends on the inputs (Seed) and the energy model, but not on
// VMSize or ProfileRuns.
type refKey struct {
	bench string
	seed  int64
	model *energy.Model
}

// profileEntry / refEntry are single-flight cache slots: the map lookup
// is guarded by Harness.mu, the (expensive) computation runs exactly once
// under the entry's own sync.Once, and concurrent requesters block on it
// rather than duplicating work.
type profileEntry struct {
	once sync.Once
	p    *trace.Profile
	err  error
}

type refEntry struct {
	once sync.Once
	res  *emulator.Result
	err  error
}

// CacheStats counts harness cache traffic; useful both for the run report
// and for regression tests that assert work is not silently reused (or
// silently duplicated). The eviction counters stay zero unless CacheCap
// bounds the caches (the long-lived daemon does; the one-shot CLIs do
// not).
type CacheStats struct {
	ProfileHits, ProfileMisses int64
	RefHits, RefMisses         int64
	CellRefHits, CellRefMisses int64

	ProfileEvictions int64
	RefEvictions     int64
	CellRefEvictions int64
}

// Evictions is the total across all three caches.
func (s CacheStats) Evictions() int64 {
	return s.ProfileEvictions + s.RefEvictions + s.CellRefEvictions
}

// Harness runs the paper's experiments on the benchmark suite.
//
// Concurrency contract: a Harness is safe for concurrent use by multiple
// goroutines once configured. The configuration fields (Model, VMSize,
// ProfileRuns, Seed, Jobs) are read without synchronization by Run and
// the experiment drivers, so set them before the first Run/experiment
// call and do not mutate them while runs are in flight. Changing them
// between (sequential) runs is supported: caches are keyed by the
// parameters they depend on, so a change never yields stale results.
type Harness struct {
	Model       *energy.Model
	VMSize      int // SVM: 2 KB on the MSP430FR5969
	ProfileRuns int // profiling executions per benchmark (the paper: 1000)
	Seed        int64

	// Jobs is the worker count for the experiment grids (Table III, the
	// figures, the ablations). Zero or negative selects runtime.NumCPU().
	// Jobs == 1 reproduces the sequential execution order exactly.
	Jobs int

	// CacheCap bounds each of the three single-flight caches (profiles,
	// all-VM references, cell references) to this many entries, evicting
	// least-recently-used entries beyond it. Zero keeps the caches
	// unbounded — the right default for the one-shot CLIs, which touch a
	// fixed benchmark suite; a long-lived daemon that sees arbitrary
	// programs must set a cap or grow without bound.
	CacheCap int

	// CollectSites attaches an obs.Collector to every cell's intermittent
	// run: per-checkpoint-site attribution is reconciled against the
	// cell's energy ledger (a mismatch fails the cell) and the hottest
	// sites land in TechRun.HotSites / the run-report records.
	CollectSites bool

	// CellObserver, when non-nil, supplies an extra emulator.Observer for
	// each cell's intermittent run. Cells run concurrently (see Jobs), so
	// either return a fresh observer per call or one that is safe for
	// concurrent use. Like the other configuration fields it must be set
	// before the first Run.
	CellObserver func(bench, technique string, tbpf int64) emulator.Observer

	mu         sync.Mutex
	profiles   map[profileKey]*profileEntry
	refs       map[refKey]*refEntry // all-data-in-VM references (Table II)
	cellRefs   map[refKey]*refEntry // untransformed correctness references
	profLRU    *lruIndex[profileKey]
	refLRU     *lruIndex[refKey]
	cellRefLRU *lruIndex[refKey]
	stats      CacheStats
	report     *RunReport
}

// NewHarness builds a harness with the paper's platform defaults.
func NewHarness() *Harness {
	return &Harness{
		Model:       energy.MSP430FR5969(),
		VMSize:      2048,
		ProfileRuns: 50,
		Seed:        1,
		profiles:    map[profileKey]*profileEntry{},
		refs:        map[refKey]*refEntry{},
		cellRefs:    map[refKey]*refEntry{},
	}
}

// validate rejects a harness whose emulator configuration cannot run,
// so a misconfigured Model or VMSize fails at the entry point with a
// typed emulator.ConfigError instead of surfacing deep inside profiling
// or a mid-grid cell.
func (h *Harness) validate() error {
	return emulator.Config{Model: h.Model, VMSize: h.VMSize}.Validate()
}

// CacheStats returns a snapshot of the cache hit/miss counters.
func (h *Harness) CacheStats() CacheStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Profile returns the benchmark's execution profile, computed at most
// once per (benchmark, ProfileRuns, Seed, Model) configuration. The
// context gates admission: a done context returns its error without
// touching the cache (an in-flight computation joined earlier still runs
// to completion, since its result is shared with other waiters).
func (h *Harness) Profile(ctx context.Context, b *Benchmark) (*trace.Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	key := profileKey{bench: b.Name, runs: h.ProfileRuns, seed: h.Seed, model: h.Model}
	h.mu.Lock()
	if h.profiles == nil {
		h.profiles = map[profileKey]*profileEntry{}
	}
	e, ok := h.profiles[key]
	if !ok {
		e = &profileEntry{}
		h.profiles[key] = e
		h.stats.ProfileMisses++
	} else {
		h.stats.ProfileHits++
	}
	if h.CacheCap > 0 {
		if h.profLRU == nil {
			h.profLRU = newLRUIndex[profileKey](h.CacheCap)
		}
		h.profLRU.Touch(key)
		if old, ok := h.profLRU.Evict(); ok {
			delete(h.profiles, old)
			h.stats.ProfileEvictions++
		}
	}
	h.mu.Unlock()
	e.once.Do(func() {
		m, err := b.Module()
		if err != nil {
			e.err = err
			return
		}
		p, err := trace.Collect(m, trace.Options{Runs: key.runs, Seed: key.seed, Model: key.model})
		if err != nil {
			e.err = fmt.Errorf("profile %s: %w", b.Name, err)
			return
		}
		e.p = p
	})
	return e.p, e.err
}

// ReferenceAllVM runs the untransformed benchmark on continuous power with
// all data in VM — the execution-time reference of Table II ("in clock
// cycles, with all data in VM"). Computed at most once per (benchmark,
// Seed, Model) configuration.
func (h *Harness) ReferenceAllVM(ctx context.Context, b *Benchmark) (*emulator.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := refKey{bench: b.Name, seed: h.Seed, model: h.Model}
	h.mu.Lock()
	if h.refs == nil {
		h.refs = map[refKey]*refEntry{}
	}
	e, ok := h.refs[key]
	if !ok {
		e = &refEntry{}
		h.refs[key] = e
		h.stats.RefMisses++
	} else {
		h.stats.RefHits++
	}
	if h.CacheCap > 0 {
		if h.refLRU == nil {
			h.refLRU = newLRUIndex[refKey](h.CacheCap)
		}
		h.refLRU.Touch(key)
		if old, ok := h.refLRU.Evict(); ok {
			delete(h.refs, old)
			h.stats.RefEvictions++
		}
	}
	h.mu.Unlock()
	e.once.Do(func() {
		m, err := b.Module()
		if err != nil {
			e.err = err
			return
		}
		clone := ir.Clone(m)
		baselines.AllocAllVM(clone)
		inputs, err := b.Inputs(key.seed)
		if err != nil {
			e.err = err
			return
		}
		// PrewarmVM: the untransformed module has no checkpoints to
		// restore the VM-allocated data, so the boot copy is assumed done
		// before measurement starts (the paper measures "with all data in
		// VM", not the cost of getting it there).
		res, err := emulator.Run(clone, emulator.Config{Model: key.model, Inputs: inputs, PrewarmVM: true})
		if err != nil {
			e.err = err
			return
		}
		if res.Verdict != emulator.Completed {
			e.err = fmt.Errorf("reference %s: %v", b.Name, res.Verdict)
			return
		}
		if res.UnsyncedReads > 0 {
			e.err = fmt.Errorf("reference %s: %d unsynced VM reads", b.Name, res.UnsyncedReads)
			return
		}
		e.res = res
	})
	return e.res, e.err
}

// referenceOutput runs the untransformed benchmark on continuous power
// with its as-compiled allocation — the correctness reference each
// experiment cell compares against. It is computed once per (benchmark,
// Seed, Model) and shared across all (technique, TBPF) cells; the
// returned Result is immutable.
func (h *Harness) referenceOutput(ctx context.Context, b *Benchmark) (*emulator.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := refKey{bench: b.Name, seed: h.Seed, model: h.Model}
	h.mu.Lock()
	if h.cellRefs == nil {
		h.cellRefs = map[refKey]*refEntry{}
	}
	e, ok := h.cellRefs[key]
	if !ok {
		e = &refEntry{}
		h.cellRefs[key] = e
		h.stats.CellRefMisses++
	} else {
		h.stats.CellRefHits++
	}
	if h.CacheCap > 0 {
		if h.cellRefLRU == nil {
			h.cellRefLRU = newLRUIndex[refKey](h.CacheCap)
		}
		h.cellRefLRU.Touch(key)
		if old, ok := h.cellRefLRU.Evict(); ok {
			delete(h.cellRefs, old)
			h.stats.CellRefEvictions++
		}
	}
	h.mu.Unlock()
	e.once.Do(func() {
		m, err := b.Module()
		if err != nil {
			e.err = err
			return
		}
		inputs, err := b.Inputs(key.seed)
		if err != nil {
			e.err = err
			return
		}
		res, err := emulator.Run(m, emulator.Config{Model: key.model, Inputs: inputs})
		if err != nil {
			e.err = err
			return
		}
		e.res = res
	})
	return e.res, e.err
}

// CellStats records the per-cell observability of one Run: wall time and
// the phase split between profiling (zero on a cache hit), applying the
// transformation, and emulating the intermittent execution.
type CellStats struct {
	Wall    time.Duration
	Profile time.Duration
	Apply   time.Duration
	Emulate time.Duration
}

// TechRun is the outcome of one (benchmark, technique, TBPF) cell.
type TechRun struct {
	Bench     string
	Technique string
	TBPF      int64
	EB        float64

	// Supported is the static Table I verdict; when false the run was not
	// attempted.
	Supported bool
	// ApplyErr reports a transformation failure (treated as ✗).
	ApplyErr error
	// Res is the intermittent execution result when the run happened.
	Res *emulator.Result
	// RefOutput is the continuous-power output for correctness checking.
	RefOutput []int64

	// Stats is the per-cell observability record.
	Stats CellStats

	// HotSites is the per-checkpoint-site attribution, hottest first
	// (populated only when Harness.CollectSites is set).
	HotSites []obs.SiteStats
}

// Completed reports whether the cell counts as ✓.
func (tr *TechRun) Completed() bool {
	return tr.Supported && tr.ApplyErr == nil &&
		tr.Res != nil && tr.Res.Verdict == emulator.Completed
}

// Correct reports whether the run produced the reference output.
func (tr *TechRun) Correct() bool {
	if !tr.Completed() || len(tr.Res.Output) != len(tr.RefOutput) {
		return false
	}
	for i := range tr.RefOutput {
		if tr.Res.Output[i] != tr.RefOutput[i] {
			return false
		}
	}
	return true
}

// Run executes one cell: transform with the technique for the EB derived
// from the TBPF, then emulate under intermittent power. Run is safe for
// concurrent use; the profile and the continuous-power reference are
// computed once per configuration and shared across cells. The context
// is checked at each phase boundary (profile, transform, emulate), so a
// cancelled long job returns ctx.Err() promptly instead of running the
// remaining phases.
func (h *Harness) Run(ctx context.Context, b *Benchmark, tech baselines.Technique, tbpf int64) (*TechRun, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m, err := b.Module()
	if err != nil {
		return nil, err
	}
	profStart := time.Now()
	prof, err := h.Profile(ctx, b)
	if err != nil {
		return nil, err
	}
	profDur := time.Since(profStart)
	tr := &TechRun{
		Bench:     b.Name,
		Technique: tech.Name(),
		TBPF:      tbpf,
		EB:        prof.EBForTBPF(tbpf),
		Supported: tech.SupportsVM(m, h.VMSize),
	}
	defer func() { tr.Stats.Wall = time.Since(start); tr.Stats.Profile = profDur }()
	if !tr.Supported {
		return tr, nil
	}
	inputs, err := b.Inputs(h.Seed)
	if err != nil {
		return nil, err
	}
	ref, err := h.referenceOutput(ctx, b)
	if err != nil {
		return nil, err
	}
	tr.RefOutput = ref.Output

	applyStart := time.Now()
	clone := ir.Clone(m)
	if err := tech.Apply(clone, baselines.Params{
		Model:   h.Model,
		Budget:  tr.EB,
		VMSize:  h.VMSize,
		Profile: prof,
	}); err != nil {
		tr.ApplyErr = err
		tr.Stats.Apply = time.Since(applyStart)
		return tr, nil
	}
	tr.Stats.Apply = time.Since(applyStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var col *obs.Collector
	var observers []emulator.Observer
	if h.CollectSites {
		col = obs.NewCollector()
		observers = append(observers, col)
	}
	if h.CellObserver != nil {
		observers = append(observers, h.CellObserver(b.Name, tech.Name(), tbpf))
	}

	emuStart := time.Now()
	res, err := emulator.Run(clone, emulator.Config{
		Model:        h.Model,
		VMSize:       h.VMSize,
		Intermittent: true,
		EB:           tr.EB,
		Inputs:       inputs,
		Observer:     emulator.MultiObserver(observers...),
	})
	if err != nil {
		return nil, fmt.Errorf("%s/%s/TBPF=%d: %w", b.Name, tech.Name(), tbpf, err)
	}
	tr.Stats.Emulate = time.Since(emuStart)
	tr.Res = res
	if col != nil {
		if err := col.Reconcile(res); err != nil {
			return nil, fmt.Errorf("%s/%s/TBPF=%d: %w", b.Name, tech.Name(), tbpf, err)
		}
		tr.HotSites = col.TopSites(5)
	}
	return tr, nil
}
