package bench

import (
	"context"
	"testing"
)

// Regression: the harness caches used to key by benchmark name only, so
// changing Seed or ProfileRuns after a first run silently returned stale
// results. The cache key now includes every parameter the computation
// depends on.
func TestProfileCacheRespectsParameters(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	b, err := ByName("randmath")
	if err != nil {
		t.Fatal(err)
	}

	p1, err := h.Profile(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Runs != 2 || p1.Seed != 1 {
		t.Fatalf("profile has Runs=%d Seed=%d, want 2/1", p1.Runs, p1.Seed)
	}

	// Changing ProfileRuns must recompute, not return the stale profile.
	h.ProfileRuns = 4
	p2, err := h.Profile(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Runs != 4 {
		t.Errorf("stale profile: Runs=%d after setting ProfileRuns=4", p2.Runs)
	}

	// Changing Seed must recompute too.
	h.Seed = 99
	p3, err := h.Profile(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Seed != 99 {
		t.Errorf("stale profile: Seed=%d after setting Seed=99", p3.Seed)
	}

	// Restoring an earlier configuration hits the cache (same object).
	h.ProfileRuns, h.Seed = 2, 1
	p4, err := h.Profile(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if p4 != p1 {
		t.Errorf("restored configuration missed the cache")
	}
	cs := h.CacheStats()
	if cs.ProfileMisses != 3 || cs.ProfileHits != 1 {
		t.Errorf("profile cache traffic = %d misses / %d hits, want 3/1",
			cs.ProfileMisses, cs.ProfileHits)
	}
}

// Regression: ReferenceAllVM cached by benchmark name only, ignoring the
// Seed that determines the inputs.
func TestReferenceCacheRespectsSeed(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	b, err := ByName("randmath")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h.ReferenceAllVM(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	h.Seed = 7
	r2, err := h.ReferenceAllVM(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Errorf("seed change returned the cached reference")
	}
	h.Seed = 1
	r3, err := h.ReferenceAllVM(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Errorf("restoring the seed missed the cache")
	}
	cs := h.CacheStats()
	if cs.RefMisses != 2 || cs.RefHits != 1 {
		t.Errorf("reference cache traffic = %d misses / %d hits, want 2/1",
			cs.RefMisses, cs.RefHits)
	}
}

// Regression: the Table II reference ran the checkpoint-free module with
// all data allocated to VM but nothing ever materialized it there, so
// the measurement silently read poison values — the same numbers for
// every seed. The VM is now prewarmed from the NVM homes and the
// harness rejects references with unsynced reads.
func TestReferenceReadsRealData(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	b, err := ByName("crc")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h.ReferenceAllVM(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.UnsyncedReads != 0 {
		t.Fatalf("reference run has %d unsynced VM reads (poison data)", r1.UnsyncedReads)
	}
	// The CRC of the seeded message must react to the seed.
	h.Seed = 7
	r7, err := h.ReferenceAllVM(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Output) != 1 || len(r7.Output) != 1 || r1.Output[0] == r7.Output[0] {
		t.Errorf("reference output is input-insensitive: seed1=%v seed7=%v", r1.Output, r7.Output)
	}
}

// Regression: Run used to re-emulate the untransformed continuous-power
// reference for every (technique, TBPF) cell; it is now computed once per
// (benchmark, seed) and shared.
func TestCellReferenceComputedOnce(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	b, err := ByName("crc")
	if err != nil {
		t.Fatal(err)
	}
	var refOutput []int64
	for _, tech := range Techniques() {
		for _, tbpf := range TBPFs {
			tr, err := h.Run(context.Background(), b, tech, tbpf)
			if err != nil {
				t.Fatal(err)
			}
			if refOutput == nil {
				refOutput = tr.RefOutput
			} else if len(tr.RefOutput) != len(refOutput) {
				t.Fatalf("reference output changed across cells")
			}
		}
	}
	cs := h.CacheStats()
	if cs.CellRefMisses != 1 {
		t.Errorf("cell reference computed %d times for one benchmark, want 1", cs.CellRefMisses)
	}
	wantHits := int64(len(Techniques())*len(TBPFs) - 1)
	if cs.CellRefHits != wantHits {
		t.Errorf("cell reference hits = %d, want %d", cs.CellRefHits, wantHits)
	}
}
