package bench

import (
	"context"
	"errors"
	"testing"

	"schematic/internal/emulator"
)

// Smoke: run the small benchmarks through every technique at TBPF=10k.
func TestHarnessSmoke(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 3
	for _, name := range []string{"randmath", "crc"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range Techniques() {
			tr, err := h.Run(context.Background(), b, tech, 10000)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, tech.Name(), err)
			}
			if tr.Completed() && !tr.Correct() {
				t.Errorf("%s/%s: wrong output %v vs %v", name, tech.Name(), tr.Res.Output, tr.RefOutput)
			}
		}
	}
}

// Full matrix at TBPF=10k: every benchmark under every technique.
func TestFullMatrix10k(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	h := NewHarness()
	h.ProfileRuns = 3
	bms, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bms {
		for _, tech := range Techniques() {
			tr, err := h.Run(context.Background(), b, tech, 10000)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, tech.Name(), err)
			}
			status := "completed"
			if !tr.Completed() {
				status = "FAILED"
				if tr.ApplyErr != nil {
					status = "apply-error: " + tr.ApplyErr.Error()
				} else if tr.Res != nil {
					status = tr.Res.Verdict.String()
				} else if !tr.Supported {
					status = "unsupported(VM)"
				}
			}
			correct := tr.Completed() && tr.Correct()
			t.Logf("%-10s %-10s %s correct=%v", b.Name, tech.Name(), status, correct)
			if tr.Completed() && !tr.Correct() {
				t.Errorf("%s/%s: WRONG OUTPUT %v want %v", b.Name, tech.Name(), tr.Res.Output, tr.RefOutput)
			}
		}
	}
}

// Matrix at TBPF=1k: extreme intermittency, where non-adaptive placements
// start failing (Table III).
func TestFullMatrix1k(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	h := NewHarness()
	h.ProfileRuns = 3
	bms, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bms {
		for _, tech := range Techniques() {
			tr, err := h.Run(context.Background(), b, tech, 1000)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, tech.Name(), err)
			}
			status := "completed"
			if !tr.Completed() {
				status = "FAILED"
				if tr.ApplyErr != nil {
					status = "apply-error: " + tr.ApplyErr.Error()
				} else if tr.Res != nil {
					status = tr.Res.Verdict.String()
				} else if !tr.Supported {
					status = "unsupported(VM)"
				}
			}
			t.Logf("%-10s %-10s %s", b.Name, tech.Name(), status)
			if tr.Completed() && !tr.Correct() {
				t.Errorf("%s/%s: WRONG OUTPUT %v want %v", b.Name, tech.Name(), tr.Res.Output, tr.RefOutput)
			}
			// The wait-discipline techniques must always make progress.
			if (tech.Name() == "Schematic" || tech.Name() == "Rockclimb") && !tr.Completed() {
				t.Errorf("%s/%s must guarantee forward progress", b.Name, tech.Name())
			}
		}
	}
}

// TestHarnessValidatesConfig: a harness whose fields cannot form a valid
// emulator config is rejected at the Run/Profile entry points with a
// typed ConfigError, before any profiling or emulation happens.
func TestHarnessValidatesConfig(t *testing.T) {
	b, err := ByName("randmath")
	if err != nil {
		t.Fatal(err)
	}
	for _, breakIt := range []func(h *Harness){
		func(h *Harness) { h.VMSize = -1 },
		func(h *Harness) { h.Model = nil },
	} {
		h := NewHarness()
		h.ProfileRuns = 2
		breakIt(h)
		if _, err := h.Run(context.Background(), b, Schematic{}, 10_000); !errors.Is(err, emulator.ErrInvalidConfig) {
			t.Errorf("Run on broken harness: got %v, want ErrInvalidConfig", err)
		}
		if _, err := h.Profile(context.Background(), b); !errors.Is(err, emulator.ErrInvalidConfig) {
			t.Errorf("Profile on broken harness: got %v, want ErrInvalidConfig", err)
		}
		if cs := h.CacheStats(); cs.ProfileMisses != 0 {
			t.Errorf("broken harness still admitted a profile computation: %+v", cs)
		}
	}
}
