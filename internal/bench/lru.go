package bench

import "container/list"

// lruIndex tracks access recency for a cache map whose entries live
// elsewhere: Touch marks a key most-recently used (inserting it if new)
// and Evict pops the least-recently used key once the index holds more
// than cap keys. The caller owns the actual map and the eviction
// counters; the index only decides which key goes.
type lruIndex[K comparable] struct {
	cap int
	ll  *list.List // of K; front = most recent
	pos map[K]*list.Element
}

func newLRUIndex[K comparable](cap int) *lruIndex[K] {
	return &lruIndex[K]{cap: cap, ll: list.New(), pos: map[K]*list.Element{}}
}

// Touch marks k most-recently used, inserting it if new.
func (l *lruIndex[K]) Touch(k K) {
	if e, ok := l.pos[k]; ok {
		l.ll.MoveToFront(e)
		return
	}
	l.pos[k] = l.ll.PushFront(k)
}

// Evict removes and returns the least-recently used key while the index
// exceeds its cap; ok is false when nothing needs to go.
func (l *lruIndex[K]) Evict() (k K, ok bool) {
	if l.cap <= 0 || l.ll.Len() <= l.cap {
		return k, false
	}
	e := l.ll.Back()
	k = e.Value.(K)
	l.ll.Remove(e)
	delete(l.pos, k)
	return k, true
}

// Len reports how many keys the index tracks.
func (l *lruIndex[K]) Len() int { return l.ll.Len() }
