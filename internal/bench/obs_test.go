package bench

import (
	"context"
	"sync/atomic"
	"testing"

	"schematic/internal/emulator"
)

// TestAttributionReconcilesAllBenchmarks runs SCHEMATIC over every
// bundled benchmark with site collection on: Harness.Run reconciles the
// observer's attribution against the cell's energy ledger and fails the
// cell on any mismatch, so this test is the suite-wide enforcement of
// the attribution invariant.
func TestAttributionReconcilesAllBenchmarks(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 3
	h.CollectSites = true
	bms, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bms {
		tr, err := h.Run(context.Background(), b, Schematic{}, 10000)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err) // includes reconciliation failures
		}
		if tr.Res != nil && len(tr.HotSites) == 0 && tr.Res.Energy.Total() > 0 {
			t.Errorf("%s: run consumed energy but no sites attributed", b.Name)
		}
	}
}

// TestAttributionReconcilesAllTechniques covers the other axis: one
// benchmark under all five checkpoint runtimes (wait, rollback, trigger,
// lazy), since each runtime charges energy on different code paths.
func TestAttributionReconcilesAllTechniques(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 3
	h.CollectSites = true
	b, err := ByName("crc")
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range Techniques() {
		if _, err := h.Run(context.Background(), b, tech, 10000); err != nil {
			t.Fatalf("crc/%s: %v", tech.Name(), err)
		}
	}
}

// countingObserver counts events; safe for concurrent use.
type countingObserver struct{ n atomic.Int64 }

func (c *countingObserver) Event(emulator.Event) { c.n.Add(1) }

// TestCellObserverHook checks the per-cell observer injection: the hook
// is called with the cell coordinates and its observer sees the run.
func TestCellObserverHook(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 3
	var co countingObserver
	var hookCells atomic.Int64
	h.CellObserver = func(bench, technique string, tbpf int64) emulator.Observer {
		if bench != "crc" || technique != "Schematic" || tbpf != 10000 {
			t.Errorf("hook got (%s, %s, %d)", bench, technique, tbpf)
		}
		hookCells.Add(1)
		return &co
	}
	b, err := ByName("crc")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := h.Run(context.Background(), b, Schematic{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Completed() {
		t.Fatalf("cell did not complete: %+v", tr)
	}
	if hookCells.Load() != 1 {
		t.Errorf("hook called %d times, want 1", hookCells.Load())
	}
	if co.n.Load() == 0 {
		t.Error("cell observer saw no events")
	}
}
