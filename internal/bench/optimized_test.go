package bench

import (
	"testing"

	schematic "schematic/internal/core"
	"schematic/internal/emulator"
	"schematic/internal/ir"
	"schematic/internal/opt"
	"schematic/internal/trace"
)

// TestOptimizedSuite runs the production pipeline — optimize, profile,
// place, emulate — over the whole benchmark suite: the optimizer must
// preserve every program's output, and SCHEMATIC's guarantees must hold
// on the optimized modules.
func TestOptimizedSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-suite pipeline is slow")
	}
	h := NewHarness()
	bms, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bms {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m, err := b.Module()
			if err != nil {
				t.Fatal(err)
			}
			om := ir.Clone(m)
			st, err := opt.Optimize(om)
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			inputs, err := b.Inputs(h.Seed)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := emulator.Run(m, emulator.Config{Model: h.Model, Inputs: inputs})
			if err != nil {
				t.Fatal(err)
			}
			optRef, err := emulator.Run(ir.Clone(om), emulator.Config{Model: h.Model, Inputs: inputs})
			if err != nil {
				t.Fatalf("optimized continuous run: %v", err)
			}
			if len(optRef.Output) != len(ref.Output) {
				t.Fatalf("optimizer changed output length: %d vs %d", len(optRef.Output), len(ref.Output))
			}
			for i := range ref.Output {
				if optRef.Output[i] != ref.Output[i] {
					t.Fatalf("optimizer changed output[%d] (stats: %v)", i, st)
				}
			}
			if optRef.Steps > ref.Steps {
				t.Errorf("optimized run executes more instructions: %d vs %d", optRef.Steps, ref.Steps)
			}

			// Pipeline: profile the optimized module and place checkpoints.
			prof, err := trace.Collect(om, trace.Options{Runs: 3, Seed: h.Seed, Model: h.Model})
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			eb := prof.EBForTBPF(10_000)
			conf := schematic.Config{Model: h.Model, Budget: eb, VMSize: h.VMSize, Profile: prof}
			if _, err := schematic.Apply(om, conf); err != nil {
				t.Fatalf("apply on optimized module: %v", err)
			}
			if err := schematic.Validate(om, conf); err != nil {
				t.Fatalf("validate: %v", err)
			}
			res, err := emulator.Run(om, emulator.Config{
				Model: h.Model, VMSize: h.VMSize, Intermittent: true, EB: eb, Inputs: inputs,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != emulator.Completed || res.PowerFailures != 0 || res.Energy.Reexecution != 0 {
				t.Fatalf("guarantees violated on optimized %s: verdict=%v failures=%d reexec=%.1f",
					b.Name, res.Verdict, res.PowerFailures, res.Energy.Reexecution)
			}
			for i := range ref.Output {
				if res.Output[i] != ref.Output[i] {
					t.Fatalf("intermittent optimized output[%d] differs", i)
				}
			}
		})
	}
}
