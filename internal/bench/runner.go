// Concurrent experiment runner: the paper's evaluation is a grid of
// (benchmark × technique × TBPF) cells that are fully independent — each
// cell transforms its own clone of the benchmark module — so the grid
// fans out across a worker pool while the harness caches (profiles,
// continuous-power references) collapse the shared work to exactly one
// computation per configuration. Results are collected by cell index, so
// the output is byte-identical regardless of the worker count.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"schematic/internal/baselines"
)

// Cell identifies one (benchmark, technique, TBPF) grid cell.
type Cell struct {
	Bench *Benchmark
	Tech  baselines.Technique
	TBPF  int64
}

// jobs resolves the effective worker count.
func (h *Harness) jobs() int {
	if h.Jobs > 0 {
		return h.Jobs
	}
	return runtime.NumCPU()
}

// parallelFor runs fn(0..n-1) on the harness worker pool.
func (h *Harness) parallelFor(ctx context.Context, n int, fn func(i int) error) error {
	return ParallelForCtx(ctx, h.jobs(), n, fn)
}

// ParallelFor runs fn(0..n-1) on up to the given number of workers; see
// ParallelForCtx for the contract. It is the non-cancellable form kept
// for call sites without a context.
func ParallelFor(workers, n int, fn func(i int) error) error {
	return ParallelForCtx(context.Background(), workers, n, fn)
}

// ParallelForCtx runs fn(0..n-1) on up to the given number of workers
// and returns the error of the lowest index that failed — the same error
// a sequential in-order loop would have surfaced first. With one worker
// it degrades to a plain loop (no goroutines), preserving sequential
// order. When the context is cancelled, no further indices are
// dispatched, in-flight calls are awaited, and ctx.Err() is returned
// unless an index failed with its own error first. Other subsystems with
// the same fan-out shape (e.g. the crash hunter) reuse it rather than
// growing their own pool.
func ParallelForCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		errIdx = -1
		errVal error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without running
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, errVal = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if errVal == nil {
		errVal = ctx.Err()
	}
	return errVal
}

// RunGrid executes the cells on the harness worker pool and returns the
// results in cell order — deterministic regardless of Jobs. The cells
// are also appended, in cell order, to the harness run report under the
// given experiment label. Cancelling the context stops dispatching
// further cells and returns ctx.Err() promptly.
func (h *Harness) RunGrid(ctx context.Context, experiment string, cells []Cell) ([]*TechRun, error) {
	results := make([]*TechRun, len(cells))
	err := h.parallelFor(ctx, len(cells), func(i int) error {
		tr, err := h.Run(ctx, cells[i].Bench, cells[i].Tech, cells[i].TBPF)
		if err != nil {
			return err
		}
		results[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	report := h.report
	h.mu.Unlock()
	if report != nil {
		report.addGrid(experiment, results)
	}
	return results, nil
}

// ---- run report ----

// CellRecord is one grid cell's observability record, the unit of the
// NDJSON dump (`cmd/paper -stats out.ndjson`).
type CellRecord struct {
	Experiment string `json:"experiment"`
	Bench      string `json:"bench"`
	Technique  string `json:"technique"`
	TBPF       int64  `json:"tbpf"`

	Supported bool   `json:"supported"`
	ApplyErr  string `json:"apply_err,omitempty"`
	Verdict   string `json:"verdict,omitempty"`
	Completed bool   `json:"completed"`
	Correct   bool   `json:"correct"`

	EBnJ float64 `json:"eb_nj"`

	// Phase timings in milliseconds: total wall, profiling share (zero on
	// a profile-cache hit), transformation, intermittent emulation.
	WallMS    float64 `json:"wall_ms"`
	ProfileMS float64 `json:"profile_ms"`
	ApplyMS   float64 `json:"apply_ms"`
	EmulateMS float64 `json:"emulate_ms"`

	// Emulator counters (zero when the cell did not run).
	Steps         int64 `json:"steps,omitempty"`
	Cycles        int64 `json:"cycles,omitempty"`
	TotalCycles   int64 `json:"total_cycles,omitempty"`
	PowerFailures int   `json:"power_failures,omitempty"`
	Saves         int   `json:"saves,omitempty"`
	Restores      int   `json:"restores,omitempty"`

	// Energy-category breakdown (Fig. 6 categories), nJ.
	EnergyComputeNJ float64 `json:"energy_compute_nj,omitempty"`
	EnergySaveNJ    float64 `json:"energy_save_nj,omitempty"`
	EnergyRestoreNJ float64 `json:"energy_restore_nj,omitempty"`
	EnergyReexecNJ  float64 `json:"energy_reexec_nj,omitempty"`
	EnergyTotalNJ   float64 `json:"energy_total_nj,omitempty"`

	// HotSites is the top-N hottest checkpoint sites by attributed energy
	// (present only when the harness ran with CollectSites).
	HotSites []HotSite `json:"hot_sites,omitempty"`
}

// HotSite is the NDJSON form of one checkpoint site's attribution.
type HotSite struct {
	Site       int     `json:"site"`
	Fires      int64   `json:"fires"`
	Saves      int64   `json:"saves"`
	Restores   int64   `json:"restores"`
	BytesSaved int64   `json:"bytes_saved"`
	SaveNJ     float64 `json:"save_nj"`
	RestoreNJ  float64 `json:"restore_nj"`
	ReexecNJ   float64 `json:"reexec_nj"`
}

func recordOf(experiment string, tr *TechRun) CellRecord {
	rec := CellRecord{
		Experiment: experiment,
		Bench:      tr.Bench,
		Technique:  tr.Technique,
		TBPF:       tr.TBPF,
		Supported:  tr.Supported,
		Completed:  tr.Completed(),
		Correct:    tr.Correct(),
		EBnJ:       tr.EB,
		WallMS:     float64(tr.Stats.Wall) / float64(time.Millisecond),
		ProfileMS:  float64(tr.Stats.Profile) / float64(time.Millisecond),
		ApplyMS:    float64(tr.Stats.Apply) / float64(time.Millisecond),
		EmulateMS:  float64(tr.Stats.Emulate) / float64(time.Millisecond),
	}
	if tr.ApplyErr != nil {
		rec.ApplyErr = tr.ApplyErr.Error()
	}
	if tr.Res != nil {
		rec.Verdict = tr.Res.Verdict.String()
		rec.Steps = tr.Res.Steps
		rec.Cycles = tr.Res.Cycles
		rec.TotalCycles = tr.Res.TotalCycles
		rec.PowerFailures = tr.Res.PowerFailures
		rec.Saves = tr.Res.Saves
		rec.Restores = tr.Res.Restores
		rec.EnergyComputeNJ = tr.Res.Energy.Computation
		rec.EnergySaveNJ = tr.Res.Energy.Save
		rec.EnergyRestoreNJ = tr.Res.Energy.Restore
		rec.EnergyReexecNJ = tr.Res.Energy.Reexecution
		rec.EnergyTotalNJ = tr.Res.Energy.Total()
	}
	for _, s := range tr.HotSites {
		rec.HotSites = append(rec.HotSites, HotSite{
			Site:       s.Site,
			Fires:      s.Fires,
			Saves:      s.Saves,
			Restores:   s.Restores,
			BytesSaved: s.BytesSaved,
			SaveNJ:     s.SaveEnergy,
			RestoreNJ:  s.RestoreEnergy,
			ReexecNJ:   s.ReexecEnergy,
		})
	}
	return rec
}

// RunReport aggregates per-cell records across the experiments of one
// harness run. It is safe for concurrent use.
type RunReport struct {
	mu      sync.Mutex
	records []CellRecord
	started time.Time
}

// StartReport attaches a fresh run report to the harness; subsequent
// RunGrid calls append their cells to it. Returns the report.
func (h *Harness) StartReport() *RunReport {
	r := &RunReport{started: time.Now()}
	h.mu.Lock()
	h.report = r
	h.mu.Unlock()
	return r
}

func (r *RunReport) addGrid(experiment string, results []*TechRun) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tr := range results {
		if tr == nil {
			continue
		}
		r.records = append(r.records, recordOf(experiment, tr))
	}
}

// Records returns a copy of the collected records in insertion order
// (experiments sequentially, cells in grid order within each).
func (r *RunReport) Records() []CellRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CellRecord, len(r.records))
	copy(out, r.records)
	return out
}

// WriteNDJSON dumps one JSON object per line, sorted by (experiment,
// bench, technique, TBPF) so the dump is deterministic.
func (r *RunReport) WriteNDJSON(w io.Writer) error {
	recs := r.Records()
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Technique != b.Technique {
			return a.Technique < b.Technique
		}
		return a.TBPF < b.TBPF
	})
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Summary prints the aggregate: cell counts, phase-time totals, and the
// harness cache traffic. It contains wall-clock values, so cmd/paper
// sends it to stderr to keep stdout byte-identical across -jobs values.
func (r *RunReport) Summary(w io.Writer, h *Harness) {
	recs := r.Records()
	var completed, correct int
	var wall, apply, emulate, profile time.Duration
	var steps int64
	var failures int
	for _, rec := range recs {
		if rec.Completed {
			completed++
		}
		if rec.Correct {
			correct++
		}
		wall += time.Duration(rec.WallMS * float64(time.Millisecond))
		apply += time.Duration(rec.ApplyMS * float64(time.Millisecond))
		emulate += time.Duration(rec.EmulateMS * float64(time.Millisecond))
		profile += time.Duration(rec.ProfileMS * float64(time.Millisecond))
		steps += rec.Steps
		failures += rec.PowerFailures
	}
	fmt.Fprintf(w, "run report: %d cells (%d completed, %d correct) in %v wall\n",
		len(recs), completed, correct, time.Since(r.started).Round(time.Millisecond))
	fmt.Fprintf(w, "  cell time: profile %v, apply %v, emulate %v (sum %v across %d workers)\n",
		profile.Round(time.Millisecond), apply.Round(time.Millisecond),
		emulate.Round(time.Millisecond), wall.Round(time.Millisecond), h.jobs())
	fmt.Fprintf(w, "  emulator: %d steps, %d power failures\n", steps, failures)
	cs := h.CacheStats()
	fmt.Fprintf(w, "  caches: profiles %d/%d hit, refs %d/%d hit, cell-refs %d/%d hit\n",
		cs.ProfileHits, cs.ProfileHits+cs.ProfileMisses,
		cs.RefHits, cs.RefHits+cs.RefMisses,
		cs.CellRefHits, cs.CellRefHits+cs.CellRefMisses)
}
