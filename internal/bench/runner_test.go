package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// cheapGrid builds a small grid over the two cheapest benchmarks so the
// determinism and race tests stay fast.
func cheapGrid(t *testing.T) []Cell {
	t.Helper()
	var cells []Cell
	for _, name := range []string{"randmath", "crc"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range Techniques() {
			for _, tbpf := range TBPFs {
				cells = append(cells, Cell{Bench: b, Tech: tech, TBPF: tbpf})
			}
		}
	}
	return cells
}

// sameRun asserts two TechRuns from identical configurations are
// observationally identical (timings excluded — they are wall clock).
func sameRun(t *testing.T, a, b *TechRun) {
	t.Helper()
	if a.Bench != b.Bench || a.Technique != b.Technique || a.TBPF != b.TBPF {
		t.Fatalf("cell mismatch: %s/%s/%d vs %s/%s/%d",
			a.Bench, a.Technique, a.TBPF, b.Bench, b.Technique, b.TBPF)
	}
	ctx := a.Bench + "/" + a.Technique
	if a.EB != b.EB {
		t.Errorf("%s: EB %v != %v", ctx, a.EB, b.EB)
	}
	if a.Supported != b.Supported || a.Completed() != b.Completed() || a.Correct() != b.Correct() {
		t.Errorf("%s: verdict mismatch", ctx)
	}
	if (a.Res == nil) != (b.Res == nil) {
		t.Fatalf("%s: result presence mismatch", ctx)
	}
	if a.Res != nil {
		if a.Res.Cycles != b.Res.Cycles || a.Res.TotalCycles != b.Res.TotalCycles ||
			a.Res.Steps != b.Res.Steps || a.Res.PowerFailures != b.Res.PowerFailures ||
			a.Res.Saves != b.Res.Saves || a.Res.Energy != b.Res.Energy {
			t.Errorf("%s: emulation results diverge: %+v vs %+v", ctx, a.Res, b.Res)
		}
	}
}

// TestGridDeterminismAcrossJobs runs the same grid sequentially and on 8
// workers and requires observationally identical results in identical
// order.
func TestGridDeterminismAcrossJobs(t *testing.T) {
	seq := NewHarness()
	seq.ProfileRuns = 2
	seq.Jobs = 1
	par := NewHarness()
	par.ProfileRuns = 2
	par.Jobs = 8

	sr, err := seq.RunGrid(context.Background(), "test", cheapGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := par.RunGrid(context.Background(), "test", cheapGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr) != len(pr) {
		t.Fatalf("result count %d != %d", len(sr), len(pr))
	}
	for i := range sr {
		sameRun(t, sr[i], pr[i])
	}
	// The parallel harness must not have duplicated the shared work:
	// 2 benchmarks → 2 profile computations and 2 cell references.
	cs := par.CacheStats()
	if cs.ProfileMisses != 2 {
		t.Errorf("profile misses = %d, want 2 (single-flight broken)", cs.ProfileMisses)
	}
	if cs.CellRefMisses != 2 {
		t.Errorf("cell-ref misses = %d, want 2 (reference recomputed per cell)", cs.CellRefMisses)
	}
}

// TestTablesDeterminismAcrossJobs renders Table II, Table III and Figure
// 6 at -jobs 1 and -jobs 8 and requires byte-identical output.
func TestTablesDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full tables are slow")
	}
	render := func(jobs int) string {
		h := NewHarness()
		h.ProfileRuns = 2
		h.Jobs = jobs
		var buf bytes.Buffer
		rows, err := h.Table2(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		RenderTable2(&buf, rows)
		t3, err := h.Table3(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		RenderTable3(&buf, t3)
		fig6, err := h.Figure6(context.Background(), Fig6TBPF)
		if err != nil {
			t.Fatal(err)
		}
		RenderFigure6(&buf, fig6, Fig6TBPF)
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("-jobs 1 and -jobs 8 output differ:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", seq, par)
	}
}

// TestHarnessConcurrentUse hammers the cached entry points from many
// goroutines (run under -race by the CI gate) and checks the
// single-flight property: concurrent requests for the same key must
// collapse to one computation returning one shared object.
func TestHarnessConcurrentUse(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	b, err := ByName("randmath")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	profiles := make([]any, goroutines)
	refs := make([]any, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := h.Profile(context.Background(), b)
			if err != nil {
				t.Error(err)
				return
			}
			profiles[i] = p
			r, err := h.ReferenceAllVM(context.Background(), b)
			if err != nil {
				t.Error(err)
				return
			}
			refs[i] = r
			if _, err := h.Run(context.Background(), b, Schematic{}, 10_000); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if profiles[i] != profiles[0] {
			t.Fatalf("goroutine %d got a different profile object", i)
		}
		if refs[i] != refs[0] {
			t.Fatalf("goroutine %d got a different reference object", i)
		}
	}
	cs := h.CacheStats()
	if cs.ProfileMisses != 1 {
		t.Errorf("profile misses = %d, want 1", cs.ProfileMisses)
	}
	if cs.RefMisses != 1 {
		t.Errorf("reference misses = %d, want 1", cs.RefMisses)
	}
	if cs.CellRefMisses != 1 {
		t.Errorf("cell-ref misses = %d, want 1", cs.CellRefMisses)
	}
}

// TestRunReportNDJSON checks the observability pipeline: every grid cell
// yields one NDJSON record with the phase timings and emulator counters.
func TestRunReportNDJSON(t *testing.T) {
	h := NewHarness()
	h.ProfileRuns = 2
	h.Jobs = 4
	report := h.StartReport()
	cells := cheapGrid(t)
	if _, err := h.RunGrid(context.Background(), "ndjson-test", cells); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(cells) {
		t.Fatalf("got %d NDJSON lines, want %d", len(lines), len(cells))
	}
	for _, line := range lines {
		var rec CellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if rec.Experiment != "ndjson-test" || rec.Bench == "" || rec.Technique == "" || rec.TBPF == 0 {
			t.Errorf("incomplete record: %q", line)
		}
		if rec.WallMS <= 0 {
			t.Errorf("%s/%s: wall time missing", rec.Bench, rec.Technique)
		}
		if rec.Completed && (rec.Steps <= 0 || rec.EnergyTotalNJ <= 0) {
			t.Errorf("%s/%s: counters missing on completed cell: %q", rec.Bench, rec.Technique, line)
		}
	}
	// Records must come back sorted by (experiment, bench, technique, TBPF).
	for i := 1; i < len(lines); i++ {
		var a, b CellRecord
		_ = json.Unmarshal([]byte(lines[i-1]), &a)
		_ = json.Unmarshal([]byte(lines[i]), &b)
		ka := a.Bench + "\x00" + a.Technique
		kb := b.Bench + "\x00" + b.Technique
		if ka > kb || (ka == kb && a.TBPF >= b.TBPF) {
			t.Errorf("records out of order at line %d", i)
		}
	}
	// The summary must mention the cell count and cache traffic.
	var sum bytes.Buffer
	report.Summary(&sum, h)
	if !strings.Contains(sum.String(), "cells") || !strings.Contains(sum.String(), "caches:") {
		t.Errorf("summary incomplete:\n%s", sum.String())
	}
}
