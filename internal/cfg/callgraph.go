package cfg

import (
	"fmt"
	"sort"

	"schematic/internal/ir"
)

// CallGraph records the static call relation of a module. The IR forbids
// recursion (ir.Verify rejects it, following the paper III-B1), so the
// graph is a DAG and a reverse topological order — callees before callers —
// always exists; SCHEMATIC analyzes functions in that order.
type CallGraph struct {
	// Callees maps each function to the distinct functions it calls,
	// in first-call order.
	Callees map[*ir.Func][]*ir.Func
	// Callers is the inverse relation.
	Callers map[*ir.Func][]*ir.Func
	// CallSites counts the static call instructions from caller to callee.
	CallSites map[[2]*ir.Func]int
}

// BuildCallGraph scans the module's call instructions.
func BuildCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{
		Callees:   map[*ir.Func][]*ir.Func{},
		Callers:   map[*ir.Func][]*ir.Func{},
		CallSites: map[[2]*ir.Func]int{},
	}
	for _, f := range m.Funcs {
		seen := map[*ir.Func]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				c, ok := in.(*ir.Call)
				if !ok {
					continue
				}
				cg.CallSites[[2]*ir.Func{f, c.Callee}]++
				if !seen[c.Callee] {
					seen[c.Callee] = true
					cg.Callees[f] = append(cg.Callees[f], c.Callee)
					cg.Callers[c.Callee] = append(cg.Callers[c.Callee], f)
				}
			}
		}
	}
	return cg
}

// IsLeaf reports whether f calls no other function.
func (cg *CallGraph) IsLeaf(f *ir.Func) bool { return len(cg.Callees[f]) == 0 }

// ReverseTopo returns the module's functions with every callee before its
// callers — the traversal order of the paper's function handling (III-B1).
// The order is deterministic. An error is returned if the graph has a cycle
// (which ir.Verify should already have rejected).
func (cg *CallGraph) ReverseTopo(m *ir.Module) ([]*ir.Func, error) {
	indeg := map[*ir.Func]int{}
	for _, f := range m.Funcs {
		indeg[f] = len(cg.Callees[f])
	}
	ready := make([]*ir.Func, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		if indeg[f] == 0 {
			ready = append(ready, f)
		}
	}
	sortFuncs(ready)
	var order []*ir.Func
	for len(ready) > 0 {
		f := ready[0]
		ready = ready[1:]
		order = append(order, f)
		var newly []*ir.Func
		for _, caller := range cg.Callers[f] {
			indeg[caller]--
			if indeg[caller] == 0 {
				newly = append(newly, caller)
			}
		}
		sortFuncs(newly)
		ready = append(ready, newly...)
	}
	if len(order) != len(m.Funcs) {
		return nil, fmt.Errorf("cfg: call graph of %s has a cycle", m.Name)
	}
	return order, nil
}

func sortFuncs(fs []*ir.Func) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Name < fs[j].Name })
}
