package cfg

import (
	"testing"

	"schematic/internal/ir"
)

// diamondSrc: entry -> {b, c} -> d, with a self-contained loop in d.
const diamondSrc = `module t
global x

func void main() regs 4 {
entry:
  r0 = const 1
  br r0, b, c
b:
  store x, r0
  jmp d
c:
  store x, r0
  jmp d
d:
  r1 = load x
  r2 = const 10
  r3 = lt r1, r2
  br r3, d, exit
exit:
  ret
}
`

// nestedSrc has a doubly-nested loop plus function calls.
const nestedSrc = `module t2
global a[4]

func int leaf(v) regs 2 {
entry:
  r1 = const 2
  r1 = mul r0, r1
  ret r1
}

func int mid(v) regs 2 {
entry:
  r1 = call leaf(r0)
  ret r1
}

func void main() regs 10 {
  local i
  local j
entry:
  r0 = const 0
  store i, r0
  jmp outer
outer:
  r1 = load i
  r2 = const 4
  r3 = lt r1, r2
  br r3, innerInit, done
innerInit:
  r4 = const 0
  store j, r4
  jmp inner
inner:
  r5 = load j
  r6 = const 4
  r7 = lt r5, r6
  br r7, innerBody, outerLatch
innerBody:
  r8 = call mid(r5)
  store a[r5], r8
  r9 = const 1
  r5 = add r5, r9
  store j, r5
  jmp inner
outerLatch:
  r9 = const 1
  r1 = add r1, r9
  store i, r1
  jmp outer
done:
  ret
}
`

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestDominators(t *testing.T) {
	m := mustParse(t, diamondSrc)
	f := m.FuncByName("main")
	dom := Dominators(f)
	get := f.BlockByName

	if dom.Idom(get("entry")) != nil {
		t.Errorf("entry idom should be nil")
	}
	for _, name := range []string{"b", "c", "d"} {
		if id := dom.Idom(get(name)); id != get("entry") {
			t.Errorf("idom(%s) = %v, want entry", name, id)
		}
	}
	if id := dom.Idom(get("exit")); id != get("d") {
		t.Errorf("idom(exit) = %v, want d", id)
	}
	if !dom.Dominates(get("entry"), get("exit")) {
		t.Errorf("entry should dominate exit")
	}
	if dom.Dominates(get("b"), get("d")) {
		t.Errorf("b should not dominate d")
	}
	if !dom.Dominates(get("d"), get("d")) {
		t.Errorf("dominance should be reflexive")
	}
}

func TestSelfLoop(t *testing.T) {
	m := mustParse(t, diamondSrc)
	f := m.FuncByName("main")
	dom := Dominators(f)
	lf := Loops(f, dom)
	if len(lf.All) != 1 {
		t.Fatalf("loops = %d, want 1", len(lf.All))
	}
	l := lf.All[0]
	if l.Header.Name != "d" || l.Latch() == nil || l.Latch().Name != "d" {
		t.Errorf("self loop header/latch wrong: %v", l)
	}
	if len(l.Blocks) != 1 {
		t.Errorf("self loop body = %d blocks, want 1", len(l.Blocks))
	}
}

func TestNestedLoops(t *testing.T) {
	m := mustParse(t, nestedSrc)
	f := m.FuncByName("main")
	dom := Dominators(f)
	lf := Loops(f, dom)
	if len(lf.All) != 2 {
		t.Fatalf("loops = %d, want 2", len(lf.All))
	}
	outer := lf.HeaderLoop(f.BlockByName("outer"))
	inner := lf.HeaderLoop(f.BlockByName("inner"))
	if outer == nil || inner == nil {
		t.Fatalf("missing loops: outer=%v inner=%v", outer, inner)
	}
	if inner.Parent != outer {
		t.Errorf("inner.Parent = %v, want outer", inner.Parent)
	}
	if outer.Parent != nil {
		t.Errorf("outer should be top level")
	}
	if inner.Depth() != 2 || outer.Depth() != 1 {
		t.Errorf("depths = %d,%d want 2,1", inner.Depth(), outer.Depth())
	}
	if !outer.Contains(f.BlockByName("innerBody")) {
		t.Errorf("outer should contain innerBody")
	}
	if inner.Contains(f.BlockByName("outerLatch")) {
		t.Errorf("inner should not contain outerLatch")
	}
	if l := lf.LoopOf(f.BlockByName("innerBody")); l != inner {
		t.Errorf("LoopOf(innerBody) = %v, want inner", l)
	}
	if l := lf.LoopOf(f.BlockByName("entry")); l != nil {
		t.Errorf("LoopOf(entry) = %v, want nil", l)
	}
	bu := lf.BottomUp()
	if bu[0] != inner || bu[1] != outer {
		t.Errorf("BottomUp order wrong")
	}
	if lat := outer.Latch(); lat == nil || lat.Name != "outerLatch" {
		t.Errorf("outer latch = %v", lat)
	}
}

func TestBackEdges(t *testing.T) {
	m := mustParse(t, nestedSrc)
	f := m.FuncByName("main")
	dom := Dominators(f)
	bes := BackEdges(f, dom)
	if len(bes) != 2 {
		t.Fatalf("back edges = %d, want 2", len(bes))
	}
	got := map[string]bool{}
	for _, e := range bes {
		got[e.String()] = true
	}
	if !got["innerBody->inner"] || !got["outerLatch->outer"] {
		t.Errorf("back edges = %v", got)
	}
}

func TestCallGraph(t *testing.T) {
	m := mustParse(t, nestedSrc)
	cg := BuildCallGraph(m)
	mainF := m.FuncByName("main")
	midF := m.FuncByName("mid")
	leafF := m.FuncByName("leaf")

	if !cg.IsLeaf(leafF) || cg.IsLeaf(mainF) || cg.IsLeaf(midF) {
		t.Errorf("leaf detection wrong")
	}
	if n := cg.CallSites[[2]*ir.Func{mainF, midF}]; n != 1 {
		t.Errorf("call sites main->mid = %d, want 1", n)
	}
	order, err := cg.ReverseTopo(m)
	if err != nil {
		t.Fatalf("ReverseTopo: %v", err)
	}
	pos := map[string]int{}
	for i, f := range order {
		pos[f.Name] = i
	}
	if pos["leaf"] > pos["mid"] || pos["mid"] > pos["main"] {
		t.Errorf("reverse topo order wrong: %v", pos)
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	src := `module u
func void main() regs 1 {
entry:
  ret
island:
  jmp island
}
`
	m := mustParse(t, src)
	f := m.FuncByName("main")
	dom := Dominators(f)
	island := f.BlockByName("island")
	if dom.Dominates(f.Entry(), island) {
		t.Errorf("entry should not dominate unreachable block")
	}
	if dom.Idom(island) != nil {
		t.Errorf("unreachable block should have no idom")
	}
}
