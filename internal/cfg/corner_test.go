package cfg

import (
	"strings"
	"testing"

	"schematic/internal/ir"
)

func block(t *testing.T, f *ir.Func, name string) *ir.Block {
	t.Helper()
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("no block %q", name)
	return nil
}

// irreducibleSrc: entry branches into the middle of a cycle (b <-> c), so
// the cycle has two entries and no single header — the classic
// irreducible shape a structured front end can never emit.
const irreducibleSrc = `module t
global x

func void main() regs 2 {
entry:
  r0 = const 1
  br r0, b, c
b:
  store x, r0
  br r0, c, exit
c:
  r1 = const 2
  br r1, b, exit
exit:
  ret
}
`

func TestCheckReducibleRejectsIrreducible(t *testing.T) {
	m := ir.MustParse(irreducibleSrc)
	err := CheckReducible(m.Funcs[0])
	if err == nil {
		t.Fatal("irreducible CFG accepted")
	}
	if !strings.Contains(err.Error(), "irreducible") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
}

func TestCheckReducibleAcceptsNaturalLoops(t *testing.T) {
	// A garden-variety natural loop (back edge to a dominating header)
	// must pass: CheckReducible removes back edges, not loops.
	const src = `module t
global x

func void main() regs 2 {
entry:
  r0 = const 4
  jmp head
head:
  r1 = sub r0, r0
  br r1, body, exit
body:
  store x, r1
  jmp head
exit:
  ret
}
`
	m := ir.MustParse(src)
	if err := CheckReducible(m.Funcs[0]); err != nil {
		t.Fatalf("natural loop rejected: %v", err)
	}
}

// tripleLoopSrc nests three natural loops: h1 > h2 > h3.
const tripleLoopSrc = `module t
global x

func void main() regs 2 {
entry:
  r0 = const 1
  jmp h1
h1:
  br r0, h2, exit
h2:
  br r0, h3, l1
h3:
  store x, r0
  br r0, h3, l2
l2:
  jmp h2
l1:
  jmp h1
exit:
  ret
}
`

func TestLoopsTripleNesting(t *testing.T) {
	m := ir.MustParse(tripleLoopSrc)
	f := m.Funcs[0]
	dom := Dominators(f)
	lf := Loops(f, dom)
	if len(lf.All) != 3 {
		t.Fatalf("found %d loops, want 3: %v", len(lf.All), lf.All)
	}
	want := map[string]int{"h1": 1, "h2": 2, "h3": 3}
	for _, l := range lf.All {
		d, ok := want[l.Header.Name]
		if !ok {
			t.Fatalf("unexpected loop header %s", l.Header.Name)
		}
		if l.Depth() != d {
			t.Errorf("loop %s: depth %d, want %d", l.Header.Name, l.Depth(), d)
		}
	}
	// Nesting must be reflected structurally, not just in depths.
	h3 := lf.HeaderLoop(block(t, f, "h3"))
	h2 := lf.HeaderLoop(block(t, f, "h2"))
	h1 := lf.HeaderLoop(block(t, f, "h1"))
	if h3.Parent != h2 || h2.Parent != h1 || h1.Parent != nil {
		t.Fatalf("parent chain broken: h3.Parent=%v h2.Parent=%v h1.Parent=%v", h3.Parent, h2.Parent, h1.Parent)
	}
	// The outer loop body contains every inner block.
	for _, name := range []string{"h1", "h2", "h3", "l1", "l2"} {
		if !h1.Contains(block(t, f, name)) {
			t.Errorf("outer loop misses block %s", name)
		}
	}
	if err := CheckReducible(f); err != nil {
		t.Fatalf("nested natural loops rejected: %v", err)
	}
}

// diamondBackedgeSrc is a diamond (head -> {left, right} -> merge) whose
// merge block jumps back to the head: one natural loop whose body is the
// whole diamond and whose latch merges two paths.
const diamondBackedgeSrc = `module t
global x

func void main() regs 2 {
entry:
  r0 = const 1
  jmp head
head:
  br r0, left, right
left:
  store x, r0
  jmp merge
right:
  r1 = add r0, r0
  jmp merge
merge:
  br r0, head, exit
exit:
  ret
}
`

func TestDiamondWithBackedge(t *testing.T) {
	m := ir.MustParse(diamondBackedgeSrc)
	f := m.Funcs[0]
	dom := Dominators(f)

	head := block(t, f, "head")
	merge := block(t, f, "merge")
	idoms := map[string]string{
		"head": "entry", "left": "head", "right": "head",
		"merge": "head", "exit": "merge",
	}
	for name, want := range idoms {
		got := dom.Idom(block(t, f, name))
		if got == nil || got.Name != want {
			t.Errorf("idom(%s) = %v, want %s", name, got, want)
		}
	}
	// merge joins two paths, so neither arm dominates it — only the
	// diamond's head (and entry) do.
	for _, name := range []string{"left", "right"} {
		if dom.Dominates(block(t, f, name), merge) {
			t.Errorf("%s must not dominate merge", name)
		}
	}
	if !dom.Dominates(head, merge) {
		t.Error("head must dominate merge")
	}

	back := BackEdges(f, dom)
	if len(back) != 1 || back[0].From != merge || back[0].To != head {
		t.Fatalf("back edges %v, want exactly merge->head", back)
	}

	lf := Loops(f, dom)
	if len(lf.All) != 1 {
		t.Fatalf("found %d loops, want 1", len(lf.All))
	}
	l := lf.All[0]
	if l.Header != head || l.Latch() != merge || l.Depth() != 1 {
		t.Fatalf("loop %v: header %s latch %v depth %d", l, l.Header.Name, l.Latch(), l.Depth())
	}
	for _, name := range []string{"head", "left", "right", "merge"} {
		if !l.Contains(block(t, f, name)) {
			t.Errorf("loop misses block %s", name)
		}
	}
	if l.Contains(block(t, f, "entry")) || l.Contains(block(t, f, "exit")) {
		t.Error("loop leaked outside the diamond")
	}
	if err := CheckReducible(f); err != nil {
		t.Fatalf("diamond with backedge rejected: %v", err)
	}
}
