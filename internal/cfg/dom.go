// Package cfg provides the control-flow analyses SCHEMATIC relies on:
// dominator trees, natural loop detection with a loop-nesting tree
// (paper, III-B2), and the function call graph with its reverse
// topological order (paper, III-B1).
package cfg

import (
	"schematic/internal/ir"
)

// DomTree holds the dominator relation of a function's CFG, computed with
// the Cooper–Harvey–Kennedy iterative algorithm.
type DomTree struct {
	fn    *ir.Func
	rpo   []*ir.Block
	index map[*ir.Block]int // position in rpo
	idom  []int             // immediate dominator, by rpo index; entry -> itself
}

// Dominators computes the dominator tree of f. Unreachable blocks have no
// dominator information and report themselves as undominated.
func Dominators(f *ir.Func) *DomTree {
	rpo := ir.ReversePostorder(f)
	// Trim unreachable tail: ReversePostorder appends unreachable blocks
	// after the reachable ones.
	reach := reachableCount(f, rpo)
	t := &DomTree{
		fn:    f,
		rpo:   rpo,
		index: make(map[*ir.Block]int, len(rpo)),
		idom:  make([]int, len(rpo)),
	}
	for i, b := range rpo {
		t.index[b] = i
		t.idom[i] = -1
	}
	t.idom[0] = 0
	for changed := true; changed; {
		changed = false
		for i := 1; i < reach; i++ {
			b := rpo[i]
			newIdom := -1
			for _, p := range b.Preds() {
				pi, ok := t.index[p]
				if !ok || t.idom[pi] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = pi
				} else {
					newIdom = t.intersect(pi, newIdom)
				}
			}
			if newIdom != -1 && t.idom[i] != newIdom {
				t.idom[i] = newIdom
				changed = true
			}
		}
	}
	return t
}

func reachableCount(f *ir.Func, rpo []*ir.Block) int {
	seen := map[*ir.Block]bool{}
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				visit(s)
			}
		}
	}
	visit(f.Entry())
	n := 0
	for _, b := range rpo {
		if seen[b] {
			n++
		}
	}
	return n
}

func (t *DomTree) intersect(a, b int) int {
	for a != b {
		for a > b {
			a = t.idom[a]
		}
		for b > a {
			b = t.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b, or nil for the entry block and
// unreachable blocks.
func (t *DomTree) Idom(b *ir.Block) *ir.Block {
	i, ok := t.index[b]
	if !ok || i == 0 || t.idom[i] == -1 {
		return nil
	}
	return t.rpo[t.idom[i]]
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	ai, aok := t.index[a]
	bi, bok := t.index[b]
	if !aok || !bok {
		return false
	}
	if t.idom[bi] == -1 && bi != 0 {
		return false // b unreachable
	}
	for {
		if bi == ai {
			return true
		}
		if bi == 0 {
			return false
		}
		next := t.idom[bi]
		if next == -1 || next == bi {
			return false
		}
		bi = next
	}
}
