package cfg

import (
	"fmt"
	"sort"

	"schematic/internal/ir"
)

// Loop is a natural loop: a strongly connected region with a single entry
// point (the header). Following the paper's presentation (III-B2) each loop
// is assumed to have a single back-edge; the MiniC frontend generates loops
// of exactly that shape, and detection merges multiple back-edges to the
// same header into one loop and records every latch.
type Loop struct {
	Header  *ir.Block
	Latches []*ir.Block // sources of back-edges to Header
	Blocks  map[*ir.Block]bool

	Parent   *Loop
	Children []*Loop

	// MaxIter is the annotated maximum iteration count (@max in MiniC,
	// carried by an ir.LoopBound in the header block), 0 when unknown.
	// Algorithm 1 compares numit against it.
	MaxIter int
}

// Latch returns the single latch when the loop has exactly one back-edge,
// else nil.
func (l *Loop) Latch() *ir.Block {
	if len(l.Latches) == 1 {
		return l.Latches[0]
	}
	return nil
}

// Contains reports whether the loop body includes b.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// Depth returns the nesting depth (outermost = 1).
func (l *Loop) Depth() int {
	d := 0
	for p := l; p != nil; p = p.Parent {
		d++
	}
	return d
}

func (l *Loop) String() string {
	return fmt.Sprintf("loop(header=%s, %d blocks, depth %d)",
		l.Header.Name, len(l.Blocks), l.Depth())
}

// LoopForest holds every natural loop of a function with the nesting
// relation resolved.
type LoopForest struct {
	// Top lists outermost loops in header block order.
	Top []*Loop
	// All lists every loop, outer before inner (preorder of the tree).
	All []*Loop
	// byHeader maps a header block to its loop.
	byHeader map[*ir.Block]*Loop
}

// LoopOf returns the innermost loop containing b, or nil.
func (lf *LoopForest) LoopOf(b *ir.Block) *Loop {
	var best *Loop
	for _, l := range lf.All {
		if l.Contains(b) && (best == nil || len(l.Blocks) < len(best.Blocks)) {
			best = l
		}
	}
	return best
}

// HeaderLoop returns the loop whose header is b, or nil.
func (lf *LoopForest) HeaderLoop(b *ir.Block) *Loop { return lf.byHeader[b] }

// BottomUp returns all loops ordered inner-before-outer, the traversal
// order of the paper's loop analysis (III-B2).
func (lf *LoopForest) BottomUp() []*Loop {
	out := make([]*Loop, len(lf.All))
	copy(out, lf.All)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Loops detects the natural loops of f and builds the nesting forest.
func Loops(f *ir.Func, dom *DomTree) *LoopForest {
	lf := &LoopForest{byHeader: map[*ir.Block]*Loop{}}
	// Find back-edges t->h where h dominates t.
	for _, e := range ir.Edges(f) {
		if !dom.Dominates(e.To, e.From) {
			continue
		}
		l := lf.byHeader[e.To]
		if l == nil {
			l = &Loop{Header: e.To, Blocks: map[*ir.Block]bool{e.To: true}}
			lf.byHeader[e.To] = l
		}
		l.Latches = append(l.Latches, e.From)
		// Body = blocks that reach the latch backwards without crossing the
		// header.
		var stack []*ir.Block
		if !l.Blocks[e.From] {
			l.Blocks[e.From] = true
			stack = append(stack, e.From)
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range b.Preds() {
				if !l.Blocks[p] {
					l.Blocks[p] = true
					stack = append(stack, p)
				}
			}
		}
	}
	var all []*Loop
	for _, l := range lf.byHeader {
		all = append(all, l)
	}
	// Deterministic order: by header block index, outer (bigger) first when
	// nested.
	sort.Slice(all, func(i, j int) bool {
		if len(all[i].Blocks) != len(all[j].Blocks) {
			return len(all[i].Blocks) > len(all[j].Blocks)
		}
		return all[i].Header.Index < all[j].Header.Index
	})
	// Nesting: parent = smallest loop strictly containing the header.
	for _, l := range all {
		var best *Loop
		for _, o := range all {
			if o == l || !o.Contains(l.Header) || len(o.Blocks) <= len(l.Blocks) {
				continue
			}
			if best == nil || len(o.Blocks) < len(best.Blocks) {
				best = o
			}
		}
		l.Parent = best
	}
	for _, l := range all {
		if l.Parent != nil {
			l.Parent.Children = append(l.Parent.Children, l)
		} else {
			lf.Top = append(lf.Top, l)
		}
		for _, in := range l.Header.Instrs {
			if lb, ok := in.(*ir.LoopBound); ok {
				l.MaxIter = lb.Max
				break
			}
		}
	}
	// Preorder of the forest for All (outer before inner).
	var walk func(l *Loop)
	walk = func(l *Loop) {
		lf.All = append(lf.All, l)
		sort.Slice(l.Children, func(i, j int) bool {
			return l.Children[i].Header.Index < l.Children[j].Header.Index
		})
		for _, c := range l.Children {
			walk(c)
		}
	}
	sort.Slice(lf.Top, func(i, j int) bool {
		return lf.Top[i].Header.Index < lf.Top[j].Header.Index
	})
	for _, l := range lf.Top {
		walk(l)
	}
	return lf
}

// BackEdges returns the back-edges of f (edges whose target dominates their
// source). These are excluded when analyzing one loop iteration
// (Algorithm 1, step 1).
func BackEdges(f *ir.Func, dom *DomTree) []ir.Edge {
	var out []ir.Edge
	for _, e := range ir.Edges(f) {
		if dom.Dominates(e.To, e.From) {
			out = append(out, e)
		}
	}
	return out
}
