package cfg

import (
	"fmt"

	"schematic/internal/ir"
)

// CheckReducible verifies that a function's CFG is reducible: every cycle
// must be a natural loop, entered only through its header. The loop
// forest, loop-bound propagation, and checkpoint placement all assume
// this shape (MiniC lowering only produces it), but hand-written textual
// IR can encode irreducible regions — multi-entry cycles whose retreating
// edges target a block that does not dominate their source. Those would
// be silently invisible to Loops, so the translation validator rejects
// them up front.
//
// The test is the classic one: delete every back edge (target dominates
// source); a reducible CFG must then be acyclic.
func CheckReducible(f *ir.Func) error {
	dom := Dominators(f)
	succs := map[*ir.Block][]*ir.Block{}
	for _, e := range ir.Edges(f) {
		if dom.Dominates(e.To, e.From) {
			continue // natural back edge
		}
		succs[e.From] = append(succs[e.From], e.To)
	}
	// Cycle detection over the forward graph by three-color DFS.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*ir.Block]int{}
	var visit func(b *ir.Block) *ir.Block
	visit = func(b *ir.Block) *ir.Block {
		color[b] = gray
		for _, s := range succs[b] {
			switch color[s] {
			case gray:
				return s
			case white:
				if bad := visit(s); bad != nil {
					return bad
				}
			}
		}
		color[b] = black
		return nil
	}
	for _, b := range f.Blocks {
		if color[b] != white {
			continue
		}
		if bad := visit(b); bad != nil {
			return fmt.Errorf("cfg: %s: irreducible control flow: block %q is part of a cycle entered outside its header", f.Name, bad.Name)
		}
	}
	return nil
}
