// Package cli holds the small helpers shared by the command-line tools:
// program loading (MiniC source or textual IR), comma-list parsing,
// benchmark selection, file-writing plumbing, and uniform error exits.
// Every cmd/ binary used to grow its own copy of these; they live here
// once so the daemon and the one-shot tools agree on the details (e.g.
// how a .ir file is recognized, or what "all"/"none" mean in a
// benchmark spec).
package cli

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"schematic/internal/bench"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

// LoadProgram reads a program from path and returns the compiled module
// plus the program name and raw source text. Files ending in .ir — or
// whose content starts with "module " — are parsed as textual IR and
// verified; everything else is compiled as MiniC.
func LoadProgram(path string) (m *ir.Module, name, src string, err error) {
	srcBytes, err := os.ReadFile(path)
	if err != nil {
		return nil, "", "", err
	}
	src = string(srcBytes)
	name = ProgramName(path)
	if IsIRSource(path, src) {
		m, err = ir.Parse(src)
		if err != nil {
			return nil, "", "", err
		}
		if err = ir.Verify(m); err != nil {
			return nil, "", "", err
		}
		return m, name, src, nil
	}
	m, err = minic.Compile(name, src)
	if err != nil {
		return nil, "", "", err
	}
	return m, name, src, nil
}

// IsIRSource reports whether a program is textual IR rather than MiniC,
// by extension or by its leading "module " keyword.
func IsIRSource(path, src string) bool {
	return strings.HasSuffix(path, ".ir") || strings.HasPrefix(strings.TrimSpace(src), "module ")
}

// ProgramName derives a program name from its file path (basename with
// the .mc/.ir extension stripped).
func ProgramName(path string) string {
	name := filepath.Base(path)
	name = strings.TrimSuffix(name, ".mc")
	name = strings.TrimSuffix(name, ".ir")
	return name
}

// SplitList splits a comma-separated list, trimming blanks and dropping
// empty elements.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// BenchNames resolves a benchmark spec to benchmark names: "all" selects
// the whole bundled suite in suite order, "none" or "" selects nothing,
// and anything else is a comma-separated name list validated against the
// suite.
func BenchNames(spec string) ([]string, error) {
	switch spec {
	case "none", "":
		return nil, nil
	case "all":
		return append([]string(nil), bench.Order...), nil
	}
	names := SplitList(spec)
	for _, n := range names {
		if _, err := bench.ByName(n); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// WriteTo creates path and streams write's output into it, closing the
// file even on a write error.
func WriteTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Fail returns the standard "tool: error, exit(code)" handler the
// one-shot commands share. The returned function is a no-op on nil.
func Fail(tool string, code int) func(error) {
	return func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
			os.Exit(code)
		}
	}
}
