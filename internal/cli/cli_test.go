package cli

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"schematic/internal/bench"
)

func TestSplitList(t *testing.T) {
	got := SplitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SplitList: got %v, want %v", got, want)
	}
	if out := SplitList(""); out != nil {
		t.Fatalf("SplitList(\"\"): got %v, want nil", out)
	}
}

func TestBenchNames(t *testing.T) {
	all, err := BenchNames("all")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, bench.Order) {
		t.Fatalf("BenchNames(all): got %v, want %v", all, bench.Order)
	}
	none, err := BenchNames("none")
	if err != nil || none != nil {
		t.Fatalf("BenchNames(none): got %v, %v", none, err)
	}
	two, err := BenchNames("crc, fft")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(two, []string{"crc", "fft"}) {
		t.Fatalf("BenchNames(crc,fft): got %v", two)
	}
	if _, err := BenchNames("nope"); err == nil {
		t.Fatal("BenchNames: unknown benchmark accepted")
	}
}

func TestLoadProgram(t *testing.T) {
	dir := t.TempDir()
	mc := filepath.Join(dir, "tiny.mc")
	if err := os.WriteFile(mc, []byte("func void main() { print(7); }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, name, _, err := LoadProgram(mc)
	if err != nil {
		t.Fatal(err)
	}
	if name != "tiny" || m == nil {
		t.Fatalf("LoadProgram(.mc): name=%q module=%v", name, m)
	}

	// Round-trip the module through the textual IR format.
	irPath := filepath.Join(dir, "tiny.ir")
	if err := os.WriteFile(irPath, []byte(m.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	m2, name2, _, err := LoadProgram(irPath)
	if err != nil {
		t.Fatal(err)
	}
	if name2 != "tiny" || m2 == nil {
		t.Fatalf("LoadProgram(.ir): name=%q module=%v", name2, m2)
	}
}
