package cli

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"schematic/internal/emulator"
	"schematic/internal/harvest"
)

// PowerSpec is a parsed power-schedule specification — the one grammar
// every surface (iemu -power, crashhunt -power, schematicd request
// options) shares:
//
//	spec    = member *( "+" member )
//	member  = kind [ ":" params ]
//	params  = param *( "," param )
//	param   = key "=" value | value        (bare value only for trace/csv files)
//
// Kinds: exhaustion, periodic, stride, random (synthetic schedules);
// solar, rf, piezo, duty (harvested environments behind a capacitor);
// trace (a recorded NDJSON trace, replayed); csv (an imported
// time-vs-power measurement behind a capacitor). Harvested members
// carry their own physics; purely synthetic members get the built-in
// exhaustion physics composed in automatically, matching the
// emulator's default behavior.
//
// String() renders the canonical form — every parameter resolved and
// printed in a fixed order — so equal specs digest equally server-side.
type PowerSpec struct {
	members []powerMember
}

type powerMember struct {
	kind string
	// numeric params, resolved to their defaults at parse time
	num map[string]float64
	// file path for trace/csv members
	file string
}

// powerParams declares, per kind, the accepted numeric keys in
// canonical print order and their defaults. A default of 0 means
// "derived later" (cap from EB) and is omitted from the canonical form.
var powerParams = map[string][]struct {
	key     string
	def     float64
	intLike bool
}{
	"exhaustion": {},
	"periodic": {
		{"cycles", 40_000, true},
	},
	"stride": {
		{"n", 10_000, true},
		{"max", 0, true},
	},
	"random": {
		{"seed", 1, true},
		{"mean", 25_000, true},
		{"max", 0, true},
	},
	"solar": {
		{"seed", 1, true},
		{"peak", 0.8, false},
		{"period", 2_000_000, true},
		{"day", 0.5, false},
		{"cloud", 0.4, false},
		{"window", 40_000, true},
		{"cap", 0, false},
		{"restart", 1, false},
	},
	"rf": {
		{"seed", 1, true},
		{"power", 1.5, false},
		{"burst", 20_000, true},
		{"gap", 60_000, true},
		{"cap", 0, false},
		{"restart", 1, false},
	},
	"piezo": {
		{"peak", 0.6, false},
		{"period", 40_000, true},
		{"cap", 0, false},
		{"restart", 1, false},
	},
	"duty": {
		{"power", 1, false},
		{"period", 100_000, true},
		{"duty", 0.35, false},
		{"cap", 0, false},
		{"restart", 1, false},
	},
	"trace": {},
	"csv": {
		{"hz", 8e6, false},
		{"scale", 0, false},
		{"cap", 0, false},
		{"restart", 1, false},
	},
}

var harvestKinds = map[string]bool{"solar": true, "rf": true, "piezo": true, "duty": true, "csv": true}

// ParsePower parses a power-schedule spec. The empty string parses to
// an empty spec whose Build returns a nil schedule (the emulator's
// default exhaustion physics).
func ParsePower(spec string) (*PowerSpec, error) {
	ps := &PowerSpec{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return ps, nil
	}
	for _, raw := range strings.Split(spec, "+") {
		m, err := parseMember(strings.TrimSpace(raw))
		if err != nil {
			return nil, err
		}
		ps.members = append(ps.members, m)
	}
	return ps, nil
}

func parseMember(raw string) (powerMember, error) {
	kind, rest, _ := strings.Cut(raw, ":")
	kind = strings.ToLower(strings.TrimSpace(kind))
	params, ok := powerParams[kind]
	if !ok {
		known := make([]string, 0, len(powerParams))
		for k := range powerParams {
			known = append(known, k)
		}
		sort.Strings(known)
		return powerMember{}, fmt.Errorf("unknown power kind %q (known: %s)", kind, strings.Join(known, ", "))
	}
	m := powerMember{kind: kind, num: map[string]float64{}}
	for _, p := range params {
		m.num[p.key] = p.def
	}
	if kind == "trace" || kind == "csv" {
		// File members: the first (or file=) value is the path; the
		// remaining params, if any, are numeric.
		if rest == "" {
			return powerMember{}, fmt.Errorf("power kind %q needs a file: %s:path", kind, kind)
		}
		for i, part := range strings.Split(rest, ",") {
			key, val, hasEq := strings.Cut(part, "=")
			switch {
			case hasEq && key == "file":
				m.file = val
			case !hasEq && i == 0:
				m.file = part
			case hasEq:
				if err := m.setNum(key, val); err != nil {
					return powerMember{}, err
				}
			default:
				return powerMember{}, fmt.Errorf("power %s: want key=value, got %q", kind, part)
			}
		}
		if m.file == "" {
			return powerMember{}, fmt.Errorf("power kind %q needs a file", kind)
		}
		return m, nil
	}
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			key, val, hasEq := strings.Cut(part, "=")
			if !hasEq {
				return powerMember{}, fmt.Errorf("power %s: want key=value, got %q", kind, part)
			}
			if err := m.setNum(key, val); err != nil {
				return powerMember{}, err
			}
		}
	}
	return m, nil
}

func (m *powerMember) setNum(key, val string) error {
	key = strings.ToLower(strings.TrimSpace(key))
	if _, ok := m.num[key]; !ok {
		var known []string
		for _, p := range powerParams[m.kind] {
			known = append(known, p.key)
		}
		return fmt.Errorf("power %s: unknown parameter %q (known: %s)", m.kind, key, strings.Join(known, ", "))
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
	if err != nil {
		return fmt.Errorf("power %s: bad value for %s: %q", m.kind, key, val)
	}
	if f < 0 {
		return fmt.Errorf("power %s: %s must be non-negative", m.kind, key)
	}
	m.num[key] = f
	return nil
}

// Empty reports whether the spec selects the emulator's default
// physics (Build returns nil).
func (s *PowerSpec) Empty() bool { return len(s.members) == 0 }

// RequiresFile reports whether any member reads from the local
// filesystem (trace/csv) — which network surfaces must reject.
func (s *PowerSpec) RequiresFile() bool {
	for _, m := range s.members {
		if m.file != "" {
			return true
		}
	}
	return false
}

// Harvested reports whether any member carries harvested-capacitor
// physics (and therefore replaces the built-in exhaustion model).
func (s *PowerSpec) Harvested() bool {
	for _, m := range s.members {
		if harvestKinds[m.kind] {
			return true
		}
	}
	return false
}

// String renders the canonical spec: members in given order, every
// numeric parameter printed in fixed order, derived parameters
// (cap=0, max=0, scale=0) omitted.
func (s *PowerSpec) String() string {
	if s.Empty() {
		return ""
	}
	var parts []string
	for _, m := range s.members {
		var ps []string
		if m.file != "" {
			ps = append(ps, "file="+m.file)
		}
		for _, p := range powerParams[m.kind] {
			v := m.num[p.key]
			if v == 0 && (p.key == "cap" || p.key == "max" || p.key == "scale") {
				continue
			}
			if p.intLike {
				ps = append(ps, fmt.Sprintf("%s=%d", p.key, int64(v)))
			} else {
				// Plain decimal, never exponent form: "1e+06" would
				// collide with the "+" member separator on re-parse.
				ps = append(ps, p.key+"="+strconv.FormatFloat(v, 'f', -1, 64))
			}
		}
		if len(ps) == 0 {
			parts = append(parts, m.kind)
		} else {
			parts = append(parts, m.kind+":"+strings.Join(ps, ","))
		}
	}
	return strings.Join(parts, "+")
}

// Capacity returns the capacitor size a harvested member pins via
// cap=, or 0 when the capacity derives from the run's energy budget.
func (s *PowerSpec) Capacity() float64 {
	for _, m := range s.members {
		if harvestKinds[m.kind] && m.num["cap"] > 0 {
			return m.num["cap"]
		}
	}
	return 0
}

// Build constructs a fresh schedule for one run. eb is the run's
// energy budget, used as the default capacitor size for harvested
// members without an explicit cap=. An empty spec builds nil (the
// emulator's default physics). Build never reuses schedule state:
// call it once per run.
func (s *PowerSpec) Build(eb float64) (emulator.PowerSchedule, error) {
	if s.Empty() {
		return nil, nil
	}
	var scheds []emulator.PowerSchedule
	physics := false
	for _, m := range s.members {
		sched, selfPowered, err := m.build(eb)
		if err != nil {
			return nil, err
		}
		physics = physics || selfPowered
		scheds = append(scheds, sched)
	}
	if !physics {
		// Purely synthetic members (periodic, stride, random, trace
		// injections) run on top of the built-in exhaustion physics,
		// like the emulator default they augment.
		scheds = append([]emulator.PowerSchedule{emulator.Exhaustion()}, scheds...)
	}
	return emulator.Schedules(scheds...), nil
}

func (m *powerMember) capacitor(env harvest.Environment, eb float64) (emulator.PowerSchedule, error) {
	capacity := m.num["cap"]
	if capacity == 0 {
		capacity = eb
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("power %s: no capacitor size: give an energy budget or cap=<nJ>", m.kind)
	}
	return harvest.Capacitor{Env: env, Capacity: capacity, Restart: m.num["restart"]}.Schedule(), nil
}

func (m *powerMember) build(eb float64) (emulator.PowerSchedule, bool, error) {
	n := func(k string) int64 { return int64(m.num[k]) }
	switch m.kind {
	case "exhaustion":
		return emulator.Exhaustion(), true, nil
	case "periodic":
		return emulator.Periodic(n("cycles")), false, nil
	case "stride":
		return emulator.StrideSchedule(n("n"), int(n("max"))), false, nil
	case "random":
		return emulator.RandomSchedule(n("seed"), n("mean"), int(n("max"))), false, nil
	case "solar":
		sched, err := m.capacitor(harvest.Solar{
			Seed: n("seed"), Peak: m.num["peak"], Period: n("period"),
			Day: m.num["day"], Cloud: m.num["cloud"], Window: n("window"),
		}, eb)
		return sched, true, err
	case "rf":
		sched, err := m.capacitor(harvest.RF{
			Seed: n("seed"), Peak: m.num["power"], Burst: n("burst"), Gap: n("gap"),
		}, eb)
		return sched, true, err
	case "piezo":
		sched, err := m.capacitor(harvest.Piezo{Peak: m.num["peak"], Period: n("period")}, eb)
		return sched, true, err
	case "duty":
		sched, err := m.capacitor(harvest.Duty{
			Peak: m.num["power"], Period: n("period"), Frac: m.num["duty"],
		}, eb)
		return sched, true, err
	case "trace":
		tr, err := harvest.LoadTrace(m.file)
		if err != nil {
			return nil, false, err
		}
		// A replay is self-contained: it reproduces the recorded
		// physics' refusals itself.
		return tr.Schedule(), true, nil
	case "csv":
		env, err := harvest.ImportCSVFile(m.file, harvest.CSVOptions{
			Hz: m.num["hz"], Scale: m.num["scale"],
		})
		if err != nil {
			return nil, false, err
		}
		sched, err := m.capacitor(env, eb)
		return sched, true, err
	}
	return nil, false, fmt.Errorf("unknown power kind %q", m.kind)
}
