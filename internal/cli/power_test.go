package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/harvest"
)

func TestParsePowerCanonical(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"exhaustion", "exhaustion"},
		{"periodic", "periodic:cycles=40000"},
		{"periodic:cycles=5000", "periodic:cycles=5000"},
		{"stride:n=777", "stride:n=777"},
		{"random:seed=9,max=4", "random:seed=9,mean=25000,max=4"},
		{"solar", "solar:seed=1,peak=0.8,period=2000000,day=0.5,cloud=0.4,window=40000,restart=1"},
		{"solar:seed=7,cloud=0.9,cap=1200", "solar:seed=7,peak=0.8,period=2000000,day=0.5,cloud=0.9,window=40000,cap=1200,restart=1"},
		{"rf:power=2", "rf:seed=1,power=2,burst=20000,gap=60000,restart=1"},
		{"piezo", "piezo:peak=0.6,period=40000,restart=1"},
		{"duty:duty=0.2", "duty:power=1,period=100000,duty=0.2,restart=1"},
		{"duty+periodic:cycles=9000", "duty:power=1,period=100000,duty=0.35,restart=1+periodic:cycles=9000"},
		{"trace:foo.ndjson", "trace:file=foo.ndjson"},
		{"csv:file=p.csv,hz=1000000", "csv:file=p.csv,hz=1000000,restart=1"},
		{" Solar : seed=2 ", "solar:seed=2,peak=0.8,period=2000000,day=0.5,cloud=0.4,window=40000,restart=1"},
	}
	for _, tc := range cases {
		ps, err := ParsePower(tc.in)
		if err != nil {
			t.Fatalf("ParsePower(%q): %v", tc.in, err)
		}
		if got := ps.String(); got != tc.want {
			t.Fatalf("ParsePower(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// Canonical forms must be fixed points.
		again, err := ParsePower(ps.String())
		if err != nil || again.String() != ps.String() {
			t.Fatalf("canonical form %q not a fixed point (%v)", ps.String(), err)
		}
	}
}

func TestParsePowerErrors(t *testing.T) {
	for _, bad := range []string{
		"warp",               // unknown kind
		"solar:bogus=1",      // unknown parameter
		"solar:seed",         // missing value
		"periodic:cycles=x",  // bad number
		"periodic:cycles=-5", // negative
		"trace",              // missing file
		"csv:hz=100",         // missing file
		"solar+nope",         // bad composition member
	} {
		if _, err := ParsePower(bad); err == nil {
			t.Fatalf("ParsePower(%q) accepted", bad)
		}
	}
}

func TestPowerSpecFlags(t *testing.T) {
	for _, tc := range []struct {
		in                     string
		file, harvested, empty bool
	}{
		{"", false, false, true},
		{"exhaustion", false, false, false},
		{"periodic", false, false, false},
		{"solar", false, true, false},
		{"trace:x.ndjson", true, false, false},
		{"csv:x.csv", true, true, false},
		{"duty+stride:n=100", false, true, false},
	} {
		ps, err := ParsePower(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if ps.RequiresFile() != tc.file || ps.Harvested() != tc.harvested || ps.Empty() != tc.empty {
			t.Fatalf("%q: file=%v harvested=%v empty=%v", tc.in, ps.RequiresFile(), ps.Harvested(), ps.Empty())
		}
	}
}

func TestPowerSpecBuild(t *testing.T) {
	// Empty spec: nil schedule (default physics).
	ps, _ := ParsePower("")
	if sched, err := ps.Build(1000); err != nil || sched != nil {
		t.Fatalf("empty build: %v %v", sched, err)
	}

	// Synthetic members get exhaustion physics composed in.
	ps, _ = ParsePower("periodic:cycles=5000")
	sched, err := ps.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	if name := sched.Name(); !strings.Contains(name, "exhaustion") || !strings.Contains(name, "periodic") {
		t.Fatalf("synthetic build name %q lacks composed exhaustion", name)
	}

	// Harvested members carry their own physics (no exhaustion).
	ps, _ = ParsePower("solar:seed=3")
	sched, err = ps.Build(2000)
	if err != nil {
		t.Fatal(err)
	}
	if name := sched.Name(); strings.Contains(name, "exhaustion") || !strings.Contains(name, "harvest(solar") {
		t.Fatalf("harvest build name %q", name)
	}

	// Harvested members need a capacitor size from somewhere.
	if _, err := ps.Build(0); err == nil {
		t.Fatal("harvest build without EB or cap= accepted")
	}
	ps, _ = ParsePower("solar:cap=1500")
	if ps.Capacity() != 1500 {
		t.Fatalf("Capacity() = %g", ps.Capacity())
	}
	if _, err := ps.Build(0); err != nil {
		t.Fatalf("cap= build: %v", err)
	}

	// Fresh instances per Build call.
	a, _ := ps.Build(0)
	b, _ := ps.Build(0)
	if a == b {
		t.Fatal("Build reused schedule state")
	}
}

func TestPowerSpecBuildTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ndjson")
	rec := harvest.NewRecorder(nil, 500)
	rec.Fail(emulator.Probe{Kind: emulator.PointCharge, Occurrence: 1, Energy: 1000, Remaining: 2})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Trace().Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ps, err := ParsePower("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := ps.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sched.Name(), "replay(") {
		t.Fatalf("trace build name %q", sched.Name())
	}
	if _, err := ParsePower("trace:/does/not/exist.ndjson"); err != nil {
		t.Fatalf("parse should not touch the filesystem: %v", err)
	}
	ps, _ = ParsePower("trace:/does/not/exist.ndjson")
	if _, err := ps.Build(0); err == nil {
		t.Fatal("build of missing trace accepted")
	}
}
