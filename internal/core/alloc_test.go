package schematic

import (
	"strings"
	"testing"

	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// mainAllocOf returns the union of main's block allocations by name.
func mainAllocOf(m *ir.Module) map[string]bool {
	out := map[string]bool{}
	for _, b := range m.FuncByName("main").Blocks {
		for v, in := range b.Alloc {
			if in {
				out[v.Name] = true
			}
		}
	}
	return out
}

// Eq. 1: with limited VM, the variable with the higher gain/size ratio
// wins the space.
func TestAllocationPrefersHotVariables(t *testing.T) {
	src := `
input int data[16];
int hot;
int cold;

func void main() {
  int i;
  hot = 0;
  cold = 0;
  for (i = 0; i < 64; i = i + 1) @max(64) {
    hot = hot + data[i % 16];
  }
  cold = hot + 1;
  print(hot);
  print(cold);
}
`
	m := minic.MustCompile("t", src)
	prof, err := trace.Collect(m, trace.Options{Runs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// VM fits exactly one scalar beyond the loop counter: 4 bytes.
	if _, err := Apply(m, Config{
		Model: energy.MSP430FR5969(), Budget: 8000, VMSize: 4, Profile: prof,
	}); err != nil {
		t.Fatal(err)
	}
	alloc := mainAllocOf(m)
	if !alloc["hot"] && !alloc["i"] {
		t.Errorf("neither hot nor the loop counter made it to VM: %v", alloc)
	}
	if alloc["cold"] {
		t.Errorf("cold (2 accesses) was allocated over hot (129 accesses): %v", alloc)
	}
}

// Eq. 1's downside term: a variable accessed once cannot recoup its
// save/restore overhead and must stay in NVM even with ample VM.
func TestAllocationRejectsUnprofitableVariables(t *testing.T) {
	src := `
int once;
int loopv;

func void main() {
  int i;
  once = 42;
  loopv = 0;
  for (i = 0; i < 200; i = i + 1) @max(200) {
    loopv = loopv + i;
  }
  print(once + loopv);
}
`
	m := minic.MustCompile("t", src)
	prof, err := trace.Collect(m, trace.Options{Runs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A small budget forces checkpoints inside the loop, so a VM-resident
	// `once` would be saved/restored repeatedly for its single real use.
	if _, err := Apply(m, Config{
		Model: energy.MSP430FR5969(), Budget: 900, VMSize: 2048, Profile: prof,
	}); err != nil {
		t.Fatal(err)
	}
	f := m.FuncByName("main")
	for _, b := range f.Blocks {
		if !strings.HasPrefix(b.Name, "for.") {
			continue
		}
		for v, in := range b.Alloc {
			if in && v.Name == "once" {
				t.Errorf("once is VM-resident in loop block %s", b.Name)
			}
		}
	}
}

// Eq. 2: a variable whose first access after the checkpoint is a write
// needs no restore, and one that is dead after it needs no save.
func TestLivenessRefinedSaveRestoreSets(t *testing.T) {
	src := `
input int data[64];
int acc;

func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 64; i = i + 1) @max(64) {
    acc = acc + data[i];
  }
  print(acc);
}
`
	m := minic.MustCompile("t", src)
	prof, err := trace.Collect(m, trace.Options{Runs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(m, Config{
		Model: energy.MSP430FR5969(), Budget: 1200, VMSize: 2048, Profile: prof,
	}); err != nil {
		t.Fatal(err)
	}
	// The boot checkpoint must not restore acc or i: their first accesses
	// are writes (Eq. 2's live_c1 = 0 case).
	boot := ir.Checkpoints(m)[0]
	for _, f := range m.Funcs {
		if f.Name != "main" {
			continue
		}
		entry := f.Entry()
		if ck, ok := entry.Instrs[0].(*ir.Checkpoint); ok {
			boot = ck
		}
	}
	for _, v := range boot.Restore {
		if v.Name == "acc" || v.Name == "i" {
			t.Errorf("boot checkpoint restores %s, whose first access is a write", v.Name)
		}
	}
	// Any back-edge checkpoint must save the live loop state it keeps in
	// VM (acc and/or i), not data (never written, read-only).
	for _, ck := range ir.Checkpoints(m) {
		for _, v := range ck.Save {
			if v.Name == "data" {
				t.Errorf("checkpoint #%d saves the read-only input array", ck.ID)
			}
		}
	}
}

// A second, differently-balanced energy model: allocation decisions shift
// with the NVM/VM cost ratio but the guarantees stay intact (the model-
// sensitivity ablation of DESIGN.md).
func TestAlternativeEnergyModel(t *testing.T) {
	model := energy.MSP430FR5969()
	model.Name = "flat-NVM"
	// NVM barely more expensive than VM: VM allocation is rarely worth it.
	model.NVMReadEnergy = model.VMReadEnergy * 1.05
	model.NVMWriteEnergy = model.VMWriteEnergy * 1.05
	model.NVMAccessCycles = model.VMAccessCycles

	src := `
input int data[32];
int acc;

func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 32; i = i + 1) @max(32) {
    acc = acc + data[i];
  }
  print(acc);
}
`
	m := minic.MustCompile("t", src)
	prof, err := trace.Collect(m, trace.Options{Runs: 3, Seed: 1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	conf := Config{Model: model, Budget: 3000, VMSize: 2048, Profile: prof}
	stats, err := Apply(m, conf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, conf); err != nil {
		t.Fatal(err)
	}
	// With a 5% access gain, scalars touched a few dozen times cannot
	// amortize their checkpoint traffic: far fewer VM variables than under
	// the 2.47× model.
	if stats.VMVars > 2 {
		t.Errorf("flat-NVM model still promoted %d variables to VM", stats.VMVars)
	}
}
