package schematic

import (
	"strings"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// A sensing loop with an atomic section modelling a peripheral
// transaction: read-modify-write of a device register pair that must not
// be torn by a checkpoint (paper §VI).
const atomicSrc = `
input int data[32];
int devReg;
int devStatus;
int acc;

func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 32; i = i + 1) @max(32) {
    acc = acc + data[i];
    atomic {
      devReg = acc & 0xFF;
      devStatus = devStatus + 1;
      devReg = devReg | 0x100;
    }
  }
  print(acc);
  print(devReg);
  print(devStatus);
}
`

func TestAtomicBlocksAreFlagged(t *testing.T) {
	m, err := minic.Compile("t", atomicSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := m.FuncByName("main")
	atomics := 0
	for _, b := range f.Blocks {
		if b.Atomic {
			atomics++
			if !strings.HasPrefix(b.Name, "atomic.begin") {
				t.Errorf("unexpected atomic block %s", b.Name)
			}
		}
	}
	if atomics == 0 {
		t.Fatalf("no atomic blocks were flagged")
	}
	// Round trip preserves the flag.
	m2, err := ir.Parse(m.String())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range m2.FuncByName("main").Blocks {
		if b.Atomic {
			found = true
		}
	}
	if !found {
		t.Errorf("atomic flag lost in textual round trip")
	}
}

func TestAtomicRespectedBySchematic(t *testing.T) {
	model := energy.MSP430FR5969()
	m, err := minic.Compile("t", atomicSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := trace.Collect(m, trace.Options{Runs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]int64{"data": make([]int64, 32)}
	for i := range inputs["data"] {
		inputs["data"][i] = int64(i * 3)
	}
	ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}

	for _, budget := range []float64{700, 1500, 6000} {
		conf := Config{Model: model, Budget: budget, VMSize: 2048, Profile: prof}
		tr := ir.Clone(m)
		if _, err := Apply(tr, conf); err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		// Structural: no checkpoint inside or between atomic blocks.
		if err := Validate(tr, conf); err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		for _, f := range tr.Funcs {
			for _, b := range f.Blocks {
				if !b.Atomic {
					continue
				}
				for _, in := range b.Instrs {
					if _, ok := in.(*ir.Checkpoint); ok {
						t.Fatalf("budget %v: checkpoint inside atomic block %s", budget, b.Name)
					}
				}
			}
		}
		res, err := emulator.Run(tr, emulator.Config{
			Model: model, VMSize: 2048, Intermittent: true, EB: budget, Inputs: inputs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != emulator.Completed || res.PowerFailures != 0 {
			t.Fatalf("budget %v: verdict=%v failures=%d", budget, res.Verdict, res.PowerFailures)
		}
		for i := range ref.Output {
			if res.Output[i] != ref.Output[i] {
				t.Fatalf("budget %v: output %v want %v", budget, res.Output, ref.Output)
			}
		}
	}
}

func TestAtomicSectionTooLarge(t *testing.T) {
	// An atomic loop whose bounded cost exceeds any reasonable budget must
	// be rejected with a clear diagnostic, not silently torn.
	src := `
int sink;

func void main() {
  int i;
  atomic {
    for (i = 0; i < 500; i = i + 1) @max(500) {
      sink = sink + i * 3;
    }
  }
  print(sink);
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(m, Config{Model: energy.MSP430FR5969(), Budget: 800, VMSize: 2048})
	if err == nil {
		t.Fatalf("an oversized atomic section was accepted")
	}
	if !strings.Contains(err.Error(), "atomic") {
		t.Errorf("unhelpful diagnostic: %v", err)
	}
}

func TestValidateRejectsCheckpointInAtomic(t *testing.T) {
	m, err := minic.Compile("t", atomicSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Manually plant a checkpoint inside the atomic region.
	f := m.FuncByName("main")
	for _, b := range f.Blocks {
		if b.Atomic {
			b.Instrs = append([]ir.Instr{&ir.Checkpoint{ID: 9, Kind: ir.CkWait}}, b.Instrs...)
			break
		}
	}
	err = Validate(m, Config{Model: energy.MSP430FR5969(), Budget: 1e9, VMSize: 2048})
	if err == nil || !strings.Contains(err.Error(), "atomic") {
		t.Errorf("Validate missed a checkpoint inside an atomic section: %v", err)
	}
}
