package schematic

import (
	"fmt"
	"sort"

	"schematic/internal/dataflow"
	"schematic/internal/ir"
)

// Copy-coherence analysis: every variable conceptually has two copies — a
// home in NVM and a possibly-resident copy in VM. A transformed program is
// coherent when no read ever observes the stale copy and checkpoint saves
// never write a stale VM copy over fresh NVM data (the "memory anomalies"
// of the paper's Section II-B, checked statically).
//
// The analysis tracks, per variable, which copy is fresh:
//
//	stAgree    — both copies hold the same value (or the variable was
//	             never written since they were synchronized)
//	stVMFresh  — the VM copy is newer (written in VM since last sync)
//	stNVMFresh — the NVM copy is newer
//	stVMDead   — the VM copy was destroyed by a wait checkpoint's deep
//	             sleep and not restored
//	stConflict — control-flow join of incompatible states
//
// Reads in VM require {agree, vmFresh}; reads in NVM require {agree,
// nvmFresh, vmDead}; a checkpoint save of v requires the VM copy to be
// fresh or in agreement. Calls synchronize the globals the callee
// accesses: the callee's own validation covers its interior, and the
// caller/callee boundary contracts make the spaces agree.
type copyState uint8

const (
	stAgree copyState = iota
	stVMFresh
	stNVMFresh
	stVMDead
	stConflict
)

func (s copyState) String() string {
	switch s {
	case stAgree:
		return "agree"
	case stVMFresh:
		return "vm-fresh"
	case stNVMFresh:
		return "nvm-fresh"
	case stVMDead:
		return "vm-dead"
	default:
		return "conflict"
	}
}

// calleeBoundaryVM lists the globals a callee holds in VM at its entry
// (entry=true) or at its canonical exit (entry=false).
func calleeBoundaryVM(fn *ir.Func, entry bool) map[*ir.Var]bool {
	out := map[*ir.Var]bool{}
	var blk *ir.Block
	if entry {
		blk = fn.Entry()
	} else {
		for _, b := range fn.Blocks {
			if _, ok := b.Terminator().(*ir.Ret); ok {
				blk = b
				break
			}
		}
	}
	if blk == nil {
		return out
	}
	for vr, in := range blk.Alloc {
		if in && vr.Global {
			out[vr] = true
		}
	}
	return out
}

func ckID(in ir.Instr) int {
	if ck, ok := in.(*ir.Checkpoint); ok {
		return ck.ID
	}
	return -1
}

func joinState(a, b copyState) copyState {
	if a == b {
		return a
	}
	if a == stAgree {
		return b
	}
	if b == stAgree {
		return a
	}
	// vmDead and nvmFresh agree that the NVM home is authoritative and the
	// VM copy must not be read; their join keeps that knowledge.
	if (a == stVMDead && b == stNVMFresh) || (a == stNVMFresh && b == stVMDead) {
		return stNVMFresh
	}
	return stConflict
}

// coherence runs the analysis on one function and reports the first
// violation.
func (v *validator) coherence(f *ir.Func, gu *dataflow.GlobalUse) error {
	live := dataflow.LiveVars(f, gu)
	// Variable universe: function locals + module globals.
	var vars []*ir.Var
	vars = append(vars, f.Locals...)
	vars = append(vars, v.m.Globals...)
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	idx := map[*ir.Var]int{}
	for i, vr := range vars {
		idx[vr] = i
	}
	n := len(vars)

	in := map[*ir.Block][]copyState{}
	for _, b := range f.Blocks {
		st := make([]copyState, n)
		for i := range st {
			st[i] = stConflict // unreached-pessimistic until seeded
		}
		in[b] = st
	}
	entrySt := make([]copyState, n)
	for i := range entrySt {
		entrySt[i] = stAgree // loader-initialized: both copies agree
	}
	in[f.Entry()] = entrySt

	reached := map[*ir.Block]bool{f.Entry(): true}

	var verr error
	step := func(b *ir.Block, st []copyState) []copyState {
		out := append([]copyState(nil), st...)
		check := func(vr *ir.Var, read bool) {
			i := idx[vr]
			inVM := b.InVM(vr)
			if read {
				switch {
				case inVM && (out[i] == stNVMFresh || out[i] == stConflict):
					verr = fmt.Errorf("schematic: %s.%s: VM read of %s while the NVM copy is fresher (%v)",
						f.Name, b.Name, vr.Name, out[i])
				case inVM && out[i] == stVMDead:
					verr = fmt.Errorf("schematic: %s.%s: VM read of %s after its VM copy was dropped",
						f.Name, b.Name, vr.Name)
				case !inVM && (out[i] == stVMFresh || out[i] == stConflict):
					verr = fmt.Errorf("schematic: %s.%s: NVM read of %s while the VM copy is fresher (%v)",
						f.Name, b.Name, vr.Name, out[i])
				}
				return
			}
			if inVM {
				out[i] = stVMFresh
			} else if out[i] != stVMDead {
				// With the VM copy dropped, the NVM home is the only copy;
				// writing it keeps the state "VM dead", not "NVM fresher".
				out[i] = stNVMFresh
			}
		}
		for _, instr := range b.Instrs {
			switch x := instr.(type) {
			case *ir.Load:
				check(x.Var, true)
			case *ir.Store:
				if x.HasIndex {
					// Partial writes mix new elements into the existing
					// copy, so the written copy's base must not be stale.
					i := idx[x.Var]
					if b.InVM(x.Var) {
						// The VM base must exist and be current.
						if out[i] != stAgree && out[i] != stVMFresh {
							verr = fmt.Errorf("schematic: %s.%s: partial VM write to %s over a stale or dropped copy (%v)",
								f.Name, b.Name, x.Var.Name, out[i])
						}
						out[i] = stVMFresh
					} else {
						// The NVM base must be current (vmDead keeps NVM
						// authoritative, so it stays vmDead).
						if out[i] == stVMFresh || out[i] == stConflict {
							verr = fmt.Errorf("schematic: %s.%s: partial NVM write to %s while the VM copy is fresher (%v)",
								f.Name, b.Name, x.Var.Name, out[i])
						}
						if out[i] != stVMDead {
							out[i] = stNVMFresh
						}
					}
				} else {
					check(x.Var, false)
				}
			case *ir.Call:
				// Boundary contract: globals the callee touches must not be
				// in a conflicting copy state, and the callee leaves them
				// synchronized at its exit contract. A checkpointed callee
				// additionally clears the whole VM at its internal wait
				// checkpoints, so every caller-side VM copy is dropped —
				// losing data if one was fresh and live.
				if v.hasCk[x.Callee] {
					entryVM := calleeBoundaryVM(x.Callee, true)
					exitVM := calleeBoundaryVM(x.Callee, false)
					for i, vr := range vars {
						if entryVM[vr] {
							// The callee adopts this global's VM copy and
							// maintains it at its internal checkpoints.
							continue
						}
						switch out[i] {
						case stVMFresh:
							if live.LiveOut(vr, b) {
								verr = fmt.Errorf("schematic: %s.%s: call to checkpointed %s drops the fresh VM copy of live %s",
									f.Name, b.Name, x.Callee.Name, vr.Name)
							}
							out[i] = stVMDead
						case stAgree:
							out[i] = stVMDead
						}
					}
					for i, vr := range vars {
						if entryVM[vr] && !exitVM[vr] {
							out[i] = stVMDead // adopted but not re-materialized at exit
						} else if exitVM[vr] {
							out[i] = stAgree
						}
					}
				}
				for g := range gu.Accessed[x.Callee] {
					i := idx[g]
					if out[i] == stConflict {
						verr = fmt.Errorf("schematic: %s.%s: call %s with global %s in conflicting copy state",
							f.Name, b.Name, x.Callee.Name, g.Name)
					}
					if out[i] != stVMDead {
						out[i] = stAgree
					}
				}
			case *ir.Checkpoint:
				if x.Kind != ir.CkWait {
					// Rollback/trigger runtimes save the resident VM set
					// dynamically; treat as a sync of the saved variables.
					for _, vr := range x.Save {
						out[idx[vr]] = stAgree
					}
					continue
				}
				// The save synchronizes the NVM home for its list...
				for _, vr := range x.Save {
					i := idx[vr]
					if out[i] == stNVMFresh {
						verr = fmt.Errorf("schematic: %s.%s: checkpoint #%d saves %s whose NVM copy is fresher",
							f.Name, b.Name, x.ID, vr.Name)
					}
					out[i] = stAgree
				}
				// ...then deep sleep drops every VM copy, saved or not.
				for i, vr := range vars {
					switch out[i] {
					case stVMFresh:
						// A fresh, unsaved VM value vanishes. If the
						// variable is still live, its value is lost.
						if live.LiveOut(vr, b) {
							verr = fmt.Errorf("schematic: %s.%s: checkpoint #%d drops the fresh VM copy of live %s",
								f.Name, b.Name, ckID(instr), vr.Name)
						}
						out[i] = stVMDead
					case stAgree:
						out[i] = stVMDead // the NVM home remains authoritative
					}
				}
				// ...and the restore list re-materializes from NVM.
				for _, vr := range x.Restore {
					out[idx[vr]] = stAgree
				}
			}
		}
		return out
	}

	rpo := ir.ReversePostorder(f)
	for rounds := 0; rounds < len(f.Blocks)+4; rounds++ {
		changed := false
		for _, b := range rpo {
			if !reached[b] {
				continue
			}
			out := step(b, in[b])
			if verr != nil {
				return verr
			}
			for _, s := range b.Succs() {
				if !reached[s] {
					reached[s] = true
					copy(in[s], out)
					changed = true
					continue
				}
				for i := range out {
					j := joinState(in[s][i], out[i])
					if j != in[s][i] {
						in[s][i] = j
						changed = true
					}
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return nil // lattice has height 2; this is unreachable, kept defensive
}
