package schematic

import (
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
)

// runWithConfig compiles src, applies SCHEMATIC under a caller-adjusted
// configuration, validates the result, and runs it to completion under
// intermittent power. It returns the transformed module and the run result.
func runWithConfig(t *testing.T, src string, budget float64, vmSize int,
	adjust func(*Config)) (*ir.Module, *emulator.Result) {
	t.Helper()
	model := energy.MSP430FR5969()
	orig := compile(t, src)
	prof := profileOf(t, orig)
	inputs := map[string][]int64{}
	for _, v := range orig.InputVars() {
		data := make([]int64, v.Elems)
		for i := range data {
			data[i] = int64((i*37 + 11) % 97)
		}
		inputs[v.Name] = data
	}
	ref, err := emulator.Run(orig, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	tr := ir.Clone(orig)
	conf := Config{Model: model, Budget: budget, VMSize: vmSize, Profile: prof}
	if adjust != nil {
		adjust(&conf)
	}
	if _, err := Apply(tr, conf); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := Validate(tr, conf); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	res, err := emulator.Run(tr, emulator.Config{
		Model: model, VMSize: vmSize, Intermittent: true, EB: budget, Inputs: inputs,
	})
	if err != nil {
		t.Fatalf("intermittent run: %v", err)
	}
	if res.Verdict != emulator.Completed {
		t.Fatalf("verdict = %v (failures=%d)\n%s", res.Verdict, res.PowerFailures, tr.String())
	}
	if res.PowerFailures != 0 || res.Energy.Reexecution != 0 {
		t.Fatalf("guarantee violated: failures=%d reexec=%.1f", res.PowerFailures, res.Energy.Reexecution)
	}
	if len(res.Output) != len(ref.Output) {
		t.Fatalf("output = %v, want %v", res.Output, ref.Output)
	}
	for i := range ref.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("output[%d] = %d, want %d", i, res.Output[i], ref.Output[i])
		}
	}
	return tr, res
}

func TestRefineRegisterLiveness(t *testing.T) {
	budget := 4000.0
	base, resBase := runWithConfig(t, nestedSrc, budget, 2048, nil)
	refined, resRef := runWithConfig(t, nestedSrc, budget, 2048, func(c *Config) {
		c.RefineRegisterLiveness = true
	})

	// Every checkpoint must carry a refined count, and the counts must be
	// meaningful: non-negative and below the full register file.
	cks := ir.Checkpoints(refined)
	if len(cks) == 0 {
		t.Fatal("no checkpoints placed")
	}
	model := energy.MSP430FR5969()
	full := model.RegFileBytes / ir.WordBytes
	anyBelow := false
	for _, ck := range cks {
		if !ck.RefinedRegs {
			t.Fatalf("checkpoint #%d missing refined register count", ck.ID)
		}
		if ck.LiveRegs < 0 {
			t.Fatalf("checkpoint #%d: negative live count %d", ck.ID, ck.LiveRegs)
		}
		if ck.LiveRegs+2 < full {
			anyBelow = true
		}
	}
	if !anyBelow {
		t.Error("refinement never beat the full register file — analysis is vacuous")
	}
	for _, ck := range ir.Checkpoints(base) {
		if ck.RefinedRegs {
			t.Fatalf("checkpoint #%d refined without the knob", ck.ID)
		}
	}

	// The refined program must spend no more checkpoint energy than the
	// full-file one (same placement, smaller saves).
	baseCk := resBase.Energy.Save + resBase.Energy.Restore
	refCk := resRef.Energy.Save + resRef.Energy.Restore
	if refCk > baseCk+1e-6 {
		t.Errorf("refined checkpoint energy %.1f > full-file %.1f", refCk, baseCk)
	}
	if refCk >= baseCk-1e-6 {
		t.Errorf("refinement saved nothing: %.1f vs %.1f", refCk, baseCk)
	}
	if resRef.Energy.Total() > resBase.Energy.Total()+1e-6 {
		t.Errorf("refined total %.1f > baseline total %.1f",
			resRef.Energy.Total(), resBase.Energy.Total())
	}
}

func TestRefineRegisterLivenessRoundTrip(t *testing.T) {
	refined, _ := runWithConfig(t, sumSrc, 3000, 2048, func(c *Config) {
		c.RefineRegisterLiveness = true
	})
	re, err := ir.Parse(refined.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	want := ir.Checkpoints(refined)
	got := ir.Checkpoints(re)
	if len(got) != len(want) {
		t.Fatalf("checkpoint count %d after round trip, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RefinedRegs != want[i].RefinedRegs || got[i].LiveRegs != want[i].LiveRegs {
			t.Errorf("ck %d: liveregs (%v,%d) after round trip, want (%v,%d)",
				i, got[i].RefinedRegs, got[i].LiveRegs, want[i].RefinedRegs, want[i].LiveRegs)
		}
	}
}

func TestDisableCondCheckpointsAblation(t *testing.T) {
	budget := 4000.0
	cond, resCond := runWithConfig(t, longLoopSrc, budget, 2048, nil)
	plain, resPlain := runWithConfig(t, longLoopSrc, budget, 2048, func(c *Config) {
		c.DisableCondCheckpoints = true
	})

	// Algorithm 1 must actually be exercised by this program...
	hasCond := false
	for _, ck := range ir.Checkpoints(cond) {
		if ck.Every > 1 {
			hasCond = true
		}
	}
	if !hasCond {
		t.Fatal("default run placed no conditional checkpoint; ablation compares nothing")
	}
	// ...and the ablation must remove every counter.
	for _, ck := range ir.Checkpoints(plain) {
		if ck.Every > 1 {
			t.Fatalf("ablated run still has a conditional checkpoint (every %d)", ck.Every)
		}
	}
	// Checkpointing each iteration must cost strictly more saves and more
	// checkpoint energy — that gap is Algorithm 1's benefit.
	if resPlain.Saves <= resCond.Saves {
		t.Errorf("ablation saves %d <= conditional %d", resPlain.Saves, resCond.Saves)
	}
	ablCk := resPlain.Energy.Save + resPlain.Energy.Restore
	condCk := resCond.Energy.Save + resCond.Energy.Restore
	if ablCk <= condCk {
		t.Errorf("ablation checkpoint energy %.1f <= conditional %.1f", ablCk, condCk)
	}
}

func TestDisableLivenessRefinementAblation(t *testing.T) {
	budget := 4000.0
	_, resLive := runWithConfig(t, nestedSrc, budget, 2048, nil)
	_, resAll := runWithConfig(t, nestedSrc, budget, 2048, func(c *Config) {
		c.DisableLivenessRefinement = true
	})
	// Saving dead variables can only add checkpoint traffic.
	liveCk := resLive.Energy.Save + resLive.Energy.Restore
	allCk := resAll.Energy.Save + resAll.Energy.Restore
	if allCk < liveCk-1e-6 {
		t.Errorf("liveness-blind checkpoint energy %.1f < refined %.1f", allCk, liveCk)
	}
}

func TestAblationsCompose(t *testing.T) {
	// All knobs together must still preserve the guarantees (the helper
	// checks completion, zero failures, and output equality).
	runWithConfig(t, callSrc, 5000, 2048, func(c *Config) {
		c.DisableCondCheckpoints = true
		c.DisableLivenessRefinement = true
		c.RefineRegisterLiveness = true
	})
}

// liveParamSrc keeps function parameters (which live in registers) alive
// across an in-loop checkpoint, so refined register counts are non-zero.
const liveParamSrc = `
int r;

func int work(int a, int b) {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < 300; i = i + 1) @max(300) {
    acc = acc + i * a;
  }
  return acc + b;
}

func void main() {
  r = work(3, 4);
  print(r);
}
`

func TestValidateRejectsUnderstatedLiveRegs(t *testing.T) {
	refined, _ := runWithConfig(t, liveParamSrc, 2500, 2048, func(c *Config) {
		c.RefineRegisterLiveness = true
	})
	model := energy.MSP430FR5969()
	conf := Config{Model: model, Budget: 2500, VMSize: 2048}

	// Find a checkpoint with a positive live count and understate it.
	var victim *ir.Checkpoint
	for _, ck := range ir.Checkpoints(refined) {
		if ck.LiveRegs > 0 {
			victim = ck
			break
		}
	}
	if victim == nil {
		t.Fatalf("no checkpoint holds live registers — parameters should be live across the loop checkpoint\n%s",
			refined.String())
	}
	victim.LiveRegs--
	if err := Validate(refined, conf); err == nil {
		t.Fatal("Validate accepted an understated refined register count")
	}
	victim.LiveRegs++
	if err := Validate(refined, conf); err != nil {
		t.Fatalf("Validate rejected the honest count: %v", err)
	}

	// A negative count is rejected outright.
	victim.LiveRegs = -1
	if err := Validate(refined, conf); err == nil {
		t.Fatal("Validate accepted a negative refined register count")
	}
}
