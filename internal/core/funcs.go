package schematic

import (
	"fmt"
	"sort"

	"schematic/internal/cfg"
	"schematic/internal/dataflow"
	"schematic/internal/ir"
)

// analyzeFunc runs the whole analysis of one function: preprocessing,
// bottom-up loop analysis (III-B2), top-level path analysis, and the
// summary exported to callers (III-B1).
func (a *analyzer) analyzeFunc(f *ir.Func) error {
	fs := newFuncState(f)
	a.fs = fs
	if a.states == nil {
		a.states = map[*ir.Func]*funcState{}
	}
	a.states[f] = fs

	// Preprocessing changes the CFG, so analyses come after.
	if err := a.isolateCheckpointedCalls(f); err != nil {
		return err
	}
	a.splitOversizedBlocks(f)

	fs.dom = cfg.Dominators(f)
	fs.lf = cfg.Loops(f, fs.dom)
	fs.live = dataflow.LiveVars(f, a.gu)

	// Build call units for the isolated checkpointed calls.
	if err := a.buildCallUnits(f); err != nil {
		return err
	}

	// Loops, inner first (III-B2).
	for _, l := range fs.lf.BottomUp() {
		if err := a.analyzeLoop(l); err != nil {
			return err
		}
	}

	// Top level: all blocks, with top loops and loop-free call units
	// collapsed.
	blocks := map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		blocks[b] = true
	}
	var units []*unit
	for _, l := range fs.lf.Top {
		units = append(units, fs.loopUnit[l.Header])
	}
	for blk, u := range fs.callUnit {
		if fs.lf.LoopOf(blk) == nil {
			units = append(units, u)
		}
	}
	sortUnits(units)

	sg := buildScope(fs, f.Entry(), blocks, units, nil)
	if f.Name == "main" {
		// main starts from a boot checkpoint that materializes the entry
		// allocation (the "loading from NVM at startup" of II-A).
		sg.entryHasCk = true
		sg.startBudget = a.conf.Budget
	} else {
		sg.startBudget = a.conf.Budget - a.model.SaveRegsCost() - a.model.RestoreRegsCost()
	}
	sg.exitReq = 0
	if err := a.analyzeScope(sg); err != nil {
		return err
	}

	// Impose a single exit allocation across return blocks by inserting
	// in-block checkpoints before non-conforming returns.
	if err := a.unifyExitAlloc(f); err != nil {
		return err
	}
	// Two blocks analyzed on different paths can be joined by a CFG edge
	// that never appeared as a consecutive pair on any analyzed path; their
	// allocations may then disagree. Checkpoint every such edge so the
	// allocation switch is synchronized (live variables only — a stale
	// copy of a dead variable is unobservable).
	a.unifyEdgeAllocs(f)

	a.summaries[f] = a.summarize(f)
	return nil
}

// restoreAllocFor is the allocation a checkpoint restoring into b must
// materialize: for an isolated checkpointed-call block that is the
// callee's entry contract, not the block's own (exit-side) allocation.
func (a *analyzer) restoreAllocFor(b *ir.Block) allocMap {
	if u, ok := a.fs.callUnit[b]; ok {
		return allocMap(varSet(u.entryVM))
	}
	return a.allocOfBlock(b)
}

// unifyEdgeAllocs inserts checkpoints on edges whose endpoint allocations
// disagree on a live variable.
func (a *analyzer) unifyEdgeAllocs(f *ir.Func) {
	for _, e := range ir.Edges(f) {
		if a.fs.ckAt(e) != nil || (e.From.Atomic && e.To.Atomic) {
			continue
		}
		from := a.allocOfBlock(e.From)
		to := a.restoreAllocFor(e.To)
		if from.equal(to) {
			continue
		}
		edge := e
		live := a.liveAt(&edge, nil)
		need := false
		for _, v := range normalize(from) {
			if !to[v] && live(v) {
				need = true
				break
			}
		}
		if !need {
			for _, v := range normalize(to) {
				if !from[v] && live(v) {
					need = true
					break
				}
			}
		}
		if need {
			a.fs.enable(e, from, to, 0)
			a.stats.Checkpoints++
		}
	}
}

// retBlocks lists the function's return blocks deterministically.
func retBlocks(f *ir.Func) []*ir.Block {
	var out []*ir.Block
	for _, b := range f.Blocks {
		if _, ok := b.Terminator().(*ir.Ret); ok {
			out = append(out, b)
		}
	}
	return out
}

// unifyExitAlloc enforces the paper's single-exit-allocation rule
// (III-B1) by planning a checkpoint just before each return whose block
// allocation differs from the canonical one.
func (a *analyzer) unifyExitAlloc(f *ir.Func) error {
	rets := retBlocks(f)
	if len(rets) <= 1 {
		return nil
	}
	canonical := a.allocOfBlock(rets[0])
	for _, b := range rets[1:] {
		if a.allocOfBlock(b).equal(canonical) {
			continue
		}
		if a.fs.retCks == nil {
			a.fs.retCks = map[*ir.Block]*ckPlan{}
		}
		a.fs.retCks[b] = &ckPlan{preAlloc: a.allocOfBlock(b), postAlloc: canonical}
		a.fs.hasCheckpoints = true
		a.stats.Checkpoints++
	}
	return nil
}

// buildCallUnits wraps each isolated checkpointed-call block in a unit.
func (a *analyzer) buildCallUnits(f *ir.Func) error {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			call, ok := in.(*ir.Call)
			if !ok {
				continue
			}
			sum := a.summaries[call.Callee]
			if sum == nil {
				return fmt.Errorf("schematic: callee %s not yet summarized", call.Callee.Name)
			}
			if !sum.hasCheckpoints {
				continue
			}
			if len(b.Instrs) != 2 {
				return fmt.Errorf("schematic: internal: checkpointed call in %s.%s not isolated", f.Name, b.Name)
			}
			termCost := a.model.InstrEnergy(b.Terminator(), ir.NVM)
			u := &unit{
				rep:          b,
				blocks:       map[*ir.Block]bool{b: true},
				checkpointed: true,
				entry:        a.model.InstrEnergy(call, ir.NVM) + sum.entry,
				exitLeft:     sum.exitLeft - termCost,
				vmDemand:     sum.vmDemand,
				entryVM:      sum.entryVM,
				exitVM:       sum.exitVM,
				nvmAccessed:  map[*ir.Var]bool{},
				accessed:     sum.accessed,
			}
			if u.exitLeft < 0 {
				u.exitLeft = 0
			}
			a.fs.callUnit[b] = u
			// The call block runs under the callee's boundary residency.
			a.fs.alloc[b] = allocMap(varSet(sum.exitVM))
			a.fs.analyzed[b] = true
		}
	}
	return nil
}

// summarize builds the caller-facing contract of an analyzed function.
func (a *analyzer) summarize(f *ir.Func) *funcSummary {
	fs := a.fs
	hasCk := fs.hasCheckpoints || len(fs.callUnit) > 0
	for _, u := range fs.loopUnit {
		if u.checkpointed {
			hasCk = true
		}
	}
	sum := &funcSummary{
		hasCheckpoints: hasCk,
		accessed:       map[*ir.Var]bool{},
		nvmAccessed:    map[*ir.Var]bool{},
	}

	entryAlloc := a.allocOfBlock(f.Entry())
	sum.entryVM = globalsOf(entryAlloc)
	rets := retBlocks(f)
	exitAlloc := allocMap{}
	if len(rets) > 0 {
		exitAlloc = a.allocOfBlock(rets[0])
	}
	sum.exitVM = globalsOf(exitAlloc)

	// Access contract: globals touched anywhere (transitively), and which
	// of them are ever accessed while allocated to NVM.
	for g := range a.gu.Accessed[f] {
		sum.accessed[g] = true
	}
	vmSomewhere := map[*ir.Var]bool{}
	for _, b := range f.Blocks {
		for v := range a.allocOfBlock(b) {
			if v.Global {
				vmSomewhere[v] = true
			}
		}
	}
	if !hasCk {
		for g := range sum.accessed {
			if !vmSomewhere[g] {
				sum.nvmAccessed[g] = true
			}
		}
	}

	// Private VM demand: locals in VM plus callee demands.
	entryGlobalBytes := 0
	for _, v := range sum.entryVM {
		entryGlobalBytes += v.SizeBytes()
	}
	maxVM := 0
	for _, b := range f.Blocks {
		if n := a.allocOfBlock(b).bytes(); n > maxVM {
			maxVM = n
		}
	}
	sum.vmDemand = maxVM - entryGlobalBytes
	if sum.vmDemand < 0 {
		sum.vmDemand = 0
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if call, ok := in.(*ir.Call); ok {
				if cs := a.summaries[call.Callee]; cs != nil && cs.vmDemand > sum.vmDemand {
					sum.vmDemand = cs.vmDemand
				}
			}
		}
	}

	if hasCk {
		entryNode := a.nodeForSummary(f.Entry())
		sum.entry, _ = a.etoEnterNode(entryNode)
		sum.exitLeft = a.conf.Budget
		for _, b := range rets {
			if v, ok := fs.eleft[b]; ok && v < sum.exitLeft {
				sum.exitLeft = v
			}
		}
		if sum.exitLeft < 0 {
			sum.exitLeft = 0
		}
	} else {
		entryNode := a.nodeForSummary(f.Entry())
		sum.energy, _ = a.etoEnterNode(entryNode)
	}
	if debugRCG {
		fmt.Printf("summary %s: hasCk=%v energy=%.1f entry=%.1f exitLeft=%.1f etoLeave[entry]=%.1f\n",
			f.Name, sum.hasCheckpoints, sum.energy, sum.entry, sum.exitLeft, fs.etoLeave[f.Entry()])
	}
	return sum
}

// nodeForSummary wraps the entry block as a node, honouring a collapsed
// loop headed at the entry.
func (a *analyzer) nodeForSummary(entry *ir.Block) *node {
	if u, ok := a.fs.loopUnit[entry]; ok {
		return &node{rep: entry, unit: u}
	}
	if u, ok := a.fs.callUnit[entry]; ok {
		return &node{rep: entry, unit: u}
	}
	return &node{rep: entry}
}

func globalsOf(alloc allocMap) []*ir.Var {
	var out []*ir.Var
	for v, in := range alloc {
		if in && v.Global {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
