package schematic

import (
	"math/rand"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// knobConfigs enumerates the non-default configuration corners the
// extension fuzzers exercise: each knob alone and all together.
func knobConfigs() []func(*Config) {
	return []func(*Config){
		func(c *Config) { c.RefineRegisterLiveness = true },
		func(c *Config) { c.DisableCondCheckpoints = true },
		func(c *Config) { c.DisableLivenessRefinement = true },
		func(c *Config) {
			c.RefineRegisterLiveness = true
			c.DisableCondCheckpoints = true
			c.DisableLivenessRefinement = true
		},
	}
}

// TestFuzzDifferentialExtensions repeats the differential harness with the
// ablation knobs and the register-liveness extension switched on: the
// paper's guarantees must hold in every configuration corner, not just
// the default one.
func TestFuzzDifferentialExtensions(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	model := energy.MSP430FR5969()
	applied := 0
	for seed := int64(0); seed < seeds; seed++ {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed^0xe57)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		prof, err := trace.Collect(m, trace.Options{Runs: 3, Seed: seed, Model: model, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(seed+900)))
		ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 60_000_000})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		eb := prof.EBForTBPF(4_000)
		for ki, adjust := range knobConfigs() {
			conf := Config{Model: model, Budget: eb, VMSize: 2048, Profile: prof}
			adjust(&conf)
			tr := ir.Clone(m)
			if _, err := Apply(tr, conf); err != nil {
				continue // clean infeasibility verdict
			}
			applied++
			if err := Validate(tr, conf); err != nil {
				t.Errorf("seed %d knobs %d: Validate rejected pass output: %v", seed, ki, err)
				continue
			}
			res, err := emulator.Run(tr, emulator.Config{
				Model: model, VMSize: 2048, Intermittent: true, EB: eb,
				Inputs: inputs, MaxSteps: 120_000_000,
			})
			if err != nil {
				t.Fatalf("seed %d knobs %d: %v", seed, ki, err)
			}
			if res.Verdict != emulator.Completed || res.PowerFailures != 0 || res.Energy.Reexecution != 0 {
				t.Errorf("seed %d knobs %d: verdict=%v failures=%d reexec=%.1f\n%s",
					seed, ki, res.Verdict, res.PowerFailures, res.Energy.Reexecution, tr.String())
				continue
			}
			if res.UnsyncedReads != 0 {
				t.Errorf("seed %d knobs %d: %d poison reads", seed, ki, res.UnsyncedReads)
			}
			if len(res.Output) != len(ref.Output) {
				t.Errorf("seed %d knobs %d: output len %d want %d", seed, ki, len(res.Output), len(ref.Output))
				continue
			}
			for i := range ref.Output {
				if res.Output[i] != ref.Output[i] {
					t.Errorf("seed %d knobs %d: output[%d]=%d want %d",
						seed, ki, i, res.Output[i], ref.Output[i])
					break
				}
			}
		}
	}
	if applied == 0 {
		t.Fatal("no extension fuzz case was ever transformable")
	}
	t.Logf("extension fuzz: %d transformed runs verified", applied)
}

// FuzzExtensionGuarantees is the native-fuzzing counterpart: the fuzzer
// additionally explores the configuration-knob space. Run with
//
//	go test ./internal/core -fuzz FuzzExtensionGuarantees -fuzztime 30s
func FuzzExtensionGuarantees(f *testing.F) {
	f.Add(int64(1), uint16(1000), uint8(1))
	f.Add(int64(7), uint16(4000), uint8(2))
	f.Add(int64(42), uint16(20000), uint8(7))
	model := energy.MSP430FR5969()

	f.Fuzz(func(t *testing.T, seed int64, tbpfRaw uint16, knobs uint8) {
		tbpf := int64(tbpfRaw)
		if tbpf < 300 {
			tbpf = 300 + tbpf
		}
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("generator produced uncompilable source: %v\n%s", err, src)
		}
		prof, err := trace.Collect(m, trace.Options{Runs: 2, Seed: seed, Model: model, MaxSteps: 30_000_000})
		if err != nil {
			t.Skip("profiling hit the step bound")
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(seed^0x5eed)))
		ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 60_000_000})
		if err != nil || ref.Verdict != emulator.Completed {
			t.Skip("reference run out of budget")
		}
		eb := prof.EBForTBPF(tbpf)
		conf := Config{
			Model: model, Budget: eb, VMSize: 2048, Profile: prof,
			RefineRegisterLiveness:    knobs&1 != 0,
			DisableCondCheckpoints:    knobs&2 != 0,
			DisableLivenessRefinement: knobs&4 != 0,
		}
		tr := ir.Clone(m)
		if _, err := Apply(tr, conf); err != nil {
			return
		}
		if err := Validate(tr, conf); err != nil {
			t.Fatalf("Validate rejected pass output (seed=%d tbpf=%d knobs=%d): %v", seed, tbpf, knobs, err)
		}
		res, err := emulator.Run(tr, emulator.Config{
			Model: model, VMSize: 2048, Intermittent: true, EB: eb,
			Inputs: inputs, MaxSteps: 120_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != emulator.Completed || res.PowerFailures != 0 || res.Energy.Reexecution != 0 {
			t.Fatalf("guarantee violated (seed=%d tbpf=%d knobs=%d): verdict=%v failures=%d reexec=%.1f",
				seed, tbpf, knobs, res.Verdict, res.PowerFailures, res.Energy.Reexecution)
		}
		if res.UnsyncedReads != 0 {
			t.Fatalf("poison reads (seed=%d tbpf=%d knobs=%d)", seed, tbpf, knobs)
		}
		if len(res.Output) != len(ref.Output) {
			t.Fatalf("output length changed (seed=%d tbpf=%d knobs=%d)", seed, tbpf, knobs)
		}
		for i := range ref.Output {
			if res.Output[i] != ref.Output[i] {
				t.Fatalf("output[%d] differs (seed=%d tbpf=%d knobs=%d): %d vs %d",
					i, seed, tbpf, knobs, res.Output[i], ref.Output[i])
			}
		}
	})
}
