package schematic

import (
	"math/rand"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// TestFuzzDifferential is the repository's strongest correctness harness:
// random programs are transformed by SCHEMATIC at several budgets and must
//
//   - pass the static Validate oracle,
//   - complete under intermittent power with zero power failures and zero
//     re-execution energy (the paper's forward-progress guarantee),
//   - produce exactly the stable-power output (absence of memory
//     anomalies), and
//   - never read unrestored VM state (the emulator's poison detector).
//
// Budgets derive from each program's own profile via TBPF, so the
// difficulty scales with the program.
func TestFuzzDifferential(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 6
	}
	model := energy.MSP430FR5969()
	applied, tight := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		prof, err := trace.Collect(m, trace.Options{Runs: 3, Seed: seed, Model: model, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(seed+500)))
		ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 60_000_000})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}

		for _, tbpf := range []int64{1_000, 4_000, 20_000} {
			eb := prof.EBForTBPF(tbpf)
			conf := Config{Model: model, Budget: eb, VMSize: 2048, Profile: prof}
			tr := ir.Clone(m)
			if _, err := Apply(tr, conf); err != nil {
				// Tight budgets can be genuinely infeasible (e.g. a single
				// helper call costs more than EB); that is a clean verdict,
				// not a bug — count it and move on.
				tight++
				continue
			}
			applied++
			if err := Validate(tr, conf); err != nil {
				t.Errorf("seed %d TBPF %d: Validate rejected pass output: %v\n%s",
					seed, tbpf, err, tr.String())
				continue
			}
			res, err := emulator.Run(tr, emulator.Config{
				Model:        model,
				VMSize:       2048,
				Intermittent: true,
				EB:           eb,
				Inputs:       inputs,
				MaxSteps:     120_000_000,
			})
			if err != nil {
				t.Fatalf("seed %d TBPF %d: %v", seed, tbpf, err)
			}
			if res.Verdict != emulator.Completed {
				t.Errorf("seed %d TBPF %d: verdict %v (failures=%d)\n%s",
					seed, tbpf, res.Verdict, res.PowerFailures, tr.String())
				continue
			}
			if res.PowerFailures != 0 || res.Energy.Reexecution != 0 {
				t.Errorf("seed %d TBPF %d: failures=%d reexec=%.1f — forward-progress guarantee violated",
					seed, tbpf, res.PowerFailures, res.Energy.Reexecution)
			}
			if res.UnsyncedReads != 0 {
				t.Errorf("seed %d TBPF %d: %d poison reads\n%s", seed, tbpf, res.UnsyncedReads, tr.String())
			}
			if len(res.Output) != len(ref.Output) {
				t.Errorf("seed %d TBPF %d: output len %d want %d", seed, tbpf, len(res.Output), len(ref.Output))
				continue
			}
			for i := range ref.Output {
				if res.Output[i] != ref.Output[i] {
					t.Errorf("seed %d TBPF %d: output[%d]=%d want %d\n%s",
						seed, tbpf, i, res.Output[i], ref.Output[i], tr.String())
					break
				}
			}
		}
	}
	if applied == 0 {
		t.Fatalf("no fuzz case was ever transformable (tight=%d)", tight)
	}
	t.Logf("fuzz: %d transformed runs verified, %d infeasible-budget verdicts", applied, tight)
}
