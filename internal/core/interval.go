package schematic

import (
	"fmt"
	"sort"

	"schematic/internal/dataflow"
	"schematic/internal/ir"
)

// intervalCtx describes one candidate interval of an RCG: the region
// between two potential checkpoint locations (or virtual boundaries) on a
// path.
type intervalCtx struct {
	steps []step // plain blocks and plain units strictly inside

	startEdge *ir.Edge // concrete edge of the start boundary, nil at scope edges
	endEdge   *ir.Edge

	startCk bool // a checkpoint save/restore pair exists at the start
	endCk   bool

	startBudget float64 // energy available at start when !startCk
	endRequired float64 // energy that must remain at the end when !endCk

	forcedStart allocMap // allocation imposed at start when !startCk (nil = free)
	forcedEnd   allocMap // allocation imposed at end when !endCk (nil = free)

	// extraMandatory/extraForbidden come from checkpointed-unit boundaries.
	extraMandatory map[*ir.Var]bool
	extraForbidden map[*ir.Var]bool
}

// intervalResult is the outcome of evaluating an interval.
type intervalResult struct {
	feasible  bool
	weight    float64 // restore + execution + save energy (Dijkstra weight)
	exec      float64 // execution energy alone
	alloc     allocMap
	remaining float64 // energy left after the interval completes
}

// constraints aggregates what the interval's content demands of the
// allocation.
type constraints struct {
	counts    map[*ir.Var]dataflow.RW
	mandatory map[*ir.Var]bool
	forbidden map[*ir.Var]bool
	vmDemand  int // private VM of contained units/callees (max, they are sequential)
	blocks    []*ir.Block
	units     []*unit
}

// gather scans the interval's steps, collecting access counts and the
// allocation constraints imposed by plain units and callee contracts.
func (a *analyzer) gather(steps []step) (*constraints, error) {
	cons := &constraints{
		counts:    map[*ir.Var]dataflow.RW{},
		mandatory: map[*ir.Var]bool{},
		forbidden: map[*ir.Var]bool{},
	}
	for _, s := range steps {
		if !s.n.plain() {
			u := s.n.unit
			if u.checkpointed {
				return nil, fmt.Errorf("schematic: internal: checkpointed unit inside interval")
			}
			cons.units = append(cons.units, u)
			for _, v := range u.entryVM {
				cons.mandatory[v] = true
			}
			for v := range u.nvmAccessed {
				cons.forbidden[v] = true
			}
			if u.vmDemand > cons.vmDemand {
				cons.vmDemand = u.vmDemand
			}
			continue
		}
		b := s.n.rep
		cons.blocks = append(cons.blocks, b)
		for _, in := range b.Instrs {
			if v, write, ok := ir.AccessedVar(in); ok {
				c := cons.counts[v]
				if write {
					c.Writes++
				} else {
					c.Reads++
				}
				cons.counts[v] = c
				if v.AddrUsed {
					cons.forbidden[v] = true
				}
				continue
			}
			call, ok := in.(*ir.Call)
			if !ok {
				continue
			}
			sum := a.summaries[call.Callee]
			if sum == nil {
				return nil, fmt.Errorf("schematic: internal: callee %s analyzed out of order", call.Callee.Name)
			}
			if sum.hasCheckpoints {
				return nil, fmt.Errorf("schematic: internal: checkpointed call to %s not isolated", call.Callee.Name)
			}
			for _, v := range sum.entryVM {
				cons.mandatory[v] = true
			}
			for v := range sum.nvmAccessed {
				cons.forbidden[v] = true
			}
			if sum.vmDemand > cons.vmDemand {
				cons.vmDemand = sum.vmDemand
			}
		}
	}
	if a.conf.DisableVM {
		// All-NVM ablation: nothing may live in VM. Mandatory sets come
		// from units analyzed under the same config, so they are empty.
		for v := range cons.counts {
			cons.forbidden[v] = true
		}
	}
	return cons, nil
}

// execCost returns the energy to execute block b once under alloc,
// including the summarized energy of calls to checkpoint-free callees.
func (a *analyzer) execCost(b *ir.Block, alloc allocMap) float64 {
	e := 0.0
	for _, in := range b.Instrs {
		space := ir.NVM
		if v, _, ok := ir.AccessedVar(in); ok && alloc != nil && alloc[v] {
			space = ir.VM
		}
		e += a.model.InstrEnergy(in, space)
		if call, ok := in.(*ir.Call); ok {
			if sum := a.summaries[call.Callee]; sum != nil && !sum.hasCheckpoints {
				e += sum.energy
			}
		}
	}
	return e
}

// stepsCost totals the execution energy of the interval's steps.
func (a *analyzer) stepsCost(steps []step, alloc allocMap) float64 {
	e := 0.0
	for _, s := range steps {
		if s.n.plain() {
			e += a.execCost(s.n.rep, alloc)
		} else {
			e += s.n.unit.energy
		}
	}
	return e
}

// liveAt builds the liveness predicate for an interval boundary. Under the
// DisableLivenessRefinement ablation every variable counts as live, which
// reverts Eq. 2 to Eq. 1.
func (a *analyzer) liveAt(edge *ir.Edge, fallback *ir.Block) func(*ir.Var) bool {
	if a.conf.DisableLivenessRefinement {
		return func(*ir.Var) bool { return true }
	}
	lv := a.fs.live
	if edge != nil {
		e := *edge
		return func(v *ir.Var) bool { return lv.LiveAtEdge(v, e) }
	}
	if fallback != nil {
		return func(v *ir.Var) bool { return lv.LiveIn(v, fallback) }
	}
	return func(*ir.Var) bool { return true }
}

// saveSetCost returns the checkpoint save cost for the given allocation at
// a boundary: registers plus the live VM variables (Eq. 2 — dead variables
// are skipped).
func (a *analyzer) saveSetCost(alloc allocMap, live func(*ir.Var) bool) float64 {
	e := a.model.SaveRegsCost()
	for _, v := range normalize(alloc) {
		if live(v) {
			e += a.model.SaveVarCost(v)
		}
	}
	return e
}

func (a *analyzer) restoreSetCost(alloc allocMap, live func(*ir.Var) bool) float64 {
	// Enabled checkpoints live in split blocks ending in a jump; that jump
	// executes right after the restore and belongs to the next interval's
	// budget, so charge it here (slightly conservative for the boot and
	// before-return checkpoints, which have no split block).
	e := a.model.RestoreRegsCost() + a.model.InstrEnergy(&ir.Jmp{}, ir.NVM)
	for _, v := range normalize(alloc) {
		if live(v) {
			e += a.model.RestoreVarCost(v)
		}
	}
	return e
}

// evalInterval decides the best allocation for an interval and checks its
// feasibility against the budget (paper, III-A1 and III-A2).
func (a *analyzer) evalInterval(ictx *intervalCtx) (intervalResult, error) {
	cons, err := a.gather(ictx.steps)
	if err != nil {
		return intervalResult{}, err
	}
	for v := range ictx.extraMandatory {
		cons.mandatory[v] = true
	}
	for v := range ictx.extraForbidden {
		cons.forbidden[v] = true
	}

	var firstBlock *ir.Block
	if len(ictx.steps) > 0 {
		firstBlock = ictx.steps[0].n.rep
	}
	liveStart := a.liveAt(ictx.startEdge, firstBlock)
	liveEnd := a.liveAt(ictx.endEdge, nil)

	// Determine the allocation.
	var alloc allocMap
	switch {
	case !ictx.startCk && ictx.forcedStart != nil:
		alloc = ictx.forcedStart.clone()
	case !ictx.endCk && ictx.forcedEnd != nil:
		alloc = ictx.forcedEnd.clone()
	default:
		alloc = a.chooseAlloc(cons, liveStart, liveEnd)
	}
	// A forced allocation must still satisfy the content constraints.
	for v := range cons.mandatory {
		if !alloc[v] {
			if !ictx.startCk && ictx.forcedStart != nil || !ictx.endCk && ictx.forcedEnd != nil {
				return intervalResult{}, nil // infeasible: cannot adapt a forced allocation
			}
			alloc[v] = true
		}
	}
	for v := range cons.forbidden {
		if alloc[v] {
			return intervalResult{}, nil
		}
	}
	// Both boundaries forced and disagreeing: a checkpoint would be needed
	// to switch allocations, but there is none.
	if !ictx.startCk && !ictx.endCk && ictx.forcedStart != nil && ictx.forcedEnd != nil &&
		!ictx.forcedStart.equal(ictx.forcedEnd) {
		return intervalResult{}, nil
	}
	if !ictx.endCk && ictx.forcedEnd != nil && !alloc.equal(ictx.forcedEnd) {
		return intervalResult{}, nil
	}
	if a.conf.VMSize > 0 && alloc.bytes()+cons.vmDemand > a.conf.VMSize {
		return intervalResult{}, nil
	}

	exec := a.stepsCost(ictx.steps, alloc)
	restore := 0.0
	if ictx.startCk {
		restore = a.restoreSetCost(alloc, liveStart)
	}
	save := 0.0
	if ictx.endCk {
		save = a.saveSetCost(alloc, liveEnd)
	}
	budget0 := ictx.startBudget
	if ictx.startCk {
		budget0 = a.conf.Budget
	}
	after := budget0 - restore - exec
	needed := save
	if !ictx.endCk {
		needed = ictx.endRequired
	}
	if after < needed-1e-9 {
		return intervalResult{}, nil
	}
	res := intervalResult{
		feasible: true,
		weight:   restore + exec + save,
		exec:     exec,
		alloc:    alloc,
	}
	res.remaining = after
	if ictx.endCk {
		res.remaining = after - save
	}
	return res, nil
}

// chooseAlloc implements the memory allocation selection of III-A2: every
// variable with positive gain (Eq. 1, with the liveness-refined overhead
// of Eq. 2) is a candidate; variables are placed in VM by decreasing
// gain/size ratio until SVM is full.
func (a *analyzer) chooseAlloc(cons *constraints, liveStart, liveEnd func(*ir.Var) bool) allocMap {
	alloc := allocMap{}
	used := cons.vmDemand
	for v := range cons.mandatory {
		alloc[v] = true
		used += v.SizeBytes()
	}
	type cand struct {
		v     *ir.Var
		gain  float64
		ratio float64
	}
	var cands []cand
	for v, rw := range cons.counts {
		if alloc[v] || cons.forbidden[v] || v.AddrUsed {
			continue
		}
		gain := a.model.WriteGain()*float64(rw.Writes) + a.model.ReadGain()*float64(rw.Reads)
		if liveStart(v) {
			gain -= a.model.RestoreVarCost(v)
		}
		if liveEnd(v) {
			gain -= a.model.SaveVarCost(v)
		}
		if gain <= 0 {
			continue
		}
		cands = append(cands, cand{v: v, gain: gain, ratio: gain / float64(v.SizeBytes())})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ratio != cands[j].ratio {
			return cands[i].ratio > cands[j].ratio
		}
		return cands[i].v.Name < cands[j].v.Name
	})
	for _, c := range cands {
		sz := c.v.SizeBytes()
		if a.conf.VMSize > 0 && used+sz > a.conf.VMSize {
			continue // smaller variables later in the list may still fit
		}
		alloc[c.v] = true
		used += sz
	}
	return alloc
}
