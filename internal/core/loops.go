package schematic

import (
	"fmt"
	"sort"

	"schematic/internal/cfg"
	"schematic/internal/ir"
)

// analyzeLoop implements Algorithm 1: analyze one iteration of the loop
// body (back-edge removed), then decide the back-edge checkpointing
// scheme, and collapse the loop into a unit for the enclosing scope.
func (a *analyzer) analyzeLoop(l *cfg.Loop) error {
	fs := a.fs

	// The back-edge checkpoint's save cost is only known after the body is
	// analyzed, yet the body's trailing segment must leave enough energy
	// for it. Reserve an estimate as the scope's exit requirement and
	// retry with the actual cost if the estimate proves too small.
	reserveExit := a.model.SaveRegsCost()
	for attempt := 0; ; attempt++ {
		if attempt > 3 {
			return fmt.Errorf("schematic: func %s: loop at %s: back-edge save reservation did not converge",
				fs.f.Name, l.Header.Name)
		}
		snap := a.snapshotLoopState(l)
		needed, err := a.analyzeLoopOnce(l, reserveExit)
		if err != nil {
			return err
		}
		if needed <= reserveExit+1e-6 {
			return nil
		}
		// Roll back this attempt's decisions and retry with the real cost.
		a.restoreLoopState(l, snap)
		reserveExit = needed
	}
}

// loopStateSnapshot captures the per-block analysis state of a loop's own
// blocks (child units and call units keep their final decisions).
type loopStateSnapshot struct {
	analyzed map[*ir.Block]bool
	alloc    map[*ir.Block]allocMap
	ckEdges  map[ir.Edge]*ckPlan
}

func (a *analyzer) loopOwnBlocks(l *cfg.Loop) []*ir.Block {
	var own []*ir.Block
	for b := range l.Blocks {
		if inner := a.fs.lf.LoopOf(b); inner != l {
			continue // belongs to a nested loop, decided there
		}
		if _, isCallUnit := a.fs.callUnit[b]; isCallUnit {
			continue
		}
		own = append(own, b)
	}
	return own
}

func (a *analyzer) snapshotLoopState(l *cfg.Loop) *loopStateSnapshot {
	s := &loopStateSnapshot{
		analyzed: map[*ir.Block]bool{},
		alloc:    map[*ir.Block]allocMap{},
		ckEdges:  map[ir.Edge]*ckPlan{},
	}
	for _, b := range a.loopOwnBlocks(l) {
		s.analyzed[b] = a.fs.analyzed[b]
		s.alloc[b] = a.fs.alloc[b]
	}
	for e, p := range a.fs.cks {
		if l.Contains(e.From) && l.Contains(e.To) {
			s.ckEdges[e] = p
		}
	}
	return s
}

func (a *analyzer) restoreLoopState(l *cfg.Loop, s *loopStateSnapshot) {
	for _, b := range a.loopOwnBlocks(l) {
		a.fs.analyzed[b] = s.analyzed[b]
		if s.alloc[b] == nil {
			delete(a.fs.alloc, b)
		} else {
			a.fs.alloc[b] = s.alloc[b]
		}
	}
	for e := range a.fs.cks {
		if l.Contains(e.From) && l.Contains(e.To) {
			if _, keep := s.ckEdges[e]; !keep {
				delete(a.fs.cks, e)
				a.stats.Checkpoints--
			}
		}
	}
	delete(a.fs.loopUnit, l.Header)
}

// analyzeLoopOnce runs one attempt of Algorithm 1 with the given exit
// reservation, returning the actual back-edge save cost it ended up
// needing (0 when no back-edge checkpoint was placed).
func (a *analyzer) analyzeLoopOnce(l *cfg.Loop, reserveExit float64) (float64, error) {
	fs := a.fs

	// Step 1: analyze the loop body without the back-edge(s).
	exclude := map[ir.Edge]bool{}
	for _, latch := range l.Latches {
		exclude[ir.Edge{From: latch, To: l.Header}] = true
	}
	var childUnits []*unit
	for hdr, u := range fs.loopUnit {
		if l.Contains(hdr) && hdr != l.Header && directChild(fs, l, hdr) {
			childUnits = append(childUnits, u)
		}
	}
	for blk, u := range fs.callUnit {
		if l.Contains(blk) && !insideChildLoop(fs, l, blk) {
			childUnits = append(childUnits, u)
		}
	}
	sortUnits(childUnits)

	sg := buildScope(fs, l.Header, l.Blocks, childUnits, exclude)
	sg.startBudget = a.conf.Budget - a.model.SaveRegsCost() - a.model.RestoreRegsCost()
	sg.exitReq = reserveExit
	if err := a.analyzeScope(sg); err != nil {
		return 0, err
	}

	// Step 2: decide the back-edge scheme and build the unit.
	u := &unit{
		rep:    l.Header,
		blocks: map[*ir.Block]bool{},
	}
	for b := range l.Blocks {
		u.blocks[b] = true
	}

	headerAlloc := a.allocOfBlock(l.Header)
	latch := l.Latch()
	bodyHasCk := a.loopBodyCheckpointed(l)

	backEdgeLive := a.liveAt(nil, l.Header)
	if latch != nil {
		e := ir.Edge{From: latch, To: l.Header}
		backEdgeLive = a.liveAt(&e, nil)
	}

	atomicBackEdge := latch != nil && latch.Atomic && l.Header.Atomic
	actualSave := 0.0

	switch {
	case bodyHasCk || latch == nil:
		// Internal checkpoints (or an irregular multi-latch loop): a plain
		// back-edge checkpoint keeps every iteration starting from a full
		// capacitor, so the single-iteration analysis stays sound.
		for _, lt := range l.Latches {
			if lt.Atomic && l.Header.Atomic {
				return 0, fmt.Errorf("schematic: func %s: atomic loop at %s needs a back-edge checkpoint",
					fs.f.Name, l.Header.Name)
			}
			e := ir.Edge{From: lt, To: l.Header}
			if fs.ckAt(e) == nil {
				fs.enable(e, a.allocOfBlock(lt), headerAlloc, 0)
				a.stats.Checkpoints++
			}
			if s := a.saveSetCost(a.allocOfBlock(lt), backEdgeLive); s > actualSave {
				actualSave = s
			}
		}
		u.checkpointed = true
		u.entry = a.execCost(l.Header, headerAlloc) + fs.etoLeave[l.Header]
		u.exitLeft = a.loopExitLeftSafe(l, sg.startBudget, u.entry)
		// Wrap feasibility: after the back-edge checkpoint replenishes,
		// the restore plus the path to the first internal checkpoint must
		// fit in EB.
		restore := a.restoreSetCost(headerAlloc, backEdgeLive)
		if restore+u.entry > a.conf.Budget {
			return 0, fmt.Errorf("schematic: func %s: loop at %s: wrap segment exceeds EB=%.1f nJ",
				fs.f.Name, l.Header.Name, a.conf.Budget)
		}

	case !headerAlloc.equal(a.allocOfBlock(latch)):
		// Algorithm 1 line 2: differing allocations require a back-edge
		// checkpoint to switch them.
		if atomicBackEdge {
			return 0, fmt.Errorf("schematic: func %s: atomic loop at %s needs an allocation-switch checkpoint",
				fs.f.Name, l.Header.Name)
		}
		e := ir.Edge{From: latch, To: l.Header}
		fs.enable(e, a.allocOfBlock(latch), headerAlloc, 0)
		a.stats.Checkpoints++
		eloop := sg.startBudget - fs.eleft[latch] + a.backEdgeJmpCost()
		save := a.saveSetCost(a.allocOfBlock(latch), backEdgeLive)
		actualSave = save
		restore := a.restoreSetCost(headerAlloc, backEdgeLive)
		u.checkpointed = true
		u.entry = eloop + save
		u.exitLeft = minf(a.conf.Budget-restore-eloop,
			a.loopExitLeftSafe(l, sg.startBudget, u.entry))

	default:
		// Algorithm 1 lines 5–10: conditional checkpointing every numit
		// iterations. The per-iteration cost must include the traversal of
		// the split back-edge block and the NVM write that updates the
		// iteration counter, or numit is optimistic and the runtime would
		// fail mid-segment.
		save := a.saveSetCost(headerAlloc, backEdgeLive)
		restore := a.restoreSetCost(headerAlloc, backEdgeLive)
		eloopPlain := sg.startBudget - fs.eleft[latch]
		eloop := eloopPlain + a.backEdgeJmpCost() + a.model.NVMWriteEnergy
		// Reserve one checkpoint cycle of headroom so the unit's entry
		// demand (numit iterations + save) stays satisfiable from any
		// context: a fresh checkpoint before the loop must cover its
		// restore, a possible call overhead, and a short pre-loop prefix.
		reserve := a.model.SaveRegsCost() + a.model.RestoreRegsCost()
		usable := a.conf.Budget - save - restore - reserve
		numit := 1
		if eloop > 0 {
			numit = int(usable / eloop)
			if numit < 1 {
				numit = 1
			}
		} else {
			numit = 1 << 20 // a free loop body never needs checkpoints
		}
		if a.conf.DisableCondCheckpoints {
			numit = 1 // ablation: checkpoint on every back edge
		}
		maxit := a.loopMaxIter(l)
		if maxit > 0 && numit > maxit {
			// Line 8: no back-edge checkpoint; the whole loop is a plain
			// region of bounded energy (one extra iteration of slack covers
			// the final header evaluation and partial exit paths).
			u.checkpointed = false
			u.energy = float64(maxit+1) * eloopPlain
		} else {
			if atomicBackEdge {
				return 0, fmt.Errorf("schematic: func %s: atomic loop at %s does not fit the energy budget without a back-edge checkpoint (bound %d, need every %d)",
					fs.f.Name, l.Header.Name, maxit, numit)
			}
			if restore+eloop+save > a.conf.Budget {
				return 0, fmt.Errorf("schematic: func %s: loop at %s cannot complete one iteration within EB=%.1f nJ",
					fs.f.Name, l.Header.Name, a.conf.Budget)
			}
			e := ir.Edge{From: latch, To: l.Header}
			fs.enable(e, headerAlloc, headerAlloc, numit)
			a.stats.Checkpoints++
			if numit > 1 {
				a.stats.CondCheckpoints++
			}
			actualSave = save
			u.checkpointed = true
			u.entry = float64(numit)*eloop + save
			u.exitLeft = minf(a.conf.Budget-restore-float64(numit)*eloop,
				a.loopExitLeftSafe(l, sg.startBudget, u.entry))
			if u.exitLeft < 0 {
				u.exitLeft = 0
			}
		}
	}

	// Impose a single exit allocation: checkpoint any exit edge whose
	// source allocation differs from the canonical one.
	canonical := a.canonicalLoopExitAlloc(l)
	for _, ee := range a.loopExitEdges(l) {
		src := a.allocOfBlock(ee.From)
		if !src.equal(canonical) && fs.ckAt(ee) == nil {
			if ee.From.Atomic && ee.To.Atomic {
				return 0, fmt.Errorf("schematic: func %s: loop exit %v inside an atomic section needs an allocation switch",
					fs.f.Name, ee)
			}
			fs.enable(ee, src, canonical, 0)
			a.stats.Checkpoints++
			u.checkpointed = true
		}
	}
	u.entryVM = normalize(headerAlloc)
	u.exitVM = normalize(canonical)
	a.collectUnitContract(u, l)
	fs.loopUnit[l.Header] = u
	return actualSave, nil
}

// backEdgeJmpCost is the energy of traversing the block that a back-edge
// checkpoint is split into (its trailing jump runs on every iteration).
func (a *analyzer) backEdgeJmpCost() float64 {
	return a.model.InstrEnergy(&ir.Jmp{}, ir.NVM)
}

func sortUnits(us []*unit) {
	sort.Slice(us, func(i, j int) bool { return us[i].rep.Index < us[j].rep.Index })
}

// directChild reports whether the loop headed at hdr is an immediate child
// of l in the loop forest.
func directChild(fs *funcState, l *cfg.Loop, hdr *ir.Block) bool {
	child := fs.lf.HeaderLoop(hdr)
	return child != nil && child.Parent == l
}

// insideChildLoop reports whether blk lies in a loop nested inside l.
func insideChildLoop(fs *funcState, l *cfg.Loop, blk *ir.Block) bool {
	inner := fs.lf.LoopOf(blk)
	return inner != nil && inner != l
}

// loopBodyCheckpointed reports whether the analyzed body contains enabled
// checkpoints or checkpointed child units.
func (a *analyzer) loopBodyCheckpointed(l *cfg.Loop) bool {
	for e := range a.fs.cks {
		if l.Contains(e.From) && l.Contains(e.To) &&
			!(e.To == l.Header && containsLatch(l, e.From)) {
			return true
		}
	}
	for hdr, u := range a.fs.loopUnit {
		if l.Contains(hdr) && hdr != l.Header && u.checkpointed {
			return true
		}
	}
	for blk, u := range a.fs.callUnit {
		if l.Contains(blk) && u.checkpointed {
			return true
		}
	}
	return false
}

func containsLatch(l *cfg.Loop, b *ir.Block) bool {
	for _, lt := range l.Latches {
		if lt == b {
			return true
		}
	}
	return false
}

// loopMaxIter returns the loop's trip bound: the @max annotation, or the
// profiled estimate as a fallback (paper: "The maximum number of
// iterations of loops is provided using annotations").
func (a *analyzer) loopMaxIter(l *cfg.Loop) int {
	if l.MaxIter > 0 {
		return l.MaxIter
	}
	if a.conf.Profile != nil {
		if est := a.conf.Profile.LoopIterEstimate(l.Header); est > 0 {
			return est
		}
	}
	return 0
}

// loopExitEdges lists the edges leaving the loop, deterministically.
func (a *analyzer) loopExitEdges(l *cfg.Loop) []ir.Edge {
	var out []ir.Edge
	var blocks []*ir.Block
	for b := range l.Blocks {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	for _, b := range blocks {
		for _, s := range b.Succs() {
			if !l.Contains(s) {
				out = append(out, ir.Edge{From: b, To: s})
			}
		}
	}
	return out
}

// canonicalLoopExitAlloc picks the single exit allocation: the allocation
// of the first exit-source block.
func (a *analyzer) canonicalLoopExitAlloc(l *cfg.Loop) allocMap {
	ee := a.loopExitEdges(l)
	if len(ee) == 0 {
		return allocMap{}
	}
	return a.allocOfBlock(ee[0].From)
}

// loopExitLeftSafe is the guaranteed energy remaining when the loop exits.
// An exit path may bypass every internal replenishment (e.g. a zero-trip
// exit from the header), in which case only the entry guarantee bounds it:
// remaining ≥ entryNeed − drain(header→exit). The body scope's Eleft gives
// drain = startBudget − eleft, so both bounds combine per exit source as
// min(eleft, entryNeed − startBudget + eleft), clamped at zero.
func (a *analyzer) loopExitLeftSafe(l *cfg.Loop, startBudget, entryNeed float64) float64 {
	left := a.conf.Budget
	for _, ee := range a.loopExitEdges(l) {
		el, ok := a.fs.eleft[ee.From]
		if !ok {
			return 0 // exit from a block this scope did not track
		}
		bound := minf(el, entryNeed-startBudget+el)
		if bound < left {
			left = bound
		}
	}
	if left < 0 {
		return 0
	}
	return left
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// collectUnitContract fills the unit's accessed/nvmAccessed/vmDemand
// fields from the loop's blocks and callee contracts.
func (a *analyzer) collectUnitContract(u *unit, l *cfg.Loop) {
	u.accessed = map[*ir.Var]bool{}
	u.nvmAccessed = map[*ir.Var]bool{}
	entryBytes := a.allocOfBlock(l.Header).bytes()
	maxExtra := 0
	for b := range l.Blocks {
		alloc := a.allocOfBlock(b)
		if extra := alloc.bytes() - entryBytes; extra > maxExtra {
			maxExtra = extra
		}
		for _, in := range b.Instrs {
			if v, _, ok := ir.AccessedVar(in); ok {
				u.accessed[v] = true
				if !alloc[v] {
					u.nvmAccessed[v] = true
				}
			}
			if call, ok := in.(*ir.Call); ok {
				sum := a.summaries[call.Callee]
				if sum == nil {
					continue
				}
				for v := range sum.accessed {
					u.accessed[v] = true
				}
				for v := range sum.nvmAccessed {
					u.nvmAccessed[v] = true
				}
				if sum.vmDemand > u.vmDemand {
					u.vmDemand = sum.vmDemand
				}
			}
		}
	}
	u.vmDemand += maxExtra
	// A variable the unit holds in VM in some interval is managed by its
	// internal checkpoints; do not force it to NVM outside.
	for b := range l.Blocks {
		for v := range a.allocOfBlock(b) {
			delete(u.nvmAccessed, v)
		}
	}
	if u.checkpointed {
		// Checkpointed units clear VM internally; outer coherence is
		// enforced by the live-variable pinning at their boundaries, so no
		// NVM forcing is needed.
		u.nvmAccessed = map[*ir.Var]bool{}
	}
}
