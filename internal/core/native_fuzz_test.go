package schematic

import (
	"math/rand"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// FuzzSchematicGuarantees is the native fuzzing entry point: the fuzzer
// explores generator seeds and budget scales, and every transformable
// program must keep the paper's guarantees. Run with
//
//	go test ./internal/core -fuzz FuzzSchematicGuarantees -fuzztime 30s
func FuzzSchematicGuarantees(f *testing.F) {
	f.Add(int64(1), uint16(1000))
	f.Add(int64(7), uint16(4000))
	f.Add(int64(42), uint16(20000))
	model := energy.MSP430FR5969()

	f.Fuzz(func(t *testing.T, seed int64, tbpfRaw uint16) {
		tbpf := int64(tbpfRaw)
		if tbpf < 300 {
			tbpf = 300 + tbpf
		}
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("generator produced uncompilable source: %v\n%s", err, src)
		}
		prof, err := trace.Collect(m, trace.Options{Runs: 2, Seed: seed, Model: model, MaxSteps: 30_000_000})
		if err != nil {
			t.Skip("profiling hit the step bound") // extreme nesting; not a pass bug
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(seed^0x5eed)))
		ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 60_000_000})
		if err != nil || ref.Verdict != emulator.Completed {
			t.Skip("reference run out of budget")
		}
		eb := prof.EBForTBPF(tbpf)
		conf := Config{Model: model, Budget: eb, VMSize: 2048, Profile: prof}
		tr := ir.Clone(m)
		if _, err := Apply(tr, conf); err != nil {
			return // an honest infeasibility verdict is fine
		}
		if err := Validate(tr, conf); err != nil {
			t.Fatalf("Validate rejected pass output (seed=%d tbpf=%d): %v", seed, tbpf, err)
		}
		res, err := emulator.Run(tr, emulator.Config{
			Model: model, VMSize: 2048, Intermittent: true, EB: eb,
			Inputs: inputs, MaxSteps: 120_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != emulator.Completed || res.PowerFailures != 0 || res.Energy.Reexecution != 0 {
			t.Fatalf("guarantee violated (seed=%d tbpf=%d): verdict=%v failures=%d reexec=%.1f",
				seed, tbpf, res.Verdict, res.PowerFailures, res.Energy.Reexecution)
		}
		if res.UnsyncedReads != 0 {
			t.Fatalf("poison reads (seed=%d tbpf=%d)", seed, tbpf)
		}
		if len(res.Output) != len(ref.Output) {
			t.Fatalf("output length changed (seed=%d tbpf=%d)", seed, tbpf)
		}
		for i := range ref.Output {
			if res.Output[i] != ref.Output[i] {
				t.Fatalf("output[%d] differs (seed=%d tbpf=%d): %d vs %d",
					i, seed, tbpf, res.Output[i], ref.Output[i])
			}
		}
	})
}
