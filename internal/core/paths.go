package schematic

import (
	"sort"

	"schematic/internal/ir"
)

// node is a vertex of a scope's reduced graph: a plain block, or a
// collapsed unit (an analyzed loop, or an isolated checkpointed call).
type node struct {
	rep  *ir.Block
	unit *unit // nil for plain blocks
}

func (n *node) plain() bool { return n.unit == nil }

// covers returns the CFG blocks the node stands for.
func (n *node) covers() map[*ir.Block]bool {
	if n.unit != nil {
		return n.unit.blocks
	}
	return map[*ir.Block]bool{n.rep: true}
}

// step is one element of a path: the node plus the concrete CFG edge that
// entered it (absent for the first step of a scope path).
type step struct {
	n      *node
	inEdge ir.Edge
	hasIn  bool
}

// pathT is an enumerated acyclic path through a scope.
type pathT struct {
	steps []step
	// exitEdge is the concrete CFG edge leaving the scope at the end of
	// the path; nil when the path ends at a return block.
	exitEdge *ir.Edge
	freq     int64
}

// scopeGraph is the reduced view of one analysis scope: a loop body
// without its back-edge, or a function's top level with loops collapsed.
type scopeGraph struct {
	fs      *funcState
	entry   *node
	blocks  map[*ir.Block]bool // all covered CFG blocks
	nodeOf  map[*ir.Block]*node
	exclude map[ir.Edge]bool

	startBudget float64
	exitReq     float64
	// entryAlloc/exitAlloc are the canonical boundary allocations, fixed by
	// the first path decision (the paper imposes a single exit allocation,
	// III-B1); nil until decided.
	entryAlloc allocMap
	exitAlloc  allocMap
	// entryHasCk marks scopes whose entry is preceded by a checkpoint
	// (main's boot checkpoint), letting the first interval choose its
	// allocation freely.
	entryHasCk bool
}

// buildScope constructs the reduced graph over the given blocks, with the
// listed units collapsed and the given edges (back-edges) excluded.
func buildScope(fs *funcState, entry *ir.Block, blocks map[*ir.Block]bool,
	units []*unit, exclude map[ir.Edge]bool) *scopeGraph {
	sg := &scopeGraph{
		fs:      fs,
		blocks:  blocks,
		nodeOf:  map[*ir.Block]*node{},
		exclude: exclude,
	}
	covered := map[*ir.Block]*node{}
	for _, u := range units {
		un := &node{rep: u.rep, unit: u}
		for b := range u.blocks {
			covered[b] = un
		}
	}
	for b := range blocks {
		if un, ok := covered[b]; ok {
			sg.nodeOf[b] = un
			continue
		}
		sg.nodeOf[b] = &node{rep: b}
	}
	sg.entry = sg.nodeOf[entry]
	return sg
}

// succEdge is an outgoing connection of a node.
type succEdge struct {
	edge ir.Edge
	to   *node // nil when the edge leaves the scope
}

// succs lists a node's outgoing edges in deterministic order, skipping
// unit-internal and excluded edges.
func (sg *scopeGraph) succs(n *node) []succEdge {
	var srcs []*ir.Block
	for b := range n.covers() {
		srcs = append(srcs, b)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Index < srcs[j].Index })
	var out []succEdge
	for _, b := range srcs {
		for _, s := range b.Succs() {
			e := ir.Edge{From: b, To: s}
			if sg.exclude[e] || n.covers()[s] {
				continue
			}
			if !sg.blocks[s] {
				out = append(out, succEdge{edge: e})
				continue
			}
			out = append(out, succEdge{edge: e, to: sg.nodeOf[s]})
		}
	}
	return out
}

// enumeratePaths lists the acyclic paths of the scope from its entry to
// its exits, capped at maxPaths, sorted by profiled frequency (descending,
// never-executed last — paper III-A3). freq supplies edge traversal
// counts; nil makes all paths equal.
func (sg *scopeGraph) enumeratePaths(maxPaths int, freq func(ir.Edge) int64) []*pathT {
	var paths []*pathT
	var cur []step
	onPath := map[*node]bool{}

	var rec func(s step)
	rec = func(s step) {
		if len(paths) >= maxPaths {
			return
		}
		cur = append(cur, s)
		onPath[s.n] = true
		defer func() {
			cur = cur[:len(cur)-1]
			delete(onPath, s.n)
		}()

		n := s.n
		ss := sg.succs(n)
		inScope := 0
		for _, se := range ss {
			if se.to != nil {
				inScope++
			}
		}
		_, isRet := n.rep.Terminator().(*ir.Ret)
		endsHere := inScope == 0 || (isRet && n.plain()) || len(ss) > inScope
		if endsHere {
			p := &pathT{steps: append([]step(nil), cur...)}
			for _, se := range ss {
				if se.to == nil {
					e := se.edge
					p.exitEdge = &e
					break
				}
			}
			paths = append(paths, p)
		}
		for _, se := range ss {
			if se.to == nil || onPath[se.to] {
				continue
			}
			if len(paths) >= maxPaths {
				return
			}
			rec(step{n: se.to, inEdge: se.edge, hasIn: true})
		}
	}
	rec(step{n: sg.entry})

	for _, p := range paths {
		p.freq = pathFreq(p, freq)
	}
	sort.SliceStable(paths, func(i, j int) bool { return paths[i].freq > paths[j].freq })
	return paths
}

func pathFreq(p *pathT, freq func(ir.Edge) int64) int64 {
	if freq == nil {
		return 1
	}
	min := int64(-1)
	for _, s := range p.steps {
		if !s.hasIn {
			continue
		}
		f := freq(s.inEdge)
		if min == -1 || f < min {
			min = f
		}
	}
	if min == -1 {
		return 1
	}
	return min
}

// containsUnanalyzed reports whether the path still has work to do.
func (sg *scopeGraph) containsUnanalyzed(p *pathT) bool {
	for _, s := range p.steps {
		if s.n.plain() && !sg.fs.analyzed[s.n.rep] {
			return true
		}
	}
	return false
}
