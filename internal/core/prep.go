package schematic

import (
	"fmt"

	"schematic/internal/ir"
)

// isolateCheckpointedCalls splits blocks so that every call to a callee
// containing checkpoints sits alone in its own block (with its jump). The
// enclosing scope then treats such calls as checkpointed units of the RCG.
func (a *analyzer) isolateCheckpointedCalls(f *ir.Func) error {
	for idx := 0; idx < len(f.Blocks); idx++ {
		b := f.Blocks[idx]
		for i, in := range b.Instrs {
			call, ok := in.(*ir.Call)
			if !ok {
				continue
			}
			sum := a.summaries[call.Callee]
			if sum == nil {
				return fmt.Errorf("schematic: callee %s of %s not yet analyzed", call.Callee.Name, f.Name)
			}
			if !sum.hasCheckpoints {
				continue
			}
			if b.Atomic {
				return fmt.Errorf("schematic: func %s: call to checkpointed %s inside an atomic section",
					f.Name, call.Callee.Name)
			}
			if len(b.Instrs) == 2 && i == 0 {
				continue // already isolated
			}
			rest := f.NewBlock(b.Name + ".cont")
			rest.Instrs = append([]ir.Instr(nil), b.Instrs[i+1:]...)
			if i == 0 {
				b.Instrs = []ir.Instr{call, &ir.Jmp{Target: rest}}
			} else {
				cb := f.NewBlock(b.Name + ".call")
				cb.Instrs = []ir.Instr{call, &ir.Jmp{Target: rest}}
				b.Instrs = append(b.Instrs[:i:i], &ir.Jmp{Target: cb})
			}
			break // the tail is rescanned when rest's index comes up
		}
	}
	f.Renumber()
	return nil
}

// splitOversizedBlocks cuts any block whose worst-case (all-NVM) energy
// exceeds the budget slack into pieces, so the RCG always has candidate
// checkpoint locations close enough together (paper footnote 2: "basic
// blocks requiring more than EB are split to fit in the energy budget").
func (a *analyzer) splitOversizedBlocks(f *ir.Func) {
	maxChunk := a.conf.Budget - 2*(a.model.SaveRegsCost()+a.model.RestoreRegsCost())
	if maxChunk <= 0 {
		maxChunk = a.conf.Budget / 2
	}
	for idx := 0; idx < len(f.Blocks); idx++ {
		b := f.Blocks[idx]
		if b.Atomic {
			continue // atomic sections must not gain checkpoint locations
		}
		if len(b.Instrs) == 2 {
			if _, isCall := b.Instrs[0].(*ir.Call); isCall {
				continue // isolated checkpointed call: not splittable
			}
		}
		cost := 0.0
		for i, in := range b.Instrs {
			c := a.model.InstrEnergy(in, ir.NVM)
			if call, ok := in.(*ir.Call); ok {
				if sum := a.summaries[call.Callee]; sum != nil && !sum.hasCheckpoints {
					c += sum.energy
				}
			}
			if cost+c > maxChunk && i > 0 && i < len(b.Instrs)-1 {
				rest := f.NewBlock(b.Name + ".split")
				rest.Instrs = append([]ir.Instr(nil), b.Instrs[i:]...)
				b.Instrs = append(b.Instrs[:i:i], &ir.Jmp{Target: rest})
				break // rest is processed when its index comes up
			}
			cost += c
		}
	}
	f.Renumber()
}
