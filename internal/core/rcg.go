package schematic

import (
	"fmt"

	"schematic/internal/ir"
)

// segment is a maximal run of not-yet-analyzed path nodes, bounded by
// analyzed plain blocks or the scope's virtual boundaries. Checkpoint
// placement and allocation for the segment are decided with a Reachable
// Checkpoint Graph (paper, III-A1), honouring the energy context inherited
// from earlier paths (III-A3).
type segment struct {
	steps []step

	startEdge *ir.Edge // boundary edge into steps[0], nil at scope entry
	endEdge   *ir.Edge // boundary edge out of the last step, nil at scope exit

	startCk     bool    // a checkpoint precedes the segment (main's boot)
	startBudget float64 // energy available at segment start when !startCk
	forcedStart allocMap

	endRequired float64
	forcedEnd   allocMap
}

// rcgNode is a vertex of the RCG.
type rcgNode struct {
	kind rcgKind
	// pos orders nodes along the segment: candidate i sits before step i;
	// a checkpointed unit at step i sits between candidates i and i+1.
	pos float64
	// candidate checkpoint location (kind == rcgCand).
	edge ir.Edge
	// checkpointed unit (kind == rcgUnit).
	unit *unit
	// unitEdge is the concrete edge entering the unit, for liveness.
	unitEdge *ir.Edge
}

type rcgKind int

const (
	rcgStart rcgKind = iota
	rcgCand
	rcgUnit
	rcgEnd
)

// rcgEdgeChoice is a feasible RCG edge with its evaluated interval.
type rcgEdgeChoice struct {
	from, to int // node indices
	res      intervalResult
	ictx     *intervalCtx
}

// placement is the outcome of solving a segment: the enabled checkpoint
// candidates and the allocation of every interval on the shortest path.
type placement struct {
	intervals []placedInterval
	ckEdges   []ir.Edge
}

type placedInterval struct {
	steps []step
	alloc allocMap
	// boundaries for bookkeeping
	startCk, endCk     bool
	startEdge, endEdge *ir.Edge
}

// solveSegment builds the segment's RCG and finds the minimum-energy
// checkpoint placement via shortest path. The RCG is a DAG ordered by
// position, so the shortest path is computed by dynamic programming in
// position order (equivalent to the paper's Dijkstra run, III-C).
func (a *analyzer) solveSegment(seg *segment) (*placement, error) {
	type nodeRec struct {
		n    rcgNode
		dist float64
		prev int
		via  *rcgEdgeChoice
		ok   bool
	}
	var nodes []nodeRec
	add := func(n rcgNode) int {
		nodes = append(nodes, nodeRec{n: n, dist: 0, prev: -1})
		return len(nodes) - 1
	}
	startIdx := add(rcgNode{kind: rcgStart, pos: -1})

	// Candidate checkpoint locations: the boundary edge into the segment,
	// the edges between consecutive steps, and the boundary edge out.
	n := len(seg.steps)
	atomicEdge := func(e ir.Edge) bool { return e.From.Atomic && e.To.Atomic }
	if seg.startEdge != nil && !atomicEdge(*seg.startEdge) {
		add(rcgNode{kind: rcgCand, pos: 0, edge: *seg.startEdge})
	}
	for i := 1; i < n; i++ {
		if !atomicEdge(seg.steps[i].inEdge) {
			add(rcgNode{kind: rcgCand, pos: float64(i), edge: seg.steps[i].inEdge})
		}
	}
	if seg.endEdge != nil && !atomicEdge(*seg.endEdge) {
		add(rcgNode{kind: rcgCand, pos: float64(n), edge: *seg.endEdge})
	}
	// Checkpointed units are mandatory pass-through nodes.
	for i, s := range seg.steps {
		if !s.n.plain() && s.n.unit.checkpointed {
			nd := rcgNode{kind: rcgUnit, pos: float64(i) + 0.5, unit: s.n.unit}
			if s.hasIn {
				e := s.inEdge
				nd.unitEdge = &e
			}
			add(nd)
		}
	}
	endIdx := add(rcgNode{kind: rcgEnd, pos: float64(n) + 1})

	// Candidate i sits at position i, before step i; every step's body sits
	// at position i+0.5 (checkpointed units are RCG nodes at that same
	// position). stepsBetween returns the steps whose bodies lie strictly
	// between two node positions — the content of that interval.
	stepsBetween := func(from, to float64) []step {
		var out []step
		for i, s := range seg.steps {
			p := float64(i) + 0.5
			if p > from && p < to {
				if !s.n.plain() && s.n.unit.checkpointed {
					continue // boundary node, not interval content
				}
				out = append(out, s)
			}
		}
		return out
	}
	// blocked reports whether a checkpointed unit lies strictly between.
	blocked := func(from, to float64) bool {
		for i, s := range seg.steps {
			if s.n.plain() || !s.n.unit.checkpointed {
				continue
			}
			p := float64(i) + 0.5
			if p > from && p < to {
				return true
			}
		}
		return false
	}

	// Build the interval context of an RCG edge.
	buildCtx := func(x, y *rcgNode) *intervalCtx {
		ictx := &intervalCtx{steps: stepsBetween(x.pos, y.pos)}
		switch x.kind {
		case rcgStart:
			ictx.startCk = seg.startCk
			ictx.startEdge = seg.startEdge
			if !seg.startCk {
				ictx.startBudget = seg.startBudget
				ictx.forcedStart = seg.forcedStart
			}
		case rcgCand:
			ictx.startCk = true
			e := x.edge
			ictx.startEdge = &e
		case rcgUnit:
			ictx.startCk = false
			ictx.startBudget = x.unit.exitLeft
			ictx.forcedStart = allocMap(varSet(x.unit.exitVM))
		}
		switch y.kind {
		case rcgEnd:
			ictx.endCk = false
			ictx.endRequired = seg.endRequired
			ictx.forcedEnd = seg.forcedEnd
			ictx.endEdge = seg.endEdge
		case rcgCand:
			ictx.endCk = true
			e := y.edge
			ictx.endEdge = &e
		case rcgUnit:
			ictx.endCk = false
			ictx.endRequired = y.unit.entry
			ictx.endEdge = y.unitEdge
			ictx.extraMandatory = map[*ir.Var]bool{}
			for _, v := range y.unit.entryVM {
				ictx.extraMandatory[v] = true
			}
			ictx.extraForbidden = map[*ir.Var]bool{}
			for v := range y.unit.nvmAccessed {
				ictx.extraForbidden[v] = true
			}
			live := a.liveAt(y.unitEdge, y.unit.rep)
			entrySet := varSet(y.unit.entryVM)
			for _, v := range a.fs.f.Locals {
				if live(v) && !entrySet[v] {
					ictx.extraForbidden[v] = true
				}
			}
			for _, v := range a.mod.Globals {
				if live(v) && !entrySet[v] {
					ictx.extraForbidden[v] = true
				}
			}
		}
		return ictx
	}

	// Dynamic program over nodes in position order (they were added in
	// order except units; sort by pos).
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && nodes[order[j]].n.pos < nodes[order[j-1]].n.pos; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	nodes[startIdx].ok = true
	for _, yi := range order {
		if yi == startIdx {
			continue
		}
		y := &nodes[yi]
		for _, xi := range order {
			x := &nodes[xi]
			if !x.ok || x.n.pos >= y.n.pos {
				continue
			}
			// A checkpointed unit strictly between makes the edge invalid.
			if blocked(x.n.pos, y.n.pos) {
				continue
			}
			// Units are mandatory: an edge may not jump over... (blocked
			// covers it). Also forbid zero-length start→end shortcuts when
			// both ends are the same position class.
			ictx := buildCtx(&x.n, &y.n)
			res, err := a.evalInterval(ictx)
			if err != nil {
				return nil, err
			}
			if !res.feasible {
				continue
			}
			cand := x.dist + res.weight
			if !y.ok || cand < y.dist {
				y.ok = true
				y.dist = cand
				y.prev = xi
				y.via = &rcgEdgeChoice{from: xi, to: yi, res: res, ictx: ictx}
			}
		}
	}
	if !nodes[endIdx].ok {
		var names []string
		for _, s := range seg.steps {
			names = append(names, s.n.rep.Name)
		}
		if debugRCG {
			fmt.Printf("=== infeasible segment in %s: %v\n", a.fs.f.Name, names)
			for _, yi := range order {
				y := nodes[yi]
				desc := func(n rcgNode) string {
					switch n.kind {
					case rcgStart:
						return "S"
					case rcgEnd:
						return "E"
					case rcgUnit:
						return fmt.Sprintf("U(%s entry=%.1f exitLeft=%.1f)", n.unit.rep.Name, n.unit.entry, n.unit.exitLeft)
					default:
						return fmt.Sprintf("c(%v)", n.edge)
					}
				}
				fmt.Printf("  node %-50s ok=%v dist=%.1f\n", desc(y.n), y.ok, y.dist)
				for _, xi := range order {
					x := nodes[xi]
					if !x.ok || x.n.pos >= y.n.pos || blocked(x.n.pos, y.n.pos) {
						continue
					}
					ictx := buildCtx(&x.n, &y.n)
					res, _ := a.evalInterval(ictx)
					fmt.Printf("    from %-46s feasible=%v weight=%.1f\n", desc(x.n), res.feasible, res.weight)
				}
			}
		}
		return nil, fmt.Errorf("schematic: func %s: no feasible checkpoint placement for segment %v (startCk=%v budget=%.1f startBudget=%.1f endReq=%.1f forcedStart=%v forcedEnd=%v)",
			a.fs.f.Name, names, seg.startCk, a.conf.Budget, seg.startBudget, seg.endRequired,
			normalize(seg.forcedStart), normalize(seg.forcedEnd))
	}

	// Walk back the shortest path.
	pl := &placement{}
	for yi := endIdx; yi != startIdx; {
		rec := nodes[yi]
		ch := rec.via
		pi := placedInterval{
			steps:   ch.ictx.steps,
			alloc:   ch.res.alloc,
			startCk: ch.ictx.startCk, endCk: ch.ictx.endCk,
			startEdge: ch.ictx.startEdge, endEdge: ch.ictx.endEdge,
		}
		pl.intervals = append([]placedInterval{pi}, pl.intervals...)
		if nodes[ch.from].n.kind == rcgCand {
			pl.ckEdges = append(pl.ckEdges, nodes[ch.from].n.edge)
		}
		yi = rec.prev
	}
	return pl, nil
}

// debugRCG enables the infeasible-segment dump (set by tests).
var debugRCG = false
