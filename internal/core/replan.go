package schematic

import (
	"schematic/internal/ir"
)

// StripCheckpoints removes all checkpoint instrumentation from a module:
// checkpoint instructions, loop-counter state, and the per-block memory
// allocations. Blocks introduced by edge splitting remain (they are empty
// jumps and cost two cycles each); the module is again a valid input for
// Apply.
func StripCheckpoints(m *ir.Module) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if _, isCk := in.(*ir.Checkpoint); isCk {
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
			b.Alloc = nil
		}
	}
}

// Replan implements the recovery path of the paper's §VI: when the
// capacitor has aged (or temperature shifted) so that its usable energy is
// below the one the program was compiled for, the device detects repeated
// restarts from the same checkpoint and a new placement is computed for
// the smaller budget — deployed via an over-the-air update in the field,
// and applied in place here.
//
// The module may be untransformed or carry a previous placement; any
// existing instrumentation is stripped before the new analysis.
func Replan(m *ir.Module, conf Config) (*Stats, error) {
	StripCheckpoints(m)
	return Apply(m, conf)
}
