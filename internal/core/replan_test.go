package schematic

import (
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/trace"
)

// The §VI aging scenario: a program compiled for a healthy capacitor is
// re-planned after the capacitor degrades, and the new placement restores
// the forward-progress guarantee at the reduced budget.
func TestReplanForAgedCapacitor(t *testing.T) {
	model := energy.MSP430FR5969()
	m := compile(t, longLoopSrc)
	prof, err := trace.Collect(m, trace.Options{Runs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]int64{"data": make([]int64, 16)}
	for i := range inputs["data"] {
		inputs["data"][i] = int64(i * 11)
	}
	ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}

	const healthy = 6000.0
	aged := healthy * 0.55

	tr := ir.Clone(m)
	if _, err := Apply(tr, Config{Model: model, Budget: healthy, VMSize: 2048, Profile: prof}); err != nil {
		t.Fatal(err)
	}
	// Running the healthy-budget binary on the aged capacitor loses the
	// guarantee: failures (and their re-execution) appear, or the run gets
	// stuck. Either way the guarantee metrics degrade.
	degraded, err := emulator.Run(tr, emulator.Config{
		Model: model, VMSize: 2048, Intermittent: true, EB: aged, Inputs: inputs,
		MaxSteps: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Verdict == emulator.Completed && degraded.PowerFailures == 0 {
		t.Skip("aged capacitor still sufficient for this placement; scenario not triggered")
	}

	// Recovery: replan for the aged budget.
	stats, err := Replan(tr, Config{Model: model, Budget: aged, VMSize: 2048, Profile: prof})
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if stats.Checkpoints == 0 {
		t.Fatalf("replan placed no checkpoints")
	}
	if err := Validate(tr, Config{Model: model, Budget: aged, VMSize: 2048, Profile: prof}); err != nil {
		t.Fatalf("replanned module invalid: %v", err)
	}
	res, err := emulator.Run(tr, emulator.Config{
		Model: model, VMSize: 2048, Intermittent: true, EB: aged, Inputs: inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != emulator.Completed || res.PowerFailures != 0 || res.Energy.Reexecution != 0 {
		t.Fatalf("replanned run: verdict=%v failures=%d reexec=%.1f",
			res.Verdict, res.PowerFailures, res.Energy.Reexecution)
	}
	for i := range ref.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("output %v want %v", res.Output, ref.Output)
		}
	}
}

func TestStripCheckpoints(t *testing.T) {
	model := energy.MSP430FR5969()
	m := compile(t, sumSrc)
	prof, _ := trace.Collect(m, trace.Options{Runs: 3, Seed: 1})
	if _, err := Apply(m, Config{Model: model, Budget: 900, VMSize: 2048, Profile: prof}); err != nil {
		t.Fatal(err)
	}
	if len(ir.Checkpoints(m)) == 0 {
		t.Fatal("no checkpoints to strip")
	}
	StripCheckpoints(m)
	if len(ir.Checkpoints(m)) != 0 {
		t.Errorf("checkpoints remain after strip")
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if b.VMBytes() != 0 {
				t.Errorf("allocation remains on %s.%s", f.Name, b.Name)
			}
		}
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("stripped module invalid: %v", err)
	}
	// A stripped module still computes the right answer.
	res, err := emulator.Run(m, emulator.Config{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != emulator.Completed {
		t.Errorf("stripped module did not complete: %v", res.Verdict)
	}
	// And is re-appliable.
	if _, err := Apply(m, Config{Model: model, Budget: 900, VMSize: 2048, Profile: prof}); err != nil {
		t.Fatalf("re-apply after strip: %v", err)
	}
}
