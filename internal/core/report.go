package schematic

import (
	"fmt"
	"io"
	"sort"

	"schematic/internal/ir"
)

// WCECReport is the static worst-case energy-consumption report of a
// transformed module: what the validator proves, presented as numbers a
// deployment engineer can read. Every figure is a static bound, not a
// measurement — the guarantee is that no execution exceeds it.
type WCECReport struct {
	Budget float64 // EB the analysis was checked against, nJ
	Funcs  []*FuncReport
}

// FuncReport is the per-function slice of the report.
type FuncReport struct {
	Name string

	// EntryDemand is the worst-case energy a caller must still hold when
	// entering the function (through the first replenishment, or the whole
	// body for checkpoint-free functions).
	EntryDemand float64
	// ExitResidual is the guaranteed minimum energy drained since the last
	// replenishment when the function returns (0 for checkpoint-free
	// functions, which export their whole cost through EntryDemand).
	ExitResidual float64
	// HasCheckpoints reports whether the function (transitively) contains
	// an enabled checkpoint.
	HasCheckpoints bool
	// VMHighWater is the largest per-block VM allocation, bytes.
	VMHighWater int
	// WorstDrain is the largest worst-case drained energy at any block
	// entry — the tightest point of the function against the budget.
	WorstDrain float64

	Checkpoints []*CkReport
}

// CkReport describes one enabled checkpoint site.
type CkReport struct {
	ID    int
	Func  string
	Block string
	Kind  ir.CheckpointKind
	Every int // conditional period; <=1 means always

	// WorstPreFire is the worst-case energy drained when the checkpoint
	// fires: for an always-on site, the phase-1 bound at arrival; for a
	// conditional site, restore plus Every full iterations (each including
	// its counter update).
	WorstPreFire float64
	// SaveEnergy/RestoreEnergy are the static costs of the save and
	// restore at this site, honoring register-liveness refinement.
	SaveEnergy    float64
	RestoreEnergy float64
	// SaveBytes counts the volatile bytes written by a save: registers
	// (refined or full file) plus the live VM variables.
	SaveBytes int
	// Headroom is Budget − (WorstPreFire + SaveEnergy): the slack this
	// site retains in the worst case. Never negative in a valid module.
	Headroom float64
}

// Report validates the module and returns its worst-case energy report.
// The error is exactly Validate's: an invalid module has no meaningful
// report.
func Report(m *ir.Module, conf Config) (*WCECReport, error) {
	if conf.Model == nil {
		return nil, fmt.Errorf("schematic: Report: Config.Model is required")
	}
	if conf.Budget <= 0 {
		return nil, fmt.Errorf("schematic: Report: Config.Budget must be positive")
	}
	v := &validator{m: m, conf: conf, model: conf.Model}
	if err := v.run(); err != nil {
		return nil, err
	}

	rep := &WCECReport{Budget: conf.Budget}
	ckOf := map[*ir.Func][]*CkReport{}
	for ck, b := range v.ckBlocks {
		f := b.Func
		cr := &CkReport{
			ID:            ck.ID,
			Func:          f.Name,
			Block:         b.Name,
			Kind:          ck.Kind,
			Every:         ck.Every,
			WorstPreFire:  v.eFireAll[ck],
			SaveEnergy:    v.saveCost(ck, b),
			RestoreEnergy: v.restoreCost(ck, b),
			SaveBytes:     saveBytes(v, ck, b),
		}
		cr.Headroom = conf.Budget - cr.WorstPreFire - cr.SaveEnergy
		ckOf[f] = append(ckOf[f], cr)
	}

	for _, f := range m.Funcs {
		fr := &FuncReport{
			Name:           f.Name,
			EntryDemand:    v.entryDemand[f],
			ExitResidual:   v.exitResidual[f],
			HasCheckpoints: v.hasCk[f],
			Checkpoints:    ckOf[f],
		}
		for _, b := range f.Blocks {
			if n := b.VMBytes(); n > fr.VMHighWater {
				fr.VMHighWater = n
			}
		}
		for _, e := range v.worstOf[f] {
			if e > fr.WorstDrain {
				fr.WorstDrain = e
			}
		}
		sort.Slice(fr.Checkpoints, func(i, j int) bool {
			return fr.Checkpoints[i].ID < fr.Checkpoints[j].ID
		})
		rep.Funcs = append(rep.Funcs, fr)
	}
	return rep, nil
}

// saveBytes counts the bytes a checkpoint save streams to NVM.
func saveBytes(v *validator, ck *ir.Checkpoint, b *ir.Block) int {
	n := v.model.RegFileBytes
	if ck.RefinedRegs {
		rb := (ck.LiveRegs + 2) * ir.WordBytes
		if rb < n {
			n = rb
		}
	}
	if ck.RegsOnly {
		return n
	}
	vars := ck.Save
	if ck.SaveAll {
		vars = vars[:0:0]
		for vr, in := range b.Alloc {
			if in {
				vars = append(vars, vr)
			}
		}
	}
	for _, vr := range vars {
		n += vr.SizeBytes()
	}
	return n
}

// TightestCheckpoint returns the checkpoint with the least headroom, or
// nil when the module has none.
func (r *WCECReport) TightestCheckpoint() *CkReport {
	var min *CkReport
	for _, f := range r.Funcs {
		for _, c := range f.Checkpoints {
			if min == nil || c.Headroom < min.Headroom {
				min = c
			}
		}
	}
	return min
}

// Render prints the report as text.
func (r *WCECReport) Render(w io.Writer) {
	fmt.Fprintf(w, "WCEC report — EB = %.1f nJ (all figures are static worst-case bounds)\n\n", r.Budget)
	for _, f := range r.Funcs {
		fmt.Fprintf(w, "func %s:\n", f.Name)
		fmt.Fprintf(w, "  entry demand %.1f nJ, exit residual %.1f nJ, VM high-water %d B, worst drain %.1f nJ (%.0f%% of EB)\n",
			f.EntryDemand, f.ExitResidual, f.VMHighWater, f.WorstDrain, f.WorstDrain/r.Budget*100)
		for _, c := range f.Checkpoints {
			every := ""
			if c.Every > 1 {
				every = fmt.Sprintf(" every %d", c.Every)
			}
			fmt.Fprintf(w, "  ck #%-3d %-12s %s%s: pre-fire %.1f, save %.1f (%d B), restore %.1f, headroom %.1f nJ (%.0f%%)\n",
				c.ID, c.Block, c.Kind, every, c.WorstPreFire, c.SaveEnergy, c.SaveBytes,
				c.RestoreEnergy, c.Headroom, c.Headroom/r.Budget*100)
		}
	}
	if t := r.TightestCheckpoint(); t != nil {
		fmt.Fprintf(w, "\ntightest site: checkpoint #%d in %s.%s with %.1f nJ headroom (%.0f%% of EB)\n",
			t.ID, t.Func, t.Block, t.Headroom, t.Headroom/r.Budget*100)
	}
}
