package schematic

import (
	"strings"
	"testing"

	"schematic/internal/energy"
	"schematic/internal/ir"
)

func reportFor(t *testing.T, src string, budget float64, adjust func(*Config)) (*WCECReport, *ir.Module) {
	t.Helper()
	model := energy.MSP430FR5969()
	m := compile(t, src)
	prof := profileOf(t, m)
	conf := Config{Model: model, Budget: budget, VMSize: 2048, Profile: prof}
	if adjust != nil {
		adjust(&conf)
	}
	if _, err := Apply(m, conf); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	rep, err := Report(m, conf)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	return rep, m
}

func TestReportHeadroomsNonNegative(t *testing.T) {
	for _, src := range []string{sumSrc, callSrc, nestedSrc, longLoopSrc} {
		rep, _ := reportFor(t, src, 4000, nil)
		if rep.Budget != 4000 {
			t.Fatalf("budget %v", rep.Budget)
		}
		nck := 0
		for _, f := range rep.Funcs {
			if f.WorstDrain > rep.Budget+1e-6 {
				t.Errorf("%s: worst drain %.1f exceeds budget", f.Name, f.WorstDrain)
			}
			for _, c := range f.Checkpoints {
				nck++
				if c.Headroom < -1e-6 {
					t.Errorf("%s ck#%d: negative headroom %.1f in a validated module", f.Name, c.ID, c.Headroom)
				}
				if c.SaveBytes <= 0 {
					t.Errorf("%s ck#%d: save bytes %d", f.Name, c.ID, c.SaveBytes)
				}
				if c.WorstPreFire <= 0 {
					t.Errorf("%s ck#%d: pre-fire bound %.1f, want > 0 (restore at minimum)", f.Name, c.ID, c.WorstPreFire)
				}
			}
		}
		if nck == 0 {
			t.Fatalf("no checkpoints reported for %q...", src[:24])
		}
	}
}

func TestReportMainContract(t *testing.T) {
	rep, _ := reportFor(t, callSrc, 5000, nil)
	var mainRep *FuncReport
	for _, f := range rep.Funcs {
		if f.Name == "main" {
			mainRep = f
		}
	}
	if mainRep == nil {
		t.Fatal("main missing from report")
	}
	if !mainRep.HasCheckpoints {
		t.Error("main reported checkpoint-free after Apply (boot checkpoint exists)")
	}
	if mainRep.VMHighWater <= 0 {
		t.Error("no VM allocation reported; gain-based allocation should have placed something")
	}
}

func TestReportRefinedRegistersShrinkSaves(t *testing.T) {
	full, _ := reportFor(t, nestedSrc, 4000, nil)
	refined, _ := reportFor(t, nestedSrc, 4000, func(c *Config) {
		c.RefineRegisterLiveness = true
	})
	fullBytes, refinedBytes := 0, 0
	for _, f := range full.Funcs {
		for _, c := range f.Checkpoints {
			fullBytes += c.SaveBytes
		}
	}
	for _, f := range refined.Funcs {
		for _, c := range f.Checkpoints {
			refinedBytes += c.SaveBytes
		}
	}
	if refinedBytes >= fullBytes {
		t.Errorf("refined save bytes %d >= full %d", refinedBytes, fullBytes)
	}
}

func TestReportTightestAndRender(t *testing.T) {
	rep, _ := reportFor(t, longLoopSrc, 3000, nil)
	tight := rep.TightestCheckpoint()
	if tight == nil {
		t.Fatal("no tightest checkpoint")
	}
	for _, f := range rep.Funcs {
		for _, c := range f.Checkpoints {
			if c.Headroom < tight.Headroom {
				t.Errorf("ck#%d headroom %.1f below reported tightest %.1f", c.ID, c.Headroom, tight.Headroom)
			}
		}
	}
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{"WCEC report", "func main", "tightest site", "headroom"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestReportRejectsInvalidModule(t *testing.T) {
	model := energy.MSP430FR5969()
	m := compile(t, sumSrc)
	prof := profileOf(t, m)
	conf := Config{Model: model, Budget: 4000, VMSize: 2048, Profile: prof}
	if _, err := Apply(m, conf); err != nil {
		t.Fatal(err)
	}
	// A shrunken budget invalidates the placement; the report must refuse.
	conf.Budget = 400
	if _, err := Report(m, conf); err == nil {
		t.Fatal("Report accepted a module that no longer fits its budget")
	}
}

func TestReportConditionalWorstSpansPeriod(t *testing.T) {
	rep, _ := reportFor(t, longLoopSrc, 4000, nil)
	found := false
	for _, f := range rep.Funcs {
		for _, c := range f.Checkpoints {
			if want := rep.Budget - c.WorstPreFire - c.SaveEnergy; !closeTo(c.Headroom, want) {
				t.Errorf("ck#%d headroom %.3f, want budget−prefire−save = %.3f", c.ID, c.Headroom, want)
			}
			if c.Every > 1 {
				found = true
				// The conditional bound must cover the whole period: at
				// minimum its restore plus Every NVM counter writes.
				model := energy.MSP430FR5969()
				floor := c.RestoreEnergy + float64(c.Every)*model.NVMWriteEnergy
				if c.WorstPreFire < floor {
					t.Errorf("ck#%d pre-fire %.1f below period floor %.1f — still the single-segment bound",
						c.ID, c.WorstPreFire, floor)
				}
			}
		}
	}
	if !found {
		t.Fatal("no conditional checkpoint in longLoopSrc at this budget")
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}
