package schematic

import (
	"fmt"
	"sort"

	"schematic/internal/dataflow"
	"schematic/internal/ir"
)

// rewrite applies the analysis results to the module: per-block allocation
// maps, checkpoint instructions on the enabled (split) edges, in-block
// checkpoints before non-conforming returns, and main's boot checkpoint.
// Save/Restore lists follow Eq. 2: only variables live at the checkpoint
// location are written back or reloaded.
func (a *analyzer) rewrite() error {
	ckID := 0
	for _, f := range a.mod.Funcs {
		fs := a.states[f]
		if fs == nil {
			return fmt.Errorf("schematic: internal: no state for %s", f.Name)
		}
		a.fs = fs

		for _, b := range f.Blocks {
			if al := fs.alloc[b]; len(al) > 0 {
				b.Alloc = map[*ir.Var]bool(al)
			}
		}

		// Precompute save/restore sets before mutating the CFG: liveness
		// was computed on the pre-split graph.
		// Register liveness, like variable liveness, is computed on the
		// pre-split graph; the count of a split-edge checkpoint is the
		// live-in count of the edge target (an over-approximation across
		// joins, which is the safe direction).
		var regLive *dataflow.RegLiveness
		if a.conf.RefineRegisterLiveness {
			regLive = dataflow.LiveRegs(f)
		}
		type matCk struct {
			plan          *ckPlan
			save, restore []*ir.Var
			liveRegs      int
		}
		var mats []matCk
		var plans []*ckPlan
		for _, p := range fs.cks {
			plans = append(plans, p)
		}
		sort.Slice(plans, func(i, j int) bool {
			if plans[i].edge.From.Index != plans[j].edge.From.Index {
				return plans[i].edge.From.Index < plans[j].edge.From.Index
			}
			return plans[i].edge.To.Index < plans[j].edge.To.Index
		})
		for _, p := range plans {
			live := a.liveAt(&p.edge, nil)
			m := matCk{
				plan:    p,
				save:    liveVars(p.preAlloc, live),
				restore: liveVars(p.postAlloc, live),
			}
			if regLive != nil {
				m.liveRegs = regLive.LiveInCount(p.edge.To)
			}
			mats = append(mats, m)
		}

		for _, m := range mats {
			nb := ir.SplitEdge(m.plan.edge.From, m.plan.edge.To)
			nb.Alloc = map[*ir.Var]bool(m.plan.postAlloc)
			every := m.plan.every
			if every <= 1 {
				every = 0 // canonical "always" encoding (round-trip stable)
			}
			ck := &ir.Checkpoint{
				ID:          ckID,
				Kind:        ir.CkWait,
				Every:       every,
				Save:        m.save,
				Restore:     m.restore,
				RefinedRegs: regLive != nil,
				LiveRegs:    m.liveRegs,
			}
			ckID++
			nb.Instrs = append([]ir.Instr{ck}, nb.Instrs...)
		}

		// Checkpoints before non-conforming returns (single exit
		// allocation, III-B1).
		var retBlocksSorted []*ir.Block
		for b := range fs.retCks {
			retBlocksSorted = append(retBlocksSorted, b)
		}
		sort.Slice(retBlocksSorted, func(i, j int) bool {
			return retBlocksSorted[i].Index < retBlocksSorted[j].Index
		})
		for _, b := range retBlocksSorted {
			p := fs.retCks[b]
			live := func(v *ir.Var) bool { return fs.live.LiveOut(v, b) }
			if a.conf.DisableLivenessRefinement {
				live = func(*ir.Var) bool { return true }
			}
			ck := &ir.Checkpoint{
				ID:      ckID,
				Kind:    ir.CkWait,
				Save:    liveVars(p.preAlloc, live),
				Restore: liveVars(p.postAlloc, live),
			}
			if regLive != nil {
				// The checkpoint sits just before the terminator.
				ck.RefinedRegs = true
				ck.LiveRegs = regLive.LiveAtInstr(b, len(b.Instrs)-1)
			}
			ckID++
			// Insert just before the terminator.
			t := b.Instrs[len(b.Instrs)-1]
			b.Instrs = append(append(b.Instrs[:len(b.Instrs)-1:len(b.Instrs)-1], ck), t)
		}

		if f.Name == "main" {
			entry := f.Entry()
			alloc := a.allocOfBlock(entry)
			live := func(v *ir.Var) bool { return fs.live.LiveIn(v, entry) }
			if a.conf.DisableLivenessRefinement {
				live = func(*ir.Var) bool { return true }
			}
			ck := &ir.Checkpoint{
				ID:      ckID,
				Kind:    ir.CkWait,
				Restore: liveVars(alloc, live),
			}
			if regLive != nil {
				ck.RefinedRegs = true
				ck.LiveRegs = regLive.LiveInCount(entry)
			}
			ckID++
			entry.Instrs = append([]ir.Instr{ck}, entry.Instrs...)
			a.stats.Checkpoints++
		}
	}

	// Count VM variables for the stats.
	seen := map[*ir.Var]bool{}
	for _, fs := range a.states {
		for _, al := range fs.alloc {
			for v, in := range al {
				if in {
					seen[v] = true
				}
			}
		}
	}
	a.stats.VMVars = len(seen)
	return nil
}

// liveVars filters an allocation to its live members, sorted by name.
func liveVars(alloc allocMap, live func(*ir.Var) bool) []*ir.Var {
	var out []*ir.Var
	for _, v := range normalize(alloc) {
		if live(v) {
			out = append(out, v)
		}
	}
	return out
}
