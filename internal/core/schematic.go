// Package schematic implements the paper's central contribution: joint
// compile-time checkpoint placement and VM/NVM memory allocation for
// intermittent systems (paper, Section III).
//
// # Algorithm outline
//
// Functions are analyzed in reverse topological order of the call graph
// (callees first, III-B1). Within a function, loops are analyzed bottom-up
// (inner first, III-B2); each analyzed loop is then collapsed into a
// single *unit* so the enclosing scope sees it as one node. A scope (a
// loop body without its back-edge, or the function's top level with all
// loops collapsed) is analyzed path by path:
//
//  1. Acyclic paths through the scope's reduced graph are enumerated and
//     sorted by profiled frequency (III-A3); never-executed paths come
//     last, guaranteeing full coverage.
//  2. For each path, the unanalyzed segments form a Reachable Checkpoint
//     Graph (RCG, III-A1): nodes are the potential checkpoint locations
//     (the CFG edges along the path) plus virtual start/end nodes, and an
//     edge (c1,c2) exists when some memory allocation lets execution reach
//     c2 from c1 within the energy budget EB. Edge costs are the energy to
//     restore at c1, execute the interval under its best allocation, and
//     save at c2.
//  3. The per-interval allocation maximizes the total gain of Eq. 1, with
//     the liveness-refined save/restore overhead of Eq. 2, subject to the
//     VM capacity SVM; variables are picked by decreasing gain/size ratio
//     (III-A2).
//  4. Dijkstra's shortest path through the RCG selects the minimal-energy
//     checkpoint placement; those checkpoints are enabled and the chosen
//     allocations attached to the interval blocks. Decisions are final;
//     later paths inherit them through the Eleft / Eto_leave bookkeeping
//     (III-A3).
//
// Loops then follow Algorithm 1: if one iteration needed no internal
// checkpoint and the header and latch allocations agree, a conditional
// back-edge checkpoint firing every numit = ⌊usable/Eloop⌋ iterations is
// inserted — or none at all when numit exceeds the annotated maximum trip
// count.
//
// # Deviations from the paper (documented in DESIGN.md)
//
//   - A loop whose body received internal checkpoints always gets a plain
//     back-edge checkpoint, so every iteration starts from a full
//     capacitor and the single-iteration analysis remains sound.
//   - Intervals surrounding a checkpointed unit (a loop or call with
//     internal checkpoints) pin the variables that are live across the
//     unit but not managed by it to NVM; the unit's own entry/exit
//     allocations are imposed on the neighbouring intervals. This keeps
//     VM residency consistent without interprocedural restore lists.
//   - Pointer-accessed variables are pinned to NVM (paper, IV-A-c); the
//     IR has no address-taken operations, so the flag is an input.
package schematic

import (
	"fmt"
	"time"

	"schematic/internal/cfg"
	"schematic/internal/dataflow"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/trace"
)

// Config parameterizes the pass.
type Config struct {
	// Model is the worst-case energy model (required).
	Model *energy.Model
	// Budget is EB: the usable energy of a fully charged capacitor, nJ.
	Budget float64
	// VMSize is SVM in bytes.
	VMSize int
	// Profile supplies path frequencies and loop trip estimates; nil makes
	// the analysis purely static (all paths equally frequent).
	Profile *trace.Profile
	// MaxPaths caps path enumeration per scope (0 = 2048).
	MaxPaths int
	// DisableVM turns off VM allocation entirely: the All-NVM ablation of
	// the paper's Fig. 7. Checkpoint placement still runs.
	DisableVM bool
	// RefineRegisterLiveness enables the §VII extension: each materialized
	// checkpoint is annotated with the number of registers live across it,
	// and the runtime saves only those (plus PC/SR) instead of the whole
	// register file. Placement still budgets the full file, so the refined
	// runtime cost is never above the planned one.
	RefineRegisterLiveness bool
	// DisableCondCheckpoints is an ablation: Algorithm 1's conditional
	// scheme is turned off, so every analyzed loop gets a back-edge
	// checkpoint that fires on each iteration (and the trip-bound elision
	// of line 8 never applies).
	DisableCondCheckpoints bool
	// DisableLivenessRefinement is an ablation: the Eq. 2 refinement is
	// turned off, so checkpoints save and restore every allocated variable
	// whether or not it is live, and allocation gains use the unrefined
	// Eq. 1 costs.
	DisableLivenessRefinement bool
}

// Stats reports what the pass did.
type Stats struct {
	Checkpoints     int // enabled checkpoint locations
	CondCheckpoints int // back-edge checkpoints with Every > 1
	PathsAnalyzed   int
	ScopesAnalyzed  int
	VMVars          int // distinct variables placed in VM somewhere
	AnalysisTime    time.Duration
}

// Apply runs SCHEMATIC on the module in place: it decides checkpoint
// placement and memory allocation, sets every block's Alloc map, and
// inserts Checkpoint instructions on the enabled (split) edges. The module
// must not already contain checkpoints.
func Apply(m *ir.Module, conf Config) (*Stats, error) {
	start := time.Now()
	if conf.Model == nil {
		return nil, fmt.Errorf("schematic: Config.Model is required")
	}
	if err := conf.Model.Validate(); err != nil {
		return nil, err
	}
	if conf.Budget <= 0 {
		return nil, fmt.Errorf("schematic: Config.Budget must be positive")
	}
	if conf.VMSize < 0 {
		return nil, fmt.Errorf("schematic: Config.VMSize must be non-negative")
	}
	if conf.MaxPaths == 0 {
		conf.MaxPaths = 2048
	}
	if len(ir.Checkpoints(m)) != 0 {
		return nil, fmt.Errorf("schematic: module already contains checkpoints")
	}
	if err := ir.Verify(m); err != nil {
		return nil, err
	}

	a := &analyzer{
		mod:       m,
		conf:      conf,
		model:     conf.Model,
		summaries: map[*ir.Func]*funcSummary{},
		stats:     &Stats{},
	}
	cg := cfg.BuildCallGraph(m)
	order, err := cg.ReverseTopo(m)
	if err != nil {
		return nil, err
	}
	a.gu = dataflow.BuildGlobalUse(m)
	for _, f := range order {
		if err := a.analyzeFunc(f); err != nil {
			return nil, err
		}
	}
	if err := a.rewrite(); err != nil {
		return nil, err
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("schematic: transformed module invalid: %w", err)
	}
	a.stats.AnalysisTime = time.Since(start)
	return a.stats, nil
}

// analyzer carries the whole-module analysis state.
type analyzer struct {
	mod   *ir.Module
	conf  Config
	model *energy.Model
	gu    *dataflow.GlobalUse

	summaries map[*ir.Func]*funcSummary
	stats     *Stats

	// states keeps every function's analysis state for the rewrite phase.
	states map[*ir.Func]*funcState
	// fs is the state of the function currently under analysis.
	fs *funcState
}
