package schematic

import (
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

const sumSrc = `
input int data[32];
int acc;

func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 32; i = i + 1) @max(32) {
    acc = acc + data[i];
  }
  print(acc);
}
`

const callSrc = `
input int data[16];
int total;

func int weight(int x) {
  if (x > 50) {
    return x * 2;
  }
  return x;
}

func void main() {
  int i;
  total = 0;
  for (i = 0; i < 16; i = i + 1) @max(16) {
    total = total + weight(data[i]);
  }
  print(total);
}
`

const nestedSrc = `
input int m[64];
int out1;

func void main() {
  int i;
  int j;
  int rowsum;
  out1 = 0;
  for (i = 0; i < 8; i = i + 1) @max(8) {
    rowsum = 0;
    for (j = 0; j < 8; j = j + 1) @max(8) {
      rowsum = rowsum + m[i * 8 + j];
    }
    if (rowsum > 200) {
      out1 = out1 + rowsum;
    } else {
      out1 = out1 + 1;
    }
  }
  print(out1);
}
`

func compile(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func profileOf(t testing.TB, m *ir.Module) *trace.Profile {
	t.Helper()
	p, err := trace.Collect(m, trace.Options{Runs: 10, Seed: 1})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return p
}

// transformAndRun applies SCHEMATIC with the given budget and checks
// semantic preservation and forward progress under intermittent power.
func transformAndRun(t *testing.T, src string, budget float64, vmSize int) (*Stats, *emulator.Result, *emulator.Result) {
	t.Helper()
	model := energy.MSP430FR5969()
	orig := compile(t, src)
	prof := profileOf(t, orig)
	inputs := map[string][]int64{}
	for _, v := range orig.InputVars() {
		data := make([]int64, v.Elems)
		for i := range data {
			data[i] = int64((i*37 + 11) % 97)
		}
		inputs[v.Name] = data
	}

	ref, err := emulator.Run(orig, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	tr := ir.Clone(orig)
	stats, err := Apply(tr, Config{
		Model:   model,
		Budget:  budget,
		VMSize:  vmSize,
		Profile: prof,
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	res, err := emulator.Run(tr, emulator.Config{
		Model:        model,
		VMSize:       vmSize,
		Intermittent: true,
		EB:           budget,
		Inputs:       inputs,
	})
	if err != nil {
		t.Fatalf("intermittent run: %v", err)
	}
	if res.Verdict != emulator.Completed {
		t.Fatalf("verdict = %v (failures=%d, saves=%d)\n%s",
			res.Verdict, res.PowerFailures, res.Saves, tr.String())
	}
	if len(res.Output) != len(ref.Output) {
		t.Fatalf("output = %v, want %v", res.Output, ref.Output)
	}
	for i := range ref.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("output[%d] = %d, want %d\n%s", i, res.Output[i], ref.Output[i], tr.String())
		}
	}
	if res.UnsyncedReads != 0 {
		t.Fatalf("unsynced reads = %d\n%s", res.UnsyncedReads, tr.String())
	}
	if res.Energy.Reexecution != 0 {
		t.Errorf("SCHEMATIC must never re-execute, got %.1f nJ", res.Energy.Reexecution)
	}
	if res.PowerFailures != 0 {
		t.Errorf("SCHEMATIC's wait discipline should avoid all power failures, got %d", res.PowerFailures)
	}
	return stats, ref, res
}

func TestSimpleLoopProgram(t *testing.T) {
	stats, _, res := transformAndRun(t, sumSrc, 3000, 2048)
	if stats.Checkpoints == 0 {
		t.Errorf("expected checkpoints to be placed")
	}
	if res.MaxVMBytes > 2048 {
		t.Errorf("VM high water %d exceeds SVM", res.MaxVMBytes)
	}
}

func TestTightBudget(t *testing.T) {
	// A budget that fits only a couple of loop iterations.
	transformAndRun(t, sumSrc, 700, 2048)
}

func TestCallsWithBranches(t *testing.T) {
	transformAndRun(t, callSrc, 2500, 2048)
}

func TestNestedLoops(t *testing.T) {
	transformAndRun(t, nestedSrc, 3000, 2048)
}

func TestNestedLoopsTight(t *testing.T) {
	transformAndRun(t, nestedSrc, 900, 2048)
}

const longLoopSrc = `
input int data[16];
int acc;

func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 400; i = i + 1) @max(400) {
    acc = acc + data[i % 16];
  }
  print(acc);
}
`

func TestConditionalCheckpointing(t *testing.T) {
	// The loop is far too long for one budget but many iterations fit:
	// Algorithm 1 should produce a conditional (every-numit) back-edge
	// checkpoint rather than one per iteration.
	stats, _, res := transformAndRun(t, longLoopSrc, 3000, 2048)
	if stats.CondCheckpoints == 0 {
		t.Errorf("expected a conditional back-edge checkpoint, stats=%+v", stats)
	}
	// Far fewer saves than iterations.
	if res.Saves >= 400 || res.Saves < 2 {
		t.Errorf("saves = %d, want a small multiple of 400/numit", res.Saves)
	}
}

func TestLargerBudgetFewerSaves(t *testing.T) {
	_, _, tight := transformAndRun(t, sumSrc, 500, 2048)
	_, _, roomy := transformAndRun(t, sumSrc, 8000, 2048)
	if roomy.Saves >= tight.Saves {
		t.Errorf("saves should shrink with the budget: tight=%d roomy=%d",
			tight.Saves, roomy.Saves)
	}
}

func TestVMAllocationHappens(t *testing.T) {
	_, _, res := transformAndRun(t, sumSrc, 3000, 2048)
	if res.Energy.VMAccesses == 0 {
		t.Errorf("expected VM accesses under SCHEMATIC allocation")
	}
}

func TestAllNVMAblation(t *testing.T) {
	model := energy.MSP430FR5969()
	orig := compile(t, sumSrc)
	prof := profileOf(t, orig)

	run := func(disable bool) *emulator.Result {
		tr := ir.Clone(orig)
		_, err := Apply(tr, Config{
			Model: model, Budget: 3000, VMSize: 2048,
			Profile: prof, DisableVM: disable,
		})
		if err != nil {
			t.Fatalf("Apply(disable=%v): %v", disable, err)
		}
		res, err := emulator.Run(tr, emulator.Config{
			Model: model, VMSize: 2048, Intermittent: true, EB: 3000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != emulator.Completed {
			t.Fatalf("disable=%v verdict=%v", disable, res.Verdict)
		}
		return res
	}
	withVM := run(false)
	allNVM := run(true)
	if allNVM.Energy.VMAccesses != 0 {
		t.Errorf("All-NVM still used VM: %d accesses", allNVM.Energy.VMAccesses)
	}
	if withVM.Energy.Computation >= allNVM.Energy.Computation {
		t.Errorf("VM allocation should cut computation energy: %v vs %v",
			withVM.Energy.Computation, allNVM.Energy.Computation)
	}
}

func TestTinyVM(t *testing.T) {
	// With SVM = 4 bytes only scalars fit; the program must still complete
	// correctly within the capacity.
	_, _, res := transformAndRun(t, sumSrc, 3000, 4)
	if res.MaxVMBytes > 4 {
		t.Errorf("VM high water %d exceeds the 4-byte SVM", res.MaxVMBytes)
	}
}

func TestAllocChangesOnlyAtCheckpoints(t *testing.T) {
	model := energy.MSP430FR5969()
	m := compile(t, nestedSrc)
	prof := profileOf(t, m)
	if _, err := Apply(m, Config{Model: model, Budget: 2000, VMSize: 2048, Profile: prof}); err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			hasCk := false
			for _, in := range b.Instrs {
				if _, ok := in.(*ir.Checkpoint); ok {
					hasCk = true
				}
			}
			if hasCk {
				continue
			}
			for _, s := range b.Succs() {
				// The successor may itself start with a checkpoint.
				if _, ok := s.Instrs[0].(*ir.Checkpoint); ok {
					continue
				}
				for _, in := range s.Instrs {
					v, _, ok := ir.AccessedVar(in)
					if !ok {
						continue
					}
					if b.InVM(v) != s.InVM(v) {
						t.Errorf("%s: alloc of %s changes on edge %s->%s without checkpoint",
							f.Name, v.Name, b.Name, s.Name)
					}
				}
			}
		}
	}
}

func TestBudgetSafetyInvariant(t *testing.T) {
	// Dynamic check of the forward-progress guarantee: between any two
	// checkpoint replenishments the drawn energy never exceeds EB. The
	// emulator enforces this implicitly (a violation would power-fail and
	// re-execute); zero re-execution across budgets is the witness.
	for _, budget := range []float64{700, 1200, 2500, 6000} {
		_, _, res := transformAndRun(t, callSrc, budget, 2048)
		if res.Energy.Reexecution != 0 {
			t.Errorf("budget %.0f: re-execution %.1f", budget, res.Energy.Reexecution)
		}
	}
}

func TestApplyValidation(t *testing.T) {
	m := compile(t, sumSrc)
	model := energy.MSP430FR5969()
	if _, err := Apply(m, Config{Budget: 100}); err == nil {
		t.Errorf("Apply accepted nil model")
	}
	if _, err := Apply(m, Config{Model: model}); err == nil {
		t.Errorf("Apply accepted zero budget")
	}
	// Double application must be rejected.
	if _, err := Apply(m, Config{Model: model, Budget: 3000, VMSize: 2048}); err != nil {
		t.Fatalf("first Apply: %v", err)
	}
	if _, err := Apply(m, Config{Model: model, Budget: 3000, VMSize: 2048}); err == nil {
		t.Errorf("Apply accepted an already-transformed module")
	}
}

func TestStatsPopulated(t *testing.T) {
	stats, _, _ := transformAndRun(t, nestedSrc, 2000, 2048)
	if stats.PathsAnalyzed == 0 || stats.ScopesAnalyzed == 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	if stats.AnalysisTime <= 0 {
		t.Errorf("analysis time missing")
	}
	if stats.VMVars == 0 {
		t.Errorf("expected some VM variables")
	}
}
