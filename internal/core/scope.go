package schematic

import (
	"fmt"
	"sort"

	"schematic/internal/ir"
)

// edgeFreq supplies profiled edge frequencies for path prioritization.
func (a *analyzer) edgeFreq(e ir.Edge) int64 {
	if a.conf.Profile == nil {
		return 1
	}
	return a.conf.Profile.EdgeFreq(a.fs.f, e)
}

// analyzeScope runs the path-by-path analysis of III-A over one scope.
func (a *analyzer) analyzeScope(sg *scopeGraph) error {
	a.stats.ScopesAnalyzed++
	paths := sg.enumeratePaths(a.conf.MaxPaths, a.edgeFreq)
	for _, p := range paths {
		if !sg.containsUnanalyzed(p) {
			continue
		}
		a.stats.PathsAnalyzed++
		if err := a.analyzePath(sg, p); err != nil {
			return err
		}
		// "The energy left and energy to leave are recomputed and
		// propagated after each new path analysis" (III-A3).
		a.recomputeBookkeeping(sg)
	}
	// Safety net: blocks missed by capped enumeration or unreachable in
	// the reduced graph are pinned to NVM with checkpoints on their
	// boundary edges, which is always safe after block splitting.
	for b := range sg.blocks {
		n := sg.nodeOf[b]
		if !n.plain() || a.fs.analyzed[b] {
			continue
		}
		a.fs.analyzed[b] = true
		a.fs.alloc[b] = allocMap{}
		for _, se := range sg.succs(n) {
			if se.to != nil && a.fs.ckAt(se.edge) == nil {
				a.fs.enable(se.edge, allocMap{}, a.allocOfBlock(se.edge.To), 0)
			}
		}
		for _, p := range b.Preds() {
			e := ir.Edge{From: p, To: b}
			if !sg.exclude[e] && sg.blocks[p] && a.fs.ckAt(e) == nil {
				a.fs.enable(e, a.allocOfBlock(p), allocMap{}, 0)
			}
		}
	}
	a.recomputeBookkeeping(sg)
	// Paths whose blocks were all analyzed earlier are skipped, so a CFG
	// edge may join two analyzed regions without ever being part of an
	// analyzed consecutive pair. Enforce the Eleft ≥ Eto_enter invariant on
	// every in-scope edge, checkpointing the violating ones (a conservative
	// replenishment point, in the spirit of III-A3's inheritance rules).
	if err := a.enforceEdgeInvariant(sg); err != nil {
		return err
	}
	return nil
}

// enforceEdgeInvariant repeatedly finds an edge whose source cannot
// guarantee the energy its target needs to reach the next checkpoint, and
// enables a checkpoint there. Terminates because every round adds one
// checkpoint and checkpointed edges always satisfy the invariant.
func (a *analyzer) enforceEdgeInvariant(sg *scopeGraph) error {
	fs := a.fs
	for round := 0; ; round++ {
		if round > 4*len(fs.f.Blocks)+16 {
			return fmt.Errorf("schematic: func %s: edge invariant did not converge", fs.f.Name)
		}
		var fixed bool
		for b := range sg.blocks {
			n := sg.nodeOf[b]
			if n.rep != b { // visit each node once, via its representative
				continue
			}
			var have float64
			if !n.plain() && n.unit.checkpointed {
				have = n.unit.exitLeft
			} else {
				have = fs.eleft[n.rep]
			}
			for _, se := range sg.succs(n) {
				if se.to == nil || fs.ckAt(se.edge) != nil {
					continue
				}
				need, _ := a.etoEnterNode(se.to)
				if have+1e-6 >= need {
					continue
				}
				if se.edge.From.Atomic && se.edge.To.Atomic {
					return fmt.Errorf("schematic: func %s: atomic section around %v exceeds the energy budget",
						fs.f.Name, se.edge)
				}
				// The edge cannot carry enough energy: replenish here.
				if a.conf.Budget-a.model.RestoreRegsCost() < need {
					return fmt.Errorf("schematic: func %s: edge %v needs %0.1f nJ, beyond a full capacitor",
						fs.f.Name, se.edge, need)
				}
				fs.enable(se.edge, a.allocOfBlock(se.edge.From), a.restoreAllocFor(se.edge.To), 0)
				a.stats.Checkpoints++
				fixed = true
			}
		}
		if !fixed {
			if debugRCG && fs.f.Name == "main" {
				for _, b := range fs.f.Blocks {
					if fs.analyzed[b] {
						fmt.Printf("pass-eleft: %s.%s eleft=%.1f etoLeave=%.1f\n",
							fs.f.Name, b.Name, fs.eleft[b], fs.etoLeave[b])
					}
				}
			}
			return nil
		}
		a.recomputeBookkeeping(sg)
	}
}

func (a *analyzer) allocOfBlock(b *ir.Block) allocMap {
	if al := a.fs.alloc[b]; al != nil {
		return al
	}
	return allocMap{}
}

// analyzePath splits a path into segments of unanalyzed nodes and solves
// each with an RCG (III-A1), inheriting boundary conditions from the
// already-analyzed neighbours (III-A3).
func (a *analyzer) analyzePath(sg *scopeGraph, p *pathT) error {
	fs := a.fs
	var seg *segment
	var segStartIdx int

	flush := func(endIdx int, endEdge *ir.Edge, endRequired float64, forcedEnd allocMap) error {
		if seg == nil {
			return nil
		}
		seg.endEdge = endEdge
		seg.endRequired = endRequired
		seg.forcedEnd = forcedEnd
		pl, err := a.solveSegment(seg)
		if err != nil {
			return err
		}
		a.materialize(sg, seg, pl, segStartIdx == 0)
		seg = nil
		return nil
	}

	for i, s := range p.steps {
		analyzedPlain := s.n.plain() && fs.analyzed[s.n.rep]
		if analyzedPlain {
			if seg != nil {
				e := s.inEdge
				req, ferr := a.etoEnterNode(s.n)
				if err := flush(i, &e, req, ferr); err != nil {
					return err
				}
			}
			continue
		}
		if seg == nil {
			seg = &segment{}
			segStartIdx = i
			if i == 0 {
				seg.startCk = sg.entryHasCk
				seg.startBudget = sg.startBudget
				seg.forcedStart = sg.entryAlloc
			} else {
				prev := p.steps[i-1]
				e := s.inEdge
				seg.startEdge = &e
				if prev.n.plain() {
					seg.startBudget = fs.eleft[prev.n.rep]
					seg.forcedStart = a.allocOfBlock(prev.n.rep)
				} else {
					u := prev.n.unit
					if u.checkpointed {
						seg.startBudget = u.exitLeft
					} else {
						seg.startBudget = fs.eleft[u.rep]
					}
					seg.forcedStart = allocMap(varSet(u.exitVM))
				}
			}
		}
		seg.steps = append(seg.steps, s)
	}
	// Trailing segment ends at the scope exit.
	return flush(len(p.steps), p.exitEdge, sg.exitReq, sg.exitAlloc)
}

// etoEnterNode is the energy needed when entering an analyzed node to
// reach the next enabled checkpoint (or satisfy the scope exit), plus the
// allocation imposed there.
func (a *analyzer) etoEnterNode(n *node) (float64, allocMap) {
	fs := a.fs
	if !n.plain() {
		u := n.unit
		if u.checkpointed {
			return u.entry, allocMap(varSet(u.entryVM))
		}
		return u.energy + fs.etoLeave[u.rep], allocMap(varSet(u.entryVM))
	}
	b := n.rep
	return a.execCost(b, fs.alloc[b]) + fs.etoLeave[b], a.allocOfBlock(b)
}

// materialize applies a solved segment: allocations are attached to the
// interval blocks (decisions are final, III-A3), and the selected
// checkpoint locations are enabled.
func (a *analyzer) materialize(sg *scopeGraph, seg *segment, pl *placement, atScopeEntry bool) {
	fs := a.fs
	for k, iv := range pl.intervals {
		for _, s := range iv.steps {
			if s.n.plain() && !fs.analyzed[s.n.rep] {
				fs.alloc[s.n.rep] = iv.alloc
				fs.analyzed[s.n.rep] = true
			}
		}
		// Enable the checkpoint at this interval's start, if it is a
		// candidate location.
		if iv.startCk && iv.startEdge != nil {
			pre := seg.forcedStart
			if k > 0 {
				pre = pl.intervals[k-1].alloc
			}
			if pre == nil {
				pre = allocMap{}
			}
			if fs.ckAt(*iv.startEdge) == nil {
				fs.enable(*iv.startEdge, pre, iv.alloc, 0)
				a.stats.Checkpoints++
			}
		}
	}
	if len(pl.intervals) > 0 {
		if atScopeEntry && sg.entryAlloc == nil {
			sg.entryAlloc = pl.intervals[0].alloc
		}
		last := pl.intervals[len(pl.intervals)-1]
		if !last.endCk && seg.forcedEnd == nil && seg.endEdge == nil && sg.exitAlloc == nil {
			sg.exitAlloc = last.alloc
		}
	}
}

// recomputeBookkeeping refreshes the Eleft and Eto_leave values of every
// analyzed node in the scope (III-A3: "recomputed and propagated after
// each new path analysis").
func (a *analyzer) recomputeBookkeeping(sg *scopeGraph) {
	fs := a.fs
	order := a.scopeTopo(sg)

	nodeAnalyzed := func(n *node) bool {
		if !n.plain() {
			return true
		}
		return fs.analyzed[n.rep]
	}
	cost := func(n *node) float64 {
		if !n.plain() {
			return n.unit.energy // plain units; checkpointed handled apart
		}
		return a.execCost(n.rep, fs.alloc[n.rep])
	}

	// Forward pass: energy available entering / leaving each node.
	ein := map[*node]float64{}
	for _, n := range order {
		if !nodeAnalyzed(n) {
			continue
		}
		in := -1.0
		if n == sg.entry {
			if sg.entryHasCk {
				in = a.conf.Budget - a.restoreSetCost(a.nodeEntryAlloc(n), a.liveAt(nil, n.rep))
			} else {
				in = sg.startBudget
			}
		}
		for _, pe := range a.scopePreds(sg, n) {
			if !nodeAnalyzed(pe.from) {
				continue
			}
			var arr float64
			if ck := fs.ckAt(pe.edge); ck != nil {
				arr = a.conf.Budget - a.restoreSetCost(ck.postAlloc, a.liveAt(&pe.edge, nil))
			} else if !pe.from.plain() && pe.from.unit.checkpointed {
				arr = pe.from.unit.exitLeft
			} else {
				arr = ein[pe.from] - cost(pe.from)
			}
			if in < 0 || arr < in {
				in = arr
			}
		}
		if in < 0 {
			in = sg.startBudget
		}
		ein[n] = in
		if !n.plain() && n.unit.checkpointed {
			fs.eleft[n.rep] = n.unit.exitLeft
		} else {
			fs.eleft[n.rep] = in - cost(n)
		}
	}

	// Backward pass: energy needed when leaving each node.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if !nodeAnalyzed(n) {
			continue
		}
		out := 0.0
		any := false
		for _, se := range sg.succs(n) {
			var need float64
			if ck := fs.ckAt(se.edge); ck != nil {
				need = a.saveSetCost(ck.preAlloc, a.liveAt(&se.edge, nil))
			} else if se.to == nil {
				need = sg.exitReq
			} else if !nodeAnalyzed(se.to) {
				continue
			} else if !se.to.plain() && se.to.unit.checkpointed {
				need = se.to.unit.entry
			} else {
				need = cost(se.to) + fs.etoLeave[se.to.rep]
			}
			if !any || need > out {
				out = need
				any = true
			}
		}
		// A node with no in-scope successors ends the scope (a return
		// block, or a loop latch whose back-edge is excluded): it must
		// leave the scope's exit requirement — e.g. the save cost of the
		// back-edge checkpoint that Algorithm 1 will place.
		if !any {
			out = sg.exitReq
		}
		fs.etoLeave[n.rep] = out
	}
}

// nodeEntryAlloc returns the allocation in force when a node begins.
func (a *analyzer) nodeEntryAlloc(n *node) allocMap {
	if !n.plain() {
		return allocMap(varSet(n.unit.entryVM))
	}
	return a.allocOfBlock(n.rep)
}

type predEdge struct {
	from *node
	edge ir.Edge
}

// scopePreds lists a node's in-scope predecessors.
func (a *analyzer) scopePreds(sg *scopeGraph, n *node) []predEdge {
	var out []predEdge
	for b := range sg.blocks {
		from := sg.nodeOf[b]
		if from == n {
			continue
		}
		for _, se := range sg.succs(from) {
			if se.to == n {
				out = append(out, predEdge{from: from, edge: se.edge})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].edge.From.Index != out[j].edge.From.Index {
			return out[i].edge.From.Index < out[j].edge.From.Index
		}
		return out[i].edge.To.Index < out[j].edge.To.Index
	})
	return out
}

// scopeTopo orders the scope's reachable nodes topologically (the scope
// graph is a DAG once back-edges are excluded).
func (a *analyzer) scopeTopo(sg *scopeGraph) []*node {
	var order []*node
	state := map[*node]int{}
	var visit func(n *node)
	visit = func(n *node) {
		state[n] = 1
		for _, se := range sg.succs(n) {
			if se.to != nil && state[se.to] == 0 {
				visit(se.to)
			}
		}
		state[n] = 2
		order = append(order, n)
	}
	visit(sg.entry)
	// Reverse postorder.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
