package schematic

import (
	"sort"

	"schematic/internal/cfg"
	"schematic/internal/dataflow"
	"schematic/internal/ir"
)

// allocMap is a memory allocation: the set of variables resident in VM.
type allocMap map[*ir.Var]bool

func (a allocMap) clone() allocMap {
	c := make(allocMap, len(a))
	for v, in := range a {
		if in {
			c[v] = true
		}
	}
	return c
}

func (a allocMap) bytes() int {
	n := 0
	for v, in := range a {
		if in {
			n += v.SizeBytes()
		}
	}
	return n
}

func (a allocMap) equal(b allocMap) bool {
	if len(normalize(a)) != len(normalize(b)) {
		return false
	}
	for v, in := range a {
		if in && !b[v] {
			return false
		}
	}
	return true
}

func normalize(a allocMap) []*ir.Var {
	var vs []*ir.Var
	for v, in := range a {
		if in {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Name < vs[j].Name })
	return vs
}

// unit is a collapsed region the enclosing scope treats as a single node:
// an analyzed loop, or a call block whose callee contains checkpoints.
type unit struct {
	// rep is the representative block: the loop header, or the isolated
	// call block.
	rep *ir.Block
	// blocks is the set of CFG blocks the unit covers (loop body), or just
	// the call block.
	blocks map[*ir.Block]bool

	// checkpointed units contain internal checkpoints; plain units do not.
	checkpointed bool

	// energy is the worst-case execution energy of the whole unit (plain
	// units only).
	energy float64
	// entry is the worst-case energy needed at unit entry to reach (and
	// complete) the first internal checkpoint (checkpointed units).
	entry float64
	// exitLeft is the guaranteed remaining energy when the unit exits
	// (checkpointed units).
	exitLeft float64

	// vmDemand is the VM high-water mark of storage managed privately by
	// the unit (callee locals); it stacks on top of the surrounding
	// interval's allocation.
	vmDemand int
	// entryVM lists the caller-visible variables the unit needs resident
	// in VM at entry; exitVM those resident at exit.
	entryVM []*ir.Var
	exitVM  []*ir.Var
	// nvmAccessed are caller-visible variables the unit accesses from NVM;
	// surrounding intervals must keep them in NVM for coherence.
	nvmAccessed map[*ir.Var]bool
	// accessed is every caller-visible variable the unit touches.
	accessed map[*ir.Var]bool
}

// vmSet returns entryVM as a set.
func varSet(vs []*ir.Var) map[*ir.Var]bool {
	s := make(map[*ir.Var]bool, len(vs))
	for _, v := range vs {
		s[v] = true
	}
	return s
}

// funcSummary is the callee-side contract exported to callers (III-B1).
type funcSummary struct {
	hasCheckpoints bool

	// Plain callees (no checkpoints anywhere inside).
	energy   float64 // worst-case energy of one call
	vmDemand int     // VM bytes for its locals and private allocations

	// Checkpointed callees.
	entry    float64 // energy needed at entry to reach the first checkpoint
	exitLeft float64 // guaranteed remaining energy at return

	// Caller-visible (global) allocation contract.
	entryVM     []*ir.Var
	exitVM      []*ir.Var
	nvmAccessed map[*ir.Var]bool
	accessed    map[*ir.Var]bool
}

// ckPlan records an enabled checkpoint location.
type ckPlan struct {
	edge  ir.Edge
	every int // >1 for conditional back-edge checkpoints (Algorithm 1)
	// preAlloc/postAlloc are the allocations on each side; save/restore
	// sets are derived from them and liveness at rewrite time.
	preAlloc  allocMap
	postAlloc allocMap
}

// funcState is the per-function analysis state.
type funcState struct {
	f    *ir.Func
	dom  *cfg.DomTree
	lf   *cfg.LoopForest
	live *dataflow.Liveness

	analyzed map[*ir.Block]bool
	alloc    map[*ir.Block]allocMap
	eleft    map[*ir.Block]float64
	etoLeave map[*ir.Block]float64

	cks map[ir.Edge]*ckPlan
	// retCks plans in-block checkpoints just before the Ret of the given
	// blocks (single exit allocation, III-B1).
	retCks map[*ir.Block]*ckPlan

	// loopUnit maps a loop header to its collapsed unit after analysis.
	loopUnit map[*ir.Block]*unit
	// callUnit maps an isolated checkpointed-call block to its unit.
	callUnit map[*ir.Block]*unit

	hasCheckpoints bool
}

func newFuncState(f *ir.Func) *funcState {
	return &funcState{
		f:        f,
		analyzed: map[*ir.Block]bool{},
		alloc:    map[*ir.Block]allocMap{},
		eleft:    map[*ir.Block]float64{},
		etoLeave: map[*ir.Block]float64{},
		cks:      map[ir.Edge]*ckPlan{},
		loopUnit: map[*ir.Block]*unit{},
		callUnit: map[*ir.Block]*unit{},
	}
}

// ckAt returns the checkpoint plan on edge e, if enabled.
func (fs *funcState) ckAt(e ir.Edge) *ckPlan { return fs.cks[e] }

// enable records a checkpoint on e.
func (fs *funcState) enable(e ir.Edge, pre, post allocMap, every int) *ckPlan {
	p := &ckPlan{edge: e, every: every, preAlloc: pre, postAlloc: post}
	fs.cks[e] = p
	fs.hasCheckpoints = true
	return p
}
