package schematic

import (
	"fmt"

	"schematic/internal/cfg"
	"schematic/internal/dataflow"
	"schematic/internal/energy"
	"schematic/internal/ir"
)

// Validate statically checks that a transformed module obeys the
// discipline SCHEMATIC guarantees (paper II-B), independent of how it was
// produced:
//
//   - Budget safety / forward progress: on every path, the worst-case
//     energy between two consecutive enabled checkpoints (restore + code +
//     save) never exceeds EB; loops without a firing back-edge checkpoint
//     are bounded by their trip count, conditional checkpoints by numit.
//   - Capacity: the VM bytes of every block's allocation fit in SVM.
//   - Allocation coherence: a variable's allocation changes only across a
//     checkpoint (otherwise VM and NVM copies could diverge).
//   - Pointer discipline: address-taken variables are never in VM.
//
// Validate is used by the test suite as an oracle over fuzzed programs and
// is exported so downstream users can gate deployment on it.
func Validate(m *ir.Module, conf Config) error {
	if conf.Model == nil {
		return fmt.Errorf("schematic: Validate: Config.Model is required")
	}
	if conf.Budget <= 0 {
		return fmt.Errorf("schematic: Validate: Config.Budget must be positive")
	}
	v := &validator{m: m, conf: conf, model: conf.Model}
	return v.run()
}

type validator struct {
	m     *ir.Module
	conf  Config
	model *energy.Model

	// entryDemand/exitResidual mirror the analyzer's function contracts,
	// recomputed independently.
	entryDemand  map[*ir.Func]float64
	exitResidual map[*ir.Func]float64
	hasCk        map[*ir.Func]bool

	// Captured by energySafety for Report: worst-case pre-fire drain per
	// checkpoint, its block, and per-block worst drain per function.
	eFireAll map[*ir.Checkpoint]float64
	ckBlocks map[*ir.Checkpoint]*ir.Block
	worstOf  map[*ir.Func]map[*ir.Block]float64
}

func (v *validator) run() error {
	if err := v.structural(); err != nil {
		return err
	}
	// Transitive checkpoint presence, needed by the coherence analysis.
	v.hasCk = map[*ir.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, f := range v.m.Funcs {
			if v.hasCk[f] {
				continue
			}
			has := moduleFuncHasCk(f)
			if !has {
				has = anyCalleeCk(v, f)
			}
			if has {
				v.hasCk[f] = true
				changed = true
			}
		}
	}
	gu := dataflow.BuildGlobalUse(v.m)
	for _, f := range v.m.Funcs {
		if err := v.coherence(f, gu); err != nil {
			return err
		}
	}
	cg := cfg.BuildCallGraph(v.m)
	order, err := cg.ReverseTopo(v.m)
	if err != nil {
		return err
	}
	v.entryDemand = map[*ir.Func]float64{}
	v.exitResidual = map[*ir.Func]float64{}
	v.eFireAll = map[*ir.Checkpoint]float64{}
	v.ckBlocks = map[*ir.Checkpoint]*ir.Block{}
	v.worstOf = map[*ir.Func]map[*ir.Block]float64{}
	for _, f := range order {
		if err := v.energySafety(f); err != nil {
			return err
		}
	}
	return nil
}

// structural checks capacity, pointer discipline, atomic-section
// integrity, and refined register-count honesty (copy coherence is
// handled by the dataflow analysis in coherence.go).
func (v *validator) structural() error {
	for _, f := range v.m.Funcs {
		var regLive *dataflow.RegLiveness // built on demand
		for _, b := range f.Blocks {
			// A checkpoint must not sit inside an atomic region, including
			// on a split block bridging two atomic blocks.
			for idx, in := range b.Instrs {
				ck, isCk := in.(*ir.Checkpoint)
				if !isCk {
					continue
				}
				// A refined register count must cover every register live
				// after the checkpoint: the runtime restores only that
				// many, so an understated count would corrupt resumption
				// (and under-account the save cost).
				if ck.RefinedRegs {
					if ck.LiveRegs < 0 {
						return fmt.Errorf("schematic: %s.%s: checkpoint #%d: negative refined register count",
							f.Name, b.Name, ck.ID)
					}
					if regLive == nil {
						regLive = dataflow.LiveRegs(f)
					}
					if need := regLive.LiveAtInstr(b, idx+1); ck.LiveRegs < need {
						return fmt.Errorf("schematic: %s.%s: checkpoint #%d claims %d live registers but %d are live after it",
							f.Name, b.Name, ck.ID, ck.LiveRegs, need)
					}
				}
				if b.Atomic {
					return fmt.Errorf("schematic: %s.%s: checkpoint inside an atomic section", f.Name, b.Name)
				}
				preds := b.Preds()
				succs := b.Succs()
				if len(preds) == 1 && len(succs) == 1 && preds[0].Atomic && succs[0].Atomic {
					return fmt.Errorf("schematic: %s.%s: checkpoint on an edge inside an atomic section", f.Name, b.Name)
				}
			}
			if v.conf.VMSize > 0 && b.VMBytes() > v.conf.VMSize {
				return fmt.Errorf("schematic: %s.%s: VM allocation %d B exceeds SVM %d B",
					f.Name, b.Name, b.VMBytes(), v.conf.VMSize)
			}
			for vr, in := range b.Alloc {
				if in && vr.AddrUsed {
					return fmt.Errorf("schematic: %s.%s: pointer-accessed %s in VM",
						f.Name, b.Name, vr.Name)
				}
			}
		}
	}
	return nil
}

// energySafety verifies the forward-progress guarantee with an abstract
// interpretation over worst-case drained energy.
//
// Phase 1 treats every wait checkpoint — conditional or not — as firing on
// every pass; the fixpoint then stabilizes and yields, for every
// checkpoint, the worst-case pre-fire energy e_fire (one inter-checkpoint
// segment). Phase 2 re-checks each conditional checkpoint with its real
// period k: a fire is followed by up to k segments before the next fire,
// so `restore + k·Δ + save ≤ EB` must hold, where Δ = e_fire − restore is
// the measured worst-case per-cycle drain. This mirrors Algorithm 1's own
// arithmetic but is recomputed from the final IR, independent of the
// analyzer's internal state.
func (v *validator) energySafety(f *ir.Func) error {
	// worst[b] = maximum energy drained since the last replenishment at
	// block entry, -1 = unreached.
	worst := map[*ir.Block]float64{}
	for _, b := range f.Blocks {
		worst[b] = -1
	}
	worst[f.Entry()] = v.model.RestoreRegsCost()

	// eFire[ck] = stabilized worst-case drained energy when the checkpoint
	// is reached (before counter update and save).
	eFire := map[*ir.Checkpoint]float64{}
	ckBlock := map[*ir.Checkpoint]*ir.Block{}

	var verr error
	scan := func(b *ir.Block, e float64) float64 {
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Checkpoint:
				if x.Kind != ir.CkWait {
					continue // rollback/trigger styles give no static guarantee
				}
				if e > eFire[x] {
					eFire[x] = e
				}
				ckBlock[x] = b
				if x.Every > 1 {
					e += v.model.NVMWriteEnergy
				}
				save := v.saveCost(x, b)
				if e+save > v.conf.Budget+1e-6 {
					verr = fmt.Errorf("schematic: %s.%s: worst-case %0.1f nJ + save %0.1f exceeds EB %0.1f at checkpoint #%d",
						f.Name, b.Name, e, save, v.conf.Budget, x.ID)
				}
				e = v.restoreCost(x, b)
			case *ir.Call:
				e += v.model.InstrEnergy(in, ir.NVM)
				if v.hasCk[x.Callee] {
					if e+v.entryDemand[x.Callee] > v.conf.Budget+1e-6 {
						verr = fmt.Errorf("schematic: %s.%s: call %s entry demand %0.1f on top of %0.1f exceeds EB",
							f.Name, b.Name, x.Callee.Name, v.entryDemand[x.Callee], e)
					}
					e = v.exitResidual[x.Callee]
				} else {
					e += v.entryDemand[x.Callee] // total cost for plain callees
				}
			default:
				space := ir.NVM
				if vr, _, ok := ir.AccessedVar(in); ok && b.InVM(vr) {
					space = ir.VM
				}
				e += v.model.InstrEnergy(in, space)
			}
		}
		return e
	}

	// Phase 1: always-fire fixpoint over a view of the CFG where *maximal
	// unchecked loops* — loops containing no wait checkpoint and no call to
	// a checkpointed callee anywhere inside — are collapsed into a single
	// bounded charge of (bound+1) × worst-iteration energy. Every remaining
	// cycle passes a reset (a checkpoint or a checkpointed call), so the
	// fixpoint stabilizes.
	dom := cfg.Dominators(f)
	lf := cfg.Loops(f, dom)

	// Maximal unchecked loops and their bounded total cost.
	superOf := map[*ir.Block]*cfg.Loop{}
	superCost := map[*cfg.Loop]float64{}
	for _, l := range lf.All { // outer before inner (preorder)
		if !v.loopUnchecked(l) {
			continue
		}
		if _, covered := superOf[l.Header]; covered {
			continue // already inside an enclosing collapsed loop
		}
		bound := v.loopBound(l)
		if bound == 0 {
			return fmt.Errorf("schematic: %s: loop at %s has no checkpoint on its cycle and no trip bound",
				f.Name, l.Header.Name)
		}
		cost := float64(bound+1) * v.loopIterEnergy(l)
		if debugRCG {
			fmt.Printf("validator: %s loop %s bound=%d iter=%.1f cost=%.1f\n",
				f.Name, l.Header.Name, bound, v.loopIterEnergy(l), cost)
		}
		superCost[l] = cost
		for b := range l.Blocks {
			superOf[b] = l
		}
	}
	// Exit targets of a collapsed loop.
	loopExits := func(l *cfg.Loop) []*ir.Block {
		var out []*ir.Block
		for b := range l.Blocks {
			for _, s := range b.Succs() {
				if !l.Contains(s) {
					out = append(out, s)
				}
			}
		}
		return out
	}

	maxRounds := len(f.Blocks) + 4
	stabilized := false
	for round := 0; round < maxRounds && !stabilized; round++ {
		stabilized = true
		for _, b := range ir.ReversePostorder(f) {
			if worst[b] < 0 {
				continue
			}
			if l, inSuper := superOf[b]; inSuper {
				// Only the header carries the collapsed charge.
				if b != l.Header {
					continue
				}
				out := worst[b] + superCost[l]
				if out > v.conf.Budget+1e-6 {
					if debugRCG {
						seen := map[*ir.Block]bool{}
						var dump func(x *ir.Block, depth int)
						dump = func(x *ir.Block, depth int) {
							if depth > 8 || seen[x] {
								return
							}
							seen[x] = true
							fmt.Printf("validator: %*s%s worst=%.1f\n", depth*2, "", x.Name, worst[x])
							for _, p := range x.Preds() {
								dump(p, depth+1)
							}
						}
						dump(b, 0)
					}
					return fmt.Errorf("schematic: %s: unchecked loop at %s drains %0.1f nJ (> EB %0.1f)",
						f.Name, l.Header.Name, out, v.conf.Budget)
				}
				for _, s := range loopExits(l) {
					if out > worst[s]+1e-9 {
						worst[s] = out
						stabilized = false
					}
				}
				continue
			}
			out := scan(b, worst[b])
			if verr != nil {
				return verr
			}
			for _, s := range b.Succs() {
				if _, targetSuper := superOf[s]; targetSuper && s != superOf[s].Header {
					continue // natural loops have a single entry; ignore oddities
				}
				if out > worst[s]+1e-9 {
					worst[s] = out
					stabilized = false
				}
			}
		}
	}
	if !stabilized {
		if debugRCG {
			// One more diagnostic round: report which successors still move.
			for _, b := range ir.ReversePostorder(f) {
				if worst[b] < 0 {
					continue
				}
				if l, inSuper := superOf[b]; inSuper {
					if b != l.Header {
						continue
					}
					out := worst[b] + superCost[l]
					for _, s := range loopExits(l) {
						if out > worst[s]+1e-9 {
							fmt.Printf("validator-unstable: %s: %.3f -> exit %s (%.3f)\n", b.Name, out, s.Name, worst[s])
						}
					}
					continue
				}
				out := scan(b, worst[b])
				for _, s := range b.Succs() {
					if _, ts := superOf[s]; ts && s != superOf[s].Header {
						continue
					}
					if out > worst[s]+1e-9 {
						fmt.Printf("validator-unstable: %s: %.3f -> %s (%.3f)\n", b.Name, out, s.Name, worst[s])
						for _, p := range b.Preds() {
							fmt.Printf("  pred %s worst=%.3f\n", p.Name, worst[p])
						}
					}
				}
			}
		}
		return fmt.Errorf("schematic: %s: energy accounting did not stabilize — some cycle lacks a checkpoint and a trip bound", f.Name)
	}
	if debugRCG {
		for _, b := range ir.ReversePostorder(f) {
			if worst[b] >= 0 {
				fmt.Printf("validator-worst: %s.%s = %.1f\n", f.Name, b.Name, worst[b])
			}
		}
	}
	// Phase 2: conditional checkpoints with their real period. The
	// per-cycle drain Δ is the loop's worst-case iteration energy (the
	// phase-1 eFire additionally covers the entry path into the loop, whose
	// own bound is the per-arrival check in scan). Skipped firings still
	// pay the counter update and the split block's jump.
	for ck, e := range eFire {
		v.eFireAll[ck] = e
		v.ckBlocks[ck] = ckBlock[ck]
	}
	v.worstOf[f] = worst
	for ck, b := range ckBlock {
		if ck.Every <= 1 {
			continue
		}
		l := lf.LoopOf(b)
		if l == nil {
			// A conditional checkpoint outside any loop fires at most once
			// per arrival; the per-arrival check covers it, but the firing
			// pass still pays the counter update.
			v.eFireAll[ck] += v.model.NVMWriteEnergy
			continue
		}
		restore := v.restoreCost(ck, b)
		save := v.saveCost(ck, b)
		delta := v.loopIterEnergy(l) + v.model.NVMWriteEnergy
		if restore+float64(ck.Every)*delta+save > v.conf.Budget+1e-6 {
			return fmt.Errorf("schematic: %s.%s: conditional checkpoint #%d every %d: restore %0.1f + %d×%0.1f + save %0.1f exceeds EB %0.1f",
				f.Name, b.Name, ck.ID, ck.Every, restore, ck.Every, delta, save, v.conf.Budget)
		}
		// The true worst pre-fire drain spans the Every skipped passes
		// (each paying an iteration plus the counter update), not just the
		// single segment phase 1 measured.
		if e := restore + float64(ck.Every)*delta; e > v.eFireAll[ck] {
			v.eFireAll[ck] = e
		}
	}
	// Export this function's contract for callers.
	v.hasCk[f] = moduleFuncHasCk(f) || anyCalleeCk(v, f)
	if !v.hasCk[f] {
		total := 0.0
		for _, b := range f.Blocks {
			if worst[b] < 0 {
				continue
			}
			if e := scan(b, worst[b]); e > total {
				total = e
			}
		}
		v.entryDemand[f] = total - v.model.RestoreRegsCost()
		if v.entryDemand[f] < 0 {
			v.entryDemand[f] = 0
		}
		v.exitResidual[f] = 0
		if debugRCG {
			fmt.Printf("validator: func %s plain total=%.1f\n", f.Name, v.entryDemand[f])
		}
		return nil
	}
	// Entry demand: worst energy from entry to the first wait checkpoint's
	// completed save (or function exit).
	v.entryDemand[f] = v.entryDemandOf(f)
	worstExit := 0.0
	for _, b := range f.Blocks {
		if worst[b] < 0 {
			continue
		}
		if _, isRet := b.Terminator().(*ir.Ret); isRet {
			if e := scan(b, worst[b]); e > worstExit {
				worstExit = e
			}
		}
	}
	v.exitResidual[f] = worstExit
	if debugRCG {
		fmt.Printf("validator: func %s hasCk=%v entryDemand=%.1f exitResidual=%.1f\n",
			f.Name, v.hasCk[f], v.entryDemand[f], v.exitResidual[f])
	}
	return nil
}

// blockResets reports whether executing b replenishes the capacitor (a
// wait checkpoint, or a call into a checkpointed callee).
func (v *validator) blockResets(b *ir.Block) bool {
	for _, in := range b.Instrs {
		if ck, ok := in.(*ir.Checkpoint); ok && ck.Kind == ir.CkWait {
			return true
		}
		if c, ok := in.(*ir.Call); ok && v.hasCk[c.Callee] {
			return true
		}
	}
	return false
}

// loopUnchecked reports whether the loop has a checkpoint-free cycle:
// some header→latch path that never replenishes. Such loops accumulate
// energy across iterations and must be bounded by their trip count. A
// checkpoint that only sits on a side branch does not guard the cycle.
func (v *validator) loopUnchecked(l *cfg.Loop) bool {
	latches := map[*ir.Block]bool{}
	for _, lt := range l.Latches {
		latches[lt] = true
	}
	seen := map[*ir.Block]bool{}
	var dfs func(b *ir.Block) bool
	dfs = func(b *ir.Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		if v.blockResets(b) {
			return false // every path through here replenishes
		}
		if latches[b] {
			return true
		}
		for _, s := range b.Succs() {
			if !l.Contains(s) || s == l.Header {
				continue
			}
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(l.Header)
}

// loopBound returns the loop's trip bound: the @max annotation or the
// profile estimate, 0 when unknown.
func (v *validator) loopBound(l *cfg.Loop) int {
	if l.MaxIter > 0 {
		return l.MaxIter
	}
	if v.conf.Profile != nil {
		return v.conf.Profile.LoopIterEstimate(l.Header)
	}
	return 0
}

// blockExecWorst is the energy of one execution of b under its allocation,
// with plain callee totals folded in (checkpointed callees are excluded —
// unchecked loops never contain them).
func (v *validator) blockExecWorst(b *ir.Block) float64 {
	e := 0.0
	for _, in := range b.Instrs {
		space := ir.NVM
		if vr, _, ok := ir.AccessedVar(in); ok && b.InVM(vr) {
			space = ir.VM
		}
		e += v.model.InstrEnergy(in, space)
		if c, ok := in.(*ir.Call); ok {
			e += v.entryDemand[c.Callee]
		}
	}
	return e
}

// loopIterEnergy bounds one iteration of an unchecked loop: the longest
// header→latch path, with nested loops charged their bounded totals.
func (v *validator) loopIterEnergy(l *cfg.Loop) float64 {
	childOf := map[*ir.Block]*cfg.Loop{}
	for _, c := range l.Children {
		for b := range c.Blocks {
			childOf[b] = c
		}
	}
	memo := map[*ir.Block]float64{}
	var worstFrom func(b *ir.Block) float64
	worstFrom = func(b *ir.Block) float64 {
		if c, ok := childOf[b]; ok {
			// Collapsed child loop: bounded total, then continue from its
			// exits that stay inside l.
			cost := float64(v.loopBound(c)+1) * v.loopIterEnergy(c)
			best := 0.0
			for cb := range c.Blocks {
				for _, s := range cb.Succs() {
					if !c.Contains(s) && l.Contains(s) && s != l.Header {
						if x := worstFrom(s); x > best {
							best = x
						}
					}
				}
			}
			return cost + best
		}
		if x, ok := memo[b]; ok {
			return x
		}
		memo[b] = 0 // cycle guard
		best := 0.0
		for _, s := range b.Succs() {
			if !l.Contains(s) || s == l.Header {
				continue
			}
			if x := worstFrom(s); x > best {
				best = x
			}
		}
		memo[b] = v.blockExecWorst(b) + best
		return memo[b]
	}
	return worstFrom(l.Header)
}

func moduleFuncHasCk(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(*ir.Checkpoint); ok {
				return true
			}
		}
	}
	return false
}

func anyCalleeCk(v *validator, f *ir.Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && v.hasCk[c.Callee] {
				return true
			}
		}
	}
	return false
}

// entryDemandOf walks acyclically from the entry to the first checkpoint.
func (v *validator) entryDemandOf(f *ir.Func) float64 {
	demand := 0.0
	seen := map[*ir.Block]bool{}
	var walk func(b *ir.Block, e float64)
	walk = func(b *ir.Block, e float64) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, in := range b.Instrs {
			if ck, ok := in.(*ir.Checkpoint); ok && ck.Kind == ir.CkWait {
				if x := e + v.saveCost(ck, b); x > demand {
					demand = x
				}
				return
			}
			space := ir.NVM
			if vr, _, ok := ir.AccessedVar(in); ok && b.InVM(vr) {
				space = ir.VM
			}
			e += v.model.InstrEnergy(in, space)
			if c, ok := in.(*ir.Call); ok {
				if v.hasCk[c.Callee] {
					if x := e + v.entryDemand[c.Callee]; x > demand {
						demand = x
					}
					return
				}
				e += v.entryDemand[c.Callee]
			}
		}
		if e > demand {
			demand = e
		}
		for _, s := range b.Succs() {
			walk(s, e)
		}
	}
	walk(f.Entry(), 0)
	return demand
}

func ckRegCount(ck *ir.Checkpoint) int {
	if ck.RefinedRegs {
		return ck.LiveRegs
	}
	return -1
}

func (v *validator) saveCost(ck *ir.Checkpoint, b *ir.Block) float64 {
	e := v.model.SaveRegsCostFor(ckRegCount(ck))
	if ck.RegsOnly {
		return e
	}
	vars := ck.Save
	if ck.SaveAll {
		// Conservative: everything the block's allocation holds.
		vars = vars[:0:0]
		for vr, in := range b.Alloc {
			if in {
				vars = append(vars, vr)
			}
		}
	}
	for _, vr := range vars {
		e += v.model.SaveVarCost(vr)
	}
	return e
}

func (v *validator) restoreCost(ck *ir.Checkpoint, b *ir.Block) float64 {
	e := v.model.RestoreRegsCostFor(ckRegCount(ck))
	if ck.RegsOnly {
		return e
	}
	vars := ck.Restore
	if ck.SaveAll {
		vars = vars[:0:0]
		for vr, in := range b.Alloc {
			if in {
				vars = append(vars, vr)
			}
		}
	}
	for _, vr := range vars {
		e += v.model.RestoreVarCost(vr)
	}
	return e
}
