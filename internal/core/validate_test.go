package schematic

import (
	"strings"
	"testing"

	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// validateAfterApply checks the validator accepts everything the pass
// produces, across programs and budgets.
func TestValidateAcceptsPassOutput(t *testing.T) {
	srcs := map[string]string{"sum": sumSrc, "call": callSrc, "nested": nestedSrc, "long": longLoopSrc}
	model := energy.MSP430FR5969()
	for name, src := range srcs {
		for _, budget := range []float64{700, 1500, 4000, 20000} {
			m := compile(t, src)
			prof, err := trace.Collect(m, trace.Options{Runs: 5, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			conf := Config{Model: model, Budget: budget, VMSize: 2048, Profile: prof}
			tr := ir.Clone(m)
			if _, err := Apply(tr, conf); err != nil {
				t.Fatalf("%s @%v: Apply: %v", name, budget, err)
			}
			if err := Validate(tr, conf); err != nil {
				t.Errorf("%s @%v: Validate rejected the pass output: %v\n%s", name, budget, err, tr.String())
			}
		}
	}
}

func TestValidateRejectsBrokenPrograms(t *testing.T) {
	model := energy.MSP430FR5969()
	conf := Config{Model: model, Budget: 800, VMSize: 2048}

	// 1. No checkpoints at all on an expensive program.
	m := compile(t, sumSrc)
	if err := Validate(m, conf); err == nil {
		t.Errorf("accepted an unchecked program exceeding the budget")
	}

	// 2. Allocation flip without a checkpoint.
	m2 := compile(t, sumSrc)
	prof, _ := trace.Collect(m2, trace.Options{Runs: 3, Seed: 1})
	tr := ir.Clone(m2)
	if _, err := Apply(tr, Config{Model: model, Budget: 3000, VMSize: 2048, Profile: prof}); err != nil {
		t.Fatal(err)
	}
	mainF := tr.FuncByName("main")
	acc := tr.GlobalByName("acc")
	// Flip acc's allocation in one loop block only.
	for _, b := range mainF.Blocks {
		if strings.HasPrefix(b.Name, "for.body") {
			alloc := map[*ir.Var]bool{}
			for v, in := range b.Alloc {
				if in {
					alloc[v] = true
				}
			}
			alloc[acc] = !b.InVM(acc)
			b.Alloc = alloc
			break
		}
	}
	if err := Validate(tr, Config{Model: model, Budget: 3000, VMSize: 2048}); err == nil {
		t.Errorf("accepted an allocation change without a checkpoint")
	} else if !strings.Contains(err.Error(), "copy is fresher") &&
		!strings.Contains(err.Error(), "dropped") {
		t.Errorf("wrong error: %v", err)
	}

	// 3. VM capacity violation.
	m3 := compile(t, sumSrc)
	f3 := m3.FuncByName("main")
	data := m3.GlobalByName("data")
	for _, b := range f3.Blocks {
		b.Alloc = map[*ir.Var]bool{data: true}
	}
	if err := Validate(m3, Config{Model: model, Budget: 1e9, VMSize: 16}); err == nil {
		t.Errorf("accepted a VM capacity violation")
	}

	// 4. Conditional checkpoint with an oversized period.
	m4 := compile(t, sumSrc)
	prof4, _ := trace.Collect(m4, trace.Options{Runs: 3, Seed: 1})
	tr4 := ir.Clone(m4)
	if _, err := Apply(tr4, Config{Model: model, Budget: 700, VMSize: 2048, Profile: prof4}); err != nil {
		t.Fatal(err)
	}
	tampered := false
	for _, ck := range ir.Checkpoints(tr4) {
		if ck.Every > 1 {
			ck.Every *= 50
			tampered = true
		}
	}
	if tampered {
		if err := Validate(tr4, Config{Model: model, Budget: 700, VMSize: 2048}); err == nil {
			t.Errorf("accepted a tampered conditional checkpoint period")
		}
	}
}

func TestValidateAcceptsAllBenchmark(t *testing.T) {
	// Cross-check with a MiniC program large enough to have functions,
	// loops and calls.
	src := `
input int data[32];
int out1;

func int f(int x) {
  int i;
  int acc;
  acc = x;
  for (i = 0; i < 10; i = i + 1) @max(10) {
    acc = acc + i * x;
  }
  return acc & 0x7FFF;
}

func void main() {
  int i;
  out1 = 0;
  for (i = 0; i < 32; i = i + 1) @max(32) {
    out1 = (out1 + f(data[i])) & 0x7FFF;
  }
  print(out1);
}
`
	m, err := minic.Compile("v", src)
	if err != nil {
		t.Fatal(err)
	}
	model := energy.MSP430FR5969()
	prof, err := trace.Collect(m, trace.Options{Runs: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{900, 2500, 9000} {
		conf := Config{Model: model, Budget: budget, VMSize: 2048, Profile: prof}
		tr := ir.Clone(m)
		if _, err := Apply(tr, conf); err != nil {
			t.Fatalf("@%v: %v", budget, err)
		}
		if err := Validate(tr, conf); err != nil {
			t.Errorf("@%v: %v", budget, err)
		}
	}
}
