package crashtest

import (
	"fmt"
	"strings"

	"schematic/internal/emulator"
	"schematic/internal/obs"
)

// Class names the kind of crash-consistency violation a run exhibited.
type Class string

const (
	// ClassNone: the run matched the oracle.
	ClassNone Class = ""
	// ClassDivergence: the run completed with output different from the
	// continuous-power oracle — a WAR / idempotence violation.
	ClassDivergence Class = "output-divergence"
	// ClassPoisonRead: the run read VM storage that was never restored.
	ClassPoisonRead Class = "poison-read"
	// ClassForwardProgress: the run was declared Stuck or exhausted its
	// failure budget — the endless re-execution the paper's guarantee
	// rules out.
	ClassForwardProgress Class = "forward-progress"
	// ClassNonTermination: the run exceeded its step bound.
	ClassNonTermination Class = "non-termination"
	// ClassVMOverflow: the resident VM set exceeded SVM during recovery.
	ClassVMOverflow Class = "vm-overflow"
	// ClassLedger: the energy-attribution ledgers failed to reconcile.
	ClassLedger Class = "ledger-mismatch"
	// ClassEmulatorError: the emulator itself errored.
	ClassEmulatorError Class = "emulator-error"
)

// PointSpec is the serialized form of one emulator.FailPoint.
type PointSpec struct {
	Kind string `json:"kind"`
	N    int64  `json:"n"`
}

// ScheduleSpec is the serialized, deterministic power schedule of a
// repro: capacitor exhaustion (physics) plus an explicit failure-point
// trace. Random and stride hunts are normalized into this form using the
// injection points they actually fired, so every repro replays without
// any stateful schedule.
type ScheduleSpec struct {
	Exhaust bool        `json:"exhaust"`
	Points  []PointSpec `json:"points,omitempty"`
}

// Build constructs the runnable schedule. A pure-exhaustion spec returns
// the plain exhaustion schedule (the emulator default).
func (s ScheduleSpec) Build() (emulator.PowerSchedule, error) {
	var fps []emulator.FailPoint
	for _, p := range s.Points {
		k, err := emulator.ParsePointKind(p.Kind)
		if err != nil {
			return nil, err
		}
		fps = append(fps, emulator.FailPoint{Kind: k, N: p.N})
	}
	var parts []emulator.PowerSchedule
	if s.Exhaust {
		parts = append(parts, emulator.Exhaustion())
	}
	if len(fps) > 0 {
		parts = append(parts, emulator.TraceSchedule(fps...))
	}
	return emulator.Schedules(parts...), nil
}

func (s ScheduleSpec) String() string {
	parts := make([]string, 0, len(s.Points)+1)
	if s.Exhaust {
		parts = append(parts, "exhaustion")
	}
	for _, p := range s.Points {
		parts = append(parts, fmt.Sprintf("%s@%d", p.Kind, p.N))
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, "+")
}

// Outcome is one injected run's classification.
type Outcome struct {
	Class  Class
	Detail string
	// Points are the injections that actually fired, as a replayable
	// trace (the normalization of random/stride schedules).
	Points []PointSpec
	Res    *emulator.Result
}

// recorder captures the injection points a run fired, normalizing any
// schedule into a replayable trace.
type recorder struct{ points []PointSpec }

func (r *recorder) Event(e emulator.Event) {
	if e.Kind == emulator.EvInjection {
		r.points = append(r.points, PointSpec{Kind: e.Point.String(), N: e.Seq})
	}
}

// maxSteps caps an injected run relative to the baseline's length.
func (o Options) maxSteps(baselineSteps int64) int64 {
	return o.MaxStepsFactor*baselineSteps + 10_000
}

// MaxStepsFor is the exported form of the injected-run step cap, applying
// the documented default factor when unset — internal/verify uses it so
// resumed explorations and counterexample replays share one bound.
func (o Options) MaxStepsFor(baselineSteps int64) int64 {
	return o.withDefaults().maxSteps(baselineSteps)
}

// Classify judges a finished emulator run (or its error) against the
// oracle — runOnce's classification without the ledger reconciliation,
// for callers that executed the run themselves (the model checker's
// resumed explorations).
func (b *Built) Classify(res *emulator.Result, err error, maxSteps int64) Outcome {
	if err != nil {
		return Outcome{Class: ClassEmulatorError, Detail: err.Error()}
	}
	out := Outcome{Res: res}
	out.Class, out.Detail = b.classifyResult(res, maxSteps)
	return out
}

// classifyResult maps a run's verdict and output to a violation class.
func (b *Built) classifyResult(res *emulator.Result, maxSteps int64) (Class, string) {
	switch res.Verdict {
	case emulator.Completed:
		switch {
		case res.UnsyncedReads > 0:
			return ClassPoisonRead, fmt.Sprintf("%d reads of never-restored VM storage", res.UnsyncedReads)
		case !equalOutput(res.Output, b.oracle.Output):
			return ClassDivergence, diffOutput(res.Output, b.oracle.Output)
		}
		return ClassNone, ""
	case emulator.Stuck:
		return ClassForwardProgress, fmt.Sprintf("stuck after %d power failures", res.PowerFailures)
	case emulator.OutOfFailures:
		return ClassForwardProgress, fmt.Sprintf("failure budget exhausted (%d failures)", res.PowerFailures)
	case emulator.OutOfSteps:
		return ClassNonTermination, fmt.Sprintf("exceeded %d steps", maxSteps)
	case emulator.VMOverflow:
		return ClassVMOverflow, fmt.Sprintf("resident VM exceeded %d bytes", b.cs.VMSize)
	default:
		return ClassEmulatorError, fmt.Sprintf("unexpected verdict %v", res.Verdict)
	}
}

// runOnce executes the built case under the given schedule (constructed
// fresh per run — schedules are stateful) and classifies the outcome
// against the oracle.
func (b *Built) runOnce(sched emulator.PowerSchedule, maxSteps int64) Outcome {
	rec := &recorder{}
	col := obs.NewCollector()
	res, err := emulator.Run(b.mod, emulator.Config{
		Model:        b.model,
		VMSize:       b.cs.VMSize,
		Intermittent: true,
		EB:           b.eb,
		Inputs:       b.inputs,
		MaxSteps:     maxSteps,
		Schedule:     sched,
		Observer:     emulator.MultiObserver(col, rec),
	})
	if err != nil {
		return Outcome{Class: ClassEmulatorError, Detail: err.Error(), Points: rec.points}
	}
	out := Outcome{Points: rec.points, Res: res}
	out.Class, out.Detail = b.classifyResult(res, maxSteps)
	if out.Class == ClassNone {
		if err := col.Reconcile(res); err != nil {
			out.Class = ClassLedger
			out.Detail = err.Error()
		}
	}
	return out
}

// runSpec is runOnce for a serialized schedule.
func (b *Built) runSpec(spec ScheduleSpec, maxSteps int64) (Outcome, error) {
	sched, err := spec.Build()
	if err != nil {
		return Outcome{}, err
	}
	return b.runOnce(sched, maxSteps), nil
}

func equalOutput(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffOutput renders the first divergence compactly.
func diffOutput(got, want []int64) string {
	if len(got) != len(want) {
		return fmt.Sprintf("output length %d, oracle %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("output[%d] = %d, oracle %d", i, got[i], want[i])
		}
	}
	return "outputs differ"
}
