// Package crashtest hunts crash-consistency violations in checkpoint
// placements with differential fault injection, the validation style of
// DiVM's schedule exploration and ScEpTIC's bitcode simulation: run the
// program once under continuous power as the oracle, then re-execute it
// under adversarial power schedules — failures immediately before, in
// the middle of (torn checkpoint), and immediately after checkpoint
// saves, at sampled instruction boundaries, and at seeded-random points
// — and classify every divergence from the oracle.
//
// Every counterexample is shrunk (first the failure-point list, then,
// for fuzz-generated programs, the program itself) and serialized as a
// deterministic NDJSON repro that `crashhunt -replay` re-executes.
package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"schematic/internal/baselines"
	"schematic/internal/bench"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// Case is one hunted configuration: a program, a technique, and the
// knobs that make the whole pipeline reproducible. The zero values of
// the optional fields select documented defaults, so a serialized case
// stays meaningful as defaults evolve only if normalized first; Hunt
// and Replay normalize internally.
type Case struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	// Fuzz, when set, records how Source was generated; replay
	// regenerates from the seed and refuses a mismatching Source.
	Fuzz *fuzzgen.Program `json:"fuzz,omitempty"`

	Technique string `json:"technique"`
	InputSeed int64  `json:"input_seed"`

	// TBPF derives the capacitor budget via the profile (EBForTBPF) when
	// EB is zero; 0 selects 10_000 cycles, the middle of the paper's
	// evaluation range.
	TBPF int64   `json:"tbpf,omitempty"`
	EB   float64 `json:"eb_nj,omitempty"`
	// VMSize is SVM for the transformed run; 0 selects 1 MiB so every
	// technique is supported on every bundled benchmark (the hunt is
	// about crash consistency, not memory-fit feasibility).
	VMSize int `json:"vm_size,omitempty"`
	// ProfileRuns sizes the profiling pass; 0 selects 8 (plenty for EB
	// derivation, cheap enough for per-case pipelines).
	ProfileRuns int `json:"profile_runs,omitempty"`

	// Sabotage, when positive, deletes the Sabotage-th checkpoint (1-based,
	// in deterministic function/block/instruction order) from the
	// transformed module — the "deliberately broken placement" used to
	// prove the hunter detects exposed WAR stores.
	Sabotage int `json:"sabotage,omitempty"`
}

// Options tunes a hunt. Zero values select the defaults documented on
// each field.
type Options struct {
	Model *energy.Model // nil = MSP430FR5969

	// ExhaustiveStepLimit: when the baseline run has at most this many
	// steps, every instruction boundary is injected individually
	// (exhaustive enumeration); above it, SampledSteps boundaries are
	// sampled evenly. 0 = 1200.
	ExhaustiveStepLimit int64
	// SampledSteps is the number of instruction boundaries injected when
	// sampling. 0 = 24.
	SampledSteps int
	// SampledSaves bounds the save attempts probed with the three
	// save-phase injections (before/mid/after). 0 = 6.
	SampledSaves int
	// RandomSchedules is the number of seeded-random schedules per case
	// (0 = 4); RandomFailures bounds each one's induced failures (0 = 4,
	// kept below the emulator's stagnation threshold so injections alone
	// can never fake a Stuck verdict).
	RandomSchedules int
	RandomFailures  int
	// MaxStepsFactor caps every injected run at factor×baseline steps
	// (plus slack), so a runaway case cannot stall the hunt. 0 = 24.
	MaxStepsFactor int64

	// NoShrink skips counterexample minimization; ShrinkBudget bounds the
	// re-executions shrinking may spend (0 = 200).
	NoShrink     bool
	ShrinkBudget int

	// AssumeAnytime injects into wait-style placements too. By default the
	// hunter honors each technique's failure contract: wait-style runtimes
	// (every checkpoint CkWait — ROCKCLIMB, SCHEMATIC) guarantee that no
	// power failure can occur between checkpoints (the device sleeps at
	// each checkpoint until the capacitor is full, and segments are placed
	// to fit EB), so mid-segment injection breaks an assumption the
	// hardware enforces, not the placement. For those cases the hunter
	// instead verifies the guarantee itself: the exhaustion baseline must
	// complete, correctly, with zero power failures. AssumeAnytime runs
	// the full adversarial schedule set regardless — useful to demonstrate
	// how wait-style NVM-only placements fail outside their contract.
	AssumeAnytime bool

	// Deadline, when non-zero, stops schedule enumeration once passed;
	// the hunt reports a skip instead of a (possibly incomplete) pass.
	Deadline time.Time
}

func (o Options) withDefaults() Options {
	if o.Model == nil {
		o.Model = energy.MSP430FR5969()
	}
	if o.ExhaustiveStepLimit == 0 {
		o.ExhaustiveStepLimit = 1200
	}
	if o.SampledSteps == 0 {
		o.SampledSteps = 24
	}
	if o.SampledSaves == 0 {
		o.SampledSaves = 6
	}
	if o.RandomSchedules == 0 {
		o.RandomSchedules = 4
	}
	if o.RandomFailures == 0 {
		o.RandomFailures = 4
	}
	if o.MaxStepsFactor == 0 {
		o.MaxStepsFactor = 24
	}
	if o.ShrinkBudget == 0 {
		o.ShrinkBudget = 200
	}
	return o
}

func (cs Case) normalized() Case {
	if cs.TBPF == 0 {
		cs.TBPF = 10_000
	}
	if cs.VMSize == 0 {
		cs.VMSize = 1 << 20
	}
	if cs.ProfileRuns == 0 {
		cs.ProfileRuns = 8
	}
	return cs
}

// SkipError marks a case the hunter cannot meaningfully inject into —
// the placement already fails to complete under plain exhaustion (the
// Table III ✗ configurations), or the deadline expired mid-hunt.
type SkipError struct{ Reason string }

func (e *SkipError) Error() string { return "crashtest: case skipped: " + e.Reason }

// TechniqueByName resolves one of the five techniques of the evaluation
// by its display name (Ratchet, Mementos, Rockclimb, Alfred, Schematic).
func TechniqueByName(name string) (baselines.Technique, error) {
	for _, t := range bench.Techniques() {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("crashtest: unknown technique %q", name)
}

// WaitOnly reports whether every checkpoint in the module is wait-style
// (CkWait): the placement's failure contract is then "failures only at
// checkpoints", enforced at run time by sleeping until the capacitor is
// full. Modules with no checkpoints are not wait-only.
func WaitOnly(m *ir.Module) bool {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if ck, ok := in.(*ir.Checkpoint); ok {
					if ck.Kind != ir.CkWait {
						return false
					}
					n++
				}
			}
		}
	}
	return n > 0
}

// CountCheckpoints returns the number of checkpoint instructions in the
// module, in the deterministic order Sabotage ordinals address.
func CountCheckpoints(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if _, ok := in.(*ir.Checkpoint); ok {
					n++
				}
			}
		}
	}
	return n
}

// removeNthCheckpoint deletes the n-th (1-based) checkpoint instruction
// in deterministic function/block/instruction order.
func removeNthCheckpoint(m *ir.Module, n int) error {
	seen := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if _, ok := in.(*ir.Checkpoint); !ok {
					continue
				}
				seen++
				if seen == n {
					b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
					return nil
				}
			}
		}
	}
	return fmt.Errorf("crashtest: sabotage ordinal %d out of range (module has %d checkpoints)", n, seen)
}

// Built is a fully prepared case: the transformed (and possibly
// sabotaged) module, its workload, the continuous-power oracle, and the
// derived capacitor budget. Prepare constructs one; the hunt and the
// model checker in internal/verify both run against it.
type Built struct {
	cs     Case // normalized
	model  *energy.Model
	mod    *ir.Module
	inputs map[string][]int64
	oracle *emulator.Result
	eb     float64
}

// Module is the transformed (and possibly sabotaged) module under test.
func (b *Built) Module() *ir.Module { return b.mod }

// Model is the resolved energy model.
func (b *Built) Model() *energy.Model { return b.model }

// Inputs is the case's deterministic workload (do not mutate).
func (b *Built) Inputs() map[string][]int64 { return b.inputs }

// Oracle is the continuous-power reference run.
func (b *Built) Oracle() *emulator.Result { return b.oracle }

// EB is the derived capacitor budget in nJ.
func (b *Built) EB() float64 { return b.eb }

// Case returns the normalized case.
func (b *Built) Case() Case { return b.cs }

// Prepare runs the case pipeline: regenerate/verify the source, compile,
// oracle run, profile, transform, sabotage.
func Prepare(cs Case, opts Options) (*Built, error) {
	opts = opts.withDefaults()
	return build(cs, opts)
}

func build(cs Case, opts Options) (*Built, error) {
	cs = cs.normalized()
	if cs.Fuzz != nil {
		prog, ok := cs.Fuzz.Regenerate()
		if !ok {
			return nil, fmt.Errorf("crashtest: case %s: stored source does not match fuzz seed %d", cs.Name, cs.Fuzz.Seed)
		}
		if cs.Source == "" {
			cs.Source = prog.Source
		}
	}
	if cs.Source == "" {
		return nil, fmt.Errorf("crashtest: case %s: no source", cs.Name)
	}
	m, err := minic.Compile(cs.Name, cs.Source)
	if err != nil {
		return nil, fmt.Errorf("crashtest: case %s: %w", cs.Name, err)
	}
	inputs := trace.RandomInputs(m, rand.New(rand.NewSource(cs.InputSeed)))
	oracle, err := emulator.Run(m, emulator.Config{Model: opts.Model, Inputs: inputs})
	if err != nil {
		return nil, fmt.Errorf("crashtest: case %s: oracle: %w", cs.Name, err)
	}
	if oracle.Verdict != emulator.Completed {
		return nil, fmt.Errorf("crashtest: case %s: oracle run %v (must complete on continuous power)", cs.Name, oracle.Verdict)
	}
	prof, err := trace.Collect(m, trace.Options{Runs: cs.ProfileRuns, Seed: cs.InputSeed, Model: opts.Model})
	if err != nil {
		return nil, fmt.Errorf("crashtest: case %s: profile: %w", cs.Name, err)
	}
	eb := cs.EB
	if eb == 0 {
		eb = prof.EBForTBPF(cs.TBPF)
	}
	// The hunt replays this configuration hundreds of times under
	// varying schedules; validate it once here so a bad case surfaces as
	// a build error instead of a wall of emulator-error outcomes.
	if err := (emulator.Config{
		Model: opts.Model, VMSize: cs.VMSize, Intermittent: true, EB: eb,
	}).Validate(); err != nil {
		return nil, fmt.Errorf("crashtest: case %s: %w", cs.Name, err)
	}
	tech, err := TechniqueByName(cs.Technique)
	if err != nil {
		return nil, err
	}
	clone := ir.Clone(m)
	if !tech.SupportsVM(clone, cs.VMSize) {
		return nil, &SkipError{Reason: fmt.Sprintf("%s does not support %s at SVM=%d", cs.Technique, cs.Name, cs.VMSize)}
	}
	if err := tech.Apply(clone, baselines.Params{
		Model:   opts.Model,
		Budget:  eb,
		VMSize:  cs.VMSize,
		Profile: prof,
	}); err != nil {
		return nil, fmt.Errorf("crashtest: case %s: apply %s: %w", cs.Name, cs.Technique, err)
	}
	if cs.Sabotage > 0 {
		if err := removeNthCheckpoint(clone, cs.Sabotage); err != nil {
			return nil, err
		}
	}
	return &Built{cs: cs, model: opts.Model, mod: clone, inputs: inputs, oracle: oracle, eb: eb}, nil
}

// IsSkip reports whether err marks a skipped (rather than failed) case.
func IsSkip(err error) bool {
	var se *SkipError
	return errors.As(err, &se)
}
