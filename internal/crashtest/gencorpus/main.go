// Command gencorpus (re)generates the committed crash-hunt seed corpus
// under internal/crashtest/testdata/corpus/: one JSON-serialized
// fuzzgen.Program per file. The corpus is deterministic — regenerating
// with the same base seed reproduces the same files — and every program
// carries its seed and generator options so the regression test can
// verify integrity before trusting the source.
//
//	go run ./internal/crashtest/gencorpus -n 6 -seed 1 -out internal/crashtest/testdata/corpus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"schematic/internal/fuzzgen"
)

func main() {
	var (
		n           = flag.Int("n", 6, "number of corpus programs")
		seed        = flag.Int64("seed", 1, "base generator seed")
		out         = flag.String("out", "internal/crashtest/testdata/corpus", "output directory")
		adversarial = flag.Bool("adversarial", false, "generate placement-adversarial shapes (deep WAR chains, tiny hot loops); files get an adv- prefix")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	opts, prefix := fuzzgen.DefaultOptions(), "seed"
	if *adversarial {
		opts, prefix = fuzzgen.AdversarialOptions(), "adv"
	}
	for i, prog := range fuzzgen.Corpus(*seed, *n, opts) {
		data, err := json.MarshalIndent(prog, "", "  ")
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s-%d.json", prefix, prog.Seed))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (program %d, %d bytes of source)\n", path, i, len(prog.Source))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gencorpus:", err)
	os.Exit(1)
}
