package crashtest

import (
	"context"
	"fmt"
	"sort"
	"time"

	"schematic/internal/emulator"
	"schematic/internal/fuzzgen"
)

// Finding is one confirmed, shrunk, replayable counterexample.
type Finding struct {
	Case     Case         `json:"case"`
	Schedule ScheduleSpec `json:"schedule"`
	Class    Class        `json:"class"`
	Detail   string       `json:"detail"`
	// FoundBy names the schedule family that first hit the violation,
	// before normalization and shrinking.
	FoundBy string `json:"found_by"`
}

// candidate is one adversarial schedule to try: a label for reporting
// and a factory (schedules are stateful, so every run needs a fresh one).
type candidate struct {
	label string
	make  func() emulator.PowerSchedule
}

// tracePoints builds an exhaustion+trace candidate.
func tracePoints(label string, pts ...emulator.FailPoint) candidate {
	return candidate{label: label, make: func() emulator.PowerSchedule {
		return emulator.Schedules(emulator.Exhaustion(), emulator.TraceSchedule(pts...))
	}}
}

// sampleInt64 returns exactly min(n, max) distinct values over [1, max],
// in ascending order: the even spread first, then — when the spread
// collides on a small range — the unused points closest to 1, so a
// sampling budget of n always buys n distinct injection points.
func sampleInt64(max int64, n int) []int64 {
	if max <= 0 || n <= 0 {
		return nil
	}
	if int64(n) >= max {
		out := make([]int64, 0, max)
		for i := int64(1); i <= max; i++ {
			out = append(out, i)
		}
		return out
	}
	out := make([]int64, 0, n)
	seen := make(map[int64]bool, n)
	add := func(v int64) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	if n == 1 {
		add(1 + (max-1)/2)
	}
	for i := 0; i < n && n > 1; i++ {
		// 1-based, spread across the range with both endpoints covered.
		add(1 + (max-1)*int64(i)/int64(n-1))
	}
	for v := int64(1); v <= max && len(out) < n; v++ {
		add(v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// enumerate builds the adversarial schedule set for one case, sized by
// the baseline run: exhaustive (or sampled) instruction boundaries,
// the three save-phase points on sampled save attempts, step pairs,
// strides, and seeded-random schedules.
func enumerate(baseline *emulator.Result, cs Case, opts Options) []candidate {
	var cands []candidate
	steps := baseline.Steps

	// Instruction boundaries: exhaustive for small programs, sampled
	// above the limit.
	var stepList []int64
	if steps <= opts.ExhaustiveStepLimit {
		stepList = sampleInt64(steps, int(steps))
	} else {
		stepList = sampleInt64(steps, opts.SampledSteps)
	}
	for _, s := range stepList {
		cands = append(cands, tracePoints(fmt.Sprintf("step@%d", s),
			emulator.FailPoint{Kind: emulator.PointStep, N: s}))
	}

	// Save-phase points: before, mid (torn), after each sampled attempt.
	for _, a := range sampleInt64(baseline.SaveAttempts, opts.SampledSaves) {
		for _, k := range []emulator.PointKind{
			emulator.PointBeforeSave, emulator.PointMidSave, emulator.PointAfterSave,
		} {
			cands = append(cands, tracePoints(fmt.Sprintf("%v@%d", k, a),
				emulator.FailPoint{Kind: k, N: a}))
		}
	}

	// Step pairs: a failure plus a second one mid-recovery, probing
	// failure-during-re-execution windows.
	if steps > 4 {
		for _, s := range sampleInt64(steps, 4) {
			second := s + steps/7 + 1
			cands = append(cands, tracePoints(fmt.Sprintf("step@%d+step@%d", s, second),
				emulator.FailPoint{Kind: emulator.PointStep, N: s},
				emulator.FailPoint{Kind: emulator.PointStep, N: second}))
		}
	}

	// Strides: every Nth boundary, failure count capped below the
	// stagnation threshold.
	for _, div := range []int64{5, 3} {
		n := steps/div + 1
		cands = append(cands, candidate{
			label: fmt.Sprintf("stride(%d)", n),
			make: func() emulator.PowerSchedule {
				return emulator.Schedules(emulator.Exhaustion(),
					emulator.StrideSchedule(n, opts.RandomFailures))
			},
		})
	}

	// Seeded-random schedules, derived deterministically from the case.
	mean := steps/16 + 1
	for i := 0; i < opts.RandomSchedules; i++ {
		seed := cs.InputSeed*1_000_003 + int64(i)
		cands = append(cands, candidate{
			label: fmt.Sprintf("random(seed=%d,mean=%d)", seed, mean),
			make: func() emulator.PowerSchedule {
				return emulator.Schedules(emulator.Exhaustion(),
					emulator.RandomSchedule(seed, mean, opts.RandomFailures))
			},
		})
	}
	return cands
}

// Hunt builds the case, validates it under plain exhaustion, then tries
// every adversarial schedule. It returns nil when no violation exists, a
// shrunk Finding when one does, and an error (SkipError for ineligible
// cases) otherwise. A context deadline tightens Options.Deadline (the
// hunt reports a skip when it expires mid-enumeration); cancellation
// returns ctx.Err() directly.
func Hunt(ctx context.Context, cs Case, opts Options) (*Finding, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if d, ok := ctx.Deadline(); ok && (opts.Deadline.IsZero() || d.Before(opts.Deadline)) {
		opts.Deadline = d
	}
	b, err := build(cs, opts)
	if err != nil {
		return nil, err
	}

	waitContract := WaitOnly(b.mod) && !opts.AssumeAnytime

	// Baseline probe: the placement must complete correctly under its own
	// physics before injection means anything. Incorrect-but-completed
	// baselines are violations of the exhaustion schedule itself. For
	// anytime-contract techniques, non-completing baselines mirror the
	// paper's ✗ cells (the technique legitimately cannot run this EB) and
	// are skipped; a wait-style placement, by contrast, guarantees
	// completion with zero power failures at any EB it accepted, so any
	// baseline failure is itself the counterexample.
	baseline := b.runOnce(emulator.Exhaustion(), 0)
	exhaustionFinding := func(class Class, detail string) *Finding {
		return &Finding{
			Case:     b.cs,
			Schedule: ScheduleSpec{Exhaust: true},
			Class:    class,
			Detail:   detail,
			FoundBy:  "exhaustion",
		}
	}
	switch baseline.Class {
	case ClassNone:
	case ClassDivergence, ClassPoisonRead, ClassLedger:
		return exhaustionFinding(baseline.Class, baseline.Detail), nil
	default:
		if waitContract {
			return exhaustionFinding(baseline.Class, baseline.Detail), nil
		}
		return nil, &SkipError{Reason: fmt.Sprintf("baseline (exhaustion-only) run is %s: %s", baseline.Class, baseline.Detail)}
	}

	if waitContract {
		// The wait-style guarantee: the run never even experienced a power
		// failure — the placement kept every segment inside EB.
		if baseline.Res.PowerFailures > 0 {
			return exhaustionFinding(ClassForwardProgress,
				fmt.Sprintf("wait-style placement hit %d unplanned power failures (segments exceed EB)", baseline.Res.PowerFailures)), nil
		}
		// Injected failures would break an assumption the hardware enforces
		// for this runtime, not the placement; the contract is verified.
		return nil, nil
	}

	maxSteps := opts.maxSteps(baseline.Res.Steps)
	for _, cand := range enumerate(baseline.Res, b.cs, opts) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			return nil, &SkipError{Reason: "deadline expired mid-hunt"}
		}
		out := b.runOnce(cand.make(), maxSteps)
		if out.Class == ClassNone {
			continue
		}
		return confirm(b, cand.label, out, maxSteps, opts)
	}
	return nil, nil
}

// ConfirmSpec replays an externally discovered failure-point trace (a
// model-checker counterexample), shrinks it, and packages the Finding.
// Unlike confirm, the replayed class is authoritative: the verifier's
// resumed explorations start each leg with fresh stagnation watchdogs,
// so a continuous replay of the same points may legitimately classify
// differently (e.g. surface as forward-progress earlier) — any non-None
// replayed class confirms the counterexample. A clean replay is an
// error: the trace does not reproduce.
func (b *Built) ConfirmSpec(foundBy string, points []PointSpec, maxSteps int64, opts Options) (*Finding, error) {
	opts = opts.withDefaults()
	spec := ScheduleSpec{Exhaust: true, Points: points}
	replayed, err := b.runSpec(spec, maxSteps)
	if err != nil {
		return nil, err
	}
	if replayed.Class == ClassNone {
		return nil, fmt.Errorf("crashtest: case %s: %s counterexample %s does not reproduce (replays clean)",
			b.cs.Name, foundBy, spec)
	}
	if !opts.NoShrink {
		budget := opts.ShrinkBudget
		spec.Points = shrinkPoints(b, spec.Points, replayed.Class, maxSteps, &budget)
		final, err := b.runSpec(ScheduleSpec{Exhaust: true, Points: spec.Points}, maxSteps)
		if err != nil {
			return nil, err
		}
		replayed = final
	}
	return &Finding{
		Case:     b.cs,
		Schedule: ScheduleSpec{Exhaust: true, Points: spec.Points},
		Class:    replayed.Class,
		Detail:   replayed.Detail,
		FoundBy:  foundBy,
	}, nil
}

// confirm normalizes a violation into a replayable trace spec, verifies
// it reproduces deterministically, shrinks it, and packages the Finding.
func confirm(b *Built, foundBy string, out Outcome, maxSteps int64, opts Options) (*Finding, error) {
	spec := ScheduleSpec{Exhaust: true, Points: out.Points}
	replayed, err := b.runSpec(spec, maxSteps)
	if err != nil {
		return nil, err
	}
	if replayed.Class != out.Class {
		// The normalized trace does not reproduce the raw schedule's
		// violation — report the discrepancy instead of a broken repro.
		return nil, fmt.Errorf("crashtest: case %s: %s found %s but its trace %s replays as %q",
			b.cs.Name, foundBy, out.Class, spec, replayed.Class)
	}
	if !opts.NoShrink {
		budget := opts.ShrinkBudget
		spec.Points = shrinkPoints(b, spec.Points, out.Class, maxSteps, &budget)
		final, err := b.runSpec(ScheduleSpec{Exhaust: true, Points: spec.Points}, maxSteps)
		if err != nil {
			return nil, err
		}
		out = final
	}
	return &Finding{
		Case:     b.cs,
		Schedule: ScheduleSpec{Exhaust: true, Points: spec.Points},
		Class:    out.Class,
		Detail:   out.Detail,
		FoundBy:  foundBy,
	}, nil
}

// shrinkPoints minimizes a failure-point list while preserving the
// violation class: binary-search halving first, then greedy single-point
// removal, each trial costing one re-execution against the budget.
func shrinkPoints(b *Built, points []PointSpec, class Class, maxSteps int64, budget *int) []PointSpec {
	same := func(trial []PointSpec) bool {
		if *budget <= 0 {
			return false
		}
		*budget--
		out, err := b.runSpec(ScheduleSpec{Exhaust: true, Points: trial}, maxSteps)
		return err == nil && out.Class == class
	}
	for len(points) > 1 {
		half := len(points) / 2
		switch {
		case same(points[:half]):
			points = points[:half]
		case same(points[half:]):
			points = points[half:]
		default:
			goto greedy
		}
	}
greedy:
	for i := len(points) - 1; i >= 0 && len(points) > 1; i-- {
		trial := make([]PointSpec, 0, len(points)-1)
		trial = append(trial, points[:i]...)
		trial = append(trial, points[i+1:]...)
		if same(trial) {
			points = trial
		}
	}
	return points
}

// ShrinkProgram minimizes a fuzz-generated counterexample's program: it
// regenerates the program from the same seed under progressively tighter
// generator options and keeps any reduction that still exhibits the same
// violation class (re-hunted with a reduced schedule set). Cases without
// fuzz provenance are returned unchanged. Cancelling the context stops
// further reduction attempts and returns the best finding so far.
func ShrinkProgram(ctx context.Context, f *Finding, opts Options) *Finding {
	if f.Case.Fuzz == nil {
		return f
	}
	opts = opts.withDefaults()
	quick := opts
	quick.SampledSteps = 12
	quick.RandomSchedules = 2
	quick.ExhaustiveStepLimit = 600
	best := f
	for pass := 0; pass < 8; pass++ {
		improved := false
		for _, next := range reductions(best.Case.Fuzz.Options) {
			if ctx.Err() != nil {
				return best
			}
			prog := fuzzgen.FromSeed(best.Case.Fuzz.Seed, next)
			if len(prog.Source) >= len(best.Case.Source) {
				continue
			}
			cs := best.Case
			cs.Fuzz = &prog
			cs.Source = prog.Source
			got, err := Hunt(ctx, cs, quick)
			if err != nil || got == nil || got.Class != best.Class {
				continue
			}
			best = got
			improved = true
			break
		}
		if !improved {
			break
		}
	}
	return best
}

// reductions yields the one-step tightenings of generator options.
func reductions(o fuzzgen.Options) []fuzzgen.Options {
	var out []fuzzgen.Options
	if o.MaxFuncs > 0 {
		r := o
		r.MaxFuncs--
		out = append(out, r)
	}
	if o.MaxStmts > 1 {
		r := o
		r.MaxStmts--
		out = append(out, r)
	}
	if o.MaxDepth > 1 {
		r := o
		r.MaxDepth--
		out = append(out, r)
	}
	if o.MaxLoopIter > 1 {
		r := o
		r.MaxLoopIter /= 2
		out = append(out, r)
	}
	return out
}

// FuzzCases derives a reproducible stream of fuzz-generated cases, one
// per (program, technique) pair. Every third program carries the
// placement-adversarial shapes (deep WAR chains, tiny hot loops).
func FuzzCases(baseSeed int64, n int, techniques []string, inputSeed int64) []Case {
	var out []Case
	for i, prog := range fuzzgen.MixedCorpus(baseSeed, n) {
		prog := prog
		for _, tech := range techniques {
			out = append(out, Case{
				Name:      fmt.Sprintf("fuzz-%d", i),
				Source:    prog.Source,
				Fuzz:      &prog,
				Technique: tech,
				InputSeed: inputSeed + int64(i),
			})
		}
	}
	return out
}
