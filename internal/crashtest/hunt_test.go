package crashtest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"schematic/internal/emulator"
	"schematic/internal/fuzzgen"
)

// fastOpts keeps hunts cheap in tests without changing their structure.
func fastOpts() Options {
	return Options{ExhaustiveStepLimit: 400, SampledSteps: 10, SampledSaves: 3, RandomSchedules: 2}
}

// TestBenchPlacementsClean: correct placements on fast benchmarks show
// zero violations under the full adversarial schedule set.
func TestBenchPlacementsClean(t *testing.T) {
	cases, err := BenchCases([]string{"crc", "randmath"}, TechniqueNames(), 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &Hunter{Opts: fastOpts()}
	results := h.Run(context.Background(), cases)
	s := Summarize(results)
	if s.Violations != 0 || s.Errors != 0 {
		for _, r := range results {
			if r.Finding != nil || r.Err != nil {
				t.Errorf("%s/%s: finding=%+v err=%v", r.Case.Name, r.Case.Technique, r.Finding, r.Err)
			}
		}
		t.Fatalf("summary: %s", s)
	}
	if s.Passed == 0 {
		t.Fatalf("nothing actually ran: %s", s)
	}
}

// TestCorpusRegression replays the committed fuzzgen seed corpus across
// all five techniques: sources must match their seeds and no placement
// may show a violation.
func TestCorpusRegression(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files (%v); regenerate with go run ./internal/crashtest/gencorpus", err)
	}
	var cases []Case
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var prog fuzzgen.Program
		if err := json.Unmarshal(data, &prog); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, ok := prog.Regenerate(); !ok {
			t.Errorf("%s: stored source does not match its seed/options", path)
			continue
		}
		for _, tech := range TechniqueNames() {
			cases = append(cases, Case{
				Name:      strings.TrimSuffix(filepath.Base(path), ".json"),
				Fuzz:      &prog,
				Technique: tech,
				InputSeed: prog.Seed,
			})
		}
	}
	h := &Hunter{Opts: fastOpts()}
	results := h.Run(context.Background(), cases)
	for _, r := range results {
		switch {
		case r.Err != nil:
			t.Errorf("%s/%s: %v", r.Case.Name, r.Case.Technique, r.Err)
		case r.Finding != nil:
			t.Errorf("%s/%s: violation %s via %s: %s",
				r.Case.Name, r.Case.Technique, r.Finding.Class, r.Finding.Schedule, r.Finding.Detail)
		}
	}
	if s := Summarize(results); s.Passed == 0 {
		t.Fatalf("every corpus case skipped: %s", s)
	}
}

// TestSabotagedRatchetCounterexample is the acceptance scenario: deleting
// a WAR-breaking checkpoint from a Ratchet placement must yield a shrunk,
// replayable counterexample. The large TBPF makes exhaustion failures
// impossible, so only the injected schedules can expose the WAR store.
func TestSabotagedRatchetCounterexample(t *testing.T) {
	cs := Case{Name: "randmath", Technique: "Ratchet", InputSeed: 1, TBPF: 100_000_000, Sabotage: 2}
	bm, err := BenchCases([]string{"randmath"}, []string{"Ratchet"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs.Source = bm[0].Source

	f, err := Hunt(context.Background(), cs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("sabotaged placement produced no finding")
	}
	if f.Class != ClassDivergence {
		t.Fatalf("class = %s, want %s (%s)", f.Class, ClassDivergence, f.Detail)
	}
	if f.FoundBy == "exhaustion" {
		t.Fatalf("finding attributed to exhaustion; the schedule set never injected")
	}
	if len(f.Schedule.Points) == 0 || len(f.Schedule.Points) > 2 {
		t.Fatalf("shrunk trace has %d points: %s", len(f.Schedule.Points), f.Schedule)
	}

	// The serialized repro replays deterministically to the same class.
	var buf bytes.Buffer
	if err := WriteFindings(&buf, []Finding{*f}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFindings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("round trip produced %d findings", len(back))
	}
	for i := 0; i < 2; i++ {
		out, err := Replay(back[0], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Class != f.Class {
			t.Fatalf("replay %d: class = %q, want %q", i, out.Class, f.Class)
		}
	}
}

// TestSabotagedWaitPlacement: deleting a checkpoint from a wait-style
// placement breaks its no-failure guarantee — the exhaustion baseline
// itself becomes the counterexample (deterministically stuck re-executing
// the oversized segment).
func TestSabotagedWaitPlacement(t *testing.T) {
	bm, err := BenchCases([]string{"crc"}, []string{"Schematic"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs := bm[0]
	cs.Sabotage = 2
	f, err := Hunt(context.Background(), cs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("sabotaged wait placement produced no finding")
	}
	if f.Class != ClassForwardProgress {
		t.Fatalf("class = %s, want %s (%s)", f.Class, ClassForwardProgress, f.Detail)
	}
	if f.FoundBy != "exhaustion" || len(f.Schedule.Points) != 0 {
		t.Fatalf("wait-contract finding should come from plain exhaustion, got %s via %s", f.FoundBy, f.Schedule)
	}
	out, err := Replay(*f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Class != f.Class {
		t.Fatalf("replay class = %q, want %q", out.Class, f.Class)
	}
}

// TestWaitContractSkipsInjection: intact wait-style placements are judged
// by their own contract (no injection), but AssumeAnytime overrides it
// and exposes the NVM re-execution hazard.
func TestWaitContractSkipsInjection(t *testing.T) {
	bm, err := BenchCases([]string{"randmath"}, []string{"Rockclimb"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Hunt(context.Background(), bm[0], fastOpts())
	if err != nil || f != nil {
		t.Fatalf("intact wait placement: finding=%+v err=%v, want clean pass", f, err)
	}
	opts := fastOpts()
	opts.AssumeAnytime = true
	f, err = Hunt(context.Background(), bm[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("AssumeAnytime found nothing; NVM-only wait placements are not injection-safe")
	}
	if f.Class != ClassDivergence && f.Class != ClassForwardProgress && f.Class != ClassPoisonRead {
		t.Fatalf("unexpected class %s", f.Class)
	}
}

func TestHunterBudgetAndOrder(t *testing.T) {
	cases, err := BenchCases([]string{"randmath"}, TechniqueNames(), 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &Hunter{Opts: fastOpts(), Jobs: 4}
	results := h.Run(context.Background(), cases)
	if len(results) != len(cases) {
		t.Fatalf("results = %d, want %d", len(results), len(cases))
	}
	for i := range results {
		if results[i].Case.Technique != cases[i].Technique {
			t.Fatalf("result %d out of order: %s", i, results[i].Case.Technique)
		}
	}

	// An already-expired budget skips every case.
	h2 := &Hunter{Opts: fastOpts(), Budget: time.Nanosecond}
	time.Sleep(time.Millisecond)
	s := Summarize(h2.Run(context.Background(), cases))
	if s.Skipped != len(cases) {
		t.Errorf("expired budget: %s, want all %d skipped", s, len(cases))
	}
}

func TestScheduleSpecBuildAndString(t *testing.T) {
	spec := ScheduleSpec{Exhaust: true, Points: []PointSpec{{Kind: "step", N: 5}, {Kind: "mid-save", N: 2}}}
	if got := spec.String(); got != "exhaustion+step@5+mid-save@2" {
		t.Errorf("String() = %q", got)
	}
	if _, err := spec.Build(); err != nil {
		t.Errorf("Build: %v", err)
	}
	bad := ScheduleSpec{Points: []PointSpec{{Kind: "charge", N: 1}}}
	if _, err := bad.Build(); err == nil {
		t.Errorf("Build accepted the physics-only kind")
	}
	if (ScheduleSpec{}).String() != "(none)" {
		t.Errorf("empty spec String() = %q", ScheduleSpec{}.String())
	}
}

func TestSampleInt64(t *testing.T) {
	if got := sampleInt64(0, 5); got != nil {
		t.Errorf("sampleInt64(0) = %v", got)
	}
	got := sampleInt64(3, 10)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("exhaustive sample = %v", got)
	}
	got = sampleInt64(1000, 5)
	if len(got) != 5 || got[0] != 1 || got[len(got)-1] != 1000 {
		t.Errorf("spread sample = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("sample not increasing: %v", got)
		}
	}
}

// TestSampleInt64Distinct is the regression for the duplicate-sample
// bug: for every (max, n), a budget of n must buy exactly min(n, max)
// DISTINCT points in [1, max], ascending — duplicates silently shrank
// the injected schedule set, so `-samples N` bought fewer than N points.
func TestSampleInt64Distinct(t *testing.T) {
	for max := int64(1); max <= 40; max++ {
		for n := 1; n <= 48; n++ {
			got := sampleInt64(max, n)
			want := int(max)
			if n < want {
				want = n
			}
			if len(got) != want {
				t.Fatalf("sampleInt64(%d, %d): %d points %v, want %d", max, n, len(got), got, want)
			}
			for i, v := range got {
				if v < 1 || v > max {
					t.Fatalf("sampleInt64(%d, %d): point %d out of range in %v", max, n, v, got)
				}
				if i > 0 && v <= got[i-1] {
					t.Fatalf("sampleInt64(%d, %d): not strictly ascending (so not distinct): %v", max, n, got)
				}
			}
		}
	}
	if got := sampleInt64(1000, 1); len(got) != 1 || got[0] != 500 {
		t.Errorf("single-sample midpoint = %v, want [500]", got)
	}
}

func TestSabotageOutOfRange(t *testing.T) {
	bm, err := BenchCases([]string{"randmath"}, []string{"Ratchet"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs := bm[0]
	cs.Sabotage = 10_000
	if _, err := Hunt(context.Background(), cs, fastOpts()); err == nil || IsSkip(err) {
		t.Fatalf("out-of-range sabotage: err = %v, want hard error", err)
	}
}

// TestFuzzProgramShrinks exercises the fuzz-program shrinking path.
// Wait-style placements are not injection-safe, so hunting a fuzz
// program under Rockclimb with AssumeAnytime deterministically yields a
// divergence counterexample; ShrinkProgram must preserve its class
// without growing the program, and the shrunk repro must still replay.
func TestFuzzProgramShrinks(t *testing.T) {
	opts := fastOpts()
	opts.AssumeAnytime = true
	cs := FuzzCases(4000013, 1, []string{"Rockclimb"}, 5)[0]
	found, err := Hunt(context.Background(), cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if found == nil {
		t.Fatal("anytime-injected wait placement on the fuzz program produced no finding")
	}
	shrunk := ShrinkProgram(context.Background(), found, opts)
	if shrunk.Class != found.Class {
		t.Fatalf("shrinking changed the class: %s -> %s", found.Class, shrunk.Class)
	}
	if len(shrunk.Case.Source) > len(found.Case.Source) {
		t.Fatalf("shrinking grew the program: %d -> %d bytes", len(found.Case.Source), len(shrunk.Case.Source))
	}
	out, err := Replay(*shrunk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Class != shrunk.Class {
		t.Fatalf("shrunk finding replays as %q, want %q", out.Class, shrunk.Class)
	}
}

// TestHunterCancellation: a cancelled context makes the sweep return
// promptly with every case marked skipped instead of hunting on.
func TestHunterCancellation(t *testing.T) {
	cases, err := BenchCases(BenchNames(), TechniqueNames(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	h := &Hunter{Opts: fastOpts()}
	results := h.Run(ctx, cases)
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancelled sweep took %v, want prompt return", el)
	}
	s := Summarize(results)
	if s.Skipped != len(cases) {
		t.Fatalf("cancelled sweep: %s, want all %d skipped", s, len(cases))
	}
}

// TestBuildRejectsInvalidConfig: a case whose emulator configuration
// cannot validate must fail at build time with a ConfigError — before
// the hunt replays it against hundreds of schedules, where the mistake
// would surface as a wall of emulator-error outcomes.
func TestBuildRejectsInvalidConfig(t *testing.T) {
	cs := Case{
		Name:      "bad-vmsize",
		Source:    "func void main() { print(1); }",
		Technique: "Ratchet",
		VMSize:    -4,
	}
	_, err := Hunt(context.Background(), cs, fastOpts())
	if !errors.Is(err, emulator.ErrInvalidConfig) {
		t.Fatalf("Hunt with VMSize=-4: got %v, want ErrInvalidConfig", err)
	}
}
