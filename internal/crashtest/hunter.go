package crashtest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"schematic/internal/bench"
)

// HuntResult is one case's outcome in a hunter sweep.
type HuntResult struct {
	Case    Case
	Finding *Finding // nil when the case passed
	Skipped string   // non-empty when the case was skipped (with reason)
	Err     error    // infrastructure failure (compile, oracle, ...)
	Elapsed time.Duration
}

// Hunter sweeps a case list on a worker pool (the internal/bench runner
// pattern), with per-case deadlines and an overall wall-clock budget.
type Hunter struct {
	Opts Options
	// Jobs is the worker count; 0 selects NumCPU.
	Jobs int
	// CaseTimeout bounds each case's hunt; 0 = no per-case bound.
	CaseTimeout time.Duration
	// Budget bounds the whole sweep; cases that would start after it
	// expires are skipped. 0 = no budget.
	Budget time.Duration
	// Log, when non-nil, receives one progress line per finished case.
	Log io.Writer
}

// Run hunts every case and returns the results in case order,
// deterministic regardless of the worker count. A cancelled context
// marks every not-yet-hunted case as skipped and returns promptly;
// in-flight cases surface ctx.Err() through their result.
func (h *Hunter) Run(ctx context.Context, cases []Case) []HuntResult {
	results := make([]HuntResult, len(cases))
	var deadline time.Time
	if h.Budget > 0 {
		deadline = time.Now().Add(h.Budget)
	}
	var logMu sync.Mutex
	// ParallelFor only propagates errors; results land by index. The
	// context is checked per case (not via ParallelForCtx) so skipped
	// cases still produce well-formed HuntResults.
	_ = bench.ParallelFor(h.Jobs, len(cases), func(i int) error {
		res := HuntResult{Case: cases[i]}
		start := time.Now()
		if ctx.Err() != nil {
			res.Skipped = "cancelled"
			results[i] = res
			return nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Skipped = "wall-clock budget exhausted"
			results[i] = res
			return nil
		}
		opts := h.Opts
		opts.Deadline = caseDeadline(deadline, h.CaseTimeout)
		f, err := Hunt(ctx, cases[i], opts)
		res.Elapsed = time.Since(start)
		switch {
		case IsSkip(err):
			res.Skipped = err.Error()
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			res.Skipped = "cancelled: " + err.Error()
		case err != nil:
			res.Err = err
		default:
			res.Finding = f
		}
		results[i] = res
		if h.Log != nil {
			logMu.Lock()
			fmt.Fprintln(h.Log, res.line())
			logMu.Unlock()
		}
		return nil
	})
	return results
}

// caseDeadline combines the sweep deadline and the per-case timeout.
func caseDeadline(sweep time.Time, timeout time.Duration) time.Time {
	var d time.Time
	if timeout > 0 {
		d = time.Now().Add(timeout)
	}
	if !sweep.IsZero() && (d.IsZero() || sweep.Before(d)) {
		d = sweep
	}
	return d
}

func (r *HuntResult) line() string {
	id := fmt.Sprintf("%s/%s", r.Case.Name, r.Case.Technique)
	switch {
	case r.Err != nil:
		return fmt.Sprintf("ERROR %-28s %v", id, r.Err)
	case r.Skipped != "":
		return fmt.Sprintf("skip  %-28s %s", id, r.Skipped)
	case r.Finding != nil:
		return fmt.Sprintf("FAIL  %-28s %s via %s (%s) in %v",
			id, r.Finding.Class, r.Finding.Schedule, r.Finding.FoundBy, r.Elapsed.Round(time.Millisecond))
	default:
		return fmt.Sprintf("ok    %-28s in %v", id, r.Elapsed.Round(time.Millisecond))
	}
}

// Summary aggregates a sweep.
type Summary struct {
	Cases      int
	Passed     int
	Violations int
	Skipped    int
	Errors     int
}

// Summarize folds hunt results into counts.
func Summarize(results []HuntResult) Summary {
	s := Summary{Cases: len(results)}
	for i := range results {
		switch {
		case results[i].Err != nil:
			s.Errors++
		case results[i].Skipped != "":
			s.Skipped++
		case results[i].Finding != nil:
			s.Violations++
		default:
			s.Passed++
		}
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%d cases: %d ok, %d violations, %d skipped, %d errors",
		s.Cases, s.Passed, s.Violations, s.Skipped, s.Errors)
}

// Findings extracts the non-nil findings in case order.
func Findings(results []HuntResult) []Finding {
	var out []Finding
	for i := range results {
		if results[i].Finding != nil {
			out = append(out, *results[i].Finding)
		}
	}
	return out
}

// BenchCases builds the hunt list for the bundled MiBench2 suite: one
// case per (benchmark, technique) pair.
func BenchCases(benches []string, techniques []string, inputSeed int64) ([]Case, error) {
	var out []Case
	for _, name := range benches {
		bm, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, tech := range techniques {
			out = append(out, Case{
				Name:      bm.Name,
				Source:    bm.Source,
				Technique: tech,
				InputSeed: inputSeed,
			})
		}
	}
	return out, nil
}

// BenchNames lists the bundled MiBench2 benchmarks in suite order.
func BenchNames() []string {
	return append([]string(nil), bench.Order...)
}

// TechniqueNames lists the five techniques in the paper's column order.
func TechniqueNames() []string {
	var names []string
	for _, t := range bench.Techniques() {
		names = append(names, t.Name())
	}
	return names
}
