package crashtest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteFindings serializes findings as NDJSON, one repro per line. The
// encoding is deterministic: struct field order is fixed and no maps are
// involved.
func WriteFindings(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	for i := range findings {
		if err := enc.Encode(&findings[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadFindings parses an NDJSON repro stream, skipping blank lines.
func ReadFindings(r io.Reader) ([]Finding, error) {
	var out []Finding
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // sources can be long lines
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var f Finding
		if err := json.Unmarshal(b, &f); err != nil {
			return nil, fmt.Errorf("crashtest: repro line %d: %w", line, err)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Replay rebuilds a finding's case from its serialized form (verifying
// fuzz provenance) and re-executes its schedule. The returned outcome's
// class matching f.Class is the determinism check replay tools assert.
func Replay(f Finding, opts Options) (Outcome, error) {
	opts = opts.withDefaults()
	b, err := build(f.Case, opts)
	if err != nil {
		return Outcome{}, err
	}
	// The replay bound mirrors the hunt's: generous relative to the
	// baseline so only genuine non-termination trips it.
	baseline := b.runOnce(nil, 0)
	var maxSteps int64
	if baseline.Res != nil {
		maxSteps = opts.maxSteps(baseline.Res.Steps)
	}
	return b.runSpec(f.Schedule, maxSteps)
}
