package crashtest

import (
	"bytes"
	"strings"
	"testing"
)

func TestFindingsRoundTrip(t *testing.T) {
	findings := []Finding{
		{
			Case:     Case{Name: "a", Source: "func void main() { print(1); }", Technique: "Ratchet", InputSeed: 3},
			Schedule: ScheduleSpec{Exhaust: true, Points: []PointSpec{{Kind: "step", N: 7}}},
			Class:    ClassDivergence,
			Detail:   "output[0] = 2, oracle 1",
			FoundBy:  "step@7",
		},
		{
			Case:     Case{Name: "b", Source: "x", Technique: "Schematic"},
			Schedule: ScheduleSpec{Exhaust: true},
			Class:    ClassForwardProgress,
		},
	}
	var buf bytes.Buffer
	if err := WriteFindings(&buf, findings); err != nil {
		t.Fatal(err)
	}
	// NDJSON: one line per finding, blank lines tolerated on read.
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("serialized %d lines, want 2", got)
	}
	buf.WriteString("\n")
	back, err := ReadFindings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d findings, want 2", len(back))
	}
	if back[0].Schedule.String() != findings[0].Schedule.String() ||
		back[0].Class != findings[0].Class ||
		back[0].Case.Source != findings[0].Case.Source {
		t.Errorf("finding 0 mangled: %+v", back[0])
	}
}

func TestReadFindingsBadLine(t *testing.T) {
	r := strings.NewReader("{\"class\":\"output-divergence\"}\nnot json\n")
	if _, err := ReadFindings(r); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-numbered parse error", err)
	}
}

func TestReplayRejectsTamperedFuzzSource(t *testing.T) {
	cases := FuzzCases(1, 1, []string{"Ratchet"}, 1)
	f := Finding{Case: cases[0], Schedule: ScheduleSpec{Exhaust: true}, Class: ClassDivergence}
	f.Case.Fuzz.Source = f.Case.Fuzz.Source + "\n// tampered"
	if _, err := Replay(f, Options{}); err == nil {
		t.Fatal("replay accepted a repro whose source does not match its fuzz seed")
	}
}
