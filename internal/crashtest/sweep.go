package crashtest

import (
	"context"
	"fmt"

	"schematic/internal/emulator"
)

// RunSchedule executes the built case once under the given schedule
// (a fresh, single-run instance) and classifies the outcome against the
// continuous-power oracle. maxSteps of 0 applies the emulator default.
func (b *Built) RunSchedule(sched emulator.PowerSchedule, maxSteps int64) Outcome {
	return b.runOnce(sched, maxSteps)
}

// NamedSchedule labels a factory for fresh power-schedule instances.
// Schedules are stateful single-run values, so a sweep needs a factory,
// not an instance; eb is the case's derived energy budget (harvested
// capacitor sizing).
type NamedSchedule struct {
	Name string
	Make func(eb float64) (emulator.PowerSchedule, error)
}

// SweepResult is one case × schedule cell of a power-environment sweep.
// A violation is any Outcome with Class != ClassNone.
type SweepResult struct {
	Case     Case
	Schedule string
	Outcome  Outcome
}

// Violation reports whether this cell broke its oracle.
func (r SweepResult) Violation() bool { return r.Outcome.Class != ClassNone }

// Sweep runs every case once under every named power schedule,
// classifying each run against the case's continuous-power oracle —
// the harvested-environment analogue of Hunt's injection pass. Each
// case is first validated under plain exhaustion, exactly like Hunt's
// baseline: a dirty wait-contract baseline is itself reported as a
// violation (under the "exhaustion" schedule name), while a
// legitimately non-completing anytime baseline skips the case.
// Ineligible cases (SkipError from Prepare) are skipped with a log
// line. log may be nil.
func Sweep(ctx context.Context, cases []Case, scheds []NamedSchedule, opts Options, log func(format string, args ...any)) ([]SweepResult, error) {
	if log == nil {
		log = func(string, ...any) {}
	}
	opts = opts.withDefaults()
	var out []SweepResult
	for _, cs := range cases {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		b, err := Prepare(cs, opts)
		if err != nil {
			if IsSkip(err) {
				log("skip %s/%s: %v", cs.Name, cs.Technique, err)
				continue
			}
			return out, err
		}
		baseline := b.RunSchedule(emulator.Exhaustion(), 0)
		if baseline.Class != ClassNone {
			if WaitOnly(b.Module()) && !opts.AssumeAnytime {
				out = append(out, SweepResult{Case: b.Case(), Schedule: "exhaustion", Outcome: baseline})
				continue
			}
			log("skip %s/%s: exhaustion baseline is %s", cs.Name, cs.Technique, baseline.Class)
			continue
		}
		maxSteps := opts.MaxStepsFor(baseline.Res.Steps)
		for _, ns := range scheds {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			sched, err := ns.Make(b.EB())
			if err != nil {
				return out, fmt.Errorf("crashtest: schedule %s for case %s: %w", ns.Name, cs.Name, err)
			}
			out = append(out, SweepResult{
				Case:     b.Case(),
				Schedule: ns.Name,
				Outcome:  b.RunSchedule(sched, maxSteps),
			})
		}
	}
	return out, nil
}
