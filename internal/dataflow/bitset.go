// Package dataflow implements the iterative dataflow analyses SCHEMATIC
// needs: per-variable liveness (used by Eq. 2 to skip saving dead variables
// and restoring write-first variables) and access-count summaries (the nR
// and nW of Eq. 1).
package dataflow

import "math/bits"

// BitSet is a fixed-universe bit set used as the lattice element of the
// dataflow solver.
type BitSet []uint64

// NewBitSet returns an empty set over a universe of n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds element i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (i % 64) }

// Clear removes element i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (i % 64) }

// Has reports whether the set contains i.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

// UnionWith adds every element of t, reporting whether s changed.
func (s BitSet) UnionWith(t BitSet) bool {
	changed := false
	for i := range s {
		old := s[i]
		s[i] |= t[i]
		changed = changed || s[i] != old
	}
	return changed
}

// DiffWith removes every element of t.
func (s BitSet) DiffWith(t BitSet) {
	for i := range s {
		s[i] &^= t[i]
	}
}

// Copy returns an independent copy.
func (s BitSet) Copy() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// Count returns the number of elements.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether two sets over the same universe are equal.
func (s BitSet) Equal(t BitSet) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}
