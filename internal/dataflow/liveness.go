package dataflow

import (
	"sort"

	"schematic/internal/ir"
)

// Liveness holds per-block live-variable information for one function, at
// the granularity of memory variables (the granularity of SCHEMATIC's
// allocation, paper III-A).
//
// Precision notes, all conservative:
//   - a store to a scalar kills it; a store to an array element does not
//     (partial definition),
//   - globals transitively accessed by a callee are treated as used at the
//     call site,
//   - every global accessed anywhere in the module is live at function
//     exit (no interprocedural continuation tracking).
type Liveness struct {
	fn   *ir.Func
	vars []*ir.Var
	idx  map[*ir.Var]int
	in   map[*ir.Block]BitSet
	out  map[*ir.Block]BitSet
}

// GlobalUse summarizes, per function, the globals it (transitively) reads
// or writes. Shared across the per-function liveness computations.
type GlobalUse struct {
	Accessed map[*ir.Func]map[*ir.Var]bool
}

// BuildGlobalUse computes transitive global access sets for every function
// of the module. The call graph is acyclic (ir.Verify), so a fixed point is
// reached in one pass over a reverse topological order; for robustness we
// simply iterate to fixpoint.
func BuildGlobalUse(m *ir.Module) *GlobalUse {
	gu := &GlobalUse{Accessed: map[*ir.Func]map[*ir.Var]bool{}}
	for _, f := range m.Funcs {
		gu.Accessed[f] = map[*ir.Var]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			set := gu.Accessed[f]
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if v, _, ok := ir.AccessedVar(in); ok && v.Global && !set[v] {
						set[v] = true
						changed = true
					}
					if c, ok := in.(*ir.Call); ok {
						for g := range gu.Accessed[c.Callee] {
							if !set[g] {
								set[g] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}
	return gu
}

// LiveVars computes liveness for f. gu may be nil, in which case it is
// computed on the fly from f's module.
func LiveVars(f *ir.Func, gu *GlobalUse) *Liveness {
	if gu == nil {
		gu = BuildGlobalUse(f.Module)
	}
	lv := &Liveness{
		fn:  f,
		idx: map[*ir.Var]int{},
		in:  map[*ir.Block]BitSet{},
		out: map[*ir.Block]BitSet{},
	}
	// Universe: this function's locals plus all globals.
	for _, v := range f.Locals {
		lv.idx[v] = len(lv.vars)
		lv.vars = append(lv.vars, v)
	}
	for _, v := range f.Module.Globals {
		lv.idx[v] = len(lv.vars)
		lv.vars = append(lv.vars, v)
	}
	n := len(lv.vars)

	// Globals accessed anywhere in the module are live at exit.
	exitLive := NewBitSet(n)
	for _, fn := range f.Module.Funcs {
		for g := range gu.Accessed[fn] {
			exitLive.Set(lv.idx[g])
		}
	}

	gen := map[*ir.Block]BitSet{}
	kill := map[*ir.Block]BitSet{}
	for _, b := range f.Blocks {
		g, k := NewBitSet(n), NewBitSet(n)
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Load:
				i := lv.idx[x.Var]
				if !k.Has(i) {
					g.Set(i)
				}
			case *ir.Store:
				i := lv.idx[x.Var]
				if x.HasIndex {
					// Partial definition: the array stays live (its other
					// elements may be read later), so it counts as a use.
					if !k.Has(i) {
						g.Set(i)
					}
				} else if !g.Has(i) {
					k.Set(i)
				}
			case *ir.Call:
				for gvar := range gu.Accessed[x.Callee] {
					i := lv.idx[gvar]
					if !k.Has(i) {
						g.Set(i)
					}
				}
			}
		}
		gen[b], kill[b] = g, k
		lv.in[b] = NewBitSet(n)
		lv.out[b] = NewBitSet(n)
	}

	// Backward iteration to fixpoint, visiting blocks in reverse RPO for
	// fast convergence.
	rpo := ir.ReversePostorder(f)
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := lv.out[b]
			if _, isRet := b.Terminator().(*ir.Ret); isRet {
				if out.UnionWith(exitLive) {
					changed = true
				}
			}
			for _, s := range b.Succs() {
				if out.UnionWith(lv.in[s]) {
					changed = true
				}
			}
			newIn := out.Copy()
			newIn.DiffWith(kill[b])
			newIn.UnionWith(gen[b])
			if !newIn.Equal(lv.in[b]) {
				lv.in[b] = newIn
				changed = true
			}
		}
	}
	return lv
}

// LiveIn reports whether v is live at the entry of b.
func (lv *Liveness) LiveIn(v *ir.Var, b *ir.Block) bool {
	i, ok := lv.idx[v]
	return ok && lv.in[b].Has(i)
}

// LiveOut reports whether v is live at the exit of b.
func (lv *Liveness) LiveOut(v *ir.Var, b *ir.Block) bool {
	i, ok := lv.idx[v]
	return ok && lv.out[b].Has(i)
}

// LiveAtEdge reports whether v is live on the CFG edge e — the liveness
// query Eq. 2 needs at potential checkpoint locations.
func (lv *Liveness) LiveAtEdge(v *ir.Var, e ir.Edge) bool {
	return lv.LiveIn(v, e.To)
}

// LiveInSet returns the variables live at entry of b, sorted by name.
func (lv *Liveness) LiveInSet(b *ir.Block) []*ir.Var {
	var out []*ir.Var
	set := lv.in[b]
	for i, v := range lv.vars {
		if set.Has(i) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RW is a read/write access count pair (the nR and nW of Eq. 1).
type RW struct {
	Reads  int
	Writes int
}

// Total returns reads + writes.
func (c RW) Total() int { return c.Reads + c.Writes }

// AccessCounts tallies the memory accesses of a single block per variable.
// Calls are not included; callers fold callee summaries separately
// (paper III-B1).
func AccessCounts(b *ir.Block) map[*ir.Var]RW {
	counts := map[*ir.Var]RW{}
	for _, in := range b.Instrs {
		if v, write, ok := ir.AccessedVar(in); ok {
			c := counts[v]
			if write {
				c.Writes++
			} else {
				c.Reads++
			}
			counts[v] = c
		}
	}
	return counts
}
