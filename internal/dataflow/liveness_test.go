package dataflow

import (
	"testing"
	"testing/quick"

	"schematic/internal/ir"
)

const liveSrc = `module live
global g
global arr[4]
global untouched

func void useG() regs 2 {
entry:
  r0 = load g
  r1 = const 1
  r1 = add r0, r1
  store g, r1
  ret
}

func void main() regs 6 {
  local a
  local b
  local dead
entry:
  r0 = const 1
  store a, r0
  store dead, r0
  br r0, left, right
left:
  r1 = load a
  store b, r1
  jmp merge
right:
  r2 = const 2
  store b, r2
  jmp merge
merge:
  r3 = load b
  store arr[r0], r3
  call useG()
  r4 = load arr[r0]
  out r4
  ret
}
`

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestGlobalUse(t *testing.T) {
	m := mustParse(t, liveSrc)
	gu := BuildGlobalUse(m)
	mainF := m.FuncByName("main")
	useG := m.FuncByName("useG")
	g := m.GlobalByName("g")
	arr := m.GlobalByName("arr")
	unt := m.GlobalByName("untouched")

	if !gu.Accessed[useG][g] {
		t.Errorf("useG should access g")
	}
	if !gu.Accessed[mainF][g] {
		t.Errorf("main should transitively access g via useG")
	}
	if !gu.Accessed[mainF][arr] {
		t.Errorf("main should access arr")
	}
	if gu.Accessed[mainF][unt] || gu.Accessed[useG][unt] {
		t.Errorf("untouched should be accessed by nobody")
	}
}

func TestLiveness(t *testing.T) {
	m := mustParse(t, liveSrc)
	f := m.FuncByName("main")
	lv := LiveVars(f, nil)
	get := f.BlockByName
	a := f.LocalByName("a")
	b := f.LocalByName("b")
	dead := f.LocalByName("dead")
	g := m.GlobalByName("g")
	arr := m.GlobalByName("arr")

	// a is live into left (read there) but not into right.
	if !lv.LiveIn(a, get("left")) {
		t.Errorf("a should be live into left")
	}
	if lv.LiveIn(a, get("right")) {
		t.Errorf("a should not be live into right")
	}
	// b is written in both arms before any read: not live into them.
	if lv.LiveIn(b, get("left")) || lv.LiveIn(b, get("right")) {
		t.Errorf("b should not be live into the branch arms")
	}
	if !lv.LiveIn(b, get("merge")) {
		t.Errorf("b should be live into merge")
	}
	// dead is stored and never read.
	for _, blk := range f.Blocks {
		if lv.LiveIn(dead, blk) {
			t.Errorf("dead live into %s", blk.Name)
		}
	}
	// g is accessed by the callee, so it is live into merge (call site).
	if !lv.LiveIn(g, get("merge")) {
		t.Errorf("g should be live into merge via callee access")
	}
	// Globals accessed in the module stay live at exit.
	if !lv.LiveOut(g, get("merge")) || !lv.LiveOut(arr, get("merge")) {
		t.Errorf("module-accessed globals should be live out of the exit block")
	}
	// Array partial store keeps arr live (it is also read after).
	if !lv.LiveIn(arr, get("merge")) {
		t.Errorf("arr should be live into merge")
	}
}

func TestLiveAtEdge(t *testing.T) {
	m := mustParse(t, liveSrc)
	f := m.FuncByName("main")
	lv := LiveVars(f, nil)
	a := f.LocalByName("a")
	e := ir.Edge{From: f.BlockByName("entry"), To: f.BlockByName("left")}
	if !lv.LiveAtEdge(a, e) {
		t.Errorf("a should be live at entry->left")
	}
	e2 := ir.Edge{From: f.BlockByName("entry"), To: f.BlockByName("right")}
	if lv.LiveAtEdge(a, e2) {
		t.Errorf("a should be dead at entry->right")
	}
}

func TestLiveInSetSorted(t *testing.T) {
	m := mustParse(t, liveSrc)
	f := m.FuncByName("main")
	lv := LiveVars(f, nil)
	set := lv.LiveInSet(f.BlockByName("merge"))
	for i := 1; i < len(set); i++ {
		if set[i-1].Name >= set[i].Name {
			t.Errorf("LiveInSet not sorted: %v", set)
		}
	}
}

func TestAccessCounts(t *testing.T) {
	m := mustParse(t, liveSrc)
	f := m.FuncByName("main")
	counts := AccessCounts(f.BlockByName("merge"))
	b := f.LocalByName("b")
	arr := m.GlobalByName("arr")
	if c := counts[b]; c.Reads != 1 || c.Writes != 0 {
		t.Errorf("counts[b] = %+v", c)
	}
	if c := counts[arr]; c.Reads != 1 || c.Writes != 1 || c.Total() != 2 {
		t.Errorf("counts[arr] = %+v", c)
	}
}

func TestBitSetProperties(t *testing.T) {
	// Union is monotone and idempotent; diff removes what union added.
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := NewBitSet(n), NewBitSet(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		u := a.Copy()
		u.UnionWith(b)
		for _, x := range xs {
			if !u.Has(int(x)) {
				return false
			}
		}
		for _, y := range ys {
			if !u.Has(int(y)) {
				return false
			}
		}
		if u.UnionWith(b) { // idempotent
			return false
		}
		u.DiffWith(b)
		for _, y := range ys {
			if u.Has(int(y)) {
				return false
			}
		}
		if u.Count() > len(xs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Errorf("Has wrong")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Errorf("Clear failed")
	}
	c := s.Copy()
	if !c.Equal(s) {
		t.Errorf("Copy not equal")
	}
	c.Set(5)
	if c.Equal(s) {
		t.Errorf("Copy shares storage")
	}
}
