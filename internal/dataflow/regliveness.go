package dataflow

import (
	"schematic/internal/ir"
)

// RegLiveness holds per-block live-register sets for one function. The
// paper's §VII suggests reducing checkpointed data volume "by improving
// the liveness analysis"; live-register sets let a checkpoint save only
// the registers that still matter instead of the whole file.
type RegLiveness struct {
	fn  *ir.Func
	in  map[*ir.Block]BitSet
	out map[*ir.Block]BitSet
}

// LiveRegs computes register liveness for f (standard backward dataflow
// over the virtual register set; Uses gen, Def kills).
func LiveRegs(f *ir.Func) *RegLiveness {
	n := f.NumRegs
	rl := &RegLiveness{
		fn:  f,
		in:  map[*ir.Block]BitSet{},
		out: map[*ir.Block]BitSet{},
	}
	gen := map[*ir.Block]BitSet{}
	kill := map[*ir.Block]BitSet{}
	for _, b := range f.Blocks {
		g, k := NewBitSet(n), NewBitSet(n)
		for _, in := range b.Instrs {
			for _, r := range ir.Uses(in) {
				if !k.Has(int(r)) {
					g.Set(int(r))
				}
			}
			if d, ok := ir.Def(in); ok && !g.Has(int(d)) {
				k.Set(int(d))
			}
		}
		gen[b], kill[b] = g, k
		rl.in[b] = NewBitSet(n)
		rl.out[b] = NewBitSet(n)
	}
	rpo := ir.ReversePostorder(f)
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := rl.out[b]
			for _, s := range b.Succs() {
				if out.UnionWith(rl.in[s]) {
					changed = true
				}
			}
			newIn := out.Copy()
			newIn.DiffWith(kill[b])
			newIn.UnionWith(gen[b])
			if !newIn.Equal(rl.in[b]) {
				rl.in[b] = newIn
				changed = true
			}
		}
	}
	return rl
}

// LiveInCount returns the number of registers live at entry of b.
func (rl *RegLiveness) LiveInCount(b *ir.Block) int { return rl.in[b].Count() }

// LiveAtInstr returns the number of registers live just before the i-th
// instruction of b (recomputed by walking the block backwards).
func (rl *RegLiveness) LiveAtInstr(b *ir.Block, idx int) int {
	live := rl.out[b].Copy()
	for i := len(b.Instrs) - 1; i >= idx; i-- {
		in := b.Instrs[i]
		if d, ok := ir.Def(in); ok {
			live.Clear(int(d))
		}
		for _, r := range ir.Uses(in) {
			live.Set(int(r))
		}
	}
	return live.Count()
}

// OutSet returns a copy of the live-out register set of b, for clients
// (like the optimizer's dead-code elimination) that walk blocks backwards
// themselves.
func (rl *RegLiveness) OutSet(b *ir.Block) BitSet { return rl.out[b].Copy() }
