package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

const regLiveSrc = `
int g;

func void main() {
  int a;
  int b;
  a = 3;
  b = 4;
  if (a < b) {
    g = a + b;
  } else {
    g = a - b;
  }
  print(g);
}
`

func TestLiveRegsStraightLine(t *testing.T) {
	m, err := minic.Compile("t", regLiveSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Funcs[len(m.Funcs)-1]
	if f.Name != "main" {
		for _, fn := range m.Funcs {
			if fn.Name == "main" {
				f = fn
			}
		}
	}
	rl := LiveRegs(f)
	// Nothing is live into the entry block: every register is defined
	// before use in a whole program with no parameters.
	if n := rl.LiveInCount(f.Entry()); n != 0 {
		t.Errorf("entry live-in = %d, want 0", n)
	}
	// The branch blocks need the registers holding a and b.
	for _, b := range f.Blocks {
		if b == f.Entry() {
			continue
		}
		if n := rl.LiveInCount(b); n < 0 || n > f.NumRegs {
			t.Errorf("block %s: live-in %d out of range [0,%d]", b.Name, n, f.NumRegs)
		}
	}
}

func TestLiveAtInstrMatchesLiveIn(t *testing.T) {
	m, err := minic.Compile("t", regLiveSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		rl := LiveRegs(f)
		for _, b := range f.Blocks {
			if got, want := rl.LiveAtInstr(b, 0), rl.LiveInCount(b); got != want {
				t.Errorf("%s.%s: LiveAtInstr(0) = %d, LiveInCount = %d",
					f.Name, b.Name, got, want)
			}
		}
	}
}

// TestLiveRegsProperties checks dataflow invariants on generated programs:
// live counts are within range, LiveAtInstr(b, 0) equals the block's
// live-in, and liveness never exceeds what a block's terminator position
// implies.
func TestLiveRegsProperties(t *testing.T) {
	check := func(seed int64) bool {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			return true // generator bug covered elsewhere
		}
		for _, f := range m.Funcs {
			rl := LiveRegs(f)
			for _, b := range f.Blocks {
				in := rl.LiveInCount(b)
				if in < 0 || in > f.NumRegs {
					return false
				}
				if rl.LiveAtInstr(b, 0) != in {
					return false
				}
				for i := range b.Instrs {
					n := rl.LiveAtInstr(b, i)
					if n < 0 || n > f.NumRegs {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLiveRegsParamsLive checks that function parameters arriving in
// registers are live at entry when used.
func TestLiveRegsParamsLive(t *testing.T) {
	const src = `
int r;

func int addmul(int x, int y) {
  return x * 2 + y;
}

func void main() {
  r = addmul(3, 4);
  print(r);
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	var f *ir.Func
	for _, fn := range m.Funcs {
		if fn.Name == "addmul" {
			f = fn
		}
	}
	if f == nil {
		t.Fatal("addmul not found")
	}
	rl := LiveRegs(f)
	if n := rl.LiveInCount(f.Entry()); n < 2 {
		t.Errorf("addmul entry live-in = %d, want >= 2 (both parameters used)", n)
	}
}
