package emulator

import (
	"sort"

	"schematic/internal/ir"
)

// regCount returns the refined live-register count of a checkpoint, or
// -1 for a full register-file save.
func regCount(ck *ir.Checkpoint) int {
	if ck.RefinedRegs {
		return ck.LiveRegs
	}
	return -1
}

// saveSet resolves the variables a checkpoint must write to NVM.
func (mc *machine) saveSet(ck *ir.Checkpoint) []*ir.Var {
	if ck.RegsOnly {
		return nil
	}
	var vars []*ir.Var
	if ck.SaveAll {
		for v := range mc.vm {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	} else {
		vars = append(vars, ck.Save...)
	}
	if ck.Lazy {
		// Anticipated saving: only variables written since the last save
		// actually need to reach NVM.
		var dirty []*ir.Var
		for _, v := range vars {
			if mc.dirty[v] {
				dirty = append(dirty, v)
			}
		}
		return dirty
	}
	return vars
}

// restoreSet resolves the variables re-materialized in VM after the sleep
// of a wait-style checkpoint.
func (mc *machine) restoreSet(ck *ir.Checkpoint, saved []*ir.Var) []*ir.Var {
	if ck.RegsOnly {
		return nil
	}
	if ck.SaveAll {
		return saved
	}
	return ck.Restore
}

// execCheckpoint runs a checkpoint instruction. On return the program
// counter has advanced past the checkpoint (or a power failure / verdict
// has redirected control).
func (mc *machine) execCheckpoint(ck *ir.Checkpoint) error {
	fr := mc.top()

	// Conditional checkpointing (Algorithm 1): the iteration counter lives
	// in NVM so it survives power failures; updating it costs one NVM
	// write.
	if ck.Every > 1 {
		if !mc.charge(mc.cfg.Model.NVMWriteEnergy, chComp) {
			mc.powerFailure()
			return nil
		}
		mc.counters[ck.ID]++
		if mc.counters[ck.ID]%int64(ck.Every) != 0 {
			fr.pc++
			mc.bumpProgress()
			return nil
		}
	}

	switch ck.Kind {
	case ir.CkWait:
		mc.ckWait(ck)
	case ir.CkRollback:
		mc.ckRollback(ck)
	case ir.CkTrigger:
		mc.ckTrigger(ck)
	}
	return nil
}

// bumpProgress advances the logical progress index for the checkpoint
// instruction itself.
func (mc *machine) bumpProgress() {
	mc.done++
	if mc.done > mc.furthest {
		mc.furthest = mc.done
	}
}

// addCkCycles accounts the time of checkpoint save/restore work: copying
// data to or from NVM is bandwidth-bound, so its duration is taken as
// proportional to its energy.
func (mc *machine) addCkCycles(e float64) {
	c := int64(e / mc.cfg.Model.EnergyPerCycle)
	mc.res.TotalCycles += c
	mc.res.Cycles += c
	mc.cyclesSincePower += c
}

// ckWait implements the SCHEMATIC/ROCKCLIMB runtime of Fig. 3: save
// volatile data, sleep until the capacitor is full, restore, resume.
func (mc *machine) ckWait(ck *ir.Checkpoint) {
	fr := mc.top()
	saved := mc.saveSet(ck)
	saveCost := mc.cfg.Model.SaveRegsCostFor(regCount(ck))
	for _, v := range saved {
		saveCost += mc.cfg.Model.SaveVarCost(v)
	}
	if !mc.charge(saveCost, chSave) {
		mc.powerFailure()
		return
	}
	mc.addCkCycles(saveCost)
	for _, v := range saved {
		if arr, ok := mc.vm[v]; ok {
			copy(mc.nvm[v], arr)
		}
	}
	mc.res.Saves++
	restores := mc.restoreSet(ck, saved)

	// Snapshot the post-restore state: resume at the next instruction with
	// only the restore set resident in VM.
	fr.pc++
	mc.takeSnapshot(restores, false)
	fr.pc--

	// Deep sleep: replenish; VM content is lost (paper, IV-D: "conservatively
	// assuming that the platform goes into deep sleep and thus VM is lost").
	if mc.cfg.Intermittent {
		mc.capEn = mc.cfg.EB
		mc.cyclesSincePower = 0
		mc.res.Sleeps++
	}
	mc.clearVM()

	restoreCost := mc.cfg.Model.RestoreRegsCostFor(regCount(ck))
	for _, v := range restores {
		restoreCost += mc.cfg.Model.RestoreVarCost(v)
	}
	if !mc.charge(restoreCost, chRestore) {
		mc.powerFailure()
		return
	}
	mc.addCkCycles(restoreCost)
	for _, v := range restores {
		data := make([]int64, v.Elems)
		copy(data, mc.nvm[v])
		if !mc.addVMResident(v, data) {
			return
		}
	}
	fr.pc++
	mc.bumpProgress()
}

// materializeRestore brings the checkpoint's Restore list into VM: the
// boot-time copy of initialized data for VM-working-memory techniques.
// Lazy checkpoints (ALFRED) defer the copy (and its cost) to first access.
func (mc *machine) materializeRestore(ck *ir.Checkpoint) bool {
	for _, v := range ck.Restore {
		if _, ok := mc.vm[v]; ok || mc.pending[v] {
			continue
		}
		if ck.Lazy {
			mc.pending[v] = true
			continue
		}
		if !mc.charge(mc.cfg.Model.RestoreVarCost(v), chRestore) {
			mc.powerFailure()
			return false
		}
		if !mc.addVMResident(v, append([]int64(nil), mc.nvm[v]...)) {
			return false
		}
	}
	return true
}

// ckRollback implements the RATCHET/ALFRED runtime: save and continue.
func (mc *machine) ckRollback(ck *ir.Checkpoint) {
	fr := mc.top()
	if len(ck.Restore) > 0 && !mc.materializeRestore(ck) {
		return
	}
	saved := mc.saveSet(ck)
	saveCost := mc.cfg.Model.SaveRegsCostFor(regCount(ck))
	for _, v := range saved {
		saveCost += mc.cfg.Model.SaveVarCost(v)
	}
	if !mc.charge(saveCost, chSave) {
		mc.powerFailure()
		return
	}
	mc.addCkCycles(saveCost)
	for _, v := range saved {
		if arr, ok := mc.vm[v]; ok {
			copy(mc.nvm[v], arr)
			delete(mc.dirty, v)
		}
	}
	mc.res.Saves++
	fr.pc++
	mc.takeSnapshot(mc.residentVars(), ck.Lazy)
	mc.bumpProgress()
}

// ckTrigger implements the MEMENTOS runtime: measure the remaining energy
// and checkpoint only when it is below the threshold.
func (mc *machine) ckTrigger(ck *ir.Checkpoint) {
	fr := mc.top()
	if len(ck.Restore) > 0 && !mc.materializeRestore(ck) {
		return
	}
	// Voltage measurement cost (ADC read).
	if !mc.charge(mc.cfg.Model.SleepWakeCheck, chSave) {
		mc.powerFailure()
		return
	}
	if mc.cfg.Intermittent && mc.capEn < mc.cfg.TriggerThreshold*mc.cfg.EB {
		saved := mc.residentVars()
		saveCost := mc.cfg.Model.SaveCost(saved)
		if !mc.charge(saveCost, chSave) {
			mc.powerFailure()
			return
		}
		mc.addCkCycles(saveCost)
		for _, v := range saved {
			copy(mc.nvm[v], mc.vm[v])
			delete(mc.dirty, v)
		}
		mc.res.Saves++
		fr.pc++
		mc.takeSnapshot(saved, false)
		mc.bumpProgress()
		return
	}
	fr.pc++
	mc.bumpProgress()
}

func (mc *machine) residentVars() []*ir.Var {
	vars := make([]*ir.Var, 0, len(mc.vm))
	for v := range mc.vm {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	return vars
}

// takeSnapshot records the recovery point: the full volatile state as it
// must look when execution resumes here.
func (mc *machine) takeSnapshot(restores []*ir.Var, lazy bool) {
	sn := &snapshot{
		frames:   make([]frame, len(mc.frames)),
		vm:       make(map[*ir.Var][]int64, len(restores)),
		outLen:   len(mc.out),
		done:     mc.done + 1, // resume after the checkpoint instruction
		lazy:     lazy,
		restores: append([]*ir.Var(nil), restores...),
	}
	for i := range mc.frames {
		f := mc.frames[i]
		f.regs = append([]int64(nil), f.regs...)
		sn.frames[i] = f
	}
	for _, v := range restores {
		if arr, ok := mc.vm[v]; ok {
			sn.vm[v] = append([]int64(nil), arr...)
		} else {
			// Wait-style snapshots record the post-restore view: the NVM
			// copy just written. Pending (lazily deferred) variables also
			// take their NVM value — it is still their source of truth.
			sn.vm[v] = append([]int64(nil), mc.nvm[v]...)
		}
	}
	// Variables whose boot copy is still deferred must survive rollbacks.
	for v := range mc.pending {
		if _, ok := sn.vm[v]; !ok {
			sn.vm[v] = append([]int64(nil), mc.nvm[v]...)
			sn.restores = append(sn.restores, v)
		}
	}
	mc.snap = sn
	if mc.res.PowerFailures > 0 {
		if sn.done > mc.maxSnapDone {
			mc.snapStagnation = 0
		} else {
			mc.snapStagnation++
			if mc.snapStagnation >= 64 {
				mc.close(Stuck)
			}
		}
	}
	if sn.done > mc.maxSnapDone {
		mc.maxSnapDone = sn.done
	}
}

// powerFailure models a supply outage: volatile state is lost, the
// capacitor replenishes while the device is off, and execution resumes from
// the last snapshot (or from scratch when none exists yet).
func (mc *machine) powerFailure() {
	mc.res.PowerFailures++
	if mc.res.PowerFailures > mc.cfg.MaxFailures {
		mc.close(Stuck)
		return
	}
	// Forward-progress watchdog: with a deterministic power model, a
	// trapped execution re-fails without extending the high-water mark.
	if mc.furthest > mc.lastFailFurthest {
		mc.stagnation = 0
	} else {
		mc.stagnation++
		if mc.stagnation >= maxStagnation {
			mc.close(Stuck)
			return
		}
	}
	mc.lastFailFurthest = mc.furthest

	mc.capEn = mc.cfg.EB
	mc.cyclesSincePower = 0
	mc.clearVM()

	if mc.snap == nil {
		// No recovery point yet: cold restart. NVM persists.
		mc.out = mc.out[:0]
		mc.done = 0
		mc.bootFrames()
		return
	}
	sn := mc.snap
	mc.frames = make([]frame, len(sn.frames))
	for i := range sn.frames {
		f := sn.frames[i]
		f.regs = append([]int64(nil), f.regs...)
		mc.frames[i] = f
	}
	mc.out = mc.out[:sn.outLen]
	mc.done = sn.done

	if sn.lazy {
		// Deferred restoration: registers now, variables on first access.
		if !mc.charge(mc.cfg.Model.RestoreRegsCost(), chRestore) {
			mc.powerFailure()
			return
		}
		for v, arr := range sn.vm {
			if !mc.addVMResident(v, append([]int64(nil), arr...)) {
				return
			}
			mc.pending[v] = true
		}
		return
	}
	if !mc.charge(mc.cfg.Model.RestoreCost(sn.restores), chRestore) {
		mc.powerFailure()
		return
	}
	for v, arr := range sn.vm {
		if !mc.addVMResident(v, append([]int64(nil), arr...)) {
			return
		}
	}
}

// close finishes the run with the given verdict.
func (mc *machine) close(v Verdict) {
	mc.res.Verdict = v
	mc.halted = true
}
