package emulator

import (
	"sort"

	"schematic/internal/ir"
)

// regCount returns the refined live-register count of a checkpoint, or
// -1 for a full register-file save.
func regCount(ck *ir.Checkpoint) int {
	if ck.RefinedRegs {
		return ck.LiveRegs
	}
	return -1
}

// saveSet resolves the variables a checkpoint must write to NVM.
func (mc *machine) saveSet(ck *ir.Checkpoint) []*ir.Var {
	if ck.RegsOnly {
		return nil
	}
	var vars []*ir.Var
	if ck.SaveAll {
		for v := range mc.vm {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	} else {
		vars = append(vars, ck.Save...)
	}
	if ck.Lazy {
		// Anticipated saving: only variables written since the last save
		// actually need to reach NVM.
		var dirty []*ir.Var
		for _, v := range vars {
			if mc.dirty[v] {
				dirty = append(dirty, v)
			}
		}
		return dirty
	}
	return vars
}

// restoreSet resolves the variables re-materialized in VM after the sleep
// of a wait-style checkpoint.
func (mc *machine) restoreSet(ck *ir.Checkpoint, saved []*ir.Var) []*ir.Var {
	if ck.RegsOnly {
		return nil
	}
	if ck.SaveAll {
		return saved
	}
	return ck.Restore
}

// execCheckpoint runs a checkpoint instruction. On return the program
// counter has advanced past the checkpoint (or a power failure / verdict
// has redirected control).
func (mc *machine) execCheckpoint(ck *ir.Checkpoint) error {
	fr := mc.top()
	mc.curSite = ck.ID
	defer func() { mc.curSite = -1 }()
	if mc.obs != nil {
		mc.emit(Event{Kind: EvCheckpointHit, Site: ck.ID, Fn: fr.fn, Block: fr.block})
	}

	// Conditional checkpointing (Algorithm 1): the iteration counter lives
	// in NVM so it survives power failures; updating it costs one NVM
	// write.
	if ck.Every > 1 {
		if !mc.charge(mc.cfg.Model.NVMWriteEnergy, chComp) {
			mc.powerFailure()
			return nil
		}
		mc.counters[ck.ID]++
		if mc.counters[ck.ID]%int64(ck.Every) != 0 {
			fr.pc++
			mc.bumpProgress()
			return nil
		}
	}

	switch ck.Kind {
	case ir.CkWait:
		mc.ckWait(ck)
	case ir.CkRollback:
		mc.ckRollback(ck)
	case ir.CkTrigger:
		mc.ckTrigger(ck)
	}
	return nil
}

// bumpProgress advances the logical progress index past one completed
// instruction and closes the re-execution span when it catches the
// previous high-water mark.
func (mc *machine) bumpProgress() {
	mc.done++
	if mc.done > mc.furthest {
		mc.furthest = mc.done
	}
	if mc.inReexec && mc.done >= mc.furthest {
		mc.inReexec = false
		if mc.obs != nil {
			mc.emit(Event{Kind: EvReexecEnd, Site: mc.reexecSite})
		}
	}
}

// startReexec opens a re-execution span when the recovery point lies
// before the previous high-water mark. site is the checkpoint execution
// resumed from (-1 for a cold restart).
func (mc *machine) startReexec(site int) {
	if mc.done >= mc.furthest || mc.inReexec {
		return
	}
	mc.inReexec = true
	mc.reexecSite = site
	if mc.obs != nil {
		mc.emit(Event{Kind: EvReexecStart, Site: site})
	}
}

// checkpointBytes is the data volume of a save/restore operation:
// machine state for the given refined live-register count (-1 = full
// register file) plus the listed variables.
func (mc *machine) checkpointBytes(liveRegs int, vars []*ir.Var) int {
	b := mc.cfg.Model.RegBytesFor(liveRegs)
	for _, v := range vars {
		b += v.SizeBytes()
	}
	return b
}

// addCkCycles accounts the time of checkpoint save/restore work: copying
// data to or from NVM is bandwidth-bound, so its duration is taken as
// proportional to its energy.
func (mc *machine) addCkCycles(e float64) {
	c := int64(e / mc.cfg.Model.EnergyPerCycle)
	mc.res.TotalCycles += c
	mc.res.Cycles += c
	mc.cyclesSincePower += c
}

// ckWait implements the SCHEMATIC/ROCKCLIMB runtime of Fig. 3: save
// volatile data, sleep until the capacitor is full, restore, resume.
func (mc *machine) ckWait(ck *ir.Checkpoint) {
	fr := mc.top()
	saved := mc.saveSet(ck)
	saveCost := mc.cfg.Model.SaveRegsCostFor(regCount(ck))
	for _, v := range saved {
		saveCost += mc.cfg.Model.SaveVarCost(v)
	}
	mc.res.SaveAttempts++
	if mc.probeSave(PointBeforeSave, ck.ID) {
		mc.powerFailure()
		return
	}
	if !mc.charge(saveCost, chSave) {
		mc.powerFailure()
		return
	}
	if mc.probeSave(PointMidSave, ck.ID) {
		// Torn checkpoint: the save energy is spent but the partial NVM
		// write never becomes a recovery point — nothing reaches NVM, no
		// snapshot is taken, the previous recovery point stays in force.
		mc.powerFailure()
		return
	}
	if mc.obs != nil {
		mc.emit(Event{Kind: EvSave, Site: ck.ID, Energy: saveCost,
			Bytes: mc.checkpointBytes(regCount(ck), saved), Fn: fr.fn, Block: fr.block})
	}
	mc.addCkCycles(saveCost)
	for _, v := range saved {
		if arr, ok := mc.vm[v]; ok {
			copy(mc.nvm[v], arr)
		}
	}
	mc.res.Saves++
	restores := mc.restoreSet(ck, saved)

	// Snapshot the post-restore state: resume at the next instruction with
	// only the restore set resident in VM.
	fr.pc++
	mc.takeSnapshot(restores, false, ck.ID)
	fr.pc--
	if !mc.halted && mc.probeSave(PointAfterSave, ck.ID) {
		mc.powerFailure()
		return
	}

	// Deep sleep: replenish; VM content is lost (paper, IV-D: "conservatively
	// assuming that the platform goes into deep sleep and thus VM is lost").
	if mc.cfg.Intermittent {
		if mc.obs != nil {
			mc.emit(Event{Kind: EvSleepStart, Site: ck.ID, CapEnergy: mc.capEn})
		}
		mc.capEn = mc.cfg.EB
		mc.cyclesSincePower = 0
		mc.res.Sleeps++
		if mc.obs != nil {
			mc.emit(Event{Kind: EvSleepEnd, Site: ck.ID, CapEnergy: mc.capEn})
		}
	}
	mc.clearVM()

	restoreCost := mc.cfg.Model.RestoreRegsCostFor(regCount(ck))
	for _, v := range restores {
		restoreCost += mc.cfg.Model.RestoreVarCost(v)
	}
	if !mc.charge(restoreCost, chRestore) {
		mc.powerFailure()
		return
	}
	mc.res.Restores++
	if mc.obs != nil {
		mc.emit(Event{Kind: EvRestore, Site: ck.ID, Energy: restoreCost,
			Bytes: mc.checkpointBytes(regCount(ck), restores), Fn: fr.fn, Block: fr.block})
	}
	mc.addCkCycles(restoreCost)
	for _, v := range restores {
		data := make([]int64, v.Elems)
		copy(data, mc.nvm[v])
		if !mc.addVMResident(v, data) {
			return
		}
	}
	fr.pc++
	mc.bumpProgress()
}

// materializeRestore brings the checkpoint's Restore list into VM: the
// boot-time copy of initialized data for VM-working-memory techniques.
// Lazy checkpoints (ALFRED) defer the copy (and its cost) to first access.
func (mc *machine) materializeRestore(ck *ir.Checkpoint) bool {
	for _, v := range ck.Restore {
		if _, ok := mc.vm[v]; ok || mc.pending[v] {
			continue
		}
		if ck.Lazy {
			mc.pending[v] = true
			continue
		}
		if !mc.charge(mc.cfg.Model.RestoreVarCost(v), chRestore) {
			mc.powerFailure()
			return false
		}
		if !mc.addVMResident(v, append([]int64(nil), mc.nvm[v]...)) {
			return false
		}
	}
	return true
}

// ckRollback implements the RATCHET/ALFRED runtime: save and continue.
func (mc *machine) ckRollback(ck *ir.Checkpoint) {
	fr := mc.top()
	if len(ck.Restore) > 0 && !mc.materializeRestore(ck) {
		return
	}
	saved := mc.saveSet(ck)
	saveCost := mc.cfg.Model.SaveRegsCostFor(regCount(ck))
	for _, v := range saved {
		saveCost += mc.cfg.Model.SaveVarCost(v)
	}
	mc.res.SaveAttempts++
	if mc.probeSave(PointBeforeSave, ck.ID) {
		mc.powerFailure()
		return
	}
	if !mc.charge(saveCost, chSave) {
		mc.powerFailure()
		return
	}
	if mc.probeSave(PointMidSave, ck.ID) {
		// Torn checkpoint: energy spent, nothing committed (see ckWait).
		mc.powerFailure()
		return
	}
	if mc.obs != nil {
		mc.emit(Event{Kind: EvSave, Site: ck.ID, Energy: saveCost,
			Bytes: mc.checkpointBytes(regCount(ck), saved), Fn: fr.fn, Block: fr.block})
	}
	mc.addCkCycles(saveCost)
	for _, v := range saved {
		if arr, ok := mc.vm[v]; ok {
			copy(mc.nvm[v], arr)
			delete(mc.dirty, v)
		}
	}
	mc.res.Saves++
	fr.pc++
	mc.takeSnapshot(mc.residentVars(), ck.Lazy, ck.ID)
	if !mc.halted && mc.probeSave(PointAfterSave, ck.ID) {
		mc.powerFailure()
		return
	}
	mc.bumpProgress()
}

// ckTrigger implements the MEMENTOS runtime: measure the remaining energy
// and checkpoint only when it is below the threshold.
func (mc *machine) ckTrigger(ck *ir.Checkpoint) {
	fr := mc.top()
	if len(ck.Restore) > 0 && !mc.materializeRestore(ck) {
		return
	}
	// Voltage measurement cost (ADC read).
	if !mc.charge(mc.cfg.Model.SleepWakeCheck, chSave) {
		mc.powerFailure()
		return
	}
	if mc.cfg.Intermittent && mc.capEn < mc.cfg.TriggerThreshold*mc.cfg.EB {
		saved := mc.residentVars()
		saveCost := mc.cfg.Model.SaveCost(saved)
		mc.res.SaveAttempts++
		if mc.probeSave(PointBeforeSave, ck.ID) {
			mc.powerFailure()
			return
		}
		if !mc.charge(saveCost, chSave) {
			mc.powerFailure()
			return
		}
		if mc.probeSave(PointMidSave, ck.ID) {
			// Torn checkpoint: energy spent, nothing committed (see ckWait).
			mc.powerFailure()
			return
		}
		if mc.obs != nil {
			mc.emit(Event{Kind: EvSave, Site: ck.ID, Energy: saveCost,
				Bytes: mc.checkpointBytes(-1, saved), Fn: fr.fn, Block: fr.block})
		}
		mc.addCkCycles(saveCost)
		for _, v := range saved {
			copy(mc.nvm[v], mc.vm[v])
			delete(mc.dirty, v)
		}
		mc.res.Saves++
		fr.pc++
		mc.takeSnapshot(saved, false, ck.ID)
		if !mc.halted && mc.probeSave(PointAfterSave, ck.ID) {
			mc.powerFailure()
			return
		}
		mc.bumpProgress()
		return
	}
	fr.pc++
	mc.bumpProgress()
}

func (mc *machine) residentVars() []*ir.Var {
	vars := make([]*ir.Var, 0, len(mc.vm))
	for v := range mc.vm {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	return vars
}

// takeSnapshot records the recovery point: the full volatile state as it
// must look when execution resumes here. site is the checkpoint that
// takes it; post-failure restore and re-execution energy is attributed
// to it.
func (mc *machine) takeSnapshot(restores []*ir.Var, lazy bool, site int) {
	sn := &snapshot{
		frames:   make([]frame, len(mc.frames)),
		vm:       make(map[*ir.Var][]int64, len(restores)),
		outLen:   len(mc.out),
		done:     mc.done + 1, // resume after the checkpoint instruction
		lazy:     lazy,
		site:     site,
		restores: append([]*ir.Var(nil), restores...),
	}
	for i := range mc.frames {
		f := mc.frames[i]
		f.regs = append([]int64(nil), f.regs...)
		sn.frames[i] = f
	}
	for _, v := range restores {
		if arr, ok := mc.vm[v]; ok {
			sn.vm[v] = append([]int64(nil), arr...)
		} else {
			// Wait-style snapshots record the post-restore view: the NVM
			// copy just written. Pending (lazily deferred) variables also
			// take their NVM value — it is still their source of truth.
			sn.vm[v] = append([]int64(nil), mc.nvm[v]...)
		}
	}
	// Variables whose boot copy is still deferred must survive rollbacks.
	for v := range mc.pending {
		if _, ok := sn.vm[v]; !ok {
			sn.vm[v] = append([]int64(nil), mc.nvm[v]...)
			sn.restores = append(sn.restores, v)
		}
	}
	mc.snap = sn
	if mc.res.PowerFailures > 0 {
		if sn.done > mc.maxSnapDone {
			mc.snapStagnation = 0
		} else {
			mc.snapStagnation++
			if mc.snapStagnation >= 64 {
				mc.close(Stuck)
			}
		}
	}
	if sn.done > mc.maxSnapDone {
		mc.maxSnapDone = sn.done
	}
}

// powerFailure models a supply outage: volatile state is lost, the
// capacitor replenishes while the device is off, and execution resumes from
// the last snapshot (or from scratch when none exists yet).
func (mc *machine) powerFailure() {
	// The failure aborts whatever checkpoint was executing; recovery work
	// below is attributed to the snapshot's site, not the aborted one.
	mc.curSite = -1
	mc.res.PowerFailures++
	if mc.obs != nil {
		ev := Event{Kind: EvPowerFailure, CapEnergy: mc.capEn, Site: -1}
		if mc.snap != nil {
			ev.Site = mc.snap.site
		}
		if len(mc.frames) > 0 {
			fr := mc.top()
			ev.Fn, ev.Block = fr.fn, fr.block
		}
		mc.emit(ev)
	}
	// A failure mid-re-execution truncates the open span; recovery below
	// opens a fresh one.
	if mc.inReexec {
		mc.inReexec = false
		if mc.obs != nil {
			mc.emit(Event{Kind: EvReexecEnd, Site: mc.reexecSite})
		}
	}
	if mc.res.PowerFailures > mc.cfg.MaxFailures {
		mc.close(OutOfFailures)
		return
	}
	// Forward-progress watchdog: with a deterministic power model, a
	// trapped execution re-fails without extending the high-water mark.
	if mc.furthest > mc.lastFailFurthest {
		mc.stagnation = 0
	} else {
		mc.stagnation++
		if mc.stagnation >= maxStagnation {
			mc.close(Stuck)
			return
		}
	}
	mc.lastFailFurthest = mc.furthest

	mc.capEn = mc.cfg.EB
	mc.cyclesSincePower = 0
	mc.clearVM()

	if mc.snap == nil {
		// No recovery point yet: cold restart. NVM persists.
		mc.out = mc.out[:0]
		mc.done = 0
		mc.bootFrames()
		mc.startReexec(-1)
		return
	}
	sn := mc.snap
	mc.frames = make([]frame, len(sn.frames))
	for i := range sn.frames {
		f := sn.frames[i]
		f.regs = append([]int64(nil), f.regs...)
		mc.frames[i] = f
	}
	mc.out = mc.out[:sn.outLen]
	mc.done = sn.done
	if mc.obs != nil {
		// Replay the restored call stack so observers can mirror it; the
		// legacy Trace adapter skips these Resume entries (it never fired
		// on snapshot restores).
		for i := range mc.frames {
			mc.emit(Event{Kind: EvBlockEnter, Fn: mc.frames[i].fn,
				Block: mc.frames[i].block, Call: true, Resume: true})
		}
	}

	if sn.lazy {
		// Deferred restoration: registers now, variables on first access.
		regCost := mc.cfg.Model.RestoreRegsCost()
		if !mc.charge(regCost, chRestore) {
			mc.powerFailure()
			return
		}
		mc.res.Restores++
		if mc.obs != nil {
			mc.emit(Event{Kind: EvRestore, Site: sn.site, Energy: regCost,
				Bytes: mc.checkpointBytes(-1, nil)})
		}
		for v, arr := range sn.vm {
			if !mc.addVMResident(v, append([]int64(nil), arr...)) {
				return
			}
			mc.pending[v] = true
		}
		mc.startReexec(sn.site)
		return
	}
	restoreCost := mc.cfg.Model.RestoreCost(sn.restores)
	if !mc.charge(restoreCost, chRestore) {
		mc.powerFailure()
		return
	}
	mc.res.Restores++
	if mc.obs != nil {
		mc.emit(Event{Kind: EvRestore, Site: sn.site, Energy: restoreCost,
			Bytes: mc.checkpointBytes(-1, sn.restores)})
	}
	for v, arr := range sn.vm {
		if !mc.addVMResident(v, append([]int64(nil), arr...)) {
			return
		}
	}
	mc.startReexec(sn.site)
}

// close finishes the run with the given verdict.
func (mc *machine) close(v Verdict) {
	mc.res.Verdict = v
	mc.halted = true
}
