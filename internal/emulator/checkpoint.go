package emulator

import (
	"schematic/internal/ir"
)

// regCount returns the refined live-register count of a checkpoint, or
// -1 for a full register-file save.
func regCount(ck *ir.Checkpoint) int {
	if ck.RefinedRegs {
		return ck.LiveRegs
	}
	return -1
}

// saveSet resolves the slots a checkpoint must write to NVM. SaveAll
// enumerates VM residents in the program's name order — a total order
// even across duplicate local names, so the float summation order of
// the save cost (and everything downstream of it) is deterministic. The
// returned slice is backed by slotScratch1 and valid until the next
// saveSet call.
func (mc *machine) saveSet(ck *ir.Checkpoint) []int32 {
	if ck.RegsOnly {
		return nil
	}
	slots := mc.slotScratch1[:0]
	if ck.SaveAll {
		for _, slot := range mc.prog.NameOrder {
			if mc.vm[slot] != nil {
				slots = append(slots, slot)
			}
		}
	} else {
		for _, v := range ck.Save {
			slots = append(slots, mc.slot(v))
		}
	}
	mc.slotScratch1 = slots
	if ck.Lazy {
		// Anticipated saving: only variables written since the last save
		// actually need to reach NVM (order-preserving in-place filter).
		k := 0
		for _, slot := range slots {
			if mc.dirty[slot] {
				slots[k] = slot
				k++
			}
		}
		return slots[:k]
	}
	return slots
}

// restoreSet resolves the slots re-materialized in VM after the sleep of
// a wait-style checkpoint. The result aliases saved (SaveAll) or
// slotScratch2.
func (mc *machine) restoreSet(ck *ir.Checkpoint, saved []int32) []int32 {
	if ck.RegsOnly {
		return nil
	}
	if ck.SaveAll {
		return saved
	}
	slots := mc.slotScratch2[:0]
	for _, v := range ck.Restore {
		slots = append(slots, mc.slot(v))
	}
	mc.slotScratch2 = slots
	return slots
}

// execCheckpoint runs a checkpoint instruction. On return the program
// counter has advanced past the checkpoint (or a power failure / verdict
// has redirected control).
func (mc *machine) execCheckpoint(ck *ir.Checkpoint) error {
	fr := mc.top()
	mc.curSite = ck.ID
	defer func() { mc.curSite = -1 }()
	if mc.obs != nil {
		mc.emit(Event{Kind: EvCheckpointHit, Site: ck.ID, Fn: fr.fn, Block: fr.block})
	}

	// Conditional checkpointing (Algorithm 1): the iteration counter lives
	// in NVM so it survives power failures; updating it costs one NVM
	// write.
	if ck.Every > 1 {
		if !mc.charge(mc.cfg.Model.NVMWriteEnergy, chComp) {
			mc.powerFailure()
			return nil
		}
		if mc.bumpCounter(ck.ID)%int64(ck.Every) != 0 {
			fr.pc++
			mc.bumpProgress()
			return nil
		}
	}

	switch ck.Kind {
	case ir.CkWait:
		mc.ckWait(ck)
	case ir.CkRollback:
		mc.ckRollback(ck)
	case ir.CkTrigger:
		mc.ckTrigger(ck)
	}
	return nil
}

// bumpProgress advances the logical progress index past one completed
// instruction and closes the re-execution span when it catches the
// previous high-water mark.
func (mc *machine) bumpProgress() {
	mc.done++
	if mc.done > mc.furthest {
		mc.furthest = mc.done
	}
	if mc.inReexec && mc.done >= mc.furthest {
		mc.inReexec = false
		if mc.obs != nil {
			mc.emit(Event{Kind: EvReexecEnd, Site: mc.reexecSite})
		}
	}
}

// startReexec opens a re-execution span when the recovery point lies
// before the previous high-water mark. site is the checkpoint execution
// resumed from (-1 for a cold restart).
func (mc *machine) startReexec(site int) {
	if mc.done >= mc.furthest || mc.inReexec {
		return
	}
	mc.inReexec = true
	mc.reexecSite = site
	if mc.obs != nil {
		mc.emit(Event{Kind: EvReexecStart, Site: site})
	}
}

// checkpointBytes is the data volume of a save/restore operation:
// machine state for the given refined live-register count (-1 = full
// register file) plus the variables in the listed slots.
func (mc *machine) checkpointBytes(liveRegs int, slots []int32) int {
	b := mc.cfg.Model.RegBytesFor(liveRegs)
	for _, slot := range slots {
		b += mc.prog.Vars[slot].SizeBytes()
	}
	return b
}

// saveVarsCost accumulates the save cost of the variables in slots onto
// base, adding in slice order — the same sequential accumulation
// Model.SaveCost performs on a var list, so the float result is
// bit-identical to it.
func (mc *machine) saveVarsCost(base float64, slots []int32) float64 {
	for _, slot := range slots {
		base += mc.cfg.Model.SaveVarCost(mc.prog.Vars[slot])
	}
	return base
}

// restoreVarsCost is the restore-side counterpart of saveVarsCost.
func (mc *machine) restoreVarsCost(base float64, slots []int32) float64 {
	for _, slot := range slots {
		base += mc.cfg.Model.RestoreVarCost(mc.prog.Vars[slot])
	}
	return base
}

// addCkCycles accounts the time of checkpoint save/restore work: copying
// data to or from NVM is bandwidth-bound, so its duration is taken as
// proportional to its energy.
func (mc *machine) addCkCycles(e float64) {
	c := int64(e / mc.cfg.Model.EnergyPerCycle)
	mc.res.TotalCycles += c
	mc.res.Cycles += c
	mc.cyclesSincePower += c
}

// ckWait implements the SCHEMATIC/ROCKCLIMB runtime of Fig. 3: save
// volatile data, sleep until the capacitor is full, restore, resume.
func (mc *machine) ckWait(ck *ir.Checkpoint) {
	fr := mc.top()
	saved := mc.saveSet(ck)
	saveCost := mc.saveVarsCost(mc.cfg.Model.SaveRegsCostFor(regCount(ck)), saved)
	mc.res.SaveAttempts++
	if mc.probeSave(PointBeforeSave, ck.ID) {
		mc.powerFailure()
		return
	}
	if !mc.charge(saveCost, chSave) {
		mc.powerFailure()
		return
	}
	if mc.probeSave(PointMidSave, ck.ID) {
		// Torn checkpoint: the save energy is spent but the partial NVM
		// write never becomes a recovery point — nothing reaches NVM, no
		// snapshot is taken, the previous recovery point stays in force.
		mc.powerFailure()
		return
	}
	if mc.obs != nil {
		mc.emit(Event{Kind: EvSave, Site: ck.ID, Energy: saveCost,
			Bytes: mc.checkpointBytes(regCount(ck), saved), Fn: fr.fn, Block: fr.block})
	}
	mc.addCkCycles(saveCost)
	for _, slot := range saved {
		if arr := mc.vm[slot]; arr != nil {
			mc.commitSlot(slot, arr)
		}
	}
	mc.res.Saves++
	restores := mc.restoreSet(ck, saved)

	// Snapshot the post-restore state: resume at the next instruction with
	// only the restore set resident in VM.
	fr.pc++
	mc.takeSnapshot(restores, false, ck.ID)
	fr.pc--
	if !mc.halted && mc.probeSave(PointAfterSave, ck.ID) {
		mc.powerFailure()
		return
	}

	// Deep sleep: replenish; VM content is lost (paper, IV-D: "conservatively
	// assuming that the platform goes into deep sleep and thus VM is lost").
	if mc.cfg.Intermittent {
		if mc.obs != nil {
			mc.emit(Event{Kind: EvSleepStart, Site: ck.ID, CapEnergy: mc.capEn})
		}
		mc.capEn = mc.cfg.EB
		mc.cyclesSincePower = 0
		mc.res.Sleeps++
		if mc.obs != nil {
			mc.emit(Event{Kind: EvSleepEnd, Site: ck.ID, CapEnergy: mc.capEn})
		}
	}
	mc.clearVM()

	restoreCost := mc.restoreVarsCost(mc.cfg.Model.RestoreRegsCostFor(regCount(ck)), restores)
	if !mc.charge(restoreCost, chRestore) {
		mc.powerFailure()
		return
	}
	mc.res.Restores++
	if mc.obs != nil {
		mc.emit(Event{Kind: EvRestore, Site: ck.ID, Energy: restoreCost,
			Bytes: mc.checkpointBytes(regCount(ck), restores), Fn: fr.fn, Block: fr.block})
	}
	mc.addCkCycles(restoreCost)
	for _, slot := range restores {
		if !mc.addVMResident(slot, mc.vmCopy(slot, mc.nvm[slot])) {
			return
		}
	}
	fr.pc++
	mc.bumpProgress()
}

// materializeRestore brings the checkpoint's Restore list into VM: the
// boot-time copy of initialized data for VM-working-memory techniques.
// Lazy checkpoints (ALFRED) defer the copy (and its cost) to first access.
func (mc *machine) materializeRestore(ck *ir.Checkpoint) bool {
	for _, v := range ck.Restore {
		slot := mc.slot(v)
		if mc.vm[slot] != nil || mc.pending[slot] {
			continue
		}
		if ck.Lazy {
			mc.pending[slot] = true
			continue
		}
		if !mc.charge(mc.cfg.Model.RestoreVarCost(v), chRestore) {
			mc.powerFailure()
			return false
		}
		if !mc.addVMResident(slot, mc.vmCopy(slot, mc.nvm[slot])) {
			return false
		}
	}
	return true
}

// ckRollback implements the RATCHET/ALFRED runtime: save and continue.
func (mc *machine) ckRollback(ck *ir.Checkpoint) {
	fr := mc.top()
	if len(ck.Restore) > 0 && !mc.materializeRestore(ck) {
		return
	}
	saved := mc.saveSet(ck)
	saveCost := mc.saveVarsCost(mc.cfg.Model.SaveRegsCostFor(regCount(ck)), saved)
	mc.res.SaveAttempts++
	if mc.probeSave(PointBeforeSave, ck.ID) {
		mc.powerFailure()
		return
	}
	if !mc.charge(saveCost, chSave) {
		mc.powerFailure()
		return
	}
	if mc.probeSave(PointMidSave, ck.ID) {
		// Torn checkpoint: energy spent, nothing committed (see ckWait).
		mc.powerFailure()
		return
	}
	if mc.obs != nil {
		mc.emit(Event{Kind: EvSave, Site: ck.ID, Energy: saveCost,
			Bytes: mc.checkpointBytes(regCount(ck), saved), Fn: fr.fn, Block: fr.block})
	}
	mc.addCkCycles(saveCost)
	for _, slot := range saved {
		if arr := mc.vm[slot]; arr != nil {
			mc.commitSlot(slot, arr)
			mc.dirty[slot] = false
		}
	}
	mc.res.Saves++
	fr.pc++
	mc.takeSnapshot(mc.residentSlots(), ck.Lazy, ck.ID)
	if !mc.halted && mc.probeSave(PointAfterSave, ck.ID) {
		mc.powerFailure()
		return
	}
	mc.bumpProgress()
}

// ckTrigger implements the MEMENTOS runtime: measure the remaining energy
// and checkpoint only when it is below the threshold.
func (mc *machine) ckTrigger(ck *ir.Checkpoint) {
	fr := mc.top()
	if len(ck.Restore) > 0 && !mc.materializeRestore(ck) {
		return
	}
	// Voltage measurement cost (ADC read).
	if !mc.charge(mc.cfg.Model.SleepWakeCheck, chSave) {
		mc.powerFailure()
		return
	}
	if mc.cfg.Intermittent && mc.capEn < mc.cfg.TriggerThreshold*mc.cfg.EB {
		saved := mc.residentSlots()
		saveCost := mc.saveVarsCost(mc.cfg.Model.SaveRegsCost(), saved)
		mc.res.SaveAttempts++
		if mc.probeSave(PointBeforeSave, ck.ID) {
			mc.powerFailure()
			return
		}
		if !mc.charge(saveCost, chSave) {
			mc.powerFailure()
			return
		}
		if mc.probeSave(PointMidSave, ck.ID) {
			// Torn checkpoint: energy spent, nothing committed (see ckWait).
			mc.powerFailure()
			return
		}
		if mc.obs != nil {
			mc.emit(Event{Kind: EvSave, Site: ck.ID, Energy: saveCost,
				Bytes: mc.checkpointBytes(-1, saved), Fn: fr.fn, Block: fr.block})
		}
		mc.addCkCycles(saveCost)
		for _, slot := range saved {
			mc.commitSlot(slot, mc.vm[slot])
			mc.dirty[slot] = false
		}
		mc.res.Saves++
		fr.pc++
		mc.takeSnapshot(saved, false, ck.ID)
		if !mc.halted && mc.probeSave(PointAfterSave, ck.ID) {
			mc.powerFailure()
			return
		}
		mc.bumpProgress()
		return
	}
	fr.pc++
	mc.bumpProgress()
}

// residentSlots lists the VM-resident slots in the program's name order
// — the same total order saveSet uses, so save and restore costs sum in
// one deterministic sequence. The returned slice is backed by
// slotScratch2 and valid until the next residentSlots/restoreSet call.
func (mc *machine) residentSlots() []int32 {
	slots := mc.slotScratch2[:0]
	for _, slot := range mc.prog.NameOrder {
		if mc.vm[slot] != nil {
			slots = append(slots, slot)
		}
	}
	mc.slotScratch2 = slots
	return slots
}

// takeSnapshot records the recovery point: the full volatile state as it
// must look when execution resumes here. site is the checkpoint that
// takes it; post-failure restore and re-execution energy is attributed
// to it. The VM image is stored slot-by-slot in first-appearance order
// of the restore list — rollback replays it in exactly this order, so
// restore charging and VM residency growth are deterministic.
func (mc *machine) takeSnapshot(restores []int32, lazy bool, site int) {
	// Recycle the retired recovery point's buffers (ping-pong with
	// mc.snap). Its storage is dead: restores deep-copy out of a
	// snapshot, so nothing alive aliases it once a newer one replaces it.
	sn := mc.spareSnap
	mc.spareSnap = nil
	if sn == nil {
		sn = &snapshot{}
	}
	oldFrames := sn.frames
	oldData := sn.vmData
	*sn = snapshot{
		frames:   oldFrames[:0],
		vmSlots:  sn.vmSlots[:0],
		vmData:   oldData[:0],
		outLen:   len(mc.out),
		done:     mc.done + 1, // resume after the checkpoint instruction
		lazy:     lazy,
		site:     site,
		restores: append(sn.restores[:0], restores...),
	}
	for i := range mc.frames {
		f := mc.frames[i]
		var regs []int64
		if i < len(oldFrames) && cap(oldFrames[i].regs) >= len(f.regs) {
			regs = oldFrames[i].regs[:len(f.regs)]
		} else {
			regs = make([]int64, len(f.regs))
		}
		copy(regs, f.regs)
		f.regs = regs
		sn.frames = append(sn.frames, f)
	}
	record := func(slot int32) {
		if mc.seen[slot] {
			return
		}
		mc.seen[slot] = true
		src := mc.vm[slot]
		if src == nil {
			// Wait-style snapshots record the post-restore view: the NVM
			// copy just written. Pending (lazily deferred) variables also
			// take their NVM value — it is still their source of truth.
			src = mc.nvm[slot]
		}
		// Reuse the retired snapshot's buffer at the same position; the
		// slot sequence is usually identical save to save, so sizes match.
		j := len(sn.vmSlots)
		var buf []int64
		if j < len(oldData) && cap(oldData[j]) >= len(src) {
			buf = oldData[j][:len(src)]
		} else {
			buf = make([]int64, len(src))
		}
		copy(buf, src)
		sn.vmSlots = append(sn.vmSlots, slot)
		sn.vmData = append(sn.vmData, buf)
	}
	for _, slot := range restores {
		record(slot)
	}
	// Variables whose boot copy is still deferred must survive rollbacks;
	// visited in name order so the extra restore charges sum identically
	// run to run.
	for _, slot := range mc.prog.NameOrder {
		if mc.pending[slot] && !mc.seen[slot] {
			record(slot)
			sn.restores = append(sn.restores, slot)
		}
	}
	for _, slot := range sn.vmSlots {
		mc.seen[slot] = false
	}
	mc.spareSnap = mc.snap
	mc.snap = sn
	if mc.track {
		mc.refreshSnapLane()
	}
	if mc.res.PowerFailures > 0 {
		if sn.done > mc.maxSnapDone {
			mc.snapStagnation = 0
		} else {
			mc.snapStagnation++
			if mc.snapStagnation >= 64 {
				mc.close(Stuck)
			}
		}
	}
	if sn.done > mc.maxSnapDone {
		mc.maxSnapDone = sn.done
	}
}

// powerFailure models a supply outage: volatile state is lost, the
// capacitor replenishes while the device is off, and execution resumes from
// the last snapshot (or from scratch when none exists yet).
func (mc *machine) powerFailure() {
	// The failure aborts whatever checkpoint was executing; recovery work
	// below is attributed to the snapshot's site, not the aborted one.
	mc.curSite = -1
	mc.res.PowerFailures++
	if mc.obs != nil {
		ev := Event{Kind: EvPowerFailure, CapEnergy: mc.capEn, Site: -1}
		if mc.snap != nil {
			ev.Site = mc.snap.site
		}
		if len(mc.frames) > 0 {
			fr := mc.top()
			ev.Fn, ev.Block = fr.fn, fr.block
		}
		mc.emit(ev)
	}
	// A failure mid-re-execution truncates the open span; recovery below
	// opens a fresh one.
	if mc.inReexec {
		mc.inReexec = false
		if mc.obs != nil {
			mc.emit(Event{Kind: EvReexecEnd, Site: mc.reexecSite})
		}
	}
	if mc.res.PowerFailures > mc.cfg.MaxFailures {
		mc.close(OutOfFailures)
		return
	}
	// Forward-progress watchdog: with a deterministic power model, a
	// trapped execution re-fails without extending the high-water mark.
	if mc.furthest > mc.lastFailFurthest {
		mc.stagnation = 0
	} else {
		mc.stagnation++
		if mc.stagnation >= maxStagnation {
			mc.close(Stuck)
			return
		}
	}
	mc.lastFailFurthest = mc.furthest

	mc.capEn = mc.cfg.EB
	mc.cyclesSincePower = 0
	mc.clearVM()

	if mc.snap == nil {
		// No recovery point yet: cold restart. NVM persists.
		mc.out = mc.out[:0]
		mc.done = 0
		mc.bootFrames()
		mc.startReexec(-1)
		return
	}
	mc.restoreSnap()
}

// restoreSnap performs the recovery boot from the committed snapshot:
// rebuild the call stack and committed output, charge the restore, and
// re-materialize the restore set. It is the shared tail of powerFailure
// and of booting a run from Config.Resume — both paths must stay
// bit-identical (same float summation order, same VM residency growth).
func (mc *machine) restoreSnap() {
	sn := mc.snap
	// The dying frames' register arrays go back to the pool (snapshots
	// hold their own deep copies, so nothing aliases them), and the
	// restored stack rebuilds in place.
	for i := range mc.frames {
		mc.regPool = append(mc.regPool, mc.frames[i].regs)
	}
	mc.frames = mc.frames[:0]
	for i := range sn.frames {
		f := sn.frames[i]
		regs := mc.newRegs(len(f.regs))
		copy(regs, f.regs)
		f.regs = regs
		mc.frames = append(mc.frames, f)
	}
	mc.out = mc.out[:sn.outLen]
	mc.done = sn.done
	if mc.obs != nil {
		// Replay the restored call stack so observers can mirror it; the
		// legacy Trace adapter skips these Resume entries (it never fired
		// on snapshot restores).
		for i := range mc.frames {
			mc.emit(Event{Kind: EvBlockEnter, Fn: mc.frames[i].fn,
				Block: mc.frames[i].block, Call: true, Resume: true})
		}
	}

	if sn.lazy {
		// Deferred restoration: registers now, variables on first access.
		regCost := mc.cfg.Model.RestoreRegsCost()
		if !mc.charge(regCost, chRestore) {
			mc.powerFailure()
			return
		}
		mc.res.Restores++
		if mc.obs != nil {
			mc.emit(Event{Kind: EvRestore, Site: sn.site, Energy: regCost,
				Bytes: mc.checkpointBytes(-1, nil)})
		}
		for i, slot := range sn.vmSlots {
			if !mc.addVMResident(slot, mc.vmCopy(slot, sn.vmData[i])) {
				return
			}
			mc.pending[slot] = true
		}
		mc.startReexec(sn.site)
		return
	}
	restoreCost := mc.restoreVarsCost(mc.cfg.Model.RestoreRegsCost(), sn.restores)
	if !mc.charge(restoreCost, chRestore) {
		mc.powerFailure()
		return
	}
	mc.res.Restores++
	if mc.obs != nil {
		mc.emit(Event{Kind: EvRestore, Site: sn.site, Energy: restoreCost,
			Bytes: mc.checkpointBytes(-1, sn.restores)})
	}
	for i, slot := range sn.vmSlots {
		if !mc.addVMResident(slot, mc.vmCopy(slot, sn.vmData[i])) {
			return
		}
	}
	mc.startReexec(sn.site)
}

// close finishes the run with the given verdict.
func (mc *machine) close(v Verdict) {
	mc.res.Verdict = v
	mc.halted = true
}
