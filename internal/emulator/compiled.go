package emulator

import (
	"errors"
	"fmt"

	"schematic/internal/emulator/dispatch"
	"schematic/internal/ir"
)

// runSafety is the capacitor margin (nJ) required to charge a whole
// straight-line run in one decision. The run's precomputed total is
// summed in a different order than the sequential per-instruction
// subtractions, so the two can differ by float rounding; the margin
// dwarfs any such difference. When the capacitor is within the margin of
// the run's cost — i.e. a power failure could plausibly land inside the
// batch — the machine falls back to per-instruction decisions, which
// resolve the failure point bit-identically to the reference
// interpreter.
const runSafety = 1e-3

// runCompiled drives the machine over the precompiled program. It is
// observably identical to runInterpreted: same verdicts, outputs, energy
// ledgers, counters, and error text. Two grades of execution:
//
//   - fastLoop: when no observer needs per-instruction events and no
//     schedule can fire between instructions (both per-run constants),
//     the whole dispatch — accounting, arithmetic, memory access, control
//     flow — runs inline, and straight-line runs charge on one
//     precomputed capacitor-margin decision. Ledger sums stay
//     per-instruction, so float results remain bit-identical.
//   - steppedLoop: the exact mirror of the interpreter's step(), on
//     precomputed costs and resolved operands, for observed or scheduled
//     runs.
//
// This gate is also what keeps batched energy accounting sound under
// external power models: any non-nil Config.Schedule — including
// harvested-capacitor schedules and trace replays (internal/harvest),
// whose Fail decisions depend on seeing every probe — forces
// steppedLoop's per-instruction accounting for the whole run. There is
// no "safe no-fire window" to negotiate per schedule; scheduled runs
// simply never batch. The dispatch-equivalence suite (internal/bench)
// pins this with harvested members.
func (mc *machine) runCompiled() (*Result, error) {
	var finished bool
	var err error
	if mc.obs == nil && mc.sched == nil {
		finished, err = mc.fastLoop()
	} else {
		finished, err = mc.steppedLoop()
	}
	if err != nil {
		return nil, err
	}
	if finished {
		mc.res.Verdict = Completed
	}
	mc.res.Output = mc.out
	return &mc.res, nil
}

// fastLoop is the unobserved, unscheduled engine: the only possible
// interrupts are capacitor exhaustion, checkpoints, arithmetic traps,
// and the step limit, all of which it detects inline. It returns true
// when main returned.
//
// The current frame and its compiled block are hoisted into locals;
// every event that can change them (calls, returns, branches,
// checkpoints, power failures, VM materialization) resynchronizes. The
// halted flag is likewise only checked after the calls that can set it.
func (mc *machine) fastLoop() (bool, error) {
	fr := mc.top()
	code := fr.cb.Code
	runs := fr.cb.Runs
	for {
		if mc.res.Steps >= mc.cfg.MaxSteps {
			mc.close(OutOfSteps)
			return false, nil
		}
		pc := fr.pc
		if pc >= len(code) {
			return false, fmt.Errorf("emulator: %s.%s: fell off block end", fr.fn.Name, fr.block.Name)
		}

		// Straight-line batch: when the precomputed run total fits the
		// capacitor with margin (and the step limit), the whole run
		// executes on that one decision — no per-instruction exhaustion
		// compare can fire inside it.
		if r := &runs[pc]; r.Len > 0 && mc.res.Steps+int64(r.Len) <= mc.cfg.MaxSteps &&
			(!mc.exhaust || mc.capEn >= r.Energy+runSafety) {
			did, err := mc.execBatch(fr, r.Len)
			if err != nil {
				return false, err
			}
			if did {
				continue
			}
			// The batch's first instruction is a VM access that needs the
			// materialization machinery; fall through to the generic path,
			// which has consumed nothing yet.
		}

		ci := &code[pc]
		mc.res.Steps++

		if ci.Code == dispatch.CodeCheckpoint {
			if err := mc.execCheckpoint(ci.Ck); err != nil {
				return false, err
			}
			if mc.halted {
				return false, nil
			}
			fr = mc.top()
			code = fr.cb.Code
			runs = fr.cb.Runs
			continue
		}

		// Inline charge(): same decision order, same per-instruction
		// ledger additions as the interpreter's charge path.
		e := ci.Energy
		if mc.exhaust && mc.capEn+chargeEpsilon < e {
			mc.powerFailure()
			if mc.halted {
				return false, nil
			}
			fr = mc.top()
			code = fr.cb.Code
			runs = fr.cb.Runs
			continue
		}
		reexec := mc.done < mc.furthest
		mc.capEn -= e
		if reexec {
			mc.res.Energy.Reexecution += e
		} else if ci.IsMem {
			mc.res.Energy.Computation += e
			if ci.InVM {
				mc.res.Energy.VMAccessEnergy += e
				mc.res.Energy.VMAccesses++
			} else {
				mc.res.Energy.NVMAccessEnergy += e
				mc.res.Energy.NVMAccesses++
			}
		} else {
			mc.res.Energy.Computation += e
			mc.res.Energy.NoMemEnergy += e
		}
		mc.res.TotalCycles += ci.Cycles
		mc.cyclesSincePower += ci.Cycles
		if !reexec {
			mc.res.Cycles += ci.Cycles
		}

		regs := fr.regs
		switch ci.Code {
		case dispatch.CodeLoopBound:
			fr.pc++
		case dispatch.CodeConst:
			regs[ci.Dst] = ci.Val
			fr.pc++
		case dispatch.CodeAdd:
			regs[ci.Dst] = regs[ci.A] + regs[ci.B]
			fr.pc++
		case dispatch.CodeSub:
			regs[ci.Dst] = regs[ci.A] - regs[ci.B]
			fr.pc++
		case dispatch.CodeMul:
			regs[ci.Dst] = regs[ci.A] * regs[ci.B]
			fr.pc++
		case dispatch.CodeAnd:
			regs[ci.Dst] = regs[ci.A] & regs[ci.B]
			fr.pc++
		case dispatch.CodeOr:
			regs[ci.Dst] = regs[ci.A] | regs[ci.B]
			fr.pc++
		case dispatch.CodeXor:
			regs[ci.Dst] = regs[ci.A] ^ regs[ci.B]
			fr.pc++
		case dispatch.CodeShl:
			b := regs[ci.B]
			if b < 0 || b > 63 {
				regs[ci.Dst] = 0
			} else {
				regs[ci.Dst] = regs[ci.A] << uint(b)
			}
			fr.pc++
		case dispatch.CodeShr:
			b := regs[ci.B]
			if b < 0 || b > 63 {
				regs[ci.Dst] = 0
			} else {
				regs[ci.Dst] = int64(uint64(regs[ci.A]) >> uint(b))
			}
			fr.pc++
		case dispatch.CodeEq:
			regs[ci.Dst] = b2i(regs[ci.A] == regs[ci.B])
			fr.pc++
		case dispatch.CodeNe:
			regs[ci.Dst] = b2i(regs[ci.A] != regs[ci.B])
			fr.pc++
		case dispatch.CodeLt:
			regs[ci.Dst] = b2i(regs[ci.A] < regs[ci.B])
			fr.pc++
		case dispatch.CodeLe:
			regs[ci.Dst] = b2i(regs[ci.A] <= regs[ci.B])
			fr.pc++
		case dispatch.CodeGt:
			regs[ci.Dst] = b2i(regs[ci.A] > regs[ci.B])
			fr.pc++
		case dispatch.CodeGe:
			regs[ci.Dst] = b2i(regs[ci.A] >= regs[ci.B])
			fr.pc++
		case dispatch.CodeNeg:
			regs[ci.Dst] = -regs[ci.A]
			fr.pc++
		case dispatch.CodeNot:
			regs[ci.Dst] = b2i(regs[ci.A] == 0)
			fr.pc++
		case dispatch.CodeBin:
			v, err := ir.EvalOp(ci.Op, regs[ci.A], regs[ci.B])
			if err != nil {
				return false, fmt.Errorf("emulator: %s.%s: %w", fr.fn.Name, fr.block.Name, err)
			}
			regs[ci.Dst] = v
			fr.pc++
		case dispatch.CodeLoad:
			idx := 0
			if ci.HasIndex {
				iv := regs[ci.A]
				if iv < 0 || iv >= int64(ci.Var.Elems) {
					return false, fmt.Errorf("emulator: %s.%s: index %d out of range for %s[%d]",
						fr.fn.Name, fr.block.Name, iv, ci.Var.Name, ci.Var.Elems)
				}
				idx = int(iv)
			}
			if ci.InVM {
				arr := mc.vm[ci.Slot]
				if arr == nil || mc.pending[ci.Slot] {
					arr = mc.vmStorage(ci.Slot, ci.Var, true)
					if arr == nil {
						// Power failure or verdict; progress not bumped.
						if mc.halted {
							return false, nil
						}
						fr = mc.top()
						code = fr.cb.Code
						runs = fr.cb.Runs
						continue
					}
				}
				regs[ci.Dst] = arr[idx]
			} else {
				regs[ci.Dst] = mc.nvm[ci.Slot][idx]
			}
			fr.pc++
		case dispatch.CodeStore:
			idx := 0
			if ci.HasIndex {
				iv := regs[ci.B]
				if iv < 0 || iv >= int64(ci.Var.Elems) {
					return false, fmt.Errorf("emulator: %s.%s: index %d out of range for %s[%d]",
						fr.fn.Name, fr.block.Name, iv, ci.Var.Name, ci.Var.Elems)
				}
				idx = int(iv)
			}
			if ci.InVM {
				arr := mc.vm[ci.Slot]
				if arr == nil || mc.pending[ci.Slot] {
					arr = mc.vmStorage(ci.Slot, ci.Var, false)
					if arr == nil {
						if mc.halted {
							return false, nil
						}
						fr = mc.top()
						code = fr.cb.Code
						runs = fr.cb.Runs
						continue
					}
				}
				arr[idx] = regs[ci.A]
				mc.dirty[ci.Slot] = true
			} else {
				mc.nvm[ci.Slot][idx] = regs[ci.A]
			}
			fr.pc++
		case dispatch.CodeCall:
			fr.pc++ // return continues after the call
			cf := ci.Callee
			nf := frame{
				fn:      cf.IR,
				block:   cf.Entry.IR,
				cb:      cf.Entry,
				regs:    mc.newRegs(cf.IR.NumRegs),
				retReg:  ir.Reg(ci.Dst),
				wantRet: ci.HasDst,
			}
			for i, a := range ci.Args {
				nf.regs[i] = regs[a]
			}
			mc.frames = append(mc.frames, nf)
			fr = &mc.frames[len(mc.frames)-1]
			code = fr.cb.Code
			runs = fr.cb.Runs
		case dispatch.CodeOut:
			mc.out = append(mc.out, regs[ci.A])
			fr.pc++
		case dispatch.CodeBr:
			t := ci.Else
			if regs[ci.A] != 0 {
				t = ci.Then
			}
			fr.block = t.IR
			fr.cb = t
			fr.pc = 0
			code = t.Code
			runs = t.Runs
		case dispatch.CodeJmp:
			t := ci.Then
			fr.block = t.IR
			fr.cb = t
			fr.pc = 0
			code = t.Code
			runs = t.Runs
		case dispatch.CodeRet:
			var val int64
			if ci.HasDst { // Ret: HasDst carries HasSrc
				val = regs[ci.A]
			}
			// The popped frame's registers go back to the pool; snapshots
			// deep-copy register arrays, so no live state aliases them.
			mc.regPool = append(mc.regPool, fr.regs)
			mc.frames = mc.frames[:len(mc.frames)-1]
			if len(mc.frames) == 0 {
				return true, nil
			}
			caller := mc.top()
			if fr.wantRet {
				caller.regs[fr.retReg] = val
			}
			fr = caller
			code = fr.cb.Code
			runs = fr.cb.Runs
		default:
			return false, fmt.Errorf("emulator: unknown instruction %T", ci.IR)
		}
		// Inline bumpProgress; the observer is nil on this path, so the
		// span-close event never fires.
		mc.done++
		if mc.done > mc.furthest {
			mc.furthest = mc.done
		}
		if mc.inReexec && mc.done >= mc.furthest {
			mc.inReexec = false
		}
	}
}

// execBatch executes up to n consecutive batchable instructions
// starting at fr.pc. The caller has established that no schedule,
// observer, step-limit, or capacitor exhaustion can fire inside the
// window, so the only remaining interrupts are arithmetic traps, index
// checks, and VM accesses that need the materialization machinery. The
// first two abort the run exactly like the stepped path; the last exits
// the batch *before* the access's accounting, leaving the instruction
// wholly unexecuted for the generic path to replay in interpreter
// order. It returns false when that happens on the very first
// instruction (nothing consumed), so the caller falls through instead
// of re-entering the batch forever.
//
// Accounting stays per-instruction — the same additions in the same
// order as the stepped path — only the decisions are hoisted out.
func (mc *machine) execBatch(fr *frame, n int32) (bool, error) {
	code := fr.cb.Code
	regs := fr.regs
	// Accumulators live in locals for the duration of the batch. The
	// additions happen in the same per-instruction order as the stepped
	// path — only their home moves from memory to registers — so every
	// float result is bit-identical.
	pc := fr.pc
	pc0 := pc
	capEn := mc.capEn
	comp := mc.res.Energy.Computation
	reex := mc.res.Energy.Reexecution
	noMem := mc.res.Energy.NoMemEnergy
	vmE := mc.res.Energy.VMAccessEnergy
	nvmE := mc.res.Energy.NVMAccessEnergy
	vmN := mc.res.Energy.VMAccesses
	nvmN := mc.res.Energy.NVMAccesses
	total := mc.res.TotalCycles
	since := mc.cyclesSincePower
	cyc := mc.res.Cycles
	steps := mc.res.Steps
	done := mc.done
	furthest := mc.furthest
	var err error
loop:
	for ; n > 0; n-- {
		ci := &code[pc]
		if ci.IsMem && ci.InVM && (mc.vm[ci.Slot] == nil || mc.pending[ci.Slot]) {
			// Needs materialization, deferred-restore charging, or
			// poisoning — before any accounting, so the generic path
			// replays this instruction from scratch.
			break loop
		}
		steps++
		reexec := done < furthest
		capEn -= ci.Energy
		if reexec {
			reex += ci.Energy
		} else if ci.IsMem {
			comp += ci.Energy
			if ci.InVM {
				vmE += ci.Energy
				vmN++
			} else {
				nvmE += ci.Energy
				nvmN++
			}
		} else {
			comp += ci.Energy
			noMem += ci.Energy
		}
		total += ci.Cycles
		since += ci.Cycles
		if !reexec {
			cyc += ci.Cycles
		}
		switch ci.Code {
		case dispatch.CodeConst:
			regs[ci.Dst] = ci.Val
		case dispatch.CodeAdd:
			regs[ci.Dst] = regs[ci.A] + regs[ci.B]
		case dispatch.CodeSub:
			regs[ci.Dst] = regs[ci.A] - regs[ci.B]
		case dispatch.CodeMul:
			regs[ci.Dst] = regs[ci.A] * regs[ci.B]
		case dispatch.CodeAnd:
			regs[ci.Dst] = regs[ci.A] & regs[ci.B]
		case dispatch.CodeOr:
			regs[ci.Dst] = regs[ci.A] | regs[ci.B]
		case dispatch.CodeXor:
			regs[ci.Dst] = regs[ci.A] ^ regs[ci.B]
		case dispatch.CodeShl:
			b := regs[ci.B]
			if b < 0 || b > 63 {
				regs[ci.Dst] = 0
			} else {
				regs[ci.Dst] = regs[ci.A] << uint(b)
			}
		case dispatch.CodeShr:
			b := regs[ci.B]
			if b < 0 || b > 63 {
				regs[ci.Dst] = 0
			} else {
				regs[ci.Dst] = int64(uint64(regs[ci.A]) >> uint(b))
			}
		case dispatch.CodeEq:
			regs[ci.Dst] = b2i(regs[ci.A] == regs[ci.B])
		case dispatch.CodeNe:
			regs[ci.Dst] = b2i(regs[ci.A] != regs[ci.B])
		case dispatch.CodeLt:
			regs[ci.Dst] = b2i(regs[ci.A] < regs[ci.B])
		case dispatch.CodeLe:
			regs[ci.Dst] = b2i(regs[ci.A] <= regs[ci.B])
		case dispatch.CodeGt:
			regs[ci.Dst] = b2i(regs[ci.A] > regs[ci.B])
		case dispatch.CodeGe:
			regs[ci.Dst] = b2i(regs[ci.A] >= regs[ci.B])
		case dispatch.CodeNeg:
			regs[ci.Dst] = -regs[ci.A]
		case dispatch.CodeNot:
			regs[ci.Dst] = b2i(regs[ci.A] == 0)
		case dispatch.CodeBin:
			v, everr := ir.EvalOp(ci.Op, regs[ci.A], regs[ci.B])
			if everr != nil {
				// The trapping instruction's accounting stands; pc and
				// progress stay on it, exactly like the stepped path.
				err = fmt.Errorf("emulator: %s.%s: %w", fr.fn.Name, fr.block.Name, everr)
				break loop
			}
			regs[ci.Dst] = v
		case dispatch.CodeLoad:
			idx := 0
			if ci.HasIndex {
				iv := regs[ci.A]
				if iv < 0 || iv >= int64(ci.Var.Elems) {
					err = fmt.Errorf("emulator: %s.%s: index %d out of range for %s[%d]",
						fr.fn.Name, fr.block.Name, iv, ci.Var.Name, ci.Var.Elems)
					break loop
				}
				idx = int(iv)
			}
			if ci.InVM {
				regs[ci.Dst] = mc.vm[ci.Slot][idx]
			} else {
				regs[ci.Dst] = mc.nvm[ci.Slot][idx]
			}
		case dispatch.CodeStore:
			idx := 0
			if ci.HasIndex {
				iv := regs[ci.B]
				if iv < 0 || iv >= int64(ci.Var.Elems) {
					err = fmt.Errorf("emulator: %s.%s: index %d out of range for %s[%d]",
						fr.fn.Name, fr.block.Name, iv, ci.Var.Name, ci.Var.Elems)
					break loop
				}
				idx = int(iv)
			}
			if ci.InVM {
				mc.vm[ci.Slot][idx] = regs[ci.A]
				mc.dirty[ci.Slot] = true
			} else {
				mc.nvm[ci.Slot][idx] = regs[ci.A]
			}
		case dispatch.CodeOut:
			mc.out = append(mc.out, regs[ci.A])
		case dispatch.CodeLoopBound:
			// metadata only
		}
		pc++
		done++
		if done > furthest {
			furthest = done
		}
	}
	fr.pc = pc
	mc.capEn = capEn
	mc.res.Energy.Computation = comp
	mc.res.Energy.Reexecution = reex
	mc.res.Energy.NoMemEnergy = noMem
	mc.res.Energy.VMAccessEnergy = vmE
	mc.res.Energy.NVMAccessEnergy = nvmE
	mc.res.Energy.VMAccesses = vmN
	mc.res.Energy.NVMAccesses = nvmN
	mc.res.TotalCycles = total
	mc.cyclesSincePower = since
	mc.res.Cycles = cyc
	mc.res.Steps = steps
	mc.done = done
	mc.furthest = furthest
	// Inline bumpProgress's span close. done only grows, so checking once
	// after the batch clears the flag at the same point the stepped path
	// would; obs is nil on this path, so the span-close event never fires.
	if mc.inReexec && done >= furthest {
		mc.inReexec = false
	}
	return pc != pc0, err
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// steppedLoop drives stepCompiled for observed or scheduled runs, where
// every instruction boundary needs its probe and every charge its event.
func (mc *machine) steppedLoop() (bool, error) {
	for !mc.halted {
		if mc.res.Steps >= mc.cfg.MaxSteps {
			mc.close(OutOfSteps)
			return false, nil
		}
		fr := mc.top()
		if fr.pc >= len(fr.cb.Code) {
			return false, fmt.Errorf("emulator: %s.%s: fell off block end", fr.fn.Name, fr.block.Name)
		}
		finished, err := mc.stepCompiled(fr)
		if err != nil || finished {
			return finished, err
		}
	}
	return false, nil
}

// stepCompiled executes one instruction through the compiled program,
// mirroring the interpreter's step() decision for decision: probe order,
// charge kinds, cycle accounting, and error text all match.
func (mc *machine) stepCompiled(fr *frame) (bool, error) {
	ci := &fr.cb.Code[fr.pc]
	mc.res.Steps++

	if mc.sched != nil && mc.sched.Fail(mc.probe(PointStep, mc.res.Steps, 0)) {
		mc.induce(PointStep, -1, mc.res.Steps)
		mc.powerFailure()
		return false, nil
	}

	if ci.Code == dispatch.CodeCheckpoint {
		return false, mc.execCheckpoint(ci.Ck)
	}

	reexec := mc.done < mc.furthest
	var ok bool
	if ci.IsMem {
		if ci.InVM {
			ok = mc.charge(ci.Energy, chVMAcc)
		} else {
			ok = mc.charge(ci.Energy, chNVMAcc)
		}
	} else {
		ok = mc.charge(ci.Energy, chComp)
		if ok && !reexec {
			mc.res.Energy.NoMemEnergy += ci.Energy
		}
	}
	if !ok {
		mc.powerFailure()
		return false, nil
	}
	mc.res.TotalCycles += ci.Cycles
	mc.cyclesSincePower += ci.Cycles
	if !reexec {
		mc.res.Cycles += ci.Cycles
	}

	halt, err := mc.execCompiled(fr, ci)
	if errors.Is(err, errInterrupt) {
		return false, nil
	}
	if err != nil || halt {
		return halt, err
	}
	mc.bumpProgress()
	return false, nil
}

// execCompiled performs the state change of a non-checkpoint compiled
// instruction, mirroring exec().
func (mc *machine) execCompiled(fr *frame, ci *dispatch.Instr) (bool, error) {
	switch ci.Code {
	case dispatch.CodeLoopBound:
		fr.pc++
	case dispatch.CodeConst:
		fr.regs[ci.Dst] = ci.Val
		fr.pc++
	case dispatch.CodeAdd:
		fr.regs[ci.Dst] = fr.regs[ci.A] + fr.regs[ci.B]
		fr.pc++
	case dispatch.CodeSub:
		fr.regs[ci.Dst] = fr.regs[ci.A] - fr.regs[ci.B]
		fr.pc++
	case dispatch.CodeMul:
		fr.regs[ci.Dst] = fr.regs[ci.A] * fr.regs[ci.B]
		fr.pc++
	case dispatch.CodeAnd:
		fr.regs[ci.Dst] = fr.regs[ci.A] & fr.regs[ci.B]
		fr.pc++
	case dispatch.CodeOr:
		fr.regs[ci.Dst] = fr.regs[ci.A] | fr.regs[ci.B]
		fr.pc++
	case dispatch.CodeXor:
		fr.regs[ci.Dst] = fr.regs[ci.A] ^ fr.regs[ci.B]
		fr.pc++
	case dispatch.CodeShl:
		b := fr.regs[ci.B]
		if b < 0 || b > 63 {
			fr.regs[ci.Dst] = 0
		} else {
			fr.regs[ci.Dst] = fr.regs[ci.A] << uint(b)
		}
		fr.pc++
	case dispatch.CodeShr:
		b := fr.regs[ci.B]
		if b < 0 || b > 63 {
			fr.regs[ci.Dst] = 0
		} else {
			fr.regs[ci.Dst] = int64(uint64(fr.regs[ci.A]) >> uint(b))
		}
		fr.pc++
	case dispatch.CodeEq:
		fr.regs[ci.Dst] = b2i(fr.regs[ci.A] == fr.regs[ci.B])
		fr.pc++
	case dispatch.CodeNe:
		fr.regs[ci.Dst] = b2i(fr.regs[ci.A] != fr.regs[ci.B])
		fr.pc++
	case dispatch.CodeLt:
		fr.regs[ci.Dst] = b2i(fr.regs[ci.A] < fr.regs[ci.B])
		fr.pc++
	case dispatch.CodeLe:
		fr.regs[ci.Dst] = b2i(fr.regs[ci.A] <= fr.regs[ci.B])
		fr.pc++
	case dispatch.CodeGt:
		fr.regs[ci.Dst] = b2i(fr.regs[ci.A] > fr.regs[ci.B])
		fr.pc++
	case dispatch.CodeGe:
		fr.regs[ci.Dst] = b2i(fr.regs[ci.A] >= fr.regs[ci.B])
		fr.pc++
	case dispatch.CodeNeg:
		fr.regs[ci.Dst] = -fr.regs[ci.A]
		fr.pc++
	case dispatch.CodeNot:
		fr.regs[ci.Dst] = b2i(fr.regs[ci.A] == 0)
		fr.pc++
	case dispatch.CodeBin:
		v, err := ir.EvalOp(ci.Op, fr.regs[ci.A], fr.regs[ci.B])
		if err != nil {
			return false, fmt.Errorf("emulator: %s.%s: %w", fr.fn.Name, fr.block.Name, err)
		}
		fr.regs[ci.Dst] = v
		fr.pc++
	case dispatch.CodeLoad:
		idx, err := elemIndexC(ci, ci.A, fr)
		if err != nil {
			return false, err
		}
		var val int64
		if ci.InVM {
			arr := mc.vmStorage(ci.Slot, ci.Var, true)
			if arr == nil {
				return false, errInterrupt
			}
			val = arr[idx]
		} else {
			val = mc.nvm[ci.Slot][idx]
		}
		fr.regs[ci.Dst] = val
		fr.pc++
	case dispatch.CodeStore:
		idx, err := elemIndexC(ci, ci.B, fr)
		if err != nil {
			return false, err
		}
		val := fr.regs[ci.A]
		if ci.InVM {
			arr := mc.vmStorage(ci.Slot, ci.Var, false)
			if arr == nil {
				return false, errInterrupt
			}
			arr[idx] = val
			mc.dirty[ci.Slot] = true
		} else {
			mc.nvm[ci.Slot][idx] = val
		}
		fr.pc++
	case dispatch.CodeCall:
		fr.pc++ // return continues after the call
		cf := ci.Callee
		nf := frame{
			fn:      cf.IR,
			block:   cf.Entry.IR,
			cb:      cf.Entry,
			regs:    make([]int64, cf.IR.NumRegs),
			retReg:  ir.Reg(ci.Dst),
			wantRet: ci.HasDst,
		}
		for i, a := range ci.Args {
			nf.regs[i] = fr.regs[a]
		}
		mc.frames = append(mc.frames, nf)
		if mc.obs != nil {
			mc.emit(Event{Kind: EvBlockEnter, Fn: nf.fn, Block: nf.block, Call: true})
		}
	case dispatch.CodeOut:
		mc.out = append(mc.out, fr.regs[ci.A])
		fr.pc++
	case dispatch.CodeBr:
		if fr.regs[ci.A] != 0 {
			mc.enterCompiled(fr, ci.Then)
		} else {
			mc.enterCompiled(fr, ci.Else)
		}
	case dispatch.CodeJmp:
		mc.enterCompiled(fr, ci.Then)
	case dispatch.CodeRet:
		var val int64
		if ci.HasDst { // Ret: HasDst carries HasSrc
			val = fr.regs[ci.A]
		}
		if mc.obs != nil {
			mc.emit(Event{Kind: EvFuncReturn, Fn: fr.fn})
		}
		mc.frames = mc.frames[:len(mc.frames)-1]
		if len(mc.frames) == 0 {
			return true, nil
		}
		caller := mc.top()
		if fr.wantRet {
			caller.regs[fr.retReg] = val
		}
	default:
		return false, fmt.Errorf("emulator: unknown instruction %T", ci.IR)
	}
	return false, nil
}

func (mc *machine) enterCompiled(fr *frame, cb *dispatch.Block) {
	fr.block = cb.IR
	fr.cb = cb
	fr.pc = 0
	if mc.obs != nil {
		mc.emit(Event{Kind: EvBlockEnter, Fn: fr.fn, Block: cb.IR})
	}
}

// elemIndexC mirrors elemIndex for a compiled memory instruction; idxReg
// is the operand field holding the index register (A for loads, B for
// stores).
func elemIndexC(ci *dispatch.Instr, idxReg int32, fr *frame) (int, error) {
	if !ci.HasIndex {
		return 0, nil
	}
	idx := fr.regs[idxReg]
	if idx < 0 || idx >= int64(ci.Var.Elems) {
		return 0, fmt.Errorf("emulator: %s.%s: index %d out of range for %s[%d]",
			fr.fn.Name, fr.block.Name, idx, ci.Var.Name, ci.Var.Elems)
	}
	return int(idx), nil
}
