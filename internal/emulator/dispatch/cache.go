package dispatch

import (
	"sync"

	"schematic/internal/energy"
	"schematic/internal/ir"
)

// cacheCap bounds the compiled-program cache. Entries are keyed by
// pointer identity, so the bound also limits how many dead modules the
// cache can pin; FIFO eviction keeps steady-state workloads (a harness
// cloning modules per cell, a daemon compiling per request) from growing
// it without bound while the handful of long-lived modules that benefit
// most — the profiler's and the hunter's, re-run hundreds of times —
// stay resident.
const cacheCap = 256

type cacheKey struct {
	mod   *ir.Module
	model *energy.Model
}

var cache = struct {
	sync.Mutex
	progs map[cacheKey]*Program
	order []cacheKey // insertion order, for FIFO eviction
}{progs: map[cacheKey]*Program{}}

// For returns the compiled program for (mod, model), compiling on a
// miss and recompiling when the cached entry's fingerprint shows the
// module was mutated in place since compilation (the translation
// validator does exactly that between pipeline stages). The model is
// keyed by pointer and assumed immutable, matching the convention of
// every other model-keyed cache in the tree.
func For(mod *ir.Module, model *energy.Model) *Program {
	k := cacheKey{mod: mod, model: model}
	cache.Lock()
	defer cache.Unlock()
	if p, ok := cache.progs[k]; ok {
		if !p.Stale() {
			return p
		}
		p = Compile(mod, model)
		cache.progs[k] = p
		return p
	}
	p := Compile(mod, model)
	cache.progs[k] = p
	cache.order = append(cache.order, k)
	if len(cache.order) > cacheCap {
		old := cache.order[0]
		cache.order = cache.order[1:]
		delete(cache.progs, old)
	}
	return p
}
