// Package dispatch precompiles IR modules into a dispatch-ready form for
// the emulator: switch-threaded opcode arrays with resolved operand
// indices, variable storage slots, precomputed per-instruction energy and
// cycle costs (including the block's VM/NVM allocation decision), and
// precomputed straight-line run totals that let the machine charge a
// whole non-memory instruction sequence in one batched step.
//
// A Program is immutable once compiled and carries no mutable machine
// state, so one Program is safely shared by any number of concurrent
// machines running the same module (the crashtest hunter and the trace
// profiler both re-execute one module many times). The package-level
// cache (For) keys programs by (*ir.Module, *energy.Model) and validates
// every hit against a structural fingerprint, because several callers —
// the translation validator in particular — mutate a module in place
// between runs.
package dispatch

import (
	"schematic/internal/energy"
	"schematic/internal/ir"
)

// Code is a threaded opcode. Binary operators that cannot trap are
// specialized so the hot loop needs no second dispatch through
// ir.EvalOp; Div and Rem keep the generic CodeBin path, which delegates
// to ir.EvalOp for identical trap semantics and error text.
type Code uint8

const (
	CodeLoopBound Code = iota
	CodeConst
	CodeBin // generic BinOp via ir.EvalOp (div, rem)
	CodeAdd
	CodeSub
	CodeMul
	CodeAnd
	CodeOr
	CodeXor
	CodeShl
	CodeShr
	CodeEq
	CodeNe
	CodeLt
	CodeLe
	CodeGt
	CodeGe
	CodeNeg
	CodeNot
	CodeLoad
	CodeStore
	CodeCall
	CodeOut
	CodeBr
	CodeJmp
	CodeRet
	CodeCheckpoint
	// CodeUnknown marks an instruction outside the closed IR set. It
	// compiles (the interpreter only errors when such an instruction is
	// actually executed, and so must we) and raises the interpreter's
	// "unknown instruction" error on execution.
	CodeUnknown
)

// binCode maps a BinOp operator to its specialized opcode, or CodeBin
// when the operator can trap and must go through ir.EvalOp.
func binCode(op ir.Op) Code {
	switch op {
	case ir.OpAdd:
		return CodeAdd
	case ir.OpSub:
		return CodeSub
	case ir.OpMul:
		return CodeMul
	case ir.OpAnd:
		return CodeAnd
	case ir.OpOr:
		return CodeOr
	case ir.OpXor:
		return CodeXor
	case ir.OpShl:
		return CodeShl
	case ir.OpShr:
		return CodeShr
	case ir.OpEq:
		return CodeEq
	case ir.OpNe:
		return CodeNe
	case ir.OpLt:
		return CodeLt
	case ir.OpLe:
		return CodeLe
	case ir.OpGt:
		return CodeGt
	case ir.OpGe:
		return CodeGe
	case ir.OpNeg:
		return CodeNeg
	case ir.OpNot:
		return CodeNot
	default:
		return CodeBin
	}
}

// Instr is one compiled instruction: opcode, resolved operand and storage
// indices, and the precomputed cost of executing it once under the
// block's allocation.
type Instr struct {
	Code Code

	Dst  int32 // destination register (Const, BinOps, Load, Call)
	A, B int32 // operand registers; A doubles as Src (Store/Out/Ret), Cond (Br)

	Val int64 // Const immediate
	Op  ir.Op // CodeBin: the trapping operator

	// Precomputed Model.InstrCost under the block's allocation.
	Energy float64
	Cycles int64

	// Memory instructions: resolved variable slot, index register, and
	// the block's precomputed VM/NVM classification.
	Slot     int32
	HasIndex bool
	InVM     bool
	IsMem    bool
	Var      *ir.Var // for index-error messages and element counts

	Then, Else *Block // compiled branch targets (Jmp uses Then)
	Callee     *Func
	Args       []int32
	HasDst     bool // Call writes Dst; Ret carries a value in A

	Ck *ir.Checkpoint
	IR ir.Instr // original instruction (unknown-instruction error text)
}

// Run is the precomputed maximal straight-line batch starting at a pc:
// Len consecutive instructions that transfer no control and hit no
// checkpoint — chargeable in one decision when no schedule or observer
// can fire inside the window. Memory instructions ride along on their
// happy path; the executor leaves the batch early when an access needs
// the materialization machinery. Energy/Cycles are the batch totals
// (used only for the capacitor-margin decision; ledger sums stay
// per-instruction so results remain bit-identical).
type Run struct {
	Len    int32
	Energy float64
	Cycles int64
}

// Block is a compiled basic block.
type Block struct {
	IR   *ir.Block
	Code []Instr
	Runs []Run // per-pc batch metadata, same length as Code

	id int32 // global ordinal, fingerprint identity for branch targets
}

// Func is a compiled function.
type Func struct {
	IR     *ir.Func
	Entry  *Block
	Blocks []*Block

	id int32
}

// Program is a compiled module bound to one energy model. Immutable
// after Compile; share freely across goroutines.
type Program struct {
	Mod   *ir.Module
	Model *energy.Model

	// Vars is the slot table: every module-level and function-local
	// variable in declaration order. Machine storage (NVM homes, VM
	// residency, pending/dirty flags) is indexed by slot.
	Vars []*ir.Var
	// NameOrder lists slots sorted by (variable name, slot), the
	// deterministic iteration order for save sets, snapshots, and
	// resident-variable listings.
	NameOrder []int32

	Funcs []*Func

	slotOf  map[*ir.Var]int32
	fnOf    map[*ir.Func]*Func
	blockOf map[*ir.Block]*Block

	fp uint64
}

// SlotOf resolves a variable's storage slot. The second result is false
// for a variable outside the compiled slot table (a staleness signal:
// the module was mutated after compilation).
func (p *Program) SlotOf(v *ir.Var) (int32, bool) {
	s, ok := p.slotOf[v]
	return s, ok
}

// FuncOf returns the compiled counterpart of f, or nil.
func (p *Program) FuncOf(f *ir.Func) *Func { return p.fnOf[f] }

// BlockOf returns the compiled counterpart of b, or nil.
func (p *Program) BlockOf(b *ir.Block) *Block { return p.blockOf[b] }

// Stale reports whether the module no longer matches the compiled form:
// an optimizer or placement pass mutated instructions, allocations,
// branch targets, or the variable set in place since Compile ran. A
// stale program must be recompiled before running. The check is one
// allocation-free walk of the module, O(instructions) — trivial next to
// an emulation.
func (p *Program) Stale() bool {
	fp, ok := p.fingerprint()
	return !ok || fp != p.fp
}

// Compile translates the module for the given energy model.
func Compile(mod *ir.Module, model *energy.Model) *Program {
	p := &Program{
		Mod:     mod,
		Model:   model,
		slotOf:  map[*ir.Var]int32{},
		fnOf:    map[*ir.Func]*Func{},
		blockOf: map[*ir.Block]*Block{},
	}
	addVar := func(v *ir.Var) {
		if _, ok := p.slotOf[v]; ok {
			return
		}
		p.slotOf[v] = int32(len(p.Vars))
		p.Vars = append(p.Vars, v)
	}
	for _, v := range mod.Globals {
		addVar(v)
	}
	for _, f := range mod.Funcs {
		for _, v := range f.Locals {
			addVar(v)
		}
	}
	p.NameOrder = nameOrder(p.Vars)

	// Shells first, so branch and call targets resolve in one pass.
	var blockID int32
	for _, f := range mod.Funcs {
		cf := &Func{IR: f, id: int32(len(p.Funcs))}
		for _, b := range f.Blocks {
			cb := &Block{IR: b, id: blockID}
			blockID++
			cf.Blocks = append(cf.Blocks, cb)
			p.blockOf[b] = cb
		}
		if len(cf.Blocks) > 0 {
			cf.Entry = p.blockOf[f.Entry()]
		}
		p.Funcs = append(p.Funcs, cf)
		p.fnOf[f] = cf
	}
	for _, cf := range p.Funcs {
		for _, cb := range cf.Blocks {
			p.compileBlock(cb)
		}
	}
	p.fp, _ = p.fingerprint()
	return p
}

func (p *Program) compileBlock(cb *Block) {
	b := cb.IR
	cb.Code = make([]Instr, len(b.Instrs))
	for i, in := range b.Instrs {
		ci := &cb.Code[i]
		ci.IR = in
		space := ir.NVM
		if v, _, ok := ir.AccessedVar(in); ok && b.InVM(v) {
			space = ir.VM
		}
		ci.Energy, ci.Cycles = p.Model.InstrCost(in, space)
		switch x := in.(type) {
		case *ir.LoopBound:
			ci.Code = CodeLoopBound
		case *ir.Const:
			ci.Code = CodeConst
			ci.Dst = int32(x.Dst)
			ci.Val = x.Val
		case *ir.BinOp:
			ci.Code = binCode(x.Op)
			ci.Op = x.Op
			ci.Dst = int32(x.Dst)
			ci.A = int32(x.A)
			ci.B = int32(x.B)
		case *ir.Load:
			ci.Code = CodeLoad
			ci.IsMem = true
			ci.Dst = int32(x.Dst)
			ci.Slot = p.slotOf[x.Var]
			ci.A = int32(x.Index)
			ci.HasIndex = x.HasIndex
			ci.InVM = space == ir.VM
			ci.Var = x.Var
		case *ir.Store:
			ci.Code = CodeStore
			ci.IsMem = true
			ci.A = int32(x.Src)
			ci.Slot = p.slotOf[x.Var]
			ci.B = int32(x.Index)
			ci.HasIndex = x.HasIndex
			ci.InVM = space == ir.VM
			ci.Var = x.Var
		case *ir.Call:
			ci.Code = CodeCall
			ci.Callee = p.fnOf[x.Callee]
			ci.Dst = int32(x.Dst)
			ci.HasDst = x.HasDst
			ci.Args = make([]int32, len(x.Args))
			for k, a := range x.Args {
				ci.Args[k] = int32(a)
			}
		case *ir.Out:
			ci.Code = CodeOut
			ci.A = int32(x.Src)
		case *ir.Br:
			ci.Code = CodeBr
			ci.A = int32(x.Cond)
			ci.Then = p.blockOf[x.Then]
			ci.Else = p.blockOf[x.Else]
		case *ir.Jmp:
			ci.Code = CodeJmp
			ci.Then = p.blockOf[x.Target]
		case *ir.Ret:
			ci.Code = CodeRet
			ci.A = int32(x.Src)
			ci.HasDst = x.HasSrc
		case *ir.Checkpoint:
			ci.Code = CodeCheckpoint
			ci.Ck = x
		default:
			ci.Code = CodeUnknown
		}
	}

	// Batch metadata, computed backwards: a run extends while the
	// instruction is pure register/output work.
	cb.Runs = make([]Run, len(cb.Code))
	for i := len(cb.Code) - 1; i >= 0; i-- {
		ci := &cb.Code[i]
		if !batchable(ci.Code) {
			continue
		}
		r := Run{Len: 1, Energy: ci.Energy, Cycles: ci.Cycles}
		if i+1 < len(cb.Code) {
			nxt := cb.Runs[i+1]
			r.Len += nxt.Len
			r.Energy += nxt.Energy
			r.Cycles += nxt.Cycles
		}
		cb.Runs[i] = r
	}
}

// batchable reports whether an opcode may live inside a straight-line
// batch: no control transfer, no checkpoint. Memory instructions are
// batchable — their happy path (resident, non-pending storage) needs no
// machinery beyond the sub-ledger additions; the batch executor checks
// residency before accounting and exits the batch when an access needs
// materialization, deferred-restore charging, or poisoning. Trapping
// operators and index checks are fine — they abort the run exactly
// where the per-instruction engine would.
func batchable(c Code) bool {
	switch c {
	case CodeLoopBound, CodeConst, CodeBin,
		CodeAdd, CodeSub, CodeMul, CodeAnd, CodeOr, CodeXor,
		CodeShl, CodeShr, CodeEq, CodeNe, CodeLt, CodeLe, CodeGt, CodeGe,
		CodeNeg, CodeNot, CodeOut, CodeLoad, CodeStore:
		return true
	}
	return false
}

// nameOrder returns the slots sorted by (name, slot) without assuming
// unique names: duplicate local names across functions tie-break on the
// slot index, keeping every deterministic iteration truly deterministic.
func nameOrder(vars []*ir.Var) []int32 {
	order := make([]int32, len(vars))
	for i := range order {
		order[i] = int32(i)
	}
	// Insertion sort: var counts are small and this avoids sort.Slice's
	// closure allocation in the compile path.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if vars[a].Name < vars[b].Name || (vars[a].Name == vars[b].Name && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	return order
}
