package dispatch

import (
	"testing"

	"schematic/internal/energy"
	"schematic/internal/ir"
)

// testModule builds a small two-function module with a VM-allocated
// global, a loop, a conditional checkpoint, and array traffic — enough
// shape to exercise slots, branch targets, costs, and runs.
func testModule(t testing.TB) *ir.Module {
	t.Helper()
	m := &ir.Module{Name: "dispatch-test"}
	acc := m.NewGlobal("acc", 1)
	arr := m.NewGlobal("arr", 4)

	f := m.NewFunc("work", nil, true)
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	done := f.NewBlock("done")

	b := ir.NewBuilder(f).At(entry)
	zero := b.Const(0)
	b.Store(acc, zero)
	b.Jmp(head)

	b.At(head)
	a := b.Load(acc)
	lim := b.Const(4)
	c := b.Bin(ir.OpLt, a, lim)
	b.Br(c, body, done)

	b.At(body)
	a2 := b.Load(acc)
	el := b.LoadIdx(arr, a2)
	sum := b.Bin(ir.OpAdd, a2, el)
	b.StoreIdx(arr, a2, sum)
	b.Emit(&ir.Checkpoint{ID: 0, Kind: ir.CkRollback, Every: 2,
		Save: []*ir.Var{acc}, Restore: []*ir.Var{acc}})
	one := b.Const(1)
	nxt := b.Bin(ir.OpAdd, a2, one)
	b.Store(acc, nxt)
	b.Jmp(head)

	b.At(done)
	out := b.Load(acc)
	b.RetVal(out)

	for _, blk := range f.Blocks {
		blk.Alloc = map[*ir.Var]bool{acc: true}
	}

	mainFn := m.NewFunc("main", nil, false)
	mb := ir.NewBuilder(mainFn)
	r := mb.Call(f)
	mb.Out(r)
	mb.Ret()

	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestCompileShape(t *testing.T) {
	m := testModule(t)
	model := energy.MSP430FR5969()
	p := Compile(m, model)

	if len(p.Vars) != 2 {
		t.Fatalf("slot table has %d vars, want 2", len(p.Vars))
	}
	for _, v := range m.Globals {
		if _, ok := p.SlotOf(v); !ok {
			t.Errorf("global %s has no slot", v.Name)
		}
	}
	// NameOrder is a permutation of slots sorted by (name, slot).
	if len(p.NameOrder) != len(p.Vars) {
		t.Fatalf("NameOrder has %d entries, want %d", len(p.NameOrder), len(p.Vars))
	}
	for i := 1; i < len(p.NameOrder); i++ {
		a, b := p.Vars[p.NameOrder[i-1]], p.Vars[p.NameOrder[i]]
		if a.Name > b.Name {
			t.Errorf("NameOrder not sorted: %q before %q", a.Name, b.Name)
		}
	}

	for _, f := range m.Funcs {
		cf := p.FuncOf(f)
		if cf == nil {
			t.Fatalf("no compiled func for %s", f.Name)
		}
		if cf.Entry == nil || cf.Entry.IR != f.Entry() {
			t.Errorf("%s: entry block mismatch", f.Name)
		}
		for _, blk := range f.Blocks {
			cb := p.BlockOf(blk)
			if cb == nil {
				t.Fatalf("%s.%s: no compiled block", f.Name, blk.Name)
			}
			if len(cb.Code) != len(blk.Instrs) {
				t.Fatalf("%s.%s: %d compiled instrs, want %d", f.Name, blk.Name, len(cb.Code), len(blk.Instrs))
			}
			for i, in := range blk.Instrs {
				ci := &cb.Code[i]
				// Every instruction's precomputed cost must match the
				// model's live answer under the block's allocation.
				space := ir.NVM
				if v, _, ok := ir.AccessedVar(in); ok && blk.InVM(v) {
					space = ir.VM
				}
				e, cyc := model.InstrCost(in, space)
				if ci.Energy != e || ci.Cycles != cyc {
					t.Errorf("%s.%s[%d]: cost (%g,%d), model says (%g,%d)",
						f.Name, blk.Name, i, ci.Energy, ci.Cycles, e, cyc)
				}
			}
			// Run metadata: each run covers only batchable opcodes, stops
			// before control/checkpoints, and its totals equal the
			// per-instruction sums.
			for pc, r := range cb.Runs {
				if r.Len == 0 {
					continue
				}
				var e float64
				var cyc int64
				for k := pc; k < pc+int(r.Len); k++ {
					ci := &cb.Code[k]
					if !batchable(ci.Code) {
						t.Fatalf("%s.%s: run at %d includes non-batchable pc %d", f.Name, blk.Name, pc, k)
					}
					e += ci.Energy
					cyc += ci.Cycles
				}
				if r.Energy != e || r.Cycles != cyc {
					t.Errorf("%s.%s: run at %d totals (%g,%d), sum (%g,%d)",
						f.Name, blk.Name, pc, r.Energy, r.Cycles, e, cyc)
				}
				if end := pc + int(r.Len); end < len(cb.Code) && batchable(cb.Code[end].Code) {
					t.Errorf("%s.%s: run at %d stops early at batchable pc %d", f.Name, blk.Name, pc, end)
				}
			}
		}
	}
}

// TestStaleness: every in-place mutation the pipeline performs between
// runs — retargeting a branch, changing a block's VM allocation,
// editing a checkpoint's save list, introducing a new variable — must
// flip Stale(), and an untouched program must not be stale.
func TestStaleness(t *testing.T) {
	model := energy.MSP430FR5969()

	fresh := Compile(testModule(t), model)
	if fresh.Stale() {
		t.Fatal("freshly compiled program reports stale")
	}

	mutations := []struct {
		name string
		mut  func(m *ir.Module)
	}{
		{"branch-retarget", func(m *ir.Module) {
			f := m.FuncByName("work")
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if br, ok := in.(*ir.Br); ok {
						br.Then, br.Else = br.Else, br.Then
						return
					}
				}
			}
			t.Fatal("no branch found")
		}},
		{"alloc-change", func(m *ir.Module) {
			f := m.FuncByName("work")
			// Evict the accumulator from VM in one block: flips the
			// compiled InVM classification and the baked-in costs.
			f.Blocks[2].Alloc = map[*ir.Var]bool{}
		}},
		{"save-list", func(m *ir.Module) {
			f := m.FuncByName("work")
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if ck, ok := in.(*ir.Checkpoint); ok {
						ck.Save = append(ck.Save, m.Globals[1])
						return
					}
				}
			}
			t.Fatal("no checkpoint found")
		}},
		{"new-variable", func(m *ir.Module) {
			v := m.NewGlobal("fresh", 1)
			f := m.FuncByName("work")
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if st, ok := in.(*ir.Store); ok {
						st.Var = v
						return
					}
				}
			}
			t.Fatal("no store found")
		}},
		{"instruction-edit", func(m *ir.Module) {
			f := m.FuncByName("work")
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if c, ok := in.(*ir.Const); ok {
						c.Val++
						return
					}
				}
			}
			t.Fatal("no const found")
		}},
	}
	for _, tc := range mutations {
		m := testModule(t)
		p := Compile(m, model)
		if p.Stale() {
			t.Fatalf("%s: stale before mutation", tc.name)
		}
		tc.mut(m)
		if !p.Stale() {
			t.Errorf("%s: mutation not detected", tc.name)
		}
	}
}

// TestCacheReuseAndRecompile: For returns the same Program while the
// module is unchanged, a new one after an in-place mutation, and evicts
// FIFO once the cache fills.
func TestCacheReuseAndRecompile(t *testing.T) {
	model := energy.MSP430FR5969()
	m := testModule(t)

	p1 := For(m, model)
	if p2 := For(m, model); p2 != p1 {
		t.Error("unchanged module recompiled")
	}

	// In-place mutation (what transval does between pipeline stages)
	// must force a recompile on the next For.
	f := m.FuncByName("work")
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if c, ok := in.(*ir.Const); ok {
				c.Val++
				goto mutated
			}
		}
	}
	t.Fatal("no const found")
mutated:
	p3 := For(m, model)
	if p3 == p1 {
		t.Fatal("stale cache entry returned after mutation")
	}
	if p3.Stale() {
		t.Fatal("recompiled program still stale")
	}
	if p4 := For(m, model); p4 != p3 {
		t.Error("recompiled entry not cached")
	}

	// Fill the cache past its bound; the oldest entries are evicted and
	// compile fresh on re-request, while the map never exceeds the cap.
	for i := 0; i < cacheCap+8; i++ {
		For(testModule(t), model)
	}
	cache.Lock()
	n := len(cache.progs)
	cache.Unlock()
	if n > cacheCap {
		t.Fatalf("cache holds %d entries, cap %d", n, cacheCap)
	}
}
