package dispatch

import "schematic/internal/ir"

// The fingerprint is an FNV-1a hash over everything the compiled form
// bakes in: instruction kinds and operands, variable slots, VM/NVM
// allocation decisions, branch and call targets, checkpoint save/restore
// lists, and the shape of the variable and function tables. Anything the
// machine reads live from the IR at execution time (variable element
// counts, checkpoint kinds and flags are hashed anyway for cheapness;
// names and Init data are not — they never affect the compiled form) can
// change without invalidating the program.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type hasher struct {
	h  uint64
	ok bool
}

func newHasher() hasher { return hasher{h: fnvOffset, ok: true} }

func (s *hasher) word(v uint64) {
	for i := 0; i < 8; i++ {
		s.h ^= v & 0xff
		s.h *= fnvPrime
		v >>= 8
	}
}

func (s *hasher) int(v int)   { s.word(uint64(v)) }
func (s *hasher) i64(v int64) { s.word(uint64(v)) }
func (s *hasher) bool(v bool) {
	if v {
		s.word(1)
	} else {
		s.word(0)
	}
}

// fingerprint hashes the module through the program's identity maps.
// ok is false when the module references an entity the program does not
// know (a new variable, block, or function) — definitionally stale.
func (p *Program) fingerprint() (uint64, bool) {
	s := newHasher()
	m := p.Mod
	s.int(len(m.Globals))
	s.int(len(m.Funcs))
	slot := func(v *ir.Var) {
		sl, ok := p.slotOf[v]
		if !ok {
			s.ok = false
			return
		}
		s.word(uint64(sl))
	}
	block := func(b *ir.Block) {
		cb, ok := p.blockOf[b]
		if !ok {
			s.ok = false
			return
		}
		s.word(uint64(cb.id))
	}
	for _, f := range m.Funcs {
		cf, ok := p.fnOf[f]
		if !ok {
			return 0, false
		}
		s.word(uint64(cf.id))
		s.int(f.NumRegs)
		s.int(len(f.Locals))
		s.int(len(f.Blocks))
		for _, b := range f.Blocks {
			block(b)
			s.int(len(b.Instrs))
			for _, in := range b.Instrs {
				switch x := in.(type) {
				case *ir.Const:
					s.word(1)
					s.int(int(x.Dst))
					s.i64(x.Val)
				case *ir.BinOp:
					s.word(2)
					s.int(int(x.Op))
					s.int(int(x.Dst))
					s.int(int(x.A))
					s.int(int(x.B))
				case *ir.Load:
					s.word(3)
					s.int(int(x.Dst))
					slot(x.Var)
					s.int(int(x.Index))
					s.bool(x.HasIndex)
					s.bool(b.InVM(x.Var))
				case *ir.Store:
					s.word(4)
					s.int(int(x.Src))
					slot(x.Var)
					s.int(int(x.Index))
					s.bool(x.HasIndex)
					s.bool(b.InVM(x.Var))
				case *ir.Call:
					s.word(5)
					callee, ok := p.fnOf[x.Callee]
					if !ok {
						return 0, false
					}
					s.word(uint64(callee.id))
					s.int(int(x.Dst))
					s.bool(x.HasDst)
					s.int(len(x.Args))
					for _, a := range x.Args {
						s.int(int(a))
					}
				case *ir.Out:
					s.word(6)
					s.int(int(x.Src))
				case *ir.Br:
					s.word(7)
					s.int(int(x.Cond))
					block(x.Then)
					block(x.Else)
				case *ir.Jmp:
					s.word(8)
					block(x.Target)
				case *ir.Ret:
					s.word(9)
					s.int(int(x.Src))
					s.bool(x.HasSrc)
				case *ir.Checkpoint:
					s.word(10)
					s.int(x.ID)
					s.int(int(x.Kind))
					s.int(x.Every)
					s.bool(x.SaveAll)
					s.bool(x.RegsOnly)
					s.bool(x.RefinedRegs)
					s.int(x.LiveRegs)
					s.bool(x.Lazy)
					s.int(len(x.Save))
					for _, v := range x.Save {
						slot(v)
					}
					s.int(len(x.Restore))
					for _, v := range x.Restore {
						slot(v)
					}
				case *ir.LoopBound:
					s.word(11)
				default:
					s.word(12)
				}
				if !s.ok {
					return 0, false
				}
			}
		}
	}
	return s.h, s.ok
}
