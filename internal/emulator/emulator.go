// Package emulator executes IR programs the way the paper's ScEpTIC
// infrastructure does: at IR level, under an intermittent power supply,
// with precise energy monitoring.
//
// Power model. The platform owns a capacitor holding EB nanojoules when
// full. Every executed instruction drains its energy; when the next
// instruction does not fit, a power failure occurs: all volatile state
// (registers, call stack, VM variable contents) is lost and the capacitor
// is replenished while the device is off. The paper's experiments use the
// time between power failures (TBPF) as the control variable and set EB to
// the average energy consumed over that interval (IV-C); the harness
// performs that conversion, the emulator works in energy units throughout.
//
// Checkpoint runtimes. Checkpoint instructions carry their runtime kind:
//
//   - CkWait (SCHEMATIC, ROCKCLIMB): save volatile data, sleep until the
//     capacitor is full, restore, resume (Fig. 3). Deep sleep loses VM, so
//     restores happen at every enabled checkpoint.
//   - CkRollback (RATCHET, ALFRED): save and continue; a later power
//     failure rolls execution back to the most recent save.
//   - CkTrigger (MEMENTOS): measure the remaining energy and save only when
//     it falls below a threshold fraction of EB.
//
// Energy is split into the four categories of Fig. 6 — Computation, Save,
// Restore, Re-execution — plus the Fig. 7 sub-split of computation energy
// into VM accesses, NVM accesses, and non-memory work.
package emulator

import (
	"errors"
	"fmt"

	"schematic/internal/energy"
	"schematic/internal/ir"
)

// Poison is the value unrestored VM storage materializes with. Any
// observable poison in program output indicates a broken placement or
// allocation pass; tests rely on this.
const Poison int64 = 0x7A7A

// Config controls one emulation.
type Config struct {
	Model *energy.Model

	// VMSize is SVM in bytes. Accesses that would make the resident VM set
	// exceed it abort the run with a VM-overflow verdict.
	VMSize int

	// Intermittent enables the power-failure model; EB is the capacitor
	// energy in nJ. When Intermittent is false the program runs to
	// completion on stable power (checkpoints still execute their
	// save/restore work so overheads remain visible).
	Intermittent bool
	EB           float64

	// FailEveryCycles, when positive, additionally triggers a power
	// failure each time that many active cycles elapse since the last
	// replenishment — the literal "periodic power failures of period TBPF"
	// of the paper's emulator (IV-C). Wait-style checkpoints restart the
	// period (the capacitor is full again). Usable with or without the
	// energy model's exhaustion failures. Mutually exclusive with
	// Schedule (express the same thing as Schedules(Exhaustion(),
	// Periodic(n)) there).
	FailEveryCycles int64

	// Schedule, when non-nil, replaces the power model for intermittent
	// runs: the machine consults it at every injection point (instruction
	// boundaries, energy draws, and the before/mid/after phases of each
	// checkpoint save) and fails the supply when it says so. Capacitor
	// exhaustion is then no longer implied — compose with Exhaustion()
	// via Schedules to keep physics alongside induced failures. Ignored
	// when Intermittent is false.
	Schedule PowerSchedule

	// TriggerThreshold is the MEMENTOS trigger fraction: a CkTrigger
	// checkpoint saves when remaining energy < TriggerThreshold × EB.
	// Zero selects the default of 0.5.
	TriggerThreshold float64

	// Inputs overrides the initial values of input-annotated variables,
	// keyed by variable name. Missing entries keep the declared Init.
	Inputs map[string][]int64

	// PrewarmVM materializes every block-allocated VM variable from its
	// NVM home at boot, free of charge — the "all data already in VM"
	// precondition of continuous-power reference measurements on modules
	// without checkpoints (which would otherwise read poison).
	PrewarmVM bool

	// MaxSteps bounds total executed instructions (0 = default 500M).
	// MaxFailures bounds power failures (0 = default 10M).
	MaxSteps    int64
	MaxFailures int

	// Interpret selects the per-instruction reference interpreter instead
	// of the compiled dispatch engine. The two are observably identical —
	// same verdicts, outputs, energy ledgers, counters, and error text —
	// and the differential suite holds them to that; the interpreter
	// exists as the oracle and for debugging the compiled path.
	Interpret bool

	// Resume, when non-nil, boots the run from a previously captured
	// persistent state instead of initial NVM: the run behaves exactly
	// like the continuation of an emulation that power-failed leaving
	// that state behind. The state must have been captured from the same
	// module. Mutually exclusive with Inputs and PrewarmVM (a resumed
	// state already fixes NVM contents). Forces Interpret.
	Resume *PersistentState

	// Hook, when non-nil, observes every schedulable injection point of
	// the run together with a canonical hash of the persistent state at
	// that point (see PointVisit). The model checker in internal/verify
	// is built on Hook + Resume. Forces Interpret.
	Hook Hook

	// Observer, when non-nil, receives the full cycle-stamped event
	// stream: block entries, returns, energy charges, checkpoint
	// save/restore, sleeps, power failures, re-execution spans, poison
	// reads. A nil observer costs nothing per instruction.
	Observer Observer

	// Trace, TraceRet and OnPoison are the legacy observation callbacks,
	// kept as thin adapters over the Observer event stream (see
	// legacyObserver). Trace receives every basic block entered, with its
	// function; TraceRet fires on every function return (including
	// main's), letting a profiler mirror the call stack; OnPoison fires
	// on every read of VM storage that was never restored (a
	// transformation bug). New code should implement Observer instead.
	Trace    func(fn *ir.Func, b *ir.Block)
	TraceRet func()
	OnPoison func(v *ir.Var, fn *ir.Func, b *ir.Block)
}

// Verdict says how a run ended.
type Verdict int

const (
	// Completed: main returned.
	Completed Verdict = iota
	// Stuck: forward progress violation — repeated power failures with no
	// new progress (the endless re-execution the paper's guarantee rules
	// out).
	Stuck
	// VMOverflow: the resident VM working set exceeded SVM.
	VMOverflow
	// OutOfSteps: MaxSteps exhausted (treated as non-termination).
	OutOfSteps
	// OutOfFailures: MaxFailures exhausted — the run survived every
	// individual failure but the failure budget ran out before it
	// finished. Distinct from Stuck: the stagnation watchdogs saw
	// progress, there were just too many outages.
	OutOfFailures
)

func (v Verdict) String() string {
	switch v {
	case Completed:
		return "completed"
	case Stuck:
		return "stuck"
	case VMOverflow:
		return "vm-overflow"
	case OutOfSteps:
		return "out-of-steps"
	case OutOfFailures:
		return "out-of-failures"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Ledger is the energy account of a run, in nJ.
type Ledger struct {
	// The four categories of Fig. 6.
	Computation float64
	Save        float64
	Restore     float64
	Reexecution float64

	// Fig. 7 split of Computation.
	VMAccessEnergy  float64
	NVMAccessEnergy float64
	NoMemEnergy     float64
	VMAccesses      int64
	NVMAccesses     int64
}

// Total returns the full energy drawn from the capacitor.
func (l Ledger) Total() float64 {
	return l.Computation + l.Save + l.Restore + l.Reexecution
}

// Intermittency returns the energy spent on intermittency management.
func (l Ledger) Intermittency() float64 { return l.Save + l.Restore + l.Reexecution }

// Result reports the outcome of a run.
type Result struct {
	Verdict Verdict
	Output  []int64
	Energy  Ledger

	Cycles        int64 // cycles of first-execution work (excludes re-execution)
	TotalCycles   int64 // including re-executed work
	Steps         int64 // instructions executed, including re-execution
	PowerFailures int
	Saves         int // checkpoint save operations performed
	Restores      int // restore operations (wait-checkpoint wake-ups and post-failure recoveries)
	Sleeps        int // wait-style replenishment periods
	MaxVMBytes    int // high-water mark of resident VM bytes

	// SaveAttempts counts checkpoint executions that decided to save,
	// whether or not the save committed (torn and power-failed attempts
	// count). It is the ordinal space PointBeforeSave/PointMidSave/
	// PointAfterSave schedules address.
	SaveAttempts int64
	// InjectedFailures counts power failures induced by the schedule at
	// non-exhaustion points (PowerFailures also includes exhaustion).
	InjectedFailures int

	// UnsyncedReads counts reads of VM storage that was never restored
	// (poison). Non-zero indicates a broken transformation.
	UnsyncedReads int
}

// ErrNoMain is returned when the module lacks a main function.
var ErrNoMain = errors.New("emulator: module has no main function")

// ErrInvalidConfig is the sentinel every ConfigError unwraps to, so
// callers can test errors.Is(err, ErrInvalidConfig) without enumerating
// fields.
var ErrInvalidConfig = errors.New("emulator: invalid config")

// ConfigError reports a Config field that fails validation. Run rejects
// invalid configurations up front instead of silently applying defaults
// or misbehaving mid-run.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("emulator: invalid Config.%s: %s", e.Field, e.Reason)
}

func (e *ConfigError) Unwrap() error { return ErrInvalidConfig }

// Validate checks a Config for field-level mistakes. Zero values that
// select documented defaults (TriggerThreshold 0 → 0.5, VMSize 0 →
// unlimited, MaxSteps/MaxFailures 0 → defaults) remain valid.
func (cfg Config) Validate() error {
	if cfg.Model == nil {
		return &ConfigError{Field: "Model", Reason: "must not be nil"}
	}
	if cfg.EB < 0 {
		return &ConfigError{Field: "EB", Reason: fmt.Sprintf("must not be negative, got %g", cfg.EB)}
	}
	if cfg.Intermittent && cfg.EB <= 0 {
		return &ConfigError{Field: "EB", Reason: "intermittent run needs EB > 0"}
	}
	if cfg.TriggerThreshold < 0 || cfg.TriggerThreshold > 1 {
		return &ConfigError{Field: "TriggerThreshold",
			Reason: fmt.Sprintf("must be in (0,1] (0 selects the default), got %g", cfg.TriggerThreshold)}
	}
	if cfg.VMSize < 0 {
		return &ConfigError{Field: "VMSize", Reason: fmt.Sprintf("must not be negative (0 = unlimited), got %d", cfg.VMSize)}
	}
	if cfg.FailEveryCycles < 0 {
		return &ConfigError{Field: "FailEveryCycles", Reason: fmt.Sprintf("must not be negative, got %d", cfg.FailEveryCycles)}
	}
	if cfg.FailEveryCycles > 0 && cfg.Schedule != nil {
		return &ConfigError{Field: "Schedule",
			Reason: "mutually exclusive with FailEveryCycles; compose Schedules(Exhaustion(), Periodic(n)) instead"}
	}
	if cfg.MaxSteps < 0 {
		return &ConfigError{Field: "MaxSteps", Reason: fmt.Sprintf("must not be negative, got %d", cfg.MaxSteps)}
	}
	if cfg.MaxFailures < 0 {
		return &ConfigError{Field: "MaxFailures", Reason: fmt.Sprintf("must not be negative, got %d", cfg.MaxFailures)}
	}
	if cfg.Resume != nil {
		if len(cfg.Inputs) > 0 {
			return &ConfigError{Field: "Resume",
				Reason: "mutually exclusive with Inputs (the resumed state already fixes NVM contents)"}
		}
		if cfg.PrewarmVM {
			return &ConfigError{Field: "Resume", Reason: "mutually exclusive with PrewarmVM"}
		}
	}
	return nil
}

// Run executes the module under the given configuration.
func Run(m *ir.Module, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if m.FuncByName("main") == nil {
		return nil, ErrNoMain
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 500_000_000
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 10_000_000
	}
	if cfg.TriggerThreshold == 0 {
		cfg.TriggerThreshold = 0.5
	}
	if cfg.Hook != nil || cfg.Resume != nil {
		// State tracking and resume live in the reference interpreter
		// only; the compiled engine stays uninstrumented.
		cfg.Interpret = true
	}
	mach := newMachine(m, cfg)
	if cfg.Resume != nil {
		if err := mach.installResume(cfg.Resume); err != nil {
			return nil, err
		}
	}
	return mach.run()
}
