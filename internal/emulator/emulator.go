// Package emulator executes IR programs the way the paper's ScEpTIC
// infrastructure does: at IR level, under an intermittent power supply,
// with precise energy monitoring.
//
// Power model. The platform owns a capacitor holding EB nanojoules when
// full. Every executed instruction drains its energy; when the next
// instruction does not fit, a power failure occurs: all volatile state
// (registers, call stack, VM variable contents) is lost and the capacitor
// is replenished while the device is off. The paper's experiments use the
// time between power failures (TBPF) as the control variable and set EB to
// the average energy consumed over that interval (IV-C); the harness
// performs that conversion, the emulator works in energy units throughout.
//
// Checkpoint runtimes. Checkpoint instructions carry their runtime kind:
//
//   - CkWait (SCHEMATIC, ROCKCLIMB): save volatile data, sleep until the
//     capacitor is full, restore, resume (Fig. 3). Deep sleep loses VM, so
//     restores happen at every enabled checkpoint.
//   - CkRollback (RATCHET, ALFRED): save and continue; a later power
//     failure rolls execution back to the most recent save.
//   - CkTrigger (MEMENTOS): measure the remaining energy and save only when
//     it falls below a threshold fraction of EB.
//
// Energy is split into the four categories of Fig. 6 — Computation, Save,
// Restore, Re-execution — plus the Fig. 7 sub-split of computation energy
// into VM accesses, NVM accesses, and non-memory work.
package emulator

import (
	"errors"
	"fmt"

	"schematic/internal/energy"
	"schematic/internal/ir"
)

// Poison is the value unrestored VM storage materializes with. Any
// observable poison in program output indicates a broken placement or
// allocation pass; tests rely on this.
const Poison int64 = 0x7A7A

// Config controls one emulation.
type Config struct {
	Model *energy.Model

	// VMSize is SVM in bytes. Accesses that would make the resident VM set
	// exceed it abort the run with a VM-overflow verdict.
	VMSize int

	// Intermittent enables the power-failure model; EB is the capacitor
	// energy in nJ. When Intermittent is false the program runs to
	// completion on stable power (checkpoints still execute their
	// save/restore work so overheads remain visible).
	Intermittent bool
	EB           float64

	// FailEveryCycles, when positive, additionally triggers a power
	// failure each time that many active cycles elapse since the last
	// replenishment — the literal "periodic power failures of period TBPF"
	// of the paper's emulator (IV-C). Wait-style checkpoints restart the
	// period (the capacitor is full again). Usable with or without the
	// energy model's exhaustion failures.
	FailEveryCycles int64

	// TriggerThreshold is the MEMENTOS trigger fraction: a CkTrigger
	// checkpoint saves when remaining energy < TriggerThreshold × EB.
	// Zero selects the default of 0.5.
	TriggerThreshold float64

	// Inputs overrides the initial values of input-annotated variables,
	// keyed by variable name. Missing entries keep the declared Init.
	Inputs map[string][]int64

	// PrewarmVM materializes every block-allocated VM variable from its
	// NVM home at boot, free of charge — the "all data already in VM"
	// precondition of continuous-power reference measurements on modules
	// without checkpoints (which would otherwise read poison).
	PrewarmVM bool

	// MaxSteps bounds total executed instructions (0 = default 500M).
	// MaxFailures bounds power failures (0 = default 10M).
	MaxSteps    int64
	MaxFailures int

	// Observer, when non-nil, receives the full cycle-stamped event
	// stream: block entries, returns, energy charges, checkpoint
	// save/restore, sleeps, power failures, re-execution spans, poison
	// reads. A nil observer costs nothing per instruction.
	Observer Observer

	// Trace, TraceRet and OnPoison are the legacy observation callbacks,
	// kept as thin adapters over the Observer event stream (see
	// legacyObserver). Trace receives every basic block entered, with its
	// function; TraceRet fires on every function return (including
	// main's), letting a profiler mirror the call stack; OnPoison fires
	// on every read of VM storage that was never restored (a
	// transformation bug). New code should implement Observer instead.
	Trace    func(fn *ir.Func, b *ir.Block)
	TraceRet func()
	OnPoison func(v *ir.Var, fn *ir.Func, b *ir.Block)
}

// Verdict says how a run ended.
type Verdict int

const (
	// Completed: main returned.
	Completed Verdict = iota
	// Stuck: forward progress violation — repeated power failures with no
	// new progress (the endless re-execution the paper's guarantee rules
	// out).
	Stuck
	// VMOverflow: the resident VM working set exceeded SVM.
	VMOverflow
	// OutOfSteps: MaxSteps exhausted (treated as non-termination).
	OutOfSteps
)

func (v Verdict) String() string {
	switch v {
	case Completed:
		return "completed"
	case Stuck:
		return "stuck"
	case VMOverflow:
		return "vm-overflow"
	case OutOfSteps:
		return "out-of-steps"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Ledger is the energy account of a run, in nJ.
type Ledger struct {
	// The four categories of Fig. 6.
	Computation float64
	Save        float64
	Restore     float64
	Reexecution float64

	// Fig. 7 split of Computation.
	VMAccessEnergy  float64
	NVMAccessEnergy float64
	NoMemEnergy     float64
	VMAccesses      int64
	NVMAccesses     int64
}

// Total returns the full energy drawn from the capacitor.
func (l Ledger) Total() float64 {
	return l.Computation + l.Save + l.Restore + l.Reexecution
}

// Intermittency returns the energy spent on intermittency management.
func (l Ledger) Intermittency() float64 { return l.Save + l.Restore + l.Reexecution }

// Result reports the outcome of a run.
type Result struct {
	Verdict Verdict
	Output  []int64
	Energy  Ledger

	Cycles        int64 // cycles of first-execution work (excludes re-execution)
	TotalCycles   int64 // including re-executed work
	Steps         int64 // instructions executed, including re-execution
	PowerFailures int
	Saves         int // checkpoint save operations performed
	Restores      int // restore operations (wait-checkpoint wake-ups and post-failure recoveries)
	Sleeps        int // wait-style replenishment periods
	MaxVMBytes    int // high-water mark of resident VM bytes

	// UnsyncedReads counts reads of VM storage that was never restored
	// (poison). Non-zero indicates a broken transformation.
	UnsyncedReads int
}

// ErrNoMain is returned when the module lacks a main function.
var ErrNoMain = errors.New("emulator: module has no main function")

// Run executes the module under the given configuration.
func Run(m *ir.Module, cfg Config) (*Result, error) {
	if cfg.Model == nil {
		return nil, errors.New("emulator: Config.Model is nil")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if m.FuncByName("main") == nil {
		return nil, ErrNoMain
	}
	if cfg.Intermittent && cfg.EB <= 0 {
		return nil, errors.New("emulator: intermittent run needs EB > 0")
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 500_000_000
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 10_000_000
	}
	if cfg.TriggerThreshold == 0 {
		cfg.TriggerThreshold = 0.5
	}
	mach := newMachine(m, cfg)
	return mach.run()
}
