package emulator

import (
	"testing"
	"testing/quick"

	"schematic/internal/energy"
	"schematic/internal/ir"
)

// loopProgram builds a module that sums 0..n-1 into acc and outputs the
// result, with a wait-style checkpoint in the loop body firing every
// `every` iterations (every < 0 omits the body checkpoint entirely), and
// acc allocated to VM when vmAcc is set.
func loopProgram(t testing.TB, n int, every int, vmAcc bool) *ir.Module {
	t.Helper()
	m := &ir.Module{Name: "loop"}
	acc := m.NewGlobal("acc", 1)
	idx := m.NewGlobal("i", 1)
	f := m.NewFunc("main", nil, false)

	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	done := f.NewBlock("done")

	b := ir.NewBuilder(f).At(entry)
	b.Emit(&ir.Checkpoint{ID: 0, Kind: ir.CkWait}) // boot checkpoint
	zero := b.Const(0)
	b.Store(acc, zero)
	b.Store(idx, zero)
	b.Jmp(head)

	b.At(head)
	i := b.Load(idx)
	lim := b.Const(int64(n))
	c := b.Bin(ir.OpLt, i, lim)
	b.Br(c, body, done)

	b.At(body)
	a := b.Load(acc)
	i2 := b.Load(idx)
	a2 := b.Bin(ir.OpAdd, a, i2)
	b.Store(acc, a2)
	if every >= 0 {
		ck := &ir.Checkpoint{ID: 1, Kind: ir.CkWait, Every: every}
		if vmAcc {
			ck.Save = []*ir.Var{acc}
			ck.Restore = []*ir.Var{acc}
		}
		b.Emit(ck)
	}
	one := b.Const(1)
	i3 := b.Bin(ir.OpAdd, i2, one)
	b.Store(idx, i3)
	b.Jmp(head)

	b.At(done)
	out := b.Load(acc)
	b.Out(out)
	b.Ret()

	if vmAcc {
		alloc := map[*ir.Var]bool{acc: true}
		for _, blk := range f.Blocks {
			blk.Alloc = alloc
		}
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func baseCfg() Config {
	return Config{Model: energy.MSP430FR5969(), VMSize: 2048}
}

func TestContinuousRun(t *testing.T) {
	m := loopProgram(t, 10, -1, false)
	res, err := Run(m, baseCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Verdict != Completed {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if len(res.Output) != 1 || res.Output[0] != 45 {
		t.Errorf("output = %v, want [45]", res.Output)
	}
	if res.Cycles == 0 || res.Energy.Computation == 0 {
		t.Errorf("no work recorded: %+v", res)
	}
	if res.Energy.Reexecution != 0 || res.PowerFailures != 0 {
		t.Errorf("continuous run saw failures: %+v", res)
	}
	if res.Energy.VMAccesses != 0 {
		t.Errorf("all-NVM program recorded VM accesses")
	}
}

func TestVMAllocationSavesEnergy(t *testing.T) {
	nvmRes, err := Run(loopProgram(t, 50, -1, false), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	vmRes, err := Run(loopProgram(t, 50, -1, true), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if vmRes.Output[0] != nvmRes.Output[0] {
		t.Fatalf("outputs differ: %v vs %v", vmRes.Output, nvmRes.Output)
	}
	if vmRes.Energy.Computation >= nvmRes.Energy.Computation {
		t.Errorf("VM computation energy %.1f should beat NVM %.1f",
			vmRes.Energy.Computation, nvmRes.Energy.Computation)
	}
	if vmRes.Energy.VMAccesses == 0 {
		t.Errorf("VM allocation recorded no VM accesses")
	}
	if vmRes.UnsyncedReads != 0 {
		t.Errorf("unsynced reads = %d", vmRes.UnsyncedReads)
	}
}

func TestIntermittentWaitCompletes(t *testing.T) {
	m := loopProgram(t, 100, 1, true)
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 400 // tight but enough for one iteration + checkpoint
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Completed {
		t.Fatalf("verdict = %v (failures=%d saves=%d)", res.Verdict, res.PowerFailures, res.Saves)
	}
	if res.Output[0] != 4950 {
		t.Errorf("output = %v, want [4950]", res.Output)
	}
	if res.Energy.Reexecution != 0 {
		t.Errorf("wait-style run should have zero re-execution, got %.1f", res.Energy.Reexecution)
	}
	if res.Saves == 0 || res.Sleeps == 0 {
		t.Errorf("expected checkpoint activity: %+v", res)
	}
	if res.UnsyncedReads != 0 {
		t.Errorf("unsynced reads = %d", res.UnsyncedReads)
	}
}

func TestConditionalCheckpointEvery(t *testing.T) {
	m := loopProgram(t, 90, 3, true)
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 1200
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Completed || res.Output[0] != 4005 {
		t.Fatalf("verdict=%v output=%v", res.Verdict, res.Output)
	}
	// Boot checkpoint + every 3rd iteration of 90.
	want := 1 + 90/3
	if res.Saves != want {
		t.Errorf("saves = %d, want %d", res.Saves, want)
	}
}

func TestStuckWithoutCheckpoints(t *testing.T) {
	m := loopProgram(t, 1000, -1, false)
	// Remove the boot checkpoint so there is no recovery point at all.
	entry := m.FuncByName("main").Entry()
	entry.Instrs = entry.Instrs[1:]
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 2000 // far below total consumption
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Stuck {
		t.Fatalf("verdict = %v, want stuck (failures=%d)", res.Verdict, res.PowerFailures)
	}
	if res.PowerFailures < maxStagnation {
		t.Errorf("failures = %d, want >= %d", res.PowerFailures, maxStagnation)
	}
}

// ratchetLoopProgram builds the summation loop with RATCHET-style
// register-only rollback checkpoints placed so that every NVM
// write-after-read dependency is broken: the checkpoint sits between the
// loads and the stores of an iteration, so re-executed stores use
// snapshotted register values and are idempotent.
func ratchetLoopProgram(t testing.TB, n int) *ir.Module {
	t.Helper()
	m := &ir.Module{Name: "ratchetloop"}
	acc := m.NewGlobal("acc", 1)
	idx := m.NewGlobal("i", 1)
	f := m.NewFunc("main", nil, false)

	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	done := f.NewBlock("done")

	b := ir.NewBuilder(f).At(entry)
	b.Emit(&ir.Checkpoint{ID: 0, Kind: ir.CkRollback, RegsOnly: true})
	zero := b.Const(0)
	b.Store(acc, zero)
	b.Store(idx, zero)
	b.Jmp(head)

	b.At(head)
	i := b.Load(idx)
	lim := b.Const(int64(n))
	c := b.Bin(ir.OpLt, i, lim)
	b.Br(c, body, done)

	b.At(body)
	a := b.Load(acc)
	i2 := b.Load(idx)
	a2 := b.Bin(ir.OpAdd, a, i2)
	one := b.Const(1)
	i3 := b.Bin(ir.OpAdd, i2, one)
	// Break the WAR dependencies on acc and i before writing them back.
	b.Emit(&ir.Checkpoint{ID: 1, Kind: ir.CkRollback, RegsOnly: true})
	b.Store(acc, a2)
	b.Store(idx, i3)
	b.Jmp(head)

	b.At(done)
	out := b.Load(acc)
	b.Out(out)
	b.Ret()

	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestRollbackReexecution(t *testing.T) {
	// Rollback checkpoints every iteration: the program completes, paying
	// re-execution energy after every failure.
	m := ratchetLoopProgram(t, 200)
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 1500
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Completed {
		t.Fatalf("verdict = %v (failures=%d)", res.Verdict, res.PowerFailures)
	}
	if res.Output[0] != 19900 {
		t.Errorf("output = %v, want [19900]", res.Output)
	}
	if res.PowerFailures == 0 {
		t.Errorf("expected power failures with EB=1500")
	}
	if res.Energy.Reexecution == 0 {
		t.Errorf("rollback run should pay re-execution energy")
	}
	if res.Sleeps != 0 {
		t.Errorf("rollback runtime should not sleep, got %d", res.Sleeps)
	}
}

func TestTriggerCheckpointing(t *testing.T) {
	m := loopProgram(t, 200, 1, true)
	for _, ck := range ir.Checkpoints(m) {
		ck.Kind = ir.CkTrigger
		ck.Every = 0
		ck.SaveAll = true
	}
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 3000
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Completed || res.Output[0] != 19900 {
		t.Fatalf("verdict=%v output=%v failures=%d", res.Verdict, res.Output, res.PowerFailures)
	}
	// Trigger points fire only below threshold: far fewer saves than the
	// 201 checkpoint executions.
	if res.Saves == 0 || res.Saves > 100 {
		t.Errorf("saves = %d, want a small positive count", res.Saves)
	}
}

func TestVMOverflow(t *testing.T) {
	m := loopProgram(t, 10, 0, true)
	cfg := baseCfg()
	cfg.VMSize = 1 // a scalar needs 2 bytes
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VMOverflow {
		t.Errorf("verdict = %v, want vm-overflow", res.Verdict)
	}
}

func TestPoisonDetection(t *testing.T) {
	// acc allocated to VM but the checkpoint neither saves nor restores it:
	// after the first sleep, reads see poison.
	m := loopProgram(t, 10, 1, true)
	for _, ck := range ir.Checkpoints(m) {
		ck.Save = nil
		ck.Restore = nil
	}
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 5000
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnsyncedReads == 0 {
		t.Errorf("expected poison reads for a broken save/restore set")
	}
	if len(res.Output) == 1 && res.Output[0] == 45 {
		t.Errorf("broken pass still produced the right answer — poison not applied")
	}
}

func TestInputsOverride(t *testing.T) {
	src := `module in
input global data[4] = {1, 1, 1, 1}

func void main() regs 6 {
entry:
  r0 = const 0
  r1 = const 0
  jmp head
head:
  r2 = const 4
  r3 = lt r1, r2
  br r3, body, done
body:
  r4 = load data[r1]
  r0 = add r0, r4
  r5 = const 1
  r1 = add r1, r5
  jmp head
done:
  out r0
  ret
}
`
	m := ir.MustParse(src)
	cfg := baseCfg()
	cfg.Inputs = map[string][]int64{"data": {10, 20, 30, 40}}
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 100 {
		t.Errorf("output = %v, want [100]", res.Output)
	}
	// Without override, declared init applies.
	res2, err := Run(m, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Output[0] != 4 {
		t.Errorf("output = %v, want [4]", res2.Output)
	}
}

func TestTraceCallback(t *testing.T) {
	m := loopProgram(t, 3, 0, false)
	var names []string
	cfg := baseCfg()
	cfg.Trace = func(fn *ir.Func, b *ir.Block) { names = append(names, b.Name) }
	if _, err := Run(m, cfg); err != nil {
		t.Fatal(err)
	}
	// entry, head, (body, head) ×3, done
	if len(names) != 2+3*2+1 {
		t.Errorf("trace = %v", names)
	}
	if names[0] != "entry" || names[len(names)-1] != "done" {
		t.Errorf("trace endpoints wrong: %v", names)
	}
}

func TestOutputDeterminismUnderIntermittency(t *testing.T) {
	// Property: for any EB large enough to make progress, a wait-style
	// checkpointed program produces exactly the continuous-power output.
	cont, err := Run(loopProgram(t, 60, 1, true), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint16) bool {
		eb := 380 + float64(seed%4000)
		cfg := baseCfg()
		cfg.Intermittent = true
		cfg.EB = eb
		res, err := Run(loopProgram(t, 60, 1, true), cfg)
		if err != nil {
			return false
		}
		return res.Verdict == Completed &&
			len(res.Output) == 1 &&
			res.Output[0] == cont.Output[0] &&
			res.Energy.Reexecution == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRunConfigErrors(t *testing.T) {
	m := loopProgram(t, 3, 0, false)
	if _, err := Run(m, Config{}); err == nil {
		t.Errorf("Run accepted nil model")
	}
	cfg := baseCfg()
	cfg.Intermittent = true
	if _, err := Run(m, cfg); err == nil {
		t.Errorf("Run accepted intermittent without EB")
	}
	empty := &ir.Module{Name: "none"}
	if _, err := Run(empty, baseCfg()); err == nil {
		t.Errorf("Run accepted module without main")
	}
}

func TestOutOfSteps(t *testing.T) {
	src := `module spin
func void main() regs 1 {
entry:
  jmp entry
}
`
	m := ir.MustParse(src)
	cfg := baseCfg()
	cfg.MaxSteps = 1000
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != OutOfSteps {
		t.Errorf("verdict = %v, want out-of-steps", res.Verdict)
	}
}

func TestCallsAndReturns(t *testing.T) {
	src := `module calls
global total

func int square(x) regs 2 {
entry:
  r1 = mul r0, r0
  ret r1
}

func void main() regs 6 {
entry:
  r0 = const 7
  r1 = call square(r0)
  store total, r1
  r2 = load total
  out r2
  ret
}
`
	m := ir.MustParse(src)
	res, err := Run(m, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Completed || len(res.Output) != 1 || res.Output[0] != 49 {
		t.Errorf("output = %v verdict = %v", res.Output, res.Verdict)
	}
}

func TestRuntimeErrors(t *testing.T) {
	outOfRange := `module bad
global a[4]
func void main() regs 2 {
entry:
  r0 = const 9
  r1 = load a[r0]
  out r1
  ret
}
`
	if _, err := Run(ir.MustParse(outOfRange), baseCfg()); err == nil {
		t.Errorf("expected out-of-range error")
	}
	divZero := `module bad2
func void main() regs 3 {
entry:
  r0 = const 1
  r1 = const 0
  r2 = div r0, r1
  out r2
  ret
}
`
	if _, err := Run(ir.MustParse(divZero), baseCfg()); err == nil {
		t.Errorf("expected division-by-zero error")
	}
}

func TestLedgerTotals(t *testing.T) {
	m := loopProgram(t, 40, 1, true)
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 600
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Energy
	if l.Total() != l.Computation+l.Save+l.Restore+l.Reexecution {
		t.Errorf("Total() inconsistent")
	}
	if l.Intermittency() != l.Save+l.Restore+l.Reexecution {
		t.Errorf("Intermittency() inconsistent")
	}
	// Fig. 7 sub-split stays within computation.
	if l.VMAccessEnergy+l.NVMAccessEnergy+l.NoMemEnergy > l.Computation+1e-6 {
		t.Errorf("sub-split exceeds computation: %v + %v + %v > %v",
			l.VMAccessEnergy, l.NVMAccessEnergy, l.NoMemEnergy, l.Computation)
	}
}

func TestPeriodicTBPFMode(t *testing.T) {
	// A RATCHET-style program under literal periodic failures: it
	// completes and the failure count tracks total-cycles / TBPF.
	// The failure phase is deterministic, so whether a failure lands on a
	// checkpoint boundary (zero loss) or mid-segment (re-execution)
	// depends on the period; sweep a few and require the totals to behave.
	sawReexec := false
	for _, tbpf := range []int64{1987, 2100, 2263} {
		m := ratchetLoopProgram(t, 300)
		cfg := baseCfg()
		cfg.Intermittent = true
		cfg.EB = 1e9 // energy never binds: failures come from the period alone
		cfg.FailEveryCycles = tbpf
		res, err := Run(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Completed || res.Output[0] != 44850 {
			t.Fatalf("tbpf %d: verdict=%v output=%v", tbpf, res.Verdict, res.Output)
		}
		if res.PowerFailures == 0 {
			t.Fatalf("tbpf %d: no periodic failures occurred", tbpf)
		}
		approx := res.TotalCycles / tbpf
		if d := res.PowerFailures - int(approx); d < -2 || d > 2 {
			t.Errorf("tbpf %d: failures = %d, want ≈ %d (total cycles %d)",
				tbpf, res.PowerFailures, approx, res.TotalCycles)
		}
		if res.Energy.Reexecution > 0 {
			sawReexec = true
		}
	}
	if !sawReexec {
		t.Errorf("no period produced mid-segment failures with re-execution")
	}
}

func TestPeriodicModeWaitCheckpointsResetPhase(t *testing.T) {
	// A wait-style program whose inter-checkpoint segments are shorter
	// than the period never observes a failure: each sleep restarts TBPF.
	m := loopProgram(t, 50, 1, true)
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 1e9
	cfg.FailEveryCycles = 400 // one iteration plus checkpoint is well under this
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Completed || res.Output[0] != 1225 {
		t.Fatalf("verdict=%v output=%v failures=%d", res.Verdict, res.Output, res.PowerFailures)
	}
	if res.PowerFailures != 0 {
		t.Errorf("failures = %d, want 0 (sleeps reset the period)", res.PowerFailures)
	}
}
