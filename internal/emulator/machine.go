package emulator

import (
	"errors"
	"fmt"

	"schematic/internal/emulator/dispatch"
	"schematic/internal/ir"
)

// errInterrupt aborts the current instruction after a power failure or a
// closing verdict occurred mid-execution; the machine state has already
// been redirected.
var errInterrupt = errors.New("emulator: instruction interrupted")

// maxStagnation is the number of consecutive power failures without new
// forward progress after which the run is declared stuck. The power model
// is deterministic, so a genuinely trapped execution stagnates immediately;
// the slack tolerates trigger-style checkpoints firing late.
const maxStagnation = 8

type frame struct {
	fn      *ir.Func
	block   *ir.Block
	cb      *dispatch.Block // compiled counterpart of block
	pc      int
	regs    []int64
	retReg  ir.Reg
	wantRet bool
}

type snapshot struct {
	frames []frame // deep copies
	// vmSlots/vmData are the VM image to rebuild on rollback, deduplicated,
	// in first-appearance order of the restore list — a deterministic
	// order, so restore charging and VM residency replay identically.
	vmSlots  []int32
	vmData   [][]int64
	outLen   int
	done     int64
	lazy     bool
	site     int     // checkpoint site that took the snapshot
	restores []int32 // slots whose restore is charged on rollback
}

type machine struct {
	mod   *ir.Module
	prog  *dispatch.Program
	cfg   Config
	res   Result
	capEn float64 // remaining capacitor energy

	// obs is the resolved effective observer (explicit Observer plus the
	// legacy-callback adapter); nil on the unobserved fast path. Every
	// emission site guards on nil so an unobserved run constructs no
	// events at all.
	obs Observer
	// curSite is the checkpoint site currently executing, -1 outside
	// execCheckpoint; save/restore charges are attributed to it.
	curSite int
	// inReexec/reexecSite track the open re-execution span: work repeated
	// between a recovery point and the previous high-water mark.
	inReexec   bool
	reexecSite int

	// Variable storage is indexed by the program's slot table: nvm holds
	// every variable's persistent home; vm[slot] is non-nil while the
	// variable is VM-resident. pending marks VM variables whose
	// post-rollback restore cost has not been charged yet (ALFRED's
	// deferred restoration); dirty marks VM variables written since their
	// last save.
	nvm     [][]int64
	vm      [][]int64
	pending []bool
	dirty   []bool
	// vmSpare recycles evicted VM arrays slot-by-slot: clearVM parks each
	// resident array here instead of dropping it, and the next
	// materialization of the same slot reuses it (same variable, same
	// size). Recovery-heavy intermittent runs would otherwise reallocate
	// the whole working set on every power failure.
	vmSpare [][]int64
	// seen is a per-machine scratch bitmap over slots (snapshot dedup).
	seen []bool
	// slotScratch1/slotScratch2 back the checkpoint runtimes' save and
	// restore sets: saveSet fills the first, residentSlots/restoreSet the
	// second. The sets live only for the duration of one checkpoint
	// execution (takeSnapshot copies what it keeps), so two buffers cover
	// every runtime without aliasing.
	slotScratch1 []int32
	slotScratch2 []int32
	// counters holds conditional-checkpoint iteration counters; they live
	// in NVM and survive power failures (Algorithm 1).
	counters map[int]int64

	frames []frame
	out    []int64
	// regPool recycles register arrays across call/return pairs on the
	// fast path; entries are zeroed on reuse, so a pooled frame is
	// indistinguishable from a freshly allocated one.
	regPool [][]int64

	done     int64 // logical progress index along the execution
	furthest int64 // high-water mark of done
	snap     *snapshot
	// spareSnap is the previous recovery point, kept as a shell whose
	// buffers the next takeSnapshot cannibalizes (ping-pong). Safe because
	// nothing aliases a snapshot's storage: restores deep-copy out of it,
	// and it is only recycled once a newer snapshot has replaced it.
	spareSnap        *snapshot
	stagnation       int
	lastFailFurthest int64
	// Snapshot-progress watchdog (paper §VI: detect restarting "from the
	// same checkpoint twice"): recovery points must eventually advance
	// past the furthest previously snapshotted position, or the execution
	// is livelocked even if individual failures jitter.
	maxSnapDone    int64
	snapStagnation int

	halted  bool // a final verdict other than Completed has been reached
	vmBytes int

	// cyclesSincePower counts active cycles since the last replenishment,
	// for the periodic-TBPF failure mode.
	cyclesSincePower int64

	// exhaust/sched are the split of the run's resolved PowerSchedule:
	// exhaust keeps capacitor physics as an inline comparison on the hot
	// charge path, sched holds whatever else is scheduled (nil on default
	// runs, so per-instruction probing costs nothing).
	exhaust bool
	sched   PowerSchedule

	// track enables incremental persistent-state hashing (Config.Hook):
	// every NVM write, counter bump, and snapshot commit updates the
	// lanes below so each injection point's state hash costs O(1).
	track     bool
	hook      Hook
	captureFn func() *PersistentState
	// nvmLane/ctrLane are commutative 128-bit sums over per-cell hashes
	// (order-independent, incrementally updated); snapLane is the
	// sequential hash of the committed snapshot + output prefix,
	// recomputed only when a snapshot commits.
	nvmLane1, nvmLane2   uint64
	ctrLane1, ctrLane2   uint64
	snapLane1, snapLane2 uint64
}

func newMachine(m *ir.Module, cfg Config) *machine {
	prog := dispatch.For(m, cfg.Model)
	n := len(prog.Vars)
	mc := &machine{
		mod:      m,
		prog:     prog,
		cfg:      cfg,
		obs:      observerFor(cfg),
		curSite:  -1,
		nvm:      make([][]int64, n),
		vm:       make([][]int64, n),
		pending:  make([]bool, n),
		dirty:    make([]bool, n),
		vmSpare:  make([][]int64, n),
		seen:     make([]bool, n),
		counters: map[int]int64{},
		capEn:    cfg.EB,
	}
	mc.exhaust, mc.sched = splitExhaustion(resolveSchedule(cfg))
	mc.initNVM()
	if cfg.PrewarmVM {
		mc.prewarmVM()
	}
	mc.bootFrames()
	if cfg.Hook != nil {
		mc.track = true
		mc.hook = cfg.Hook
		mc.captureFn = mc.captureState
		mc.recomputeLanes()
	}
	return mc
}

// slot resolves a variable's storage slot. The program's fingerprint
// validation guarantees every variable the module references is in the
// slot table, so a miss is an invariant violation, not a user error.
func (mc *machine) slot(v *ir.Var) int32 {
	s, ok := mc.prog.SlotOf(v)
	if !ok {
		panic(fmt.Sprintf("emulator: variable %s missing from compiled slot table (module mutated mid-run?)", v.Name))
	}
	return s
}

// prewarmVM materializes every block-allocated VM variable from its NVM
// home before execution starts, free of charge — the "all data already
// in VM" precondition of reference measurements. Without it a module
// that allocates variables to VM but has no checkpoints (nothing to
// restore them) would read poison. Variables are visited per block in
// the deterministic name order, so an overflowing prewarm always
// overflows on the same variable.
func (mc *machine) prewarmVM() {
	for _, f := range mc.mod.Funcs {
		for _, b := range f.Blocks {
			if len(b.Alloc) == 0 {
				continue
			}
			for _, slot := range mc.prog.NameOrder {
				v := mc.prog.Vars[slot]
				if !b.InVM(v) || mc.vm[slot] != nil {
					continue
				}
				if !mc.addVMResident(slot, append([]int64(nil), mc.nvm[slot]...)) {
					return
				}
			}
		}
	}
}

// initNVM loads every variable's NVM home with its initial data, applying
// input overrides. Runs once per emulation: NVM persists across failures.
func (mc *machine) initNVM() {
	for slot, v := range mc.prog.Vars {
		data := make([]int64, v.Elems)
		copy(data, v.Init)
		if in, ok := mc.cfg.Inputs[v.Name]; ok && v.Input {
			copy(data, in)
		}
		mc.nvm[slot] = data
	}
}

func (mc *machine) bootFrames() {
	mainFn := mc.mod.FuncByName("main")
	cf := mc.prog.FuncOf(mainFn)
	mc.frames = []frame{{
		fn:    mainFn,
		block: mainFn.Entry(),
		cb:    cf.Entry,
		regs:  make([]int64, mainFn.NumRegs),
	}}
	if mc.obs != nil {
		mc.emit(Event{Kind: EvBlockEnter, Fn: mainFn, Block: mainFn.Entry(), Call: true})
	}
}

func (mc *machine) top() *frame { return &mc.frames[len(mc.frames)-1] }

// newRegs returns a zeroed register array of the given size, reusing a
// pooled one when it fits.
func (mc *machine) newRegs(n int) []int64 {
	if l := len(mc.regPool); l > 0 {
		r := mc.regPool[l-1]
		if cap(r) >= n {
			mc.regPool = mc.regPool[:l-1]
			r = r[:n]
			for i := range r {
				r[i] = 0
			}
			return r
		}
	}
	return make([]int64, n)
}

// emit stamps the event with the current cycle and step counters and
// hands it to the observer. Callers guard on mc.obs != nil so the
// unobserved fast path constructs no Event values.
func (mc *machine) emit(e Event) {
	e.Cycle = mc.res.TotalCycles
	e.Step = mc.res.Steps
	mc.obs.Event(e)
}

// run drives the machine until a verdict is reached. The compiled
// dispatch engine is the default; Config.Interpret selects the
// per-instruction reference interpreter (the differential oracle).
func (mc *machine) run() (*Result, error) {
	if mc.cfg.Interpret {
		return mc.runInterpreted()
	}
	return mc.runCompiled()
}

func (mc *machine) runInterpreted() (*Result, error) {
	for !mc.halted {
		if mc.res.Steps >= mc.cfg.MaxSteps {
			mc.close(OutOfSteps)
			break
		}
		finished, err := mc.step()
		if err != nil {
			return nil, err
		}
		if finished {
			mc.res.Verdict = Completed
			break
		}
	}
	mc.res.Output = mc.out
	return &mc.res, nil
}

// chargeKind selects the ledger bucket of a charge. The access kinds are
// computation charges that additionally feed the Fig. 7 sub-split.
type chargeKind int

const (
	chComp chargeKind = iota
	chVMAcc
	chNVMAcc
	chSave
	chRestore
)

// charge attempts to draw e nJ from the capacitor. It returns false when a
// power failure occurs instead (intermittent mode only); the caller must
// then abandon the current operation.
func (mc *machine) charge(e float64, kind chargeKind) bool {
	if mc.exhaust && mc.capEn+chargeEpsilon < e {
		return false
	}
	if mc.sched != nil && mc.sched.Fail(mc.probe(PointCharge, mc.res.Steps, e)) {
		mc.induce(PointCharge, mc.curSite, mc.res.Steps)
		return false
	}
	mc.capEn -= e
	var class ChargeClass
	switch kind {
	case chSave:
		mc.res.Energy.Save += e
		class = ChargeSave
	case chRestore:
		mc.res.Energy.Restore += e
		class = ChargeRestore
	default:
		if mc.done < mc.furthest {
			mc.res.Energy.Reexecution += e
			class = ChargeReexec
		} else {
			mc.res.Energy.Computation += e
			switch kind {
			case chVMAcc:
				mc.res.Energy.VMAccessEnergy += e
				mc.res.Energy.VMAccesses++
				class = ChargeVMAccess
			case chNVMAcc:
				mc.res.Energy.NVMAccessEnergy += e
				mc.res.Energy.NVMAccesses++
				class = ChargeNVMAccess
			default:
				class = ChargeCompute
			}
		}
	}
	if mc.obs != nil {
		ev := Event{Kind: EvCharge, Class: class, Energy: e, Site: mc.chargeSite(class)}
		if len(mc.frames) > 0 {
			fr := mc.top()
			ev.Fn, ev.Block = fr.fn, fr.block
		}
		mc.emit(ev)
	}
	return true
}

// chargeSite resolves the checkpoint site a charge is attributed to:
// re-execution belongs to the site execution resumed from, save/restore
// work to the checkpoint currently executing (or, for post-failure
// recovery, the snapshot's site); -1 means boot / no site.
func (mc *machine) chargeSite(class ChargeClass) int {
	if class == ChargeReexec {
		if mc.snap != nil {
			return mc.snap.site
		}
		return -1
	}
	if mc.curSite >= 0 {
		return mc.curSite
	}
	if mc.snap != nil {
		return mc.snap.site
	}
	return -1
}

// probe assembles the machine state handed to the schedule at an
// injection point. Site is the checkpoint currently executing (-1
// elsewhere), which is exactly the save site for the save-phase points.
func (mc *machine) probe(kind PointKind, occurrence int64, energy float64) Probe {
	return Probe{
		Kind:             kind,
		Step:             mc.res.Steps,
		Cycle:            mc.res.TotalCycles,
		CyclesSincePower: mc.cyclesSincePower,
		Occurrence:       occurrence,
		Site:             mc.curSite,
		Energy:           energy,
		Remaining:        mc.capEn,
		Failures:         mc.res.PowerFailures,
	}
}

// induce records a schedule-induced power failure: the injection counter
// and, for observers, an EvInjection immediately before the
// EvPowerFailure the caller triggers. Exhaustion failures do not pass
// through here — they are physics, not injections.
func (mc *machine) induce(kind PointKind, site int, seq int64) {
	mc.res.InjectedFailures++
	if mc.obs != nil {
		mc.emit(Event{Kind: EvInjection, Point: kind, Seq: seq, Site: site, CapEnergy: mc.capEn})
	}
}

// probeSave consults the schedule at one of the save-phase injection
// points, addressed by the save-attempt ordinal. True means the supply
// dies there; the caller must trigger the power failure.
func (mc *machine) probeSave(kind PointKind, site int) bool {
	if mc.hook != nil {
		mc.visitPoint(kind, mc.res.SaveAttempts)
	}
	if mc.sched == nil {
		return false
	}
	if !mc.sched.Fail(mc.probe(kind, mc.res.SaveAttempts, 0)) {
		return false
	}
	mc.induce(kind, site, mc.res.SaveAttempts)
	return true
}

// chargeAccess is charge for a memory access, feeding the Fig. 7
// sub-split when the work is first-execution computation.
func (mc *machine) chargeAccess(e float64, space ir.Space) bool {
	if space == ir.VM {
		return mc.charge(e, chVMAcc)
	}
	return mc.charge(e, chNVMAcc)
}

// step executes one instruction the reference way: a type switch over
// the live IR with costs computed on the fly. It returns true when main
// has returned. The compiled engine (stepCompiled/execBatch) must stay
// bit-identical to this function.
func (mc *machine) step() (bool, error) {
	fr := mc.top()
	if fr.pc >= len(fr.block.Instrs) {
		return false, fmt.Errorf("emulator: %s.%s: fell off block end", fr.fn.Name, fr.block.Name)
	}
	in := fr.block.Instrs[fr.pc]
	mc.res.Steps++

	// Instruction-boundary injection point: periodic TBPF failures,
	// trace/random/stride schedules. The probe precedes the instruction's
	// energy draw, so the instruction about to run is the one lost.
	if mc.hook != nil {
		mc.visitPoint(PointStep, mc.res.Steps)
	}
	if mc.sched != nil && mc.sched.Fail(mc.probe(PointStep, mc.res.Steps, 0)) {
		mc.induce(PointStep, -1, mc.res.Steps)
		mc.powerFailure()
		return false, nil
	}

	// Checkpoints manage their own energy and progress accounting.
	if ck, ok := in.(*ir.Checkpoint); ok {
		return false, mc.execCheckpoint(ck)
	}

	space := ir.NVM
	if v, _, ok := ir.AccessedVar(in); ok && fr.block.InVM(v) {
		space = ir.VM
	}
	cost, cycles := mc.cfg.Model.InstrCost(in, space)

	reexec := mc.done < mc.furthest
	var ok bool
	switch in.(type) {
	case *ir.Load, *ir.Store:
		ok = mc.chargeAccess(cost, space)
	default:
		ok = mc.charge(cost, chComp)
		if ok && !reexec {
			mc.res.Energy.NoMemEnergy += cost
		}
	}
	if !ok {
		mc.powerFailure()
		return false, nil
	}
	mc.res.TotalCycles += cycles
	mc.cyclesSincePower += cycles
	if !reexec {
		mc.res.Cycles += cycles
	}

	halt, err := mc.exec(in)
	if errors.Is(err, errInterrupt) {
		return false, nil
	}
	if err != nil || halt {
		return halt, err
	}
	mc.bumpProgress()
	return false, nil
}

// exec performs the state change of a non-checkpoint instruction. It
// returns true when the program has completed.
func (mc *machine) exec(in ir.Instr) (bool, error) {
	fr := mc.top()
	switch x := in.(type) {
	case *ir.LoopBound:
		fr.pc++ // metadata only
	case *ir.Const:
		fr.regs[x.Dst] = x.Val
		fr.pc++
	case *ir.BinOp:
		v, err := evalBinOp(x.Op, fr.regs[x.A], fr.regs[x.B])
		if err != nil {
			return false, fmt.Errorf("emulator: %s.%s: %w", fr.fn.Name, fr.block.Name, err)
		}
		fr.regs[x.Dst] = v
		fr.pc++
	case *ir.Load:
		val, err := mc.loadVar(x, fr)
		if err != nil {
			return false, err
		}
		fr.regs[x.Dst] = val
		fr.pc++
	case *ir.Store:
		if err := mc.storeVar(x, fr); err != nil {
			return false, err
		}
		fr.pc++
	case *ir.Call:
		fr.pc++ // return continues after the call
		cf := mc.prog.FuncOf(x.Callee)
		nf := frame{
			fn:      x.Callee,
			block:   x.Callee.Entry(),
			cb:      cf.Entry,
			regs:    make([]int64, x.Callee.NumRegs),
			retReg:  x.Dst,
			wantRet: x.HasDst,
		}
		for i, a := range x.Args {
			nf.regs[i] = fr.regs[a]
		}
		mc.frames = append(mc.frames, nf)
		if mc.obs != nil {
			mc.emit(Event{Kind: EvBlockEnter, Fn: nf.fn, Block: nf.block, Call: true})
		}
	case *ir.Out:
		mc.out = append(mc.out, fr.regs[x.Src])
		fr.pc++
	case *ir.Br:
		if fr.regs[x.Cond] != 0 {
			mc.enterBlock(x.Then)
		} else {
			mc.enterBlock(x.Else)
		}
	case *ir.Jmp:
		mc.enterBlock(x.Target)
	case *ir.Ret:
		var val int64
		if x.HasSrc {
			val = fr.regs[x.Src]
		}
		if mc.obs != nil {
			mc.emit(Event{Kind: EvFuncReturn, Fn: fr.fn})
		}
		mc.frames = mc.frames[:len(mc.frames)-1]
		if len(mc.frames) == 0 {
			return true, nil
		}
		caller := mc.top()
		if fr.wantRet {
			caller.regs[fr.retReg] = val
		}
	default:
		return false, fmt.Errorf("emulator: unknown instruction %T", in)
	}
	return false, nil
}

func (mc *machine) enterBlock(b *ir.Block) {
	fr := mc.top()
	fr.block = b
	fr.cb = mc.prog.BlockOf(b)
	fr.pc = 0
	if mc.obs != nil {
		mc.emit(Event{Kind: EvBlockEnter, Fn: fr.fn, Block: b})
	}
}

func evalBinOp(op ir.Op, a, b int64) (int64, error) {
	return ir.EvalOp(op, a, b)
}

func (mc *machine) loadVar(x *ir.Load, fr *frame) (int64, error) {
	idx, err := elemIndex(x.Var, x.Index, x.HasIndex, fr)
	if err != nil {
		return 0, err
	}
	slot := mc.slot(x.Var)
	if fr.block.InVM(x.Var) {
		arr := mc.vmStorage(slot, x.Var, true)
		if arr == nil {
			return 0, errInterrupt
		}
		return arr[idx], nil
	}
	return mc.nvm[slot][idx], nil
}

func (mc *machine) storeVar(x *ir.Store, fr *frame) error {
	idx, err := elemIndex(x.Var, x.Index, x.HasIndex, fr)
	if err != nil {
		return err
	}
	val := fr.regs[x.Src]
	slot := mc.slot(x.Var)
	if fr.block.InVM(x.Var) {
		arr := mc.vmStorage(slot, x.Var, false)
		if arr == nil {
			return errInterrupt
		}
		arr[idx] = val
		mc.dirty[slot] = true
		return nil
	}
	mc.setNVM(slot, idx, val)
	return nil
}

func elemIndex(v *ir.Var, idxReg ir.Reg, hasIdx bool, fr *frame) (int, error) {
	if !hasIdx {
		return 0, nil
	}
	idx := fr.regs[idxReg]
	if idx < 0 || idx >= int64(v.Elems) {
		return 0, fmt.Errorf("emulator: %s.%s: index %d out of range for %s[%d]",
			fr.fn.Name, fr.block.Name, idx, v.Name, v.Elems)
	}
	return int(idx), nil
}

// vmStorage returns the VM-resident storage of the variable in slot,
// materializing it on demand. A variable that was never restored
// materializes poisoned (and, for reads, bumps UnsyncedReads — the
// signal of a broken pass). ALFRED's deferred restoration is implemented
// here: the first access to a pending-restore variable pays its restore
// cost.
func (mc *machine) vmStorage(slot int32, v *ir.Var, read bool) []int64 {
	if mc.pending[slot] {
		mc.pending[slot] = false
		if !mc.charge(mc.cfg.Model.RestoreVarCost(v), chRestore) {
			mc.powerFailure()
			return nil
		}
		if mc.vm[slot] == nil {
			// Deferred boot copy: the NVM home is the source of truth.
			if !mc.addVMResident(slot, mc.vmCopy(slot, mc.nvm[slot])) {
				return nil
			}
		}
	}
	if arr := mc.vm[slot]; arr != nil {
		return arr
	}
	if read {
		mc.res.UnsyncedReads++
		if mc.obs != nil {
			fr := mc.top()
			mc.emit(Event{Kind: EvPoisonRead, Var: v, Fn: fr.fn, Block: fr.block})
		}
	}
	arr := make([]int64, v.Elems)
	for i := range arr {
		arr[i] = Poison
	}
	if !mc.addVMResident(slot, arr) {
		return nil
	}
	return arr
}

// addVMResident registers VM storage for the variable in slot, enforcing
// SVM. It returns false (and closes the run with a VMOverflow verdict)
// on overflow.
func (mc *machine) addVMResident(slot int32, data []int64) bool {
	mc.vm[slot] = data
	mc.vmBytes += mc.prog.Vars[slot].SizeBytes()
	if mc.vmBytes > mc.res.MaxVMBytes {
		mc.res.MaxVMBytes = mc.vmBytes
	}
	if mc.cfg.VMSize > 0 && mc.vmBytes > mc.cfg.VMSize {
		mc.close(VMOverflow)
		return false
	}
	return true
}

// dropVMResident evicts the variable in slot from VM.
func (mc *machine) dropVMResident(slot int32) {
	if mc.vm[slot] != nil {
		mc.vm[slot] = nil
		mc.vmBytes -= mc.prog.Vars[slot].SizeBytes()
	}
}

func (mc *machine) clearVM() {
	for i := range mc.vm {
		if mc.vm[i] != nil {
			mc.vmSpare[i] = mc.vm[i]
			mc.vm[i] = nil
		}
		mc.pending[i] = false
		mc.dirty[i] = false
	}
	mc.vmBytes = 0
}

// vmCopy returns a copy of src destined for the slot's VM storage,
// reusing the slot's parked spare array when one is available (it always
// fits — same variable, same size).
func (mc *machine) vmCopy(slot int32, src []int64) []int64 {
	if buf := mc.vmSpare[slot]; cap(buf) >= len(src) {
		mc.vmSpare[slot] = nil
		buf = buf[:len(src)]
		copy(buf, src)
		return buf
	}
	return append([]int64(nil), src...)
}
