package emulator

import "schematic/internal/ir"

// EventKind enumerates the observations the emulator emits.
type EventKind uint8

const (
	// EvBlockEnter fires when a basic block starts executing. Call marks
	// entries that push a new frame (function calls and the boot of main);
	// Resume marks the replay of the restored call stack after a power
	// failure, so observers can mirror the stack exactly.
	EvBlockEnter EventKind = iota
	// EvFuncReturn fires on every function return (including main's),
	// before the frame is popped.
	EvFuncReturn
	// EvCharge fires for every draw from the capacitor, classified into
	// the ledger bucket it fed (Class) and stamped with the attribution
	// context: the executing block and the responsible checkpoint site.
	EvCharge
	// EvCheckpointHit fires when a checkpoint instruction begins
	// executing, whether or not it ends up saving.
	EvCheckpointHit
	// EvSave fires after a checkpoint save was charged, with the site,
	// the bytes written to the NVM checkpoint area, and the energy.
	EvSave
	// EvRestore fires after a restore operation was charged: a
	// wait-checkpoint wake-up or a post-failure recovery.
	EvRestore
	// EvSleepStart / EvSleepEnd bracket a wait-checkpoint replenishment
	// period. CapEnergy carries the capacitor level.
	EvSleepStart
	EvSleepEnd
	// EvPowerFailure fires when the supply dies, with the remaining
	// capacitor level and the site of the active recovery point (-1 when
	// none exists yet).
	EvPowerFailure
	// EvReexecStart / EvReexecEnd bracket a re-execution span: work
	// repeated between a recovery point and the previous high-water mark.
	// Site is the checkpoint site execution resumed from (-1 for a cold
	// restart).
	EvReexecStart
	EvReexecEnd
	// EvPoisonRead fires on every read of VM storage that was never
	// restored — the signal of a broken transformation.
	EvPoisonRead
	// EvInjection fires when the configured PowerSchedule induces a power
	// failure at a non-exhaustion point, immediately before the matching
	// EvPowerFailure. Point carries the injection point kind and Seq its
	// ordinal (the step index for step points, the save-attempt ordinal
	// for save points); Site is the checkpoint site for save points.
	EvInjection
)

func (k EventKind) String() string {
	switch k {
	case EvBlockEnter:
		return "block"
	case EvFuncReturn:
		return "ret"
	case EvCharge:
		return "charge"
	case EvCheckpointHit:
		return "ckpt-hit"
	case EvSave:
		return "save"
	case EvRestore:
		return "restore"
	case EvSleepStart:
		return "sleep-start"
	case EvSleepEnd:
		return "sleep-end"
	case EvPowerFailure:
		return "power-failure"
	case EvReexecStart:
		return "reexec-start"
	case EvReexecEnd:
		return "reexec-end"
	case EvPoisonRead:
		return "poison"
	case EvInjection:
		return "injection"
	default:
		return "event"
	}
}

// ChargeClass says which ledger bucket an EvCharge fed. The first three
// classes partition Ledger.Computation (ChargeVMAccess / ChargeNVMAccess
// feed the Fig. 7 access split, ChargeCompute is the rest); the last
// three map to Save, Restore and Reexecution.
type ChargeClass uint8

const (
	ChargeCompute ChargeClass = iota
	ChargeVMAccess
	ChargeNVMAccess
	ChargeSave
	ChargeRestore
	ChargeReexec
)

func (c ChargeClass) String() string {
	switch c {
	case ChargeCompute:
		return "compute"
	case ChargeVMAccess:
		return "vm"
	case ChargeNVMAccess:
		return "nvm"
	case ChargeSave:
		return "save"
	case ChargeRestore:
		return "restore"
	case ChargeReexec:
		return "reexec"
	default:
		return "class"
	}
}

// Event is one cycle-stamped observation. Events are passed by value and
// never retained by the emulator, so observers may keep them. Fields
// beyond Kind/Cycle/Step are meaningful only for the kinds documented on
// the EventKind constants; in particular Site is a checkpoint site ID
// where -1 means "none / boot".
type Event struct {
	Kind  EventKind
	Cycle int64 // Result.TotalCycles at emission
	Step  int64 // instructions executed so far

	Fn    *ir.Func
	Block *ir.Block
	Var   *ir.Var // EvPoisonRead

	Class  ChargeClass // EvCharge
	Energy float64     // nJ: EvCharge, EvSave, EvRestore
	Site   int         // checkpoint site ID, -1 = none
	Bytes  int         // EvSave/EvRestore: bytes moved (registers + variables)

	CapEnergy float64 // remaining capacitor nJ: EvPowerFailure, EvSleepStart/End

	Point PointKind // EvInjection: which injection point fired
	Seq   int64     // EvInjection: the point's occurrence ordinal

	Call   bool // EvBlockEnter: entry pushed a new frame
	Resume bool // EvBlockEnter: replay of a restored frame after a failure
}

// Observer receives the emulator's event stream. A nil observer costs
// nothing: the machine skips event construction entirely (the fast path
// every unobserved run takes). Observers are invoked synchronously from
// the emulation loop and must not retain pointers into the machine.
type Observer interface {
	Event(Event)
}

type multiObserver []Observer

func (m multiObserver) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// MultiObserver fans the event stream out to several observers, ignoring
// nil entries. It returns nil when no observer remains and the observer
// itself when only one does, preserving the nil fast path.
func MultiObserver(obs ...Observer) Observer {
	var list multiObserver
	for _, o := range obs {
		if o != nil {
			list = append(list, o)
		}
	}
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	default:
		return list
	}
}

// legacyObserver adapts the pre-observer callbacks (Config.Trace,
// TraceRet, OnPoison) onto the event stream with their historical
// semantics: Trace fires on every block entry except the stack replay
// after a snapshot restore (it did fire on cold restarts, and still
// does — boot entries are not marked Resume).
type legacyObserver struct {
	trace    func(fn *ir.Func, b *ir.Block)
	traceRet func()
	onPoison func(v *ir.Var, fn *ir.Func, b *ir.Block)
}

func (lo *legacyObserver) Event(e Event) {
	switch e.Kind {
	case EvBlockEnter:
		if lo.trace != nil && !e.Resume {
			lo.trace(e.Fn, e.Block)
		}
	case EvFuncReturn:
		if lo.traceRet != nil {
			lo.traceRet()
		}
	case EvPoisonRead:
		if lo.onPoison != nil {
			lo.onPoison(e.Var, e.Fn, e.Block)
		}
	}
}

// observerFor resolves a config's effective observer: the explicit
// Observer fanned together with the legacy-callback adapter, or nil when
// the run is unobserved.
func observerFor(cfg Config) Observer {
	var legacy Observer
	if cfg.Trace != nil || cfg.TraceRet != nil || cfg.OnPoison != nil {
		legacy = &legacyObserver{trace: cfg.Trace, traceRet: cfg.TraceRet, onPoison: cfg.OnPoison}
	}
	return MultiObserver(legacy, cfg.Observer)
}
