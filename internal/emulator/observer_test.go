package emulator

import (
	"schematic/internal/ir"

	"fmt"
	"math"
	"testing"
)

// chargeSummer accumulates EvCharge energy per class and counts the
// operation events, for checking the stream against the Result counters.
type chargeSummer struct {
	byClass  map[ChargeClass]float64
	saves    int
	restores int
	failures int
	sleeps   int
}

func newChargeSummer() *chargeSummer {
	return &chargeSummer{byClass: map[ChargeClass]float64{}}
}

func (cs *chargeSummer) Event(e Event) {
	switch e.Kind {
	case EvCharge:
		cs.byClass[e.Class] += e.Energy
	case EvSave:
		cs.saves++
	case EvRestore:
		cs.restores++
	case EvPowerFailure:
		cs.failures++
	case EvSleepStart:
		cs.sleeps++
	}
}

// TestChargeEventsSumToLedger pins the core observer guarantee: every
// draw from the capacitor emits exactly one EvCharge, so the per-class
// sums rebuild the energy ledger bit-for-bit (same summation order).
func TestChargeEventsSumToLedger(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, cfg Config) (*Result, error)
		eb   float64
	}{
		{"wait", func(t *testing.T, cfg Config) (*Result, error) {
			return Run(loopProgram(t, 100, 1, true), cfg)
		}, 400},
		{"rollback", func(t *testing.T, cfg Config) (*Result, error) {
			return Run(ratchetLoopProgram(t, 200), cfg)
		}, 1500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cs := newChargeSummer()
			cfg := baseCfg()
			cfg.Intermittent = true
			cfg.EB = tc.eb
			cfg.Observer = cs
			res, err := tc.run(t, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != Completed {
				t.Fatalf("verdict = %v", res.Verdict)
			}
			l := res.Energy
			checks := []struct {
				name      string
				got, want float64
			}{
				{"computation", cs.byClass[ChargeCompute] + cs.byClass[ChargeVMAccess] + cs.byClass[ChargeNVMAccess], l.Computation},
				{"save", cs.byClass[ChargeSave], l.Save},
				{"restore", cs.byClass[ChargeRestore], l.Restore},
				{"re-execution", cs.byClass[ChargeReexec], l.Reexecution},
			}
			for _, c := range checks {
				if math.Abs(c.got-c.want) > 1e-9 {
					t.Errorf("%s: events sum to %.9f nJ, ledger has %.9f nJ", c.name, c.got, c.want)
				}
			}
			if cs.saves != res.Saves {
				t.Errorf("save events = %d, Result.Saves = %d", cs.saves, res.Saves)
			}
			if cs.restores != res.Restores {
				t.Errorf("restore events = %d, Result.Restores = %d", cs.restores, res.Restores)
			}
			if cs.failures != res.PowerFailures {
				t.Errorf("failure events = %d, Result.PowerFailures = %d", cs.failures, res.PowerFailures)
			}
			if cs.sleeps != res.Sleeps {
				t.Errorf("sleep events = %d, Result.Sleeps = %d", cs.sleeps, res.Sleeps)
			}
		})
	}
}

// TestRestoresCounter checks the new Result.Restores counter: zero for
// a checkpoint-free continuous run, and on an intermittent wait-style
// run every sleep wake-up restores, so the counter at least matches the
// sleep count.
func TestRestoresCounter(t *testing.T) {
	m := loopProgram(t, 10, -1, false)
	entry := m.FuncByName("main").Entry()
	entry.Instrs = entry.Instrs[1:] // drop the boot checkpoint
	res, err := Run(m, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Restores != 0 {
		t.Errorf("continuous run restores = %d, want 0", res.Restores)
	}

	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 400
	res, err = Run(loopProgram(t, 100, 1, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Completed {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.Restores == 0 || res.Restores < res.Sleeps {
		t.Errorf("restores = %d, want >= sleeps (%d)", res.Restores, res.Sleeps)
	}
}

// TestLegacyAdapterMatchesObserver runs the same intermittent program
// under the legacy Trace/TraceRet callbacks and under the Observer
// stream, and requires identical call sequences: the adapter must keep
// the historical semantics (no Trace during the stack replay after a
// snapshot restore), and the observer reproduces them by skipping
// Resume-marked block entries.
func TestLegacyAdapterMatchesObserver(t *testing.T) {
	makeCfg := func() Config {
		cfg := baseCfg()
		cfg.Intermittent = true
		cfg.EB = 1500
		return cfg
	}

	var legacy []string
	cfg := makeCfg()
	cfg.Trace = func(fn *ir.Func, b *ir.Block) { legacy = append(legacy, fmt.Sprintf("enter %s.%s", fn.Name, b.Name)) }
	cfg.TraceRet = func() { legacy = append(legacy, "ret") }
	resA, err := Run(ratchetLoopProgram(t, 200), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var observed []string
	cfg = makeCfg()
	cfg.Observer = observerFunc(func(e Event) {
		switch e.Kind {
		case EvBlockEnter:
			if !e.Resume {
				observed = append(observed, fmt.Sprintf("enter %s.%s", e.Fn.Name, e.Block.Name))
			}
		case EvFuncReturn:
			observed = append(observed, "ret")
		}
	})
	resB, err := Run(ratchetLoopProgram(t, 200), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if resA.PowerFailures == 0 {
		t.Fatalf("run saw no power failures; the Resume path was not exercised")
	}
	if resA.Steps != resB.Steps {
		t.Fatalf("runs diverged: %d vs %d steps", resA.Steps, resB.Steps)
	}
	if len(legacy) != len(observed) {
		t.Fatalf("legacy saw %d events, observer %d", len(legacy), len(observed))
	}
	for i := range legacy {
		if legacy[i] != observed[i] {
			t.Fatalf("event %d: legacy %q, observer %q", i, legacy[i], observed[i])
		}
	}
}

type observerFunc func(Event)

func (f observerFunc) Event(e Event) { f(e) }

func TestMultiObserverNilPath(t *testing.T) {
	if MultiObserver() != nil {
		t.Error("MultiObserver() != nil")
	}
	if MultiObserver(nil, nil) != nil {
		t.Error("MultiObserver(nil, nil) != nil")
	}
	single := observerFunc(func(Event) {})
	if got := MultiObserver(nil, single); got == nil {
		t.Error("single observer lost")
	}
}

// TestNilObserverNoPerInstructionAllocs guards the fast path: with no
// observer configured, growing the instruction count must not grow the
// allocation count — events are never constructed. A small constant
// difference (map growth inside the machine) is tolerated; a per-
// instruction allocation would show up as thousands.
func TestNilObserverNoPerInstructionAllocs(t *testing.T) {
	small := loopProgram(t, 100, -1, false)
	large := loopProgram(t, 5000, -1, false)
	run := func(m *ir.Module) func() {
		return func() {
			if _, err := Run(m, baseCfg()); err != nil {
				t.Fatal(err)
			}
		}
	}
	allocsSmall := testing.AllocsPerRun(5, run(small))
	allocsLarge := testing.AllocsPerRun(5, run(large))
	if allocsLarge > allocsSmall+32 {
		t.Errorf("allocations grow with run length: %d instructions → %.0f allocs, %d instructions → %.0f allocs",
			100, allocsSmall, 5000, allocsLarge)
	}
}

// BenchmarkEmulateNoObserver measures the unobserved emulation loop.
// The allocation report must stay flat as the loop bound grows (see
// TestNilObserverNoPerInstructionAllocs): the nil-observer fast path
// skips event construction entirely, so per-instruction cost is pure
// interpretation with zero allocations.
func BenchmarkEmulateNoObserver(b *testing.B) {
	m := loopProgram(b, 1000, -1, false)
	cfg := baseCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulateObserved is the same loop with a minimal observer, to
// expose the observation overhead in benchmark comparisons.
func BenchmarkEmulateObserved(b *testing.B) {
	m := loopProgram(b, 1000, -1, false)
	cfg := baseCfg()
	var n int64
	cfg.Observer = observerFunc(func(Event) { n++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
