package emulator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"schematic/internal/energy"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

// randomInputs mirrors trace.RandomInputs locally (the trace package
// imports the emulator, so it cannot be used from these tests).
func randomInputs(m *ir.Module, rng *rand.Rand) map[string][]int64 {
	inputs := map[string][]int64{}
	for _, v := range m.InputVars() {
		data := make([]int64, v.Elems)
		for i := range data {
			data[i] = int64(rng.Intn(65536) - 32768)
		}
		inputs[v.Name] = data
	}
	return inputs
}

// checkLedger verifies the accounting identities every run must satisfy.
func checkLedger(t *testing.T, res *Result) {
	t.Helper()
	l := res.Energy
	if got := l.Computation + l.Save + l.Restore + l.Reexecution; !close2(got, l.Total()) {
		t.Errorf("Total() %.3f != category sum %.3f", l.Total(), got)
	}
	// The split and the category sums accumulate the same terms in
	// different orders, so allow relative float error on top of the
	// absolute epsilon (runs reach ~1e6 nJ, where 1e-6 absolute is
	// below one ulp of the sum).
	if split := l.VMAccessEnergy + l.NVMAccessEnergy + l.NoMemEnergy; split > (l.Computation+l.Reexecution)*(1+1e-9)+1e-6 {
		t.Errorf("Fig.7 split %.3f exceeds computation+reexec %.3f", split, l.Computation+l.Reexecution)
	}
	for _, v := range []float64{l.Computation, l.Save, l.Restore, l.Reexecution,
		l.VMAccessEnergy, l.NVMAccessEnergy, l.NoMemEnergy} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("ledger holds a non-physical value: %+v", l)
		}
	}
	if res.TotalCycles < res.Cycles {
		t.Errorf("TotalCycles %d < Cycles %d", res.TotalCycles, res.Cycles)
	}
	if res.Saves < 0 || res.Sleeps < 0 || res.PowerFailures < 0 {
		t.Errorf("negative counters: %+v", res)
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

// TestLedgerInvariantsProperty checks the accounting identities over random
// programs on continuous power.
func TestLedgerInvariantsProperty(t *testing.T) {
	model := energy.MSP430FR5969()
	check := func(seed int64) bool {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			return true
		}
		inputs := randomInputs(m, rand.New(rand.NewSource(seed+1)))
		res, err := Run(m, Config{Model: model, Inputs: inputs, MaxSteps: 20_000_000})
		if err != nil {
			return true // traps are legal programs
		}
		checkLedger(t, res)
		// Continuous power: no intermittency costs at all.
		return res.Energy.Save == 0 && res.Energy.Restore == 0 &&
			res.Energy.Reexecution == 0 && res.PowerFailures == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEmulatorDeterminism runs the same configuration twice and demands
// identical results, bit for bit — the property the whole differential
// test suite rests on.
func TestEmulatorDeterminism(t *testing.T) {
	model := energy.MSP430FR5969()
	for seed := int64(0); seed < 10; seed++ {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed^0xdead)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatal(err)
		}
		inputs := randomInputs(m, rand.New(rand.NewSource(seed)))
		cfg := Config{Model: model, Inputs: inputs, MaxSteps: 20_000_000}
		a, errA := Run(ir.Clone(m), cfg)
		b, errB := Run(ir.Clone(m), cfg)
		if (errA != nil) != (errB != nil) {
			t.Fatalf("seed %d: error mismatch: %v vs %v", seed, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Verdict != b.Verdict || a.Steps != b.Steps || a.TotalCycles != b.TotalCycles ||
			!close2(a.Energy.Total(), b.Energy.Total()) {
			t.Fatalf("seed %d: runs diverge: %+v vs %+v", seed, a, b)
		}
		if len(a.Output) != len(b.Output) {
			t.Fatalf("seed %d: output lengths diverge", seed)
		}
		for i := range a.Output {
			if a.Output[i] != b.Output[i] {
				t.Fatalf("seed %d: output[%d] diverges", seed, i)
			}
		}
	}
}

// TestHugeBudgetMatchesContinuous: under an effectively infinite capacitor
// the intermittent machine must behave like the continuous one — same
// output, zero failures — even though checkpoints still execute.
func TestHugeBudgetMatchesContinuous(t *testing.T) {
	model := energy.MSP430FR5969()
	const src = `
input int data[16];
int acc;
func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 16; i = i + 1) @max(16) {
    acc = acc + data[i] * 3;
  }
  print(acc);
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]int64{"data": make([]int64, 16)}
	for i := range inputs["data"] {
		inputs["data"][i] = int64(i * 5)
	}
	ref, err := Run(ir.Clone(m), Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}

	// Instrument with a plain wait checkpoint on the back edge, then run
	// with a budget no segment can exhaust.
	tr := ir.Clone(m)
	var mainFn *ir.Func
	for _, f := range tr.Funcs {
		if f.Name == "main" {
			mainFn = f
		}
	}
	placed := false
	for _, b := range mainFn.Blocks {
		if j, ok := b.Terminator().(*ir.Jmp); ok && j.Target.Index < b.Index && !placed {
			nb := ir.SplitEdge(b, j.Target)
			nb.Instrs = append([]ir.Instr{&ir.Checkpoint{ID: 0, Kind: ir.CkWait, SaveAll: true}}, nb.Instrs...)
			placed = true
		}
	}
	if !placed {
		t.Fatal("no back edge found to instrument")
	}
	res, err := Run(tr, Config{Model: model, Inputs: inputs, Intermittent: true, EB: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, res)
	if res.Verdict != Completed || res.PowerFailures != 0 {
		t.Fatalf("verdict %v, failures %d", res.Verdict, res.PowerFailures)
	}
	if res.Saves == 0 || res.Sleeps == 0 {
		t.Errorf("checkpoints did not execute: saves=%d sleeps=%d", res.Saves, res.Sleeps)
	}
	if len(res.Output) != len(ref.Output) || res.Output[0] != ref.Output[0] {
		t.Fatalf("output %v, want %v", res.Output, ref.Output)
	}
	if res.Energy.Reexecution != 0 {
		t.Errorf("wait checkpoints must never re-execute, got %.1f", res.Energy.Reexecution)
	}
}

// TestLedgerIntermittent checks the accounting identities on an
// intermittent SCHEMATIC-style run including save/restore categories.
func TestLedgerIntermittent(t *testing.T) {
	model := energy.MSP430FR5969()
	res, err := Run(loopProgram(t, 64, 1, true), Config{
		Model: model, VMSize: 2048, Intermittent: true, EB: 3000,
		Inputs: map[string][]int64{}, MaxSteps: 10_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, res)
	if res.Energy.Save == 0 || res.Energy.Restore == 0 {
		t.Errorf("expected save and restore energy, got %+v", res.Energy)
	}
}
