package emulator

import (
	"fmt"
	"math/rand"
	"strings"
)

// chargeEpsilon absorbs floating-point association differences between the
// compile-time analysis (which sums per block) and the emulator's
// per-instruction accounting when deciding whether a draw still fits in
// the capacitor.
const chargeEpsilon = 1e-6

// PointKind identifies a class of injection points: moments during an
// intermittent execution at which a PowerSchedule is consulted and may
// kill the supply.
type PointKind uint8

const (
	// PointStep is an instruction boundary, probed before the instruction
	// executes. Probe.Step is the 1-based index of the instruction about
	// to run (Probe.Occurrence equals it).
	PointStep PointKind = iota
	// PointCharge is an energy draw from the capacitor. Probe.Energy
	// carries the requested amount and Probe.Remaining the capacitor
	// level; the built-in exhaustion physics lives at this point.
	PointCharge
	// PointBeforeSave fires when a checkpoint has decided to save, before
	// any save energy is charged. Probe.Occurrence is the 1-based ordinal
	// of the save attempt within the run (torn and exhausted attempts
	// count too).
	PointBeforeSave
	// PointMidSave fires after the save energy was charged but before the
	// snapshot is committed. A failure here is a torn checkpoint (a
	// partial NVM write): the energy is lost, nothing reaches NVM, and
	// the previous recovery point stays in force.
	PointMidSave
	// PointAfterSave fires immediately after the snapshot committed,
	// before execution continues (or, for wait checkpoints, before the
	// replenishment sleep).
	PointAfterSave
)

func (k PointKind) String() string {
	switch k {
	case PointStep:
		return "step"
	case PointCharge:
		return "charge"
	case PointBeforeSave:
		return "before-save"
	case PointMidSave:
		return "mid-save"
	case PointAfterSave:
		return "after-save"
	default:
		return fmt.Sprintf("point(%d)", int(k))
	}
}

// ParsePointKind is the inverse of PointKind.String for the injectable
// kinds (PointCharge is the built-in physics and cannot be scheduled).
func ParsePointKind(s string) (PointKind, error) {
	switch s {
	case "step":
		return PointStep, nil
	case "before-save":
		return PointBeforeSave, nil
	case "mid-save":
		return PointMidSave, nil
	case "after-save":
		return PointAfterSave, nil
	default:
		return 0, fmt.Errorf("emulator: unknown injection point kind %q", s)
	}
}

// Probe carries the machine state a PowerSchedule decides on.
type Probe struct {
	Kind PointKind

	Step             int64 // instructions executed so far, including this one
	Cycle            int64 // Result.TotalCycles at the probe
	CyclesSincePower int64 // active cycles since the last replenishment

	// Occurrence is the per-kind ordinal the probe belongs to: the save
	// attempt number for the save points, the step index for PointStep
	// and PointCharge.
	Occurrence int64

	Site int // checkpoint site for save points, -1 otherwise

	Energy    float64 // PointCharge: requested draw, nJ
	Remaining float64 // capacitor level, nJ

	Failures int // power failures so far
}

// PowerSchedule decides when the supply dies. The machine consults the
// schedule at every injection point (see PointKind); returning true
// triggers a power failure there. Schedules are stateful and single-run:
// construct a fresh value for every emulation, or the fired/pending state
// of the previous run carries over.
//
// Setting Config.Schedule replaces the default power model entirely —
// compose with Exhaustion() (via Schedules) to keep capacitor physics in
// addition to induced failures.
type PowerSchedule interface {
	// Name identifies the schedule in reports and repro files.
	Name() string
	// Fail reports whether power fails at this probe.
	Fail(p Probe) bool
}

// ---- exhaustion (capacitor physics) ----

type exhaustion struct{}

// Exhaustion is the default power model: a failure occurs exactly when a
// requested energy draw no longer fits in the capacitor.
func Exhaustion() PowerSchedule { return exhaustion{} }

func (exhaustion) Name() string { return "exhaustion" }
func (exhaustion) Fail(p Probe) bool {
	return p.Kind == PointCharge && p.Remaining+chargeEpsilon < p.Energy
}

// ---- periodic (TBPF) ----

type periodic struct{ cycles int64 }

// Periodic fails at the first instruction boundary after the given number
// of active cycles has elapsed since the last replenishment — the literal
// "periodic power failures of period TBPF" of the paper's emulator (IV-C).
func Periodic(cycles int64) PowerSchedule { return &periodic{cycles: cycles} }

func (s *periodic) Name() string { return fmt.Sprintf("periodic(%d)", s.cycles) }
func (s *periodic) Fail(p Probe) bool {
	return p.Kind == PointStep && s.cycles > 0 && p.CyclesSincePower >= s.cycles
}

// ---- trace-driven (replayable failure-point list) ----

// FailPoint is one entry of a trace-driven schedule: fail at the first
// probe of the given kind whose occurrence ordinal reaches N (the step
// index for PointStep, the save-attempt ordinal for the save points).
// Each point fires at most once.
type FailPoint struct {
	Kind PointKind
	N    int64
}

func (fp FailPoint) String() string { return fmt.Sprintf("%v@%d", fp.Kind, fp.N) }

type traceSchedule struct {
	points []FailPoint
	fired  []bool
}

// TraceSchedule replays an explicit failure-point list. Points firing on
// the same probe are coalesced into a single failure.
func TraceSchedule(points ...FailPoint) PowerSchedule {
	return &traceSchedule{
		points: append([]FailPoint(nil), points...),
		fired:  make([]bool, len(points)),
	}
}

func (s *traceSchedule) Name() string {
	parts := make([]string, len(s.points))
	for i, fp := range s.points {
		parts[i] = fp.String()
	}
	return "trace(" + strings.Join(parts, ",") + ")"
}

func (s *traceSchedule) Fail(p Probe) bool {
	hit := false
	for i, fp := range s.points {
		if s.fired[i] || fp.Kind != p.Kind {
			continue
		}
		if p.Occurrence >= fp.N {
			s.fired[i] = true
			hit = true
		}
	}
	return hit
}

// ---- seeded random ----

type randomSchedule struct {
	seed, mean int64
	r          *rand.Rand
	next       int64
	left       int // remaining failures; <0 = unlimited
}

// RandomSchedule fails at seeded-random instruction boundaries with
// uniform gaps averaging meanGapSteps. maxFailures bounds the induced
// failures (0 = unlimited). Identical seeds replay identically.
func RandomSchedule(seed, meanGapSteps int64, maxFailures int) PowerSchedule {
	if meanGapSteps < 1 {
		meanGapSteps = 1
	}
	left := maxFailures
	if maxFailures <= 0 {
		left = -1
	}
	r := rand.New(rand.NewSource(seed))
	return &randomSchedule{seed: seed, mean: meanGapSteps, r: r, next: 1 + r.Int63n(2*meanGapSteps), left: left}
}

func (s *randomSchedule) Name() string {
	return fmt.Sprintf("random(seed=%d,mean=%d)", s.seed, s.mean)
}

func (s *randomSchedule) Fail(p Probe) bool {
	if p.Kind != PointStep || s.left == 0 || p.Step < s.next {
		return false
	}
	if s.left > 0 {
		s.left--
	}
	s.next = p.Step + 1 + s.r.Int63n(2*s.mean)
	return true
}

// ---- every-Nth instruction boundary ----

type strideSchedule struct {
	n    int64
	next int64
	left int
}

// StrideSchedule fails at every n-th instruction boundary (steps n, 2n,
// …), up to maxFailures induced failures (0 = unlimited). Keep
// maxFailures well below the emulator's stagnation threshold when n is
// small, or the run is (correctly) declared stuck.
func StrideSchedule(n int64, maxFailures int) PowerSchedule {
	if n < 1 {
		n = 1
	}
	left := maxFailures
	if maxFailures <= 0 {
		left = -1
	}
	return &strideSchedule{n: n, next: n, left: left}
}

func (s *strideSchedule) Name() string { return fmt.Sprintf("stride(%d)", s.n) }

func (s *strideSchedule) Fail(p Probe) bool {
	if p.Kind != PointStep || s.left == 0 || p.Step < s.next {
		return false
	}
	if s.left > 0 {
		s.left--
	}
	s.next = p.Step + s.n
	return true
}

// ---- composition ----

type comboSchedule []PowerSchedule

func (c comboSchedule) Name() string {
	parts := make([]string, len(c))
	for i, s := range c {
		parts[i] = s.Name()
	}
	return strings.Join(parts, "+")
}

// Fail asks every member, so stateful members observe every probe even
// when an earlier member already failed it.
func (c comboSchedule) Fail(p Probe) bool {
	hit := false
	for _, s := range c {
		if s.Fail(p) {
			hit = true
		}
	}
	return hit
}

// Schedules composes several schedules into one that fails whenever any
// member fails, ignoring nil entries. It returns nil when no schedule
// remains and the schedule itself when only one does.
func Schedules(ss ...PowerSchedule) PowerSchedule {
	var list comboSchedule
	for _, s := range ss {
		if s == nil {
			continue
		}
		if sub, ok := s.(comboSchedule); ok {
			list = append(list, sub...)
			continue
		}
		list = append(list, s)
	}
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	default:
		return list
	}
}

// resolveSchedule returns the run's effective schedule. A nil
// Config.Schedule selects the legacy power model: capacitor exhaustion,
// plus the periodic TBPF mode when FailEveryCycles is set.
func resolveSchedule(cfg Config) PowerSchedule {
	if !cfg.Intermittent {
		return nil
	}
	if cfg.Schedule != nil {
		return cfg.Schedule
	}
	if cfg.FailEveryCycles > 0 {
		return Schedules(Exhaustion(), Periodic(cfg.FailEveryCycles))
	}
	return Exhaustion()
}

// splitExhaustion separates built-in exhaustion physics from the rest of
// a resolved schedule, so the (very hot) per-charge check stays an inline
// float comparison instead of an interface call. The remainder is nil
// when nothing but exhaustion is scheduled — the common case, in which
// per-instruction probing is skipped entirely.
func splitExhaustion(s PowerSchedule) (exhaust bool, rest PowerSchedule) {
	switch x := s.(type) {
	case nil:
		return false, nil
	case exhaustion:
		return true, nil
	case comboSchedule:
		var rem comboSchedule
		for _, m := range x {
			if _, ok := m.(exhaustion); ok {
				exhaust = true
				continue
			}
			rem = append(rem, m)
		}
		switch len(rem) {
		case 0:
			return exhaust, nil
		case 1:
			return exhaust, rem[0]
		default:
			return exhaust, rem
		}
	default:
		return false, s
	}
}
