package emulator

import (
	"errors"
	"testing"

	"schematic/internal/ir"
)

func probeStep(step int64) Probe { return Probe{Kind: PointStep, Step: step, Occurrence: step} }

func TestParsePointKindRoundtrip(t *testing.T) {
	for _, k := range []PointKind{PointStep, PointBeforeSave, PointMidSave, PointAfterSave} {
		got, err := ParsePointKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParsePointKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParsePointKind("charge"); err == nil {
		t.Errorf("ParsePointKind accepted the physics-only kind")
	}
	if _, err := ParsePointKind("bogus"); err == nil {
		t.Errorf("ParsePointKind accepted garbage")
	}
}

func TestTraceScheduleLatchesAndCoalesces(t *testing.T) {
	s := TraceSchedule(
		FailPoint{Kind: PointStep, N: 5},
		FailPoint{Kind: PointStep, N: 5}, // duplicate: must coalesce into one failure
		FailPoint{Kind: PointBeforeSave, N: 2},
	)
	if s.Fail(probeStep(4)) {
		t.Fatalf("fired before its step")
	}
	if !s.Fail(probeStep(5)) {
		t.Fatalf("did not fire at its step")
	}
	if s.Fail(probeStep(5)) || s.Fail(probeStep(6)) {
		t.Fatalf("step point fired twice")
	}
	// The save point is independent and addressed by its own ordinal.
	if s.Fail(Probe{Kind: PointBeforeSave, Occurrence: 1}) {
		t.Fatalf("save point fired early")
	}
	if !s.Fail(Probe{Kind: PointBeforeSave, Occurrence: 2}) {
		t.Fatalf("save point did not fire")
	}
	if s.Fail(Probe{Kind: PointBeforeSave, Occurrence: 3}) {
		t.Fatalf("save point fired twice")
	}
}

// TestTraceScheduleFiresPastTarget covers recovery jitter: when the exact
// occurrence is skipped (e.g. the run re-executes a shorter path), the
// point still fires at the first occurrence at or past N.
func TestTraceScheduleFiresPastTarget(t *testing.T) {
	s := TraceSchedule(FailPoint{Kind: PointStep, N: 10})
	if s.Fail(probeStep(9)) {
		t.Fatalf("fired early")
	}
	if !s.Fail(probeStep(12)) {
		t.Fatalf("did not fire past its target")
	}
}

func TestRandomScheduleDeterministicAndBounded(t *testing.T) {
	fires := func(seed int64, max int) []int64 {
		s := RandomSchedule(seed, 10, max)
		var out []int64
		for step := int64(1); step <= 500; step++ {
			if s.Fail(probeStep(step)) {
				out = append(out, step)
			}
		}
		return out
	}
	a, b := fires(7, 4), fires(7, 4)
	if len(a) != 4 {
		t.Fatalf("maxFailures not honored: %d fires", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	if c := fires(8, 4); len(c) == len(a) && c[0] == a[0] && c[1] == a[1] && c[2] == a[2] && c[3] == a[3] {
		t.Errorf("different seeds produced the identical schedule %v", c)
	}
	if unlimited := fires(7, 0); len(unlimited) <= 4 {
		t.Errorf("maxFailures=0 should be unlimited, got %d fires", len(unlimited))
	}
}

func TestStrideSchedule(t *testing.T) {
	s := StrideSchedule(10, 2)
	var out []int64
	for step := int64(1); step <= 100; step++ {
		if s.Fail(probeStep(step)) {
			out = append(out, step)
		}
	}
	if len(out) != 2 || out[0] != 10 || out[1] != 20 {
		t.Errorf("stride fires = %v, want [10 20]", out)
	}
	// Non-PointStep probes are ignored.
	s2 := StrideSchedule(1, 0)
	if s2.Fail(Probe{Kind: PointCharge, Step: 50}) {
		t.Errorf("stride fired on a charge probe")
	}
}

func TestSchedulesComposition(t *testing.T) {
	if Schedules() != nil || Schedules(nil, nil) != nil {
		t.Errorf("empty composition should be nil")
	}
	ex := Exhaustion()
	if got := Schedules(nil, ex); got != ex {
		t.Errorf("single-member composition should return the member")
	}
	combo := Schedules(ex, Periodic(100))
	if combo.Name() != "exhaustion+periodic(100)" {
		t.Errorf("combo name = %q", combo.Name())
	}
	// Nested combos flatten.
	flat := Schedules(combo, StrideSchedule(5, 1))
	if flat.Name() != "exhaustion+periodic(100)+stride(5)" {
		t.Errorf("flattened name = %q", flat.Name())
	}
}

func TestSplitExhaustion(t *testing.T) {
	if ex, rest := splitExhaustion(nil); ex || rest != nil {
		t.Errorf("nil: got %v, %v", ex, rest)
	}
	if ex, rest := splitExhaustion(Exhaustion()); !ex || rest != nil {
		t.Errorf("exhaustion alone: got %v, %v", ex, rest)
	}
	p := Periodic(50)
	if ex, rest := splitExhaustion(Schedules(Exhaustion(), p)); !ex || rest != p {
		t.Errorf("exhaustion+periodic: got %v, %v", ex, rest)
	}
	tr := TraceSchedule(FailPoint{Kind: PointStep, N: 3})
	if ex, rest := splitExhaustion(Schedules(Exhaustion(), p, tr)); !ex || rest == nil || rest.Name() != "periodic(50)+"+tr.Name() {
		t.Errorf("three-way split: got %v, %v", ex, rest)
	}
	if ex, rest := splitExhaustion(tr); ex || rest != tr {
		t.Errorf("trace alone: got %v, %v", ex, rest)
	}
}

func TestConfigValidate(t *testing.T) {
	model := baseCfg().Model
	valid := Config{Model: model}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name  string
		field string
		cfg   Config
	}{
		{"nil model", "Model", Config{}},
		{"negative EB", "EB", Config{Model: model, EB: -1}},
		{"intermittent without EB", "EB", Config{Model: model, Intermittent: true}},
		{"negative trigger threshold", "TriggerThreshold", Config{Model: model, TriggerThreshold: -0.1}},
		{"trigger threshold above one", "TriggerThreshold", Config{Model: model, TriggerThreshold: 1.5}},
		{"negative VM size", "VMSize", Config{Model: model, VMSize: -2048}},
		{"negative periodic cycles", "FailEveryCycles", Config{Model: model, FailEveryCycles: -1}},
		{"schedule and periodic together", "Schedule", Config{Model: model, Intermittent: true, EB: 100,
			FailEveryCycles: 10, Schedule: Exhaustion()}},
		{"negative max steps", "MaxSteps", Config{Model: model, MaxSteps: -1}},
		{"negative max failures", "MaxFailures", Config{Model: model, MaxFailures: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("accepted")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Errorf("error does not unwrap to ErrInvalidConfig: %v", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) || ce.Field != tc.field {
				t.Errorf("error = %v, want ConfigError for field %s", err, tc.field)
			}
			// Run must reject the same configs (with a runnable module).
			if _, err := Run(loopProgram(t, 3, 0, false), tc.cfg); err == nil {
				t.Errorf("Run accepted the invalid config")
			}
		})
	}
}

func TestOutOfFailuresVerdict(t *testing.T) {
	// Rollback checkpoints every iteration make steady progress, so the
	// stride failures never trip the stagnation watchdog; the failure
	// budget is what gives out.
	m := ratchetLoopProgram(t, 200)
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 1e9
	cfg.MaxFailures = 5
	cfg.Schedule = Schedules(Exhaustion(), StrideSchedule(30, 0))
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != OutOfFailures {
		t.Fatalf("verdict = %v, want out-of-failures (failures=%d)", res.Verdict, res.PowerFailures)
	}
	if res.Verdict.String() != "out-of-failures" {
		t.Errorf("String() = %q", res.Verdict.String())
	}
	if res.PowerFailures != cfg.MaxFailures+1 {
		t.Errorf("failures = %d, want %d", res.PowerFailures, cfg.MaxFailures+1)
	}
}

// TestInjectedStepFailureRecovers: a single injected instruction-boundary
// failure rolls back to the last snapshot and the run still completes
// with the oracle output.
func TestInjectedStepFailureRecovers(t *testing.T) {
	m := ratchetLoopProgram(t, 50)
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 1e9
	cfg.Schedule = Schedules(Exhaustion(), TraceSchedule(FailPoint{Kind: PointStep, N: 123}))
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Completed || res.Output[0] != 1225 {
		t.Fatalf("verdict=%v output=%v", res.Verdict, res.Output)
	}
	if res.PowerFailures != 1 || res.InjectedFailures != 1 {
		t.Errorf("failures=%d injected=%d, want 1/1", res.PowerFailures, res.InjectedFailures)
	}
	if res.Energy.Reexecution == 0 {
		t.Errorf("rollback after the injected failure should pay re-execution energy")
	}
}

// TestTornSaveSemantics: a mid-save failure charges the save energy but
// commits nothing — no snapshot advance, no Saves increment — and the run
// still completes correctly from the previous recovery point.
func TestTornSaveSemantics(t *testing.T) {
	m := loopProgram(t, 20, 1, true)
	base := baseCfg()
	base.Intermittent = true
	base.EB = 1e9

	clean, err := Run(m, base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Verdict != Completed {
		t.Fatalf("clean verdict = %v", clean.Verdict)
	}
	if clean.SaveAttempts != int64(clean.Saves) {
		t.Fatalf("clean run: attempts=%d saves=%d, want equal", clean.SaveAttempts, clean.Saves)
	}

	torn := base
	torn.Schedule = Schedules(Exhaustion(), TraceSchedule(FailPoint{Kind: PointMidSave, N: 5}))
	res, err := Run(m, torn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Completed || res.Output[0] != clean.Output[0] {
		t.Fatalf("torn run: verdict=%v output=%v, want %v", res.Verdict, res.Output, clean.Output)
	}
	if res.InjectedFailures != 1 {
		t.Fatalf("injected = %d, want 1", res.InjectedFailures)
	}
	// The torn attempt is counted but its save is not.
	if res.SaveAttempts != int64(res.Saves)+1 {
		t.Errorf("attempts=%d saves=%d, want attempts = saves+1", res.SaveAttempts, res.Saves)
	}
	// The wasted save energy still hit the Save bucket.
	if res.Energy.Save <= clean.Energy.Save {
		t.Errorf("torn save energy %.1f not above clean %.1f", res.Energy.Save, clean.Energy.Save)
	}
}

// TestSavePhaseInjectionPoints drives each save-phase point and checks
// the run recovers and completes correctly.
func TestSavePhaseInjectionPoints(t *testing.T) {
	for _, kind := range []PointKind{PointBeforeSave, PointMidSave, PointAfterSave} {
		t.Run(kind.String(), func(t *testing.T) {
			m := loopProgram(t, 20, 1, true)
			cfg := baseCfg()
			cfg.Intermittent = true
			cfg.EB = 1e9
			cfg.Schedule = Schedules(Exhaustion(), TraceSchedule(FailPoint{Kind: kind, N: 3}))
			res, err := Run(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != Completed || res.Output[0] != 190 {
				t.Fatalf("verdict=%v output=%v failures=%d", res.Verdict, res.Output, res.PowerFailures)
			}
			if res.InjectedFailures != 1 {
				t.Errorf("injected = %d, want 1", res.InjectedFailures)
			}
		})
	}
}

// TestInjectionEvents: schedule-induced failures emit EvInjection with
// the point kind and ordinal immediately before their EvPowerFailure;
// exhaustion failures do not.
func TestInjectionEvents(t *testing.T) {
	m := ratchetLoopProgram(t, 50)
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 1e9
	cfg.Schedule = Schedules(Exhaustion(), TraceSchedule(FailPoint{Kind: PointStep, N: 60}))
	var events []Event
	cfg.Observer = obsFn(func(e Event) {
		if e.Kind == EvInjection || e.Kind == EvPowerFailure {
			events = append(events, e)
		}
	})
	if _, err := Run(m, cfg); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want EvInjection + EvPowerFailure", len(events))
	}
	if events[0].Kind != EvInjection || events[0].Point != PointStep || events[0].Seq != 60 {
		t.Errorf("injection event = %+v", events[0])
	}
	if events[1].Kind != EvPowerFailure {
		t.Errorf("second event = %v, want power-failure", events[1].Kind)
	}

	// Plain exhaustion failures are physics, not injections.
	cfg2 := baseCfg()
	cfg2.Intermittent = true
	cfg2.EB = 1500
	saw := false
	cfg2.Observer = obsFn(func(e Event) {
		if e.Kind == EvInjection {
			saw = true
		}
	})
	res, err := Run(ratchetLoopProgram(t, 50), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerFailures == 0 {
		t.Fatalf("expected exhaustion failures at EB=1500")
	}
	if saw || res.InjectedFailures != 0 {
		t.Errorf("exhaustion failures must not count as injections (saw=%v injected=%d)", saw, res.InjectedFailures)
	}
}

type obsFn func(Event)

func (f obsFn) Event(e Event) { f(e) }

// TestStuckDeterministicAcrossSchedules: Stuck detection is a property
// of the placement and energy budget, not of the failure schedule — a
// program trapped under plain exhaustion is declared Stuck (never
// OutOfSteps) under every random schedule seed as well.
func TestStuckDeterministicAcrossSchedules(t *testing.T) {
	build := func() *ir.Module {
		m := loopProgram(t, 1000, -1, false)
		entry := m.FuncByName("main").Entry()
		entry.Instrs = entry.Instrs[1:] // no checkpoints: no recovery point
		return m
	}
	base := baseCfg()
	base.Intermittent = true
	base.EB = 2000 // far below total consumption
	base.MaxSteps = 200_000

	res, err := Run(build(), base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Stuck {
		t.Fatalf("exhaustion-only verdict = %v, want stuck", res.Verdict)
	}

	for seed := int64(1); seed <= 15; seed++ {
		cfg := base
		cfg.Schedule = Schedules(Exhaustion(), RandomSchedule(seed, 40, 0))
		res, err := Run(build(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Stuck {
			t.Fatalf("seed %d: verdict = %v (steps=%d failures=%d), want stuck",
				seed, res.Verdict, res.Steps, res.PowerFailures)
		}
	}
}
