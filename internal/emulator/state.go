package emulator

import (
	"fmt"

	"schematic/internal/ir"
)

// This file makes the machine's persistent state — everything that
// survives a power failure — a first-class, resumable value. A
// PersistentState is what the device would find in NVM after the supply
// died: the variables' NVM homes, the conditional-checkpoint counters,
// the committed output prefix, and the committed recovery-point
// snapshot (or nothing, for a cold start). Config.Resume boots a run
// from such a value exactly as powerFailure would, and Config.Hook
// exposes every schedulable injection point of a run together with a
// canonical 128-bit hash of the persistent state at that point — the
// two primitives the bounded model checker in internal/verify is built
// on (DiVM-style hash compaction over resume states).

// StateHash is the canonical 128-bit hash of a PersistentState. Two
// states of the same module with equal persistent content hash equal,
// regardless of how execution arrived at them; any NVM word, counter,
// committed-output, or snapshot difference changes it (modulo the
// 2^-128-ish collision probability hash compaction accepts).
type StateHash [2]uint64

func (h StateHash) String() string { return fmt.Sprintf("%016x%016x", h[0], h[1]) }

// FrameState is one call-stack frame of a committed snapshot,
// serialized by function/block name so the value is meaningful outside
// the machine that captured it.
type FrameState struct {
	Fn      string  `json:"fn"`
	Block   string  `json:"block"`
	PC      int     `json:"pc"`
	Regs    []int64 `json:"regs"`
	RetReg  ir.Reg  `json:"ret_reg"`
	WantRet bool    `json:"want_ret"`
}

// SnapshotState is the committed recovery point inside a
// PersistentState: the volatile state execution rebuilds after a power
// failure. VMSlots/VMData/Restores keep the machine's stored order —
// that order is behavioral (restore costs sum sequentially in it), so
// it is part of the state's identity.
type SnapshotState struct {
	Frames   []FrameState `json:"frames"`
	VMSlots  []int32      `json:"vm_slots"`
	VMData   [][]int64    `json:"vm_data"`
	Restores []int32      `json:"restores"`
	Lazy     bool         `json:"lazy"`
	Site     int          `json:"site"`
	// Done is the snapshot's logical progress index. It is bookkeeping
	// (re-execution accounting), not behavior, and is excluded from the
	// hash: two states differing only in Done behave identically.
	Done int64 `json:"done"`
}

// PersistentState is the machine state that survives a power failure.
// NVM is indexed by the module's deterministic slot table (the same
// program always assigns the same slots); Out is the committed output
// prefix (output beyond the snapshot's high-water mark is lost with the
// volatile state); a nil Snap means no checkpoint has committed yet and
// resume is a cold restart.
type PersistentState struct {
	NVM      [][]int64      `json:"nvm"`
	Counters map[int]int64  `json:"counters,omitempty"`
	Out      []int64        `json:"out,omitempty"`
	Snap     *SnapshotState `json:"snap,omitempty"`
}

// Clone deep-copies the state.
func (ps *PersistentState) Clone() *PersistentState {
	out := &PersistentState{
		NVM: make([][]int64, len(ps.NVM)),
		Out: append([]int64(nil), ps.Out...),
	}
	for i, arr := range ps.NVM {
		out.NVM[i] = append([]int64(nil), arr...)
	}
	if len(ps.Counters) > 0 {
		out.Counters = make(map[int]int64, len(ps.Counters))
		for k, v := range ps.Counters {
			out.Counters[k] = v
		}
	}
	if sn := ps.Snap; sn != nil {
		cp := &SnapshotState{
			Frames:   make([]FrameState, len(sn.Frames)),
			VMSlots:  append([]int32(nil), sn.VMSlots...),
			VMData:   make([][]int64, len(sn.VMData)),
			Restores: append([]int32(nil), sn.Restores...),
			Lazy:     sn.Lazy,
			Site:     sn.Site,
			Done:     sn.Done,
		}
		for i, f := range sn.Frames {
			f.Regs = append([]int64(nil), f.Regs...)
			cp.Frames[i] = f
		}
		for i, d := range sn.VMData {
			cp.VMData[i] = append([]int64(nil), d...)
		}
		out.Snap = cp
	}
	return out
}

// ---- hashing ----
//
// The hash is three lanes mixed at the end:
//
//   - the NVM lane: a wrapping 128-bit sum of one per-cell hash
//     h(slot, index, value) over every NVM word. Summation is
//     commutative, so the lane is independent of write order and — the
//     property the machine exploits — updatable in O(1) per store
//     (lane += h(new) − h(old)) instead of rehashing NVM at every
//     injection point.
//   - the counter lane: the same construction over the non-zero
//     conditional-checkpoint counters (absent and zero coincide, which
//     is sound because counters only ever increment).
//   - the snapshot lane: a sequential hash of the committed snapshot
//     (frames, VM image, restore list in stored order) and the
//     committed output prefix, recomputed when a snapshot commits —
//     rare next to instruction steps.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
	// Two independent seeds make the two 64-bit lanes of the wrapping
	// sum effectively independent mixes of the same cell.
	laneSeed1 = 0x9e3779b97f4a7c15
	laneSeed2 = 0xc2b2ae3d27d4eb4f
	// coldTag stands in for the snapshot lane while no checkpoint has
	// committed, so "no snapshot" and "some snapshot" never collide on
	// an empty lane.
	coldTag = 0x736e61702d6e696c // "snap-nil"
)

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mix.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cellHash is the per-cell contribution of one NVM word to the
// commutative lanes.
func cellHash(slot int32, idx int, val int64) (uint64, uint64) {
	key := uint64(uint32(slot))<<32 | uint64(uint32(idx))
	v := uint64(val)
	return mix64(key ^ mix64(v^laneSeed1)), mix64(key ^ mix64(v^laneSeed2))
}

// ctrHash is the per-counter contribution to the commutative lanes.
// Counter IDs live in a different key space than NVM cells.
func ctrHash(id int, val int64) (uint64, uint64) {
	key := uint64(uint32(id)) | 0xc0de<<48
	v := uint64(val)
	return mix64(key ^ mix64(v^laneSeed1)), mix64(key ^ mix64(v^laneSeed2))
}

// seqHash accumulates one word into a sequential (order-sensitive)
// FNV-1a-style lane.
func seqHash(h, x uint64) uint64 {
	h ^= mix64(x)
	return h * fnvPrime64
}

func seqHashString(h uint64, s string) uint64 {
	h = seqHash(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// snapshotLane hashes a committed snapshot plus the committed output
// prefix sequentially. Done is deliberately excluded (bookkeeping, not
// behavior); everything else in the snapshot is behavioral.
func snapshotLane(sn *SnapshotState, out []int64) (uint64, uint64) {
	if sn == nil {
		return coldTag, coldTag
	}
	h := uint64(fnvOffset64)
	h = seqHash(h, uint64(len(sn.Frames)))
	for i := range sn.Frames {
		f := &sn.Frames[i]
		h = seqHashString(h, f.Fn)
		h = seqHashString(h, f.Block)
		h = seqHash(h, uint64(f.PC))
		h = seqHash(h, uint64(len(f.Regs)))
		for _, r := range f.Regs {
			h = seqHash(h, uint64(r))
		}
		h = seqHash(h, uint64(f.RetReg))
		if f.WantRet {
			h = seqHash(h, 1)
		} else {
			h = seqHash(h, 0)
		}
	}
	h = seqHash(h, uint64(len(sn.VMSlots)))
	for i, slot := range sn.VMSlots {
		h = seqHash(h, uint64(uint32(slot)))
		h = seqHash(h, uint64(len(sn.VMData[i])))
		for _, v := range sn.VMData[i] {
			h = seqHash(h, uint64(v))
		}
	}
	h = seqHash(h, uint64(len(sn.Restores)))
	for _, slot := range sn.Restores {
		h = seqHash(h, uint64(uint32(slot)))
	}
	if sn.Lazy {
		h = seqHash(h, 1)
	} else {
		h = seqHash(h, 0)
	}
	h = seqHash(h, uint64(uint32(sn.Site)))
	h = seqHash(h, uint64(len(out)))
	for _, v := range out {
		h = seqHash(h, uint64(v))
	}
	return h, mix64(h ^ laneSeed2)
}

// combineLanes folds the three lanes into the final 128-bit hash.
func combineLanes(nvm1, nvm2, ctr1, ctr2, snap1, snap2 uint64) StateHash {
	return StateHash{
		mix64(nvm1 ^ mix64(ctr1^mix64(snap1))),
		mix64(nvm2 ^ mix64(ctr2^mix64(snap2))),
	}
}

// Hash computes the canonical hash of the state. The machine maintains
// the same value incrementally during a hooked run; state_test holds
// the two computations equal.
func (ps *PersistentState) Hash() StateHash {
	var n1, n2, c1, c2 uint64
	for slot, arr := range ps.NVM {
		for i, v := range arr {
			h1, h2 := cellHash(int32(slot), i, v)
			n1 += h1
			n2 += h2
		}
	}
	for id, v := range ps.Counters {
		if v == 0 {
			continue
		}
		h1, h2 := ctrHash(id, v)
		c1 += h1
		c2 += h2
	}
	s1, s2 := snapshotLane(ps.Snap, ps.Out)
	return combineLanes(n1, n2, c1, c2, s1, s2)
}

// PointVisit is one schedulable injection point of a hooked run: a
// moment at which a PowerSchedule could kill the supply. Step and Saves
// are this run's own ordinals (they start at zero on a resumed run);
// Occurrence is the ordinal in the point kind's own space — the value a
// FailPoint of that kind would be addressed by. Hash is the canonical
// hash of the persistent state that would survive a failure at exactly
// this point.
type PointVisit struct {
	Kind       PointKind
	Step       int64
	Saves      int64
	Occurrence int64
	Hash       StateHash
}

// Hook observes every schedulable injection point of a run. capture
// materializes the persistent state at the visit as a deep copy — call
// it only when the state is worth keeping (it costs O(state), where the
// visit itself costs O(1)). A non-nil Hook forces the per-instruction
// reference interpreter (Config.Interpret), so hooked throughput is
// interpreter throughput.
type Hook func(v PointVisit, capture func() *PersistentState)

// InitialState returns the persistent state a run of the module would
// start from before any execution: NVM initialized (with input
// overrides applied), no counters, no output, no snapshot — the root
// node of the crash-recovery state graph.
func InitialState(m *ir.Module, cfg Config) (*PersistentState, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model == nil {
		return nil, &ConfigError{Field: "Model", Reason: "must not be nil"}
	}
	if m.FuncByName("main") == nil {
		return nil, ErrNoMain
	}
	mc := newMachine(m, cfg)
	return mc.captureState(), nil
}

// ---- machine-side capture ----

// captureState deep-copies the machine's current persistent state: what
// would survive if power failed right now.
func (mc *machine) captureState() *PersistentState {
	ps := &PersistentState{NVM: make([][]int64, len(mc.nvm))}
	for i, arr := range mc.nvm {
		ps.NVM[i] = append([]int64(nil), arr...)
	}
	for id, v := range mc.counters {
		if v == 0 {
			continue
		}
		if ps.Counters == nil {
			ps.Counters = make(map[int]int64, len(mc.counters))
		}
		ps.Counters[id] = v
	}
	sn := mc.snap
	if sn == nil {
		return ps
	}
	ps.Out = append([]int64(nil), mc.out[:sn.outLen]...)
	st := &SnapshotState{
		Frames:   make([]FrameState, len(sn.frames)),
		VMSlots:  append([]int32(nil), sn.vmSlots...),
		VMData:   make([][]int64, len(sn.vmData)),
		Restores: append([]int32(nil), sn.restores...),
		Lazy:     sn.lazy,
		Site:     sn.site,
		Done:     sn.done,
	}
	for i := range sn.frames {
		f := &sn.frames[i]
		st.Frames[i] = FrameState{
			Fn:      f.fn.Name,
			Block:   f.block.Name,
			PC:      f.pc,
			Regs:    append([]int64(nil), f.regs...),
			RetReg:  f.retReg,
			WantRet: f.wantRet,
		}
	}
	for i, d := range sn.vmData {
		st.VMData[i] = append([]int64(nil), d...)
	}
	ps.Snap = st
	return ps
}

// ---- machine-side incremental lanes ----

// recomputeLanes rebuilds every hash lane from scratch — run at boot
// and after a Resume install; every later mutation updates the lanes
// incrementally.
func (mc *machine) recomputeLanes() {
	mc.nvmLane1, mc.nvmLane2 = 0, 0
	for slot, arr := range mc.nvm {
		for i, v := range arr {
			h1, h2 := cellHash(int32(slot), i, v)
			mc.nvmLane1 += h1
			mc.nvmLane2 += h2
		}
	}
	mc.ctrLane1, mc.ctrLane2 = 0, 0
	for id, v := range mc.counters {
		if v == 0 {
			continue
		}
		h1, h2 := ctrHash(id, v)
		mc.ctrLane1 += h1
		mc.ctrLane2 += h2
	}
	mc.refreshSnapLane()
}

// refreshSnapLane recomputes the snapshot+output lane from the live
// snapshot. Called when a snapshot commits (takeSnapshot) — the only
// event that changes it.
func (mc *machine) refreshSnapLane() {
	sn := mc.snap
	if sn == nil {
		mc.snapLane1, mc.snapLane2 = coldTag, coldTag
		return
	}
	h := uint64(fnvOffset64)
	h = seqHash(h, uint64(len(sn.frames)))
	for i := range sn.frames {
		f := &sn.frames[i]
		h = seqHashString(h, f.fn.Name)
		h = seqHashString(h, f.block.Name)
		h = seqHash(h, uint64(f.pc))
		h = seqHash(h, uint64(len(f.regs)))
		for _, r := range f.regs {
			h = seqHash(h, uint64(r))
		}
		h = seqHash(h, uint64(f.retReg))
		if f.wantRet {
			h = seqHash(h, 1)
		} else {
			h = seqHash(h, 0)
		}
	}
	h = seqHash(h, uint64(len(sn.vmSlots)))
	for i, slot := range sn.vmSlots {
		h = seqHash(h, uint64(uint32(slot)))
		h = seqHash(h, uint64(len(sn.vmData[i])))
		for _, v := range sn.vmData[i] {
			h = seqHash(h, uint64(v))
		}
	}
	h = seqHash(h, uint64(len(sn.restores)))
	for _, slot := range sn.restores {
		h = seqHash(h, uint64(uint32(slot)))
	}
	if sn.lazy {
		h = seqHash(h, 1)
	} else {
		h = seqHash(h, 0)
	}
	h = seqHash(h, uint64(uint32(sn.site)))
	h = seqHash(h, uint64(sn.outLen))
	for _, v := range mc.out[:sn.outLen] {
		h = seqHash(h, uint64(v))
	}
	mc.snapLane1, mc.snapLane2 = h, mix64(h^laneSeed2)
}

// stateHash folds the live lanes into the canonical hash — the value
// PersistentState.Hash would compute for captureState().
func (mc *machine) stateHash() StateHash {
	return combineLanes(mc.nvmLane1, mc.nvmLane2, mc.ctrLane1, mc.ctrLane2, mc.snapLane1, mc.snapLane2)
}

// setNVM writes one NVM word, keeping the commutative lanes current.
func (mc *machine) setNVM(slot int32, idx int, val int64) {
	if mc.track {
		old := mc.nvm[slot][idx]
		if old != val {
			o1, o2 := cellHash(slot, idx, old)
			n1, n2 := cellHash(slot, idx, val)
			mc.nvmLane1 += n1 - o1
			mc.nvmLane2 += n2 - o2
		}
	}
	mc.nvm[slot][idx] = val
}

// commitSlot copies a VM image over its NVM home (a checkpoint commit),
// keeping the lanes current.
func (mc *machine) commitSlot(slot int32, src []int64) {
	dst := mc.nvm[slot]
	if !mc.track {
		copy(dst, src)
		return
	}
	for i, v := range src {
		if dst[i] == v {
			continue
		}
		o1, o2 := cellHash(slot, i, dst[i])
		n1, n2 := cellHash(slot, i, v)
		mc.nvmLane1 += n1 - o1
		mc.nvmLane2 += n2 - o2
		dst[i] = v
	}
}

// bumpCounter increments a conditional-checkpoint counter, keeping the
// counter lanes current.
func (mc *machine) bumpCounter(id int) int64 {
	v := mc.counters[id] + 1
	mc.counters[id] = v
	if mc.track {
		if v > 1 {
			o1, o2 := ctrHash(id, v-1)
			mc.ctrLane1 -= o1
			mc.ctrLane2 -= o2
		}
		n1, n2 := ctrHash(id, v)
		mc.ctrLane1 += n1
		mc.ctrLane2 += n2
	}
	return v
}

// visitPoint hands one schedulable injection point to the hook.
func (mc *machine) visitPoint(kind PointKind, occurrence int64) {
	mc.hook(PointVisit{
		Kind:       kind,
		Step:       mc.res.Steps,
		Saves:      mc.res.SaveAttempts,
		Occurrence: occurrence,
		Hash:       mc.stateHash(),
	}, mc.captureFn)
}

// ---- resume ----

// installResume overwrites the machine's persistent state with ps and
// performs the power-failure recovery boot: a run with Config.Resume
// behaves exactly like the continuation of a run that failed leaving ps
// in NVM.
func (mc *machine) installResume(ps *PersistentState) error {
	if len(ps.NVM) != len(mc.nvm) {
		return fmt.Errorf("emulator: resume state has %d NVM slots, module has %d (state captured from a different module?)",
			len(ps.NVM), len(mc.nvm))
	}
	for slot, arr := range ps.NVM {
		if len(arr) != len(mc.nvm[slot]) {
			return fmt.Errorf("emulator: resume state slot %d has %d elems, module wants %d",
				slot, len(arr), len(mc.nvm[slot]))
		}
		copy(mc.nvm[slot], arr)
	}
	for id, v := range ps.Counters {
		mc.counters[id] = v
	}
	if sn := ps.Snap; sn != nil {
		rebuilt := &snapshot{
			vmSlots:  append([]int32(nil), sn.VMSlots...),
			vmData:   make([][]int64, len(sn.VMData)),
			outLen:   len(ps.Out),
			done:     sn.Done,
			lazy:     sn.Lazy,
			site:     sn.Site,
			restores: append([]int32(nil), sn.Restores...),
		}
		n := int32(len(mc.nvm))
		for _, slot := range rebuilt.vmSlots {
			if slot < 0 || slot >= n {
				return fmt.Errorf("emulator: resume snapshot references slot %d, module has %d", slot, n)
			}
		}
		for _, slot := range rebuilt.restores {
			if slot < 0 || slot >= n {
				return fmt.Errorf("emulator: resume snapshot restores slot %d, module has %d", slot, n)
			}
		}
		for i, d := range sn.VMData {
			rebuilt.vmData[i] = append([]int64(nil), d...)
		}
		for i := range sn.Frames {
			f := &sn.Frames[i]
			fn := mc.mod.FuncByName(f.Fn)
			if fn == nil {
				return fmt.Errorf("emulator: resume snapshot references unknown function %q", f.Fn)
			}
			blk := fn.BlockByName(f.Block)
			if blk == nil {
				return fmt.Errorf("emulator: resume snapshot references unknown block %s.%s", f.Fn, f.Block)
			}
			if f.PC < 0 || f.PC > len(blk.Instrs) {
				return fmt.Errorf("emulator: resume snapshot pc %d out of range in %s.%s", f.PC, f.Fn, f.Block)
			}
			rebuilt.frames = append(rebuilt.frames, frame{
				fn:      fn,
				block:   blk,
				cb:      mc.prog.BlockOf(blk),
				pc:      f.PC,
				regs:    append([]int64(nil), f.Regs...),
				retReg:  f.RetReg,
				wantRet: f.WantRet,
			})
		}
		mc.out = append(mc.out[:0], ps.Out...)
		mc.snap = rebuilt
		mc.done = sn.Done
		mc.furthest = sn.Done
		mc.maxSnapDone = sn.Done
		if mc.track {
			mc.recomputeLanes()
		}
		// The recovery boot proper: rebuild volatile state from the
		// snapshot and charge the restore — the same path a mid-run power
		// failure takes (restoreSnap), so a resumed run is bit-identical
		// to the continuation of the failed one.
		mc.restoreSnap()
		return nil
	}
	if len(ps.Out) > 0 {
		return fmt.Errorf("emulator: resume state has committed output but no snapshot")
	}
	// Cold resume: NVM (and counters) carry over, execution restarts
	// from main. The machine is already booted that way; only the lanes
	// need the overwritten NVM.
	if mc.track {
		mc.recomputeLanes()
	}
	return nil
}
