package emulator

import (
	"testing"

	"schematic/internal/ir"
)

// rollbackProgram is loopProgram with rollback-style checkpoints: save
// and continue, recover to the last save on failure — the shape whose
// crash-recovery state graph the model checker explores.
func rollbackProgram(t testing.TB, n int, every int) *ir.Module {
	t.Helper()
	m := &ir.Module{Name: "rb"}
	acc := m.NewGlobal("acc", 1)
	idx := m.NewGlobal("i", 1)
	f := m.NewFunc("main", nil, false)

	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	done := f.NewBlock("done")

	b := ir.NewBuilder(f).At(entry)
	b.Emit(&ir.Checkpoint{ID: 0, Kind: ir.CkRollback})
	zero := b.Const(0)
	b.Store(acc, zero)
	b.Store(idx, zero)
	b.Jmp(head)

	b.At(head)
	i := b.Load(idx)
	lim := b.Const(int64(n))
	c := b.Bin(ir.OpLt, i, lim)
	b.Br(c, body, done)

	b.At(body)
	a := b.Load(acc)
	i2 := b.Load(idx)
	a2 := b.Bin(ir.OpAdd, a, i2)
	// The checkpoint cuts the load->store WAR dependency: every recovery
	// window begins by re-writing acc/idx from snapshot registers, so
	// re-execution is idempotent and the output stays oracle-correct no
	// matter where power fails.
	b.Emit(&ir.Checkpoint{ID: 1, Kind: ir.CkRollback, Every: every})
	b.Store(acc, a2)
	one := b.Const(1)
	i3 := b.Bin(ir.OpAdd, i2, one)
	b.Store(idx, i3)
	b.Jmp(head)

	b.At(done)
	out := b.Load(acc)
	b.Out(out)
	b.Ret()

	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

// intermittentCfg is sized so the loop suffers real exhaustion failures
// between checkpoints without getting stuck.
func intermittentCfg() Config {
	cfg := baseCfg()
	cfg.Intermittent = true
	cfg.EB = 400
	return cfg
}

// TestHookHashMatchesCanonical holds the machine's incremental lane
// hash equal to the canonical PersistentState.Hash at every injection
// point, and captured states equal to their clones.
func TestHookHashMatchesCanonical(t *testing.T) {
	m := rollbackProgram(t, 40, 3)
	cfg := intermittentCfg()
	visits := 0
	cfg.Hook = func(v PointVisit, capture func() *PersistentState) {
		visits++
		if visits%25 != 1 && v.Kind == PointStep {
			return // capture is O(state); sample step points
		}
		ps := capture()
		if got := ps.Hash(); got != v.Hash {
			t.Fatalf("visit %d (%v@%d): canonical hash %v != incremental %v",
				visits, v.Kind, v.Occurrence, got, v.Hash)
		}
		if again := capture(); again.Hash() != v.Hash {
			t.Fatalf("second capture at visit %d hashes differently", visits)
		}
		if cl := ps.Clone(); cl.Hash() != v.Hash {
			t.Fatalf("clone at visit %d hashes differently", visits)
		}
	}
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Verdict != Completed {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if visits == 0 {
		t.Fatal("hook never fired")
	}
	if res.PowerFailures == 0 {
		t.Fatal("config produced no power failures; test exercises nothing")
	}
}

// TestStateHashOrderIndependence: the hash must not depend on map
// iteration or construction order of the canonical form — two runs
// reaching the same persistent state hash equal no matter how they got
// there.
func TestStateHashOrderIndependence(t *testing.T) {
	m := rollbackProgram(t, 30, 2)
	cfg := intermittentCfg()
	var captured []*PersistentState
	cfg.Hook = func(v PointVisit, capture func() *PersistentState) {
		if v.Kind == PointAfterSave {
			captured = append(captured, capture())
		}
	}
	if _, err := Run(m, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(captured) < 2 {
		t.Fatalf("captured %d states, need at least 2", len(captured))
	}
	for i, ps := range captured {
		// Rebuild the counters map in a different insertion order and
		// re-hash; clone (fresh map, fresh slices) must also agree.
		rebuilt := ps.Clone()
		rebuilt.Counters = make(map[int]int64, len(ps.Counters))
		keys := make([]int, 0, len(ps.Counters))
		for k := range ps.Counters {
			keys = append(keys, k)
		}
		for j := len(keys) - 1; j >= 0; j-- {
			rebuilt.Counters[keys[j]] = ps.Counters[keys[j]]
		}
		if rebuilt.Hash() != ps.Hash() {
			t.Fatalf("state %d: hash depends on construction order", i)
		}
	}
}

// TestStateHashSensitivity: any persistent-state difference — an NVM
// word, a counter, committed output, snapshot contents, or snapshot
// presence — must change the hash.
func TestStateHashSensitivity(t *testing.T) {
	m := rollbackProgram(t, 40, 3)
	cfg := intermittentCfg()
	var ps *PersistentState
	cfg.Hook = func(v PointVisit, capture func() *PersistentState) {
		// Keep the last save-phase state: it has a snapshot, counters,
		// and committed output context.
		if v.Kind == PointAfterSave {
			ps = capture()
		}
	}
	if _, err := Run(m, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ps == nil || ps.Snap == nil {
		t.Fatal("no snapshot-bearing state captured")
	}
	base := ps.Hash()

	mutations := []struct {
		name string
		mut  func(*PersistentState)
	}{
		{"nvm word", func(s *PersistentState) { s.NVM[0][0] ^= 1 }},
		{"new counter", func(s *PersistentState) {
			if s.Counters == nil {
				s.Counters = map[int]int64{}
			}
			s.Counters[99] = 1
		}},
		{"counter value", func(s *PersistentState) {
			if len(s.Counters) == 0 {
				t.Skip("no counters in captured state")
			}
			for k := range s.Counters {
				s.Counters[k]++
				break
			}
		}},
		{"committed output", func(s *PersistentState) { s.Out = append(s.Out, 7) }},
		{"snapshot pc", func(s *PersistentState) { s.Snap.Frames[0].PC++ }},
		{"snapshot reg", func(s *PersistentState) {
			if len(s.Snap.Frames[0].Regs) == 0 {
				t.Skip("no regs in frame")
			}
			s.Snap.Frames[0].Regs[0] ^= 1
		}},
		{"snapshot lazy flip", func(s *PersistentState) { s.Snap.Lazy = !s.Snap.Lazy }},
		{"snapshot site", func(s *PersistentState) { s.Snap.Site++ }},
		{"snapshot removed", func(s *PersistentState) { s.Snap, s.Out = nil, nil }},
	}
	for _, tc := range mutations {
		mutated := ps.Clone()
		tc.mut(mutated)
		if mutated.Hash() == base {
			t.Errorf("%s: mutation did not change the hash", tc.name)
		}
	}
	// Done is bookkeeping, not behavior: it must NOT change the hash.
	same := ps.Clone()
	same.Snap.Done++
	if same.Hash() != base {
		t.Errorf("Done changed the hash; it is excluded from state identity")
	}
}

// TestResumeContinuesDeterministically: a run resumed from a captured
// state must (1) open at exactly that state's hash and (2) be fully
// deterministic — two resumes from clones of the same state produce
// identical results, and the resumed completion produces the oracle
// output (the committed prefix is part of the state).
func TestResumeContinuesDeterministically(t *testing.T) {
	m := rollbackProgram(t, 40, 3)

	oracle, err := Run(m, baseCfg())
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}

	cfg := intermittentCfg()
	var mid *PersistentState
	saves := 0
	cfg.Hook = func(v PointVisit, capture func() *PersistentState) {
		if v.Kind == PointAfterSave {
			saves++
			if saves == 3 {
				mid = capture()
			}
		}
	}
	if _, err := Run(m, cfg); err != nil {
		t.Fatalf("hooked run: %v", err)
	}
	if mid == nil {
		t.Fatal("did not reach the third save")
	}

	resume := func() (*Result, StateHash) {
		rcfg := intermittentCfg()
		rcfg.Resume = mid.Clone()
		var first StateHash
		got := false
		rcfg.Hook = func(v PointVisit, capture func() *PersistentState) {
			if !got {
				first, got = v.Hash, true
			}
		}
		res, err := Run(m, rcfg)
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		return res, first
	}

	r1, h1 := resume()
	r2, h2 := resume()
	if h1 != mid.Hash() {
		t.Errorf("resumed run opened at hash %v, want the captured state's %v", h1, mid.Hash())
	}
	if h1 != h2 {
		t.Errorf("two resumes opened at different hashes")
	}
	if r1.Verdict != r2.Verdict || r1.Steps != r2.Steps || r1.PowerFailures != r2.PowerFailures ||
		r1.Energy != r2.Energy || !equalInt64s(r1.Output, r2.Output) {
		t.Errorf("resumed runs diverged:\n  %+v\n  %+v", r1, r2)
	}
	if r1.Verdict != Completed {
		t.Fatalf("resumed run verdict = %v", r1.Verdict)
	}
	if !equalInt64s(r1.Output, oracle.Output) {
		t.Errorf("resumed completion output %v, oracle %v", r1.Output, oracle.Output)
	}
}

// TestInitialState: the cold root captures initial NVM (with input
// overrides) and no snapshot, and matches the first hook visit of a
// fresh run.
func TestInitialState(t *testing.T) {
	m := rollbackProgram(t, 10, 2)
	cfg := intermittentCfg()
	root, err := InitialState(m, cfg)
	if err != nil {
		t.Fatalf("InitialState: %v", err)
	}
	if root.Snap != nil || len(root.Out) != 0 || len(root.Counters) != 0 {
		t.Fatalf("cold root is not cold: %+v", root)
	}
	var first StateHash
	got := false
	cfg.Hook = func(v PointVisit, capture func() *PersistentState) {
		if !got {
			first, got = v.Hash, true
		}
	}
	if _, err := Run(m, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !got || first != root.Hash() {
		t.Errorf("first visit hash %v, InitialState hash %v", first, root.Hash())
	}
}

// TestResumeValidation: shape mismatches and conflicting options are
// rejected up front.
func TestResumeValidation(t *testing.T) {
	m := rollbackProgram(t, 10, 2)
	cfg := intermittentCfg()
	root, err := InitialState(m, cfg)
	if err != nil {
		t.Fatalf("InitialState: %v", err)
	}

	bad := root.Clone()
	bad.NVM = bad.NVM[:1]
	cfg.Resume = bad
	if _, err := Run(m, cfg); err == nil {
		t.Error("slot-count mismatch accepted")
	}

	cfg.Resume = root.Clone()
	cfg.Inputs = map[string][]int64{"acc": {1}}
	if _, err := Run(m, cfg); err == nil {
		t.Error("Resume+Inputs accepted")
	}
	cfg.Inputs = nil

	other := rollbackProgram(t, 10, 2)
	cfg.Resume = root.Clone()
	cfg.Resume.Snap = &SnapshotState{
		Frames: []FrameState{{Fn: "nosuch", Block: "entry"}},
	}
	if _, err := Run(other, cfg); err == nil {
		t.Error("unknown resume function accepted")
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
