// Package energy models the worst-case energy consumption of the target
// platform. SCHEMATIC assumes "a safe yet precise worst-case energy
// consumption model is provided as an input" (paper, II-B); this package is
// that input.
//
// The model mirrors the structure of the one the paper borrows from ALFRED:
// the energy of an instruction is derived from its execution time (cycles)
// and the kind of memory it touches (VM or NVM), with NVM accesses costing
// up to ~2.47× a VM access on the MSP430FR5969. Absolute values are in
// nanojoules; only the ratios matter for the reproduced experiment shapes.
package energy

import (
	"fmt"

	"schematic/internal/ir"
)

// Model is a worst-case energy model for a hybrid VM/NVM platform.
type Model struct {
	Name string

	// EnergyPerCycle is the CPU core energy per clock cycle, in nJ.
	EnergyPerCycle float64

	// Cycle counts per instruction class (excluding memory access time).
	CyclesALU    int // add/sub/logic/compare
	CyclesMulDiv int
	CyclesConst  int
	CyclesBranch int
	CyclesCall   int
	CyclesRet    int
	CyclesOut    int

	// Memory access: cycles and energy per word access, by space.
	VMAccessCycles  int
	NVMAccessCycles int
	VMReadEnergy    float64 // nJ per word read from SRAM
	VMWriteEnergy   float64
	NVMReadEnergy   float64 // nJ per word read from FRAM
	NVMWriteEnergy  float64

	// Checkpointing costs.
	RegFileBytes   int     // architectural register file saved at every checkpoint
	SavePerByte    float64 // nJ per byte streamed into the NVM checkpoint area
	RestorePerByte float64 // nJ per byte read back
	CheckpointBase float64 // fixed overhead of a save operation (bookkeeping, sleep entry)
	RestoreBase    float64 // fixed overhead of a restore operation (wake-up, bookkeeping)

	// SleepWakeCheck is the energy of one voltage measurement while waiting
	// for the capacitor to replenish (Fig. 3); charged to the harvesting
	// budget, not the program, so it is informational.
	SleepWakeCheck float64
}

// MSP430FR5969 returns the default model: a 16 MHz MSP430FR5969-class MCU
// with 2 KB SRAM and 64 KB FRAM.
func MSP430FR5969() *Model {
	return &Model{
		Name:            "MSP430FR5969@16MHz",
		EnergyPerCycle:  0.40,
		CyclesALU:       1,
		CyclesMulDiv:    8,
		CyclesConst:     1,
		CyclesBranch:    2,
		CyclesCall:      5,
		CyclesRet:       4,
		CyclesOut:       2,
		VMAccessCycles:  2,
		NVMAccessCycles: 5, // FRAM wait states above 8 MHz
		VMReadEnergy:    0.75,
		VMWriteEnergy:   0.75,
		NVMReadEnergy:   1.85, // ≈ 2.47 × VM access energy
		NVMWriteEnergy:  1.85,
		RegFileBytes:    32, // 16 registers × 2 bytes
		SavePerByte:     1.30,
		RestorePerByte:  1.00,
		CheckpointBase:  20,
		RestoreBase:     10,
		SleepWakeCheck:  2,
	}
}

// Validate reports configuration errors.
func (m *Model) Validate() error {
	if m.EnergyPerCycle <= 0 {
		return fmt.Errorf("energy: %s: EnergyPerCycle must be positive", m.Name)
	}
	if m.NVMReadEnergy < m.VMReadEnergy || m.NVMWriteEnergy < m.VMWriteEnergy {
		return fmt.Errorf("energy: %s: NVM access cheaper than VM access", m.Name)
	}
	if m.SavePerByte <= 0 || m.RestorePerByte <= 0 {
		return fmt.Errorf("energy: %s: checkpoint byte costs must be positive", m.Name)
	}
	if m.RegFileBytes <= 0 {
		return fmt.Errorf("energy: %s: RegFileBytes must be positive", m.Name)
	}
	return nil
}

// DeltaER is the per-read energy gain of VM over NVM (Eq. 1).
func (m *Model) DeltaER() float64 { return m.NVMReadEnergy - m.VMReadEnergy }

// DeltaEW is the per-write energy gain of VM over NVM (Eq. 1).
func (m *Model) DeltaEW() float64 { return m.NVMWriteEnergy - m.VMWriteEnergy }

// ReadGain is the total per-read energy gain of a VM access over an NVM
// access, including the core energy of the extra NVM wait cycles. This is
// the ΔER of Eq. 1 under this model.
func (m *Model) ReadGain() float64 {
	return m.DeltaER() + float64(m.NVMAccessCycles-m.VMAccessCycles)*m.EnergyPerCycle
}

// WriteGain is the total per-write gain of VM over NVM (the ΔEW of Eq. 1).
func (m *Model) WriteGain() float64 {
	return m.DeltaEW() + float64(m.NVMAccessCycles-m.VMAccessCycles)*m.EnergyPerCycle
}

// InstrCost returns the energy (nJ) and cycle count of an instruction in
// a single classification pass: core energy for its cycles plus the
// memory access energy when applicable. For memory instructions, space
// selects the accessed memory. It is the single source of per-instruction
// cost; InstrEnergy and InstrCycles are views of it.
func (m *Model) InstrCost(in ir.Instr, space ir.Space) (nJ float64, cycles int64) {
	var c int
	var mem float64
	switch x := in.(type) {
	case *ir.Const:
		c = m.CyclesConst
	case *ir.BinOp:
		if x.Op == ir.OpMul || x.Op == ir.OpDiv || x.Op == ir.OpRem {
			c = m.CyclesMulDiv
		} else {
			c = m.CyclesALU
		}
	case *ir.Load:
		if space == ir.VM {
			c, mem = m.VMAccessCycles, m.VMReadEnergy
		} else {
			c, mem = m.NVMAccessCycles, m.NVMReadEnergy
		}
	case *ir.Store:
		if space == ir.VM {
			c, mem = m.VMAccessCycles, m.VMWriteEnergy
		} else {
			c, mem = m.NVMAccessCycles, m.NVMWriteEnergy
		}
	case *ir.Call:
		c = m.CyclesCall
	case *ir.Ret:
		c = m.CyclesRet
	case *ir.Br, *ir.Jmp:
		c = m.CyclesBranch
	case *ir.Out:
		c = m.CyclesOut
	case *ir.Checkpoint, *ir.LoopBound:
		c = 0 // checkpoints are accounted dynamically; bounds are metadata
	default:
		c = m.CyclesALU
	}
	// Two statements, not a*b+c: keeps the rounding identical to the
	// historical InstrEnergy (no fused multiply-add).
	e := float64(c) * m.EnergyPerCycle
	e += mem
	return e, int64(c)
}

// InstrCycles returns the cycle count of an instruction. For memory
// instructions, space selects the accessed memory.
func (m *Model) InstrCycles(in ir.Instr, space ir.Space) int {
	_, c := m.InstrCost(in, space)
	return int(c)
}

// InstrEnergy returns the energy of an instruction in nJ: core energy for
// its cycles plus the memory access energy when applicable.
func (m *Model) InstrEnergy(in ir.Instr, space ir.Space) float64 {
	e, _ := m.InstrCost(in, space)
	return e
}

// SaveVarCost is the energy to copy a VM variable into the NVM checkpoint
// area (the Esave of Eq. 2).
func (m *Model) SaveVarCost(v *ir.Var) float64 {
	return float64(v.SizeBytes()) * m.SavePerByte
}

// RestoreVarCost is the energy to copy a variable back into VM (the
// Erestore of Eq. 2).
func (m *Model) RestoreVarCost(v *ir.Var) float64 {
	return float64(v.SizeBytes()) * m.RestorePerByte
}

// SaveRegsCost is the energy to save the register file plus the fixed
// checkpoint overhead — charged at every enabled checkpoint.
func (m *Model) SaveRegsCost() float64 {
	return m.CheckpointBase + float64(m.RegFileBytes)*m.SavePerByte
}

// RegBytesFor is the machine state saved for a refined register count:
// PC and SR always, plus the live general-purpose registers; never more
// than the full file. liveRegs < 0 selects the full register file.
func (m *Model) RegBytesFor(liveRegs int) int {
	if liveRegs < 0 {
		return m.RegFileBytes
	}
	b := (liveRegs + 2) * ir.WordBytes
	if b > m.RegFileBytes {
		b = m.RegFileBytes
	}
	return b
}

// SaveRegsCostFor is SaveRegsCost with §VII's liveness refinement: only
// liveRegs general-purpose registers (plus PC/SR) are written.
func (m *Model) SaveRegsCostFor(liveRegs int) float64 {
	if liveRegs < 0 {
		return m.SaveRegsCost()
	}
	return m.CheckpointBase + float64(m.RegBytesFor(liveRegs))*m.SavePerByte
}

// RestoreRegsCostFor is the refined counterpart of RestoreRegsCost.
func (m *Model) RestoreRegsCostFor(liveRegs int) float64 {
	if liveRegs < 0 {
		return m.RestoreRegsCost()
	}
	return m.RestoreBase + float64(m.RegBytesFor(liveRegs))*m.RestorePerByte
}

// RestoreRegsCost is the energy to restore the register file plus the fixed
// restore overhead.
func (m *Model) RestoreRegsCost() float64 {
	return m.RestoreBase + float64(m.RegFileBytes)*m.RestorePerByte
}

// SaveCost is the full cost of a checkpoint save: registers plus the given
// variables.
func (m *Model) SaveCost(vars []*ir.Var) float64 {
	e := m.SaveRegsCost()
	for _, v := range vars {
		e += m.SaveVarCost(v)
	}
	return e
}

// RestoreCost is the full cost of a checkpoint restore: registers plus the
// given variables.
func (m *Model) RestoreCost(vars []*ir.Var) float64 {
	e := m.RestoreRegsCost()
	for _, v := range vars {
		e += m.RestoreVarCost(v)
	}
	return e
}

// BlockExecEnergy returns the energy to execute block b once under the
// given allocation (vm[v] true means v is in VM). Checkpoint instructions
// contribute nothing here; their cost is dynamic.
func (m *Model) BlockExecEnergy(b *ir.Block, vm map[*ir.Var]bool) float64 {
	e := 0.0
	for _, in := range b.Instrs {
		space := ir.NVM
		if v, _, ok := ir.AccessedVar(in); ok && vm != nil && vm[v] {
			space = ir.VM
		}
		cost, _ := m.InstrCost(in, space)
		e += cost
	}
	return e
}

// Budget describes the platform's energy buffer: a capacitor storing EB
// nanojoules when fully charged (paper, II-B).
type Budget struct {
	EB float64 // usable energy of a full capacitor, nJ
}

// Usable returns the energy available for program execution between two
// full-capacitor states.
func (b Budget) Usable() float64 { return b.EB }
