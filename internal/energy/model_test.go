package energy

import (
	"testing"

	"schematic/internal/ir"
)

func TestDefaultModelValid(t *testing.T) {
	m := MSP430FR5969()
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	if m.DeltaER() <= 0 || m.DeltaEW() <= 0 {
		t.Errorf("VM must be cheaper than NVM: dER=%v dEW=%v", m.DeltaER(), m.DeltaEW())
	}
	// The paper quotes NVM accesses consuming up to 2.47× VM accesses.
	ratio := m.NVMReadEnergy / m.VMReadEnergy
	if ratio < 2.0 || ratio > 3.0 {
		t.Errorf("NVM/VM read ratio = %.2f, want ≈2.47", ratio)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.EnergyPerCycle = 0 },
		func(m *Model) { m.NVMReadEnergy = m.VMReadEnergy / 2 },
		func(m *Model) { m.SavePerByte = 0 },
		func(m *Model) { m.RegFileBytes = 0 },
	}
	for i, mutate := range cases {
		m := MSP430FR5969()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a broken model", i)
		}
	}
}

func TestInstrEnergySpaces(t *testing.T) {
	m := MSP430FR5969()
	v := &ir.Var{Name: "x", Elems: 1}
	ld := &ir.Load{Dst: 0, Var: v}
	st := &ir.Store{Var: v, Src: 0}

	if eVM, eNVM := m.InstrEnergy(ld, ir.VM), m.InstrEnergy(ld, ir.NVM); eVM >= eNVM {
		t.Errorf("VM load (%v) should be cheaper than NVM load (%v)", eVM, eNVM)
	}
	if eVM, eNVM := m.InstrEnergy(st, ir.VM), m.InstrEnergy(st, ir.NVM); eVM >= eNVM {
		t.Errorf("VM store (%v) should be cheaper than NVM store (%v)", eVM, eNVM)
	}
	// Non-memory instructions are space-independent.
	add := &ir.BinOp{Op: ir.OpAdd}
	if m.InstrEnergy(add, ir.VM) != m.InstrEnergy(add, ir.NVM) {
		t.Errorf("ALU energy should not depend on space")
	}
	mul := &ir.BinOp{Op: ir.OpMul}
	if m.InstrEnergy(mul, ir.VM) <= m.InstrEnergy(add, ir.VM) {
		t.Errorf("mul should cost more than add")
	}
	if m.InstrCycles(&ir.Checkpoint{}, ir.NVM) != 0 {
		t.Errorf("checkpoint instruction should have no static cycles")
	}
}

func TestSaveRestoreCosts(t *testing.T) {
	m := MSP430FR5969()
	small := &ir.Var{Name: "s", Elems: 1}
	big := &ir.Var{Name: "b", Elems: 100}

	if m.SaveVarCost(big) <= m.SaveVarCost(small) {
		t.Errorf("bigger variables must cost more to save")
	}
	if got, want := m.SaveVarCost(small), float64(ir.WordBytes)*m.SavePerByte; got != want {
		t.Errorf("SaveVarCost(scalar) = %v, want %v", got, want)
	}
	full := m.SaveCost([]*ir.Var{small, big})
	if full != m.SaveRegsCost()+m.SaveVarCost(small)+m.SaveVarCost(big) {
		t.Errorf("SaveCost must sum registers and variables")
	}
	if m.RestoreCost(nil) != m.RestoreRegsCost() {
		t.Errorf("RestoreCost(nil) should be registers only")
	}
}

func TestBlockExecEnergy(t *testing.T) {
	mod := ir.MustParse(`module e
global x

func void main() regs 2 {
entry:
  r0 = const 5
  store x, r0
  r1 = load x
  out r1
  ret
}
`)
	m := MSP430FR5969()
	blk := mod.FuncByName("main").Entry()
	x := mod.GlobalByName("x")

	eNVM := m.BlockExecEnergy(blk, nil)
	eVM := m.BlockExecEnergy(blk, map[*ir.Var]bool{x: true})
	if eVM >= eNVM {
		t.Errorf("VM allocation should reduce block energy: vm=%v nvm=%v", eVM, eNVM)
	}
	// The difference is exactly one read and one write delta plus the cycle
	// difference of the two accesses.
	cycleDelta := 2 * float64(m.NVMAccessCycles-m.VMAccessCycles) * m.EnergyPerCycle
	want := m.DeltaER() + m.DeltaEW() + cycleDelta
	if diff := eNVM - eVM; !close(diff, want) {
		t.Errorf("energy delta = %v, want %v", diff, want)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
