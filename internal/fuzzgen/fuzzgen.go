// Package fuzzgen generates random — but well-formed, terminating, and
// runtime-error-free — MiniC programs for differential testing: a fuzzed
// program is transformed by a checkpoint-placement technique and must
// produce the same output under intermittent power as under stable power.
//
// Safety-by-construction rules:
//   - all loops are canonical counted for-loops with @max annotations and
//     a dedicated induction variable, so every program terminates;
//   - array subscripts are masked (`expr & (len-1)`) with power-of-two
//     lengths, so no index is ever out of range;
//   - division and remainder use non-zero constant divisors only;
//   - shift amounts are constants in [0, 12].
package fuzzgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Options bounds the generated program.
type Options struct {
	// MaxFuncs is the number of helper functions (besides main), ≤ 4.
	MaxFuncs int `json:"max_funcs"`
	// MaxStmts bounds the statements per block.
	MaxStmts int `json:"max_stmts"`
	// MaxDepth bounds statement nesting.
	MaxDepth int `json:"max_depth"`
	// MaxLoopIter bounds each loop's trip count.
	MaxLoopIter int `json:"max_loop_iter"`

	// WARDepth, when positive, appends a chain of this many
	// read-modify-write statements on nonvolatile globals to main. Each
	// statement reads the global it writes — a write-after-read hazard
	// on NV state — so WAR-breaking placements (Ratchet) must spend a
	// checkpoint per link, and idempotency-based ones must not let a
	// replay observe the new value. Zero (the default) emits nothing
	// and consumes no randomness, so corpora serialized before this
	// knob existed regenerate unchanged.
	WARDepth int `json:"war_depth,omitempty"`

	// HotLoop, when positive, appends a loop with this trip count and a
	// single-statement body to main: so little work per iteration that
	// the loop body alone can never reach a time-between-failures
	// budget, forcing placement to either straddle the loop or split
	// it. Zero (the default) emits nothing and consumes no randomness.
	HotLoop int `json:"hot_loop,omitempty"`
}

// DefaultOptions are sized so a program runs in well under a millisecond
// on the emulator.
func DefaultOptions() Options {
	return Options{MaxFuncs: 3, MaxStmts: 5, MaxDepth: 3, MaxLoopIter: 9}
}

// AdversarialOptions are DefaultOptions plus the placement-adversarial
// shapes: a deep write-after-read chain and a tiny hot loop sized to
// straddle the TBPF budgets the evaluation grid uses.
func AdversarialOptions() Options {
	o := DefaultOptions()
	o.WARDepth = 12
	o.HotLoop = 800
	return o
}

// Program is one reproducible generated program: (Seed, Options) fully
// determine Source, so a serialized program can be regenerated and
// verified instead of trusted.
type Program struct {
	Seed    int64   `json:"seed"`
	Options Options `json:"options"`
	Source  string  `json:"source"`
}

// FromSeed deterministically regenerates the program of (seed, opts).
func FromSeed(seed int64, opts Options) Program {
	src := Generate(rand.New(rand.NewSource(seed)), opts)
	return Program{Seed: seed, Options: opts, Source: src}
}

// Regenerate re-derives the source from the program's seed and options
// and reports whether it matches the stored Source — the integrity check
// replay tools run before trusting a repro file.
func (p Program) Regenerate() (Program, bool) {
	q := FromSeed(p.Seed, p.Options)
	return q, p.Source == "" || q.Source == p.Source
}

// Corpus derives n reproducible programs from a base seed. Seeds are
// spaced so corpora with different bases do not trivially overlap.
func Corpus(baseSeed int64, n int, opts Options) []Program {
	out := make([]Program, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, FromSeed(baseSeed+int64(i)*1_000_003, opts))
	}
	return out
}

// MixedCorpus derives n programs with Corpus's seed spacing but gives
// every third program the adversarial shapes, so one fuzz stream sweeps
// both plain and placement-adversarial inputs.
func MixedCorpus(baseSeed int64, n int) []Program {
	out := make([]Program, 0, n)
	for i := 0; i < n; i++ {
		opts := DefaultOptions()
		if i%3 == 2 {
			opts = AdversarialOptions()
		}
		out = append(out, FromSeed(baseSeed+int64(i)*1_000_003, opts))
	}
	return out
}

type gen struct {
	r    *rand.Rand
	opts Options
	b    strings.Builder

	globals []varInfo // scalars and arrays
	funcs   []funcInfo
	indent  int
	loopVar int // fresh induction-variable counter per function
}

type varInfo struct {
	name  string
	elems int // 1 for scalars; power of two for arrays
}

type funcInfo struct {
	name   string
	params []string
	hasRet bool
}

// Generate produces one random program.
func Generate(r *rand.Rand, opts Options) string {
	if opts.MaxFuncs > 4 {
		opts.MaxFuncs = 4
	}
	g := &gen{r: r, opts: opts}
	g.program()
	return g.b.String()
}

func (g *gen) w(format string, args ...any) {
	g.b.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) program() {
	// Globals: 1 input array, 1-3 plain globals, 0-2 extra arrays.
	sizes := []int{4, 8, 16, 32}
	inElems := sizes[g.r.Intn(len(sizes))]
	g.w("input int in0[%d];", inElems)
	g.globals = append(g.globals, varInfo{"in0", inElems})
	for i := 0; i < 1+g.r.Intn(3); i++ {
		name := fmt.Sprintf("g%d", i)
		g.w("int %s;", name)
		g.globals = append(g.globals, varInfo{name, 1})
	}
	for i := 0; i < g.r.Intn(3); i++ {
		name := fmt.Sprintf("arr%d", i)
		elems := sizes[g.r.Intn(len(sizes))]
		g.w("int %s[%d];", name, elems)
		g.globals = append(g.globals, varInfo{name, elems})
	}
	g.w("")

	// Helper functions, generated before main so calls resolve textually
	// top-down (the parser allows any order, this is just tidier).
	nf := g.r.Intn(g.opts.MaxFuncs + 1)
	for i := 0; i < nf; i++ {
		g.helper(i)
	}
	g.mainFunc()
}

func (g *gen) helper(idx int) {
	fi := funcInfo{name: fmt.Sprintf("f%d", idx), hasRet: g.r.Intn(4) != 0}
	for p := 0; p < 1+g.r.Intn(2); p++ {
		fi.params = append(fi.params, fmt.Sprintf("p%d", p))
	}
	ret := "void"
	if fi.hasRet {
		ret = "int"
	}
	var params []string
	for _, p := range fi.params {
		params = append(params, "int "+p)
	}
	g.w("func %s %s(%s) {", ret, fi.name, strings.Join(params, ", "))
	g.indent++
	locals := g.declLocals(1 + g.r.Intn(2))
	scope := newScope(g.globals, locals, fi.params)
	g.loopVar = 0
	g.stmts(scope, g.opts.MaxDepth-2, nil) // helpers are leaves: no helper-call chains
	if fi.hasRet {
		g.w("return %s;", g.expr(scope, 2))
	}
	g.indent--
	g.w("}")
	g.w("")
	// Register after generation so helpers never call themselves.
	g.funcs = append(g.funcs, fi)
}

func (g *gen) mainFunc() {
	g.w("func void main() {")
	g.indent++
	locals := g.declLocals(1 + g.r.Intn(3))
	scope := newScope(g.globals, locals, nil)
	g.loopVar = 0
	g.stmts(scope, g.opts.MaxDepth, g.funcs)
	if g.opts.WARDepth > 0 {
		g.warChain()
	}
	if g.opts.HotLoop > 0 {
		g.hotLoop()
	}
	// Deterministic observable output over all state.
	for _, v := range g.globals {
		if v.elems == 1 {
			g.w("print(%s);", v.name)
		} else {
			g.w("print(%s[0] + %s[%d]);", v.name, v.name, v.elems-1)
		}
	}
	for _, v := range locals {
		if v.elems == 1 {
			g.w("print(%s);", v.name)
		}
	}
	g.indent--
	g.w("}")
}

// globalScalars lists the plain nonvolatile globals (g0 always exists).
func (g *gen) globalScalars() []string {
	var out []string
	for _, v := range g.globals {
		if v.elems == 1 {
			out = append(out, v.name)
		}
	}
	return out
}

// warChain emits WARDepth read-modify-write statements on the global
// scalars. Every statement's right-hand side reads its own target —
// sometimes through data-dependent addressing into the input array — so
// each link is a genuine WAR hazard on nonvolatile state.
func (g *gen) warChain() {
	scalars := g.globalScalars()
	in := g.globals[0] // the input array, declared first
	ops := []string{"+", "^", "|"}
	for i := 0; i < g.opts.WARDepth; i++ {
		tgt := scalars[g.r.Intn(len(scalars))]
		op := ops[g.r.Intn(len(ops))]
		var src string
		switch g.r.Intn(3) {
		case 0: // data-dependent load: the index itself reads the target
			src = fmt.Sprintf("%s[(%s) & %d]", in.name, tgt, in.elems-1)
		case 1:
			src = scalars[g.r.Intn(len(scalars))]
		default:
			src = fmt.Sprintf("%d", 1+g.r.Intn(2000))
		}
		g.w("%s = (%s %s %s) & 0x3FFF;", tgt, tgt, op, src)
	}
}

// hotLoop emits a counted loop with a single-statement body and a trip
// count far above MaxLoopIter (capped at 4096 to bound runtime). All
// induction variables are free again by the time mainFunc calls this,
// so iv0 is safe to reuse.
func (g *gen) hotLoop() {
	iters := g.opts.HotLoop
	if iters > 4096 {
		iters = 4096
	}
	scalars := g.globalScalars()
	tgt := scalars[g.r.Intn(len(scalars))]
	in := g.globals[0]
	g.w("for (iv0 = 0; iv0 < %d; iv0 = iv0 + 1) @max(%d) {", iters, iters)
	g.indent++
	g.w("%s = (%s + %s[iv0 & %d]) & 0x3FFF;", tgt, tgt, in.name, in.elems-1)
	g.indent--
	g.w("}")
}

// declLocals emits local declarations and returns their info.
func (g *gen) declLocals(n int) []varInfo {
	var locals []varInfo
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("l%d", i)
		if g.r.Intn(3) == 0 {
			elems := []int{4, 8}[g.r.Intn(2)]
			g.w("int %s[%d];", name, elems)
			locals = append(locals, varInfo{name, elems})
		} else {
			g.w("int %s;", name)
			locals = append(locals, varInfo{name, 1})
		}
	}
	// Loop induction variables are pre-declared.
	for i := 0; i < 4; i++ {
		g.w("int iv%d;", i)
	}
	// Initialize locals so reads never see uninitialized storage.
	for _, v := range locals {
		if v.elems == 1 {
			g.w("%s = %d;", v.name, g.r.Intn(100))
		} else {
			g.w("%s[0] = %d;", v.name, g.r.Intn(100))
			for e := 1; e < v.elems; e++ {
				g.w("%s[%d] = %d;", v.name, e, g.r.Intn(100))
			}
		}
	}
	return locals
}

// scope tracks what an expression may reference.
type scope struct {
	scalars []string // assignable scalar names (globals + locals)
	arrays  []varInfo
	params  []string // readable (and assignable) register-backed names
}

func newScope(globals, locals []varInfo, params []string) *scope {
	s := &scope{params: params}
	for _, v := range append(append([]varInfo{}, globals...), locals...) {
		if v.elems == 1 {
			s.scalars = append(s.scalars, v.name)
		} else {
			s.arrays = append(s.arrays, v)
		}
	}
	return s
}

func (g *gen) stmts(s *scope, depth int, callable []funcInfo) {
	n := 1 + g.r.Intn(g.opts.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(s, depth, callable)
	}
}

func (g *gen) stmt(s *scope, depth int, callable []funcInfo) {
	choice := g.r.Intn(10)
	switch {
	case choice < 4 || depth <= 0: // assignment
		g.assign(s, callable)
	case choice < 6: // if / if-else
		g.w("if (%s) {", g.expr(s, 2))
		g.indent++
		g.stmts(s, depth-1, callable)
		g.indent--
		if g.r.Intn(2) == 0 {
			g.w("} else {")
			g.indent++
			g.stmts(s, depth-1, callable)
			g.indent--
		}
		g.w("}")
	case choice < 9: // counted loop
		if g.loopVar >= 4 {
			g.assign(s, callable)
			return
		}
		iv := fmt.Sprintf("iv%d", g.loopVar)
		g.loopVar++
		iters := 2 + g.r.Intn(g.opts.MaxLoopIter-1)
		g.w("for (%s = 0; %s < %d; %s = %s + 1) @max(%d) {", iv, iv, iters, iv, iv, iters)
		g.indent++
		g.stmts(s, depth-1, callable)
		g.indent--
		g.w("}")
		g.loopVar--
	default: // call for effect, when a void helper exists
		var voids []funcInfo
		for _, f := range callable {
			if !f.hasRet {
				voids = append(voids, f)
			}
		}
		if len(voids) == 0 {
			g.assign(s, callable)
			return
		}
		f := voids[g.r.Intn(len(voids))]
		g.w("%s(%s);", f.name, g.args(s, f))
	}
}

func (g *gen) assign(s *scope, callable []funcInfo) {
	// Target: scalar, array element, or parameter.
	switch k := g.r.Intn(6); {
	case k < 3 && len(s.scalars) > 0:
		g.w("%s = %s;", s.scalars[g.r.Intn(len(s.scalars))], g.rhs(s, callable))
	case k < 5 && len(s.arrays) > 0:
		a := s.arrays[g.r.Intn(len(s.arrays))]
		g.w("%s[(%s) & %d] = %s;", a.name, g.expr(s, 2), a.elems-1, g.rhs(s, callable))
	case len(s.params) > 0:
		g.w("%s = %s;", s.params[g.r.Intn(len(s.params))], g.rhs(s, callable))
	case len(s.scalars) > 0:
		g.w("%s = %s;", s.scalars[g.r.Intn(len(s.scalars))], g.rhs(s, callable))
	default:
		g.w("g0 = %s;", g.rhs(s, callable))
	}
}

// rhs is an expression that may also be a call to a value-returning helper.
func (g *gen) rhs(s *scope, callable []funcInfo) string {
	var rets []funcInfo
	for _, f := range callable {
		if f.hasRet {
			rets = append(rets, f)
		}
	}
	if len(rets) > 0 && g.r.Intn(4) == 0 {
		f := rets[g.r.Intn(len(rets))]
		return fmt.Sprintf("%s(%s)", f.name, g.args(s, f))
	}
	return g.expr(s, 3)
}

func (g *gen) args(s *scope, f funcInfo) string {
	var args []string
	for range f.params {
		args = append(args, g.expr(s, 2))
	}
	return strings.Join(args, ", ")
}

var safeBinOps = []string{"+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=", "==", "!="}

func (g *gen) expr(s *scope, depth int) string {
	if depth <= 0 {
		return g.atom(s)
	}
	switch g.r.Intn(8) {
	case 0:
		return g.atom(s)
	case 1: // masked arithmetic keeps magnitudes bounded
		return fmt.Sprintf("(%s) & 0x3FFF", g.expr(s, depth-1))
	case 2: // safe division / remainder by a non-zero constant
		op := "/"
		if g.r.Intn(2) == 0 {
			op = "%"
		}
		return fmt.Sprintf("((%s) & 0x3FFF) %s %d", g.expr(s, depth-1), op, 2+g.r.Intn(17))
	case 3: // constant shift
		dir := "<<"
		if g.r.Intn(2) == 0 {
			dir = ">>"
		}
		return fmt.Sprintf("((%s) & 0x3FFF) %s %d", g.expr(s, depth-1), dir, g.r.Intn(13))
	case 4:
		return fmt.Sprintf("(!(%s))", g.expr(s, depth-1))
	default:
		op := safeBinOps[g.r.Intn(len(safeBinOps))]
		return fmt.Sprintf("(%s %s %s)", g.expr(s, depth-1), op, g.expr(s, depth-1))
	}
}

func (g *gen) atom(s *scope) string {
	choices := 3 + len(s.params)
	switch k := g.r.Intn(choices); {
	case k == 0:
		return fmt.Sprintf("%d", g.r.Intn(2000))
	case k == 1 && len(s.scalars) > 0:
		return s.scalars[g.r.Intn(len(s.scalars))]
	case k == 2 && len(s.arrays) > 0:
		a := s.arrays[g.r.Intn(len(s.arrays))]
		return fmt.Sprintf("%s[(%s) & %d]", a.name, g.atomScalar(s), a.elems-1)
	default:
		if len(s.params) > 0 {
			return s.params[g.r.Intn(len(s.params))]
		}
		return fmt.Sprintf("%d", g.r.Intn(2000))
	}
}

func (g *gen) atomScalar(s *scope) string {
	if len(s.scalars) > 0 && g.r.Intn(2) == 0 {
		return s.scalars[g.r.Intn(len(s.scalars))]
	}
	return fmt.Sprintf("%d", g.r.Intn(64))
}
