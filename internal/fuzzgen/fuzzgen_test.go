package fuzzgen

import (
	"math/rand"
	"strings"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// Every generated program must compile, verify, terminate, and be
// deterministic.
func TestGeneratedProgramsAreValid(t *testing.T) {
	model := energy.MSP430FR5969()
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := Generate(r, DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(seed+1000)))
		res1, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
		if res1.Verdict != emulator.Completed {
			t.Fatalf("seed %d: verdict %v\n%s", seed, res1.Verdict, src)
		}
		if len(res1.Output) == 0 {
			t.Fatalf("seed %d: no output", seed)
		}
		res2, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res1.Output {
			if res1.Output[i] != res2.Output[i] {
				t.Fatalf("seed %d: nondeterministic output", seed)
			}
		}
	}
}

// TestAdversarialShapes: the adversarial knobs actually emit their
// shapes, stay valid programs, and — critically — consume no randomness
// when zero, so programs serialized before the knobs existed regenerate
// byte-identically from (seed, options) with the zero fields.
func TestAdversarialShapes(t *testing.T) {
	model := energy.MSP430FR5969()
	for seed := int64(0); seed < 20; seed++ {
		src := Generate(rand.New(rand.NewSource(seed)), AdversarialOptions())
		m, err := minic.Compile("adv", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(seed+1000)))
		res, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Verdict != emulator.Completed {
			t.Fatalf("seed %d: verdict %v\n%s", seed, res.Verdict, src)
		}
	}
	// Zero adversarial fields reproduce the plain stream exactly: the
	// knobs read g.opts only after all shared randomness is consumed.
	plain := Generate(rand.New(rand.NewSource(7)), DefaultOptions())
	adv := Generate(rand.New(rand.NewSource(7)), AdversarialOptions())
	if !strings.HasPrefix(adv, plain[:strings.Index(plain, "  print(")]) {
		t.Error("adversarial shapes perturbed the shared generation prefix")
	}
	if adv == plain {
		t.Error("adversarial options emitted nothing")
	}
	for _, want := range []string{"for (iv0 = 0; iv0 < 800;", "@max(800)"} {
		if !strings.Contains(adv, want) {
			t.Errorf("adversarial program missing %q", want)
		}
	}
}

func TestGeneratedProgramsVary(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(1)), DefaultOptions())
	b := Generate(rand.New(rand.NewSource(2)), DefaultOptions())
	if a == b {
		t.Errorf("different seeds produced identical programs")
	}
	// Same seed is reproducible.
	c := Generate(rand.New(rand.NewSource(1)), DefaultOptions())
	if a != c {
		t.Errorf("same seed produced different programs")
	}
}
