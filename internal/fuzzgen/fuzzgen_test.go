package fuzzgen

import (
	"math/rand"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// Every generated program must compile, verify, terminate, and be
// deterministic.
func TestGeneratedProgramsAreValid(t *testing.T) {
	model := energy.MSP430FR5969()
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := Generate(r, DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(seed+1000)))
		res1, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
		if res1.Verdict != emulator.Completed {
			t.Fatalf("seed %d: verdict %v\n%s", seed, res1.Verdict, src)
		}
		if len(res1.Output) == 0 {
			t.Fatalf("seed %d: no output", seed)
		}
		res2, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res1.Output {
			if res1.Output[i] != res2.Output[i] {
				t.Fatalf("seed %d: nondeterministic output", seed)
			}
		}
	}
}

func TestGeneratedProgramsVary(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(1)), DefaultOptions())
	b := Generate(rand.New(rand.NewSource(2)), DefaultOptions())
	if a == b {
		t.Errorf("different seeds produced identical programs")
	}
	// Same seed is reproducible.
	c := Generate(rand.New(rand.NewSource(1)), DefaultOptions())
	if a != c {
		t.Errorf("same seed produced different programs")
	}
}
