package harvest

import (
	"fmt"

	"schematic/internal/emulator"
)

const (
	// levelEpsilon matches the emulator's charge tolerance so a
	// capacitor sized exactly like EB admits exactly the same draws.
	levelEpsilon = 1e-6

	defaultQuantum = 64          // integration step, cycles
	defaultMaxOff  = 200_000_000 // outage-simulation bound, cycles
)

// Capacitor adapts an Environment onto emulator.PowerSchedule: a
// storage buffer that integrates harvested power in while the machine's
// own accounting draws per-instruction energy out. The machine asks the
// schedule before every energy draw (a PointCharge probe); the
// capacitor fails the draw exactly when the stored level cannot cover
// it, which triggers the machine's ordinary power-failure path.
//
// Off periods are simulated from the probe stream alone: a rise in
// Probe.Failures means the device browned out, so the environment is
// integrated forward until the level reaches Restart×Capacity; a
// CyclesSincePower reset without a failure means a planned checkpoint
// sleep (ckWait), which recharges to full — mirroring the machine's own
// capEn refill. Both recharges are bounded by MaxOff simulated cycles
// and then clamped to their target, so runs always make progress even
// under an environment that supplies nothing (e.g. solar at night).
//
// With the default Capacity equal to the run's energy budget EB the
// capacitor is a strict superset of the built-in exhaustion physics:
// it refills to at least the machine's own refill level and harvesting
// only adds energy, so it never fails a draw plain exhaustion would
// have allowed. Wait-style placements therefore keep their
// zero-power-failure contract under any harvested environment.
type Capacitor struct {
	Env      Environment
	Capacity float64 // storage size, nJ; the level starts full
	Restart  float64 // post-outage boot threshold, fraction of Capacity (0 = 1.0)
	MaxOff   int64   // simulated-outage bound per recharge, cycles (0 = 2e8)
	Quantum  int64   // waveform integration step, cycles (0 = 64)
}

func (c Capacitor) norm() Capacitor {
	c.Restart = defF(c.Restart, 1.0)
	c.MaxOff = defI(c.MaxOff, defaultMaxOff)
	c.Quantum = defI(c.Quantum, defaultQuantum)
	return c
}

// Schedule returns a fresh, single-run PowerSchedule instance.
// Schedules are stateful; never share one across runs or engines.
func (c Capacitor) Schedule() emulator.PowerSchedule {
	c = c.norm()
	return &capSchedule{
		c:     c,
		name:  fmt.Sprintf("harvest(%s,cap=%g,restart=%g)", c.Env.Name(), c.Capacity, c.Restart),
		level: c.Capacity,
	}
}

type capSchedule struct {
	c     Capacitor
	name  string
	level float64

	envCycle     int64 // environment time, cycles (active + simulated off)
	lastCycle    int64 // machine TotalCycles at the previous probe
	lastCSP      int64 // CyclesSincePower at the previous probe
	lastFailures int   // PowerFailures at the previous probe
}

func (s *capSchedule) Name() string { return s.name }

func (s *capSchedule) Fail(p emulator.Probe) bool {
	// Active time advanced since the last probe: harvest over it.
	// TotalCycles is monotonic across failures, so the delta is always
	// the active cycles executed in between.
	if d := p.Cycle - s.lastCycle; d > 0 {
		s.integrate(d)
		s.lastCycle = p.Cycle
	}
	switch {
	case p.Failures > s.lastFailures:
		// The device browned out (this capacitor refusing a draw, or a
		// composed schedule injecting a failure): recharge off-line to
		// the boot threshold.
		s.lastFailures = p.Failures
		s.recharge(s.c.Restart * s.c.Capacity)
	case p.CyclesSincePower < s.lastCSP:
		// CyclesSincePower reset without a failure: a planned ckWait
		// sleep. The machine refills capEn to EB; mirror it with a
		// recharge to full.
		s.recharge(s.c.Capacity)
	}
	s.lastCSP = p.CyclesSincePower
	if p.Kind != emulator.PointCharge {
		return false // physics only ever refuses energy draws
	}
	if s.level+levelEpsilon < p.Energy {
		return true
	}
	s.level -= p.Energy
	if s.level < 0 {
		s.level = 0
	}
	return false
}

// integrate advances environment time by d cycles, accumulating
// harvested energy. The waveform is sampled piecewise-constant on the
// Quantum grid (at each window's start), so the result is independent
// of how callers slice the same span.
func (s *capSchedule) integrate(d int64) {
	q := s.c.Quantum
	for d > 0 {
		step := q - s.envCycle%q
		if step > d {
			step = d
		}
		s.level += s.c.Env.Power(s.envCycle-s.envCycle%q) * float64(step)
		if s.level > s.c.Capacity {
			s.level = s.c.Capacity
		}
		s.envCycle += step
		d -= step
	}
}

// recharge simulates an off period: environment time passes (bounded by
// MaxOff) until the level reaches target, then clamps to target so the
// device always boots even when the environment supplies nothing.
func (s *capSchedule) recharge(target float64) {
	if target > s.c.Capacity {
		target = s.c.Capacity
	}
	budget := s.c.MaxOff
	q := s.c.Quantum
	for s.level+levelEpsilon < target && budget > 0 {
		step := q - s.envCycle%q
		if step > budget {
			step = budget
		}
		s.level += s.c.Env.Power(s.envCycle-s.envCycle%q) * float64(step)
		s.envCycle += step
		budget -= step
	}
	if s.level < target {
		s.level = target
	}
	if s.level > s.c.Capacity {
		s.level = s.c.Capacity
	}
}
