package harvest

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// CSVOptions controls how an external time-vs-power measurement trace
// is converted into an Environment.
type CSVOptions struct {
	// Hz converts the time column (seconds) into emulator cycles
	// (default 8e6, an 8 MHz MCU clock).
	Hz float64
	// Scale converts the power column into nJ/cycle. Zero selects the
	// physical default for a watts column: 1e9/Hz (W = nJ/ns scaled to
	// the cycle length).
	Scale float64
	// Hold keeps the last sample's power forever instead of looping the
	// waveform once past its end.
	Hold bool
}

// ImportCSV parses "time,power" CSV rows (seconds, watts by default)
// into a step-function Environment. Header rows and lines starting with
// '#' are skipped; times must be non-decreasing. By default the
// waveform loops past its end; set Hold to clamp at the final sample.
func ImportCSV(r io.Reader, opts CSVOptions) (Environment, error) {
	hz := defF(opts.Hz, 8e6)
	scale := defF(opts.Scale, 1e9/hz)
	var cycles []int64
	var power []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("harvest: csv line %d: want time,power", line)
		}
		t, errT := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		p, errP := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if errT != nil || errP != nil {
			if len(cycles) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("harvest: csv line %d: bad number", line)
		}
		if t < 0 || p < 0 || math.IsNaN(t) || math.IsNaN(p) || math.IsInf(t, 0) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("harvest: csv line %d: negative or non-finite value", line)
		}
		c := int64(t * hz)
		if n := len(cycles); n > 0 && c < cycles[n-1] {
			return nil, fmt.Errorf("harvest: csv line %d: time goes backwards", line)
		}
		cycles = append(cycles, c)
		power = append(power, p*scale)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cycles) == 0 {
		return nil, fmt.Errorf("harvest: csv has no samples")
	}
	// The final sample holds for as long as the previous segment did
	// (or one default quantum for a single-sample trace), defining the
	// waveform's loop length.
	last := int64(defaultQuantum)
	if n := len(cycles); n > 1 {
		if d := cycles[n-1] - cycles[n-2]; d > 0 {
			last = d
		}
	}
	h := fnv.New32a()
	for i := range cycles {
		fmt.Fprintf(h, "%d:%g;", cycles[i], power[i])
	}
	return &sampleEnv{
		name:   fmt.Sprintf("csv(n=%d,hz=%g,sum=%08x)", len(cycles), hz, h.Sum32()),
		cycles: cycles,
		power:  power,
		length: cycles[len(cycles)-1] + last,
		hold:   opts.Hold,
	}, nil
}

// ImportCSVFile reads a CSV trace from disk.
func ImportCSVFile(path string, opts CSVOptions) (Environment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ImportCSV(f, opts)
}

// sampleEnv is a step-function waveform: power[i] holds from cycles[i]
// until the next sample.
type sampleEnv struct {
	name   string
	cycles []int64
	power  []float64
	length int64
	hold   bool
}

func (e *sampleEnv) Name() string { return e.name }

func (e *sampleEnv) Power(cycle int64) float64 {
	if cycle >= e.length {
		if e.hold {
			return e.power[len(e.power)-1]
		}
		cycle %= e.length
	}
	if cycle < e.cycles[0] {
		return 0
	}
	// Last sample at or before cycle.
	i := sort.Search(len(e.cycles), func(i int) bool { return e.cycles[i] > cycle }) - 1
	return e.power[i]
}
