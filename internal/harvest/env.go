// Package harvest models harvested-energy environments for the
// intermittent emulator: deterministic incoming-power waveforms (solar
// diurnal cycles with cloud noise, bursty RF, piezo vibration,
// duty-cycled regulators, imported measurement traces), a capacitor
// that integrates harvest-in against the per-instruction discharge the
// machine already charges, and a trace recorder/replayer that turns any
// run's failure history into a versioned NDJSON artifact reproducing
// the original Result byte-identically.
//
// Everything adapts onto emulator.PowerSchedule, so every existing
// surface (iemu, crashtest, verify, /v1/emulate, /v1/grid) gains
// harvested scenarios without per-surface work.
package harvest

import (
	"fmt"
	"math"
)

// Environment is a deterministic harvested-power waveform: Power
// reports the incoming power at an environment cycle, in nJ per cycle
// (the same unit energy.Model charges per instruction). Power must be a
// pure function of (receiver, cycle) — no internal state — so the
// capacitor can integrate it in arbitrary slices, recording and replay
// see the same waveform, and identical seeds yield identical runs.
type Environment interface {
	Name() string
	Power(cycle int64) float64
}

// noise01 hashes (seed, index) into [0, 1) with a splitmix64-style
// finalizer: stateless, so waveform noise is a pure function of time.
func noise01(seed, idx int64) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(idx)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

func defF(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

func defI(v, d int64) int64 {
	if v == 0 {
		return d
	}
	return v
}

// Solar is a diurnal waveform: a half-sine daylight arc over a fraction
// of each period, zero at night, attenuated by seeded cloud fronts that
// hold for Window cycles each. Zero-valued fields select defaults.
type Solar struct {
	Seed   int64   // cloud-noise seed (default 1)
	Peak   float64 // midday incoming power, nJ/cycle (default 0.8)
	Period int64   // full diurnal period, cycles (default 2e6)
	Day    float64 // daylight fraction of the period in (0,1] (default 0.5)
	Cloud  float64 // cloud attenuation depth in [0,1] (default 0.4)
	Window int64   // cloud-front hold length, cycles (default Period/50)
}

func (s Solar) norm() Solar {
	s.Seed = defI(s.Seed, 1)
	s.Peak = defF(s.Peak, 0.8)
	s.Period = defI(s.Period, 2_000_000)
	s.Day = defF(s.Day, 0.5)
	s.Cloud = defF(s.Cloud, 0.4)
	s.Window = defI(s.Window, s.Period/50)
	return s
}

func (s Solar) Name() string {
	s = s.norm()
	return fmt.Sprintf("solar(seed=%d,peak=%g,period=%d,day=%g,cloud=%g,window=%d)",
		s.Seed, s.Peak, s.Period, s.Day, s.Cloud, s.Window)
}

func (s Solar) Power(cycle int64) float64 {
	s = s.norm()
	t := cycle % s.Period
	daylight := float64(s.Period) * s.Day
	if float64(t) >= daylight {
		return 0
	}
	p := s.Peak * math.Sin(math.Pi*float64(t)/daylight)
	if s.Cloud > 0 {
		p *= 1 - s.Cloud*noise01(s.Seed, cycle/s.Window)
	}
	return p
}

// RF is a bursty radio-frequency source: within each window of
// Burst+Gap cycles, a seeded offset places one burst of roughly Burst
// cycles at constant power; the rest of the window is silent.
type RF struct {
	Seed  int64   // burst-placement seed (default 1)
	Peak  float64 // in-burst incoming power, nJ/cycle (default 1.5)
	Burst int64   // nominal burst length, cycles (default 20_000)
	Gap   int64   // nominal inter-burst gap, cycles (default 60_000)
}

func (r RF) norm() RF {
	r.Seed = defI(r.Seed, 1)
	r.Peak = defF(r.Peak, 1.5)
	r.Burst = defI(r.Burst, 20_000)
	r.Gap = defI(r.Gap, 60_000)
	return r
}

func (r RF) Name() string {
	r = r.norm()
	return fmt.Sprintf("rf(seed=%d,power=%g,burst=%d,gap=%d)", r.Seed, r.Peak, r.Burst, r.Gap)
}

func (r RF) Power(cycle int64) float64 {
	r = r.norm()
	window := r.Burst + r.Gap
	i := cycle / window
	// Burst length wobbles in [0.5, 1.5)×Burst; the start offset keeps
	// the whole burst inside its window.
	length := int64(float64(r.Burst) * (0.5 + noise01(r.Seed, 2*i)))
	if length > window {
		length = window
	}
	start := int64(noise01(r.Seed, 2*i+1) * float64(window-length))
	off := cycle % window
	if off >= start && off < start+length {
		return r.Peak
	}
	return 0
}

// Piezo is a vibration harvester: a rectified sine at a fixed
// mechanical period.
type Piezo struct {
	Peak   float64 // peak incoming power, nJ/cycle (default 0.6)
	Period int64   // vibration period, cycles (default 40_000)
}

func (p Piezo) norm() Piezo {
	p.Peak = defF(p.Peak, 0.6)
	p.Period = defI(p.Period, 40_000)
	return p
}

func (p Piezo) Name() string {
	p = p.norm()
	return fmt.Sprintf("piezo(peak=%g,period=%d)", p.Peak, p.Period)
}

func (p Piezo) Power(cycle int64) float64 {
	p = p.norm()
	return p.Peak * math.Abs(math.Sin(math.Pi*float64(cycle%p.Period)/float64(p.Period)))
}

// Duty is a duty-cycled regulator: full power for the first Frac
// fraction of every period, nothing for the rest.
type Duty struct {
	Peak   float64 // on-phase incoming power, nJ/cycle (default 1.0)
	Period int64   // regulator period, cycles (default 100_000)
	Frac   float64 // on fraction of the period in (0,1] (default 0.35)
}

func (d Duty) norm() Duty {
	d.Peak = defF(d.Peak, 1.0)
	d.Period = defI(d.Period, 100_000)
	d.Frac = defF(d.Frac, 0.35)
	return d
}

func (d Duty) Name() string {
	d = d.norm()
	return fmt.Sprintf("duty(power=%g,period=%d,duty=%g)", d.Peak, d.Period, d.Frac)
}

func (d Duty) Power(cycle int64) float64 {
	d = d.norm()
	if float64(cycle%d.Period) < float64(d.Period)*d.Frac {
		return d.Peak
	}
	return 0
}
