package harvest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"schematic/internal/baselines"
	"schematic/internal/bench"
	"schematic/internal/emulator"
	"schematic/internal/ir"
)

// placed compiles, profiles, and checkpoints one benchmark with the
// first applicable technique, returning the placed module, its EB for
// TBPF 10k, and inputs.
func placed(t *testing.T, h *bench.Harness, bm *bench.Benchmark) (*ir.Module, float64, map[string][]int64) {
	t.Helper()
	m, err := bm.Module()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := h.Profile(context.Background(), bm)
	if err != nil {
		t.Fatal(err)
	}
	eb := prof.EBForTBPF(10_000)
	inputs, err := bm.Inputs(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range bench.Techniques() {
		if !tech.SupportsVM(m, h.VMSize) {
			continue
		}
		clone := ir.Clone(m)
		if err := tech.Apply(clone, baselines.Params{
			Model: h.Model, Budget: eb, VMSize: h.VMSize, Profile: prof,
		}); err != nil {
			continue
		}
		return clone, eb, inputs
	}
	t.Fatalf("%s: no technique applies", bm.Name)
	return nil, 0, nil
}

func testBenches(t *testing.T) []*bench.Benchmark {
	t.Helper()
	bms, err := bench.All()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		short := bms[:0]
		for _, bm := range bms {
			if bm.Name == "crc" || bm.Name == "randmath" {
				short = append(short, bm)
			}
		}
		bms = short
	}
	return bms
}

func runCfg(t *testing.T, m *ir.Module, eb float64, inputs map[string][]int64, sched emulator.PowerSchedule) *emulator.Result {
	t.Helper()
	res, err := emulator.Run(m, emulator.Config{
		Model: bench.NewHarness().Model, VMSize: 1 << 20,
		Intermittent: true, EB: eb, Inputs: inputs, Schedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Same seed, fresh schedule instances: the whole run — verdict,
// counters, ledger, and the exact recorded failure sequence — must be
// identical. A different seed must still produce a sound run.
func TestHarvestDeterminism(t *testing.T) {
	h := bench.NewHarness()
	h.ProfileRuns = 3
	bms := testBenches(t)
	envs := func(seed int64) []Environment {
		return []Environment{
			Solar{Seed: seed, Period: 400_000},
			RF{Seed: seed},
			Duty{},
		}
	}
	for _, bm := range bms {
		m, eb, inputs := placed(t, h, bm)
		for _, env := range envs(7) {
			c := Capacitor{Env: env, Capacity: eb}
			rec1 := NewRecorder(c.Schedule(), eb)
			rec2 := NewRecorder(c.Schedule(), eb)
			res1 := runCfg(t, m, eb, inputs, rec1)
			res2 := runCfg(t, m, eb, inputs, rec2)
			label := fmt.Sprintf("%s/%s", bm.Name, env.Name())
			if !reflect.DeepEqual(res1, res2) {
				t.Fatalf("%s: same seed, different results:\n%+v\n%+v", label, res1, res2)
			}
			if !reflect.DeepEqual(rec1.Trace().Records, rec2.Trace().Records) {
				t.Fatalf("%s: same seed, different failure sequences", label)
			}
			if res1.Verdict != emulator.Completed {
				t.Fatalf("%s: verdict %v under default harvest sizing", label, res1.Verdict)
			}
		}
	}
}

// With Capacity = EB, Restart = 1, harvesting only ever adds energy on
// top of the machine's own refill level, so a harvested run must never
// see more power failures than the plain-exhaustion run — the property
// that keeps wait-style placements' zero-failure contract intact.
func TestHarvestNeverWorseThanExhaustion(t *testing.T) {
	h := bench.NewHarness()
	h.ProfileRuns = 3
	for _, bm := range testBenches(t) {
		m, eb, inputs := placed(t, h, bm)
		base := runCfg(t, m, eb, inputs, nil)
		for _, env := range []Environment{Solar{Seed: 2, Period: 400_000}, RF{Seed: 2}, Piezo{}} {
			res := runCfg(t, m, eb, inputs, Capacitor{Env: env, Capacity: eb}.Schedule())
			if res.Verdict != emulator.Completed {
				t.Fatalf("%s/%s: verdict %v", bm.Name, env.Name(), res.Verdict)
			}
			if res.PowerFailures > base.PowerFailures {
				t.Fatalf("%s/%s: %d power failures vs %d under exhaustion",
					bm.Name, env.Name(), res.PowerFailures, base.PowerFailures)
			}
			if !reflect.DeepEqual(res.Output, base.Output) {
				t.Fatalf("%s/%s: output diverges from exhaustion run", bm.Name, env.Name())
			}
		}
	}
}

// Property test: under an arbitrary probe stream the capacitor level
// stays within [0, Capacity], and a failed draw leaves the level
// untouched.
func TestCapacitorLevelBounds(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		env := []Environment{
			Solar{Seed: int64(trial), Period: 50_000},
			RF{Seed: int64(trial)},
			Piezo{Period: 1_000},
			Duty{Period: 5_000},
		}[trial%4]
		cap := Capacitor{Env: env, Capacity: 200 + r.Float64()*2000, Restart: 0.25 + r.Float64()*0.75, MaxOff: 1_000_000}
		s := cap.Schedule().(*capSchedule)
		var cycle, csp int64
		failures := 0
		for i := int64(0); i < 3000; i++ {
			adv := r.Int63n(500)
			cycle += adv
			csp += adv
			p := emulator.Probe{
				Kind: emulator.PointCharge, Step: i, Cycle: cycle,
				CyclesSincePower: csp, Occurrence: i,
				Energy: r.Float64() * s.c.Capacity * 0.4, Failures: failures,
			}
			if r.Intn(10) == 0 {
				p.Kind = emulator.PointStep
				p.Energy = 0
			}
			before := s.level
			failed := s.Fail(p)
			if s.level < 0 || s.level > s.c.Capacity+levelEpsilon {
				t.Fatalf("trial %d probe %d: level %g outside [0, %g]", trial, i, s.level, s.c.Capacity)
			}
			if failed {
				if p.Kind != emulator.PointCharge {
					t.Fatalf("trial %d: non-charge probe failed", trial)
				}
				if s.level < before-levelEpsilon {
					t.Fatalf("trial %d: failed draw still drained the level", trial)
				}
				failures++
				csp = 0
			} else if r.Intn(40) == 0 {
				csp = 0 // planned sleep
			}
		}
	}
}

// The integral of the waveform must not depend on how the active-time
// delta is sliced across probes.
func TestIntegrateSliceIndependent(t *testing.T) {
	mk := func() *capSchedule {
		return (&Capacitor{Env: Solar{Seed: 5, Period: 10_000}, Capacity: 1e9}).Schedule().(*capSchedule)
	}
	a, b := mk(), mk()
	a.level, b.level = 0, 0
	a.integrate(9_777)
	r := rand.New(rand.NewSource(3))
	for left := int64(9_777); left > 0; {
		d := 1 + r.Int63n(300)
		if d > left {
			d = left
		}
		b.integrate(d)
		left -= d
	}
	// The sampling grid is slice-independent; float summation order is
	// only equal up to rounding.
	if d := a.level - b.level; d > 1e-9 || d < -1e-9 || a.envCycle != b.envCycle {
		t.Fatalf("slicing changed the integral: %g/%d vs %g/%d", a.level, a.envCycle, b.level, b.envCycle)
	}
}

// Harvested members compose with the existing Schedules() combinator:
// injected failure points fire on top of capacitor physics, and the run
// still produces the continuous-power output.
func TestSchedulesCombinatorWithHarvest(t *testing.T) {
	h := bench.NewHarness()
	h.ProfileRuns = 3
	bms := testBenches(t)
	bm := bms[0]
	m, eb, inputs := placed(t, h, bm)
	oracle, err := emulator.Run(m, emulator.Config{
		Model: h.Model, VMSize: 1 << 20, Inputs: inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := emulator.Schedules(
		Capacitor{Env: RF{Seed: 4}, Capacity: eb}.Schedule(),
		emulator.TraceSchedule(emulator.FailPoint{Kind: emulator.PointStep, N: 120}),
	)
	res := runCfg(t, m, eb, inputs, sched)
	if res.Verdict != emulator.Completed {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.InjectedFailures < 1 {
		t.Fatalf("trace member never fired (injected=%d)", res.InjectedFailures)
	}
	if !reflect.DeepEqual(res.Output, oracle.Output) {
		t.Fatalf("output diverges from continuous oracle")
	}
}

// Record → serialize → parse → replay must reproduce the original
// Result byte-identically on every benchmark, both for harvested
// physics and for recorded plain exhaustion.
func TestRecordReplayByteIdentical(t *testing.T) {
	h := bench.NewHarness()
	h.ProfileRuns = 3
	for _, bm := range testBenches(t) {
		m, eb, inputs := placed(t, h, bm)
		inners := []func() emulator.PowerSchedule{
			func() emulator.PowerSchedule {
				return Capacitor{Env: Solar{Seed: 9, Period: 300_000}, Capacity: eb}.Schedule()
			},
			func() emulator.PowerSchedule { return nil }, // plain exhaustion
		}
		for i, mk := range inners {
			rec := NewRecorder(mk(), eb)
			rec.SampleEvery = 10_000
			orig := runCfg(t, m, eb, inputs, rec)

			var buf bytes.Buffer
			if err := rec.Trace().Write(&buf); err != nil {
				t.Fatal(err)
			}
			tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			replayed := runCfg(t, m, eb, inputs, tr.Schedule())
			if !reflect.DeepEqual(orig, replayed) {
				t.Fatalf("%s inner %d: replay diverges:\nrecorded: %+v\nreplayed: %+v", bm.Name, i, orig, replayed)
			}
		}
	}
}

func TestTraceFormat(t *testing.T) {
	tr := &Trace{
		Header: Header{Schedule: "harvest(x)", EB: 1234},
		Records: []Record{
			{K: "sample", N: 100, Cycle: 5_000, Level: 900},
			{K: "fail", Point: "charge", N: 321, Step: 77, Cycle: 9_000, Level: 1.5, Draw: 3.2},
			{K: "fail", Point: "mid-save", N: 2, Step: 90, Cycle: 9_500, Level: 800},
		},
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Version != TraceVersion || got.Header.Schedule != "harvest(x)" || got.Header.EB != 1234 {
		t.Fatalf("header mangled: %+v", got.Header)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("records mangled:\n%+v\n%+v", got.Records, tr.Records)
	}
	sched := got.Schedule()
	if want := "replay(harvest(x),n=2)"; sched.Name() != want {
		t.Fatalf("replay name %q, want %q", sched.Name(), want)
	}

	for _, bad := range []string{
		"",
		"{\"kind\":\"other\",\"v\":1}\n",
		"{\"kind\":\"harvest-trace\",\"v\":99}\n",
		"{\"kind\":\"harvest-trace\",\"v\":1}\n{\"k\":\"nope\"}\n",
		"{\"kind\":\"harvest-trace\",\"v\":1}\n{\"k\":\"fail\",\"point\":\"bogus\",\"n\":1}\n",
	} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadTrace accepted %q", bad)
		}
	}
}

func TestEnvironmentsPureAndBounded(t *testing.T) {
	envs := []struct {
		env  Environment
		peak float64
	}{
		{Solar{}, 0.8},
		{Solar{Seed: 42, Peak: 2, Period: 100_000, Day: 0.7, Cloud: 0.9}, 2},
		{RF{}, 1.5},
		{Piezo{}, 0.6},
		{Duty{}, 1.0},
	}
	for _, tc := range envs {
		for _, c := range []int64{0, 1, 999, 54_321, 2_000_000, 7_654_321} {
			p1, p2 := tc.env.Power(c), tc.env.Power(c)
			if p1 != p2 {
				t.Fatalf("%s: Power(%d) not pure", tc.env.Name(), c)
			}
			if p1 < 0 || p1 > tc.peak+1e-9 {
				t.Fatalf("%s: Power(%d) = %g outside [0, %g]", tc.env.Name(), c, p1, tc.peak)
			}
		}
		if tc.env.Name() == "" {
			t.Fatal("empty env name")
		}
	}
	if noise01(1, 2) != noise01(1, 2) || noise01(1, 2) == noise01(1, 3) {
		t.Fatal("noise01 not a stable hash")
	}
}

func TestImportCSV(t *testing.T) {
	src := "time_s,power_w\n# comment\n0,0.004\n0.01,0.008\n0.02,0\n"
	env, err := ImportCSV(strings.NewReader(src), CSVOptions{Hz: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MHz: scale = 1e9/1e6 = 1000 nJ/cycle per watt.
	if got := env.Power(0); got != 4 {
		t.Fatalf("Power(0) = %g, want 4", got)
	}
	if got := env.Power(10_000); got != 8 {
		t.Fatalf("Power(10k) = %g, want 8", got)
	}
	if got := env.Power(20_001); got != 0 {
		t.Fatalf("Power(20k+) = %g, want 0", got)
	}
	// Loops: length = 20_000 + last dwell 10_000 = 30_000.
	if got := env.Power(30_001); got != 4 {
		t.Fatalf("looped Power = %g, want 4", got)
	}
	held, err := ImportCSV(strings.NewReader(src), CSVOptions{Hz: 1e6, Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := held.Power(1_000_000); got != 0 {
		t.Fatalf("held Power = %g, want 0", got)
	}

	for _, bad := range []string{"", "1\n", "0,1\n-1,2\n", "0,1\n0.1,-3\n", "0,1\n1,abc\n"} {
		if _, err := ImportCSV(strings.NewReader(bad), CSVOptions{}); err == nil {
			t.Fatalf("ImportCSV accepted %q", bad)
		}
	}
}
