package harvest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"schematic/internal/emulator"
)

// TraceVersion is the current NDJSON trace format version. Readers
// reject anything newer; older versions would be migrated here.
const TraceVersion = 1

// Header is the first NDJSON line of a trace: format identification
// plus enough context to sanity-check a replay against a different
// configuration.
type Header struct {
	Kind     string  `json:"kind"` // always "harvest-trace"
	Version  int     `json:"v"`
	Schedule string  `json:"schedule,omitempty"` // Name() of the recorded schedule
	EB       float64 `json:"eb_nj,omitempty"`    // energy budget of the recorded run
}

// Record is one NDJSON event line. K "fail" records a power failure
// fired at a probe; K "sample" records a periodic energy-history
// snapshot (capacitor/ledger level at a charge probe) and is ignored by
// replay.
type Record struct {
	K     string  `json:"k"`
	Point string  `json:"point,omitempty"` // fail: probe kind ("step", "charge", ...)
	N     int64   `json:"n"`               // fail: per-kind ordinal; sample: charge ordinal
	Step  int64   `json:"step,omitempty"`
	Cycle int64   `json:"cycle,omitempty"`
	Level float64 `json:"level_nj"`          // machine energy remaining at the probe
	Draw  float64 `json:"draw_nj,omitempty"` // fail at a charge: the refused draw
}

// Trace is a recorded power history: every failure the schedule fired,
// in probe order, plus optional energy samples.
type Trace struct {
	Header  Header
	Records []Record
}

// fails returns the replayable subset, preserving order.
func (t *Trace) fails() []Record {
	out := make([]Record, 0, len(t.Records))
	for _, r := range t.Records {
		if r.K == "fail" {
			out = append(out, r)
		}
	}
	return out
}

// Write emits the trace as versioned NDJSON: one header line, then one
// line per record.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := t.Header
	h.Kind = "harvest-trace"
	h.Version = TraceVersion
	if err := enc.Encode(h); err != nil {
		return err
	}
	for _, r := range t.Records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a versioned NDJSON trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("harvest: empty trace")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("harvest: bad trace header: %w", err)
	}
	if h.Kind != "harvest-trace" {
		return nil, fmt.Errorf("harvest: not a harvest trace (kind %q)", h.Kind)
	}
	if h.Version > TraceVersion {
		return nil, fmt.Errorf("harvest: trace version %d is newer than supported %d", h.Version, TraceVersion)
	}
	t := &Trace{Header: h}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("harvest: trace line %d: %w", line, err)
		}
		switch rec.K {
		case "fail":
			if _, err := parsePoint(rec.Point); err != nil {
				return nil, fmt.Errorf("harvest: trace line %d: %w", line, err)
			}
		case "sample":
		default:
			return nil, fmt.Errorf("harvest: trace line %d: unknown record kind %q", line, rec.K)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// LoadTrace reads a trace file from disk.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// parsePoint maps a trace point name to a PointKind. Unlike
// emulator.ParsePointKind it accepts "charge": recorded traces replay
// the built-in physics' own refusals, which user-authored injection
// specs may not schedule.
func parsePoint(s string) (emulator.PointKind, error) {
	for _, k := range []emulator.PointKind{
		emulator.PointStep, emulator.PointCharge,
		emulator.PointBeforeSave, emulator.PointMidSave, emulator.PointAfterSave,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("harvest: unknown probe point %q", s)
}

// Recorder wraps any PowerSchedule and records every failure it fires,
// keyed by (probe kind, per-kind ordinal), plus optional periodic
// energy samples. Because the wrapper is opaque to the emulator's
// exhaustion fast path, all charge decisions flow through it — even
// when the inner schedule is plain Exhaustion() — so the recorded run
// and its replay see identical probe streams and produce byte-identical
// Results. (Relative to a bare exhaustion run, a recorded one differs
// only in routing failures through the injection counter; record and
// replay are always mutually identical.)
//
// A Recorder is single-run state, like any schedule.
type Recorder struct {
	// SampleEvery, when positive, emits an energy-history "sample"
	// record every SampleEvery charge probes.
	SampleEvery int64

	inner   emulator.PowerSchedule
	eb      float64
	chargeN int64
	records []Record
}

// NewRecorder wraps inner (nil means plain exhaustion physics) for a
// run with energy budget eb.
func NewRecorder(inner emulator.PowerSchedule, eb float64) *Recorder {
	if inner == nil {
		inner = emulator.Exhaustion()
	}
	return &Recorder{inner: inner, eb: eb}
}

func (r *Recorder) Name() string { return "record(" + r.inner.Name() + ")" }

// ordinal returns the per-kind ordinal of this probe. The machine's
// Occurrence is already a per-kind counter for step and save probes,
// but for charge probes it is the step index — several charges share a
// step — so the recorder counts charge probes itself. The replay
// schedule counts them the same way.
func (r *Recorder) ordinal(p emulator.Probe) int64 {
	if p.Kind == emulator.PointCharge {
		r.chargeN++
		return r.chargeN
	}
	return p.Occurrence
}

func (r *Recorder) Fail(p emulator.Probe) bool {
	ord := r.ordinal(p)
	if r.SampleEvery > 0 && p.Kind == emulator.PointCharge && ord%r.SampleEvery == 0 {
		r.records = append(r.records, Record{K: "sample", N: ord, Cycle: p.Cycle, Level: p.Remaining})
	}
	fail := r.inner.Fail(p)
	if fail {
		r.records = append(r.records, Record{
			K: "fail", Point: p.Kind.String(), N: ord,
			Step: p.Step, Cycle: p.Cycle, Level: p.Remaining, Draw: p.Energy,
		})
	}
	return fail
}

// Trace packages everything recorded so far.
func (r *Recorder) Trace() *Trace {
	return &Trace{
		Header:  Header{Kind: "harvest-trace", Version: TraceVersion, Schedule: r.inner.Name(), EB: r.eb},
		Records: append([]Record(nil), r.records...),
	}
}

// Schedule returns a fresh replay schedule that fires the trace's
// failures at exactly the probes that produced them. Replaying against
// the same program and configuration reproduces the recorded run's
// Result byte-identically.
func (t *Trace) Schedule() emulator.PowerSchedule {
	fails := t.fails()
	inner := t.Header.Schedule
	if inner == "" {
		inner = "trace"
	}
	return &replaySchedule{
		name:  fmt.Sprintf("replay(%s,n=%d)", inner, len(fails)),
		fails: fails,
	}
}

type replaySchedule struct {
	name    string
	fails   []Record
	next    int
	chargeN int64
}

func (s *replaySchedule) Name() string { return s.name }

func (s *replaySchedule) Fail(p emulator.Probe) bool {
	var ord int64
	if p.Kind == emulator.PointCharge {
		s.chargeN++
		ord = s.chargeN
	} else {
		ord = p.Occurrence
	}
	if s.next < len(s.fails) {
		f := &s.fails[s.next]
		if f.Point == p.Kind.String() && f.N == ord {
			s.next++
			return true
		}
	}
	return false
}
