package ir

// Builder offers a compact way to construct IR by hand, used by the MiniC
// lowering pass, tests, and examples.
type Builder struct {
	Func  *Func
	Block *Block
}

// NewBuilder starts building into the given function at a fresh entry block.
func NewBuilder(f *Func) *Builder {
	b := &Builder{Func: f}
	if len(f.Blocks) == 0 {
		b.Block = f.NewBlock("entry")
	} else {
		b.Block = f.Blocks[len(f.Blocks)-1]
	}
	return b
}

// At redirects emission to the given block.
func (b *Builder) At(blk *Block) *Builder {
	b.Block = blk
	return b
}

// Emit appends an instruction to the current block.
func (b *Builder) Emit(in Instr) {
	b.Block.Instrs = append(b.Block.Instrs, in)
}

// Const emits a constant into a fresh register.
func (b *Builder) Const(v int64) Reg {
	r := b.Func.NewReg()
	b.Emit(&Const{Dst: r, Val: v})
	return r
}

// Bin emits a binary operation into a fresh register.
func (b *Builder) Bin(op Op, x, y Reg) Reg {
	r := b.Func.NewReg()
	b.Emit(&BinOp{Dst: r, Op: op, A: x, B: y})
	return r
}

// Un emits a unary operation into a fresh register.
func (b *Builder) Un(op Op, x Reg) Reg {
	r := b.Func.NewReg()
	b.Emit(&BinOp{Dst: r, Op: op, A: x})
	return r
}

// Load emits a scalar load.
func (b *Builder) Load(v *Var) Reg {
	r := b.Func.NewReg()
	b.Emit(&Load{Dst: r, Var: v})
	return r
}

// LoadIdx emits an indexed load.
func (b *Builder) LoadIdx(v *Var, idx Reg) Reg {
	r := b.Func.NewReg()
	b.Emit(&Load{Dst: r, Var: v, Index: idx, HasIndex: true})
	return r
}

// Store emits a scalar store.
func (b *Builder) Store(v *Var, src Reg) {
	b.Emit(&Store{Var: v, Src: src})
}

// StoreIdx emits an indexed store.
func (b *Builder) StoreIdx(v *Var, idx, src Reg) {
	b.Emit(&Store{Var: v, Index: idx, HasIndex: true, Src: src})
}

// Call emits a call; the result register is meaningful only when the callee
// returns a value.
func (b *Builder) Call(callee *Func, args ...Reg) Reg {
	c := &Call{Callee: callee, Args: args}
	if callee.HasRet {
		c.Dst = b.Func.NewReg()
		c.HasDst = true
	}
	b.Emit(c)
	return c.Dst
}

// Out emits an output instruction.
func (b *Builder) Out(src Reg) { b.Emit(&Out{Src: src}) }

// Br terminates the current block with a conditional branch.
func (b *Builder) Br(cond Reg, then, els *Block) {
	b.Emit(&Br{Cond: cond, Then: then, Else: els})
}

// Jmp terminates the current block with an unconditional branch.
func (b *Builder) Jmp(target *Block) { b.Emit(&Jmp{Target: target}) }

// Ret terminates the current block with a void return.
func (b *Builder) Ret() { b.Emit(&Ret{}) }

// RetVal terminates the current block returning the given register.
func (b *Builder) RetVal(src Reg) { b.Emit(&Ret{Src: src, HasSrc: true}) }
