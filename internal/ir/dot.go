package ir

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the function's CFG in Graphviz DOT format, annotated
// with the placement results: VM allocations on each block, checkpoint
// blocks highlighted, atomic sections shaded.
//
//	dot -Tsvg main.dot -o main.svg
func WriteDot(w io.Writer, f *Func) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", f.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	for _, blk := range f.Blocks {
		label := blk.Name
		if n := blk.VMBytes(); n > 0 {
			label += fmt.Sprintf("\\nvm={%s}", allocList(blk.Alloc))
		}
		var attrs []string
		for _, in := range blk.Instrs {
			if ck, ok := in.(*Checkpoint); ok {
				tag := fmt.Sprintf("ck#%d %s", ck.ID, ck.Kind)
				if ck.Every > 1 {
					tag += fmt.Sprintf(" every %d", ck.Every)
				}
				label += "\\n" + tag
				attrs = append(attrs, "color=red", "penwidth=2")
				break
			}
		}
		if blk.Atomic {
			attrs = append(attrs, "style=filled", "fillcolor=lightyellow")
		}
		attr := ""
		if len(attrs) > 0 {
			attr = ", " + strings.Join(attrs, ", ")
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\"%s];\n", blk.Name, label, attr)
	}
	for _, blk := range f.Blocks {
		switch t := blk.Terminator().(type) {
		case *Br:
			fmt.Fprintf(&b, "  %q -> %q [label=\"T\"];\n", blk.Name, t.Then.Name)
			fmt.Fprintf(&b, "  %q -> %q [label=\"F\"];\n", blk.Name, t.Else.Name)
		case *Jmp:
			fmt.Fprintf(&b, "  %q -> %q;\n", blk.Name, t.Target.Name)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
