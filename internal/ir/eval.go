package ir

import "fmt"

// EvalOp evaluates a binary (or unary, with b ignored) operator on concrete
// values. It is the single source of arithmetic semantics, shared by the
// emulator and the optimizer's constant folder: division and remainder by
// zero are runtime errors, out-of-range shift amounts yield zero, and
// comparisons produce 0 or 1.
func EvalOp(op Op, a, b int64) (int64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	case OpRem:
		if b == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		return a % b, nil
	case OpAnd:
		return a & b, nil
	case OpOr:
		return a | b, nil
	case OpXor:
		return a ^ b, nil
	case OpShl:
		if b < 0 || b > 63 {
			return 0, nil
		}
		return a << uint(b), nil
	case OpShr:
		if b < 0 || b > 63 {
			return 0, nil
		}
		return int64(uint64(a) >> uint(b)), nil
	case OpEq:
		return evalBool(a == b), nil
	case OpNe:
		return evalBool(a != b), nil
	case OpLt:
		return evalBool(a < b), nil
	case OpLe:
		return evalBool(a <= b), nil
	case OpGt:
		return evalBool(a > b), nil
	case OpGe:
		return evalBool(a >= b), nil
	case OpNeg:
		return -a, nil
	case OpNot:
		return evalBool(a == 0), nil
	default:
		return 0, fmt.Errorf("unknown op %v", op)
	}
}

func evalBool(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
