package ir

import (
	"fmt"
	"strings"
)

// Op is a binary or unary operator.
type Op uint8

const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Unary operators (operand in A).
	OpNeg
	OpNot // logical not: 1 if A == 0, else 0
)

var opNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpNeg: "neg", OpNot: "not",
}

func (o Op) String() string { return opNames[o] }

// IsUnary reports whether the operator takes a single operand.
func (o Op) IsUnary() bool { return o == OpNeg || o == OpNot }

// IsCompare reports whether the operator is a comparison producing 0 or 1.
func (o Op) IsCompare() bool { return o >= OpEq && o <= OpGe }

// OpByName resolves a textual operator name; ok is false if unknown.
func OpByName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name {
			return Op(i), true
		}
	}
	return 0, false
}

// Instr is an IR instruction. The concrete types below form a closed set.
type Instr interface {
	String() string
	isTerminator() bool
}

// Const sets Dst to an immediate value.
type Const struct {
	Dst Reg
	Val int64
}

// BinOp computes Dst = A op B (or op A for unary operators).
type BinOp struct {
	Dst  Reg
	Op   Op
	A, B Reg
}

// Load reads a variable (optionally indexed) into Dst. The memory space
// charged for the access is the one the enclosing block's allocation
// assigns to Var.
type Load struct {
	Dst      Reg
	Var      *Var
	Index    Reg
	HasIndex bool
}

// Store writes Src into a variable (optionally indexed).
type Store struct {
	Var      *Var
	Index    Reg
	HasIndex bool
	Src      Reg
}

// Call invokes Callee with the given argument registers; if the callee
// returns a value it is placed in Dst.
type Call struct {
	Dst    Reg
	HasDst bool
	Callee *Func
	Args   []Reg
}

// Out emits the value in Src to the program's output stream. Output is the
// observable behaviour used to check semantic preservation under
// intermittent execution.
type Out struct {
	Src Reg
}

// Br branches to Then if Cond is non-zero, else to Else.
type Br struct {
	Cond       Reg
	Then, Else *Block
}

// Jmp is an unconditional branch.
type Jmp struct {
	Target *Block
}

// Ret returns from the function, with the value in Src when HasSrc.
type Ret struct {
	Src    Reg
	HasSrc bool
}

// CheckpointKind distinguishes the runtime behaviours of checkpoint sites.
type CheckpointKind uint8

const (
	// CkWait saves volatile state, sleeps until the capacitor is fully
	// replenished, restores, and resumes (SCHEMATIC and ROCKCLIMB, Fig. 3).
	CkWait CheckpointKind = iota
	// CkRollback saves volatile state and continues immediately; on a later
	// power failure execution restarts from the most recent save (RATCHET,
	// ALFRED).
	CkRollback
	// CkTrigger is a MEMENTOS-style trigger point: the runtime measures the
	// remaining energy and saves only when it is below a threshold.
	CkTrigger
)

func (k CheckpointKind) String() string {
	switch k {
	case CkWait:
		return "wait"
	case CkRollback:
		return "rollback"
	default:
		return "trigger"
	}
}

// Checkpoint is an enabled checkpoint location. Placement passes insert it
// on split CFG edges (or inside blocks for loop-latch schemes).
type Checkpoint struct {
	ID   int
	Kind CheckpointKind

	// Every implements the conditional checkpointing scheme of Algorithm 1:
	// when > 1 the runtime maintains a counter and the checkpoint fires only
	// every Every-th execution. 0 and 1 both mean "always".
	Every int

	// Save lists the VM-resident variables that are live across the
	// checkpoint and must be written to NVM (Eq. 2: dead variables are
	// skipped). Registers are always saved. nil means "save every variable
	// the current allocation puts in VM" (conservative runtimes).
	Save []*Var
	// Restore lists the VM-resident variables to read back from NVM when
	// resuming. A variable whose first post-checkpoint access is a write is
	// omitted (Eq. 2).
	Restore []*Var
	// SaveAll makes the runtime save/restore every live VM variable
	// regardless of Save/Restore (used by baselines without liveness
	// optimization).
	SaveAll bool
	// RegsOnly marks RATCHET-style register-only checkpoints (working
	// memory is NVM, so only the register file is volatile).
	RegsOnly bool
	// RefinedRegs, when set, means LiveRegs holds the number of
	// general-purpose registers live across this checkpoint: the runtime
	// then saves only those plus the fixed machine state (PC, SR) instead
	// of the whole register file (§VII's data-volume reduction).
	RefinedRegs bool
	LiveRegs    int
	// Lazy selects ALFRED's deferred restoration and anticipated saving:
	// only variables dirtied since the previous save are written, and
	// post-failure restores are charged per variable on first access.
	Lazy bool
}

// LoopBound is a metadata pseudo-instruction placed at the start of a loop
// header block, carrying the annotated maximum iteration count of the loop
// (MiniC's @max annotation). It costs nothing at run time; Algorithm 1
// compares its value against numit to decide whether back-edge
// checkpointing can be elided.
type LoopBound struct {
	Max int
}

func (*Const) isTerminator() bool      { return false }
func (*BinOp) isTerminator() bool      { return false }
func (*Load) isTerminator() bool       { return false }
func (*Store) isTerminator() bool      { return false }
func (*Call) isTerminator() bool       { return false }
func (*Out) isTerminator() bool        { return false }
func (*Checkpoint) isTerminator() bool { return false }
func (*LoopBound) isTerminator() bool  { return false }
func (*Br) isTerminator() bool         { return true }
func (*Jmp) isTerminator() bool        { return true }
func (*Ret) isTerminator() bool        { return true }

func (i *Const) String() string { return fmt.Sprintf("%v = const %d", i.Dst, i.Val) }

func (i *BinOp) String() string {
	if i.Op.IsUnary() {
		return fmt.Sprintf("%v = %v %v", i.Dst, i.Op, i.A)
	}
	return fmt.Sprintf("%v = %v %v, %v", i.Dst, i.Op, i.A, i.B)
}

func (i *Load) String() string {
	if i.HasIndex {
		return fmt.Sprintf("%v = load %s[%v]", i.Dst, i.Var.Name, i.Index)
	}
	return fmt.Sprintf("%v = load %s", i.Dst, i.Var.Name)
}

func (i *Store) String() string {
	if i.HasIndex {
		return fmt.Sprintf("store %s[%v], %v", i.Var.Name, i.Index, i.Src)
	}
	return fmt.Sprintf("store %s, %v", i.Var.Name, i.Src)
}

func (i *Call) String() string {
	args := make([]string, len(i.Args))
	for k, a := range i.Args {
		args[k] = a.String()
	}
	call := fmt.Sprintf("call %s(%s)", i.Callee.Name, strings.Join(args, ", "))
	if i.HasDst {
		return fmt.Sprintf("%v = %s", i.Dst, call)
	}
	return call
}

func (i *Out) String() string { return fmt.Sprintf("out %v", i.Src) }

func (i *LoopBound) String() string { return fmt.Sprintf("loopbound %d", i.Max) }

func (i *Br) String() string {
	return fmt.Sprintf("br %v, %s, %s", i.Cond, i.Then.Name, i.Else.Name)
}

func (i *Jmp) String() string { return fmt.Sprintf("jmp %s", i.Target.Name) }

func (i *Ret) String() string {
	if i.HasSrc {
		return fmt.Sprintf("ret %v", i.Src)
	}
	return "ret"
}

func (i *Checkpoint) String() string {
	s := fmt.Sprintf("checkpoint #%d %s", i.ID, i.Kind)
	if i.Every > 1 {
		s += fmt.Sprintf(" every %d", i.Every)
	}
	if i.RegsOnly {
		s += " regs-only"
	}
	if i.SaveAll {
		s += " save-all"
	}
	if i.Lazy {
		s += " lazy"
	}
	if i.RefinedRegs {
		s += fmt.Sprintf(" liveregs %d", i.LiveRegs)
	}
	if len(i.Save) > 0 {
		s += " save " + varList(i.Save)
	}
	if len(i.Restore) > 0 {
		s += " restore " + varList(i.Restore)
	}
	return s
}

func varList(vs []*Var) string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return strings.Join(names, ",")
}

// Uses returns the registers read by an instruction.
func Uses(in Instr) []Reg {
	switch i := in.(type) {
	case *BinOp:
		if i.Op.IsUnary() {
			return []Reg{i.A}
		}
		return []Reg{i.A, i.B}
	case *Load:
		if i.HasIndex {
			return []Reg{i.Index}
		}
	case *Store:
		if i.HasIndex {
			return []Reg{i.Index, i.Src}
		}
		return []Reg{i.Src}
	case *Call:
		return i.Args
	case *Out:
		return []Reg{i.Src}
	case *Br:
		return []Reg{i.Cond}
	case *Ret:
		if i.HasSrc {
			return []Reg{i.Src}
		}
	}
	return nil
}

// Def returns the register written by an instruction, if any.
func Def(in Instr) (Reg, bool) {
	switch i := in.(type) {
	case *Const:
		return i.Dst, true
	case *BinOp:
		return i.Dst, true
	case *Load:
		return i.Dst, true
	case *Call:
		if i.HasDst {
			return i.Dst, true
		}
	}
	return 0, false
}

// AccessedVar returns the memory variable referenced by an instruction
// along with whether the access is a write.
func AccessedVar(in Instr) (v *Var, write, ok bool) {
	switch i := in.(type) {
	case *Load:
		return i.Var, false, true
	case *Store:
		return i.Var, true, true
	}
	return nil, false, false
}
