// Package ir defines the intermediate representation used throughout the
// SCHEMATIC reproduction.
//
// The IR is a conventional three-address representation over an unbounded
// set of per-function virtual registers, with explicit load/store
// instructions against named memory variables. Memory variables — scalars
// and one-dimensional arrays — are the unit of SCHEMATIC's memory
// allocation: every variable lives either in volatile memory (VM) or in
// non-volatile memory (NVM), and the allocation may change only at enabled
// checkpoint locations.
//
// Control flow is expressed with basic blocks connected by explicit edges.
// CFG edges are the potential checkpoint locations the SCHEMATIC analysis
// considers; enabled checkpoints materialize as Checkpoint instructions on
// split edges.
package ir

import "fmt"

// WordBytes is the size in bytes of the machine word. The modelled target
// (an MSP430FR5969-class microcontroller) is a 16-bit machine.
const WordBytes = 2

// Space identifies the memory a variable currently lives in.
type Space uint8

const (
	// NVM is non-volatile memory (FRAM). Contents survive power failures.
	NVM Space = iota
	// VM is volatile memory (SRAM). Faster and more energy-efficient than
	// NVM, but contents are lost on power failure and during deep sleep.
	VM
)

func (s Space) String() string {
	if s == VM {
		return "vm"
	}
	return "nvm"
}

// Reg is a virtual register index, local to a function. Registers model the
// CPU register file plus compiler temporaries: they are volatile and are
// saved wholesale at checkpoints.
type Reg int

func (r Reg) String() string { return fmt.Sprintf("r%d", int(r)) }

// Var is a memory variable: a scalar (Elems == 1) or a one-dimensional
// array. Variables are statically allocated. A function-local variable has
// a single static storage slot (the IR forbids recursion, following the
// paper, section III-B1), so locals and globals are treated uniformly by
// the allocator and the emulator.
type Var struct {
	Name     string
	Elems    int  // number of elements; 1 for scalars
	Global   bool // module-scope variable
	Input    bool // filled with workload input data before each run
	AddrUsed bool // accessed through a pointer; pinned to NVM (paper, IV-A-c)

	// Init holds optional initial values (globals only). Missing trailing
	// elements are zero.
	Init []int64

	// Func is the owning function for locals, nil for globals.
	Func *Func
}

// SizeBytes returns the storage footprint of the variable.
func (v *Var) SizeBytes() int { return v.Elems * WordBytes }

func (v *Var) String() string { return v.Name }

// Block is a basic block: a straight-line instruction sequence ended by a
// single terminator (Br, Jmp, or Ret).
type Block struct {
	Name   string
	Func   *Func
	Instrs []Instr

	// Alloc is the memory allocation chosen for this block: the set of
	// variables that reside in VM while this block executes. Variables not
	// present are in NVM. Populated by placement passes; nil means
	// everything is in NVM.
	Alloc map[*Var]bool

	// Atomic marks the block as part of an atomic section (paper §VI):
	// checkpoint placement inside it is forbidden, so peripheral
	// operations are never torn by a power-down.
	Atomic bool

	// Index is the position of the block in Func.Blocks, maintained by
	// Func.Renumber.
	Index int
}

// Terminator returns the block's terminating instruction, or nil if the
// block is not yet terminated.
func (b *Block) Terminator() Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if t.isTerminator() {
		return t
	}
	return nil
}

// Succs returns the successor blocks in terminator order.
func (b *Block) Succs() []*Block {
	switch t := b.Terminator().(type) {
	case *Br:
		return []*Block{t.Then, t.Else}
	case *Jmp:
		return []*Block{t.Target}
	default:
		return nil
	}
}

// Preds returns the predecessor blocks, computed by scanning the function.
// The result is stable across calls as long as the CFG does not change.
func (b *Block) Preds() []*Block {
	var preds []*Block
	for _, p := range b.Func.Blocks {
		for _, s := range p.Succs() {
			if s == b {
				preds = append(preds, p)
				break
			}
		}
	}
	return preds
}

// InVM reports whether v is allocated to VM while this block executes.
func (b *Block) InVM(v *Var) bool { return b.Alloc != nil && b.Alloc[v] }

// VMBytes returns the number of bytes of VM occupied by this block's
// allocation.
func (b *Block) VMBytes() int {
	n := 0
	for v, in := range b.Alloc {
		if in {
			n += v.SizeBytes()
		}
	}
	return n
}

// Func is a function: parameters arrive in registers 0..len(Params)-1.
type Func struct {
	Name    string
	Params  []string // parameter names (for diagnostics); values in r0..rN-1
	HasRet  bool     // returns a value
	Locals  []*Var
	Blocks  []*Block
	NumRegs int // virtual registers used; r0..rNumRegs-1

	Module *Module
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// NewBlock appends a new, empty block with the given name, making it unique
// if necessary.
func (f *Func) NewBlock(name string) *Block {
	base := name
	for i := 2; f.BlockByName(name) != nil; i++ {
		name = fmt.Sprintf("%s.%d", base, i)
	}
	b := &Block{Name: name, Func: f, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// BlockByName returns the block with the given name, or nil.
func (f *Func) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// LocalByName returns the local variable with the given name, or nil.
func (f *Func) LocalByName(name string) *Var {
	for _, v := range f.Locals {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// Renumber refreshes Block.Index after structural edits.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// Module is a compilation unit: globals plus functions. Execution starts at
// the function named "main".
type Module struct {
	Name    string
	Globals []*Var
	Funcs   []*Func
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalByName returns the global with the given name, or nil.
func (m *Module) GlobalByName(name string) *Var {
	for _, v := range m.Globals {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// NewFunc appends a new function to the module.
func (m *Module) NewFunc(name string, params []string, hasRet bool) *Func {
	f := &Func{Name: name, Params: params, HasRet: hasRet, Module: m}
	f.NumRegs = len(params)
	m.Funcs = append(m.Funcs, f)
	return f
}

// NewGlobal appends a new global variable to the module.
func (m *Module) NewGlobal(name string, elems int) *Var {
	v := &Var{Name: name, Elems: elems, Global: true}
	m.Globals = append(m.Globals, v)
	return v
}

// InputVars returns the module's input-annotated globals in declaration
// order. The profiler and the experiment harness fill these with workload
// data before each run.
func (m *Module) InputVars() []*Var {
	var in []*Var
	for _, v := range m.Globals {
		if v.Input {
			in = append(in, v)
		}
	}
	return in
}
