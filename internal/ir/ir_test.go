package ir

import (
	"strings"
	"testing"
)

const sampleSrc = `module sample
input global data[8]
global table[4] = {1, 2, 3, 4}
global sum

func int add(a, b) regs 3 {
entry:
  r2 = add r0, r1
  ret r2
}

func void main() regs 8 {
  local i
  local tmp[2]
entry:
  r0 = const 0
  store sum, r0
  store i, r0
  jmp head
head:
  r1 = load i
  r2 = const 8
  r3 = lt r1, r2
  br r3, body, done
body:
  r4 = load data[r1]
  r5 = load sum
  r6 = call add(r4, r5)
  store sum, r6
  r7 = const 1
  r6 = add r1, r7
  store i, r6
  jmp head
done:
  r5 = load sum
  out r5
  ret
}
`

func parseSample(t *testing.T) *Module {
	t.Helper()
	m, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func TestParseBasics(t *testing.T) {
	m := parseSample(t)
	if m.Name != "sample" {
		t.Errorf("module name = %q, want sample", m.Name)
	}
	if got := len(m.Globals); got != 3 {
		t.Fatalf("globals = %d, want 3", got)
	}
	data := m.GlobalByName("data")
	if data == nil || !data.Input || data.Elems != 8 {
		t.Errorf("data = %+v, want input array of 8", data)
	}
	table := m.GlobalByName("table")
	if table == nil || len(table.Init) != 4 || table.Init[2] != 3 {
		t.Errorf("table init wrong: %+v", table)
	}
	if got := len(m.Funcs); got != 2 {
		t.Fatalf("funcs = %d, want 2", got)
	}
	mainFn := m.FuncByName("main")
	if mainFn == nil || len(mainFn.Blocks) != 4 {
		t.Fatalf("main blocks = %d, want 4", len(mainFn.Blocks))
	}
	if mainFn.LocalByName("tmp").Elems != 2 {
		t.Errorf("tmp elems wrong")
	}
	add := m.FuncByName("add")
	if !add.HasRet || len(add.Params) != 2 {
		t.Errorf("add signature wrong: %+v", add)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := parseSample(t)
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if err := Verify(m2); err != nil {
		t.Fatalf("reverify: %v", err)
	}
	if text2 := m2.String(); text2 != text {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	m := parseSample(t)
	f := m.FuncByName("main")
	body := f.BlockByName("body")
	sum := m.GlobalByName("sum")
	ck := &Checkpoint{ID: 7, Kind: CkWait, Every: 3, Save: []*Var{sum}, Restore: []*Var{sum}}
	body.Instrs = append([]Instr{ck}, body.Instrs...)
	if err := Verify(m); err != nil {
		t.Fatalf("verify with checkpoint: %v", err)
	}
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	ck2 := Checkpoints(m2)
	if len(ck2) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(ck2))
	}
	got := ck2[0]
	if got.ID != 7 || got.Kind != CkWait || got.Every != 3 ||
		len(got.Save) != 1 || got.Save[0].Name != "sum" ||
		len(got.Restore) != 1 || got.Restore[0].Name != "sum" {
		t.Errorf("checkpoint round trip = %s", got)
	}
}

func TestAllocRoundTrip(t *testing.T) {
	// Block allocations are semantic state (the emulator charges VM or NVM
	// per them); they must survive print → parse.
	m := parseSample(t)
	f := m.FuncByName("main")
	sum := m.GlobalByName("sum")
	i := f.LocalByName("i")
	f.BlockByName("body").Alloc = map[*Var]bool{sum: true, i: true}
	f.BlockByName("head").Alloc = map[*Var]bool{i: true}

	m2, err := Parse(m.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, m.String())
	}
	f2 := m2.FuncByName("main")
	sum2 := m2.GlobalByName("sum")
	i2 := f2.LocalByName("i")
	if !f2.BlockByName("body").InVM(sum2) || !f2.BlockByName("body").InVM(i2) {
		t.Errorf("body allocation lost in round trip")
	}
	if !f2.BlockByName("head").InVM(i2) || f2.BlockByName("head").InVM(sum2) {
		t.Errorf("head allocation wrong after round trip")
	}
	if f2.BlockByName("done").VMBytes() != 0 {
		t.Errorf("done should have no allocation")
	}
	if m2.String() != m.String() {
		t.Errorf("round trip not stable")
	}
}

func TestSuccsPreds(t *testing.T) {
	m := parseSample(t)
	f := m.FuncByName("main")
	head := f.BlockByName("head")
	succs := head.Succs()
	if len(succs) != 2 || succs[0].Name != "body" || succs[1].Name != "done" {
		t.Fatalf("head succs = %v", succs)
	}
	preds := head.Preds()
	if len(preds) != 2 {
		t.Fatalf("head preds = %d, want 2 (entry, body)", len(preds))
	}
}

func TestReversePostorder(t *testing.T) {
	m := parseSample(t)
	f := m.FuncByName("main")
	rpo := ReversePostorder(f)
	if len(rpo) != 4 {
		t.Fatalf("rpo len = %d", len(rpo))
	}
	if rpo[0].Name != "entry" {
		t.Errorf("rpo[0] = %s, want entry", rpo[0].Name)
	}
	pos := map[string]int{}
	for i, b := range rpo {
		pos[b.Name] = i
	}
	if pos["head"] > pos["body"] || pos["head"] > pos["done"] {
		t.Errorf("rpo order wrong: %v", pos)
	}
}

func TestSplitEdge(t *testing.T) {
	m := parseSample(t)
	f := m.FuncByName("main")
	head := f.BlockByName("head")
	body := f.BlockByName("body")
	nb := SplitEdge(head, body)
	if err := Verify(m); err != nil {
		t.Fatalf("verify after split: %v", err)
	}
	br := head.Terminator().(*Br)
	if br.Then != nb {
		t.Errorf("branch not redirected to split block")
	}
	if tgt := nb.Terminator().(*Jmp).Target; tgt != body {
		t.Errorf("split block jumps to %s, want body", tgt.Name)
	}
	// body's predecessor set should now contain the split block, not head.
	for _, p := range body.Preds() {
		if p == head {
			t.Errorf("head still a direct predecessor of body")
		}
	}
}

func TestSplitEdgeJmp(t *testing.T) {
	m := parseSample(t)
	f := m.FuncByName("main")
	entry := f.BlockByName("entry")
	head := f.BlockByName("head")
	nb := SplitEdge(entry, head)
	if err := Verify(m); err != nil {
		t.Fatalf("verify after split: %v", err)
	}
	if entry.Terminator().(*Jmp).Target != nb {
		t.Errorf("jmp not redirected")
	}
}

func TestClone(t *testing.T) {
	m := parseSample(t)
	f := m.FuncByName("main")
	sum := m.GlobalByName("sum")
	f.BlockByName("body").Alloc = map[*Var]bool{sum: true}

	c := Clone(m)
	if err := Verify(c); err != nil {
		t.Fatalf("verify clone: %v", err)
	}
	if c.String() != m.String() {
		t.Errorf("clone text differs:\n%s\n---\n%s", m.String(), c.String())
	}
	// Mutating the clone must not touch the original.
	cf := c.FuncByName("main")
	cf.BlockByName("body").Instrs = cf.BlockByName("body").Instrs[:1]
	if len(f.BlockByName("body").Instrs) <= 1 {
		t.Errorf("clone shares instruction slices with original")
	}
	csum := c.GlobalByName("sum")
	if csum == sum {
		t.Errorf("clone shares Var pointers with original")
	}
	if !cf.BlockByName("body").InVM(csum) {
		t.Errorf("clone lost allocation map")
	}
}

func TestVerifyRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "no main",
			src:  "module m\nfunc void f() regs 0 {\nentry:\n  ret\n}\n",
			want: "no main",
		},
		{
			name: "unterminated block",
			src:  "module m\nfunc void main() regs 1 {\nentry:\n  r0 = const 1\n}\n",
			want: "terminator",
		},
		{
			name: "recursion",
			src: `module m
func void main() regs 0 {
entry:
  call main()
  ret
}
`,
			want: "recursion",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Parse(tc.src)
			if err == nil {
				err = Verify(m)
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                               // no module line
		"module m\nglobal x[0]\n",        // zero-size array
		"module m\nglobal x\nglobal x\n", // duplicate global
		"module m\nfunc void main() regs 0 {\nentry:\n  frob r0\n}\n", // unknown op
		"module m\nfunc void main() regs 1 {\nentry:\n  jmp nowhere\n}\n",
		"module m\nfunc int f(a, b) regs 1 {\nentry:\n  ret r0\n}\n", // regs < params
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted bad source:\n%s", src)
		}
	}
}

func TestBuilder(t *testing.T) {
	m := &Module{Name: "built"}
	g := m.NewGlobal("x", 1)
	f := m.NewFunc("main", nil, false)
	b := NewBuilder(f)
	v := b.Const(41)
	one := b.Const(1)
	sum := b.Bin(OpAdd, v, one)
	b.Store(g, sum)
	got := b.Load(g)
	b.Out(got)
	b.Ret()
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if f.NumRegs != 4 {
		t.Errorf("NumRegs = %d, want 4", f.NumRegs)
	}
}

func TestDataBytes(t *testing.T) {
	m := parseSample(t)
	// globals: data[8] + table[4] + sum = 13 words; locals: i + tmp[2] = 3 words.
	want := 16 * WordBytes
	if got := DataBytes(m); got != want {
		t.Errorf("DataBytes = %d, want %d", got, want)
	}
}

func TestUsesDef(t *testing.T) {
	m := parseSample(t)
	f := m.FuncByName("main")
	body := f.BlockByName("body")
	ld := body.Instrs[0].(*Load)
	if uses := Uses(ld); len(uses) != 1 || uses[0] != ld.Index {
		t.Errorf("Uses(load idx) = %v", uses)
	}
	if d, ok := Def(ld); !ok || d != ld.Dst {
		t.Errorf("Def(load) = %v, %v", d, ok)
	}
	if v, w, ok := AccessedVar(ld); !ok || w || v.Name != "data" {
		t.Errorf("AccessedVar(load) = %v %v %v", v, w, ok)
	}
	st := body.Instrs[3].(*Store)
	if v, w, ok := AccessedVar(st); !ok || !w || v.Name != "sum" {
		t.Errorf("AccessedVar(store) = %v %v %v", v, w, ok)
	}
}

func TestWriteDot(t *testing.T) {
	m := parseSample(t)
	f := m.FuncByName("main")
	sum := m.GlobalByName("sum")
	f.BlockByName("body").Alloc = map[*Var]bool{sum: true}
	f.BlockByName("head").Atomic = true
	nb := SplitEdge(f.BlockByName("body"), f.BlockByName("head"))
	nb.Instrs = append([]Instr{&Checkpoint{ID: 3, Kind: CkWait, Every: 4}}, nb.Instrs...)

	var buf strings.Builder
	if err := WriteDot(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"main\"", "vm={sum}", "ck#3 wait every 4",
		"fillcolor=lightyellow", "label=\"T\"", "->",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}
