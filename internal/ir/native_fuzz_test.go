package ir_test

import (
	"testing"

	"schematic/internal/ir"
)

// FuzzIRParseRoundtrip is the native fuzzing entry point for the textual
// IR format: Parse must never panic on arbitrary text, and any module it
// accepts must survive print→parse→print as a fixpoint — the printed form
// carries every semantic bit and is itself canonical. Seed corpus:
// testdata/fuzz/FuzzIRParseRoundtrip. Run with
//
//	go test ./internal/ir -run '^$' -fuzz FuzzIRParseRoundtrip -fuzztime 30s
func FuzzIRParseRoundtrip(f *testing.F) {
	f.Add("module m\n\nfunc void main() regs 1 {\nentry:\n  ret\n}\n")
	f.Add("module m\nglobal g\n\nfunc void main() regs 2 {\nentry:\n  r0 = const 7\n  store g, r0\n  out r0\n  ret\n}\n")
	f.Add("module m\ninput global a[4]\n\nfunc int f(x) regs 2 {\nentry:\n  r1 = add r0, r0\n  ret r1\n}\n\nfunc void main() regs 3 {\nentry:\n  r0 = const 1\n  r1 = call f(r0)\n  br r1, yes, no\nyes:\n  out r1\n  jmp no\nno:\n  ret\n}\n")
	f.Add("module m\n\nfunc void main() regs 1 {\nentry:\n  checkpoint #1 wait\n  loopbound 8\n  ret\n}\n")
	f.Add("module m\n\nfunc void main() regs 1 {\nentry:\n  r0 = const\n}\n")
	f.Add("out\nr0 = \nbr")
	f.Add("module \x00\xff")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.Parse(src)
		if err != nil {
			return // rejection is always fine
		}
		first := m.String()
		m2, err := ir.Parse(first)
		if err != nil {
			t.Fatalf("printer emitted unparsable text: %v\ninput:\n%s\nprinted:\n%s", err, src, first)
		}
		second := m2.String()
		if first != second {
			t.Fatalf("print→parse→print is not a fixpoint\nfirst:\n%s\nsecond:\n%s", first, second)
		}
	})
}
