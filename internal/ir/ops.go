package ir

// Ops returns every defined operator in enum order. The translation
// validator's coverage accountant uses this as the opcode universe when
// measuring what a fuzz corpus actually exercises.
func Ops() []Op {
	out := make([]Op, len(opNames))
	for i := range opNames {
		out[i] = Op(i)
	}
	return out
}
