package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module from its textual representation (the format produced
// by Module.String). Parsing is two-phase so that forward references to
// blocks and functions resolve.
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m, err := p.module()
	if err != nil {
		return nil, fmt.Errorf("ir: line %d: %w", p.pos+1, err)
	}
	return m, nil
}

// MustParse is Parse for known-good sources, panicking on error. Intended
// for tests and embedded programs.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			p.pos++
			continue
		}
		return line, true
	}
	return "", false
}

func (p *parser) module() (*Module, error) {
	line, ok := p.next()
	if !ok || !strings.HasPrefix(line, "module ") {
		return nil, fmt.Errorf("expected 'module <name>'")
	}
	m := &Module{Name: strings.TrimSpace(strings.TrimPrefix(line, "module "))}
	p.pos++

	// Pass 1: globals and function shells with raw bodies.
	type rawFunc struct {
		f     *Func
		body  []string
		start int
	}
	var raws []rawFunc
	for {
		line, ok := p.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "global "), strings.HasPrefix(line, "input global "):
			v, err := parseVarDecl(line, "global")
			if err != nil {
				return nil, err
			}
			v.Global = true
			if m.GlobalByName(v.Name) != nil {
				return nil, fmt.Errorf("duplicate global %q", v.Name)
			}
			m.Globals = append(m.Globals, v)
			p.pos++
		case strings.HasPrefix(line, "func "):
			f, err := parseFuncHeader(line)
			if err != nil {
				return nil, err
			}
			if m.FuncByName(f.Name) != nil {
				return nil, fmt.Errorf("duplicate function %q", f.Name)
			}
			f.Module = m
			m.Funcs = append(m.Funcs, f)
			p.pos++
			start := p.pos
			var body []string
			closed := false
			for p.pos < len(p.lines) {
				l := strings.TrimSpace(p.lines[p.pos])
				if l == "}" {
					closed = true
					p.pos++
					break
				}
				body = append(body, p.lines[p.pos])
				p.pos++
			}
			if !closed {
				return nil, fmt.Errorf("function %q: missing closing '}'", f.Name)
			}
			raws = append(raws, rawFunc{f: f, body: body, start: start})
		default:
			return nil, fmt.Errorf("unexpected %q", line)
		}
	}

	// Pass 2: function bodies, with the full symbol table available.
	for _, r := range raws {
		if err := p.funcBody(m, r.f, r.body, r.start); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// validIdent reports whether a name is safe to print and reparse: the
// textual format separates tokens with whitespace, commas, brackets, and
// trailing colons, so names must be conventional identifiers (plus the
// dots the lowering uses in block labels, e.g. "for.head.14").
func validIdent(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '.'):
		default:
			return false
		}
	}
	return s != ""
}

func parseVarDecl(line, kw string) (*Var, error) {
	v := &Var{Elems: 1}
	rest := line
	if strings.HasPrefix(rest, "input ") {
		v.Input = true
		rest = strings.TrimPrefix(rest, "input ")
	}
	if !strings.HasPrefix(rest, kw+" ") {
		return nil, fmt.Errorf("expected %q declaration in %q", kw, line)
	}
	rest = strings.TrimSpace(strings.TrimPrefix(rest, kw+" "))

	var initPart string
	if i := strings.Index(rest, "="); i >= 0 {
		initPart = strings.TrimSpace(rest[i+1:])
		rest = strings.TrimSpace(rest[:i])
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, fmt.Errorf("missing variable name in %q", line)
	}
	name := fields[0]
	for _, f := range fields[1:] {
		if f == "addr" {
			v.AddrUsed = true
		} else {
			return nil, fmt.Errorf("unexpected token %q in %q", f, line)
		}
	}
	if i := strings.Index(name, "["); i >= 0 {
		if !strings.HasSuffix(name, "]") {
			return nil, fmt.Errorf("malformed array size in %q", line)
		}
		n, err := strconv.Atoi(name[i+1 : len(name)-1])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad array size in %q", line)
		}
		v.Elems = n
		name = name[:i]
	}
	if !validIdent(name) {
		return nil, fmt.Errorf("bad variable name %q in %q", name, line)
	}
	v.Name = name
	if initPart != "" {
		initPart = strings.TrimPrefix(initPart, "{")
		initPart = strings.TrimSuffix(initPart, "}")
		for _, tok := range strings.Split(initPart, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			x, err := strconv.ParseInt(tok, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad initializer %q", tok)
			}
			v.Init = append(v.Init, x)
		}
		if len(v.Init) > v.Elems {
			return nil, fmt.Errorf("initializer for %q longer than variable", v.Name)
		}
	}
	return v, nil
}

func parseFuncHeader(line string) (*Func, error) {
	// func <ret> <name>(<params>) regs <n> {
	rest := strings.TrimPrefix(line, "func ")
	if !strings.HasSuffix(rest, "{") {
		return nil, fmt.Errorf("function header missing '{' in %q", line)
	}
	rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) != 2 {
		return nil, fmt.Errorf("malformed function header %q", line)
	}
	f := &Func{}
	switch fields[0] {
	case "int":
		f.HasRet = true
	case "void":
	default:
		return nil, fmt.Errorf("bad return type %q", fields[0])
	}
	rest = fields[1]
	open := strings.Index(rest, "(")
	closeP := strings.Index(rest, ")")
	if open < 0 || closeP < open {
		return nil, fmt.Errorf("malformed parameter list in %q", line)
	}
	f.Name = strings.TrimSpace(rest[:open])
	if !validIdent(f.Name) {
		return nil, fmt.Errorf("bad function name %q in %q", f.Name, line)
	}
	params := strings.TrimSpace(rest[open+1 : closeP])
	if params != "" {
		for _, prm := range strings.Split(params, ",") {
			prm = strings.TrimSpace(prm)
			if !validIdent(prm) {
				return nil, fmt.Errorf("bad parameter name %q in %q", prm, line)
			}
			f.Params = append(f.Params, prm)
		}
	}
	tail := strings.Fields(rest[closeP+1:])
	if len(tail) != 2 || tail[0] != "regs" {
		return nil, fmt.Errorf("missing 'regs <n>' in %q", line)
	}
	n, err := strconv.Atoi(tail[1])
	if err != nil || n < len(f.Params) {
		return nil, fmt.Errorf("bad register count in %q", line)
	}
	f.NumRegs = n
	return f, nil
}

func (p *parser) funcBody(m *Module, f *Func, body []string, start int) error {
	// Pre-scan for block labels so branches can forward-reference.
	for _, raw := range body {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if !validIdent(name) {
				return fmt.Errorf("line %d: bad block label %q", start, name)
			}
			if f.BlockByName(name) != nil {
				return fmt.Errorf("line %d: duplicate block %q", start, name)
			}
			b := &Block{Name: name, Func: f, Index: len(f.Blocks)}
			f.Blocks = append(f.Blocks, b)
		}
	}
	var cur *Block
	ckID := 0
	for i, raw := range body {
		lineNo := start + i + 1
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			cur = f.BlockByName(strings.TrimSuffix(line, ":"))
			continue
		}
		if strings.HasPrefix(line, "local ") || strings.HasPrefix(line, "input local ") {
			v, err := parseVarDecl(line, "local")
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			v.Func = f
			if f.LocalByName(v.Name) != nil {
				return fmt.Errorf("line %d: duplicate local %q", lineNo, v.Name)
			}
			f.Locals = append(f.Locals, v)
			continue
		}
		if cur == nil {
			return fmt.Errorf("line %d: instruction before first block label", lineNo)
		}
		if line == "atomic" {
			cur.Atomic = true
			continue
		}
		if strings.HasPrefix(line, "vmalloc ") {
			alloc := map[*Var]bool{}
			for _, name := range strings.Split(strings.TrimPrefix(line, "vmalloc "), ",") {
				v, err := f.resolveVar(strings.TrimSpace(name))
				if err != nil {
					return fmt.Errorf("line %d: %w", lineNo, err)
				}
				alloc[v] = true
			}
			cur.Alloc = alloc
			continue
		}
		in, err := parseInstr(m, f, line, &ckID)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		cur.Instrs = append(cur.Instrs, in)
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("function %q has no blocks", f.Name)
	}
	return nil
}

func stripComment(line string) string {
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func parseReg(tok string) (Reg, error) {
	tok = strings.TrimSuffix(strings.TrimSpace(tok), ",")
	if !strings.HasPrefix(tok, "r") {
		return 0, fmt.Errorf("expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return Reg(n), nil
}

func (f *Func) resolveVar(name string) (*Var, error) {
	if v := f.LocalByName(name); v != nil {
		return v, nil
	}
	if v := f.Module.GlobalByName(name); v != nil {
		return v, nil
	}
	return nil, fmt.Errorf("unknown variable %q", name)
}

func parseInstr(m *Module, f *Func, line string, ckID *int) (Instr, error) {
	// Assignment forms: "rN = ..."
	if eq := strings.Index(line, "="); eq > 0 && strings.HasPrefix(line, "r") {
		dst, err := parseReg(line[:eq])
		if err != nil {
			return nil, err
		}
		return parseRHS(m, f, dst, strings.TrimSpace(line[eq+1:]))
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case "store":
		// store var[, idx], rSrc  — rendered as "store name[rI], rS" or "store name, rS"
		rest := strings.TrimSpace(strings.TrimPrefix(line, "store "))
		comma := strings.LastIndex(rest, ",")
		if comma < 0 {
			return nil, fmt.Errorf("malformed store %q", line)
		}
		src, err := parseReg(rest[comma+1:])
		if err != nil {
			return nil, err
		}
		target := strings.TrimSpace(rest[:comma])
		st := &Store{Src: src}
		name := target
		if i := strings.Index(target, "["); i >= 0 {
			if !strings.HasSuffix(target, "]") {
				return nil, fmt.Errorf("malformed store index in %q", line)
			}
			idx, err := parseReg(target[i+1 : len(target)-1])
			if err != nil {
				return nil, err
			}
			st.Index, st.HasIndex = idx, true
			name = target[:i]
		}
		v, err := f.resolveVar(name)
		if err != nil {
			return nil, err
		}
		st.Var = v
		return st, nil
	case "out":
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed out %q", line)
		}
		r, err := parseReg(fields[1])
		if err != nil {
			return nil, err
		}
		return &Out{Src: r}, nil
	case "br":
		if len(fields) != 4 {
			return nil, fmt.Errorf("malformed br %q", line)
		}
		cond, err := parseReg(fields[1])
		if err != nil {
			return nil, err
		}
		then := f.BlockByName(strings.TrimSuffix(fields[2], ","))
		els := f.BlockByName(fields[3])
		if then == nil || els == nil {
			return nil, fmt.Errorf("br to unknown block in %q", line)
		}
		return &Br{Cond: cond, Then: then, Else: els}, nil
	case "jmp":
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed jmp %q", line)
		}
		t := f.BlockByName(fields[1])
		if t == nil {
			return nil, fmt.Errorf("jmp to unknown block %q", fields[1])
		}
		return &Jmp{Target: t}, nil
	case "ret":
		if len(fields) == 1 {
			return &Ret{}, nil
		}
		r, err := parseReg(fields[1])
		if err != nil {
			return nil, err
		}
		return &Ret{Src: r, HasSrc: true}, nil
	case "call":
		return parseCall(m, f, 0, false, line)
	case "checkpoint":
		return parseCheckpoint(f, fields, ckID)
	case "loopbound":
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed loopbound %q", line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad loopbound %q", fields[1])
		}
		return &LoopBound{Max: n}, nil
	}
	return nil, fmt.Errorf("unknown instruction %q", line)
}

func parseRHS(m *Module, f *Func, dst Reg, rhs string) (Instr, error) {
	fields := strings.Fields(rhs)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty assignment")
	}
	switch fields[0] {
	case "const":
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed constant %q", rhs)
		}
		v, err := strconv.ParseInt(fields[1], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad constant %q", fields[1])
		}
		return &Const{Dst: dst, Val: v}, nil
	case "load":
		target := strings.TrimSpace(strings.TrimPrefix(rhs, "load "))
		ld := &Load{Dst: dst}
		name := target
		if i := strings.Index(target, "["); i >= 0 {
			if !strings.HasSuffix(target, "]") {
				return nil, fmt.Errorf("malformed load index %q", rhs)
			}
			idx, err := parseReg(target[i+1 : len(target)-1])
			if err != nil {
				return nil, err
			}
			ld.Index, ld.HasIndex = idx, true
			name = target[:i]
		}
		v, err := f.resolveVar(name)
		if err != nil {
			return nil, err
		}
		ld.Var = v
		return ld, nil
	case "call":
		return parseCall(m, f, dst, true, rhs)
	default:
		op, ok := OpByName(fields[0])
		if !ok {
			return nil, fmt.Errorf("unknown operation %q", fields[0])
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("operation %q missing operands", rhs)
		}
		a, err := parseReg(fields[1])
		if err != nil {
			return nil, err
		}
		bi := &BinOp{Dst: dst, Op: op, A: a}
		if !op.IsUnary() {
			if len(fields) != 3 {
				return nil, fmt.Errorf("binary op needs two operands: %q", rhs)
			}
			b, err := parseReg(fields[2])
			if err != nil {
				return nil, err
			}
			bi.B = b
		} else if len(fields) != 2 {
			return nil, fmt.Errorf("unary op needs one operand: %q", rhs)
		}
		return bi, nil
	}
}

func parseCall(m *Module, f *Func, dst Reg, hasDst bool, text string) (Instr, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "call "))
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return nil, fmt.Errorf("malformed call %q", text)
	}
	callee := m.FuncByName(strings.TrimSpace(rest[:open]))
	if callee == nil {
		return nil, fmt.Errorf("call to unknown function in %q", text)
	}
	c := &Call{Dst: dst, HasDst: hasDst, Callee: callee}
	args := strings.TrimSpace(rest[open+1 : len(rest)-1])
	if args != "" {
		for _, a := range strings.Split(args, ",") {
			r, err := parseReg(a)
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, r)
		}
	}
	if len(c.Args) != len(callee.Params) {
		return nil, fmt.Errorf("call %s: want %d args, got %d",
			callee.Name, len(callee.Params), len(c.Args))
	}
	if hasDst && !callee.HasRet {
		return nil, fmt.Errorf("call %s: void function used as value", callee.Name)
	}
	return c, nil
}

func parseCheckpoint(f *Func, fields []string, ckID *int) (Instr, error) {
	// checkpoint #N kind [every K] [regs-only] [save-all] [lazy]
	//   [liveregs N] [save a,b] [restore c]
	ck := &Checkpoint{}
	i := 1
	if i < len(fields) && strings.HasPrefix(fields[i], "#") {
		n, err := strconv.Atoi(fields[i][1:])
		if err != nil {
			return nil, fmt.Errorf("bad checkpoint id %q", fields[i])
		}
		ck.ID = n
		i++
	} else {
		ck.ID = *ckID
		*ckID++
	}
	if i >= len(fields) {
		return nil, fmt.Errorf("checkpoint missing kind")
	}
	switch fields[i] {
	case "wait":
		ck.Kind = CkWait
	case "rollback":
		ck.Kind = CkRollback
	case "trigger":
		ck.Kind = CkTrigger
	default:
		return nil, fmt.Errorf("unknown checkpoint kind %q", fields[i])
	}
	i++
	for i < len(fields) {
		switch fields[i] {
		case "every":
			if i+1 >= len(fields) {
				return nil, fmt.Errorf("checkpoint 'every' missing count")
			}
			n, err := strconv.Atoi(fields[i+1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad 'every' count %q", fields[i+1])
			}
			ck.Every = n
			i += 2
		case "regs-only":
			ck.RegsOnly = true
			i++
		case "save-all":
			ck.SaveAll = true
			i++
		case "lazy":
			ck.Lazy = true
			i++
		case "liveregs":
			if i+1 >= len(fields) {
				return nil, fmt.Errorf("checkpoint 'liveregs' missing count")
			}
			n, err := strconv.Atoi(fields[i+1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad 'liveregs' count %q", fields[i+1])
			}
			ck.RefinedRegs = true
			ck.LiveRegs = n
			i += 2
		case "save", "restore":
			if i+1 >= len(fields) {
				return nil, fmt.Errorf("checkpoint %q missing variable list", fields[i])
			}
			var vars []*Var
			for _, name := range strings.Split(fields[i+1], ",") {
				v, err := f.resolveVar(name)
				if err != nil {
					return nil, err
				}
				vars = append(vars, v)
			}
			if fields[i] == "save" {
				ck.Save = vars
			} else {
				ck.Restore = vars
			}
			i += 2
		default:
			return nil, fmt.Errorf("unexpected checkpoint token %q", fields[i])
		}
	}
	return ck, nil
}
