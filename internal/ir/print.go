package ir

import (
	"fmt"
	"strings"
)

// String renders the module in the textual IR format accepted by Parse.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	for _, v := range m.Globals {
		b.WriteString(v.decl("global"))
		b.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		b.WriteByte('\n')
		b.WriteString(f.String())
	}
	return b.String()
}

func (v *Var) decl(kw string) string {
	var b strings.Builder
	if v.Input {
		b.WriteString("input ")
	}
	fmt.Fprintf(&b, "%s %s", kw, v.Name)
	if v.Elems != 1 {
		fmt.Fprintf(&b, "[%d]", v.Elems)
	}
	if v.AddrUsed {
		b.WriteString(" addr")
	}
	if len(v.Init) > 0 {
		b.WriteString(" = {")
		for i, x := range v.Init {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", x)
		}
		b.WriteString("}")
	}
	return b.String()
}

// String renders the function in textual IR form.
func (f *Func) String() string {
	var b strings.Builder
	ret := "void"
	if f.HasRet {
		ret = "int"
	}
	fmt.Fprintf(&b, "func %s %s(%s) regs %d {\n", ret, f.Name,
		strings.Join(f.Params, ", "), f.NumRegs)
	for _, v := range f.Locals {
		fmt.Fprintf(&b, "  %s\n", v.decl("local"))
	}
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		if blk.Atomic {
			b.WriteString("  atomic\n")
		}
		if n := blk.VMBytes(); n > 0 {
			// The block's memory allocation is semantic state and must
			// survive the textual round trip.
			fmt.Fprintf(&b, "  vmalloc %s  ; %d B\n", allocList(blk.Alloc), n)
		}
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func allocList(alloc map[*Var]bool) string {
	var names []string
	for v, in := range alloc {
		if in {
			names = append(names, v.Name)
		}
	}
	sortStrings(names)
	return strings.Join(names, ",")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
