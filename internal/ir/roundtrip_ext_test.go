package ir_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	schematic "schematic/internal/core"
	"schematic/internal/energy"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// TestModuleRoundTripProperty checks print→parse→print stability on random
// compiled programs: the textual format must carry every semantic bit.
func TestModuleRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			return true
		}
		text := m.String()
		re, err := ir.Parse(text)
		if err != nil {
			t.Logf("seed %d: reparse failed: %v", seed, err)
			return false
		}
		if re.String() != text {
			t.Logf("seed %d: round trip not stable", seed)
			return false
		}
		return ir.Verify(re) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTransformedRoundTripProperty extends the round-trip property to
// SCHEMATIC-instrumented modules: checkpoints (with save/restore lists,
// conditional counters, refined register counts) and per-block vmalloc
// directives must all survive the textual format.
func TestTransformedRoundTripProperty(t *testing.T) {
	model := energy.MSP430FR5969()
	count := 0
	for seed := int64(0); seed < 20; seed++ {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed^0x0712)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := trace.Collect(m, trace.Options{Runs: 2, Seed: seed, Model: model, MaxSteps: 30_000_000})
		if err != nil {
			continue
		}
		conf := schematic.Config{
			Model: model, Budget: prof.EBForTBPF(4000), VMSize: 2048, Profile: prof,
			RefineRegisterLiveness: seed%2 == 0,
		}
		if _, err := schematic.Apply(m, conf); err != nil {
			continue
		}
		count++
		text := m.String()
		re, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: reparse of transformed module failed: %v", seed, err)
		}
		if got := re.String(); got != text {
			t.Fatalf("seed %d: transformed round trip unstable", seed)
		}
		// Checkpoint payloads must match field by field.
		want, got := ir.Checkpoints(m), ir.Checkpoints(re)
		if len(want) != len(got) {
			t.Fatalf("seed %d: %d checkpoints reparsed, want %d", seed, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if w.ID != g.ID || w.Kind != g.Kind || w.Every != g.Every ||
				w.SaveAll != g.SaveAll || w.RegsOnly != g.RegsOnly || w.Lazy != g.Lazy ||
				w.RefinedRegs != g.RefinedRegs || w.LiveRegs != g.LiveRegs ||
				len(w.Save) != len(g.Save) || len(w.Restore) != len(g.Restore) {
				t.Fatalf("seed %d: checkpoint %d changed across round trip:\n  %v\n  %v", seed, i, w, g)
			}
		}
	}
	if count == 0 {
		t.Fatal("no transformed module was ever produced")
	}
}
