package ir

import "fmt"

// ReversePostorder returns the function's blocks in reverse postorder from
// the entry. Unreachable blocks are appended at the end in declaration
// order so that analyses still see every block.
func ReversePostorder(f *Func) []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				visit(s)
			}
		}
		post = append(post, b)
	}
	visit(f.Entry())
	out := make([]*Block, 0, len(f.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range f.Blocks {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// Edge identifies a CFG edge: the potential checkpoint locations of the
// SCHEMATIC analysis (paper, III-A).
type Edge struct {
	From, To *Block
}

func (e Edge) String() string { return fmt.Sprintf("%s->%s", e.From.Name, e.To.Name) }

// Edges returns every CFG edge of the function, in block order.
func Edges(f *Func) []Edge {
	var es []Edge
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			es = append(es, Edge{From: b, To: s})
		}
	}
	return es
}

// SplitEdge inserts and returns a new block on the edge from→to. The new
// block inherits from's allocation so that splitting is allocation-neutral.
// Placement passes put Checkpoint instructions inside it.
func SplitEdge(from, to *Block) *Block {
	f := from.Func
	nb := f.NewBlock(fmt.Sprintf("ck.%s.%s", from.Name, to.Name))
	nb.Instrs = []Instr{&Jmp{Target: to}}
	if from.Alloc != nil {
		nb.Alloc = make(map[*Var]bool, len(from.Alloc))
		for v, in := range from.Alloc {
			nb.Alloc[v] = in
		}
	}
	switch t := from.Terminator().(type) {
	case *Br:
		// A conditional may target the same block on both arms; redirect
		// only one arm per call, preferring Then.
		if t.Then == to {
			t.Then = nb
		} else if t.Else == to {
			t.Else = nb
		} else {
			panic(fmt.Sprintf("ir: SplitEdge: %s is not a successor of %s", to.Name, from.Name))
		}
	case *Jmp:
		if t.Target != to {
			panic(fmt.Sprintf("ir: SplitEdge: %s is not a successor of %s", to.Name, from.Name))
		}
		t.Target = nb
	default:
		panic(fmt.Sprintf("ir: SplitEdge: block %s has no branch terminator", from.Name))
	}
	f.Renumber()
	return nb
}

// Clone deep-copies a module. Transformation passes operate on clones so
// that several techniques can be applied independently to one program.
func Clone(m *Module) *Module {
	nm := &Module{Name: m.Name}
	gmap := make(map[*Var]*Var, len(m.Globals))
	for _, v := range m.Globals {
		nv := cloneVar(v)
		gmap[v] = nv
		nm.Globals = append(nm.Globals, nv)
	}
	fmap := make(map[*Func]*Func, len(m.Funcs))
	for _, f := range m.Funcs {
		nf := &Func{
			Name:    f.Name,
			Params:  append([]string(nil), f.Params...),
			HasRet:  f.HasRet,
			NumRegs: f.NumRegs,
			Module:  nm,
		}
		fmap[f] = nf
		nm.Funcs = append(nm.Funcs, nf)
	}
	for _, f := range m.Funcs {
		nf := fmap[f]
		vmap := make(map[*Var]*Var, len(f.Locals)+len(m.Globals))
		for g, ng := range gmap {
			vmap[g] = ng
		}
		for _, v := range f.Locals {
			nv := cloneVar(v)
			nv.Func = nf
			vmap[v] = nv
			nf.Locals = append(nf.Locals, nv)
		}
		bmap := make(map[*Block]*Block, len(f.Blocks))
		for _, b := range f.Blocks {
			nb := &Block{Name: b.Name, Func: nf, Index: b.Index, Atomic: b.Atomic}
			if b.Alloc != nil {
				nb.Alloc = make(map[*Var]bool, len(b.Alloc))
				for v, in := range b.Alloc {
					nb.Alloc[vmap[v]] = in
				}
			}
			bmap[b] = nb
			nf.Blocks = append(nf.Blocks, nb)
		}
		for _, b := range f.Blocks {
			nb := bmap[b]
			for _, in := range b.Instrs {
				nb.Instrs = append(nb.Instrs, cloneInstr(in, vmap, bmap, fmap))
			}
		}
	}
	return nm
}

// CloneInstr copies an instruction within its function, remapping branch
// targets through bmap (absent entries keep the original target).
// Variables, registers, and callees are shared. Used by transformations
// that duplicate blocks, such as loop unrolling.
func CloneInstr(in Instr, bmap map[*Block]*Block) Instr {
	remap := func(b *Block) *Block {
		if nb, ok := bmap[b]; ok {
			return nb
		}
		return b
	}
	switch i := in.(type) {
	case *Br:
		c := *i
		c.Then, c.Else = remap(i.Then), remap(i.Else)
		return &c
	case *Jmp:
		c := *i
		c.Target = remap(i.Target)
		return &c
	case *Call:
		c := *i
		c.Args = append([]Reg(nil), i.Args...)
		return &c
	case *Checkpoint:
		c := *i
		c.Save = append([]*Var(nil), i.Save...)
		c.Restore = append([]*Var(nil), i.Restore...)
		return &c
	case *Const:
		c := *i
		return &c
	case *BinOp:
		c := *i
		return &c
	case *Load:
		c := *i
		return &c
	case *Store:
		c := *i
		return &c
	case *Out:
		c := *i
		return &c
	case *Ret:
		c := *i
		return &c
	case *LoopBound:
		c := *i
		return &c
	default:
		panic(fmt.Sprintf("ir: CloneInstr: unknown instruction %T", in))
	}
}

func cloneVar(v *Var) *Var {
	nv := *v
	nv.Init = append([]int64(nil), v.Init...)
	nv.Func = nil
	return &nv
}

func cloneInstr(in Instr, vmap map[*Var]*Var, bmap map[*Block]*Block, fmap map[*Func]*Func) Instr {
	switch i := in.(type) {
	case *Const:
		c := *i
		return &c
	case *BinOp:
		c := *i
		return &c
	case *Load:
		c := *i
		c.Var = vmap[i.Var]
		return &c
	case *Store:
		c := *i
		c.Var = vmap[i.Var]
		return &c
	case *Call:
		c := *i
		c.Callee = fmap[i.Callee]
		c.Args = append([]Reg(nil), i.Args...)
		return &c
	case *Out:
		c := *i
		return &c
	case *Br:
		c := *i
		c.Then, c.Else = bmap[i.Then], bmap[i.Else]
		return &c
	case *Jmp:
		c := *i
		c.Target = bmap[i.Target]
		return &c
	case *Ret:
		c := *i
		return &c
	case *Checkpoint:
		c := *i
		c.Save = cloneVars(i.Save, vmap)
		c.Restore = cloneVars(i.Restore, vmap)
		return &c
	case *LoopBound:
		c := *i
		return &c
	default:
		panic(fmt.Sprintf("ir: Clone: unknown instruction %T", in))
	}
}

func cloneVars(vs []*Var, vmap map[*Var]*Var) []*Var {
	if vs == nil {
		return nil
	}
	out := make([]*Var, len(vs))
	for i, v := range vs {
		out[i] = vmap[v]
	}
	return out
}

// Checkpoints returns every checkpoint instruction in the module, in
// deterministic (function, block, instruction) order.
func Checkpoints(m *Module) []*Checkpoint {
	var cks []*Checkpoint
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if ck, ok := in.(*Checkpoint); ok {
					cks = append(cks, ck)
				}
			}
		}
	}
	return cks
}

// DataBytes returns the total footprint of the module's variables (globals
// plus every function's statically-allocated locals). This is the quantity
// Table I compares against the VM size for the VM-only techniques.
func DataBytes(m *Module) int {
	n := 0
	for _, v := range m.Globals {
		n += v.SizeBytes()
	}
	for _, f := range m.Funcs {
		for _, v := range f.Locals {
			n += v.SizeBytes()
		}
	}
	return n
}
