package ir

import "fmt"

// Verify checks the structural well-formedness of a module:
//   - every function has an entry block and every block a single terminator,
//   - branch targets belong to the enclosing function,
//   - registers are within the declared range,
//   - variables referenced by instructions belong to the function or module,
//   - "main" exists, takes no parameters, and returns no value,
//   - array indexing is only used on arrays,
//   - call arity matches.
func Verify(m *Module) error {
	main := m.FuncByName("main")
	if main == nil {
		return fmt.Errorf("ir: module %s has no main function", m.Name)
	}
	if len(main.Params) != 0 || main.HasRet {
		return fmt.Errorf("ir: main must be 'func void main()'")
	}
	seenGlobal := map[string]bool{}
	for _, v := range m.Globals {
		if seenGlobal[v.Name] {
			return fmt.Errorf("ir: duplicate global %q", v.Name)
		}
		seenGlobal[v.Name] = true
		if v.Elems < 1 {
			return fmt.Errorf("ir: global %q has %d elements", v.Name, v.Elems)
		}
		if len(v.Init) > v.Elems {
			return fmt.Errorf("ir: global %q initializer too long", v.Name)
		}
	}
	for _, f := range m.Funcs {
		if err := verifyFunc(m, f); err != nil {
			return err
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Func) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("ir: func %s: %s", f.Name, fmt.Sprintf(format, args...))
	}
	if len(f.Blocks) == 0 {
		return errf("no blocks")
	}
	if f.NumRegs < len(f.Params) {
		return errf("NumRegs %d < %d params", f.NumRegs, len(f.Params))
	}
	blocks := map[*Block]bool{}
	for _, b := range f.Blocks {
		blocks[b] = true
	}
	locals := map[string]bool{}
	for _, v := range f.Locals {
		if locals[v.Name] {
			return errf("duplicate local %q", v.Name)
		}
		locals[v.Name] = true
		if v.Elems < 1 {
			return errf("local %q has %d elements", v.Name, v.Elems)
		}
	}
	checkReg := func(r Reg) error {
		if int(r) < 0 || int(r) >= f.NumRegs {
			return errf("register %v out of range [0,%d)", r, f.NumRegs)
		}
		return nil
	}
	checkVar := func(v *Var) error {
		if v == nil {
			return errf("nil variable reference")
		}
		if v.Global {
			if m.GlobalByName(v.Name) != v {
				return errf("variable %q not a global of this module", v.Name)
			}
			return nil
		}
		if v.Func != f {
			return errf("local %q belongs to another function", v.Name)
		}
		return nil
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return errf("block %s is empty", b.Name)
		}
		for i, in := range b.Instrs {
			last := i == len(b.Instrs)-1
			if in.isTerminator() != last {
				if last {
					return errf("block %s does not end in a terminator", b.Name)
				}
				return errf("block %s: terminator %q not at end", b.Name, in)
			}
			for _, r := range Uses(in) {
				if err := checkReg(r); err != nil {
					return err
				}
			}
			if d, ok := Def(in); ok {
				if err := checkReg(d); err != nil {
					return err
				}
			}
			switch x := in.(type) {
			case *Load:
				if err := checkVar(x.Var); err != nil {
					return err
				}
				if x.HasIndex && x.Var.Elems == 1 {
					return errf("block %s: indexed load of scalar %q", b.Name, x.Var.Name)
				}
				if !x.HasIndex && x.Var.Elems != 1 {
					return errf("block %s: unindexed load of array %q", b.Name, x.Var.Name)
				}
			case *Store:
				if err := checkVar(x.Var); err != nil {
					return err
				}
				if x.HasIndex && x.Var.Elems == 1 {
					return errf("block %s: indexed store to scalar %q", b.Name, x.Var.Name)
				}
				if !x.HasIndex && x.Var.Elems != 1 {
					return errf("block %s: unindexed store to array %q", b.Name, x.Var.Name)
				}
			case *Call:
				if x.Callee == nil || m.FuncByName(x.Callee.Name) != x.Callee {
					return errf("block %s: call to foreign function", b.Name)
				}
				if len(x.Args) != len(x.Callee.Params) {
					return errf("block %s: call %s arity mismatch", b.Name, x.Callee.Name)
				}
				if x.HasDst && !x.Callee.HasRet {
					return errf("block %s: value use of void call %s", b.Name, x.Callee.Name)
				}
			case *Br:
				if !blocks[x.Then] || !blocks[x.Else] {
					return errf("block %s: branch to foreign block", b.Name)
				}
			case *Jmp:
				if !blocks[x.Target] {
					return errf("block %s: jump to foreign block", b.Name)
				}
			case *Ret:
				if x.HasSrc != f.HasRet {
					return errf("block %s: return value mismatch", b.Name)
				}
			case *Checkpoint:
				for _, v := range append(append([]*Var{}, x.Save...), x.Restore...) {
					if err := checkVar(v); err != nil {
						return err
					}
				}
				if x.Every < 0 {
					return errf("block %s: negative checkpoint period", b.Name)
				}
			}
		}
		if b.Atomic {
			for _, in := range b.Instrs {
				if _, isCk := in.(*Checkpoint); isCk {
					return errf("block %s: checkpoint inside an atomic section", b.Name)
				}
			}
		}
		// Allocation sanity: only non-pointer variables may live in VM.
		for v, in := range b.Alloc {
			if in && v.AddrUsed {
				return errf("block %s: pointer-accessed %q allocated to VM", b.Name, v.Name)
			}
		}
	}
	if rec := findRecursion(m); rec != "" {
		return fmt.Errorf("ir: recursion involving %q (unsupported, paper III-B1)", rec)
	}
	return nil
}

// findRecursion returns the name of a function on a call-graph cycle, or "".
func findRecursion(m *Module) string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Func]int{}
	var cyclic *Func
	var visit func(f *Func) bool
	visit = func(f *Func) bool {
		color[f] = gray
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				c, ok := in.(*Call)
				if !ok {
					continue
				}
				switch color[c.Callee] {
				case gray:
					cyclic = c.Callee
					return true
				case white:
					if visit(c.Callee) {
						return true
					}
				}
			}
		}
		color[f] = black
		return false
	}
	for _, f := range m.Funcs {
		if color[f] == white && visit(f) {
			return cyclic.Name
		}
	}
	return ""
}
