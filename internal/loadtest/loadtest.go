// Package loadtest is a deterministic load generator for schematicd.
// It fires a configurable mix of compile/emulate/validate/grid requests
// at a running daemon — closed-loop (a fixed worker count issuing
// back-to-back requests) or open-loop (a fixed aggregate arrival rate)
// — and reports latency percentiles, throughput, per-kind breakdowns,
// and the cache/store hit-rate deltas scraped from /metrics.
//
// The request sequence is a pure function of the request index, so two
// runs with the same options hit the same digest population: a small
// Seeds value concentrates traffic on few digests (cache-heavy), a
// large one spreads it out (compute-heavy).
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"schematic/internal/server"
)

// Mix weights the request kinds. A zero Mix defaults to DefaultMix.
type Mix struct {
	Compile  int `json:"compile"`
	Emulate  int `json:"emulate"`
	Validate int `json:"validate"`
	Grid     int `json:"grid"`
}

// DefaultMix is mostly emulation with a sprinkle of the other
// endpoints — the shape of a paper-reproduction workload.
var DefaultMix = Mix{Compile: 2, Emulate: 12, Validate: 1, Grid: 1}

func (m Mix) total() int { return m.Compile + m.Emulate + m.Validate + m.Grid }

// Options configure one load run.
type Options struct {
	BaseURL     string        // daemon base URL, e.g. http://127.0.0.1:8472
	Requests    int           // total requests; 0 = run until Duration elapses
	Concurrency int           // concurrent client workers (default 8)
	RatePerSec  float64       // >0: open loop at this aggregate arrival rate
	Duration    time.Duration // time bound; required when Requests == 0
	Seeds       int           // distinct workload seeds per kind (default 3)
	Mix         Mix           // request-kind weights (zero = DefaultMix)
	Client      *http.Client  // HTTP client (default http.DefaultClient)
}

// KindStats is the per-endpoint slice of the report.
type KindStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// Report is the outcome of one load run. Counter fields named *Delta
// are differences between the daemon's /metrics before and after the
// run, so they isolate this run's traffic even on a warm daemon.
type Report struct {
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`   // transport failures and 5xx
	Rejected      int     `json:"rejected"` // 429 admission rejections
	ElapsedMS     float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`

	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`

	ByKind map[string]*KindStats `json:"by_kind"`

	CacheHitsDelta      int64   `json:"cache_hits_delta"`
	CacheMissesDelta    int64   `json:"cache_misses_delta"`
	CacheCoalescedDelta int64   `json:"cache_coalesced_delta"`
	StoreHitsDelta      int64   `json:"store_hits_delta"`
	StorePutsDelta      int64   `json:"store_puts_delta"`
	GridCellsDelta      int64   `json:"grid_cells_delta"`
	CacheHitRate        float64 `json:"cache_hit_rate"` // (hits+coalesced) / lookups this run
}

// sample is one finished request.
type sample struct {
	kind string
	ms   float64
	code int
	err  bool
}

// Run executes the load described by opts and assembles the report.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadtest: BaseURL is required")
	}
	if opts.Requests <= 0 && opts.Duration <= 0 {
		return nil, fmt.Errorf("loadtest: one of Requests or Duration is required")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Seeds <= 0 {
		opts.Seeds = 3
	}
	if opts.Mix.total() == 0 {
		opts.Mix = DefaultMix
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	deck := buildDeck(opts.Mix)

	before, err := scrape(ctx, opts.Client, opts.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadtest: pre-run metrics scrape: %w", err)
	}

	var (
		mu      sync.Mutex
		samples []sample
		next    atomic.Int64
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	fire := func(i int) {
		kind, path, body := requestFor(i, deck, opts.Seeds)
		t0 := time.Now()
		code, err := post(ctx, opts.Client, opts.BaseURL+path, body)
		record(sample{
			kind: kind,
			ms:   float64(time.Since(t0)) / float64(time.Millisecond),
			code: code,
			err:  err != nil || code >= 500,
		})
	}

	runCtx := ctx
	var cancel context.CancelFunc
	if opts.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	start := time.Now()
	var wg sync.WaitGroup
	if opts.RatePerSec > 0 {
		// Open loop: a ticker releases work at the target aggregate rate;
		// workers drain the queue so a slow server surfaces as queueing
		// delay in the latencies rather than as a lower offered rate.
		jobs := make(chan int, opts.Concurrency*2)
		for w := 0; w < opts.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					fire(i)
				}
			}()
		}
		interval := time.Duration(float64(time.Second) / opts.RatePerSec)
		if interval <= 0 {
			interval = time.Microsecond
		}
		tick := time.NewTicker(interval)
	pump:
		for {
			select {
			case <-runCtx.Done():
				break pump
			case <-tick.C:
				i := int(next.Add(1) - 1)
				if opts.Requests > 0 && i >= opts.Requests {
					break pump
				}
				select {
				case jobs <- i:
				case <-runCtx.Done():
					break pump
				}
			}
		}
		tick.Stop()
		close(jobs)
	} else {
		// Closed loop: each worker issues back-to-back requests.
		for w := 0; w < opts.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					i := int(next.Add(1) - 1)
					if opts.Requests > 0 && i >= opts.Requests {
						return
					}
					fire(i)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrape(ctx, opts.Client, opts.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadtest: post-run metrics scrape: %w", err)
	}
	return assemble(samples, elapsed, before, after), nil
}

// buildDeck expands the mix weights into a repeating kind sequence;
// request i draws deck[i % len(deck)].
func buildDeck(m Mix) []string {
	var deck []string
	for i := 0; i < m.Compile; i++ {
		deck = append(deck, "compile")
	}
	for i := 0; i < m.Emulate; i++ {
		deck = append(deck, "emulate")
	}
	for i := 0; i < m.Validate; i++ {
		deck = append(deck, "validate")
	}
	for i := 0; i < m.Grid; i++ {
		deck = append(deck, "grid")
	}
	return deck
}

// Cheap, bundled workloads: the generator's job is to exercise the
// service plumbing, not to burn CPU in the emulator.
var (
	ltBenches    = []string{"crc", "randmath"}
	ltTechniques = []string{"schematic", "ratchet", "mementos"}
)

// requestFor derives request i's kind, path, and JSON body. Pure in i,
// so identical runs offer identical digest populations.
func requestFor(i int, deck []string, seeds int) (kind, path string, body []byte) {
	kind = deck[i%len(deck)]
	n := i / len(deck) // per-kind sequence number
	if kind == "grid" {
		greq := server.GridRequest{
			Benches:    []string{ltBenches[n%len(ltBenches)]},
			Techniques: []string{"schematic", "ratchet"},
			TBPFs:      []int64{500},
			Options:    server.Options{ProfileRuns: 2, Seed: int64(1 + n%seeds)},
		}
		body, _ = json.Marshal(greq)
		return kind, "/v1/grid", body
	}
	req := server.Request{
		Bench: ltBenches[n%len(ltBenches)],
		Options: server.Options{
			Technique:   ltTechniques[n%len(ltTechniques)],
			TBPF:        500,
			ProfileRuns: 2,
			Seed:        int64(1 + n%seeds),
		},
	}
	body, _ = json.Marshal(req)
	return kind, "/v1/" + kind, body
}

// post issues one JSON request, draining and discarding the body so
// connections are reused.
func post(ctx context.Context, c *http.Client, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// counters are the plain (unlabeled) series the hit-rate deltas need.
type counters struct {
	cacheHits, cacheMisses, cacheCoalesced int64
	storeHits, storePuts                   int64
	gridCells                              int64
}

// scrape pulls /metrics and extracts the counters.
func scrape(ctx context.Context, c *http.Client, base string) (counters, error) {
	var out counters
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return out, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			continue
		}
		v, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		switch f[0] {
		case "schematicd_cache_hits_total":
			out.cacheHits = v
		case "schematicd_cache_misses_total":
			out.cacheMisses = v
		case "schematicd_cache_coalesced_total":
			out.cacheCoalesced = v
		case "schematicd_store_hits_total":
			out.storeHits = v
		case "schematicd_store_puts_total":
			out.storePuts = v
		default:
			if strings.HasPrefix(f[0], "schematicd_grid_cells_total{") {
				out.gridCells += v
			}
		}
	}
	return out, nil
}

// assemble folds the samples and the metric deltas into the report.
func assemble(samples []sample, elapsed time.Duration, before, after counters) *Report {
	r := &Report{
		Requests:  len(samples),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		ByKind:    make(map[string]*KindStats),

		CacheHitsDelta:      after.cacheHits - before.cacheHits,
		CacheMissesDelta:    after.cacheMisses - before.cacheMisses,
		CacheCoalescedDelta: after.cacheCoalesced - before.cacheCoalesced,
		StoreHitsDelta:      after.storeHits - before.storeHits,
		StorePutsDelta:      after.storePuts - before.storePuts,
		GridCellsDelta:      after.gridCells - before.gridCells,
	}
	if elapsed > 0 {
		r.ThroughputRPS = float64(len(samples)) / elapsed.Seconds()
	}
	if looks := r.CacheHitsDelta + r.CacheCoalescedDelta + r.CacheMissesDelta; looks > 0 {
		r.CacheHitRate = float64(r.CacheHitsDelta+r.CacheCoalescedDelta) / float64(looks)
	}

	all := make([]float64, 0, len(samples))
	perKind := make(map[string][]float64)
	var sum float64
	for _, s := range samples {
		switch {
		case s.err:
			r.Errors++
		case s.code == http.StatusTooManyRequests:
			r.Rejected++
		}
		all = append(all, s.ms)
		sum += s.ms
		perKind[s.kind] = append(perKind[s.kind], s.ms)
		ks := r.ByKind[s.kind]
		if ks == nil {
			ks = &KindStats{}
			r.ByKind[s.kind] = ks
		}
		ks.Requests++
		if s.err {
			ks.Errors++
		}
	}
	sort.Float64s(all)
	r.P50MS = percentile(all, 0.50)
	r.P90MS = percentile(all, 0.90)
	r.P99MS = percentile(all, 0.99)
	if n := len(all); n > 0 {
		r.MaxMS = all[n-1]
		r.MeanMS = sum / float64(n)
	}
	for kind, ds := range perKind {
		sort.Float64s(ds)
		r.ByKind[kind].P50MS = percentile(ds, 0.50)
		r.ByKind[kind].P99MS = percentile(ds, 0.99)
	}
	return r
}

// percentile reads the q-quantile from sorted data (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
