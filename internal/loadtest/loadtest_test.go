package loadtest

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"schematic/internal/server"
	"schematic/internal/store"
)

// newDaemon stands up an in-process schematicd (handler + disk store)
// and returns its base URL.
func newDaemon(t *testing.T) (*server.Server, string) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Workers: 4, Store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

// TestClosedLoop drives a fixed request count through the full mix and
// checks the report's internal consistency: every request accounted
// for, zero failures, ordered percentiles, and a warm cache by the end
// (the deterministic sequence repeats digests, so hits must show up in
// the scraped deltas).
func TestClosedLoop(t *testing.T) {
	_, url := newDaemon(t)
	rep, err := Run(context.Background(), Options{
		BaseURL:     url,
		Requests:    48,
		Concurrency: 4,
		Seeds:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 48 {
		t.Fatalf("report counts %d requests, want 48", rep.Requests)
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("errors=%d rejected=%d, want 0/0", rep.Errors, rep.Rejected)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput %v, want > 0", rep.ThroughputRPS)
	}
	if !(rep.P50MS <= rep.P90MS && rep.P90MS <= rep.P99MS && rep.P99MS <= rep.MaxMS) {
		t.Fatalf("percentiles out of order: p50=%v p90=%v p99=%v max=%v",
			rep.P50MS, rep.P90MS, rep.P99MS, rep.MaxMS)
	}
	total := 0
	for kind, ks := range rep.ByKind {
		if ks.Requests == 0 {
			t.Errorf("kind %s reported with zero requests", kind)
		}
		if ks.P50MS > ks.P99MS {
			t.Errorf("kind %s: p50 %v > p99 %v", kind, ks.P50MS, ks.P99MS)
		}
		total += ks.Requests
	}
	if total != rep.Requests {
		t.Fatalf("per-kind counts sum to %d, want %d", total, rep.Requests)
	}
	for _, kind := range []string{"compile", "emulate", "validate", "grid"} {
		if rep.ByKind[kind] == nil {
			t.Errorf("default mix issued no %s requests", kind)
		}
	}
	// 48 requests over ~6 distinct emulate digests: the cache must have
	// answered some of them, and the write-through tier must have filled.
	if rep.CacheHitsDelta+rep.CacheCoalescedDelta == 0 {
		t.Error("no cache hits despite a repeating request sequence")
	}
	if rep.CacheHitRate <= 0 || rep.CacheHitRate > 1 {
		t.Errorf("cache hit rate %v out of range", rep.CacheHitRate)
	}
	if rep.StorePutsDelta == 0 {
		t.Error("store saw no write-through puts")
	}
	if rep.GridCellsDelta == 0 {
		t.Error("grid requests resolved no cells")
	}
}

// TestOpenLoop bounds a rate-paced run by duration: it must stop on
// time and still produce a consistent report.
func TestOpenLoop(t *testing.T) {
	_, url := newDaemon(t)
	start := time.Now()
	rep, err := Run(context.Background(), Options{
		BaseURL:     url,
		Concurrency: 4,
		RatePerSec:  200,
		Duration:    300 * time.Millisecond,
		Mix:         Mix{Emulate: 1},
		Seeds:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop issued no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("open loop saw %d errors", rep.Errors)
	}
	// Generously above Duration: the bound includes in-flight drain.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("open loop ran %v, want ~300ms", elapsed)
	}
	if rep.ByKind["emulate"] == nil || rep.ByKind["emulate"].Requests != rep.Requests {
		t.Fatalf("single-kind mix leaked other kinds: %+v", rep.ByKind)
	}
}

// TestRequestSequenceDeterministic: the generator is a pure function of
// the request index — the property the cache-hit assertions and
// repeatable benchmarks rest on.
func TestRequestSequenceDeterministic(t *testing.T) {
	deck := buildDeck(DefaultMix)
	for i := 0; i < 64; i++ {
		k1, p1, b1 := requestFor(i, deck, 3)
		k2, p2, b2 := requestFor(i, deck, 3)
		if k1 != k2 || p1 != p2 || !bytes.Equal(b1, b2) {
			t.Fatalf("request %d not deterministic", i)
		}
	}
	// The deck respects the weights exactly over one cycle.
	counts := map[string]int{}
	for _, k := range deck {
		counts[k]++
	}
	if counts["emulate"] != DefaultMix.Emulate || counts["grid"] != DefaultMix.Grid {
		t.Fatalf("deck %v does not match DefaultMix %+v", counts, DefaultMix)
	}
}

// TestOptionValidation: unusable configurations fail fast instead of
// hammering nothing.
func TestOptionValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := Run(context.Background(), Options{BaseURL: "http://x"}); err == nil {
		t.Error("missing Requests and Duration accepted")
	}
}
