package minic

// File is a parsed MiniC compilation unit.
type File struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Pos   Pos
	Name  string
	Elems int // 1 for scalars
	Input bool
	Init  []int64
}

// Param is a function parameter (always int).
type Param struct {
	Pos  Pos
	Name string
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	HasRet bool // func int vs func void
	Locals []*VarDecl
	Body   []Stmt
}

// Stmt is a statement node.
type Stmt interface{ stmtPos() Pos }

// AssignStmt is "target = value;" or "target[idx] = value;".
type AssignStmt struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
}

// IfStmt is an if with an optional else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
}

// WhileStmt is "while (cond) @max(N) { body }".
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Max  int // 0 when unannotated
	Body []Stmt
}

// ForStmt is "for (init; cond; post) @max(N) { body }". Init and Post are
// assignments and may be nil.
type ForStmt struct {
	Pos  Pos
	Init *AssignStmt
	Cond Expr
	Post *AssignStmt
	Max  int
	Body []Stmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt advances the innermost loop.
type ContinueStmt struct{ Pos Pos }

// PrintStmt emits a value on the program's output stream.
type PrintStmt struct {
	Pos   Pos
	Value Expr
}

// AtomicStmt is "atomic { body }": checkpoint placement inside the body
// is forbidden (paper §VI, for code driving peripherals).
type AtomicStmt struct {
	Pos  Pos
	Body []Stmt
}

// ExprStmt is a bare expression statement (function call for effect).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (s *AssignStmt) stmtPos() Pos   { return s.Pos }
func (s *IfStmt) stmtPos() Pos       { return s.Pos }
func (s *WhileStmt) stmtPos() Pos    { return s.Pos }
func (s *ForStmt) stmtPos() Pos      { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos   { return s.Pos }
func (s *BreakStmt) stmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) stmtPos() Pos { return s.Pos }
func (s *PrintStmt) stmtPos() Pos    { return s.Pos }
func (s *ExprStmt) stmtPos() Pos     { return s.Pos }
func (s *AtomicStmt) stmtPos() Pos   { return s.Pos }

// Expr is an expression node.
type Expr interface{ exprPos() Pos }

// NumLit is an integer literal.
type NumLit struct {
	Pos Pos
	Val int64
}

// VarRef reads a scalar variable.
type VarRef struct {
	Pos  Pos
	Name string
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// CallExpr calls a function.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// UnaryExpr is -x, !x or ~x.
type UnaryExpr struct {
	Pos Pos
	Op  string
	X   Expr
}

// BinaryExpr is a binary operation. && and || evaluate both operands.
type BinaryExpr struct {
	Pos  Pos
	Op   string
	L, R Expr
}

func (e *NumLit) exprPos() Pos     { return e.Pos }
func (e *VarRef) exprPos() Pos     { return e.Pos }
func (e *IndexExpr) exprPos() Pos  { return e.Pos }
func (e *CallExpr) exprPos() Pos   { return e.Pos }
func (e *UnaryExpr) exprPos() Pos  { return e.Pos }
func (e *BinaryExpr) exprPos() Pos { return e.Pos }
