package minic

import (
	"errors"
	"fmt"

	"schematic/internal/ir"
)

// This file is the second executable semantics of MiniC: a reference
// interpreter that walks the checked AST directly, sharing nothing with
// the lowering pipeline except ir.EvalOp, the single source of arithmetic
// truth. Lowering, the optimizer, and the emulator form one code path;
// the interpreter forms another. When the two disagree on a program's
// observable output, one of them miscompiles — that disagreement is what
// internal/transval hunts for.
//
// The semantics mirror the platform model the emulator implements:
//
//   - Locals are static storage: one zero-initialized slot per function,
//     persisting across calls (the emulator's initNVM loads them once at
//     boot, next to the globals).
//   - Parameters live in per-call registers; assigning to one never
//     escapes the call.
//   - Input-annotated variables take their initializer first, then the
//     supplied input override.
//   - && and || evaluate both operands, left then right (non-short-circuit).
//   - Division or remainder by zero and out-of-range array indices are
//     runtime traps that abort the whole run with an error.
//   - print appends to the output stream, the program's sole observable.

// ErrInterpSteps reports that the interpreter's step budget ran out before
// the program finished; callers treating the interpreter as an oracle
// should classify such runs as non-terminating rather than as divergence.
var ErrInterpSteps = errors.New("minic: interpreter step budget exhausted")

// InterpResult is the observable outcome of an interpreted run.
type InterpResult struct {
	Output []int64
	Steps  int64 // AST nodes evaluated (not comparable to emulator steps)
}

// Interpret executes a parsed and checked File and returns its output.
// inputs overrides input-annotated variables by name, exactly like
// emulator.Config.Inputs. maxSteps bounds the number of AST node
// evaluations (0 selects 50M); exceeding it returns ErrInterpSteps.
func Interpret(file *File, inputs map[string][]int64, maxSteps int64) (*InterpResult, error) {
	if maxSteps == 0 {
		maxSteps = 50_000_000
	}
	it := &interp{
		funcs:   map[string]*FuncDecl{},
		statics: map[*FuncDecl]map[string][]int64{},
		globals: map[string][]int64{},
		max:     maxSteps,
	}
	for _, fd := range file.Funcs {
		it.funcs[fd.Name] = fd
	}
	boot := func(d *VarDecl, store map[string][]int64) {
		data := make([]int64, d.Elems)
		copy(data, d.Init)
		if in, ok := inputs[d.Name]; ok && d.Input {
			copy(data, in)
		}
		store[d.Name] = data
	}
	for _, g := range file.Globals {
		boot(g, it.globals)
	}
	for _, fd := range file.Funcs {
		store := map[string][]int64{}
		for _, l := range fd.Locals {
			boot(l, store)
		}
		it.statics[fd] = store
	}
	mainFn, ok := it.funcs["main"]
	if !ok {
		return nil, fmt.Errorf("minic: interp: no main function")
	}
	if _, err := it.call(mainFn, nil, 0); err != nil {
		return nil, err
	}
	return &InterpResult{Output: it.out, Steps: it.steps}, nil
}

// control is the non-sequential outcome of a statement.
type control int

const (
	ctrlNext control = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type interp struct {
	funcs   map[string]*FuncDecl
	globals map[string][]int64
	// statics holds each function's local storage: allocated once, zeroed
	// at boot, shared by every call (MiniC locals are static variables).
	statics map[*FuncDecl]map[string][]int64
	out     []int64
	steps   int64
	max     int64
}

// frame is one function activation: the register file of its parameters
// plus the pending return value.
type frame struct {
	fd     *FuncDecl
	params map[string]int64
	ret    int64
}

// tick charges one step against the budget.
func (it *interp) tick() error {
	it.steps++
	if it.steps > it.max {
		return ErrInterpSteps
	}
	return nil
}

func (it *interp) call(fd *FuncDecl, args []int64, depth int) (int64, error) {
	// ir.Verify rejects recursion, so on validated programs the call depth
	// is bounded by the function count; the guard catches unchecked input.
	if depth > len(it.funcs) {
		return 0, fmt.Errorf("minic: interp: call depth %d exceeds function count (recursion?)", depth)
	}
	fr := &frame{fd: fd, params: map[string]int64{}}
	for i, prm := range fd.Params {
		fr.params[prm.Name] = args[i]
	}
	ctrl, err := it.stmts(fd.Body, fr, depth)
	if err != nil {
		return 0, err
	}
	_ = ctrl // ctrlReturn or fall-off-the-end (void); sema rules out the rest
	return fr.ret, nil
}

func (it *interp) stmts(list []Stmt, fr *frame, depth int) (control, error) {
	for _, s := range list {
		ctrl, err := it.stmt(s, fr, depth)
		if err != nil {
			return ctrlNext, err
		}
		if ctrl != ctrlNext {
			return ctrl, nil
		}
	}
	return ctrlNext, nil
}

func (it *interp) stmt(s Stmt, fr *frame, depth int) (control, error) {
	if err := it.tick(); err != nil {
		return ctrlNext, err
	}
	switch st := s.(type) {
	case *AssignStmt:
		return ctrlNext, it.assign(st, fr, depth)
	case *PrintStmt:
		v, err := it.eval(st.Value, fr, depth)
		if err != nil {
			return ctrlNext, err
		}
		it.out = append(it.out, v)
		return ctrlNext, nil
	case *ExprStmt:
		_, err := it.eval(st.X, fr, depth)
		return ctrlNext, err
	case *ReturnStmt:
		if st.Value != nil {
			v, err := it.eval(st.Value, fr, depth)
			if err != nil {
				return ctrlNext, err
			}
			fr.ret = v
		}
		return ctrlReturn, nil
	case *BreakStmt:
		return ctrlBreak, nil
	case *ContinueStmt:
		return ctrlContinue, nil
	case *IfStmt:
		c, err := it.eval(st.Cond, fr, depth)
		if err != nil {
			return ctrlNext, err
		}
		if c != 0 {
			return it.stmts(st.Then, fr, depth)
		}
		return it.stmts(st.Else, fr, depth)
	case *WhileStmt:
		for {
			c, err := it.eval(st.Cond, fr, depth)
			if err != nil {
				return ctrlNext, err
			}
			if c == 0 {
				return ctrlNext, nil
			}
			ctrl, err := it.stmts(st.Body, fr, depth)
			if err != nil {
				return ctrlNext, err
			}
			switch ctrl {
			case ctrlBreak:
				return ctrlNext, nil
			case ctrlReturn:
				return ctrlReturn, nil
			}
			if err := it.tick(); err != nil {
				return ctrlNext, err
			}
		}
	case *ForStmt:
		if st.Init != nil {
			if err := it.assign(st.Init, fr, depth); err != nil {
				return ctrlNext, err
			}
		}
		for {
			c, err := it.eval(st.Cond, fr, depth)
			if err != nil {
				return ctrlNext, err
			}
			if c == 0 {
				return ctrlNext, nil
			}
			ctrl, err := it.stmts(st.Body, fr, depth)
			if err != nil {
				return ctrlNext, err
			}
			if ctrl == ctrlBreak {
				return ctrlNext, nil
			}
			if ctrl == ctrlReturn {
				return ctrlReturn, nil
			}
			// continue lands on the latch: the post-assignment still runs.
			if st.Post != nil {
				if err := it.assign(st.Post, fr, depth); err != nil {
					return ctrlNext, err
				}
			}
			if err := it.tick(); err != nil {
				return ctrlNext, err
			}
		}
	case *AtomicStmt:
		// Atomicity constrains checkpoint placement, not sequential
		// semantics; break/continue/return pass through the boundary.
		return it.stmts(st.Body, fr, depth)
	default:
		return ctrlNext, fmt.Errorf("minic: interp: unknown statement %T", s)
	}
}

// assign mirrors lowering's evaluation order: the value first, then the
// index — a trap in the value expression fires before an out-of-range
// index is even computed.
func (it *interp) assign(st *AssignStmt, fr *frame, depth int) error {
	val, err := it.eval(st.Value, fr, depth)
	if err != nil {
		return err
	}
	if _, isParam := fr.params[st.Name]; isParam {
		fr.params[st.Name] = val
		return nil
	}
	store := it.storage(st.Name, fr)
	if st.Index == nil {
		store[0] = val
		return nil
	}
	idx, err := it.eval(st.Index, fr, depth)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= int64(len(store)) {
		return fmt.Errorf("minic: interp: index %d out of range for %s[%d]", idx, st.Name, len(store))
	}
	store[idx] = val
	return nil
}

// storage resolves a non-parameter variable: the function's static locals
// shadow globals, matching sema's lookupVar.
func (it *interp) storage(name string, fr *frame) []int64 {
	if s, ok := it.statics[fr.fd][name]; ok {
		return s
	}
	return it.globals[name]
}

func (it *interp) eval(e Expr, fr *frame, depth int) (int64, error) {
	if err := it.tick(); err != nil {
		return 0, err
	}
	switch x := e.(type) {
	case *NumLit:
		return x.Val, nil
	case *VarRef:
		if v, isParam := fr.params[x.Name]; isParam {
			return v, nil
		}
		return it.storage(x.Name, fr)[0], nil
	case *IndexExpr:
		idx, err := it.eval(x.Index, fr, depth)
		if err != nil {
			return 0, err
		}
		store := it.storage(x.Name, fr)
		if idx < 0 || idx >= int64(len(store)) {
			return 0, fmt.Errorf("minic: interp: index %d out of range for %s[%d]", idx, x.Name, len(store))
		}
		return store[idx], nil
	case *CallExpr:
		args := make([]int64, len(x.Args))
		for i, a := range x.Args {
			v, err := it.eval(a, fr, depth)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return it.call(it.funcs[x.Name], args, depth+1)
	case *UnaryExpr:
		v, err := it.eval(x.X, fr, depth)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return ir.EvalOp(ir.OpNeg, v, 0)
		case "!":
			return ir.EvalOp(ir.OpNot, v, 0)
		case "~":
			return ir.EvalOp(ir.OpXor, v, -1)
		default:
			return 0, fmt.Errorf("minic: interp: unknown unary %q", x.Op)
		}
	case *BinaryExpr:
		l, err := it.eval(x.L, fr, depth)
		if err != nil {
			return 0, err
		}
		r, err := it.eval(x.R, fr, depth)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "&&":
			return boolVal(l != 0 && r != 0), nil
		case "||":
			return boolVal(l != 0 || r != 0), nil
		}
		op, ok := binOps[x.Op]
		if !ok {
			return 0, fmt.Errorf("minic: interp: unknown operator %q", x.Op)
		}
		v, err := ir.EvalOp(op, l, r)
		if err != nil {
			return 0, fmt.Errorf("minic: interp: %w", err)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("minic: interp: unknown expression %T", e)
	}
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
