package minic_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"schematic/internal/bench"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/fuzzgen"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// diffInterp runs one source under both executable semantics — the AST
// reference interpreter and the IR emulator on the freshly lowered module
// — and requires identical observables: the same trap behaviour, or the
// same output stream.
func diffInterp(t *testing.T, name, src string, inputSeed int64) {
	t.Helper()
	file, err := minic.ParseFile(name, src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	if err := minic.Check(file); err != nil {
		t.Fatalf("%s: check: %v", name, err)
	}
	m, err := minic.Compile(name, src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	inputs := trace.RandomInputs(m, rand.New(rand.NewSource(inputSeed)))

	const budget = 50_000_000
	want, ierr := minic.Interpret(file, inputs, budget)
	if errors.Is(ierr, minic.ErrInterpSteps) {
		t.Fatalf("%s: interpreter budget exhausted", name)
	}
	res, rerr := emulator.Run(m, emulator.Config{
		Model: energy.MSP430FR5969(), Inputs: inputs, MaxSteps: budget,
	})
	if ierr != nil {
		if rerr == nil {
			t.Fatalf("%s: interpreter trapped (%v) but emulator completed with %v", name, ierr, res.Output)
		}
		return // both trapped
	}
	if rerr != nil {
		t.Fatalf("%s: emulator trapped (%v) but interpreter completed with %v", name, rerr, want.Output)
	}
	if res.Verdict != emulator.Completed {
		t.Fatalf("%s: emulator verdict %v", name, res.Verdict)
	}
	if len(res.Output) != len(want.Output) {
		t.Fatalf("%s: output length: interpreter %d, emulator %d", name, len(want.Output), len(res.Output))
	}
	for i := range want.Output {
		if want.Output[i] != res.Output[i] {
			t.Fatalf("%s: output[%d]: interpreter %d, emulator %d", name, i, want.Output[i], res.Output[i])
		}
	}
}

func TestInterpMatchesEmulatorOnBenchmarks(t *testing.T) {
	benches, err := bench.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			diffInterp(t, b.Name, b.Source, 1)
		})
	}
}

func TestInterpMatchesEmulatorOnFuzzCorpus(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 12
	}
	for i, prog := range fuzzgen.Corpus(11, n, fuzzgen.DefaultOptions()) {
		diffInterp(t, fmt.Sprintf("fuzz-%d", i), prog.Source, 100+int64(i))
	}
}

func TestInterpStaticLocals(t *testing.T) {
	// Locals are static storage: counter's c persists across calls and is
	// zero-initialized exactly once, at boot.
	const src = `
func int counter() {
	int c;
	c = c + 1;
	return c;
}

func void main() {
	print(counter());
	print(counter());
	print(counter());
}
`
	diffInterp(t, "statics", src, 1)

	file, err := minic.ParseFile("statics", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(file); err != nil {
		t.Fatal(err)
	}
	res, err := minic.Interpret(file, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3}
	for i, v := range want {
		if res.Output[i] != v {
			t.Fatalf("output %v, want %v", res.Output, want)
		}
	}
}

func TestInterpParamAssignmentStaysLocal(t *testing.T) {
	// Parameters live in per-call registers; writing one never escapes.
	const src = `
func int clobber(int x) {
	x = x + 100;
	return x;
}

func void main() {
	int a;
	a = 5;
	print(clobber(a));
	print(a);
}
`
	diffInterp(t, "params", src, 1)
}

func TestInterpTrapParity(t *testing.T) {
	cases := map[string]string{
		"divzero": `
func void main() {
	int a;
	a = 0;
	print(7 / a);
}
`,
		"oob": `
int arr[4];

func void main() {
	int i;
	i = 9;
	print(arr[i]);
}
`,
	}
	for name, src := range cases {
		diffInterp(t, name, src, 1)
		file, _ := minic.ParseFile(name, src)
		if err := minic.Check(file); err != nil {
			t.Fatal(err)
		}
		if _, err := minic.Interpret(file, nil, 0); err == nil {
			t.Fatalf("%s: interpreter did not trap", name)
		}
	}
}

func TestInterpNonShortCircuit(t *testing.T) {
	// && evaluates both operands: the right-hand division traps even
	// though the left side is already false.
	const src = `
func void main() {
	int z;
	z = 0;
	if (0 && (1 / z)) {
		print(1);
	}
	print(2);
}
`
	diffInterp(t, "shortcircuit", src, 1)
}

func TestInterpStepBudget(t *testing.T) {
	const src = `
func void main() {
	while (1) {
	}
}
`
	file, err := minic.ParseFile("spin", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(file); err != nil {
		t.Fatal(err)
	}
	if _, err := minic.Interpret(file, nil, 10_000); !errors.Is(err, minic.ErrInterpSteps) {
		t.Fatalf("got %v, want ErrInterpSteps", err)
	}
}
