package minic

import (
	"strconv"
	"strings"
)

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			start := Pos{lx.line, lx.col}
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos+1 <= len(lx.src) {
				if lx.pos+1 < len(lx.src) && lx.peekByte() == '*' && lx.src[lx.pos+1] == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				if lx.pos >= len(lx.src) {
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Lex tokenizes the entire source.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		if err := lx.skipSpaceAndComments(); err != nil {
			return nil, err
		}
		startLine, startCol := lx.line, lx.col
		mk := func(k Kind, text string) {
			toks = append(toks, Token{Kind: k, Text: text, Line: startLine, Col: startCol})
		}
		if lx.pos >= len(lx.src) {
			mk(tEOF, "")
			return toks, nil
		}
		c := lx.peekByte()
		switch {
		case isIdentStart(c):
			start := lx.pos
			for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
				lx.advance()
			}
			word := lx.src[start:lx.pos]
			if k, ok := keywords[word]; ok {
				mk(k, word)
			} else {
				mk(tIdent, word)
			}
		case isDigit(c):
			start := lx.pos
			if c == '0' && lx.pos+1 < len(lx.src) &&
				(lx.src[lx.pos+1] == 'x' || lx.src[lx.pos+1] == 'X') {
				lx.advance()
				lx.advance()
				for lx.pos < len(lx.src) && isHexDigit(lx.peekByte()) {
					lx.advance()
				}
			} else {
				for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
					lx.advance()
				}
			}
			text := lx.src[start:lx.pos]
			val, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				return nil, errf(Pos{startLine, startCol}, "bad number %q", text)
			}
			toks = append(toks, Token{Kind: tNumber, Text: text, Val: val, Line: startLine, Col: startCol})
		case c == '@':
			lx.advance()
			start := lx.pos
			for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
				lx.advance()
			}
			word := lx.src[start:lx.pos]
			if word != "max" {
				return nil, errf(Pos{startLine, startCol}, "unknown annotation @%s", word)
			}
			mk(tAtMax, "@max")
		default:
			lx.advance()
			two := string(c)
			if lx.pos < len(lx.src) {
				two += string(lx.peekByte())
			}
			switch two {
			case "<<":
				lx.advance()
				mk(tShl, two)
				continue
			case ">>":
				lx.advance()
				mk(tShr, two)
				continue
			case "==":
				lx.advance()
				mk(tEq, two)
				continue
			case "!=":
				lx.advance()
				mk(tNe, two)
				continue
			case "<=":
				lx.advance()
				mk(tLe, two)
				continue
			case ">=":
				lx.advance()
				mk(tGe, two)
				continue
			case "&&":
				lx.advance()
				mk(tAndAnd, two)
				continue
			case "||":
				lx.advance()
				mk(tOrOr, two)
				continue
			}
			single := map[byte]Kind{
				'(': tLParen, ')': tRParen, '{': tLBrace, '}': tRBrace,
				'[': tLBracket, ']': tRBracket, ',': tComma, ';': tSemi,
				'=': tAssign, '+': tPlus, '-': tMinus, '*': tStar,
				'/': tSlash, '%': tPercent, '&': tAmp, '|': tPipe,
				'^': tCaret, '<': tLt, '>': tGt, '!': tBang, '~': tTilde,
			}
			k, ok := single[c]
			if !ok {
				return nil, errf(Pos{startLine, startCol}, "unexpected character %q", string(c))
			}
			mk(k, string(c))
		}
	}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// stripBOM removes a UTF-8 byte-order mark if present.
func stripBOM(src string) string {
	return strings.TrimPrefix(src, "\uFEFF")
}
