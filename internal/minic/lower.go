package minic

import (
	"fmt"

	"schematic/internal/ir"
)

// Compile parses, checks, and lowers MiniC source to an IR module. name
// becomes the module name.
func Compile(name, src string) (*ir.Module, error) {
	file, err := ParseFile(name, src)
	if err != nil {
		return nil, err
	}
	if err := Check(file); err != nil {
		return nil, err
	}
	m, err := Lower(file)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("minic: lowering produced invalid IR: %w", err)
	}
	return m, nil
}

// MustCompile is Compile for known-good sources (embedded benchmarks,
// tests); it panics on error.
func MustCompile(name, src string) *ir.Module {
	m, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

// Lower translates a checked AST into IR.
func Lower(file *File) (*ir.Module, error) {
	lw := &lowerer{
		mod:   &ir.Module{Name: file.Name},
		funcs: map[string]*ir.Func{},
	}
	for _, g := range file.Globals {
		v := lw.mod.NewGlobal(g.Name, g.Elems)
		v.Input = g.Input
		v.Init = append([]int64(nil), g.Init...)
	}
	// Declare all functions first so calls resolve regardless of order.
	for _, fd := range file.Funcs {
		params := make([]string, len(fd.Params))
		for i, prm := range fd.Params {
			params[i] = prm.Name
		}
		lw.funcs[fd.Name] = lw.mod.NewFunc(fd.Name, params, fd.HasRet)
	}
	for _, fd := range file.Funcs {
		if err := lw.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	return lw.mod, nil
}

type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type lowerer struct {
	mod   *ir.Module
	funcs map[string]*ir.Func

	fd     *FuncDecl
	f      *ir.Func
	b      *ir.Builder
	vars   map[string]*ir.Var
	params map[string]ir.Reg
	loops  []loopCtx
	// atomicDepth > 0 marks blocks created inside an atomic section.
	atomicDepth int
	// terminated is set after a return/break/continue; remaining statements
	// in the block were rejected by sema, so emission simply stops.
	terminated bool
}

// newBlock creates a block, marking it atomic inside atomic sections.
func (lw *lowerer) newBlock(name string) *ir.Block {
	b := lw.f.NewBlock(name)
	if lw.atomicDepth > 0 {
		b.Atomic = true
	}
	return b
}

func (lw *lowerer) lowerFunc(fd *FuncDecl) error {
	lw.fd = fd
	lw.f = lw.funcs[fd.Name]
	lw.vars = map[string]*ir.Var{}
	lw.params = map[string]ir.Reg{}
	for _, g := range lw.mod.Globals {
		lw.vars[g.Name] = g
	}
	for i, prm := range fd.Params {
		lw.params[prm.Name] = ir.Reg(i)
	}
	for _, l := range fd.Locals {
		v := &ir.Var{Name: l.Name, Elems: l.Elems, Func: lw.f}
		lw.f.Locals = append(lw.f.Locals, v)
		lw.vars[l.Name] = v
	}
	lw.b = ir.NewBuilder(lw.f)
	lw.terminated = false
	if err := lw.stmts(fd.Body); err != nil {
		return err
	}
	lw.sealBlocks()
	pruneUnreachable(lw.f)
	return nil
}

// sealBlocks terminates every unterminated block with a default return
// (reachable only for void fall-off-the-end; sema guarantees int functions
// return on all live paths).
func (lw *lowerer) sealBlocks() {
	for _, blk := range lw.f.Blocks {
		if blk.Terminator() != nil {
			continue
		}
		lw.b.At(blk)
		if lw.f.HasRet {
			zero := lw.b.Const(0)
			lw.b.RetVal(zero)
		} else {
			lw.b.Ret()
		}
	}
}

func pruneUnreachable(f *ir.Func) {
	reach := map[*ir.Block]bool{}
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		reach[b] = true
		for _, s := range b.Succs() {
			if !reach[s] {
				visit(s)
			}
		}
	}
	visit(f.Entry())
	var keep []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			keep = append(keep, b)
		}
	}
	f.Blocks = keep
	f.Renumber()
}

func (lw *lowerer) stmts(list []Stmt) error {
	for _, s := range list {
		if lw.terminated {
			return errf(s.stmtPos(), "internal: statement after terminator")
		}
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s Stmt) error {
	switch st := s.(type) {
	case *AssignStmt:
		return lw.assign(st)
	case *PrintStmt:
		r, err := lw.expr(st.Value)
		if err != nil {
			return err
		}
		lw.b.Out(r)
		return nil
	case *ExprStmt:
		call := st.X.(*CallExpr)
		callee := lw.funcs[call.Name]
		args, err := lw.args(call.Args)
		if err != nil {
			return err
		}
		// Discard any return value.
		lw.b.Emit(&ir.Call{Callee: callee, Args: args})
		return nil
	case *ReturnStmt:
		if st.Value != nil {
			r, err := lw.expr(st.Value)
			if err != nil {
				return err
			}
			lw.b.RetVal(r)
		} else {
			lw.b.Ret()
		}
		lw.terminated = true
		return nil
	case *BreakStmt:
		lw.b.Jmp(lw.loops[len(lw.loops)-1].breakTo)
		lw.terminated = true
		return nil
	case *ContinueStmt:
		lw.b.Jmp(lw.loops[len(lw.loops)-1].continueTo)
		lw.terminated = true
		return nil
	case *IfStmt:
		return lw.ifStmt(st)
	case *WhileStmt:
		return lw.whileStmt(st)
	case *ForStmt:
		return lw.forStmt(st)
	case *AtomicStmt:
		return lw.atomicStmt(st)
	default:
		return errf(s.stmtPos(), "internal: unknown statement %T", s)
	}
}

func (lw *lowerer) assign(st *AssignStmt) error {
	val, err := lw.expr(st.Value)
	if err != nil {
		return err
	}
	if r, isParam := lw.params[st.Name]; isParam {
		// Parameters live in registers; "or v, v" is the move idiom.
		lw.b.Emit(&ir.BinOp{Dst: r, Op: ir.OpOr, A: val, B: val})
		return nil
	}
	v := lw.vars[st.Name]
	if st.Index != nil {
		idx, err := lw.expr(st.Index)
		if err != nil {
			return err
		}
		lw.b.StoreIdx(v, idx, val)
		return nil
	}
	lw.b.Store(v, val)
	return nil
}

func (lw *lowerer) ifStmt(st *IfStmt) error {
	cond, err := lw.expr(st.Cond)
	if err != nil {
		return err
	}
	thenB := lw.newBlock("if.then")
	merge := lw.newBlock("if.end")
	elseB := merge
	if st.Else != nil {
		elseB = lw.newBlock("if.else")
	}
	lw.b.Br(cond, thenB, elseB)

	lw.b.At(thenB)
	lw.terminated = false
	if err := lw.stmts(st.Then); err != nil {
		return err
	}
	if !lw.terminated {
		lw.b.Jmp(merge)
	}
	if st.Else != nil {
		lw.b.At(elseB)
		lw.terminated = false
		if err := lw.stmts(st.Else); err != nil {
			return err
		}
		if !lw.terminated {
			lw.b.Jmp(merge)
		}
	}
	lw.b.At(merge)
	lw.terminated = false
	return nil
}

func (lw *lowerer) whileStmt(st *WhileStmt) error {
	head := lw.newBlock("while.head")
	body := lw.newBlock("while.body")
	latch := lw.newBlock("while.latch")
	exit := lw.newBlock("while.end")

	lw.b.Jmp(head)
	lw.b.At(head)
	if st.Max > 0 {
		lw.b.Emit(&ir.LoopBound{Max: st.Max})
	}
	cond, err := lw.expr(st.Cond)
	if err != nil {
		return err
	}
	lw.b.Br(cond, body, exit)

	lw.loops = append(lw.loops, loopCtx{breakTo: exit, continueTo: latch})
	lw.b.At(body)
	lw.terminated = false
	if err := lw.stmts(st.Body); err != nil {
		return err
	}
	if !lw.terminated {
		lw.b.Jmp(latch)
	}
	lw.loops = lw.loops[:len(lw.loops)-1]

	// The latch is the single back-edge source (paper, III-B2).
	lw.b.At(latch)
	lw.b.Jmp(head)

	lw.b.At(exit)
	lw.terminated = false
	return nil
}

func (lw *lowerer) forStmt(st *ForStmt) error {
	if st.Init != nil {
		if err := lw.assign(st.Init); err != nil {
			return err
		}
	}
	head := lw.newBlock("for.head")
	body := lw.newBlock("for.body")
	latch := lw.newBlock("for.latch")
	exit := lw.newBlock("for.end")

	lw.b.Jmp(head)
	lw.b.At(head)
	if st.Max > 0 {
		lw.b.Emit(&ir.LoopBound{Max: st.Max})
	}
	cond, err := lw.expr(st.Cond)
	if err != nil {
		return err
	}
	lw.b.Br(cond, body, exit)

	lw.loops = append(lw.loops, loopCtx{breakTo: exit, continueTo: latch})
	lw.b.At(body)
	lw.terminated = false
	if err := lw.stmts(st.Body); err != nil {
		return err
	}
	if !lw.terminated {
		lw.b.Jmp(latch)
	}
	lw.loops = lw.loops[:len(lw.loops)-1]

	lw.b.At(latch)
	if st.Post != nil {
		if err := lw.assign(st.Post); err != nil {
			return err
		}
	}
	lw.b.Jmp(head)

	lw.b.At(exit)
	lw.terminated = false
	return nil
}

// atomicStmt lowers "atomic { body }" into a run of blocks flagged
// atomic, bracketed by ordinary blocks so checkpoints may sit on the
// boundary edges but never inside.
func (lw *lowerer) atomicStmt(st *AtomicStmt) error {
	lw.atomicDepth++
	begin := lw.newBlock("atomic.begin")
	lw.b.Jmp(begin)
	lw.b.At(begin)
	if err := lw.stmts(st.Body); err != nil {
		lw.atomicDepth--
		return err
	}
	lw.atomicDepth--
	end := lw.newBlock("atomic.end")
	if !lw.terminated {
		lw.b.Jmp(end)
	}
	lw.b.At(end)
	lw.terminated = false
	return nil
}

func (lw *lowerer) args(exprs []Expr) ([]ir.Reg, error) {
	regs := make([]ir.Reg, len(exprs))
	for i, e := range exprs {
		r, err := lw.expr(e)
		if err != nil {
			return nil, err
		}
		regs[i] = r
	}
	return regs, nil
}

var binOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpShr,
	"==": ir.OpEq, "!=": ir.OpNe, "<": ir.OpLt, "<=": ir.OpLe,
	">": ir.OpGt, ">=": ir.OpGe,
}

func (lw *lowerer) expr(e Expr) (ir.Reg, error) {
	switch x := e.(type) {
	case *NumLit:
		return lw.b.Const(x.Val), nil
	case *VarRef:
		if r, isParam := lw.params[x.Name]; isParam {
			return r, nil
		}
		return lw.b.Load(lw.vars[x.Name]), nil
	case *IndexExpr:
		idx, err := lw.expr(x.Index)
		if err != nil {
			return 0, err
		}
		return lw.b.LoadIdx(lw.vars[x.Name], idx), nil
	case *CallExpr:
		callee := lw.funcs[x.Name]
		args, err := lw.args(x.Args)
		if err != nil {
			return 0, err
		}
		return lw.b.Call(callee, args...), nil
	case *UnaryExpr:
		v, err := lw.expr(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return lw.b.Un(ir.OpNeg, v), nil
		case "!":
			return lw.b.Un(ir.OpNot, v), nil
		case "~":
			minusOne := lw.b.Const(-1)
			return lw.b.Bin(ir.OpXor, v, minusOne), nil
		default:
			return 0, errf(x.Pos, "internal: unknown unary %q", x.Op)
		}
	case *BinaryExpr:
		l, err := lw.expr(x.L)
		if err != nil {
			return 0, err
		}
		r, err := lw.expr(x.R)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "&&":
			// Non-short-circuit: (l != 0) & (r != 0).
			zero := lw.b.Const(0)
			lb := lw.b.Bin(ir.OpNe, l, zero)
			rb := lw.b.Bin(ir.OpNe, r, zero)
			return lw.b.Bin(ir.OpAnd, lb, rb), nil
		case "||":
			zero := lw.b.Const(0)
			lb := lw.b.Bin(ir.OpNe, l, zero)
			rb := lw.b.Bin(ir.OpNe, r, zero)
			return lw.b.Bin(ir.OpOr, lb, rb), nil
		}
		op, ok := binOps[x.Op]
		if !ok {
			return 0, errf(x.Pos, "internal: unknown operator %q", x.Op)
		}
		return lw.b.Bin(op, l, r), nil
	default:
		return 0, errf(e.exprPos(), "internal: unknown expression %T", e)
	}
}
