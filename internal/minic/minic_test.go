package minic

import (
	"strings"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
)

// runMC compiles and executes a MiniC program, returning its output.
func runMC(t *testing.T, src string) []int64 {
	t.Helper()
	m, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := emulator.Run(m, emulator.Config{Model: energy.MSP430FR5969()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Verdict != emulator.Completed {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	return res.Output
}

func wantOutput(t *testing.T, src string, want ...int64) {
	t.Helper()
	got := runMC(t, src)
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	wantOutput(t, `
func void main() {
  int x;
  x = 2 + 3 * 4;        // precedence
  print(x);
  x = (2 + 3) * 4;
  print(x);
  x = 17 % 5;
  print(x);
  x = 1 << 10;
  print(x);
  x = 1024 >> 3;
  print(x);
  x = -7;
  print(x);
  x = 0xFF & 0x0F;
  print(x);
  x = 0xF0 | 0x0F;
  print(x);
  x = 0xFF ^ 0x0F;
  print(x);
  x = ~0;
  print(x);
}
`, 14, 20, 2, 1024, 128, -7, 15, 255, 240, -1)
}

func TestComparisonsAndLogic(t *testing.T) {
	wantOutput(t, `
func void main() {
  print(3 < 4);
  print(4 <= 4);
  print(5 > 6);
  print(5 >= 6);
  print(5 == 5);
  print(5 != 5);
  print(1 && 2);
  print(1 && 0);
  print(0 || 3);
  print(0 || 0);
  print(!0);
  print(!9);
}
`, 1, 1, 0, 0, 1, 0, 1, 0, 1, 0, 1, 0)
}

func TestControlFlow(t *testing.T) {
	wantOutput(t, `
func void main() {
  int i;
  int sum;
  sum = 0;
  for (i = 0; i < 10; i = i + 1) @max(10) {
    if (i % 2 == 0) {
      sum = sum + i;
    } else {
      sum = sum - 1;
    }
  }
  print(sum);
  i = 0;
  while (i < 100) @max(10) {
    i = i + 17;
    if (i > 50) {
      break;
    }
  }
  print(i);
  sum = 0;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 1) {
      continue;
    }
    sum = sum + 1;
  }
  print(sum);
}
`, 15, 51, 5)
}

func TestElseIfChain(t *testing.T) {
	wantOutput(t, `
func int classify(int x) {
  if (x < 10) {
    return 1;
  } else if (x < 100) {
    return 2;
  } else {
    return 3;
  }
}

func void main() {
  print(classify(5));
  print(classify(50));
  print(classify(500));
}
`, 1, 2, 3)
}

func TestArraysAndGlobals(t *testing.T) {
	wantOutput(t, `
int table[5] = {10, 20, 30, 40, 50};
int acc;

func void main() {
  int i;
  int local[3];
  acc = 0;
  for (i = 0; i < 5; i = i + 1) @max(5) {
    acc = acc + table[i];
  }
  print(acc);
  for (i = 0; i < 3; i = i + 1) @max(3) {
    local[i] = i * i;
  }
  print(local[0] + local[1] + local[2]);
}
`, 150, 5)
}

func TestFunctionsAndParams(t *testing.T) {
	wantOutput(t, `
func int add3(int a, int b, int c) {
  return a + b + c;
}

func int countdown(int n) {
  int steps;
  steps = 0;
  while (n > 0) @max(32) {
    n = n >> 1;       // parameter reassignment
    steps = steps + 1;
  }
  return steps;
}

func void main() {
  print(add3(1, 2, 3));
  print(countdown(255));
}
`, 6, 8)
}

func TestLoopBoundAnnotationsReachIR(t *testing.T) {
	m, err := Compile("t", `
func void main() {
  int i;
  for (i = 0; i < 8; i = i + 1) @max(8) {
    print(i);
  }
  while (i > 0) @max(99) {
    i = i - 1;
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int
	for _, b := range m.FuncByName("main").Blocks {
		for _, in := range b.Instrs {
			if lb, ok := in.(*ir.LoopBound); ok {
				bounds = append(bounds, lb.Max)
			}
		}
	}
	if len(bounds) != 2 || bounds[0] != 8 || bounds[1] != 99 {
		t.Errorf("bounds = %v, want [8 99]", bounds)
	}
}

func TestInputGlobals(t *testing.T) {
	m, err := Compile("t", `
input int data[4];

func void main() {
  print(data[0] + data[3]);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	v := m.GlobalByName("data")
	if v == nil || !v.Input {
		t.Fatalf("data not marked as input")
	}
	res, err := emulator.Run(m, emulator.Config{
		Model:  energy.MSP430FR5969(),
		Inputs: map[string][]int64{"data": {5, 0, 0, 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 12 {
		t.Errorf("output = %v, want [12]", res.Output)
	}
}

func TestSingleBackEdgePerLoop(t *testing.T) {
	// continue must route through the latch so loops keep one back-edge.
	m, err := Compile("t", `
func void main() {
  int i;
  int n;
  n = 0;
  for (i = 0; i < 6; i = i + 1) @max(6) {
    if (i == 2) {
      continue;
    }
    n = n + 1;
  }
  print(n);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	f := m.FuncByName("main")
	var head *ir.Block
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Name, "for.head") {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	backs := 0
	for _, p := range head.Preds() {
		if strings.HasPrefix(p.Name, "for.latch") {
			backs++
		}
	}
	if preds := head.Preds(); len(preds) != 2 {
		t.Errorf("for.head preds = %d, want 2 (entry-side + latch)", len(preds))
	}
	if backs != 1 {
		t.Errorf("latch preds of head = %d, want exactly 1", backs)
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"func void main() { x = 1; }", "undefined variable"},
		{"func void main() { int x; x = y; }", "undefined variable"},
		{"func void main() { f(); }", "undefined function"},
		{"int a[4];\nfunc void main() { a = 1; }", "element-wise"},
		{"int a[4];\nfunc void main() { print(a); }", "without an index"},
		{"func void main() { int x; x = x[3]; }", "not an array"},
		{"func void main() { int x; x[0] = 1; }", "not an array"},
		{"func int f() { return 1; }\nfunc void main() { int x; x = f(1); }", "argument"},
		{"func void f() { return; }\nfunc void main() { int x; x = f(); }", "used as a value"},
		{"func void main() { break; }", "break outside"},
		{"func void main() { continue; }", "continue outside"},
		{"func void main() { return 3; }", "cannot return a value"},
		{"func int f() { int x; x = 1; }\nfunc void main() { print(f()); }", "not all paths return"},
		{"func int f(int a) { if (a) { return 1; } }\nfunc void main() { print(f(1)); }", "not all paths return"},
		{"func void main() { return; print(1); }", "unreachable"},
		{"func void main() { int x; int x; }", "duplicate local"},
		{"func void f(int a, int a) { }\nfunc void main() { }", "duplicate parameter"},
		{"int g;\nint g;\nfunc void main() { }", "duplicate global"},
		{"func int main() { return 1; }", "main must be"},
		{"func void nope() { }", "missing 'func void main"},
		{"func void main(int x) { }", "main must be"},
		{"func void main() { int a[3]; a[0](); }", "expected"},
	}
	for _, tc := range cases {
		_, err := Compile("t", tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("source %q:\n  error = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"func void main() { int x x; }",
		"func void main() { if 1 { } }",
		"func void main() { for (;;) { } }",
		"func void main() { print(1) }",
		"func void main() @max(3) { }",
		"func void main() { while (1) @max(0) { } }",
		"int a[0];\nfunc void main() { }",
		"func void main() { /* unterminated",
		"func void main() { int x; x = 1 ? 2 : 3; }",
		"func void main() { @frob(1); }",
		"input int x;\nfunc void main() { input int y; }",
	}
	for _, src := range cases {
		if _, err := Compile("t", src); err == nil {
			t.Errorf("accepted bad source:\n%s", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Lex("int x;\n  x = 3;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	// "x" on line 2 column 3.
	var found bool
	for _, tok := range toks {
		if tok.Kind == tIdent && tok.Line == 2 && tok.Col == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("position tracking broken: %+v", toks)
	}
}

func TestHexAndComments(t *testing.T) {
	wantOutput(t, `
// line comment
/* block
   comment */
func void main() {
  print(0x10); // sixteen
  print(0XFF);
}
`, 16, 255)
}

func TestCompiledProgramRoundTripsThroughIRText(t *testing.T) {
	m, err := Compile("rt", `
int acc;
func int twice(int x) { return x * 2; }
func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 4; i = i + 1) @max(4) {
    acc = acc + twice(i);
  }
  print(acc);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	text := m.String()
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	r1, err := emulator.Run(m, emulator.Config{Model: energy.MSP430FR5969()})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := emulator.Run(m2, emulator.Config{Model: energy.MSP430FR5969()})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Output) != 1 || r1.Output[0] != 12 || r2.Output[0] != r1.Output[0] {
		t.Errorf("outputs: %v vs %v", r1.Output, r2.Output)
	}
}

func TestAtomicStatement(t *testing.T) {
	wantOutput(t, `
int dev;
func void main() {
  int i;
  dev = 0;
  for (i = 0; i < 4; i = i + 1) @max(4) {
    atomic {
      dev = dev * 2 + 1;
    }
  }
  print(dev);
}
`, 15)
	// Nested atomic sections are rejected.
	if _, err := Compile("t", `
func void main() {
  atomic { atomic { print(1); } }
}
`); err == nil || !strings.Contains(err.Error(), "nested atomic") {
		t.Errorf("nested atomic accepted: %v", err)
	}
}
