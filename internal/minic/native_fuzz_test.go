package minic_test

import (
	"errors"
	"math/rand"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// FuzzMiniCCompile is the native fuzzing entry point for the whole front
// half of the pipeline: arbitrary source must never panic the compiler,
// and anything it accepts must mean the same thing to both executable
// semantics — the AST reference interpreter and the IR emulator on the
// lowered module. Seed corpus: testdata/fuzz/FuzzMiniCCompile. Run with
//
//	go test ./internal/minic -run '^$' -fuzz FuzzMiniCCompile -fuzztime 30s
func FuzzMiniCCompile(f *testing.F) {
	f.Add("func void main() { print(1); }")
	f.Add("int g;\nfunc void main() { g = g + 1; print(g); }")
	f.Add("input int a[4];\nfunc void main() { int i; for (i = 0; i < 4; i = i + 1) @max(4) { print(a[i]); } }")
	f.Add("func int inc(int x) { return x + 1; }\nfunc void main() { print(inc(41)); }")
	f.Add("func void main() { int z; z = 0; print(1 / z); }")
	f.Add("int t[3] = {5, 6, 7};\nfunc void main() { atomic { print(t[2]); } }")
	f.Add("}{\x00 func")
	model := energy.MSP430FR5969()

	f.Fuzz(func(t *testing.T, src string) {
		file, err := minic.ParseFile("fuzz", src)
		if err != nil {
			return // rejection is always fine
		}
		if err := minic.Check(file); err != nil {
			return
		}
		m, err := minic.Lower(file)
		if err != nil {
			t.Fatalf("checked program failed to lower: %v\n%s", err, src)
		}
		if verr := ir.Verify(m); verr != nil {
			t.Fatalf("front end produced an unverifiable module: %v\n%s", verr, src)
		}

		// Differential oracle: the interpreter and the emulator must agree
		// on trap behaviour and output.
		const budget = 2_000_000
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(1)))
		want, ierr := minic.Interpret(file, inputs, budget)
		if errors.Is(ierr, minic.ErrInterpSteps) {
			t.Skip("program exceeds the fuzz step budget")
		}
		res, rerr := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: budget})
		if rerr == nil && res.Verdict == emulator.OutOfSteps {
			t.Skip("program exceeds the fuzz step budget")
		}
		if ierr != nil {
			if rerr == nil {
				t.Fatalf("interpreter trapped (%v) but emulator completed with %v\n%s", ierr, res.Output, src)
			}
			return // both trapped
		}
		if rerr != nil {
			t.Fatalf("emulator trapped (%v) but interpreter completed with %v\n%s", rerr, want.Output, src)
		}
		if res.Verdict != emulator.Completed {
			t.Fatalf("emulator verdict %v\n%s", res.Verdict, src)
		}
		if len(res.Output) != len(want.Output) {
			t.Fatalf("output length: interpreter %d, emulator %d\n%s", len(want.Output), len(res.Output), src)
		}
		for i := range want.Output {
			if want.Output[i] != res.Output[i] {
				t.Fatalf("output[%d]: interpreter %d, emulator %d\n%s", i, want.Output[i], res.Output[i], src)
			}
		}
	})
}
